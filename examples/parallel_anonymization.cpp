// Parallel anonymization: split the map into jurisdictions, anonymize each
// on its own (simulated) server, and compare the master policy's utility
// with the single-server optimum (Section V / Section VI-D).
//
//   $ ./examples/parallel_anonymization

#include <cstdio>

#include "attack/auditor.h"
#include "common/stats.h"
#include "parallel/master_policy.h"
#include "parallel/runner.h"
#include "pasa/anonymizer.h"
#include "workload/bay_area.h"

int main() {
  using namespace pasa;

  BayAreaOptions bay;
  bay.log2_map_side = 16;
  bay.num_intersections = 10000;
  bay.users_per_intersection = 10;
  bay.num_clusters = 32;
  bay.seed = 4;
  const BayAreaGenerator generator(bay);
  const LocationDatabase db = generator.GenerateMaster();
  const int k = 50;
  std::printf("%s users, k = %d\n", WithThousandsSeparators(db.size()).c_str(),
              k);

  // Single-server optimum as the utility yardstick.
  AnonymizerOptions single;
  single.k = k;
  Result<Anonymizer> optimum = Anonymizer::Build(db, generator.extent(), single);
  if (!optimum.ok()) return 1;
  std::printf("single-server optimal cost: %s\n",
              WithThousandsSeparators(optimum->cost()).c_str());

  for (const size_t servers : {2u, 4u, 8u, 16u}) {
    ParallelRunOptions options;
    options.k = k;
    options.num_jurisdictions = servers;
    Result<ParallelRunReport> report =
        RunPartitioned(db, generator.extent(), options);
    if (!report.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }

    const double overhead =
        100.0 *
        (static_cast<double>(report->total_cost) /
             static_cast<double>(optimum->cost()) -
         1.0);
    std::printf(
        "%2zu servers: parallel time %.3f s (cpu %.3f s), cost %s "
        "(+%.3f%% vs optimum), min group %zu\n",
        servers, report->parallel_seconds, report->total_cpu_seconds,
        WithThousandsSeparators(report->total_cost).c_str(), overhead,
        AuditPolicyAware(report->master_table).min_possible_senders);

    // Route a few lookups through the master policy.
    if (servers == 16) {
      std::vector<Jurisdiction> jurisdictions;
      for (const auto& jr : report->jurisdictions) {
        jurisdictions.push_back(jr.jurisdiction);
      }
      const MasterPolicy master(std::move(jurisdictions),
                                report->master_table);
      const Point where = db.row(12345).location;
      Result<size_t> j = master.JurisdictionFor(where);
      if (j.ok()) {
        std::printf(
            "  e.g. user at %s is served by jurisdiction %zu covering %s\n",
            where.ToString().c_str(), *j,
            master.jurisdictions()[*j].region.ToString().c_str());
      }
    }
  }
  return 0;
}
