// Attack demo: how a policy-aware attacker breaks the classical k-inside
// policies (Example 1 / Section VII of the paper) and why the policy-aware
// optimum survives the same attack.
//
//   $ ./examples/attack_demo

#include <cstdio>

#include "attack/auditor.h"
#include "pasa/anonymizer.h"
#include "policies/casper.h"
#include "policies/find_mbc.h"
#include "policies/k_inside_quad.h"
#include "policies/k_reciprocity.h"
#include "policies/k_sharing.h"

namespace {

void PrintAudit(const char* name, const pasa::AuditReport& aware,
                const pasa::AuditReport& unaware, int k) {
  std::printf("  %-18s policy-unaware attacker: >= %zu senders (%s)\n", name,
              unaware.min_possible_senders,
              unaware.Anonymous(k) ? "safe" : "BREACHED");
  std::printf("  %-18s policy-AWARE  attacker: >= %zu senders (%s)\n", "",
              aware.min_possible_senders,
              aware.Anonymous(k) ? "safe" : "BREACHED");
}

}  // namespace

int main() {
  using namespace pasa;
  const int k = 2;

  // The Table I snapshot: Carol (user 3) is the isolated "outlier".
  LocationDatabase db;
  db.Add(1, {0, 0});
  db.Add(2, {0, 1});
  db.Add(3, {0, 3});
  db.Add(4, {2, 0});
  db.Add(5, {3, 3});
  const MapExtent extent{0, 0, 2};

  std::printf(
      "=== Example 1: the semi-quadrant k-inside policy (Casper-style) "
      "===\n");
  Result<CloakingTable> casper = CasperPolicy(extent).Cloak(db, k);
  if (!casper.ok()) return 1;
  PrintAudit("Casper", AuditPolicyAware(*casper),
             AuditPolicyUnaware(*casper, db), k);
  for (const size_t row : AuditPolicyAware(*casper).Breaches(k)) {
    std::printf("  -> user %lld is identified outright (cloak %s)\n",
                static_cast<long long>(db.row(row).user),
                casper->cloak(row).ToString().c_str());
  }

  std::printf(
      "\n=== Quadrant k-inside (Gruteser 2003) on an outlier instance ===\n");
  LocationDatabase outlier_db;
  outlier_db.Add(1, {0, 0});
  outlier_db.Add(2, {1, 1});
  outlier_db.Add(3, {0, 3});  // alone in her quadrant
  Result<CloakingTable> puq = PolicyUnawareQuad(extent).Cloak(outlier_db, k);
  if (!puq.ok()) return 1;
  PrintAudit("PUQ", AuditPolicyAware(*puq),
             AuditPolicyUnaware(*puq, outlier_db), k);

  std::printf("\n=== Figure 6(a): k-sharing grouping ===\n");
  const KSharingPolicy sharing(k);
  LocationDatabase line;
  line.Add(10, {0, 0});  // A
  line.Add(11, {2, 0});  // B
  line.Add(12, {5, 0});  // C
  Result<CloakingTable> shared = sharing.CloakInOrder(line, {2});  // C first
  if (!shared.ok()) return 1;
  Result<std::vector<size_t>> first =
      sharing.PossibleFirstSenders(line, shared->cloak(2));
  if (!first.ok()) return 1;
  std::printf(
      "  C requests first; the {B,C} cloak appears. Reverse-engineering the\n"
      "  grouping algorithm leaves %zu possible first sender(s)%s\n",
      first->size(), first->size() < static_cast<size_t>(k)
                         ? " -> BREACHED (it must be C)"
                         : "");

  std::printf("\n=== Figure 6(b): k-reciprocity via station circles ===\n");
  LocationDatabase pair;
  pair.Add(20, {2, 0});  // Alice
  pair.Add(21, {3, 0});  // Bob
  const NearestStationCircles stations({{0, 0}, {5, 0}});
  Result<std::vector<Circle>> circles = stations.Cloak(pair, k);
  if (!circles.ok()) return 1;
  std::printf("  2-reciprocity holds: %s\n",
              NearestStationCircles::SatisfiesKReciprocity(pair, *circles, k)
                  ? "yes"
                  : "no");
  PrintAudit("stations", AuditPolicyAware(*circles),
             AuditPolicyUnaware(*circles, pair), k);

  std::printf("\n=== FindMBC-style circles: k-inside but unique per user ===\n");
  Result<CircularCloaking> mbc = FindMbcCloaking(db, k);
  if (!mbc.ok()) return 1;
  PrintAudit("FindMBC", AuditPolicyAware(mbc->cloaks),
             AuditPolicyUnaware(mbc->cloaks, db), k);

  std::printf("\n=== The policy-aware optimum on the same snapshot ===\n");
  AnonymizerOptions options;
  options.k = k;
  Result<Anonymizer> ours = Anonymizer::Build(db, extent, options);
  if (!ours.ok()) return 1;
  PrintAudit("PolicyAware-OPT", AuditPolicyAware(ours->policy()),
             AuditPolicyUnaware(ours->policy(), db), k);
  std::printf(
      "  Both attacker classes are left with >= %d candidates; the price is\n"
      "  a larger cloak for the outlier (total cost %lld vs %lld for "
      "Casper).\n",
      k, static_cast<long long>(ours->cost()),
      static_cast<long long>(casper->TotalCost()));
  return 0;
}
