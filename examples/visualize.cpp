// Visualize: renders the synthetic workload's binary tree (Figure 3(a)
// analog) and a comparison of the policy-aware optimum's cloaks vs Casper's
// as SVG files in the current directory.
//
//   $ ./examples/visualize
//   wrote tree.svg, cloaks_policy_aware.svg, cloaks_casper.svg

#include <cstdio>

#include "io/svg.h"
#include "pasa/anonymizer.h"
#include "policies/casper.h"
#include "workload/bay_area.h"

int main() {
  using namespace pasa;

  BayAreaOptions bay;
  bay.log2_map_side = 12;
  bay.num_intersections = 600;
  bay.users_per_intersection = 5;
  bay.user_sigma = 40.0;
  bay.num_clusters = 10;
  bay.seed = 12;
  const BayAreaGenerator generator(bay);
  const LocationDatabase db = generator.Generate(3000);
  const int k = 25;

  AnonymizerOptions options;
  options.k = k;
  Result<Anonymizer> aware = Anonymizer::Build(db, generator.extent(), options);
  Result<CloakingTable> casper = CasperPolicy(generator.extent()).Cloak(db, k);
  if (!aware.ok() || !casper.ok()) {
    std::fprintf(stderr, "anonymization failed\n");
    return 1;
  }

  const Rect viewport = generator.extent().ToRect();
  struct Out {
    const char* path;
    std::string svg;
  };
  const Out outputs[] = {
      {"tree.svg", RenderTreeSvg(aware->tree())},
      {"cloaks_policy_aware.svg",
       RenderCloakingSvg(db, aware->policy(), viewport)},
      {"cloaks_casper.svg", RenderCloakingSvg(db, *casper, viewport)},
  };
  for (const Out& o : outputs) {
    Status s = SaveSvg(o.svg, o.path);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", o.path, s.ToString().c_str());
      return 1;
    }
  }
  std::printf(
      "wrote tree.svg, cloaks_policy_aware.svg, cloaks_casper.svg\n"
      "(policy-aware cloaks overlap into >= %d-user groups; Casper's are\n"
      "tighter but leak identities to policy-aware attackers)\n",
      k);
  return 0;
}
