// Quickstart: build an optimal policy-aware sender k-anonymous policy over a
// small location database and anonymize a request.
//
//   $ ./examples/quickstart
//
// Walks the paper's Table I running example: five users on a 4x4 map, k = 2.

#include <cstdio>

#include "attack/auditor.h"
#include "model/location_database.h"
#include "pasa/anonymizer.h"

int main() {
  using namespace pasa;

  // 1. A location-database snapshot (schema D = {userid, locx, locy}).
  //    These are Alice, Bob, Carol, Sam and Tom from the paper's Table I.
  LocationDatabase db;
  db.Add(/*user=*/1, {0, 0});  // Alice
  db.Add(/*user=*/2, {0, 1});  // Bob
  db.Add(/*user=*/3, {0, 3});  // Carol
  db.Add(/*user=*/4, {2, 0});  // Sam
  db.Add(/*user=*/5, {3, 3});  // Tom

  // 2. Build the anonymizer: binary semi-quadrant tree + optimized Bulk_dp
  //    + policy extraction, all in one call.
  AnonymizerOptions options;
  options.k = 2;
  Result<Anonymizer> anonymizer =
      Anonymizer::Build(db, MapExtent{0, 0, /*log2_side=*/2}, options);
  if (!anonymizer.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 anonymizer.status().ToString().c_str());
    return 1;
  }

  // 3. Inspect the optimal policy: every user's cloak and the total cost.
  std::printf("optimal policy-aware %d-anonymous policy (cost %lld):\n",
              options.k, static_cast<long long>(anonymizer->cost()));
  const char* names[] = {"Alice", "Bob", "Carol", "Sam", "Tom"};
  for (size_t row = 0; row < db.size(); ++row) {
    std::printf("  %-5s at %-7s -> cloak %s\n", names[row],
                db.row(row).location.ToString().c_str(),
                anonymizer->CloakForRow(row).ToString().c_str());
  }

  // 4. Anonymize a service request the way the CSP would.
  const ServiceRequest request{/*sender=*/3, {0, 3},
                               {{"poi", "rest"}, {"cat", "ital"}}};
  Result<AnonymizedRequest> ar = anonymizer->Anonymize(request);
  if (!ar.ok()) {
    std::fprintf(stderr, "anonymize failed: %s\n",
                 ar.status().ToString().c_str());
    return 1;
  }
  std::printf("\nCarol's request is forwarded as <rid=%lld, cloak=%s>.\n",
              static_cast<long long>(ar->rid),
              ar->cloak.ToString().c_str());

  // 5. Audit against both attacker classes of Section III.
  const AuditReport aware = AuditPolicyAware(anonymizer->policy());
  const AuditReport unaware = AuditPolicyUnaware(anonymizer->policy(), db);
  std::printf(
      "\npolicy-aware attacker is left with >= %zu possible senders,\n"
      "policy-unaware attacker with >= %zu: sender %d-anonymity holds.\n",
      aware.min_possible_senders, unaware.min_possible_senders, options.k);
  return 0;
}
