// LBS pipeline: the complete privacy-conscious LBS model of Section II-B —
// a trusted CSP server maintaining the optimal policy-aware policy across
// snapshots, anonymizing request streams, and shielding the untrusted LBS
// provider behind the Section VII answer cache.
//
//   $ ./examples/lbs_pipeline

#include <cstdio>

#include "attack/auditor.h"
#include "common/rng.h"
#include "common/timer.h"
#include "csp/server.h"
#include "workload/bay_area.h"
#include "workload/movement.h"
#include "workload/requests.h"

int main() {
  using namespace pasa;

  // Synthetic metro area: 50k users with realistic density skew.
  BayAreaOptions bay;
  bay.log2_map_side = 16;  // 65 km square
  bay.num_intersections = 5000;
  bay.users_per_intersection = 10;
  bay.num_clusters = 32;
  bay.seed = 2010;
  const BayAreaGenerator generator(bay);
  LocationDatabase db = generator.GenerateMaster();

  // The LBS provider's POI index: 10k points of interest.
  std::vector<PointOfInterest> pois;
  {
    Rng rng(321);
    const std::vector<std::string> categories = {"rest", "groc", "cinema",
                                                 "gas", "hospital"};
    for (int i = 0; i < 10000; ++i) {
      pois.push_back(PointOfInterest{
          i,
          Point{static_cast<Coord>(rng.NextBounded(generator.extent().side())),
                static_cast<Coord>(
                    rng.NextBounded(generator.extent().side()))},
          categories[rng.NextBounded(categories.size())]});
    }
  }

  CspOptions options;
  options.k = 50;
  options.answers_per_request = 5;
  std::printf("starting CSP: %zu users, %zu POIs, k = %d\n", db.size(),
              pois.size(), options.k);

  WallTimer start_timer;
  Result<CspServer> csp = CspServer::Start(db, generator.extent(),
                                           PoiDatabase(std::move(pois)),
                                           options);
  if (!csp.ok()) {
    std::fprintf(stderr, "start failed: %s\n", csp.status().ToString().c_str());
    return 1;
  }
  std::printf("initial bulk anonymization: %.3f s, policy cost %lld\n",
              start_timer.ElapsedSeconds(),
              static_cast<long long>(csp->policy_cost()));

  RequestGenerator requests(123);
  for (int snapshot = 1; snapshot <= 5; ++snapshot) {
    // Audit the active policy against the policy-aware attacker.
    const AuditReport audit = AuditPolicyAware(csp->policy());
    std::printf("snapshot %d: min possible senders %zu (k-anonymous: %s)\n",
                snapshot - 1, audit.min_possible_senders,
                audit.Anonymous(options.k) ? "yes" : "NO");

    // Serve a burst of requests against this snapshot.
    WallTimer serve_timer;
    size_t served = 0;
    for (const ServiceRequest& sr : requests.Draw(csp->snapshot(), 20000)) {
      Result<LbsAnswer> answer = csp->HandleRequest(sr);
      if (answer.ok()) ++served;
    }
    std::printf("  served %zu requests in %.1f ms (%.2f us each); LBS saw "
                "only %zu of them (cache)\n",
                served, serve_timer.ElapsedMillis(),
                serve_timer.ElapsedMillis() * 1000.0 /
                    static_cast<double>(served),
                csp->lbs_requests_seen());

    // Advance to the next snapshot: ~1% of users move up to 200 m.
    MovementOptions movement;
    movement.moving_fraction = 0.01;
    movement.max_distance = 200.0;
    movement.seed = 555 + static_cast<uint64_t>(snapshot);
    const std::vector<UserMove> moves =
        DrawMoves(csp->snapshot(), generator.extent(), movement);
    WallTimer advance_timer;
    Result<SnapshotReport> report = csp->AdvanceSnapshot(moves);
    if (!report.ok()) {
      std::fprintf(stderr, "advance failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("  advanced: %zu movers, %s, %zu DP rows repaired, %.1f ms\n",
                report->moves_applied,
                report->rebuilt ? "rebuilt" : "incremental",
                report->dp_rows_repaired, advance_timer.ElapsedMillis());
  }

  const size_t billable = csp->FlushAnswerCache();
  std::printf(
      "end of day: cache flushed, %zu requests reported to the LBS for "
      "billing; rejects %zu\n",
      billable, csp->stats().requests_rejected);
  return 0;
}
