// Loopback tests for the network front end: concurrent clients must get
// correct, k-anonymous answers over real sockets; backpressure must reject
// with a typed retryable error; the poll fallback must behave like epoll;
// and net/* fault injection may hurt latency and availability but never
// k-anonymity.

#include "net/server.h"

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "attack/auditor.h"
#include "common/rng.h"
#include "csp/server.h"
#include "fault/injector.h"
#include "net/client.h"
#include "net/http.h"
#include "net/wire.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/slo.h"
#include "obs/tail_trace.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "workload/bay_area.h"
#include "workload/movement.h"

namespace pasa {
namespace net {
namespace {

BayAreaOptions SmallBay() {
  BayAreaOptions options;
  options.log2_map_side = 13;
  options.num_intersections = 300;
  options.users_per_intersection = 5;
  options.user_sigma = 40.0;
  options.num_clusters = 8;
  options.seed = 17;
  return options;
}

PoiDatabase SomePois(const MapExtent& extent, size_t n) {
  Rng rng(5);
  const std::vector<std::string> categories = {"rest", "groc", "cinema"};
  std::vector<PointOfInterest> pois;
  for (size_t i = 0; i < n; ++i) {
    pois.push_back(PointOfInterest{
        static_cast<int64_t>(i),
        Point{static_cast<Coord>(rng.NextBounded(extent.side())),
              static_cast<Coord>(rng.NextBounded(extent.side()))},
        categories[rng.NextBounded(categories.size())]});
  }
  return PoiDatabase(std::move(pois));
}

struct Fixture {
  explicit Fixture(int k = 10, NetServerOptions net_options = {}) {
    const BayAreaGenerator gen(SmallBay());
    db = gen.Generate(800);
    extent = gen.extent();
    CspOptions options;
    options.k = k;
    Result<CspServer> started =
        CspServer::Start(db, extent, SomePois(extent, 300), options);
    EXPECT_TRUE(started.ok()) << started.status().ToString();
    csp = std::make_unique<CspServer>(std::move(*started));
    Result<std::unique_ptr<NetServer>> net_started =
        NetServer::Start(csp.get(), net_options);
    EXPECT_TRUE(net_started.ok()) << net_started.status().ToString();
    server = std::move(*net_started);
  }

  LocationDatabase db;
  MapExtent extent;
  std::unique_ptr<CspServer> csp;
  std::unique_ptr<NetServer> server;
};

// One client issuing serve requests for `rows` users; every response must
// be k-anonymous and mask the true location.
void ServeAndVerify(uint16_t port, const LocationDatabase& db, int k,
                    size_t first_row, size_t rows,
                    std::atomic<int>* failures) {
  Result<NetClient> client = NetClient::Connect(port, 10.0);
  if (!client.ok()) {
    failures->fetch_add(static_cast<int>(rows));
    return;
  }
  for (size_t i = 0; i < rows; ++i) {
    const auto& row = db.row((first_row + i) % db.size());
    const ServiceRequest sr{row.user, row.location, {{"poi", "rest"}}};
    Result<Frame> frame = client->Call(MsgType::kServeRequest,
                                       EncodeServiceRequest(sr), 10.0);
    if (!frame.ok() || frame->type != MsgType::kServeResponse) {
      failures->fetch_add(1);
      continue;
    }
    Result<ServeResponseMsg> msg = DecodeServeResponse(frame->payload);
    if (!msg.ok()) {
      failures->fetch_add(1);
      continue;
    }
    const Rect cloak{msg->cloak_x1, msg->cloak_y1, msg->cloak_x2,
                     msg->cloak_y2};
    if (msg->group_size < static_cast<uint64_t>(k) ||
        !cloak.Contains(sr.location) || msg->rid <= 0) {
      failures->fetch_add(1);
    }
  }
}

TEST(NetServerTest, StartStopIsClean) {
  Fixture fx;
  EXPECT_GT(fx.server->port(), 0);
  fx.server->Stop();
  fx.server->Stop();  // idempotent
}

TEST(NetServerTest, ServesKAnonymousAnswersToConcurrentClients) {
  Fixture fx(/*k=*/10);
  const uint16_t port = fx.server->port();
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  const size_t kClients = 8;
  const size_t kRequests = 50;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back(ServeAndVerify, port, std::cref(fx.db), 10,
                         c * kRequests, kRequests, &failures);
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  const NetServer::Stats stats = fx.server->stats();
  EXPECT_EQ(stats.requests_served, kClients * kRequests);
  EXPECT_EQ(stats.frames_rejected, 0u);
  fx.server->Stop();
}

TEST(NetServerTest, AnonymizeOnlyPathReturnsCloak) {
  Fixture fx(/*k=*/10);
  Result<NetClient> client = NetClient::Connect(fx.server->port());
  ASSERT_TRUE(client.ok());
  const auto& row = fx.db.row(3);
  const ServiceRequest sr{row.user, row.location, {}};
  Result<Frame> frame = client->Call(MsgType::kAnonymizeRequest,
                                     EncodeServiceRequest(sr));
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->type, MsgType::kAnonymizeResponse);
  Result<AnonymizeResponseMsg> msg = DecodeAnonymizeResponse(frame->payload);
  ASSERT_TRUE(msg.ok());
  EXPECT_GE(msg->group_size, 10u);
  const Rect cloak{msg->cloak_x1, msg->cloak_y1, msg->cloak_x2,
                   msg->cloak_y2};
  EXPECT_TRUE(cloak.Contains(sr.location));
  fx.server->Stop();
}

TEST(NetServerTest, SnapshotAdvanceOverTheWire) {
  Fixture fx(/*k=*/10);
  Result<NetClient> client = NetClient::Connect(fx.server->port());
  ASSERT_TRUE(client.ok());

  MovementOptions move_options;
  move_options.seed = 99;
  SnapshotAdvanceMsg advance;
  advance.moves = DrawMoves(fx.db, fx.extent, move_options);
  ASSERT_FALSE(advance.moves.empty());
  Result<Frame> frame = client->Call(MsgType::kSnapshotAdvance,
                                     EncodeSnapshotAdvance(advance), 30.0);
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->type, MsgType::kSnapshotReport);
  Result<SnapshotReportMsg> report = DecodeSnapshotReport(frame->payload);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->moves_applied + report->moves_quarantined,
            advance.moves.size());

  // The policy after the advance must still be k-anonymous.
  EXPECT_TRUE(AuditPolicyAware(fx.csp->policy()).Anonymous(10));

  // And a user who moved must now be served at the new location.
  ASSERT_TRUE(ApplyMovesToDatabase(advance.moves, &fx.db).ok());
  std::atomic<int> failures{0};
  ServeAndVerify(fx.server->port(), fx.db, 10, 0, 50, &failures);
  EXPECT_EQ(failures.load(), 0);
  fx.server->Stop();
}

TEST(NetServerTest, RejectsUnknownUserWithTypedError) {
  Fixture fx;
  Result<NetClient> client = NetClient::Connect(fx.server->port());
  ASSERT_TRUE(client.ok());
  const ServiceRequest sr{999999, {0, 0}, {}};
  Result<Frame> frame = client->Call(MsgType::kServeRequest,
                                     EncodeServiceRequest(sr));
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->type, MsgType::kError);
  Result<ErrorMsg> msg = DecodeError(frame->payload);
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg->code, StatusCode::kInvalidArgument);
  EXPECT_EQ(msg->retry_after_micros, 0u);  // not retryable
  fx.server->Stop();
}

TEST(NetServerTest, GarbageBytesCloseTheConnectionOnly) {
  Fixture fx;
  Result<NetClient> bad = NetClient::Connect(fx.server->port());
  ASSERT_TRUE(bad.ok());
  // 64 bytes of garbage: the server must answer with a typed error and
  // close this connection — and keep serving others.
  std::string garbage(64, '\xFF');
  ASSERT_TRUE(bad->SendFrame(MsgType::kHealthRequest, "").ok());  // warm up
  Result<Frame> health = bad->ReadFrame();
  ASSERT_TRUE(health.ok());
  const ssize_t wrote = ::send(bad->fd(), garbage.data(), garbage.size(), 0);
  ASSERT_EQ(wrote, static_cast<ssize_t>(garbage.size()));
  Result<Frame> reply = bad->ReadFrame(5.0);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, MsgType::kError);
  // The stream is dead after the error frame.
  Result<Frame> eof = bad->ReadFrame(5.0);
  EXPECT_FALSE(eof.ok());

  std::atomic<int> failures{0};
  ServeAndVerify(fx.server->port(), fx.db, 10, 0, 20, &failures);
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(fx.server->stats().frames_rejected, 1u);
  fx.server->Stop();
}

TEST(NetServerTest, BackpressureRejectsWithRetryAfter) {
  NetServerOptions net_options;
  net_options.max_pending = 1;
  net_options.max_batch = 1;
  net_options.retry_after_micros = 2500;
  Fixture fx(/*k=*/10, net_options);
  Result<NetClient> client = NetClient::Connect(fx.server->port());
  ASSERT_TRUE(client.ok());

  // Pipeline many requests without reading: with a queue bound of one,
  // some must be admission-rejected with kUnavailable + retry-after.
  const auto& row = fx.db.row(0);
  const std::string payload =
      EncodeServiceRequest({row.user, row.location, {{"poi", "rest"}}});
  const int kBurst = 64;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(client->SendFrame(MsgType::kServeRequest, payload).ok());
  }
  int served = 0;
  int rejected = 0;
  for (int i = 0; i < kBurst; ++i) {
    Result<Frame> frame = client->ReadFrame(10.0);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    if (frame->type == MsgType::kServeResponse) {
      ++served;
    } else {
      ASSERT_EQ(frame->type, MsgType::kError);
      Result<ErrorMsg> msg = DecodeError(frame->payload);
      ASSERT_TRUE(msg.ok());
      EXPECT_EQ(msg->code, StatusCode::kUnavailable);
      EXPECT_EQ(msg->retry_after_micros, 2500u);
      ++rejected;
    }
  }
  EXPECT_EQ(served + rejected, kBurst);
  EXPECT_GT(served, 0);
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(fx.server->stats().admission_rejected,
            static_cast<uint64_t>(rejected));

  // Health bypasses admission even under pressure.
  Result<Frame> health = client->Call(MsgType::kHealthRequest, "");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->type, MsgType::kHealthResponse);
  fx.server->Stop();
}

TEST(NetServerTest, PollBackendServesLikeEpoll) {
  NetServerOptions net_options;
  net_options.use_poll = true;
  Fixture fx(/*k=*/10, net_options);
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < 4; ++c) {
    clients.emplace_back(ServeAndVerify, fx.server->port(), std::cref(fx.db),
                         10, c * 25, static_cast<size_t>(25), &failures);
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  fx.server->Stop();
}

TEST(NetServerTest, HealthAndStatsReportServerState) {
  Fixture fx;
  Result<NetClient> client = NetClient::Connect(fx.server->port());
  ASSERT_TRUE(client.ok());

  Result<Frame> health = client->Call(MsgType::kHealthRequest, "");
  ASSERT_TRUE(health.ok());
  ASSERT_EQ(health->type, MsgType::kHealthResponse);
  Result<HealthResponseMsg> h = DecodeHealthResponse(health->payload);
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h->healthy);
  EXPECT_EQ(h->connections, 1u);
  EXPECT_GT(h->queue_capacity, 0u);

  const auto& row = fx.db.row(1);
  const ServiceRequest sr{row.user, row.location, {{"poi", "rest"}}};
  ASSERT_TRUE(
      client->Call(MsgType::kServeRequest, EncodeServiceRequest(sr)).ok());

  Result<Frame> stats = client->Call(MsgType::kStatsRequest, "");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->type, MsgType::kStatsResponse);
  Result<StatsResponseMsg> s = DecodeStatsResponse(stats->payload);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->requests_served, 1u);
  fx.server->Stop();
}

TEST(NetServerTest, ShutdownFrameStopsTheServer) {
  Fixture fx;
  Result<NetClient> client = NetClient::Connect(fx.server->port());
  ASSERT_TRUE(client.ok());
  Result<Frame> ack = client->Call(MsgType::kShutdownRequest, "");
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->type, MsgType::kShutdownResponse);
  EXPECT_TRUE(fx.server->WaitForShutdown(10.0));
  fx.server->Stop();
}

// Graceful drain, happy path: requests already admitted when the shutdown
// frame lands keep dispatching within the drain deadline, and their
// responses reach the client before the loop exits — shutdown loses no
// admitted work.
TEST(NetServerTest, ShutdownDrainsAdmittedRequests) {
  NetServerOptions net_options;
  net_options.max_batch = 1;  // dispatch slowly so the drain does real work
  net_options.drain_deadline_seconds = 10.0;
  Fixture fx(/*k=*/10, net_options);
  Result<NetClient> pipeline = NetClient::Connect(fx.server->port());
  ASSERT_TRUE(pipeline.ok());
  const auto& row = fx.db.row(0);
  const std::string payload =
      EncodeServiceRequest({row.user, row.location, {{"poi", "rest"}}});
  const int kBurst = 16;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(pipeline->SendFrame(MsgType::kServeRequest, payload).ok());
  }
  // Wait until the whole burst is decoded (admitted or already served), so
  // the shutdown below cannot race ahead of it.
  while (fx.server->stats().frames_decoded < static_cast<uint64_t>(kBurst)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Result<NetClient> stopper = NetClient::Connect(fx.server->port());
  ASSERT_TRUE(stopper.ok());
  Result<Frame> ack = stopper->Call(MsgType::kShutdownRequest, "");
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->type, MsgType::kShutdownResponse);
  // Every admitted request still gets its real response.
  for (int i = 0; i < kBurst; ++i) {
    Result<Frame> frame = pipeline->ReadFrame(10.0);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->type, MsgType::kServeResponse);
  }
  EXPECT_TRUE(fx.server->WaitForShutdown(10.0));
  EXPECT_EQ(fx.server->stats().drain_expired, 0u);
  fx.server->Stop();
}

// Drain bounds: with dispatch disabled the queue can never empty, so the
// drain deadline must fail every stuck request with a typed kUnavailable —
// and a request arriving mid-drain is rejected the same way instead of
// extending the drain. Nobody hangs on a dying server.
TEST(NetServerTest, DrainDeadlineFailsStuckAndMidDrainRequestsTyped) {
  NetServerOptions net_options;
  net_options.max_batch = 0;  // nothing ever dispatches: the queue is stuck
  net_options.drain_deadline_seconds = 0.5;
  net_options.retry_after_micros = 2500;
  Fixture fx(/*k=*/10, net_options);
  Result<NetClient> pipeline = NetClient::Connect(fx.server->port());
  ASSERT_TRUE(pipeline.ok());
  Result<NetClient> latecomer = NetClient::Connect(fx.server->port());
  ASSERT_TRUE(latecomer.ok());
  const auto& row = fx.db.row(0);
  const std::string payload =
      EncodeServiceRequest({row.user, row.location, {{"poi", "rest"}}});
  const int kBurst = 8;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(pipeline->SendFrame(MsgType::kServeRequest, payload).ok());
  }
  while (fx.server->stats().frames_decoded < static_cast<uint64_t>(kBurst)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Result<NetClient> stopper = NetClient::Connect(fx.server->port());
  ASSERT_TRUE(stopper.ok());
  Result<Frame> ack = stopper->Call(MsgType::kShutdownRequest, "");
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->type, MsgType::kShutdownResponse);
  // stopping is set before the ack goes out, so this frame is decoded
  // mid-drain and must be rejected typed rather than queued.
  ASSERT_TRUE(latecomer->SendFrame(MsgType::kServeRequest, payload).ok());
  Result<Frame> turned_away = latecomer->ReadFrame(10.0);
  ASSERT_TRUE(turned_away.ok()) << turned_away.status().ToString();
  ASSERT_EQ(turned_away->type, MsgType::kError);
  Result<ErrorMsg> turned_away_msg = DecodeError(turned_away->payload);
  ASSERT_TRUE(turned_away_msg.ok());
  EXPECT_EQ(turned_away_msg->code, StatusCode::kUnavailable);
  // At the deadline, every stuck request is answered kUnavailable with the
  // retry hint — not silently dropped with the loop.
  for (int i = 0; i < kBurst; ++i) {
    Result<Frame> frame = pipeline->ReadFrame(10.0);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_EQ(frame->type, MsgType::kError);
    Result<ErrorMsg> msg = DecodeError(frame->payload);
    ASSERT_TRUE(msg.ok());
    EXPECT_EQ(msg->code, StatusCode::kUnavailable);
    EXPECT_EQ(msg->retry_after_micros, 2500u);
  }
  EXPECT_TRUE(fx.server->WaitForShutdown(10.0));
  const NetServer::Stats stats = fx.server->stats();
  EXPECT_EQ(stats.drain_expired, static_cast<uint64_t>(kBurst));
  EXPECT_GE(stats.drain_rejected, 1u);
  fx.server->Stop();
}

TEST(NetServerTest, NegativeDrainDeadlineIsRejected) {
  Fixture fx;
  NetServerOptions bad;
  bad.drain_deadline_seconds = -1.0;
  EXPECT_FALSE(NetServer::Start(fx.csp.get(), bad).ok());
  fx.server->Stop();
}

// Chaos: all three net/* fault points armed at once. Latency and
// availability may suffer (drops, torn writes, one-byte reads) but every
// answer that does arrive must still be k-anonymous, and the policy behind
// the server must stay anonymous throughout.
TEST(NetServerTest, NetFaultsNeverWeakenAnonymity) {
  fault::FaultPlan plan;
  fault::FaultPointConfig slow{std::string(fault::kNetSlowRead)};
  slow.probability = 0.3;
  fault::FaultPointConfig torn{std::string(fault::kNetTornWrite)};
  torn.probability = 0.3;
  fault::FaultPointConfig drop{std::string(fault::kNetConnDrop)};
  drop.probability = 0.05;
  plan.points = {slow, torn, drop};
  fault::FaultInjector::Global().Arm(plan, 2010);

  Fixture fx(/*k=*/10);
  const uint16_t port = fx.server->port();
  const int k = 10;
  std::atomic<int> verify_failures{0};
  std::atomic<int> served{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 40; ++i) {
        // Reconnect per request: conn_drop kills connections at will.
        Result<NetClient> client = NetClient::Connect(port, 10.0);
        if (!client.ok()) continue;
        const auto& row = fx.db.row((c * 40 + i) % fx.db.size());
        const ServiceRequest sr{row.user, row.location, {{"poi", "rest"}}};
        Result<Frame> frame = client->Call(
            MsgType::kServeRequest, EncodeServiceRequest(sr), 10.0);
        if (!frame.ok() || frame->type != MsgType::kServeResponse) {
          continue;  // availability may suffer under faults
        }
        Result<ServeResponseMsg> msg = DecodeServeResponse(frame->payload);
        if (!msg.ok()) {
          verify_failures.fetch_add(1);
          continue;
        }
        const Rect cloak{msg->cloak_x1, msg->cloak_y1, msg->cloak_x2,
                         msg->cloak_y2};
        if (msg->group_size < static_cast<uint64_t>(k) ||
            !cloak.Contains(sr.location)) {
          verify_failures.fetch_add(1);
        } else {
          served.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  fault::FaultInjector::Global().Disarm();

  EXPECT_EQ(verify_failures.load(), 0);
  EXPECT_GT(served.load(), 0);  // the server still makes progress
  EXPECT_GT(fx.server->stats().faults_injected, 0u);
  EXPECT_TRUE(AuditPolicyAware(fx.csp->policy()).Anonymous(k));
  fx.server->Stop();
}

// ---------------------------------------------------------------------------
// Admin plane: the HTTP telemetry listener sharing the event loop.

NetServerOptions WithAdminPlane() {
  NetServerOptions options;
  options.admin_port = 0;  // pick a free port
  return options;
}

TEST(NetServerAdminTest, MetricsEndpointServesValidPrometheusText) {
  Fixture fx(/*k=*/10, WithAdminPlane());
  ASSERT_GT(fx.server->admin_port(), 0);

  // Put some traffic through the data plane first so the scrape has
  // something to report.
  std::atomic<int> failures{0};
  ServeAndVerify(fx.server->port(), fx.db, 10, 0, 25, &failures);
  ASSERT_EQ(failures.load(), 0);

  Result<HttpResponse> response = HttpGet(fx.server->admin_port(), "/metrics");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->headers.at("content-type"),
            "text/plain; version=0.0.4; charset=utf-8");
  // The registry is process-global (other tests in this binary also serve
  // requests), so assert the family exists rather than an exact value.
  EXPECT_NE(response->body.find("pasa_net_requests_served"),
            std::string::npos);
  EXPECT_NE(response->body.find("# TYPE pasa_net_requests_served counter"),
            std::string::npos);
  const Status format = obs::CheckPrometheusText(response->body);
  EXPECT_TRUE(format.ok()) << format.ToString();
  fx.server->Stop();
}

TEST(NetServerAdminTest, HealthzSloAndVarsAnswer) {
  Fixture fx(/*k=*/10, WithAdminPlane());
  const uint16_t admin = fx.server->admin_port();

  Result<HttpResponse> health = HttpGet(admin, "/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
  EXPECT_EQ(health->body.rfind("ok ", 0), 0u) << health->body;

  Result<HttpResponse> slo = HttpGet(admin, "/slo");
  ASSERT_TRUE(slo.ok());
  EXPECT_EQ(slo->status, 200);
  EXPECT_FALSE(slo->body.empty());

  Result<HttpResponse> vars = HttpGet(admin, "/vars");
  ASSERT_TRUE(vars.ok());
  EXPECT_EQ(vars->status, 200);
  EXPECT_EQ(vars->headers.at("content-type"), "application/json");
  EXPECT_EQ(vars->body.front(), '{');

  const NetServer::Stats stats = fx.server->stats();
  EXPECT_GE(stats.admin_connections, 3u);
  EXPECT_GE(stats.admin_requests, 3u);
  fx.server->Stop();
}

TEST(NetServerAdminTest, HealthzReportsStateUptimeAndConnections) {
  Fixture fx(/*k=*/10, WithAdminPlane());
  const uint16_t admin = fx.server->admin_port();

  Result<HttpResponse> health = HttpGet(admin, "/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
  // The liveness contract stays "ok ..." (ci.sh greps ^ok), now followed
  // by machine-readable drain state, uptime and connection gauges.
  EXPECT_EQ(health->body.rfind("ok ", 0), 0u) << health->body;
  EXPECT_NE(health->body.find("state=serving"), std::string::npos)
      << health->body;
  EXPECT_NE(health->body.find("uptime_seconds="), std::string::npos)
      << health->body;
  EXPECT_NE(health->body.find("queue="), std::string::npos) << health->body;
  EXPECT_NE(health->body.find("connections="), std::string::npos)
      << health->body;
  fx.server->Stop();
}

TEST(NetServerAdminTest, MemoryEndpointReportsSubsystemFootprints) {
  Fixture fx(/*k=*/10, WithAdminPlane());
  const uint16_t admin = fx.server->admin_port();

  // Serve traffic first so the answer cache and buffers hold bytes.
  std::atomic<int> failures{0};
  ServeAndVerify(fx.server->port(), fx.db, 10, 0, 25, &failures);
  ASSERT_EQ(failures.load(), 0);

  Result<HttpResponse> response = HttpGet(admin, "/memory");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->status, 200);
  EXPECT_EQ(response->headers.at("content-type"), "application/json");
  const Result<obs::json::Value> doc = obs::json::Parse(response->body);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const obs::json::Value* total = doc->Find("total_bytes");
  ASSERT_NE(total, nullptr);
  EXPECT_GT(total->number(), 0.0);
  ASSERT_NE(doc->Find("users"), nullptr);
  ASSERT_NE(doc->Find("bytes_per_user"), nullptr);
  const obs::json::Value* subsystems = doc->Find("subsystems");
  ASSERT_NE(subsystems, nullptr);
  ASSERT_TRUE(subsystems->is_object());
  // The accounting convention spans the whole serving stack: at least the
  // CSP structures, the LBS cache/index, the obs rings and the net plane.
  EXPECT_GE(subsystems->object().size(), 8u);
  for (const char* name :
       {"csp/snapshot", "csp/policy_tree", "csp/config_matrix", "csp/policy",
        "csp/user_index", "lbs/answer_cache", "lbs/poi_index",
        "net/conn_buffers", "net/pending_queue"}) {
    EXPECT_NE(subsystems->Find(name), nullptr) << name;
  }
  // The dominant resident structures must report non-zero footprints.
  for (const char* name : {"csp/snapshot", "csp/policy_tree",
                           "lbs/poi_index"}) {
    const obs::json::Value* entry = subsystems->Find(name);
    ASSERT_NE(entry, nullptr) << name;
    EXPECT_GT(entry->number(), 0.0) << name;
  }

  // The same accounting reaches Prometheus as a labeled gauge family.
  Result<HttpResponse> metrics = HttpGet(admin, "/metrics");
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->body.find("pasa_mem_bytes{subsystem=\"csp/snapshot\"}"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("pasa_mem_total_bytes"), std::string::npos);
  const Status format = obs::CheckPrometheusText(metrics->body);
  EXPECT_TRUE(format.ok()) << format.ToString();
  fx.server->Stop();
}

TEST(NetServerAdminTest, LoopSaturationMetricsVisibleAfterTraffic) {
  Fixture fx(/*k=*/10, WithAdminPlane());
  const uint16_t admin = fx.server->admin_port();

  std::atomic<int> failures{0};
  ServeAndVerify(fx.server->port(), fx.db, 10, 0, 25, &failures);
  ASSERT_EQ(failures.load(), 0);

  Result<HttpResponse> metrics = HttpGet(admin, "/metrics");
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics->status, 200);
  // Event-loop saturation telemetry: per-tick busy time, queue depth at
  // tick end, and per-request queue wait.
  EXPECT_NE(metrics->body.find("pasa_net_loop_lag_seconds_count"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("pasa_net_queue_depth"), std::string::npos);
  EXPECT_NE(metrics->body.find("pasa_net_queue_wait_seconds_count"),
            std::string::npos);

  // The loop-lag histogram saw at least one worked tick (the requests
  // above), and every observation is a sane sub-second busy time.
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global()
                                            .Snapshot();
  const auto it = snapshot.histograms.find("net/loop_lag_seconds");
  ASSERT_NE(it, snapshot.histograms.end());
  EXPECT_GT(it->second.count, 0u);
  fx.server->Stop();
}

TEST(NetServerAdminTest, ProfileEndpointReportsArmedStateAndStacks) {
  Fixture fx(/*k=*/10, WithAdminPlane());
  const uint16_t admin = fx.server->admin_port();

  // Disarmed and never sampled: a clear 404, not an empty 200.
  ASSERT_FALSE(obs::Profiler::Global().armed());
  obs::Profiler::Global().Reset();
  if (obs::Profiler::Global().samples_taken() == 0) {
    Result<HttpResponse> cold = HttpGet(admin, "/profile");
    ASSERT_TRUE(cold.ok());
    EXPECT_EQ(cold->status, 404);
    EXPECT_NE(cold->body.find("not armed"), std::string::npos);
  }

  // Armed without a sampler thread: drive one deterministic sample from
  // this thread's span stack; /profile must fold it.
  obs::ProfilerOptions options;
  options.hz = 0.0;
  ASSERT_TRUE(obs::Profiler::Global().Start(options).ok());
  {
    obs::ScopedSpan span("admin_test/work", obs::ScopedSpan::kRoot);
    ASSERT_GE(obs::Profiler::Global().SampleOnce(1), 1u);
  }
  Result<HttpResponse> hot = HttpGet(admin, "/profile");
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot->status, 200);
  EXPECT_NE(hot->body.find("admin_test;work"), std::string::npos)
      << hot->body;
  obs::Profiler::Global().Stop();
  obs::Profiler::Global().Reset();
  fx.server->Stop();
}

TEST(NetServerAdminTest, UnknownPathBadMethodAndGarbageGetHttpErrors) {
  Fixture fx(/*k=*/10, WithAdminPlane());
  const uint16_t admin = fx.server->admin_port();

  Result<HttpResponse> missing = HttpGet(admin, "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);

  Result<HttpResponse> post = HttpTransact(
      admin, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->status, 405);

  Result<HttpResponse> garbage =
      HttpTransact(admin, "\xFF\xFE not http at all\r\n\r\n");
  ASSERT_TRUE(garbage.ok());
  EXPECT_EQ(garbage->status, 400);

  // HEAD answers with headers only but a truthful Content-Length.
  Result<HttpResponse> head = HttpTransact(
      admin, "HEAD /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->status, 200);
  EXPECT_GT(std::stoul(head->headers.at("content-length")), 0u);
  fx.server->Stop();
}

TEST(NetServerAdminTest, AdminPlaneBypassesConnectionCapUnderOverload) {
  // max_connections = 0: every data-plane connection is rejected outright.
  NetServerOptions options = WithAdminPlane();
  options.max_connections = 0;
  Fixture fx(/*k=*/10, options);

  // A data-plane client is accepted and immediately closed: its call can
  // never succeed.
  Result<NetClient> client = NetClient::Connect(fx.server->port(), 5.0);
  if (client.ok()) {
    Result<Frame> frame = client->Call(MsgType::kHealthRequest, "", 5.0);
    EXPECT_FALSE(frame.ok());
  }

  // The operator plane must stay reachable exactly when the serving plane
  // is saturated.
  Result<HttpResponse> health = HttpGet(fx.server->admin_port(), "/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
  fx.server->Stop();
}

// ---------------------------------------------------------------------------
// Distributed tracing: wire v2 compatibility, trace adoption, /trace, and
// Prometheus exemplars.

// A v1 client (no flags word, no trace extension) must round-trip against
// a v2 server unchanged.
TEST(NetServerTraceTest, Version1ClientServedByVersion2Server) {
  Fixture fx(/*k=*/10);
  Result<NetClient> client = NetClient::Connect(fx.server->port());
  ASSERT_TRUE(client.ok());

  const auto& row = fx.db.row(2);
  const ServiceRequest sr{row.user, row.location, {{"poi", "rest"}}};
  std::string frame =
      EncodeFrame(MsgType::kServeRequest, EncodeServiceRequest(sr));
  frame[4] = 0x01;  // rewrite the version byte: a legacy v1 sender
  const ssize_t wrote = ::send(client->fd(), frame.data(), frame.size(), 0);
  ASSERT_EQ(wrote, static_cast<ssize_t>(frame.size()));

  Result<Frame> reply = client->ReadFrame(10.0);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, MsgType::kServeResponse);
  Result<ServeResponseMsg> msg = DecodeServeResponse(reply->payload);
  ASSERT_TRUE(msg.ok());
  EXPECT_GE(msg->group_size, 10u);
  fx.server->Stop();
}

// A wire-propagated trace context is adopted by the server: the /trace
// endpoint reports the client-chosen trace id with the server's span tree.
TEST(NetServerTraceTest, TraceEndpointReportsAdoptedTraceWithSpans) {
  Fixture fx(/*k=*/10, WithAdminPlane());
  obs::TailTraceRing::Global().Reset();
  Result<NetClient> client = NetClient::Connect(fx.server->port());
  ASSERT_TRUE(client.ok());

  const uint64_t trace_id = obs::NewTraceId();
  const WireTraceContext wire{trace_id, /*parent_span_id=*/77, true};
  const auto& row = fx.db.row(5);
  const ServiceRequest sr{row.user, row.location, {{"poi", "rest"}}};
  Result<Frame> reply = client->Call(MsgType::kServeRequest,
                                     EncodeServiceRequest(sr), wire, 10.0);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, MsgType::kServeResponse);

  Result<HttpResponse> response = HttpGet(fx.server->admin_port(), "/trace");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->headers.at("content-type"), "application/json");
  Result<obs::json::Value> doc = obs::json::Parse(response->body);
  ASSERT_TRUE(doc.ok()) << response->body;
  const obs::json::Value* slowest = doc->Find("slowest");
  ASSERT_NE(slowest, nullptr);
  const obs::json::Value* ours = nullptr;
  for (const obs::json::Value& trace : slowest->array()) {
    if (trace.Find("trace_id")->str() == obs::TraceIdHex(trace_id)) {
      ours = &trace;
    }
  }
  ASSERT_NE(ours, nullptr) << response->body;
  EXPECT_EQ(ours->Find("outcome")->str(), "served");
  EXPECT_GT(ours->Find("total_seconds")->number(), 0.0);
  // The span tree must contain the dispatch root parented under the
  // wire-carried span, and the downstream cloak/LBS hops.
  const obs::json::Value* spans = ours->Find("spans");
  ASSERT_NE(spans, nullptr);
  bool saw_dispatch = false, saw_csp = false, saw_lbs = false;
  for (const obs::json::Value& span : spans->array()) {
    const std::string& path = span.Find("path")->str();
    if (path == "net/dispatch") {
      EXPECT_EQ(span.Find("parent_span_id")->str(), obs::TraceIdHex(77));
      saw_dispatch = true;
    }
    if (path.find("csp/handle_request") != std::string::npos) saw_csp = true;
    if (path.find("lbs/serve") != std::string::npos) saw_lbs = true;
  }
  EXPECT_TRUE(saw_dispatch) << response->body;
  EXPECT_TRUE(saw_csp) << response->body;
  EXPECT_TRUE(saw_lbs) << response->body;
  fx.server->Stop();
}

// Untraced requests still land in the tail ring: the server originates a
// trace id of its own when the ring is armed.
TEST(NetServerTraceTest, ServerOriginatesTraceForUntracedRequests) {
  Fixture fx(/*k=*/10, WithAdminPlane());
  obs::TailTraceRing::Global().Reset();
  std::atomic<int> failures{0};
  ServeAndVerify(fx.server->port(), fx.db, 10, 0, 3, &failures);
  ASSERT_EQ(failures.load(), 0);

  Result<HttpResponse> response = HttpGet(fx.server->admin_port(), "/trace");
  ASSERT_TRUE(response.ok());
  Result<obs::json::Value> doc = obs::json::Parse(response->body);
  ASSERT_TRUE(doc.ok());
  const obs::json::Value* slowest = doc->Find("slowest");
  ASSERT_NE(slowest, nullptr);
  ASSERT_FALSE(slowest->array().empty()) << response->body;
  EXPECT_NE(slowest->array()[0].Find("trace_id")->str(),
            obs::TraceIdHex(0));
  fx.server->Stop();
}

// With --exemplars the Prometheus scrape carries OpenMetrics-style
// exemplars on histogram buckets, and stays format-conformant.
TEST(NetServerTraceTest, MetricsCarryExemplarsWhenEnabled) {
  NetServerOptions options = WithAdminPlane();
  options.exemplars = true;
  Fixture fx(/*k=*/10, options);
  // The registry is process-global and exemplars keep the largest value
  // per bucket: clear earlier tests' observations so ours wins its bucket.
  obs::MetricsRegistry::Global().Reset();
  Result<NetClient> client = NetClient::Connect(fx.server->port());
  ASSERT_TRUE(client.ok());

  const uint64_t trace_id = obs::NewTraceId();
  const WireTraceContext wire{trace_id, 0, true};
  const auto& row = fx.db.row(7);
  const ServiceRequest sr{row.user, row.location, {{"poi", "rest"}}};
  ASSERT_TRUE(client
                  ->Call(MsgType::kServeRequest, EncodeServiceRequest(sr),
                         wire, 10.0)
                  .ok());

  Result<HttpResponse> response = HttpGet(fx.server->admin_port(), "/metrics");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  const std::string needle =
      "# {trace_id=\"" + obs::TraceIdHex(trace_id) + "\"}";
  EXPECT_NE(response->body.find(needle), std::string::npos);
  const Status format = obs::CheckPrometheusText(response->body);
  EXPECT_TRUE(format.ok()) << format.ToString();
  fx.server->Stop();
}

// Disabling tail capture turns /trace into an empty (but well-formed)
// report and skips per-request collection entirely.
TEST(NetServerTraceTest, TailCaptureCanBeDisabled) {
  NetServerOptions options = WithAdminPlane();
  options.tail_traces = false;
  Fixture fx(/*k=*/10, options);
  // The ring is process-global: an earlier test's server may have armed it.
  obs::TailTraceRing::Global().Disable();
  obs::TailTraceRing::Global().Reset();
  std::atomic<int> failures{0};
  ServeAndVerify(fx.server->port(), fx.db, 10, 0, 3, &failures);
  ASSERT_EQ(failures.load(), 0);

  Result<HttpResponse> response = HttpGet(fx.server->admin_port(), "/trace");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  Result<obs::json::Value> doc = obs::json::Parse(response->body);
  ASSERT_TRUE(doc.ok());
  const obs::json::Value* slowest = doc->Find("slowest");
  ASSERT_NE(slowest, nullptr);
  EXPECT_TRUE(slowest->array().empty()) << response->body;
  fx.server->Stop();
}

}  // namespace
}  // namespace net
}  // namespace pasa
