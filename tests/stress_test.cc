// Adversarial-geometry and long-run stress tests: degenerate snapshots,
// heavy coordinate duplication, boundary k values, and extended incremental
// maintenance sessions with splits and collapses.

#include <gtest/gtest.h>

#include "attack/auditor.h"
#include "pasa/anonymizer.h"
#include "pasa/incremental.h"
#include "tests/test_util.h"
#include "workload/bay_area.h"
#include "workload/movement.h"

namespace pasa {
namespace {

using testing_util::MakeDb;
using testing_util::RandomDb;

void ExpectValidOptimum(const LocationDatabase& db, const MapExtent& extent,
                        int k) {
  AnonymizerOptions options;
  options.k = k;
  Result<Anonymizer> a = Anonymizer::Build(db, extent, options);
  ASSERT_TRUE(a.ok()) << "k=" << k << ": " << a.status().ToString();
  EXPECT_TRUE(a->policy().IsMasking(db));
  EXPECT_GE(a->policy().MinGroupSize(), static_cast<size_t>(k));
  EXPECT_TRUE(SatisfiesKSummation(a->tree(), a->config(), k));
  EXPECT_EQ(a->policy().TotalCost(), a->cost());
}

TEST(StressGeometry, AllUsersOnOneHorizontalLine) {
  std::vector<Point> points;
  for (Coord x = 0; x < 32; ++x) points.push_back({x, 7});
  const LocationDatabase db = MakeDb(points);
  for (const int k : {2, 5, 16, 32}) {
    ExpectValidOptimum(db, MapExtent{0, 0, 5}, k);
  }
}

TEST(StressGeometry, UsersAtTheFourMapCorners) {
  const Coord side = 255;
  const LocationDatabase db = MakeDb(
      {{0, 0}, {side, 0}, {0, side}, {side, side}, {0, 1}, {side, 1}});
  for (const int k : {2, 3, 6}) {
    ExpectValidOptimum(db, MapExtent{0, 0, 8}, k);
  }
}

TEST(StressGeometry, HeavyCoordinateDuplication) {
  // 40 users on only 3 distinct points: unsplittable 1x1 leaves hold far
  // more than k users, exercising the leaf dense-row path (d >> k).
  std::vector<Point> points;
  for (int i = 0; i < 40; ++i) {
    points.push_back(i % 3 == 0 ? Point{1, 1}
                                : (i % 3 == 1 ? Point{6, 6} : Point{1, 6}));
  }
  const LocationDatabase db = MakeDb(points);
  for (const int k : {2, 7, 13, 40}) {
    ExpectValidOptimum(db, MapExtent{0, 0, 3}, k);
  }
}

TEST(StressGeometry, BoundaryKValues) {
  Rng rng(1);
  const MapExtent extent{0, 0, 5};
  const LocationDatabase db = RandomDb(&rng, 64, extent);
  ExpectValidOptimum(db, extent, 1);
  ExpectValidOptimum(db, extent, 63);
  ExpectValidOptimum(db, extent, 64);  // k == |D|: one group
  AnonymizerOptions options;
  options.k = 65;                      // k > |D|: infeasible
  EXPECT_EQ(Anonymizer::Build(db, extent, options).status().code(),
            StatusCode::kInfeasible);
}

TEST(StressGeometry, OneByOneMap) {
  // Everything collapses onto one unsplittable cell.
  std::vector<Point> points(10, Point{0, 0});
  const LocationDatabase db = MakeDb(points);
  AnonymizerOptions options;
  options.k = 4;
  Result<Anonymizer> a = Anonymizer::Build(db, MapExtent{0, 0, 0}, options);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->cost(), 10);  // 10 users x area 1
}

TEST(StressGeometry, SingleUserKOne) {
  const LocationDatabase db = MakeDb({{3, 3}});
  AnonymizerOptions options;
  options.k = 1;
  Result<Anonymizer> a = Anonymizer::Build(db, MapExtent{0, 0, 3}, options);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->policy().MinGroupSize(), 1u);
  EXPECT_TRUE(a->CloakForRow(0).Contains({3, 3}));
}

TEST(StressIncremental, ThirtySnapshotsStayOptimal) {
  BayAreaOptions bay;
  bay.log2_map_side = 12;
  bay.num_intersections = 500;
  bay.users_per_intersection = 5;
  bay.user_sigma = 40.0;
  bay.num_clusters = 8;
  bay.seed = 31;
  const BayAreaGenerator generator(bay);
  LocationDatabase db = generator.Generate(2500);
  const int k = 15;

  Result<IncrementalAnonymizer> engine =
      IncrementalAnonymizer::Build(db, generator.extent(), k, DpOptions{});
  ASSERT_TRUE(engine.ok());

  for (int snapshot = 0; snapshot < 30; ++snapshot) {
    MovementOptions movement;
    movement.moving_fraction = 0.02;
    movement.max_distance = 120.0;
    movement.seed = 10'000 + static_cast<uint64_t>(snapshot);
    const std::vector<UserMove> moves =
        DrawMoves(db, generator.extent(), movement);
    ASSERT_TRUE(engine->ApplyMoves(moves).ok()) << snapshot;
    ASSERT_TRUE(ApplyMovesToDatabase(moves, &db).ok());

    // Every 10th snapshot, verify against a full rebuild.
    if (snapshot % 10 == 9) {
      Result<IncrementalAnonymizer> fresh = IncrementalAnonymizer::Build(
          db, generator.extent(), k, DpOptions{});
      ASSERT_TRUE(fresh.ok());
      EXPECT_EQ(*engine->OptimalCost(), *fresh->OptimalCost())
          << "snapshot " << snapshot;
    }
  }
  // Final policy remains fully valid.
  Result<ExtractedPolicy> policy = engine->ExtractPolicy();
  ASSERT_TRUE(policy.ok());
  EXPECT_TRUE(policy->table.IsMasking(db));
  EXPECT_GE(policy->table.MinGroupSize(), static_cast<size_t>(k));
}

TEST(StressIncremental, EveryoneConvergesToOnePoint) {
  // Waves of moves funnel all users into a single cell: massive collapses.
  Rng rng(4);
  const MapExtent extent{0, 0, 6};
  LocationDatabase db = RandomDb(&rng, 300, extent);
  const int k = 10;
  Result<IncrementalAnonymizer> engine =
      IncrementalAnonymizer::Build(db, extent, k, DpOptions{});
  ASSERT_TRUE(engine.ok());

  const Point sink{32, 32};
  std::vector<UserMove> moves;
  for (uint32_t row = 0; row < db.size(); ++row) {
    moves.push_back(UserMove{row, db.row(row).location, sink});
  }
  ASSERT_TRUE(engine->ApplyMoves(moves).ok());
  ASSERT_TRUE(ApplyMovesToDatabase(moves, &db).ok());
  Result<Cost> cost = engine->OptimalCost();
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(*cost, static_cast<Cost>(db.size()));  // all in one 1x1 cell
  // And disperse again.
  std::vector<UserMove> back;
  for (uint32_t row = 0; row < db.size(); ++row) {
    back.push_back(UserMove{
        row, sink,
        Point{static_cast<Coord>(rng.NextBounded(extent.side())),
              static_cast<Coord>(rng.NextBounded(extent.side()))}});
  }
  ASSERT_TRUE(engine->ApplyMoves(back).ok());
  ASSERT_TRUE(ApplyMovesToDatabase(back, &db).ok());
  Result<IncrementalAnonymizer> fresh =
      IncrementalAnonymizer::Build(db, extent, k, DpOptions{});
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(*engine->OptimalCost(), *fresh->OptimalCost());
}

}  // namespace
}  // namespace pasa
