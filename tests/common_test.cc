// Unit tests for the common utilities: Status/Result, deterministic RNG,
// summary statistics and the table printer.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table.h"
#include "common/timer.h"

namespace pasa {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::Infeasible("too few users");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInfeasible);
  EXPECT_EQ(s.message(), "too few users");
  EXPECT_EQ(s.ToString(), "INFEASIBLE: too few users");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInfeasible, StatusCode::kInvalidArgument,
        StatusCode::kInternal, StatusCode::kNotFound,
        StatusCode::kUnavailable, StatusCode::kDeadlineExceeded}) {
    EXPECT_STRNE(StatusCodeName(code), "UNKNOWN");
  }
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
}

TEST(StatusTest, ResilienceFactories) {
  const Status unavailable = Status::Unavailable("provider down");
  EXPECT_EQ(unavailable.code(), StatusCode::kUnavailable);
  EXPECT_EQ(unavailable.ToString(), "UNAVAILABLE: provider down");
  const Status deadline = Status::DeadlineExceeded("budget spent");
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.ToString(), "DEADLINE_EXCEEDED: budget spent");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
  }
}

TEST(RngTest, NextInRangeIsInclusive) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(4);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(RngTest, SampleIndicesDistinctAndComplete) {
  Rng rng(5);
  const auto sample = rng.SampleIndices(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const uint32_t v : sample) EXPECT_LT(v, 100u);

  // Dense sampling path (count * 4 >= population).
  const auto dense = rng.SampleIndices(40, 35);
  std::set<uint32_t> unique_dense(dense.begin(), dense.end());
  EXPECT_EQ(unique_dense.size(), 35u);
}

TEST(RngTest, SampleAllIndices) {
  Rng rng(6);
  const auto all = rng.SampleIndices(10, 10);
  std::set<uint32_t> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) s.Add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(StatsTest, VarianceOfSingletonIsZero) {
  RunningStats s;
  s.Add(7.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StatsTest, EmptyRunningStatsHasNanExtremes) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(StatsTest, FirstAddReplacesNanExtremes) {
  RunningStats s;
  s.Add(-3.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), -3.0);
}

TEST(StatsTest, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 50), 2.5);
  EXPECT_DOUBLE_EQ(Percentile({4, 1, 3, 2}, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({4, 1, 3, 2}, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(StatsTest, PercentileEdgeCases) {
  // Empty input: 0 regardless of p.
  EXPECT_DOUBLE_EQ(Percentile({}, 0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 100), 0.0);
  // Single element: every percentile is that element.
  EXPECT_DOUBLE_EQ(Percentile({9.5}, 0), 9.5);
  EXPECT_DOUBLE_EQ(Percentile({9.5}, 37), 9.5);
  EXPECT_DOUBLE_EQ(Percentile({9.5}, 100), 9.5);
  // Out-of-range p clamps to the extremes.
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3}, -10), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3}, 250), 3.0);
}

TEST(StatsTest, ThousandsSeparators) {
  EXPECT_EQ(WithThousandsSeparators(0), "0");
  EXPECT_EQ(WithThousandsSeparators(999), "999");
  EXPECT_EQ(WithThousandsSeparators(1000), "1,000");
  EXPECT_EQ(WithThousandsSeparators(1750000), "1,750,000");
  EXPECT_EQ(WithThousandsSeparators(-1234567), "-1,234,567");
}

TEST(TableTest, RendersAlignedColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "20000"});
  const std::string rendered = t.ToString();
  EXPECT_NE(rendered.find("| name  | value |"), std::string::npos);
  EXPECT_NE(rendered.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(rendered.find("| b     | 20000 |"), std::string::npos);
}

TEST(TableTest, CellFormatters) {
  EXPECT_EQ(TablePrinter::Cell(int64_t{42}), "42");
  EXPECT_EQ(TablePrinter::Cell(3.14159, 2), "3.14");
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), timer.ElapsedSeconds());
}

}  // namespace
}  // namespace pasa
