// Unit tests for the Anonymizer facade and the BulkPolicyAlgorithm adapter.

#include <gtest/gtest.h>

#include "pasa/anonymizer.h"
#include "tests/test_util.h"

namespace pasa {
namespace {

using testing_util::MakeDb;
using testing_util::RandomDb;

TEST(AnonymizerTest, RejectsBadOptions) {
  const LocationDatabase db = MakeDb({{0, 0}, {1, 1}});
  AnonymizerOptions options;
  options.k = 0;
  EXPECT_EQ(Anonymizer::Build(db, MapExtent{0, 0, 2}, options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(AnonymizerTest, DerivedExtentCoversSnapshot) {
  Rng rng(5);
  const LocationDatabase db = RandomDb(&rng, 40, MapExtent{100, 200, 5});
  AnonymizerOptions options;
  options.k = 4;
  Result<Anonymizer> a = Anonymizer::Build(db, options);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_TRUE(a->policy().IsMasking(db));
  EXPECT_GE(a->policy().MinGroupSize(), 4u);
}

TEST(AnonymizerTest, SplitThresholdOverrideChangesTreeNotSafety) {
  Rng rng(6);
  const MapExtent extent{0, 0, 5};
  const LocationDatabase db = RandomDb(&rng, 200, extent);
  AnonymizerOptions coarse;
  coarse.k = 5;
  coarse.split_threshold = 50;  // much coarser tree than k
  Result<Anonymizer> a = Anonymizer::Build(db, extent, coarse);
  ASSERT_TRUE(a.ok());
  EXPECT_GE(a->policy().MinGroupSize(), 5u);

  AnonymizerOptions fine;
  fine.k = 5;
  Result<Anonymizer> b = Anonymizer::Build(db, extent, fine);
  ASSERT_TRUE(b.ok());
  // The finer tree only adds cloak candidates: its optimum cannot be worse.
  EXPECT_LE(b->cost(), a->cost());
}

TEST(AnonymizerTest, RequestIdsAreFreshAndSequentialPerEngine) {
  const LocationDatabase db =
      MakeDb({{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  AnonymizerOptions options;
  options.k = 2;
  Result<Anonymizer> a = Anonymizer::Build(db, MapExtent{0, 0, 1}, options);
  ASSERT_TRUE(a.ok());
  const ServiceRequest sr{0, {0, 0}, {}};
  Result<AnonymizedRequest> first = a->Anonymize(sr);
  Result<AnonymizedRequest> second = a->Anonymize(sr);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_NE(first->rid, second->rid);
  EXPECT_EQ(first->cloak, second->cloak);  // same snapshot, same policy
}

TEST(AnonymizerTest, UnknownSenderAndStaleLocation) {
  const LocationDatabase db =
      MakeDb({{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  AnonymizerOptions options;
  options.k = 2;
  Result<Anonymizer> a = Anonymizer::Build(db, MapExtent{0, 0, 1}, options);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->Anonymize(ServiceRequest{99, {0, 0}, {}}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(a->Anonymize(ServiceRequest{0, {1, 1}, {}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(a->CloakForUser(99).status().code(), StatusCode::kNotFound);
}

TEST(AnonymizerTest, AdapterMatchesDirectBuild) {
  Rng rng(7);
  const MapExtent extent{0, 0, 5};
  const LocationDatabase db = RandomDb(&rng, 150, extent);
  const int k = 6;
  const PolicyAwareOptimumAlgorithm algorithm(extent);
  EXPECT_EQ(algorithm.name(), "PolicyAware-OPT");
  Result<CloakingTable> via_adapter = algorithm.Cloak(db, k);
  AnonymizerOptions options;
  options.k = k;
  Result<Anonymizer> direct = Anonymizer::Build(db, extent, options);
  ASSERT_TRUE(via_adapter.ok() && direct.ok());
  EXPECT_EQ(via_adapter->TotalCost(), direct->cost());
  for (size_t row = 0; row < db.size(); ++row) {
    EXPECT_EQ(via_adapter->cloak(row), direct->CloakForRow(row));
  }
}

TEST(AnonymizerTest, ExactlyKUsersCloakTogether) {
  // |D| == k forces a single group; the optimum is the tightest node
  // containing everyone.
  const LocationDatabase db = MakeDb({{0, 0}, {0, 1}, {1, 0}});
  AnonymizerOptions options;
  options.k = 3;
  Result<Anonymizer> a = Anonymizer::Build(db, MapExtent{0, 0, 3}, options);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->policy().MinGroupSize(), 3u);
  const Rect cloak = a->CloakForRow(0);
  EXPECT_EQ(a->CloakForRow(1), cloak);
  EXPECT_EQ(a->CloakForRow(2), cloak);
  // All three fit in the 2x2 SW quadrant; its west vertical semi (1x2) even
  // fails to contain (1,0), so the optimum is the 2x2 quadrant or smaller.
  EXPECT_LE(cloak.Area(), 4);
}

}  // namespace
}  // namespace pasa
