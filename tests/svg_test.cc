// Tests for the SVG exporter: structural validity and content scaling.

#include <gtest/gtest.h>

#include "io/svg.h"
#include "tests/test_util.h"

namespace pasa {
namespace {

using testing_util::MakeDb;
using testing_util::RandomDb;

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(SvgTest, CloakingRenderHasOneRectPerDistinctCloak) {
  const LocationDatabase db = MakeDb({{0, 0}, {0, 1}, {3, 3}, {3, 2}});
  CloakingTable table(4);
  const Rect a{0, 0, 2, 2};
  const Rect b{2, 2, 4, 4};
  table.Assign(0, a);
  table.Assign(1, a);
  table.Assign(2, b);
  table.Assign(3, b);
  const std::string svg =
      RenderCloakingSvg(db, table, Rect{0, 0, 4, 4});
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // 1 background + 2 distinct cloaks.
  EXPECT_EQ(CountOccurrences(svg, "<rect"), 3u);
  // One dot per user.
  EXPECT_EQ(CountOccurrences(svg, "<circle"), 4u);
}

TEST(SvgTest, UsersCanBeTurnedOff) {
  const LocationDatabase db = MakeDb({{0, 0}});
  CloakingTable table(1);
  table.Assign(0, Rect{0, 0, 1, 1});
  SvgOptions options;
  options.draw_users = false;
  const std::string svg =
      RenderCloakingSvg(db, table, Rect{0, 0, 2, 2}, options);
  EXPECT_EQ(CountOccurrences(svg, "<circle"), 0u);
}

TEST(SvgTest, TreeRenderHasOneRectPerLiveLeaf) {
  Rng rng(1);
  const MapExtent extent{0, 0, 4};
  const LocationDatabase db = RandomDb(&rng, 60, extent);
  Result<BinaryTree> tree =
      BinaryTree::Build(db, extent, TreeOptions{.split_threshold = 5});
  ASSERT_TRUE(tree.ok());
  const std::string svg = RenderTreeSvg(*tree);
  EXPECT_EQ(CountOccurrences(svg, "<rect"),
            tree->ComputeShapeStats().leaves + 1);  // + background
}

TEST(SvgTest, SaveToDisk) {
  const std::string path = ::testing::TempDir() + "/pasa_svg_test.svg";
  ASSERT_TRUE(SaveSvg("<svg></svg>", path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(SaveSvg("<svg></svg>", "/no/such/dir/x.svg").ok());
}

}  // namespace
}  // namespace pasa
