// Unit tests for the observability layer: metric primitives, the global
// registry, hierarchical span tracing, the runtime kill switch and the
// JSON / Prometheus exporters.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/mem.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pasa {
namespace obs {
namespace {

// Every test runs against the process-wide registry and kill switch, so
// start each one enabled and zeroed.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Configure(ObsOptions{.enabled = true});
    MetricsRegistry::Global().Reset();
  }
  void TearDown() override { Configure(ObsOptions{.enabled = true}); }
};

TEST_F(ObsTest, CounterIncrements) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST_F(ObsTest, CounterIsExactUnderConcurrency) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), static_cast<uint64_t>(kThreads * kPerThread));
}

TEST_F(ObsTest, GaugeLastWriteWins) {
  Gauge gauge;
  gauge.Set(1.5);
  gauge.Set(-2.25);
  EXPECT_DOUBLE_EQ(gauge.value(), -2.25);
}

TEST_F(ObsTest, HistogramBucketSemantics) {
  Histogram h({1.0, 2.0, 5.0});
  // A value equal to an upper bound lands in that bucket (le semantics).
  h.Observe(0.5);   // bucket le=1
  h.Observe(1.0);   // bucket le=1
  h.Observe(1.5);   // bucket le=2
  h.Observe(5.0);   // bucket le=5
  h.Observe(99.0);  // +Inf bucket
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 5.0 + 99.0);
  const std::vector<uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + implicit +Inf
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST_F(ObsTest, RegistryDefaultsHistogramBucketsAndKeepsFirstBounds) {
  auto& registry = MetricsRegistry::Global();
  Histogram& defaulted = registry.GetHistogram("obs_test/defaulted");
  EXPECT_EQ(defaulted.upper_bounds(), DefaultLatencyBuckets());
  Histogram& custom = registry.GetHistogram("obs_test/custom", {1.0, 2.0});
  // Bounds are fixed at first registration; later lookups ignore them.
  Histogram& again = registry.GetHistogram("obs_test/custom", {7.0});
  EXPECT_EQ(&custom, &again);
  EXPECT_EQ(again.upper_bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST_F(ObsTest, MismatchedHistogramBoundsAreCountedNotSilent) {
  auto& registry = MetricsRegistry::Global();
  Counter& mismatches =
      registry.GetCounter("obs/histogram_bounds_mismatches");
  const uint64_t before = mismatches.value();
  Histogram& first = registry.GetHistogram("obs_test/mismatch", {1.0, 2.0});
  // Same bounds (in any order): no mismatch recorded.
  registry.GetHistogram("obs_test/mismatch", {2.0, 1.0});
  EXPECT_EQ(mismatches.value(), before);
  // Defaulted bounds on lookup: also not a mismatch.
  registry.GetHistogram("obs_test/mismatch");
  EXPECT_EQ(mismatches.value(), before);
  // Genuinely different bounds: first registration wins, but the footgun
  // is now visible as a counter (and a warning log).
  Histogram& again = registry.GetHistogram("obs_test/mismatch", {7.0});
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(again.upper_bounds(), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(mismatches.value(), before + 1);
}

TEST_F(ObsTest, SpanStatsTracksExtremes) {
  SpanStats stats;
  EXPECT_TRUE(std::isnan(stats.min_seconds()));
  EXPECT_TRUE(std::isnan(stats.max_seconds()));
  stats.Record(0.25);
  stats.Record(0.75, 3);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.total_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(stats.min_seconds(), 0.25);
  EXPECT_DOUBLE_EQ(stats.max_seconds(), 0.75);
}

TEST_F(ObsTest, ScopedSpanNestsPaths) {
  {
    ScopedSpan outer("outer", ScopedSpan::kRoot);
    EXPECT_EQ(outer.path(), "outer");
    EXPECT_EQ(CurrentSpanPath(), "outer");
    {
      ScopedSpan inner("inner");
      EXPECT_EQ(inner.path(), "outer/inner");
      EXPECT_EQ(CurrentSpanPath(), "outer/inner");
      // A kRoot span ignores the enclosing stack.
      ScopedSpan rooted("rooted", ScopedSpan::kRoot);
      EXPECT_EQ(rooted.path(), "rooted");
    }
    EXPECT_EQ(CurrentSpanPath(), "outer");
  }
  EXPECT_EQ(CurrentSpanPath(), "");
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  ASSERT_EQ(snapshot.spans.count("outer"), 1u);
  ASSERT_EQ(snapshot.spans.count("outer/inner"), 1u);
  ASSERT_EQ(snapshot.spans.count("rooted"), 1u);
  EXPECT_EQ(snapshot.spans.at("outer").count, 1u);
  EXPECT_GE(snapshot.spans.at("outer").total_seconds,
            snapshot.spans.at("outer/inner").total_seconds);
}

TEST_F(ObsTest, ScopedHistogramTimerObservesLifetime) {
  Histogram& h = MetricsRegistry::Global().GetHistogram("obs_test/timer");
  { ScopedHistogramTimer timer(h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
}

TEST_F(ObsTest, DisabledModeIsInert) {
  auto& registry = MetricsRegistry::Global();
  Counter& counter = registry.GetCounter("obs_test/disabled_counter");
  Gauge& gauge = registry.GetGauge("obs_test/disabled_gauge");
  Histogram& histogram = registry.GetHistogram("obs_test/disabled_histogram");

  Configure(ObsOptions{.enabled = false});
  EXPECT_FALSE(Enabled());
  counter.Increment(100);
  gauge.Set(3.5);
  histogram.Observe(1.0);
  registry.RecordSpan("obs_test/disabled_phase", 1.0);
  {
    ScopedSpan span("obs_test/disabled_span", ScopedSpan::kRoot);
    EXPECT_EQ(span.path(), "");  // inert: no path, no stack entry
    EXPECT_EQ(CurrentSpanPath(), "");
  }
  Configure(ObsOptions{.enabled = true});

  EXPECT_EQ(counter.value(), 0u);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.count(), 0u);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.spans.count("obs_test/disabled_phase"), 0u);
  EXPECT_EQ(snapshot.spans.count("obs_test/disabled_span"), 0u);
}

TEST_F(ObsTest, ResetZeroesButKeepsReferences) {
  auto& registry = MetricsRegistry::Global();
  Counter& counter = registry.GetCounter("obs_test/reset_me");
  counter.Increment(7);
  registry.Reset();
  EXPECT_EQ(counter.value(), 0u);
  // Same object is returned after Reset, and it still works.
  EXPECT_EQ(&registry.GetCounter("obs_test/reset_me"), &counter);
  counter.Increment();
  EXPECT_EQ(counter.value(), 1u);
}

TEST_F(ObsTest, JsonExportRoundTrip) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("obs_test/hits").Increment(3);
  registry.GetGauge("obs_test/load").Set(0.5);
  registry.GetHistogram("obs_test/lat", {0.1, 1.0}).Observe(0.05);
  registry.RecordSpan("obs_test/phase", 2.0, 4);

  const std::string json = ExportJson(registry.Snapshot());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test/hits\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test/load\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"+Inf\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test/phase\""), std::string::npos);
  EXPECT_NE(json.find("\"total_seconds\": 2"), std::string::npos);
  // Deterministic: same snapshot serializes identically.
  EXPECT_EQ(json, ExportJson(registry.Snapshot()));
}

TEST_F(ObsTest, PrometheusExportSanitizesAndCumulates) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("obs_test/hits").Increment(3);
  Histogram& h = registry.GetHistogram("obs_test/lat_seconds", {0.1, 1.0});
  h.Observe(0.05);
  h.Observe(0.5);
  registry.RecordSpan("obs_test/phase", 2.0);

  const std::string text = ExportPrometheus(registry.Snapshot());
  // Counter: sanitized, prefixed, typed.
  EXPECT_NE(text.find("# TYPE pasa_obs_test_hits counter"), std::string::npos);
  EXPECT_NE(text.find("pasa_obs_test_hits 3"), std::string::npos);
  // Histogram buckets are cumulative: le="1" covers both observations.
  EXPECT_NE(text.find("pasa_obs_test_lat_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("pasa_obs_test_lat_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("pasa_obs_test_lat_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("pasa_obs_test_lat_seconds_count 2"), std::string::npos);
  // Spans keep the original path as a label.
  EXPECT_NE(text.find("pasa_span_seconds_total{span=\"obs_test/phase\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("pasa_span_count{span=\"obs_test/phase\"} 1"),
            std::string::npos);
}

TEST_F(ObsTest, PrometheusExportEmitsHelpLinesAndPassesTheChecker) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("obs_test/hits").Increment(3);
  registry.GetGauge("obs_test/load").Set(0.5);
  registry.GetHistogram("obs_test/lat_seconds", {0.1, 1.0}).Observe(0.05);
  registry.RecordSpan("obs_test/phase", 2.0);

  const std::string text = ExportPrometheus(registry.Snapshot());
  EXPECT_NE(text.find("# HELP pasa_obs_test_hits "), std::string::npos);
  EXPECT_NE(text.find("# HELP pasa_obs_test_load "), std::string::npos);
  EXPECT_NE(text.find("# HELP pasa_obs_test_lat_seconds "), std::string::npos);
  const Status format = CheckPrometheusText(text);
  EXPECT_TRUE(format.ok()) << format.ToString() << "\n" << text;
}

TEST_F(ObsTest, PrometheusEscapesHostileSpanNames) {
  auto& registry = MetricsRegistry::Global();
  // A span name with every character the text format must escape: quote,
  // backslash, newline.
  const std::string hostile = "evil\"span\\with\nnewline";
  registry.RecordSpan(hostile, 1.0);
  registry.RecordSpan("ok_span", 2.0);

  const std::string text = ExportPrometheus(registry.Snapshot());
  // The escaped label value appears...
  EXPECT_NE(text.find("span=\"evil\\\"span\\\\with\\nnewline\""),
            std::string::npos)
      << text;
  // ...and no raw newline leaked into the middle of a sample line: the
  // whole exposition still parses.
  const Status format = CheckPrometheusText(text);
  EXPECT_TRUE(format.ok()) << format.ToString() << "\n" << text;
}

TEST_F(ObsTest, LabeledNameBuildsCanonicalSeriesKeys) {
  EXPECT_EQ(LabeledName("csp/requests", {}), "csp/requests");
  // Labels sort by key; values get escaped.
  EXPECT_EQ(LabeledName("csp/requests",
                        {{"zone", "west"}, {"shard", "a\"b"}}),
            "csp/requests{shard=\"a\\\"b\",zone=\"west\"}");
  // Label keys are sanitized to the Prometheus label-name charset.
  EXPECT_EQ(LabeledName("x", {{"bad key!", "v"}}), "x{bad_key_=\"v\"}");
  EXPECT_EQ(PromLabelValueEscape("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
}

TEST_F(ObsTest, LabeledFamiliesStayContiguousInTheExport) {
  auto& registry = MetricsRegistry::Global();
  // "obs_test/reqs2" sorts lexically BETWEEN "obs_test/reqs" and
  // "obs_test/reqs{...}", so naive map-order emission would interleave the
  // family and break Prometheus ingestion.
  registry.GetCounter(LabeledName("obs_test/reqs", {{"shard", "a"}}))
      .Increment(1);
  registry.GetCounter(LabeledName("obs_test/reqs", {{"shard", "b"}}))
      .Increment(2);
  registry.GetCounter("obs_test/reqs2").Increment(3);

  const std::string text = ExportPrometheus(registry.Snapshot());
  EXPECT_NE(text.find("pasa_obs_test_reqs{shard=\"a\"} 1"), std::string::npos);
  EXPECT_NE(text.find("pasa_obs_test_reqs{shard=\"b\"} 2"), std::string::npos);
  // Exactly one TYPE header for the labeled family.
  const std::string header = "# TYPE pasa_obs_test_reqs counter";
  const size_t first = text.find(header);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find(header, first + 1), std::string::npos);
  const Status format = CheckPrometheusText(text);
  EXPECT_TRUE(format.ok()) << format.ToString() << "\n" << text;
}

TEST_F(ObsTest, CheckPrometheusTextAcceptsWellFormedExposition) {
  EXPECT_TRUE(CheckPrometheusText("# HELP m help text\n"
                                  "# TYPE m counter\n"
                                  "m 1\n"
                                  "m2{l=\"a b\"} 2.5\n")
                  .ok());
}

TEST_F(ObsTest, CheckPrometheusTextRejectsMalformedExposition) {
  // Empty / missing trailing newline.
  EXPECT_FALSE(CheckPrometheusText("").ok());
  EXPECT_FALSE(CheckPrometheusText("m 1").ok());
  // Bad metric name (leading digit) and bad value.
  EXPECT_FALSE(CheckPrometheusText("2bad 1\n").ok());
  EXPECT_FALSE(CheckPrometheusText("m notanumber\n").ok());
  // Unknown TYPE and duplicate TYPE.
  EXPECT_FALSE(CheckPrometheusText("# TYPE m flavor\nm 1\n").ok());
  EXPECT_FALSE(
      CheckPrometheusText("# TYPE m counter\n# TYPE m counter\nm 1\n").ok());
  // Unescaped quote / invalid escape inside a label value.
  EXPECT_FALSE(CheckPrometheusText("m{l=\"a\\q\"} 1\n").ok());
  // Interleaved families: 'a' reopened after 'b' started.
  EXPECT_FALSE(CheckPrometheusText("# TYPE a counter\n"
                                   "a 1\n"
                                   "# TYPE b counter\n"
                                   "b 1\n"
                                   "a 2\n")
                   .ok());
}

// Replicates the exporter's name mangling: "pasa_" + path with every
// non-[a-zA-Z0-9_] byte replaced by '_'; a LabeledName key keeps its
// "{k=\"v\"}" suffix verbatim.
std::string PromSampleOf(const std::string& key) {
  const size_t brace = key.find('{');
  const std::string path =
      brace == std::string::npos ? key : key.substr(0, brace);
  std::string out = "pasa_";
  for (const char c : path) {
    out += (std::isalnum(static_cast<unsigned char>(c)) || c == '_') ? c
                                                                     : '_';
  }
  if (brace != std::string::npos) out += key.substr(brace);
  return out;
}

// Lines of `text` starting with `sample` immediately followed by a space
// (the exposition's name/value separator), i.e. whole-name matches only.
size_t CountSampleLines(const std::string& text, const std::string& sample) {
  size_t n = 0;
  size_t pos = 0;
  while ((pos = text.find(sample, pos)) != std::string::npos) {
    const bool line_start = pos == 0 || text[pos - 1] == '\n';
    const size_t end = pos + sample.size();
    if (line_start && end < text.size() && text[end] == ' ') ++n;
    pos = end;
  }
  return n;
}

// Exporter completeness: every metric registered in the snapshot — plain
// counters and gauges, LabeledName families (including the accountant's
// pasa_mem_bytes{subsystem="..."} gauges) and histograms — appears in the
// exposition exactly once, and the whole text passes the format checker
// (which additionally enforces one TYPE header per family and contiguous
// families). A metric silently dropped or double-emitted by the exporter
// fails here before any dashboard notices.
TEST_F(ObsTest, PrometheusExporterEmitsEveryRegisteredMetricExactlyOnce) {
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("obs_test/complete/count").Increment(3);
  registry
      .GetCounter(LabeledName("obs_test/complete/labeled", {{"shard", "a"}}))
      .Increment();
  registry
      .GetCounter(LabeledName("obs_test/complete/labeled", {{"shard", "b"}}))
      .Increment(2);
  registry.GetGauge("obs_test/complete/gauge").Set(1.5);
  registry.GetHistogram("obs_test/complete/hist", {0.1, 1.0}).Observe(0.5);
  MemoryAccountant::Global().GetCounter("obs_test/mem_subsystem").Set(64);
  MemoryAccountant::Global().PublishGauges(registry);

  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_GE(snapshot.counters.size() + snapshot.gauges.size(), 5u);
  const std::string text = ExportPrometheus(snapshot);
  const Status format = CheckPrometheusText(text);
  ASSERT_TRUE(format.ok()) << format.ToString();

  for (const auto& [key, value] : snapshot.counters) {
    EXPECT_EQ(CountSampleLines(text, PromSampleOf(key)), 1u) << key;
  }
  for (const auto& [key, value] : snapshot.gauges) {
    EXPECT_EQ(CountSampleLines(text, PromSampleOf(key)), 1u) << key;
  }
  for (const auto& [key, data] : snapshot.histograms) {
    EXPECT_EQ(CountSampleLines(text, PromSampleOf(key) + "_sum"), 1u) << key;
    EXPECT_EQ(CountSampleLines(text, PromSampleOf(key) + "_count"), 1u)
        << key;
    // One bucket line per bound plus +Inf.
    EXPECT_EQ(
        CountSampleLines(text, PromSampleOf(key) + "_bucket{le=\"+Inf\"}"),
        1u)
        << key;
  }
  MemoryAccountant::Global().Reset();
}

}  // namespace
}  // namespace obs
}  // namespace pasa
