// End-to-end tests for the trusted-CSP server: request handling, snapshot
// advancement (incremental vs rebuild), cache shielding, and privacy audits.

#include <gtest/gtest.h>

#include "attack/auditor.h"
#include "csp/server.h"
#include "fault/injector.h"
#include "obs/mem.h"
#include "obs/metrics.h"
#include "workload/bay_area.h"
#include "workload/movement.h"
#include "workload/requests.h"

namespace pasa {
namespace {

BayAreaOptions SmallBay() {
  BayAreaOptions options;
  options.log2_map_side = 13;
  options.num_intersections = 300;
  options.users_per_intersection = 5;
  options.user_sigma = 40.0;
  options.num_clusters = 8;
  options.seed = 17;
  return options;
}

PoiDatabase SomePois(const MapExtent& extent, size_t n) {
  Rng rng(5);
  const std::vector<std::string> categories = {"rest", "groc", "cinema",
                                               "gas", "hospital"};
  std::vector<PointOfInterest> pois;
  for (size_t i = 0; i < n; ++i) {
    pois.push_back(PointOfInterest{
        static_cast<int64_t>(i),
        Point{static_cast<Coord>(rng.NextBounded(extent.side())),
              static_cast<Coord>(rng.NextBounded(extent.side()))},
        categories[rng.NextBounded(categories.size())]});
  }
  return PoiDatabase(std::move(pois));
}

TEST(CspServerTest, ServesValidRequestsRejectsStaleOnes) {
  const BayAreaGenerator gen(SmallBay());
  LocationDatabase db = gen.Generate(800);
  CspOptions options;
  options.k = 10;
  Result<CspServer> csp = CspServer::Start(db, gen.extent(),
                                           SomePois(gen.extent(), 500),
                                           options);
  ASSERT_TRUE(csp.ok()) << csp.status().ToString();

  RequestGenerator requests(3);
  for (const ServiceRequest& sr : requests.Draw(db, 100)) {
    Result<LbsAnswer> answer = csp->HandleRequest(sr);
    ASSERT_TRUE(answer.ok());
    EXPECT_LE(answer->pois.size(), options.answers_per_request);
    EXPECT_FALSE(answer->degraded);
  }
  EXPECT_EQ(csp->stats().requests_served, 100u);

  // Unknown user and stale location are rejected.
  EXPECT_FALSE(csp->HandleRequest(ServiceRequest{999999, {0, 0}, {}}).ok());
  const Point actual = db.row(0).location;
  EXPECT_FALSE(csp->HandleRequest(
                      ServiceRequest{db.row(0).user,
                                     {actual.x + 1, actual.y}, {}})
                   .ok());
  EXPECT_EQ(csp->stats().requests_rejected, 2u);
}

TEST(CspServerTest, CacheShieldsTheLbsFromDuplicates) {
  const BayAreaGenerator gen(SmallBay());
  LocationDatabase db = gen.Generate(500);
  CspOptions options;
  options.k = 10;
  Result<CspServer> csp = CspServer::Start(db, gen.extent(),
                                           SomePois(gen.extent(), 300),
                                           options);
  ASSERT_TRUE(csp.ok());

  // The same user asks the same thing 20 times: the LBS sees one request.
  const ServiceRequest sr{db.row(0).user, db.row(0).location,
                          {{"poi", "rest"}}};
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(csp->HandleRequest(sr).ok());
  }
  EXPECT_EQ(csp->stats().requests_served, 20u);
  EXPECT_EQ(csp->lbs_requests_seen(), 1u);
  // Billing still accounts for all 20.
  EXPECT_EQ(csp->FlushAnswerCache(), 20u);
}

TEST(CspServerTest, AnswerCacheCountersMatchServerAccounting) {
  obs::Configure(obs::ObsOptions{.enabled = true});
  obs::MetricsRegistry::Global().Reset();
  const BayAreaGenerator gen(SmallBay());
  LocationDatabase db = gen.Generate(500);
  CspOptions options;
  options.k = 10;
  Result<CspServer> csp = CspServer::Start(db, gen.extent(),
                                           SomePois(gen.extent(), 300),
                                           options);
  ASSERT_TRUE(csp.ok());

  // A mix of repeats (same user, same query) and distinct queries.
  const ServiceRequest repeated{db.row(0).user, db.row(0).location,
                                {{"poi", "rest"}}};
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(csp->HandleRequest(repeated).ok());
  RequestGenerator requests(11);
  for (const ServiceRequest& sr : requests.Draw(db, 50)) {
    ASSERT_TRUE(csp->HandleRequest(sr).ok());
  }

  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  ASSERT_EQ(snapshot.counters.count("lbs/answer_cache/hits"), 1u);
  ASSERT_EQ(snapshot.counters.count("lbs/answer_cache/misses"), 1u);
  const uint64_t hits = snapshot.counters.at("lbs/answer_cache/hits");
  const uint64_t misses = snapshot.counters.at("lbs/answer_cache/misses");
  // Every cache miss is exactly one request the LBS saw, and every served
  // request was either a hit or a miss.
  EXPECT_EQ(misses, csp->lbs_requests_seen());
  EXPECT_EQ(hits + misses, csp->stats().requests_served);
  EXPECT_EQ(csp->stats().requests_served, 60u);
  EXPECT_GE(hits, 9u);  // the 9 repeats after the first are hits at minimum
  EXPECT_EQ(snapshot.counters.at("csp/requests_served"),
            csp->stats().requests_served);
}

TEST(CspServerTest, SnapshotAdvanceChoosesIncrementalOrRebuild) {
  const BayAreaGenerator gen(SmallBay());
  LocationDatabase db = gen.Generate(1000);
  CspOptions options;
  options.k = 10;
  options.rebuild_fraction = 0.05;
  Result<CspServer> csp = CspServer::Start(db, gen.extent(),
                                           SomePois(gen.extent(), 100),
                                           options);
  ASSERT_TRUE(csp.ok());

  // 1% movers: incremental path.
  MovementOptions small_move;
  small_move.moving_fraction = 0.01;
  small_move.max_distance = 50.0;
  small_move.seed = 1;
  const std::vector<UserMove> few = DrawMoves(csp->snapshot(), gen.extent(),
                                              small_move);
  Result<SnapshotReport> r1 = csp->AdvanceSnapshot(few);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_FALSE(r1->rebuilt);
  EXPECT_GT(r1->dp_rows_repaired, 0u);

  // 20% movers: rebuild path.
  MovementOptions big_move;
  big_move.moving_fraction = 0.20;
  big_move.max_distance = 50.0;
  big_move.seed = 2;
  const std::vector<UserMove> many = DrawMoves(csp->snapshot(), gen.extent(),
                                               big_move);
  Result<SnapshotReport> r2 = csp->AdvanceSnapshot(many);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->rebuilt);
  EXPECT_EQ(csp->stats().rebuilds, 1u);
  EXPECT_EQ(csp->stats().incremental_updates, 1u);

  // After both advances the policy stays valid, optimal and k-anonymous.
  EXPECT_TRUE(csp->policy().IsMasking(csp->snapshot()));
  EXPECT_TRUE(AuditPolicyAware(csp->policy()).Anonymous(options.k));
  Result<IncrementalAnonymizer> fresh = IncrementalAnonymizer::Build(
      csp->snapshot(), gen.extent(), options.k, options.dp);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(csp->policy_cost(), *fresh->OptimalCost());

  // Requests against the advanced snapshot are served from the new policy.
  const UserLocation& someone = csp->snapshot().row(42);
  EXPECT_TRUE(csp->HandleRequest(
                     ServiceRequest{someone.user, someone.location, {}})
                  .ok());
}

TEST(CspServerTest, QuarantinesMalformedMovesAndAppliesTheRest) {
  const BayAreaGenerator gen(SmallBay());
  LocationDatabase db = gen.Generate(300);
  CspOptions options;
  options.k = 5;
  Result<CspServer> csp = CspServer::Start(db, gen.extent(),
                                           SomePois(gen.extent(), 10),
                                           options);
  ASSERT_TRUE(csp.ok());

  const Point a = csp->snapshot().row(0).location;
  const Point b = csp->snapshot().row(1).location;
  const std::vector<UserMove> moves = {
      // One good move...
      {1, b, {b.x + 1, b.y}},
      // ...and one of each quarantine reason. None is fatal.
      {static_cast<uint32_t>(csp->snapshot().size() + 7),
       a, {a.x + 1, a.y}},                            // unknown_user
      {0, {a.x + 1, a.y}, a},                         // stale_origin
      {0, a, {gen.extent().origin_x + 2 * gen.extent().side(),
              gen.extent().origin_y}},                // out_of_extent
      {1, b, {b.x + 2, b.y}},                         // duplicate mover
  };
  Result<SnapshotReport> report = csp->AdvanceSnapshot(moves);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->moves_applied, 1u);
  EXPECT_EQ(report->moves_quarantined, 4u);
  EXPECT_EQ(csp->stats().moves_quarantined, 4u);
  EXPECT_EQ(csp->snapshot().row(1).location, (Point{b.x + 1, b.y}));
  // The surviving snapshot still yields a valid k-anonymous policy.
  EXPECT_TRUE(csp->policy().IsMasking(csp->snapshot()));
  EXPECT_TRUE(AuditPolicyAware(csp->policy()).Anonymous(options.k));
}

TEST(CspServerTest, FailedIncrementalRepairFallsBackToRebuild) {
  const BayAreaGenerator gen(SmallBay());
  LocationDatabase db = gen.Generate(1000);
  CspOptions options;
  options.k = 10;
  options.rebuild_fraction = 0.5;  // keep the advance on the incremental path
  Result<CspServer> csp = CspServer::Start(db, gen.extent(),
                                           SomePois(gen.extent(), 10),
                                           options);
  ASSERT_TRUE(csp.ok());

  // Force the incremental repair itself to fail: the server must self-heal
  // by rebuilding from the (already updated) snapshot, not fail the advance.
  fault::FaultPlan plan;
  plan.points.push_back({std::string(fault::kSnapshotRepairFail)});
  fault::FaultInjector::Global().Arm(plan, /*seed=*/5);
  MovementOptions movement;
  movement.moving_fraction = 0.01;
  movement.seed = 9;
  const std::vector<UserMove> moves =
      DrawMoves(csp->snapshot(), gen.extent(), movement);
  Result<SnapshotReport> report = csp->AdvanceSnapshot(moves);
  fault::FaultInjector::Global().Disarm();

  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->repair_fell_back_to_rebuild);
  EXPECT_TRUE(report->rebuilt);
  EXPECT_EQ(report->dp_rows_repaired, 0u);
  EXPECT_EQ(csp->stats().repair_fallbacks, 1u);
  EXPECT_EQ(csp->stats().rebuilds, 1u);
  EXPECT_EQ(csp->stats().incremental_updates, 0u);

  // The rebuilt policy is exactly the bulk-optimal one for the new snapshot.
  EXPECT_TRUE(csp->policy().IsMasking(csp->snapshot()));
  EXPECT_TRUE(AuditPolicyAware(csp->policy()).Anonymous(options.k));
  Result<IncrementalAnonymizer> fresh = IncrementalAnonymizer::Build(
      csp->snapshot(), gen.extent(), options.k, options.dp);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(csp->policy_cost(), *fresh->OptimalCost());
}

TEST(CspServerTest, CorruptedMoveFeedEndsInQuarantineNotCrash) {
  const BayAreaGenerator gen(SmallBay());
  LocationDatabase db = gen.Generate(500);
  CspOptions options;
  options.k = 5;
  Result<CspServer> csp = CspServer::Start(db, gen.extent(),
                                           SomePois(gen.extent(), 10),
                                           options);
  ASSERT_TRUE(csp.ok());

  // Corrupt every third move at the ingest boundary.
  fault::FaultPlan plan;
  fault::FaultPointConfig corrupt{std::string(fault::kSnapshotCorruptMove)};
  corrupt.every = 3;
  plan.points.push_back(corrupt);
  fault::FaultInjector::Global().Arm(plan, /*seed=*/3);
  MovementOptions movement;
  movement.moving_fraction = 0.05;
  movement.seed = 21;
  const std::vector<UserMove> moves =
      DrawMoves(csp->snapshot(), gen.extent(), movement);
  Result<SnapshotReport> report = csp->AdvanceSnapshot(moves);
  fault::FaultInjector::Global().Disarm();

  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->moves_quarantined, moves.size() / 3);
  EXPECT_EQ(report->moves_applied, moves.size() - moves.size() / 3);
  EXPECT_TRUE(csp->policy().IsMasking(csp->snapshot()));
  EXPECT_TRUE(AuditPolicyAware(csp->policy()).Anonymous(options.k));
}

TEST(CspServerTest, ReportMemoryCoversEveryServingStructure) {
  const BayAreaGenerator gen(SmallBay());
  LocationDatabase db = gen.Generate(800);
  CspOptions options;
  options.k = 10;
  Result<CspServer> csp = CspServer::Start(db, gen.extent(),
                                           SomePois(gen.extent(), 500),
                                           options);
  ASSERT_TRUE(csp.ok()) << csp.status().ToString();
  // Serve a little traffic so the answer cache holds entries.
  RequestGenerator requests(3);
  for (const ServiceRequest& sr : requests.Draw(db, 50)) {
    ASSERT_TRUE(csp->HandleRequest(sr).ok());
  }

  obs::MemoryAccountant accountant;
  csp->ReportMemory(accountant);
  const std::map<std::string, uint64_t> snapshot = accountant.Snapshot();
  // Every long-lived serving structure reports a non-zero footprint.
  for (const char* subsystem :
       {"csp/snapshot", "csp/policy_tree", "csp/config_matrix", "csp/policy",
        "csp/user_index", "lbs/answer_cache", "lbs/poi_index"}) {
    ASSERT_TRUE(snapshot.count(subsystem)) << subsystem;
    EXPECT_GT(snapshot.at(subsystem), 0u) << subsystem;
  }
  // The dominant structures scale with |D|: the snapshot alone stores 800
  // rows, so the total must exceed the raw row storage.
  EXPECT_GE(accountant.TotalBytes(), 800u * sizeof(UserLocation));
}

TEST(CspServerTest, StartFailsBelowK) {
  const BayAreaGenerator gen(SmallBay());
  LocationDatabase db = gen.Generate(3);
  CspOptions options;
  options.k = 10;
  EXPECT_EQ(CspServer::Start(db, gen.extent(), SomePois(gen.extent(), 10),
                             options)
                .status()
                .code(),
            StatusCode::kInfeasible);
}

}  // namespace
}  // namespace pasa
