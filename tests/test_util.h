#ifndef PASA_TESTS_TEST_UTIL_H_
#define PASA_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "index/binary_tree.h"
#include "index/quad_tree.h"
#include "model/location_database.h"
#include "pasa/configuration.h"

namespace pasa {
namespace testing_util {

/// Builds a snapshot with users 0..n-1 at the given points.
inline LocationDatabase MakeDb(const std::vector<Point>& points) {
  LocationDatabase db;
  for (size_t i = 0; i < points.size(); ++i) {
    db.Add(static_cast<UserId>(i), points[i]);
  }
  return db;
}

/// Random snapshot of `n` users uniform over `extent`.
inline LocationDatabase RandomDb(Rng* rng, size_t n, const MapExtent& extent) {
  std::vector<Point> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    points.push_back(Point{
        extent.origin_x + static_cast<Coord>(rng->NextBounded(extent.side())),
        extent.origin_y +
            static_cast<Coord>(rng->NextBounded(extent.side()))});
  }
  return MakeDb(points);
}

/// Number of children per node for the two tree types.
inline int ChildrenPerNode(const BinaryTree&) { return 2; }
inline int ChildrenPerNode(const QuadTree&) { return 4; }

inline bool NodeIsLive(const BinaryTree& tree, int32_t id) {
  return tree.node(id).live;
}
inline bool NodeIsLive(const QuadTree&, int32_t) { return true; }

/// The chain of nodes (self first, root last) a user at leaf `leaf` may be
/// cloaked by — every masking tree policy must pick from this chain.
template <typename Tree>
std::vector<int32_t> AncestorChain(const Tree& tree, int32_t leaf) {
  std::vector<int32_t> chain;
  for (int32_t cur = leaf; cur >= 0; cur = tree.node(cur).parent) {
    chain.push_back(cur);
  }
  return chain;
}

/// Maps every snapshot row to its resident leaf.
template <typename Tree>
std::vector<int32_t> LeafOfRow(const Tree& tree, size_t num_rows) {
  std::vector<int32_t> leaf_of(num_rows, -1);
  for (size_t id = 0; id < tree.num_nodes(); ++id) {
    const auto& n = tree.node(static_cast<int32_t>(id));
    if (!NodeIsLive(tree, static_cast<int32_t>(id)) || !n.IsLeaf()) continue;
    for (const uint32_t row : tree.LeafRows(static_cast<int32_t>(id))) {
      leaf_of[row] = static_cast<int32_t>(id);
    }
  }
  return leaf_of;
}

/// Independent ground-truth oracle: exhaustively enumerates every masking
/// tree policy (each user assigned some ancestor of its leaf), keeps those
/// whose nonempty cloaking groups all have >= k members (the policy-aware
/// sender k-anonymity characterization), and returns the minimum cost.
/// Returns kInfiniteCost when no such policy exists. Exponential — only for
/// tiny instances.
template <typename Tree>
Cost BruteForceOptimalCost(const Tree& tree, size_t num_rows, int k) {
  const std::vector<int32_t> leaf_of = LeafOfRow(tree, num_rows);
  std::vector<std::vector<int32_t>> candidates(num_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    candidates[r] = AncestorChain(tree, leaf_of[r]);
  }
  std::vector<int64_t> group_count(tree.num_nodes(), 0);
  Cost best = kInfiniteCost;
  std::vector<int32_t> assignment(num_rows, -1);

  auto recurse = [&](auto&& self, size_t row, Cost cost_so_far) -> void {
    if (cost_so_far >= best) return;
    if (row == num_rows) {
      for (size_t id = 0; id < tree.num_nodes(); ++id) {
        const int64_t g = group_count[id];
        if (g != 0 && g < k) return;
      }
      best = cost_so_far;
      return;
    }
    for (const int32_t node : candidates[row]) {
      ++group_count[node];
      self(self, row + 1,
           cost_so_far + tree.node(node).region.Area());
      --group_count[node];
    }
  };
  recurse(recurse, 0, 0);
  return best;
}

}  // namespace testing_util
}  // namespace pasa

#endif  // PASA_TESTS_TEST_UTIL_H_
