// Tests for pasa::fault: plan parsing/validation and the deterministic
// seeded injector (schedules, probability streams, kill-switch behavior).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/injector.h"
#include "fault/plan.h"

namespace pasa {
namespace fault {
namespace {

// The global injector is process-wide state: every test leaves it disarmed.
class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Disarm(); }
};

TEST(FaultPlanTest, ParsesFullPlan) {
  const Result<FaultPlan> plan = FaultPlan::FromJson(R"({
    "seed": 42,
    "points": [
      {"point": "lbs/error", "probability": 0.25},
      {"point": "lbs/latency", "probability": 0.5, "latency_micros": 20000,
       "after": 10, "every": 2, "max_fires": 100}
    ]
  })");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->default_seed, 42u);
  ASSERT_EQ(plan->points.size(), 2u);
  EXPECT_EQ(plan->points[0].point, kLbsError);
  EXPECT_DOUBLE_EQ(plan->points[0].probability, 0.25);
  EXPECT_EQ(plan->points[1].point, kLbsLatency);
  EXPECT_DOUBLE_EQ(plan->points[1].latency_micros, 20000.0);
  EXPECT_EQ(plan->points[1].after, 10u);
  EXPECT_EQ(plan->points[1].every, 2u);
  EXPECT_EQ(plan->points[1].max_fires, 100u);
}

TEST(FaultPlanTest, RejectsMalformedPlans) {
  // Malformed JSON.
  EXPECT_EQ(FaultPlan::FromJson("{not json").status().code(),
            StatusCode::kInvalidArgument);
  // Wrong top-level shape.
  EXPECT_EQ(FaultPlan::FromJson("[1, 2]").status().code(),
            StatusCode::kInvalidArgument);
  // Missing points array.
  EXPECT_EQ(FaultPlan::FromJson(R"({"seed": 1})").status().code(),
            StatusCode::kInvalidArgument);
  // Unknown point name; the error should teach the catalog.
  const Status unknown =
      FaultPlan::FromJson(R"({"points": [{"point": "lbs/typo"}]})").status();
  EXPECT_EQ(unknown.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(unknown.message().find("lbs/latency"), std::string::npos);
  // Probability out of range.
  EXPECT_FALSE(FaultPlan::FromJson(
                   R"({"points": [{"point": "lbs/error", "probability": 1.5}]})")
                   .ok());
  // Duplicate point.
  EXPECT_FALSE(FaultPlan::FromJson(R"({"points": [
        {"point": "lbs/error"}, {"point": "lbs/error"}]})")
                   .ok());
  // Negative schedule field.
  EXPECT_FALSE(FaultPlan::FromJson(
                   R"({"points": [{"point": "lbs/error", "after": -1}]})")
                   .ok());
  // Fractional schedule fields would silently truncate; reject them typed.
  const Status fractional =
      FaultPlan::FromJson(
          R"({"points": [{"point": "lbs/error", "max_fires": 1.5}]})")
          .status();
  EXPECT_EQ(fractional.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(fractional.message().find("integer"), std::string::npos);
  // Counts beyond 2^53 are not exactly representable in JSON doubles and
  // the cast to uint64_t would be UB; reject them typed instead.
  const Status overflow =
      FaultPlan::FromJson(
          R"({"points": [{"point": "lbs/error", "after": 1e30}]})")
          .status();
  EXPECT_EQ(overflow.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(overflow.message().find("overflows"), std::string::npos);
  EXPECT_FALSE(FaultPlan::FromJson(
                   R"({"points": [{"point": "lbs/error", "every": 0.25}]})")
                   .ok());
  // The plan seed gets the same treatment.
  EXPECT_FALSE(FaultPlan::FromJson(
                   R"({"seed": 1.5, "points": [{"point": "lbs/error"}]})")
                   .ok());
  EXPECT_FALSE(FaultPlan::FromJson(
                   R"({"seed": 1e30, "points": [{"point": "lbs/error"}]})")
                   .ok());
}

TEST(FaultPlanTest, MissingFileIsNotFound) {
  EXPECT_EQ(FaultPlan::FromJsonFile("/nonexistent/plan.json").status().code(),
            StatusCode::kNotFound);
}

TEST_F(FaultInjectorTest, DisarmedInjectorNeverFires) {
  FaultInjector& injector = FaultInjector::Global();
  EXPECT_FALSE(injector.armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.ShouldInject(kLbsError));
  }
  EXPECT_EQ(injector.evaluations(kLbsError), 0u);  // fast path short-circuits
}

TEST_F(FaultInjectorTest, UnconfiguredPointStaysQuietWhileArmed) {
  FaultPlan plan;
  plan.points.push_back({std::string(kLbsError)});
  FaultInjector::Global().Arm(plan, 1);
  EXPECT_TRUE(FaultInjector::Global().armed());
  EXPECT_FALSE(FaultInjector::Global().ShouldInject(kLbsTimeout));
  EXPECT_TRUE(FaultInjector::Global().ShouldInject(kLbsError));
}

TEST_F(FaultInjectorTest, SameSeedReplaysTheSameFireSequence) {
  FaultPlan plan;
  FaultPointConfig flaky{std::string(kLbsError)};
  flaky.probability = 0.3;
  plan.points.push_back(flaky);

  const auto draw_sequence = [&](uint64_t seed) {
    FaultInjector::Global().Arm(plan, seed);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(FaultInjector::Global().ShouldInject(kLbsError));
    }
    return fired;
  };
  const std::vector<bool> run1 = draw_sequence(7);
  const std::vector<bool> run2 = draw_sequence(7);
  const std::vector<bool> other_seed = draw_sequence(8);
  EXPECT_EQ(run1, run2);
  EXPECT_NE(run1, other_seed);
  // ~30% of 200 evaluations: sanity-check the stream is neither empty nor
  // saturated.
  const size_t fires = FaultInjector::Global().fires(kLbsError);
  EXPECT_GT(fires, 20u);
  EXPECT_LT(fires, 120u);
}

TEST_F(FaultInjectorTest, PointStreamsAreIndependentOfEachOther) {
  // The lbs/error stream must not depend on whether lbs/timeout is being
  // evaluated in between: each point hashes its own stream off the seed.
  FaultPlan plan;
  FaultPointConfig flaky{std::string(kLbsError)};
  flaky.probability = 0.5;
  plan.points.push_back(flaky);

  FaultInjector::Global().Arm(plan, 99);
  std::vector<bool> alone;
  for (int i = 0; i < 50; ++i) {
    alone.push_back(FaultInjector::Global().ShouldInject(kLbsError));
  }

  FaultPlan with_other = plan;
  FaultPointConfig other{std::string(kLbsTimeout)};
  other.probability = 0.5;
  with_other.points.push_back(other);
  FaultInjector::Global().Arm(with_other, 99);
  std::vector<bool> interleaved;
  for (int i = 0; i < 50; ++i) {
    FaultInjector::Global().ShouldInject(kLbsTimeout);
    interleaved.push_back(FaultInjector::Global().ShouldInject(kLbsError));
  }
  EXPECT_EQ(alone, interleaved);
}

TEST_F(FaultInjectorTest, ScheduleFieldsGateEligibility) {
  FaultPlan plan;
  FaultPointConfig config{std::string(kLbsError)};
  config.after = 3;
  config.every = 2;
  config.max_fires = 2;
  plan.points.push_back(config);
  FaultInjector::Global().Arm(plan, 1);

  std::vector<int> fired_at;
  for (int i = 1; i <= 12; ++i) {
    if (FaultInjector::Global().ShouldInject(kLbsError)) fired_at.push_back(i);
  }
  // Evaluations 1-3 are skipped (after), then every 2nd eligible evaluation
  // fires (5, 7, ...) until max_fires caps it at two.
  EXPECT_EQ(fired_at, (std::vector<int>{5, 7}));
  EXPECT_EQ(FaultInjector::Global().evaluations(kLbsError), 12u);
  EXPECT_EQ(FaultInjector::Global().fires(kLbsError), 2u);
}

TEST_F(FaultInjectorTest, LatencyPayloadRidesTheDecision) {
  FaultPlan plan;
  FaultPointConfig config{std::string(kLbsLatency)};
  config.latency_micros = 1234.0;
  plan.points.push_back(config);
  FaultInjector::Global().Arm(plan, 1);
  const FaultDecision decision =
      FaultInjector::Global().Decide(kLbsLatency);
  EXPECT_TRUE(decision.fire);
  EXPECT_DOUBLE_EQ(decision.latency_micros, 1234.0);
}

TEST_F(FaultInjectorTest, RearmingResetsCounters) {
  FaultPlan plan;
  plan.points.push_back({std::string(kLbsError)});
  FaultInjector::Global().Arm(plan, 1);
  FaultInjector::Global().ShouldInject(kLbsError);
  EXPECT_EQ(FaultInjector::Global().fires(kLbsError), 1u);
  FaultInjector::Global().Arm(plan, 1);
  EXPECT_EQ(FaultInjector::Global().fires(kLbsError), 0u);
  FaultInjector::Global().Disarm();
  EXPECT_FALSE(FaultInjector::Global().armed());
}

}  // namespace
}  // namespace fault
}  // namespace pasa
