// Tests for the circular-cloak variant (Theorem 1): candidate enumeration,
// the exact branch-and-bound solver, and the greedy heuristic.

#include <gtest/gtest.h>

#include "attack/auditor.h"
#include "circular/candidates.h"
#include "circular/exact_solver.h"
#include "circular/greedy_solver.h"
#include "tests/test_util.h"

namespace pasa {
namespace {

using testing_util::MakeDb;
using testing_util::RandomDb;

TEST(CandidatesTest, EnumeratesNestedPrefixesPerCenter) {
  const LocationDatabase db = MakeDb({{1, 0}, {3, 0}, {0, 2}});
  const std::vector<Point> centers = {{0, 0}};
  const auto candidates = EnumerateCandidateCircles(db, centers);
  ASSERT_EQ(candidates.size(), 3u);  // three distinct radii
  EXPECT_EQ(candidates[0].covered_rows.size(), 1u);
  EXPECT_EQ(candidates[1].covered_rows.size(), 2u);
  EXPECT_EQ(candidates[2].covered_rows.size(), 3u);
  // Radii ascend and every covered point is inside.
  for (size_t i = 0; i + 1 < candidates.size(); ++i) {
    EXPECT_LT(candidates[i].circle.radius, candidates[i + 1].circle.radius);
  }
  for (const auto& c : candidates) {
    for (const size_t row : c.covered_rows) {
      EXPECT_TRUE(c.circle.Contains(db.row(row).location));
    }
  }
}

TEST(CandidatesTest, DuplicateRadiiCollapse) {
  // Two users equidistant from the center: one candidate covering both.
  const LocationDatabase db = MakeDb({{2, 0}, {0, 2}});
  const auto candidates = EnumerateCandidateCircles(db, {{0, 0}});
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].covered_rows.size(), 2u);
}

TEST(ExactCircularTest, TwoClustersTwoCenters) {
  // Two tight clusters around two centers; k=2 should pick two small
  // circles rather than one big one.
  const LocationDatabase db =
      MakeDb({{1, 0}, {2, 0}, {101, 0}, {102, 0}});
  const std::vector<Point> centers = {{0, 0}, {100, 0}};
  Result<CircularSolution> solution = SolveExactCircular(db, centers, 2);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_EQ(AuditPolicyAware(solution->cloaks).min_possible_senders, 2u);
  // Optimal: radius-2 circles at both centers: 2*(pi*4) each summed over
  // users -> total area = 4 users * pi*4.
  EXPECT_NEAR(solution->total_area, 4 * 3.14159265 * 4.0, 1e-3);
}

TEST(ExactCircularTest, RefusesLargeInstances) {
  Rng rng(1);
  const MapExtent extent{0, 0, 6};
  const LocationDatabase db = RandomDb(&rng, 30, extent);
  EXPECT_EQ(SolveExactCircular(db, {{0, 0}}, 2, /*max_users=*/14)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ExactCircularTest, InfeasibleBelowK) {
  const LocationDatabase db = MakeDb({{1, 1}});
  EXPECT_EQ(SolveExactCircular(db, {{0, 0}}, 2).status().code(),
            StatusCode::kInfeasible);
}

struct CircularParam {
  uint64_t seed;
  int n;
  int k;
  int num_centers;
};

class CircularSweep : public ::testing::TestWithParam<CircularParam> {};

TEST_P(CircularSweep, GreedyIsValidAndNeverBeatsExact) {
  const CircularParam p = GetParam();
  Rng rng(p.seed);
  const MapExtent extent{0, 0, 5};
  const LocationDatabase db = RandomDb(&rng, p.n, extent);
  std::vector<Point> centers;
  for (int c = 0; c < p.num_centers; ++c) {
    centers.push_back(Point{static_cast<Coord>(rng.NextBounded(32)),
                            static_cast<Coord>(rng.NextBounded(32))});
  }

  Result<CircularSolution> exact = SolveExactCircular(db, centers, p.k);
  Result<CircularSolution> greedy = SolveGreedyCircular(db, centers, p.k);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();

  for (const CircularSolution* s : {&*exact, &*greedy}) {
    // Valid: masking and policy-aware k-anonymous.
    for (size_t row = 0; row < db.size(); ++row) {
      EXPECT_TRUE(s->cloaks[row].Contains(db.row(row).location));
    }
    EXPECT_GE(AuditPolicyAware(s->cloaks).min_possible_senders,
              static_cast<size_t>(p.k));
  }
  // Exact is optimal: greedy can only tie or lose.
  EXPECT_GE(greedy->total_area, exact->total_area - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, CircularSweep,
    ::testing::Values(CircularParam{1, 6, 2, 2}, CircularParam{2, 8, 2, 3},
                      CircularParam{3, 9, 3, 2}, CircularParam{4, 10, 2, 2},
                      CircularParam{5, 7, 3, 3}, CircularParam{6, 11, 2, 4}),
    [](const ::testing::TestParamInfo<CircularParam>& info) {
      const CircularParam& p = info.param;
      return "seed" + std::to_string(p.seed) + "_n" + std::to_string(p.n) +
             "_k" + std::to_string(p.k) + "_c" +
             std::to_string(p.num_centers);
    });

TEST(GreedyCircularTest, ScalesToModerateInstances) {
  Rng rng(77);
  const MapExtent extent{0, 0, 8};
  const LocationDatabase db = RandomDb(&rng, 300, extent);
  std::vector<Point> centers;
  for (int c = 0; c < 6; ++c) {
    centers.push_back(Point{static_cast<Coord>(rng.NextBounded(256)),
                            static_cast<Coord>(rng.NextBounded(256))});
  }
  Result<CircularSolution> greedy = SolveGreedyCircular(db, centers, 10);
  ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();
  EXPECT_GE(AuditPolicyAware(greedy->cloaks).min_possible_senders, 10u);
  for (size_t row = 0; row < db.size(); ++row) {
    EXPECT_TRUE(greedy->cloaks[row].Contains(db.row(row).location));
  }
}

}  // namespace
}  // namespace pasa
