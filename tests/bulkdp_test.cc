// Correctness tests for the core policy-aware DP (Section IV-V): the paper's
// running example, and equivalence of every algorithm variant against an
// independent exhaustive oracle.

#include <gtest/gtest.h>

#include "model/cloaking.h"
#include "pasa/anonymizer.h"
#include "pasa/bulk_dp_binary.h"
#include "pasa/bulk_dp_quad.h"
#include "pasa/configuration.h"
#include "pasa/extraction.h"
#include "tests/test_util.h"

namespace pasa {
namespace {

using testing_util::BruteForceOptimalCost;
using testing_util::MakeDb;
using testing_util::RandomDb;

// The Table I / Figure 1 running example, shifted to half-open [0,4)^2
// coordinates: A(0,0) B(0,1) C(0,3) S(2,0) T(3,3).
LocationDatabase PaperExampleDb() {
  return MakeDb({{0, 0}, {0, 1}, {0, 3}, {2, 0}, {3, 3}});
}
constexpr size_t kAlice = 0, kBob = 1, kCarol = 2, kSam = 3, kTom = 4;

MapExtent PaperExtent() { return MapExtent{0, 0, 2}; }

TEST(BulkDpPaperExample, OptimalPolicyMatchesExample8) {
  const LocationDatabase db = PaperExampleDb();
  AnonymizerOptions options;
  options.k = 2;
  Result<Anonymizer> a = Anonymizer::Build(db, PaperExtent(), options);
  ASSERT_TRUE(a.ok()) << a.status().ToString();

  // The policy P2 of Example 8: Alice, Bob, Carol cloak to R3 (the western
  // semi-quadrant), Sam and Tom to R2 (the eastern one). Total cost
  // 3*8 + 2*8 = 40.
  const Rect r3{0, 0, 2, 4};
  const Rect r2{2, 0, 4, 4};
  EXPECT_EQ(a->cost(), 40);
  EXPECT_EQ(a->CloakForRow(kAlice), r3);
  EXPECT_EQ(a->CloakForRow(kBob), r3);
  EXPECT_EQ(a->CloakForRow(kCarol), r3);
  EXPECT_EQ(a->CloakForRow(kSam), r2);
  EXPECT_EQ(a->CloakForRow(kTom), r2);

  // Policy-aware sender 2-anonymity: every cloaking group has >= 2 members.
  EXPECT_GE(a->policy().MinGroupSize(), 2u);
  EXPECT_TRUE(a->policy().IsMasking(db));
}

TEST(BulkDpPaperExample, MatchesBruteForceOracle) {
  const LocationDatabase db = PaperExampleDb();
  TreeOptions tree_options;
  tree_options.split_threshold = 2;
  Result<BinaryTree> tree =
      BinaryTree::Build(db, PaperExtent(), tree_options);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(BruteForceOptimalCost(*tree, db.size(), 2), 40);
}

TEST(BulkDpPaperExample, InfeasibleWhenFewerThanKUsers) {
  const LocationDatabase db = MakeDb({{0, 0}, {1, 1}});
  AnonymizerOptions options;
  options.k = 3;
  Result<Anonymizer> a = Anonymizer::Build(db, PaperExtent(), options);
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kInfeasible);
}

TEST(BulkDpPaperExample, EmptySnapshotIsTriviallyFeasible) {
  const LocationDatabase db;
  TreeOptions tree_options;
  Result<BinaryTree> tree =
      BinaryTree::Build(db, PaperExtent(), tree_options);
  ASSERT_TRUE(tree.ok());
  Result<DpMatrix> matrix = ComputeDpMatrix(*tree, 5, DpOptions{});
  ASSERT_TRUE(matrix.ok());
  Result<Cost> cost = matrix->OptimalCost(*tree);
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(*cost, 0);
}

TEST(BulkDp, KEqualsOneCloaksEveryUserAtItsLeaf) {
  // With k = 1 every singleton group is legal, so the optimum cloaks each
  // user at the deepest (cheapest) node: its own leaf.
  Rng rng(7);
  const MapExtent extent{0, 0, 3};
  const LocationDatabase db = RandomDb(&rng, 6, extent);
  AnonymizerOptions options;
  options.k = 1;
  Result<Anonymizer> a = Anonymizer::Build(db, extent, options);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  Result<BinaryTree> reference =
      BinaryTree::Build(db, extent, TreeOptions{.split_threshold = 1});
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(a->cost(), BruteForceOptimalCost(*reference, db.size(), 1));
}

TEST(BulkDp, AllUsersAtTheSamePoint) {
  std::vector<Point> points(7, Point{3, 3});
  const LocationDatabase db = MakeDb(points);
  AnonymizerOptions options;
  options.k = 3;
  Result<Anonymizer> a = Anonymizer::Build(db, MapExtent{0, 0, 3}, options);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  // All seven share one unsplittable 1x1 cell: the optimum cloaks all of
  // them there at cost 7 * 1.
  EXPECT_EQ(a->cost(), 7);
  EXPECT_GE(a->policy().MinGroupSize(), 3u);
}

// ---------------------------------------------------------------------------
// Property sweep: on random small snapshots, every DP variant agrees with
// the independent exhaustive oracle and with each other, and the extracted
// policy realizes the optimal cost with all invariants intact.
// ---------------------------------------------------------------------------

struct SweepParam {
  uint64_t seed;
  int n;
  int k;
  int log2_side;
};

class DpEquivalenceSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DpEquivalenceSweep, AllVariantsMatchOracle) {
  const SweepParam p = GetParam();
  Rng rng(p.seed);
  const MapExtent extent{0, 0, p.log2_side};
  const LocationDatabase db = RandomDb(&rng, p.n, extent);

  TreeOptions tree_options;
  tree_options.split_threshold = p.k;
  Result<BinaryTree> tree = BinaryTree::Build(db, extent, tree_options);
  ASSERT_TRUE(tree.ok());
  const Cost oracle = BruteForceOptimalCost(*tree, db.size(), p.k);

  for (const bool pruning : {false, true}) {
    for (const bool two_stage : {false, true}) {
      DpOptions dp{.lemma5_pruning = pruning, .two_stage = two_stage};
      Result<DpMatrix> matrix = ComputeDpMatrix(*tree, p.k, dp);
      if (oracle >= kInfiniteCost) {
        if (matrix.ok()) {
          Result<Cost> cost = matrix->OptimalCost(*tree);
          EXPECT_FALSE(cost.ok());
        }
        continue;
      }
      ASSERT_TRUE(matrix.ok()) << matrix.status().ToString();
      Result<Cost> cost = matrix->OptimalCost(*tree);
      ASSERT_TRUE(cost.ok()) << cost.status().ToString();
      EXPECT_EQ(*cost, oracle)
          << "pruning=" << pruning << " two_stage=" << two_stage;

      Result<ExtractedPolicy> policy =
          ExtractOptimalPolicy(*tree, *matrix, p.k);
      ASSERT_TRUE(policy.ok()) << policy.status().ToString();
      EXPECT_EQ(policy->cost, oracle);
      EXPECT_EQ(policy->table.TotalCost(), oracle);
      EXPECT_TRUE(policy->table.IsMasking(db));
      EXPECT_GE(policy->table.MinGroupSize(), static_cast<size_t>(p.k));
      EXPECT_TRUE(SatisfiesKSummation(*tree, policy->config, p.k));
      EXPECT_EQ(ConfigurationCost(*tree, policy->config), oracle);
    }
  }
}

TEST_P(DpEquivalenceSweep, QuadFirstCutMatchesOracle) {
  const SweepParam p = GetParam();
  Rng rng(p.seed ^ 0xabcdef);
  const MapExtent extent{0, 0, p.log2_side};
  const LocationDatabase db = RandomDb(&rng, p.n, extent);

  TreeOptions tree_options;
  tree_options.split_threshold = p.k;
  Result<QuadTree> tree = QuadTree::Build(db, extent, tree_options);
  ASSERT_TRUE(tree.ok());
  const Cost oracle = BruteForceOptimalCost(*tree, db.size(), p.k);

  Result<QuadDpMatrix> matrix = ComputeQuadDpMatrix(*tree, p.k);
  if (oracle >= kInfiniteCost) {
    if (matrix.ok()) {
      EXPECT_FALSE(matrix->OptimalCost(*tree).ok());
    }
    return;
  }
  ASSERT_TRUE(matrix.ok()) << matrix.status().ToString();
  Result<Cost> cost = matrix->OptimalCost(*tree);
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(*cost, oracle);

  Result<ExtractedQuadPolicy> policy =
      ExtractOptimalQuadPolicy(*tree, *matrix, p.k);
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  EXPECT_EQ(policy->table.TotalCost(), oracle);
  EXPECT_TRUE(policy->table.IsMasking(db));
  EXPECT_GE(policy->table.MinGroupSize(), static_cast<size_t>(p.k));
  EXPECT_TRUE(SatisfiesKSummation(*tree, policy->config, p.k));

  // The optimized cost-only quad DP must agree with the first cut.
  Result<Cost> fast = OptimalQuadCostFast(*tree, p.k);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  EXPECT_EQ(*fast, oracle);
}

TEST(BulkDpQuadFast, AgreesWithFirstCutAtMediumScale) {
  // Beyond oracle reach: the fast quad DP and the (streamed) first cut must
  // still agree exactly.
  for (const uint64_t seed : {201u, 202u, 203u}) {
    Rng rng(seed);
    const MapExtent extent{0, 0, 6};
    const LocationDatabase db = RandomDb(&rng, 120, extent);
    const int k = 6;
    Result<QuadTree> tree = QuadTree::Build(
        db, extent, TreeOptions{.split_threshold = k});
    ASSERT_TRUE(tree.ok());
    Result<QuadDpMatrix> naive = ComputeQuadDpMatrix(*tree, k);
    Result<Cost> fast = OptimalQuadCostFast(*tree, k);
    ASSERT_TRUE(naive.ok() && fast.ok());
    Result<Cost> naive_cost = naive->OptimalCost(*tree);
    ASSERT_TRUE(naive_cost.ok());
    EXPECT_EQ(*fast, *naive_cost) << "seed " << seed;
  }
}

TEST(BulkDpQuadFast, InfeasibleAndEmptyCases) {
  const LocationDatabase two = MakeDb({{0, 0}, {1, 1}});
  Result<QuadTree> tree =
      QuadTree::Build(two, MapExtent{0, 0, 2}, TreeOptions{});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(OptimalQuadCostFast(*tree, 3).status().code(),
            StatusCode::kInfeasible);
  Result<QuadTree> empty =
      QuadTree::Build(LocationDatabase(), MapExtent{0, 0, 2}, TreeOptions{});
  ASSERT_TRUE(empty.ok());
  Result<Cost> cost = OptimalQuadCostFast(*empty, 3);
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(*cost, 0);
}

std::vector<SweepParam> MakeSweep() {
  std::vector<SweepParam> params;
  uint64_t seed = 1;
  for (const int n : {3, 5, 6, 7, 8}) {
    for (const int k : {1, 2, 3}) {
      for (const int log2_side : {2, 3}) {
        params.push_back(SweepParam{seed++, n, k, log2_side});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(RandomSmallSnapshots, DpEquivalenceSweep,
                         ::testing::ValuesIn(MakeSweep()),
                         [](const ::testing::TestParamInfo<SweepParam>& info) {
                           const SweepParam& p = info.param;
                           return "seed" + std::to_string(p.seed) + "_n" +
                                  std::to_string(p.n) + "_k" +
                                  std::to_string(p.k) + "_side" +
                                  std::to_string(1 << p.log2_side);
                         });

// Binary tree with semi-quadrants never costs more than the quad tree on the
// same fully-materialized partition (Section V's comparison).
TEST(BulkDp, BinaryTreeOptimumNeverWorseThanQuadTree) {
  for (uint64_t seed = 100; seed < 112; ++seed) {
    Rng rng(seed);
    const MapExtent extent{0, 0, 3};
    const LocationDatabase db = RandomDb(&rng, 9, extent);
    const int k = 3;
    TreeOptions full{.split_threshold = 1, .max_depth = 64};
    Result<QuadTree> quad = QuadTree::Build(db, extent, full);
    Result<BinaryTree> binary = BinaryTree::Build(db, extent, full);
    ASSERT_TRUE(quad.ok() && binary.ok());

    Result<QuadDpMatrix> quad_matrix = ComputeQuadDpMatrix(*quad, k);
    Result<DpMatrix> binary_matrix =
        ComputeDpMatrix(*binary, k, DpOptions{});
    ASSERT_TRUE(quad_matrix.ok() && binary_matrix.ok());
    Result<Cost> quad_cost = quad_matrix->OptimalCost(*quad);
    Result<Cost> binary_cost = binary_matrix->OptimalCost(*binary);
    ASSERT_TRUE(quad_cost.ok() && binary_cost.ok());
    EXPECT_LE(*binary_cost, *quad_cost) << "seed " << seed;
  }
}

}  // namespace
}  // namespace pasa
