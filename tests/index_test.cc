// Tests for the spatial index substrate: the Morton range-counting index and
// the lazily materialized quad and binary (semi-quadrant) trees, including
// the mutation path used by incremental maintenance.

#include <gtest/gtest.h>

#include <numeric>

#include "index/binary_tree.h"
#include "index/morton.h"
#include "index/quad_tree.h"
#include "tests/test_util.h"

namespace pasa {
namespace {

using testing_util::MakeDb;
using testing_util::RandomDb;

TEST(MapExtentTest, CoveringPicksSmallestPowerOfTwo) {
  Result<MapExtent> e = MapExtent::Covering(Rect{10, 20, 15, 23});
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->origin_x, 10);
  EXPECT_EQ(e->origin_y, 20);
  EXPECT_EQ(e->side(), 8);  // needs >= 5, smallest power of two is 8
  EXPECT_FALSE(MapExtent::Covering(Rect{0, 0, 0, 0}).ok());
}

TEST(MortonTest, CountsMatchLinearScanOnRandomQuadrants) {
  Rng rng(11);
  const MapExtent extent{0, 0, 5};
  const LocationDatabase db = RandomDb(&rng, 200, extent);
  Result<MortonIndex> index = MortonIndex::Build(db, extent);
  ASSERT_TRUE(index.ok());

  // Every quadrant at every depth: Morton count == linear scan count.
  for (int depth = 0; depth <= index->max_depth(); ++depth) {
    for (uint64_t prefix = 0; prefix < (uint64_t{1} << (2 * depth));
         ++prefix) {
      const QuadPath path{prefix, depth};
      EXPECT_EQ(index->CountQuadrant(path),
                db.CountInside(index->RegionOf(path)))
          << "depth=" << depth << " prefix=" << prefix;
    }
  }
}

TEST(MortonTest, SemiQuadrantCountsMatchLinearScan) {
  Rng rng(12);
  const MapExtent extent{0, 0, 4};
  const LocationDatabase db = RandomDb(&rng, 150, extent);
  Result<MortonIndex> index = MortonIndex::Build(db, extent);
  ASSERT_TRUE(index.ok());
  for (int depth = 0; depth < 3; ++depth) {
    for (uint64_t prefix = 0; prefix < (uint64_t{1} << (2 * depth));
         ++prefix) {
      const QuadPath path{prefix, depth};
      for (const bool west : {true, false}) {
        EXPECT_EQ(index->CountVerticalHalf(path, west),
                  db.CountInside(index->VerticalHalfRegion(path, west)));
      }
      for (const bool south : {true, false}) {
        EXPECT_EQ(index->CountHorizontalHalf(path, south),
                  db.CountInside(index->HorizontalHalfRegion(path, south)));
      }
    }
  }
}

TEST(MortonTest, PathForPointRoundTrips) {
  Rng rng(13);
  const MapExtent extent{0, 0, 6};
  const LocationDatabase db = RandomDb(&rng, 50, extent);
  Result<MortonIndex> index = MortonIndex::Build(db, extent);
  ASSERT_TRUE(index.ok());
  for (const auto& row : db.rows()) {
    for (const int depth : {0, 1, 3, 6}) {
      const QuadPath path = index->PathForPoint(row.location, depth);
      EXPECT_TRUE(index->RegionOf(path).Contains(row.location));
    }
  }
}

TEST(MortonTest, RejectsPointsOutsideExtent) {
  LocationDatabase db = MakeDb({{100, 100}});
  EXPECT_FALSE(MortonIndex::Build(db, MapExtent{0, 0, 3}).ok());
}

TEST(MortonTest, KeyOfRowMatchesKeyForPoint) {
  Rng rng(14);
  const MapExtent extent{0, 0, 6};
  const LocationDatabase db = RandomDb(&rng, 40, extent);
  Result<MortonIndex> index = MortonIndex::Build(db, extent);
  ASSERT_TRUE(index.ok());
  for (size_t row = 0; row < db.size(); ++row) {
    EXPECT_EQ(index->KeyOfRow(row),
              index->KeyForPoint(db.row(row).location));
  }
  EXPECT_EQ(index->size(), db.size());
}

TEST(MortonTest, KeysOrderSouthwestFirstWithinQuadrants) {
  // The SW, SE, NW, NE child order must be reflected in key magnitudes.
  const MapExtent extent{0, 0, 1};
  LocationDatabase db;
  Result<MortonIndex> index = MortonIndex::Build(db, extent);
  ASSERT_TRUE(index.ok());
  const uint64_t sw = index->KeyForPoint({0, 0});
  const uint64_t se = index->KeyForPoint({1, 0});
  const uint64_t nw = index->KeyForPoint({0, 1});
  const uint64_t ne = index->KeyForPoint({1, 1});
  EXPECT_LT(sw, se);
  EXPECT_LT(se, nw);
  EXPECT_LT(nw, ne);
}

TEST(BinaryTreeTest, SubtreeRowsGathersExactlyTheResidents) {
  Rng rng(26);
  const MapExtent extent{0, 0, 5};
  const LocationDatabase db = RandomDb(&rng, 200, extent);
  Result<BinaryTree> tree =
      BinaryTree::Build(db, extent, TreeOptions{.split_threshold = 8});
  ASSERT_TRUE(tree.ok());
  for (size_t id = 0; id < tree->num_nodes(); ++id) {
    const BinaryTree::Node& n = tree->node(static_cast<int32_t>(id));
    if (!n.live) continue;
    const std::vector<uint32_t> rows =
        tree->SubtreeRows(static_cast<int32_t>(id));
    EXPECT_EQ(rows.size(), n.count);
    for (const uint32_t row : rows) {
      EXPECT_TRUE(n.region.Contains(db.row(row).location));
    }
  }
}

template <typename Tree>
void ExpectLeavesPartitionAndCountsConsistent(const Tree& tree,
                                              const LocationDatabase& db) {
  // Every point lies in exactly one leaf, and leaf row lists are a
  // partition of the snapshot.
  std::vector<int> seen(db.size(), 0);
  size_t leaf_total = 0;
  for (size_t id = 0; id < tree.num_nodes(); ++id) {
    const auto& n = tree.node(static_cast<int32_t>(id));
    if constexpr (std::is_same_v<Tree, BinaryTree>) {
      if (!n.live) continue;
    }
    if (!n.IsLeaf()) continue;
    leaf_total += tree.LeafRows(static_cast<int32_t>(id)).size();
    EXPECT_EQ(tree.LeafRows(static_cast<int32_t>(id)).size(), n.count);
    for (const uint32_t row : tree.LeafRows(static_cast<int32_t>(id))) {
      ++seen[row];
      EXPECT_TRUE(n.region.Contains(db.row(row).location));
    }
  }
  EXPECT_EQ(leaf_total, db.size());
  for (const int count : seen) EXPECT_EQ(count, 1);
  // Counts equal linear-scan occupancy for every live node.
  for (size_t id = 0; id < tree.num_nodes(); ++id) {
    const auto& n = tree.node(static_cast<int32_t>(id));
    if constexpr (std::is_same_v<Tree, BinaryTree>) {
      if (!n.live) continue;
    }
    EXPECT_EQ(n.count, db.CountInside(n.region));
  }
}

TEST(QuadTreeTest, BuildInvariants) {
  Rng rng(21);
  const MapExtent extent{0, 0, 5};
  const LocationDatabase db = RandomDb(&rng, 300, extent);
  Result<QuadTree> tree =
      QuadTree::Build(db, extent, TreeOptions{.split_threshold = 10});
  ASSERT_TRUE(tree.ok());
  ExpectLeavesPartitionAndCountsConsistent(*tree, db);
  // Lazy rule: any leaf above the threshold must be unsplittable (1x1).
  for (size_t id = 0; id < tree->num_nodes(); ++id) {
    const QuadTree::Node& n = tree->node(static_cast<int32_t>(id));
    if (n.IsLeaf() && n.count > 10) EXPECT_EQ(n.region.width(), 1);
  }
}

TEST(QuadTreeTest, LeafForPointConsistent) {
  Rng rng(22);
  const MapExtent extent{0, 0, 5};
  const LocationDatabase db = RandomDb(&rng, 100, extent);
  Result<QuadTree> tree =
      QuadTree::Build(db, extent, TreeOptions{.split_threshold = 5});
  ASSERT_TRUE(tree.ok());
  for (const auto& row : db.rows()) {
    const int32_t leaf = tree->LeafForPoint(row.location);
    EXPECT_TRUE(tree->node(leaf).region.Contains(row.location));
    EXPECT_TRUE(tree->node(leaf).IsLeaf());
  }
}

TEST(BinaryTreeTest, BuildInvariants) {
  Rng rng(23);
  const MapExtent extent{0, 0, 5};
  const LocationDatabase db = RandomDb(&rng, 300, extent);
  Result<BinaryTree> tree =
      BinaryTree::Build(db, extent, TreeOptions{.split_threshold = 10});
  ASSERT_TRUE(tree.ok());
  ExpectLeavesPartitionAndCountsConsistent(*tree, db);

  // Node kinds alternate: squares split into vertical semi-quadrants which
  // split back into squares.
  for (size_t id = 0; id < tree->num_nodes(); ++id) {
    const BinaryTree::Node& n = tree->node(static_cast<int32_t>(id));
    if (!n.live || n.IsLeaf()) continue;
    const BinaryTree::Node& child = tree->node(n.first_child);
    EXPECT_NE(static_cast<int>(n.kind), static_cast<int>(child.kind));
    EXPECT_EQ(tree->node(n.first_child).region.Area() +
                  tree->node(n.first_child + 1).region.Area(),
              n.region.Area());
  }
}

TEST(BinaryTreeTest, RootedBuildOnSemiQuadrant) {
  // A jurisdiction shaped like a vertical semi-quadrant (w x 2w).
  const LocationDatabase db =
      MakeDb({{0, 0}, {1, 5}, {3, 7}, {2, 2}, {0, 6}});
  Result<BinaryTree> tree = BinaryTree::BuildRooted(
      db, Rect{0, 0, 4, 8}, BinaryTree::NodeKind::kVerticalSemi,
      TreeOptions{.split_threshold = 2});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->node(BinaryTree::kRootId).region, (Rect{0, 0, 4, 8}));
  ExpectLeavesPartitionAndCountsConsistent(*tree, db);
  // The semi-quadrant root splits horizontally into two 4x4 squares.
  const int32_t first = tree->node(BinaryTree::kRootId).first_child;
  ASSERT_GE(first, 0);
  EXPECT_EQ(tree->node(first).region, (Rect{0, 0, 4, 4}));
  EXPECT_EQ(tree->node(first + 1).region, (Rect{0, 4, 4, 8}));
}

TEST(BinaryTreeTest, ShapeStatsAndHeight) {
  Rng rng(24);
  const MapExtent extent{0, 0, 6};
  const LocationDatabase db = RandomDb(&rng, 500, extent);
  Result<BinaryTree> tree =
      BinaryTree::Build(db, extent, TreeOptions{.split_threshold = 8});
  ASSERT_TRUE(tree.ok());
  const BinaryTree::ShapeStats stats = tree->ComputeShapeStats();
  EXPECT_EQ(stats.live_nodes, tree->num_live_nodes());
  EXPECT_EQ(stats.height, tree->Height());
  EXPECT_GT(stats.leaves, 0u);
  // Split threshold 8 and splittable cells: interior leaves hold <= 8.
  EXPECT_LE(stats.max_leaf_occupancy, 500u);
  EXPECT_GE(stats.mean_leaf_depth, 1.0);
}

TEST(BinaryTreeTest, ApplyMoveKeepsTreeIdenticalToRebuild) {
  Rng rng(25);
  const MapExtent extent{0, 0, 5};
  LocationDatabase db = RandomDb(&rng, 120, extent);
  const TreeOptions options{.split_threshold = 4};
  Result<BinaryTree> tree = BinaryTree::Build(db, extent, options);
  ASSERT_TRUE(tree.ok());

  // 40 random single-user moves applied one batch at a time.
  for (int round = 0; round < 40; ++round) {
    const uint32_t row = static_cast<uint32_t>(rng.NextBounded(db.size()));
    const Point from = db.row(row).location;
    const Point to{static_cast<Coord>(rng.NextBounded(extent.side())),
                   static_cast<Coord>(rng.NextBounded(extent.side()))};
    std::vector<int32_t> dirty;
    ASSERT_TRUE(tree->ApplyMove(row, from, to, &dirty).ok());
    ASSERT_TRUE(db.MoveUser(db.row(row).user, to).ok());
    EXPECT_FALSE(dirty.empty());
  }
  ExpectLeavesPartitionAndCountsConsistent(*tree, db);

  // The mutated tree has exactly the shape a fresh build would produce.
  Result<BinaryTree> rebuilt = BinaryTree::Build(db, extent, options);
  ASSERT_TRUE(rebuilt.ok());
  const auto a = tree->ComputeShapeStats();
  const auto b = rebuilt->ComputeShapeStats();
  EXPECT_EQ(a.leaves, b.leaves);
  EXPECT_EQ(a.height, b.height);
  EXPECT_EQ(a.live_nodes, b.live_nodes);
  EXPECT_EQ(a.max_leaf_occupancy, b.max_leaf_occupancy);
}

TEST(BinaryTreeTest, ApplyMoveValidatesInput) {
  const MapExtent extent{0, 0, 3};
  LocationDatabase db = MakeDb({{1, 1}, {2, 2}, {3, 3}});
  Result<BinaryTree> tree =
      BinaryTree::Build(db, extent, TreeOptions{.split_threshold = 1});
  ASSERT_TRUE(tree.ok());
  std::vector<int32_t> dirty;
  EXPECT_FALSE(tree->ApplyMove(0, {1, 1}, {100, 100}, &dirty).ok());
  EXPECT_FALSE(tree->ApplyMove(7, {1, 1}, {2, 2}, &dirty).ok());
  EXPECT_FALSE(tree->ApplyMove(0, {5, 5}, {2, 2}, &dirty).ok());  // stale from
}

}  // namespace
}  // namespace pasa
