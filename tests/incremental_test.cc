// Tests for incremental maintenance of the configuration matrix: after any
// batch of moves, the repaired matrix must be indistinguishable from a
// from-scratch rebuild on the new snapshot.

#include <gtest/gtest.h>

#include "pasa/incremental.h"
#include "tests/test_util.h"
#include "workload/movement.h"

namespace pasa {
namespace {

using testing_util::RandomDb;

Cost RebuildCost(const LocationDatabase& db, const MapExtent& extent, int k) {
  TreeOptions tree_options;
  tree_options.split_threshold = k;
  Result<BinaryTree> tree = BinaryTree::Build(db, extent, tree_options);
  EXPECT_TRUE(tree.ok());
  Result<DpMatrix> matrix = ComputeDpMatrix(*tree, k, DpOptions{});
  EXPECT_TRUE(matrix.ok());
  Result<Cost> cost = matrix->OptimalCost(*tree);
  EXPECT_TRUE(cost.ok());
  return *cost;
}

struct IncrementalParam {
  uint64_t seed;
  int n;
  int k;
  double moving_fraction;
};

class IncrementalSweep : public ::testing::TestWithParam<IncrementalParam> {};

TEST_P(IncrementalSweep, MatchesRebuildAcrossSnapshots) {
  const IncrementalParam p = GetParam();
  Rng rng(p.seed);
  const MapExtent extent{0, 0, 6};
  LocationDatabase db = RandomDb(&rng, p.n, extent);

  Result<IncrementalAnonymizer> inc =
      IncrementalAnonymizer::Build(db, extent, p.k, DpOptions{});
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();

  for (int snapshot = 0; snapshot < 5; ++snapshot) {
    MovementOptions movement;
    movement.moving_fraction = p.moving_fraction;
    movement.max_distance = 12.0;
    movement.seed = p.seed * 100 + static_cast<uint64_t>(snapshot);
    const std::vector<UserMove> moves = DrawMoves(db, extent, movement);

    Result<size_t> recomputed = inc->ApplyMoves(moves);
    ASSERT_TRUE(recomputed.ok()) << recomputed.status().ToString();
    ASSERT_TRUE(ApplyMovesToDatabase(moves, &db).ok());

    Result<Cost> incremental_cost = inc->OptimalCost();
    ASSERT_TRUE(incremental_cost.ok());
    EXPECT_EQ(*incremental_cost, RebuildCost(db, extent, p.k))
        << "snapshot " << snapshot;

    // The extracted policy stays valid on the moved snapshot.
    Result<ExtractedPolicy> policy = inc->ExtractPolicy();
    ASSERT_TRUE(policy.ok());
    EXPECT_TRUE(policy->table.IsMasking(db));
    EXPECT_GE(policy->table.MinGroupSize(), static_cast<size_t>(p.k));
    EXPECT_EQ(policy->table.TotalCost(), *incremental_cost);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MovesVsRebuild, IncrementalSweep,
    ::testing::Values(IncrementalParam{1, 60, 3, 0.02},
                      IncrementalParam{2, 60, 3, 0.10},
                      IncrementalParam{3, 120, 5, 0.05},
                      IncrementalParam{4, 120, 5, 0.30},
                      IncrementalParam{5, 200, 8, 0.01},
                      IncrementalParam{6, 200, 2, 0.50}),
    [](const ::testing::TestParamInfo<IncrementalParam>& info) {
      const IncrementalParam& p = info.param;
      return "seed" + std::to_string(p.seed) + "_n" + std::to_string(p.n) +
             "_k" + std::to_string(p.k) + "_move" +
             std::to_string(static_cast<int>(p.moving_fraction * 100));
    });

TEST(IncrementalTest, NoMovesIsANoOp) {
  Rng rng(9);
  const MapExtent extent{0, 0, 5};
  LocationDatabase db = RandomDb(&rng, 50, extent);
  Result<IncrementalAnonymizer> inc =
      IncrementalAnonymizer::Build(db, extent, 4, DpOptions{});
  ASSERT_TRUE(inc.ok());
  const Result<Cost> before = inc->OptimalCost();
  Result<size_t> recomputed = inc->ApplyMoves({});
  ASSERT_TRUE(recomputed.ok());
  EXPECT_EQ(*recomputed, 0u);
  EXPECT_EQ(*inc->OptimalCost(), *before);
}

TEST(IncrementalTest, MoveAcrossTheWholeMap) {
  // A single user teleporting across the map exercises split + collapse on
  // two distant paths at once.
  Rng rng(10);
  const MapExtent extent{0, 0, 6};
  LocationDatabase db = RandomDb(&rng, 150, extent);
  const int k = 5;
  Result<IncrementalAnonymizer> inc =
      IncrementalAnonymizer::Build(db, extent, k, DpOptions{});
  ASSERT_TRUE(inc.ok());
  for (int i = 0; i < 10; ++i) {
    const uint32_t row = static_cast<uint32_t>(rng.NextBounded(db.size()));
    const Point from = db.row(row).location;
    const Point to{static_cast<Coord>(rng.NextBounded(extent.side())),
                   static_cast<Coord>(rng.NextBounded(extent.side()))};
    ASSERT_TRUE(inc->ApplyMoves({UserMove{row, from, to}}).ok());
    ASSERT_TRUE(db.MoveUser(db.row(row).user, to).ok());
    EXPECT_EQ(*inc->OptimalCost(), RebuildCost(db, extent, k)) << i;
  }
}

TEST(IncrementalTest, RejectsStaleMove) {
  Rng rng(11);
  const MapExtent extent{0, 0, 4};
  LocationDatabase db = RandomDb(&rng, 20, extent);
  Result<IncrementalAnonymizer> inc =
      IncrementalAnonymizer::Build(db, extent, 3, DpOptions{});
  ASSERT_TRUE(inc.ok());
  const Point actual = db.row(0).location;
  const Point wrong{actual.x == 0 ? actual.x + 1 : actual.x - 1, actual.y};
  EXPECT_FALSE(inc->ApplyMoves({UserMove{0, wrong, {0, 0}}}).ok());
}

}  // namespace
}  // namespace pasa
