// Tests for configurations, the k-summation property (Definition 9), and
// the Lemma 1/2/3 statements connecting configurations to policies.

#include <gtest/gtest.h>

#include "pasa/anonymizer.h"
#include "pasa/bulk_dp_binary.h"
#include "pasa/configuration.h"
#include "pasa/extraction.h"
#include "tests/test_util.h"

namespace pasa {
namespace {

using testing_util::LeafOfRow;
using testing_util::MakeDb;
using testing_util::RandomDb;

TEST(KSummationTest, PassEverythingUpEverywhereSatisfiesButIncomplete) {
  Rng rng(1);
  const MapExtent extent{0, 0, 4};
  const LocationDatabase db = RandomDb(&rng, 30, extent);
  Result<BinaryTree> tree =
      BinaryTree::Build(db, extent, TreeOptions{.split_threshold = 5});
  ASSERT_TRUE(tree.ok());

  Configuration config;
  config.passed_up.assign(tree->num_nodes(), 0);
  for (size_t i = 0; i < tree->num_nodes(); ++i) {
    config.passed_up[i] = tree->node(static_cast<int32_t>(i)).count;
  }
  // C(m) = d(m) everywhere: k-summation holds for any k, cost is 0, but the
  // configuration is incomplete (C(root) != 0) so it is not a usable policy.
  for (const int k : {1, 3, 10, 100}) {
    EXPECT_TRUE(SatisfiesKSummation(*tree, config, k)) << k;
  }
  EXPECT_EQ(ConfigurationCost(*tree, config), 0);
  EXPECT_NE(config.C(BinaryTree::kRootId), 0u);
}

TEST(KSummationTest, CloakingFewerThanKAtANodeViolates) {
  const LocationDatabase db = MakeDb({{0, 0}, {3, 3}, {1, 2}});
  const MapExtent extent{0, 0, 2};
  Result<BinaryTree> tree =
      BinaryTree::Build(db, extent, TreeOptions{.split_threshold = 1});
  ASSERT_TRUE(tree.ok());

  // Everyone cloaked at the root: group of 3.
  std::vector<int32_t> all_root(db.size(), BinaryTree::kRootId);
  const Configuration ok = ConfigurationFromAssignment(*tree, all_root);
  EXPECT_TRUE(SatisfiesKSummation(*tree, ok, 3));
  EXPECT_FALSE(SatisfiesKSummation(*tree, ok, 4));

  // One user cloaked at her leaf (group of 1), rest at the root.
  std::vector<int32_t> split = all_root;
  const std::vector<int32_t> leaf_of = LeafOfRow(*tree, db.size());
  split[0] = leaf_of[0];
  const Configuration bad = ConfigurationFromAssignment(*tree, split);
  EXPECT_TRUE(SatisfiesKSummation(*tree, bad, 1));
  EXPECT_FALSE(SatisfiesKSummation(*tree, bad, 2));
}

TEST(ConfigurationTest, CostMatchesExplicitPolicyCost) {
  // Lemma 2: the configuration cost formula equals the summed cloak areas
  // of any represented policy.
  Rng rng(2);
  const MapExtent extent{0, 0, 4};
  const LocationDatabase db = RandomDb(&rng, 40, extent);
  Result<BinaryTree> tree =
      BinaryTree::Build(db, extent, TreeOptions{.split_threshold = 4});
  ASSERT_TRUE(tree.ok());

  // Random masking assignment: each row to a random ancestor.
  const std::vector<int32_t> leaf_of = LeafOfRow(*tree, db.size());
  std::vector<int32_t> assignment(db.size());
  int64_t explicit_cost = 0;
  for (size_t row = 0; row < db.size(); ++row) {
    const auto chain = testing_util::AncestorChain(*tree, leaf_of[row]);
    assignment[row] =
        chain[static_cast<size_t>(rng.NextBounded(chain.size()))];
    explicit_cost += tree->node(assignment[row]).region.Area();
  }
  const Configuration config = ConfigurationFromAssignment(*tree, assignment);
  EXPECT_EQ(ConfigurationCost(*tree, config), explicit_cost);
}

TEST(ConfigurationTest, ExtractionRoundTripsThroughAssignment) {
  // The configuration derived from the extracted policy's assignment equals
  // the configuration the extractor reports.
  Rng rng(3);
  const MapExtent extent{0, 0, 4};
  const LocationDatabase db = RandomDb(&rng, 50, extent);
  const int k = 4;
  Result<BinaryTree> tree =
      BinaryTree::Build(db, extent, TreeOptions{.split_threshold = k});
  ASSERT_TRUE(tree.ok());
  Result<DpMatrix> matrix = ComputeDpMatrix(*tree, k, DpOptions{});
  ASSERT_TRUE(matrix.ok());
  Result<ExtractedPolicy> policy = ExtractOptimalPolicy(*tree, *matrix, k);
  ASSERT_TRUE(policy.ok());

  const Configuration derived =
      ConfigurationFromAssignment(*tree, policy->assignment);
  for (size_t i = 0; i < tree->num_nodes(); ++i) {
    if (!tree->node(static_cast<int32_t>(i)).live) continue;
    EXPECT_EQ(derived.passed_up[i], policy->config.passed_up[i]) << i;
  }
}

TEST(ConfigurationTest, QuadVariantsAgreeWithBinarySemantics) {
  Rng rng(4);
  const MapExtent extent{0, 0, 3};
  const LocationDatabase db = RandomDb(&rng, 20, extent);
  Result<QuadTree> tree =
      QuadTree::Build(db, extent, TreeOptions{.split_threshold = 2});
  ASSERT_TRUE(tree.ok());

  std::vector<int32_t> all_root(db.size(), QuadTree::kRootId);
  const Configuration config = ConfigurationFromAssignment(*tree, all_root);
  EXPECT_TRUE(SatisfiesKSummation(*tree, config, static_cast<int>(db.size())));
  EXPECT_FALSE(
      SatisfiesKSummation(*tree, config, static_cast<int>(db.size()) + 1));
  EXPECT_EQ(ConfigurationCost(*tree, config),
            static_cast<Cost>(db.size()) *
                tree->node(QuadTree::kRootId).region.Area());
  EXPECT_EQ(config.C(QuadTree::kRootId), 0u);
}

TEST(DpRowTest, CostAtSemantics) {
  DpRow row;
  row.cap = 2;
  row.dense = {DpEntry{100, 0}, DpEntry{80, 0}, DpEntry{60, 0}};
  const uint32_t d = 9;
  EXPECT_EQ(row.CostAt(0, d), 100);
  EXPECT_EQ(row.CostAt(2, d), 60);
  EXPECT_EQ(row.CostAt(9, d), 0);              // implicit pass-everything
  EXPECT_EQ(row.CostAt(5, d), kInfiniteCost);  // outside F(m)
  DpRow empty;
  EXPECT_EQ(empty.CostAt(0, 3), kInfiniteCost);
  EXPECT_EQ(empty.CostAt(3, 3), 0);
}

}  // namespace
}  // namespace pasa
