// Unit tests for the per-request provenance layer: the JSONL round trip
// (field-for-field equality), the bounded overwrite-oldest ring, and the
// thread-local ScopedProvenanceRecord scoping rules.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/provenance.h"

namespace pasa {
namespace obs {
namespace {

// Every test runs against the process-wide ring; start disabled and empty.
class ProvenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ProvenanceRing::Global().Disable();
    ProvenanceRing::Global().Clear();
  }
  void TearDown() override {
    ProvenanceRing::Global().Disable();
    ProvenanceRing::Global().Clear();
  }
};

// A record with every field away from its default, including doubles that
// are not exactly representable in short decimal.
ProvenanceRecord FullRecord() {
  ProvenanceRecord r;
  r.rid = 4217;
  r.sender = 99;
  r.outcome = RequestOutcome::kDegraded;
  r.status = "UNAVAILABLE";
  r.k = 50;
  r.cloak_x1 = -8;
  r.cloak_y1 = 16;
  r.cloak_x2 = 4096;
  r.cloak_y2 = 8192;
  r.cloak_area = (4096 + 8) * (8192 - 16);
  r.policy_node = 57;
  r.tree_path = "r.1.0.0.1.0";
  r.node_depth = 5;
  r.group_size = 44;
  r.passed_up = 4;
  r.cache_hit = false;
  r.stale_fallback = true;
  r.lbs_attempts = 3;
  r.lbs_retries = 2;
  r.breaker_rejected = false;
  r.deadline_exceeded = true;
  r.lbs_simulated_micros = 50'000.0 + 1.0 / 3.0;
  AddFaultFire(&r, "lbs/latency");
  AddFaultFire(&r, "lbs/error");
  AddFaultFire(&r, "lbs/latency");
  r.total_seconds = 3.2589999999999998e-05;
  r.cloak_seconds = 0.1 + 0.2;  // famously not 0.3
  r.lbs_seconds = 1.9366999999999999e-05;
  return r;
}

TEST_F(ProvenanceTest, OutcomeNamesRoundTrip) {
  for (const RequestOutcome outcome :
       {RequestOutcome::kServed, RequestOutcome::kDegraded,
        RequestOutcome::kFailed, RequestOutcome::kRejected}) {
    Result<RequestOutcome> parsed =
        ParseRequestOutcome(RequestOutcomeName(outcome));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, outcome);
  }
  EXPECT_FALSE(ParseRequestOutcome("exploded").ok());
}

TEST_F(ProvenanceTest, AddFaultFireKeepsSortedCounts) {
  ProvenanceRecord r;
  AddFaultFire(&r, "zz");
  AddFaultFire(&r, "aa");
  AddFaultFire(&r, "mm");
  AddFaultFire(&r, "zz");
  ASSERT_EQ(r.fault_fires.size(), 3u);
  EXPECT_EQ(r.fault_fires[0], (std::pair<std::string, uint32_t>{"aa", 1}));
  EXPECT_EQ(r.fault_fires[1], (std::pair<std::string, uint32_t>{"mm", 1}));
  EXPECT_EQ(r.fault_fires[2], (std::pair<std::string, uint32_t>{"zz", 2}));
}

TEST_F(ProvenanceTest, JsonlRoundTripIsFieldForFieldEqual) {
  const ProvenanceRecord original = FullRecord();
  const std::string line = ProvenanceToJsonl(original);
  // One object, no newline: it must be embeddable as one JSONL line.
  EXPECT_EQ(line.find('\n'), std::string::npos);
  Result<json::Value> parsed = json::Parse(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Result<ProvenanceRecord> back = ProvenanceFromJson(*parsed);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  // The whole point of %.17g serialization: every field, including the
  // doubles, comes back bit-identical.
  EXPECT_TRUE(original == *back);
}

TEST_F(ProvenanceTest, DefaultRecordRoundTripsToo) {
  const ProvenanceRecord original;  // all defaults
  Result<std::vector<ProvenanceRecord>> back =
      ParseProvenanceJsonl(ProvenanceToJsonl(original));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 1u);
  EXPECT_TRUE(original == back->front());
}

TEST_F(ProvenanceTest, ParseJsonlSkipsBlankLinesAndReportsLineNumbers) {
  const std::string text = ProvenanceToJsonl(FullRecord()) + "\n\n" +
                           ProvenanceToJsonl(ProvenanceRecord{}) + "\n";
  Result<std::vector<ProvenanceRecord>> records = ParseProvenanceJsonl(text);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);

  Result<std::vector<ProvenanceRecord>> bad =
      ParseProvenanceJsonl("{\"rid\":1}\nnot json\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("line 2"), std::string::npos)
      << bad.status().ToString();
}

TEST_F(ProvenanceTest, MalformedOutcomeIsRejected) {
  EXPECT_FALSE(ParseProvenanceJsonl("{\"outcome\":\"sideways\"}").ok());
}

TEST_F(ProvenanceTest, RingOverwritesOldestAndCounts) {
  ProvenanceRing& ring = ProvenanceRing::Global();
  ring.Enable(/*capacity=*/4);
  for (int64_t rid = 1; rid <= 10; ++rid) {
    ProvenanceRecord r;
    r.rid = rid;
    ring.Append(std::move(r));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.total_appended(), 10u);
  EXPECT_EQ(ring.overwritten(), 6u);
  const std::vector<ProvenanceRecord> records = ring.Records();
  ASSERT_EQ(records.size(), 4u);
  // Oldest first, and only the freshest 4 survive.
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].rid, static_cast<int64_t>(7 + i));
  }
}

TEST_F(ProvenanceTest, DisabledRingDropsAppends) {
  ProvenanceRing& ring = ProvenanceRing::Global();
  ASSERT_FALSE(ring.enabled());
  ring.Append(ProvenanceRecord{});
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total_appended(), 0u);
}

TEST_F(ProvenanceTest, WriteJsonlFileRoundTripsTheWholeRing) {
  ProvenanceRing& ring = ProvenanceRing::Global();
  ring.Enable(/*capacity=*/16);
  ProvenanceRecord full = FullRecord();
  ring.Append(full);
  ProvenanceRecord rejected;
  rejected.sender = 7;
  rejected.status = "NOT_FOUND";
  ring.Append(rejected);

  const std::string path = ::testing::TempDir() + "/pasa_audit_test.jsonl";
  ASSERT_TRUE(ring.WriteJsonlFile(path).ok());
  Result<std::vector<ProvenanceRecord>> back = ReadProvenanceJsonlFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), 2u);
  EXPECT_TRUE((*back)[0] == full);
  EXPECT_TRUE((*back)[1] == rejected);

  EXPECT_EQ(ReadProvenanceJsonlFile("/nonexistent/audit.jsonl")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(ProvenanceTest, ScopedRecordIsInertWhileRingDisabled) {
  ASSERT_EQ(CurrentProvenance(), nullptr);
  ScopedProvenanceRecord scope;
  EXPECT_FALSE(scope.active());
  EXPECT_EQ(scope.get(), nullptr);
  EXPECT_EQ(CurrentProvenance(), nullptr);
}

TEST_F(ProvenanceTest, ScopedRecordCapturesAnnotationsAndStampsTotal) {
  ProvenanceRing& ring = ProvenanceRing::Global();
  ring.Enable();
  {
    ScopedProvenanceRecord scope;
    ASSERT_TRUE(scope.active());
    ASSERT_EQ(CurrentProvenance(), scope.get());
    CurrentProvenance()->rid = 5;
    CurrentProvenance()->cache_hit = true;
    {
      // A nested scope (e.g. the CLI loop inside an already-instrumented
      // caller) must not steal or reset the outer record.
      ScopedProvenanceRecord inner;
      EXPECT_FALSE(inner.active());
      EXPECT_EQ(inner.get(), nullptr);
      EXPECT_EQ(CurrentProvenance(), scope.get());
    }
    EXPECT_EQ(CurrentProvenance()->rid, 5);
  }
  EXPECT_EQ(CurrentProvenance(), nullptr);
  const std::vector<ProvenanceRecord> records = ring.Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].rid, 5);
  EXPECT_TRUE(records[0].cache_hit);
  EXPECT_GT(records[0].total_seconds, 0.0);
}

TEST_F(ProvenanceTest, EnableClearsPreviousRecords) {
  ProvenanceRing& ring = ProvenanceRing::Global();
  ring.Enable(8);
  ring.Append(ProvenanceRecord{});
  EXPECT_EQ(ring.size(), 1u);
  ring.Enable(8);  // re-arming starts a fresh audit
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total_appended(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace pasa
