// Medium-scale cross-validation of the DP variants (no exhaustive oracle —
// the variants validate each other), plus statistical checks of Lemma 5 and
// structural properties of the optimum on realistic skewed workloads.

#include <gtest/gtest.h>

#include "attack/auditor.h"
#include "pasa/anonymizer.h"
#include "pasa/bulk_dp_binary.h"
#include "pasa/extraction.h"
#include "tests/test_util.h"
#include "workload/bay_area.h"

namespace pasa {
namespace {

BayAreaOptions SkewedOptions(uint64_t seed) {
  BayAreaOptions options;
  options.log2_map_side = 13;
  options.num_intersections = 1000;
  options.users_per_intersection = 5;
  options.user_sigma = 50.0;
  options.num_clusters = 10;
  options.seed = seed;
  return options;
}

struct CrossParam {
  uint64_t seed;
  size_t n;
  int k;
};

class DpCrossValidation : public ::testing::TestWithParam<CrossParam> {};

TEST_P(DpCrossValidation, AllBinaryVariantsAgreeOnSkewedWorkloads) {
  const CrossParam p = GetParam();
  const BayAreaGenerator generator(SkewedOptions(p.seed));
  const LocationDatabase db = generator.Generate(p.n);
  Result<BinaryTree> tree = BinaryTree::Build(
      db, generator.extent(), TreeOptions{.split_threshold = p.k});
  ASSERT_TRUE(tree.ok());

  Cost reference = -1;
  for (const bool pruning : {false, true}) {
    for (const bool two_stage : {false, true}) {
      // The fully unoptimized variant is O(|B||D|^3) by design (that is the
      // paper's point); keep it to instances where it finishes in ~a second.
      if (!pruning && !two_stage && p.n > 1200) continue;
      Result<DpMatrix> matrix = ComputeDpMatrix(
          *tree, p.k,
          DpOptions{.lemma5_pruning = pruning, .two_stage = two_stage});
      ASSERT_TRUE(matrix.ok());
      Result<Cost> cost = matrix->OptimalCost(*tree);
      ASSERT_TRUE(cost.ok());
      if (reference < 0) {
        reference = *cost;
      } else {
        EXPECT_EQ(*cost, reference)
            << "pruning=" << pruning << " two_stage=" << two_stage;
      }
    }
  }
}

TEST_P(DpCrossValidation, ExtractedOptimumInvariants) {
  const CrossParam p = GetParam();
  const BayAreaGenerator generator(SkewedOptions(p.seed ^ 0x9999));
  const LocationDatabase db = generator.Generate(p.n);
  AnonymizerOptions options;
  options.k = p.k;
  Result<Anonymizer> a = Anonymizer::Build(db, generator.extent(), options);
  ASSERT_TRUE(a.ok());

  // Masking, k-anonymity against both attacker classes, exact cost match.
  EXPECT_TRUE(a->policy().IsMasking(db));
  const AuditReport aware = AuditPolicyAware(a->policy());
  const AuditReport unaware = AuditPolicyUnaware(a->policy(), db);
  EXPECT_TRUE(aware.Anonymous(p.k));
  EXPECT_TRUE(unaware.Anonymous(p.k));
  EXPECT_EQ(a->policy().TotalCost(), a->cost());
  EXPECT_EQ(ConfigurationCost(a->tree(), a->config()), a->cost());
  EXPECT_TRUE(SatisfiesKSummation(a->tree(), a->config(), p.k));

  // Proposition 1, row-wise at scale.
  for (size_t row = 0; row < db.size(); ++row) {
    EXPECT_GE(unaware.possible_senders_per_row[row],
              aware.possible_senders_per_row[row]);
  }

  // Lemma 5 holds on the chosen optimum: every node passes up at most
  // (k+1)h(m) locations, or everything.
  const BinaryTree& tree = a->tree();
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    const BinaryTree::Node& n = tree.node(static_cast<int32_t>(i));
    if (!n.live) continue;
    const uint32_t passed = a->config().C(static_cast<int32_t>(i));
    EXPECT_TRUE(passed == n.count ||
                passed <= static_cast<uint32_t>((p.k + 1) * n.depth))
        << "node " << i << " depth " << n.depth << " passed " << passed
        << " of " << n.count;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SkewedMediumInstances, DpCrossValidation,
    ::testing::Values(CrossParam{1, 1000, 5}, CrossParam{2, 1000, 25},
                      CrossParam{3, 3000, 5}, CrossParam{4, 3000, 25},
                      CrossParam{5, 3000, 100}, CrossParam{6, 5000, 50}),
    [](const ::testing::TestParamInfo<CrossParam>& info) {
      const CrossParam& p = info.param;
      return "seed" + std::to_string(p.seed) + "_n" + std::to_string(p.n) +
             "_k" + std::to_string(p.k);
    });

TEST(DpCrossValidation, DeterministicAcrossRebuilds) {
  const BayAreaGenerator generator(SkewedOptions(77));
  const LocationDatabase db = generator.Generate(2000);
  AnonymizerOptions options;
  options.k = 20;
  Result<Anonymizer> a = Anonymizer::Build(db, generator.extent(), options);
  Result<Anonymizer> b = Anonymizer::Build(db, generator.extent(), options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->cost(), b->cost());
  for (size_t row = 0; row < db.size(); ++row) {
    EXPECT_EQ(a->CloakForRow(row), b->CloakForRow(row));
  }
}

TEST(DpCrossValidation, CostIsMonotoneInK) {
  const BayAreaGenerator generator(SkewedOptions(88));
  const LocationDatabase db = generator.Generate(2000);
  Cost previous = -1;
  for (const int k : {1, 2, 5, 10, 25, 50, 100}) {
    AnonymizerOptions options;
    options.k = k;
    Result<Anonymizer> a = Anonymizer::Build(db, generator.extent(), options);
    ASSERT_TRUE(a.ok()) << k;
    EXPECT_GE(a->cost(), previous) << "k=" << k;
    previous = a->cost();
  }
}

TEST(DpCrossValidation, OptimumNeverWorseThanAnyKInsideUpgradedPolicy) {
  // Feeding PUB's cloaking groups through the policy-aware lens: any valid
  // policy-aware cloaking costs at least the optimum. Construct one
  // explicitly — everyone in the same leaf-level group cloaked at the root
  // is always valid — and compare.
  const BayAreaGenerator generator(SkewedOptions(99));
  const LocationDatabase db = generator.Generate(1500);
  const int k = 10;
  AnonymizerOptions options;
  options.k = k;
  Result<Anonymizer> a = Anonymizer::Build(db, generator.extent(), options);
  ASSERT_TRUE(a.ok());
  const Cost everyone_at_root =
      static_cast<Cost>(db.size()) * generator.extent().ToRect().Area();
  EXPECT_LE(a->cost(), everyone_at_root);
  EXPECT_GT(a->cost(), 0);
}

}  // namespace
}  // namespace pasa
