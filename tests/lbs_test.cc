// Tests for the LBS provider substrate: POI nearest-to-cloak queries and
// the Section VII answer cache (frequency-attack mitigation + billing).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lbs/answer_cache.h"
#include "lbs/poi.h"
#include "lbs/provider.h"

namespace pasa {
namespace {

std::vector<PointOfInterest> RandomPois(Rng* rng, size_t n, Coord side) {
  const std::vector<std::string> categories = {"rest", "gas", "hospital"};
  std::vector<PointOfInterest> pois;
  pois.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pois.push_back(PointOfInterest{
        static_cast<int64_t>(i),
        Point{static_cast<Coord>(rng->NextBounded(side)),
              static_cast<Coord>(rng->NextBounded(side))},
        categories[rng->NextBounded(categories.size())]});
  }
  return pois;
}

TEST(PoiDatabaseTest, DistanceToRect) {
  const Rect r{2, 2, 6, 6};  // interior cells x,y in [2,5]
  EXPECT_EQ(PoiDatabase::SquaredDistanceToRect({3, 4}, r), 0);
  EXPECT_EQ(PoiDatabase::SquaredDistanceToRect({0, 4}, r), 4);
  EXPECT_EQ(PoiDatabase::SquaredDistanceToRect({8, 8}, r), 9 + 9);
  EXPECT_EQ(PoiDatabase::SquaredDistanceToRect({5, 5}, r), 0);  // last cell
  EXPECT_EQ(PoiDatabase::SquaredDistanceToRect({6, 2}, r), 1);  // x2 is out
}

TEST(PoiDatabaseTest, NearestToCloakMatchesBruteForce) {
  Rng rng(1);
  const std::vector<PointOfInterest> pois = RandomPois(&rng, 500, 1000);
  const PoiDatabase db(pois);
  for (int trial = 0; trial < 20; ++trial) {
    const Coord x = static_cast<Coord>(rng.NextBounded(900));
    const Coord y = static_cast<Coord>(rng.NextBounded(900));
    const Rect cloak{x, y, x + 1 + static_cast<Coord>(rng.NextBounded(80)),
                     y + 1 + static_cast<Coord>(rng.NextBounded(80))};
    const std::string category = trial % 2 == 0 ? "rest" : "gas";
    const size_t count = 1 + rng.NextBounded(8);

    const auto got = db.NearestToCloak(cloak, category, count);
    // Brute-force reference.
    std::vector<std::pair<int64_t, int64_t>> reference;  // (dist2, id)
    for (const PointOfInterest& poi : pois) {
      if (poi.category != category) continue;
      reference.emplace_back(
          PoiDatabase::SquaredDistanceToRect(poi.location, cloak), poi.id);
    }
    std::sort(reference.begin(), reference.end());
    ASSERT_EQ(got.size(), std::min(count, reference.size()));
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(PoiDatabase::SquaredDistanceToRect(got[i].location, cloak),
                reference[i].first)
          << "rank " << i;
    }
  }
}

TEST(PoiDatabaseTest, ScarceCategoryReturnsAllOfIt) {
  std::vector<PointOfInterest> pois = {
      {1, {10, 10}, "rest"}, {2, {20, 20}, "gas"}, {3, {30, 30}, "gas"}};
  const PoiDatabase db(std::move(pois));
  EXPECT_EQ(db.NearestToCloak(Rect{0, 0, 5, 5}, "rest", 10).size(), 1u);
  EXPECT_EQ(db.NearestToCloak(Rect{0, 0, 5, 5}, "spa", 10).size(), 0u);
  EXPECT_TRUE(db.NearestToCloak(Rect{0, 0, 5, 5}, "gas", 0).empty());
}

TEST(PoiDatabaseTest, EmptyDatabase) {
  const PoiDatabase db({});
  EXPECT_TRUE(db.NearestToCloak(Rect{0, 0, 4, 4}, "rest", 3).empty());
}

TEST(AnswerCacheTest, DuplicateAnonymizedRequestsNeverReachTheLbs) {
  AnswerCache<int> cache;
  const AnonymizedRequest a{1, {0, 0, 4, 4}, {{"poi", "rest"}}};
  const AnonymizedRequest duplicate{2, {0, 0, 4, 4}, {{"poi", "rest"}}};
  const AnonymizedRequest different{3, {0, 0, 4, 4}, {{"poi", "gas"}}};

  int fetches = 0;
  const auto fetch = [&] { return ++fetches; };
  EXPECT_EQ(cache.GetOrFetch(a, fetch), 1);
  // Same cloak+params, different rid: must hit.
  EXPECT_EQ(cache.GetOrFetch(duplicate, fetch), 1);
  EXPECT_EQ(cache.GetOrFetch(different, fetch), 2);
  EXPECT_EQ(fetches, 2);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(AnswerCacheTest, FlushReportsBillableCountAndClears) {
  AnswerCache<int> cache;
  const AnonymizedRequest ar{1, {0, 0, 4, 4}, {}};
  int fetches = 0;
  const auto fetch = [&] { return ++fetches; };
  cache.GetOrFetch(ar, fetch);
  cache.GetOrFetch(ar, fetch);
  cache.GetOrFetch(ar, fetch);
  EXPECT_EQ(cache.Flush(), 3u);  // billing sees all three requests
  EXPECT_EQ(cache.size(), 0u);
  cache.GetOrFetch(ar, fetch);   // re-fetched after flush
  EXPECT_EQ(fetches, 2);
  EXPECT_EQ(cache.Flush(), 1u);
}

TEST(LbsProviderTest, FrontendShieldsFrequencies) {
  Rng rng(2);
  PoiDatabase pois(RandomPois(&rng, 200, 500));
  CachingLbsFrontend frontend(LbsProvider(std::move(pois), 5));

  const AnonymizedRequest ar{10, {100, 100, 160, 160}, {{"poi", "rest"}}};
  // 50 duplicate requests from the same cloak (the frequency-attack
  // scenario of Section VII): the LBS must see exactly one.
  for (int i = 0; i < 50; ++i) {
    const auto& answer = frontend.Serve(
        AnonymizedRequest{10 + i, ar.cloak, ar.params});
    EXPECT_LE(answer.size(), 5u);
  }
  EXPECT_EQ(frontend.provider().requests_seen(), 1u);
  EXPECT_EQ(frontend.cache_stats().hits, 49u);
  EXPECT_EQ(frontend.FlushAndBill(), 50u);  // billing is still accurate
}

TEST(LbsProviderTest, AnswersAreNearestOfRequestedCategory) {
  std::vector<PointOfInterest> pois = {{1, {10, 10}, "rest"},
                                       {2, {12, 10}, "rest"},
                                       {3, {200, 200}, "rest"},
                                       {4, {10, 11}, "gas"}};
  const LbsProvider provider(PoiDatabase(std::move(pois)), 2);
  const AnonymizedRequest ar{1, {8, 8, 16, 16}, {{"poi", "rest"}}};
  const auto answer = provider.Answer(ar);
  ASSERT_EQ(answer.size(), 2u);
  EXPECT_EQ(answer[0].id, 1);
  EXPECT_EQ(answer[1].id, 2);
}

}  // namespace
}  // namespace pasa
