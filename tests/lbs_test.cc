// Tests for the LBS provider substrate: POI nearest-to-cloak queries, the
// Section VII answer cache (frequency-attack mitigation + billing), and the
// resilience layer (retries, circuit breaker, serve-stale degradation).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fault/injector.h"
#include "lbs/answer_cache.h"
#include "lbs/poi.h"
#include "lbs/provider.h"
#include "lbs/resilient_client.h"

namespace pasa {
namespace {

std::vector<PointOfInterest> RandomPois(Rng* rng, size_t n, Coord side) {
  const std::vector<std::string> categories = {"rest", "gas", "hospital"};
  std::vector<PointOfInterest> pois;
  pois.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pois.push_back(PointOfInterest{
        static_cast<int64_t>(i),
        Point{static_cast<Coord>(rng->NextBounded(side)),
              static_cast<Coord>(rng->NextBounded(side))},
        categories[rng->NextBounded(categories.size())]});
  }
  return pois;
}

TEST(PoiDatabaseTest, DistanceToRect) {
  const Rect r{2, 2, 6, 6};  // interior cells x,y in [2,5]
  EXPECT_EQ(PoiDatabase::SquaredDistanceToRect({3, 4}, r), 0);
  EXPECT_EQ(PoiDatabase::SquaredDistanceToRect({0, 4}, r), 4);
  EXPECT_EQ(PoiDatabase::SquaredDistanceToRect({8, 8}, r), 9 + 9);
  EXPECT_EQ(PoiDatabase::SquaredDistanceToRect({5, 5}, r), 0);  // last cell
  EXPECT_EQ(PoiDatabase::SquaredDistanceToRect({6, 2}, r), 1);  // x2 is out
}

TEST(PoiDatabaseTest, NearestToCloakMatchesBruteForce) {
  Rng rng(1);
  const std::vector<PointOfInterest> pois = RandomPois(&rng, 500, 1000);
  const PoiDatabase db(pois);
  for (int trial = 0; trial < 20; ++trial) {
    const Coord x = static_cast<Coord>(rng.NextBounded(900));
    const Coord y = static_cast<Coord>(rng.NextBounded(900));
    const Rect cloak{x, y, x + 1 + static_cast<Coord>(rng.NextBounded(80)),
                     y + 1 + static_cast<Coord>(rng.NextBounded(80))};
    const std::string category = trial % 2 == 0 ? "rest" : "gas";
    const size_t count = 1 + rng.NextBounded(8);

    const auto got = db.NearestToCloak(cloak, category, count);
    // Brute-force reference.
    std::vector<std::pair<int64_t, int64_t>> reference;  // (dist2, id)
    for (const PointOfInterest& poi : pois) {
      if (poi.category != category) continue;
      reference.emplace_back(
          PoiDatabase::SquaredDistanceToRect(poi.location, cloak), poi.id);
    }
    std::sort(reference.begin(), reference.end());
    ASSERT_EQ(got.size(), std::min(count, reference.size()));
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(PoiDatabase::SquaredDistanceToRect(got[i].location, cloak),
                reference[i].first)
          << "rank " << i;
    }
  }
}

TEST(PoiDatabaseTest, ScarceCategoryReturnsAllOfIt) {
  std::vector<PointOfInterest> pois = {
      {1, {10, 10}, "rest"}, {2, {20, 20}, "gas"}, {3, {30, 30}, "gas"}};
  const PoiDatabase db(std::move(pois));
  EXPECT_EQ(db.NearestToCloak(Rect{0, 0, 5, 5}, "rest", 10).size(), 1u);
  EXPECT_EQ(db.NearestToCloak(Rect{0, 0, 5, 5}, "spa", 10).size(), 0u);
  EXPECT_TRUE(db.NearestToCloak(Rect{0, 0, 5, 5}, "gas", 0).empty());
}

TEST(PoiDatabaseTest, EmptyDatabase) {
  const PoiDatabase db({});
  EXPECT_TRUE(db.NearestToCloak(Rect{0, 0, 4, 4}, "rest", 3).empty());
}

TEST(AnswerCacheTest, DuplicateAnonymizedRequestsNeverReachTheLbs) {
  AnswerCache<int> cache;
  const AnonymizedRequest a{1, {0, 0, 4, 4}, {{"poi", "rest"}}};
  const AnonymizedRequest duplicate{2, {0, 0, 4, 4}, {{"poi", "rest"}}};
  const AnonymizedRequest different{3, {0, 0, 4, 4}, {{"poi", "gas"}}};

  int fetches = 0;
  const auto fetch = [&] { return ++fetches; };
  EXPECT_EQ(cache.GetOrFetch(a, fetch), 1);
  // Same cloak+params, different rid: must hit.
  EXPECT_EQ(cache.GetOrFetch(duplicate, fetch), 1);
  EXPECT_EQ(cache.GetOrFetch(different, fetch), 2);
  EXPECT_EQ(fetches, 2);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(AnswerCacheTest, FlushReportsBillableCountAndClears) {
  AnswerCache<int> cache;
  const AnonymizedRequest ar{1, {0, 0, 4, 4}, {}};
  int fetches = 0;
  const auto fetch = [&] { return ++fetches; };
  cache.GetOrFetch(ar, fetch);
  cache.GetOrFetch(ar, fetch);
  cache.GetOrFetch(ar, fetch);
  EXPECT_EQ(cache.Flush(), 3u);  // billing sees all three requests
  EXPECT_EQ(cache.size(), 0u);
  cache.GetOrFetch(ar, fetch);   // re-fetched after flush
  EXPECT_EQ(fetches, 2);
  EXPECT_EQ(cache.Flush(), 1u);
}

TEST(LbsProviderTest, FrontendShieldsFrequencies) {
  Rng rng(2);
  PoiDatabase pois(RandomPois(&rng, 200, 500));
  CachingLbsFrontend frontend(LbsProvider(std::move(pois), 5));

  const AnonymizedRequest ar{10, {100, 100, 160, 160}, {{"poi", "rest"}}};
  // 50 duplicate requests from the same cloak (the frequency-attack
  // scenario of Section VII): the LBS must see exactly one.
  for (int i = 0; i < 50; ++i) {
    const Result<LbsAnswer> answer = frontend.Serve(
        AnonymizedRequest{10 + i, ar.cloak, ar.params});
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    EXPECT_LE(answer->pois.size(), 5u);
    EXPECT_FALSE(answer->degraded);
  }
  EXPECT_EQ(frontend.provider().requests_seen(), 1u);
  EXPECT_EQ(frontend.cache_stats().hits, 49u);
  EXPECT_EQ(frontend.FlushAndBill(), 50u);  // billing is still accurate
}

TEST(AnswerCacheTest, StaleFallbackPrefersLargestOverlapSameParams) {
  AnswerCache<int> cache;
  cache.Put({1, {0, 0, 8, 8}, {{"poi", "rest"}}}, 1);
  cache.Put({2, {4, 4, 20, 20}, {{"poi", "rest"}}}, 2);
  cache.Put({3, {0, 0, 64, 64}, {{"poi", "gas"}}}, 3);

  // {4,4,12,12} overlaps entry 1 by 4x4 and entry 2 by 8x8: entry 2 wins.
  const AnonymizedRequest ar{9, {4, 4, 12, 12}, {{"poi", "rest"}}};
  const int* stale = cache.FindStaleFallback(ar);
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(*stale, 2);
  EXPECT_EQ(cache.stats().stale_serves, 1u);

  // Same cloak, different params: the gas entry overlaps but params differ.
  const int* wrong_params =
      cache.FindStaleFallback({9, {4, 4, 12, 12}, {{"poi", "spa"}}});
  EXPECT_EQ(wrong_params, nullptr);

  // Disjoint cloak: nothing to serve.
  const int* disjoint =
      cache.FindStaleFallback({9, {100, 100, 110, 110}, {{"poi", "rest"}}});
  EXPECT_EQ(disjoint, nullptr);
}

// An LbsBackend that fails its first `fail_first` fetches with kUnavailable.
class FlakyBackend : public LbsBackend {
 public:
  explicit FlakyBackend(int fail_first) : fail_remaining_(fail_first) {}

  Result<std::vector<PointOfInterest>> Fetch(
      const AnonymizedRequest& ar) override {
    ++fetches_;
    if (fail_remaining_ > 0) {
      --fail_remaining_;
      return Status::Unavailable("backend down");
    }
    return std::vector<PointOfInterest>{{1, {1, 1}, "rest"}};
  }

  int fetches() const { return fetches_; }

 private:
  int fail_remaining_;
  int fetches_ = 0;
};

const AnonymizedRequest kAr{1, {0, 0, 8, 8}, {{"poi", "rest"}}};

TEST(ResilientLbsClientTest, RetriesTransientFailures) {
  FlakyBackend backend(/*fail_first=*/2);
  ResilientLbsClient client(&backend, ResilienceOptions{});
  const auto answer = client.Fetch(kAr);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(backend.fetches(), 3);
  EXPECT_EQ(client.stats().retries, 2u);
  EXPECT_EQ(client.stats().failures, 0u);
  EXPECT_EQ(client.breaker_state(), ResilientLbsClient::BreakerState::kClosed);
}

TEST(ResilientLbsClientTest, GivesUpAfterMaxAttempts) {
  FlakyBackend backend(/*fail_first=*/1000);
  ResilienceOptions options;
  options.max_attempts = 2;
  ResilientLbsClient client(&backend, options);
  const auto answer = client.Fetch(kAr);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(backend.fetches(), 2);
  EXPECT_EQ(client.stats().failures, 1u);
}

TEST(ResilientLbsClientTest, BreakerOpensFailsFastAndProbesAfterCooldown) {
  FlakyBackend backend(/*fail_first=*/4);  // 2 failed requests x 2 attempts
  ResilienceOptions options;
  options.max_attempts = 2;
  options.breaker_failure_threshold = 2;
  options.breaker_cooldown_requests = 3;
  ResilientLbsClient client(&backend, options);

  EXPECT_FALSE(client.Fetch(kAr).ok());
  EXPECT_EQ(client.breaker_state(), ResilientLbsClient::BreakerState::kClosed);
  EXPECT_FALSE(client.Fetch(kAr).ok());  // second failure trips the breaker
  EXPECT_EQ(client.breaker_state(), ResilientLbsClient::BreakerState::kOpen);
  EXPECT_EQ(client.stats().breaker_opens, 1u);

  // Cooldown: 3 requests fail fast without touching the backend.
  const int fetches_when_open = backend.fetches();
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(client.Fetch(kAr).ok());
  EXPECT_EQ(backend.fetches(), fetches_when_open);
  EXPECT_EQ(client.stats().fail_fast, 3u);

  // The next request is the half-open probe; the backend has recovered, so
  // it succeeds and closes the breaker.
  const auto probed = client.Fetch(kAr);
  ASSERT_TRUE(probed.ok()) << probed.status().ToString();
  EXPECT_EQ(client.breaker_state(), ResilientLbsClient::BreakerState::kClosed);
  ASSERT_TRUE(client.Fetch(kAr).ok());
}

TEST(ResilientLbsClientTest, FailedProbeReopensTheBreaker) {
  FlakyBackend backend(/*fail_first=*/1000);
  ResilienceOptions options;
  options.max_attempts = 1;
  options.breaker_failure_threshold = 1;
  options.breaker_cooldown_requests = 1;
  ResilientLbsClient client(&backend, options);

  EXPECT_FALSE(client.Fetch(kAr).ok());  // trips
  EXPECT_EQ(client.breaker_state(), ResilientLbsClient::BreakerState::kOpen);
  EXPECT_FALSE(client.Fetch(kAr).ok());  // fail fast (cooldown = 1)
  EXPECT_FALSE(client.Fetch(kAr).ok());  // probe fails -> reopen
  EXPECT_EQ(client.breaker_state(), ResilientLbsClient::BreakerState::kOpen);
  EXPECT_EQ(client.stats().breaker_opens, 2u);
}

TEST(ResilientLbsClientTest, InjectedTimeoutExceedsDeadlineWithoutRetry) {
  fault::FaultPlan plan;
  plan.points.push_back({std::string(fault::kLbsTimeout)});
  fault::FaultInjector::Global().Arm(plan, /*seed=*/7);

  FlakyBackend backend(/*fail_first=*/0);
  ResilientLbsClient client(&backend, ResilienceOptions{});
  const auto answer = client.Fetch(kAr);
  fault::FaultInjector::Global().Disarm();

  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(backend.fetches(), 0);  // timed out before reaching the backend
  EXPECT_EQ(client.stats().retries, 0u);  // deadline is not retryable
  EXPECT_EQ(client.stats().deadline_exceeded, 1u);
}

TEST(LbsProviderTest, ServeDegradesToStaleAnswerWhenProviderIsDown) {
  Rng rng(3);
  PoiDatabase pois(RandomPois(&rng, 200, 500));
  CachingLbsFrontend frontend(LbsProvider(std::move(pois), 5));

  // Warm the cache while the provider is healthy.
  const AnonymizedRequest warm{1, {100, 100, 160, 160}, {{"poi", "rest"}}};
  const auto fresh = frontend.Serve(warm);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->degraded);

  // Take the provider down and ask from an overlapping (different) cloak.
  fault::FaultPlan plan;
  plan.points.push_back({std::string(fault::kLbsError)});
  fault::FaultInjector::Global().Arm(plan, /*seed=*/11);
  const AnonymizedRequest moved{2, {120, 120, 180, 180}, {{"poi", "rest"}}};
  const auto degraded = frontend.Serve(moved);

  // A disjoint cloak has no fallback: the request is lost, not mis-served.
  const AnonymizedRequest far{3, {400, 400, 420, 420}, {{"poi", "rest"}}};
  const auto lost = frontend.Serve(far);
  fault::FaultInjector::Global().Disarm();

  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->degraded);
  EXPECT_EQ(frontend.cache_stats().stale_serves, 1u);
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.status().code(), StatusCode::kUnavailable);
  // Billing: warm fetch + stale serve are billable; the lost request is not.
  EXPECT_EQ(frontend.FlushAndBill(), 2u);
}

TEST(LbsProviderTest, AnswersAreNearestOfRequestedCategory) {
  std::vector<PointOfInterest> pois = {{1, {10, 10}, "rest"},
                                       {2, {12, 10}, "rest"},
                                       {3, {200, 200}, "rest"},
                                       {4, {10, 11}, "gas"}};
  const LbsProvider provider(PoiDatabase(std::move(pois)), 2);
  const AnonymizedRequest ar{1, {8, 8, 16, 16}, {{"poi", "rest"}}};
  const auto answer = provider.Answer(ar);
  ASSERT_EQ(answer.size(), 2u);
  EXPECT_EQ(answer[0].id, 1);
  EXPECT_EQ(answer[1].id, 2);
}

}  // namespace
}  // namespace pasa
