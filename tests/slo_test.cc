// Unit tests for the SLO tracker: burn-rate math, the zero-tolerance
// sentinel, multi-window fire/resolve transitions and their side channels
// (log counters), and the arming semantics.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/window.h"

namespace pasa {
namespace obs {
namespace {

// Small windows keep the sliding arithmetic exact: fast covers the last
// 16 ms of simulated time, slow the last 160 ms.
SloObjective TestObjective(const std::string& name, double target,
                           double burn_threshold) {
  SloObjective o;
  o.name = name;
  o.kind = SloObjective::Kind::kAvailability;
  o.target = target;
  o.fast_window_micros = 16'000;
  o.slow_window_micros = 160'000;
  o.burn_alert_threshold = burn_threshold;
  return o;
}

const SloState& StateOf(const std::vector<SloState>& states,
                        const std::string& name) {
  for (const SloState& state : states) {
    if (state.name == name) return state;
  }
  ADD_FAILURE() << "objective " << name << " not evaluated";
  static SloState missing;
  return missing;
}

class SloTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Configure(ObsOptions{.enabled = true});
    MetricsRegistry::Global().Reset();
    SimClock::Global().Reset();
    SloTracker::Global().Configure({});  // drop objectives from other tests
    SloTracker::Global().Enable();
  }
  void TearDown() override {
    SloTracker::Global().Disable();
    SloTracker::Global().Configure({});
    SimClock::Global().Reset();
  }
};

TEST_F(SloTest, BurnRateIsBadFractionOverBudget) {
  SloTracker& tracker = SloTracker::Global();
  // target 0.9: a 20% bad fraction burns the 10% budget at 2x.
  tracker.Configure({TestObjective("slo_test/avail", 0.9, 1e12)});
  for (int i = 0; i < 80; ++i) tracker.Record("slo_test/avail", true, 0);
  for (int i = 0; i < 20; ++i) tracker.Record("slo_test/avail", false, 0);
  const SloState state =
      StateOf(tracker.Evaluate(0), "slo_test/avail");
  EXPECT_DOUBLE_EQ(state.fast_burn, 2.0);
  EXPECT_DOUBLE_EQ(state.slow_burn, 2.0);
  EXPECT_EQ(state.fast_good, 80u);
  EXPECT_EQ(state.fast_total, 100u);
  EXPECT_FALSE(state.alerting);  // threshold is astronomically high
}

TEST_F(SloTest, EmptyWindowBurnsNothing) {
  SloTracker& tracker = SloTracker::Global();
  tracker.Configure({TestObjective("slo_test/idle", 0.999, 14.0)});
  const SloState state = StateOf(tracker.Evaluate(0), "slo_test/idle");
  EXPECT_DOUBLE_EQ(state.fast_burn, 0.0);
  EXPECT_DOUBLE_EQ(state.slow_burn, 0.0);
  EXPECT_FALSE(state.alerting);
}

TEST_F(SloTest, ZeroViolationsObjectiveUsesTheInfiniteSentinel) {
  SloTracker& tracker = SloTracker::Global();
  SloObjective o = TestObjective("slo_test/anon", 0.5, 14.0);
  o.kind = SloObjective::Kind::kZeroViolations;
  tracker.Configure({o});
  for (int i = 0; i < 100; ++i) tracker.Record("slo_test/anon", true, 0);
  SloState state = StateOf(tracker.Evaluate(0), "slo_test/anon");
  // The lenient target was forced to 1.0, and all-good burns nothing.
  EXPECT_DOUBLE_EQ(state.target, 1.0);
  EXPECT_DOUBLE_EQ(state.fast_burn, 0.0);
  EXPECT_FALSE(state.alerting);
  // One violation is immediately an "infinite" burn and an alert.
  tracker.Record("slo_test/anon", false, 0);
  state = StateOf(tracker.Evaluate(0), "slo_test/anon");
  EXPECT_DOUBLE_EQ(state.fast_burn, kInfiniteBurn);
  EXPECT_TRUE(state.alerting);
  EXPECT_EQ(state.alerts_fired, 1u);
}

TEST_F(SloTest, AlertNeedsBothWindowsBurning) {
  SloTracker& tracker = SloTracker::Global();
  // budget 0.1, threshold 5: needs a bad fraction >= 0.5 in BOTH windows.
  tracker.Configure({TestObjective("slo_test/both", 0.9, 5.0)});
  // Old traffic, all good: lands in the slow window only.
  for (int i = 0; i < 100; ++i) tracker.Record("slo_test/both", true, 20'000);
  // Fresh outage inside the fast window (t in the last 16 ms before now).
  for (int i = 0; i < 20; ++i) tracker.Record("slo_test/both", false, 150'000);
  SloState state = StateOf(tracker.Evaluate(150'000), "slo_test/both");
  EXPECT_GE(state.fast_burn, 5.0);           // fast window: 100% bad
  EXPECT_LT(state.slow_burn, 5.0);           // slow window: 20/120 bad
  EXPECT_FALSE(state.alerting) << "slow window must suppress the blip";

  // Once the failures dominate the slow window too, the alert fires...
  for (int i = 0; i < 100; ++i) tracker.Record("slo_test/both", false, 151'000);
  state = StateOf(tracker.Evaluate(151'000), "slo_test/both");
  EXPECT_TRUE(state.alerting);
  EXPECT_EQ(state.alerts_fired, 1u);
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("slo/alerts_fired").value(),
            1u);

  // ...and resolves purely by the windows sliding past the outage.
  state = StateOf(tracker.Evaluate(1'000'000), "slo_test/both");
  EXPECT_FALSE(state.alerting);
  EXPECT_EQ(state.alerts_resolved, 1u);
  EXPECT_EQ(
      MetricsRegistry::Global().GetCounter("slo/alerts_resolved").value(),
      1u);
}

TEST_F(SloTest, RecordLatencyAppliesTheThreshold) {
  SloTracker& tracker = SloTracker::Global();
  SloObjective o = TestObjective("slo_test/lat", 0.5, 1e12);
  o.kind = SloObjective::Kind::kLatency;
  o.latency_threshold_seconds = 0.005;
  tracker.Configure({o});
  tracker.RecordLatency("slo_test/lat", 0.001, 0);  // good
  tracker.RecordLatency("slo_test/lat", 0.005, 0);  // good (<=)
  tracker.RecordLatency("slo_test/lat", 0.050, 0);  // bad
  const SloState state = StateOf(tracker.Evaluate(0), "slo_test/lat");
  EXPECT_EQ(state.fast_good, 2u);
  EXPECT_EQ(state.fast_total, 3u);
}

TEST_F(SloTest, DisabledTrackerIgnoresRecords) {
  SloTracker& tracker = SloTracker::Global();
  tracker.Configure({TestObjective("slo_test/off", 0.9, 14.0)});
  tracker.Disable();
  tracker.Record("slo_test/off", false, 0);
  tracker.Enable();
  const SloState state = StateOf(tracker.Evaluate(0), "slo_test/off");
  EXPECT_EQ(state.fast_total, 0u);
}

TEST_F(SloTest, UnknownObjectiveNamesAreIgnored) {
  SloTracker::Global().Record("slo_test/never_configured", false, 0);
  EXPECT_TRUE(SloTracker::Global().Evaluate(0).empty());
}

TEST_F(SloTest, EnsureObjectiveDoesNotClobberConfigure) {
  SloTracker& tracker = SloTracker::Global();
  tracker.Configure({TestObjective("slo_test/mine", 0.5, 14.0)});
  SloObjective imposter = TestObjective("slo_test/mine", 0.999, 14.0);
  tracker.EnsureObjective(imposter);  // already present: kept as configured
  tracker.EnsureObjective(TestObjective("slo_test/extra", 0.9, 14.0));
  const std::vector<SloState> states = tracker.Evaluate(0);
  ASSERT_EQ(states.size(), 2u);
  EXPECT_DOUBLE_EQ(StateOf(states, "slo_test/mine").target, 0.5);
  EXPECT_DOUBLE_EQ(StateOf(states, "slo_test/extra").target, 0.9);
}

TEST_F(SloTest, ResetClearsWindowsAndAlertsButKeepsObjectives) {
  SloTracker& tracker = SloTracker::Global();
  SloObjective o = TestObjective("slo_test/reset", 1.0, 14.0);
  o.kind = SloObjective::Kind::kZeroViolations;
  tracker.Configure({o});
  tracker.Record("slo_test/reset", false, 0);
  EXPECT_TRUE(StateOf(tracker.Evaluate(0), "slo_test/reset").alerting);
  tracker.Reset();
  const SloState state = StateOf(tracker.Evaluate(0), "slo_test/reset");
  EXPECT_FALSE(state.alerting);
  EXPECT_EQ(state.fast_total, 0u);
  EXPECT_EQ(state.alerts_fired, 0u);
}

TEST_F(SloTest, DefaultServingObjectivesCoverTheThreeSlos) {
  const std::vector<SloObjective> defaults = DefaultServingObjectives();
  ASSERT_EQ(defaults.size(), 3u);
  EXPECT_EQ(defaults[0].name, kSloAvailability);
  EXPECT_EQ(defaults[1].name, kSloServeLatency);
  EXPECT_EQ(defaults[2].name, kSloAnonymity);
  EXPECT_EQ(std::string(SloKindName(defaults[2].kind)), "zero_violations");
}

}  // namespace
}  // namespace obs
}  // namespace pasa
