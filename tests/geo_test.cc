// Unit and property tests for the geometry substrate: rectangles, circles,
// and the Welzl minimum bounding circle.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geo/circle.h"
#include "geo/mbc.h"
#include "geo/point.h"
#include "geo/rect.h"

namespace pasa {
namespace {

TEST(PointTest, SquaredDistance) {
  EXPECT_EQ(SquaredDistance({0, 0}, {3, 4}), 25);
  EXPECT_EQ(SquaredDistance({-1, -1}, {-1, -1}), 0);
}

TEST(RectTest, AreaAndContains) {
  const Rect r{0, 0, 4, 2};
  EXPECT_EQ(r.Area(), 8);
  EXPECT_TRUE(r.Contains({0, 0}));
  EXPECT_TRUE(r.Contains({3, 1}));
  EXPECT_FALSE(r.Contains({4, 1}));  // half-open: x2 excluded
  EXPECT_FALSE(r.Contains({0, 2}));  // half-open: y2 excluded
  EXPECT_FALSE(r.Contains({-1, 0}));
}

TEST(RectTest, HalvesPartitionExactly) {
  const Rect r{0, 0, 8, 8};
  EXPECT_EQ(r.WestHalf(), (Rect{0, 0, 4, 8}));
  EXPECT_EQ(r.EastHalf(), (Rect{4, 0, 8, 8}));
  EXPECT_EQ(r.SouthHalf(), (Rect{0, 0, 8, 4}));
  EXPECT_EQ(r.NorthHalf(), (Rect{0, 4, 8, 8}));
  EXPECT_EQ(r.WestHalf().Area() + r.EastHalf().Area(), r.Area());
}

TEST(RectTest, QuadrantsPartitionEveryPoint) {
  const Rect r{0, 0, 8, 8};
  for (Coord x = 0; x < 8; ++x) {
    for (Coord y = 0; y < 8; ++y) {
      int containing = 0;
      for (int q = 0; q < 4; ++q) {
        if (r.Quadrant(q).Contains({x, y})) ++containing;
      }
      EXPECT_EQ(containing, 1) << "point (" << x << "," << y << ")";
    }
  }
}

TEST(RectTest, QuadrantOrderMatchesMorton) {
  const Rect r{0, 0, 4, 4};
  EXPECT_EQ(r.Quadrant(0), (Rect{0, 0, 2, 2}));  // SW
  EXPECT_EQ(r.Quadrant(1), (Rect{2, 0, 4, 2}));  // SE
  EXPECT_EQ(r.Quadrant(2), (Rect{0, 2, 2, 4}));  // NW
  EXPECT_EQ(r.Quadrant(3), (Rect{2, 2, 4, 4}));  // NE
}

TEST(RectTest, UnionAndIntersects) {
  const Rect a{0, 0, 2, 2};
  const Rect b{3, 3, 5, 5};
  EXPECT_FALSE(a.Intersects(b));
  EXPECT_EQ(Union(a, b), (Rect{0, 0, 5, 5}));
  EXPECT_TRUE(a.Intersects(Rect{1, 1, 3, 3}));
  EXPECT_TRUE((Rect{0, 0, 5, 5}).ContainsRect(a));
  EXPECT_FALSE(a.ContainsRect(Rect{0, 0, 5, 5}));
}

TEST(RectTest, CellAtIsUnitSquareContainingPoint) {
  const Rect cell = CellAt({7, -3});
  EXPECT_EQ(cell.Area(), 1);
  EXPECT_TRUE(cell.Contains({7, -3}));
}

TEST(CircleTest, AreaAndContains) {
  const Circle c{0.0, 0.0, 5.0};
  EXPECT_NEAR(c.Area(), 78.5398, 1e-3);
  EXPECT_TRUE(c.Contains({3, 4}));   // on the boundary
  EXPECT_TRUE(c.Contains({0, 0}));
  EXPECT_FALSE(c.Contains({4, 4}));
}

TEST(MbcTest, DegenerateInputs) {
  EXPECT_EQ(MinimumBoundingCircle({}).radius, 0.0);
  const Circle one = MinimumBoundingCircle({{5, 5}});
  EXPECT_EQ(one.radius, 0.0);
  EXPECT_EQ(one.cx, 5.0);
  const Circle two = MinimumBoundingCircle({{0, 0}, {4, 0}});
  EXPECT_DOUBLE_EQ(two.radius, 2.0);
  EXPECT_DOUBLE_EQ(two.cx, 2.0);
}

TEST(MbcTest, CollinearPoints) {
  const Circle c = MinimumBoundingCircle({{0, 0}, {2, 0}, {6, 0}});
  EXPECT_DOUBLE_EQ(c.radius, 3.0);
  EXPECT_DOUBLE_EQ(c.cx, 3.0);
}

TEST(MbcTest, EquilateralishTriangle) {
  // Circumcircle of (0,0), (4,0), (2,3): center (2, 5/6), r = sqrt(4+25/36).
  const Circle c = MinimumBoundingCircle({{0, 0}, {4, 0}, {2, 3}});
  EXPECT_NEAR(c.cx, 2.0, 1e-9);
  EXPECT_NEAR(c.cy, 5.0 / 6.0, 1e-9);
}

TEST(MbcTest, ContainsAllPointsOnRandomInputs) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Point> points;
    const size_t n = 3 + rng.NextBounded(40);
    for (size_t i = 0; i < n; ++i) {
      points.push_back(Point{static_cast<Coord>(rng.NextBounded(1000)),
                             static_cast<Coord>(rng.NextBounded(1000))});
    }
    const Circle c = MinimumBoundingCircle(points);
    for (const Point& p : points) {
      EXPECT_TRUE(c.Contains(p)) << c.ToString() << " vs " << p.ToString();
    }
  }
}

TEST(MbcTest, NotLargerThanFarthestPairHeuristicBound) {
  // MBC radius is at most the diameter of the point set, and at least half
  // the largest pairwise distance.
  Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<Point> points;
    for (int i = 0; i < 12; ++i) {
      points.push_back(Point{static_cast<Coord>(rng.NextBounded(500)),
                             static_cast<Coord>(rng.NextBounded(500))});
    }
    int64_t max_d2 = 0;
    for (const Point& a : points) {
      for (const Point& b : points) {
        max_d2 = std::max(max_d2, SquaredDistance(a, b));
      }
    }
    const double diameter = std::sqrt(static_cast<double>(max_d2));
    const Circle c = MinimumBoundingCircle(points);
    EXPECT_GE(c.radius, diameter / 2.0 - 1e-6);
    EXPECT_LE(c.radius, diameter / std::sqrt(3.0) + 1e-6);  // Jung's theorem
  }
}

TEST(MbcTest, DeterministicAcrossCalls) {
  const std::vector<Point> points = {{0, 0}, {10, 2}, {3, 9}, {7, 7}, {1, 5}};
  const Circle a = MinimumBoundingCircle(points);
  const Circle b = MinimumBoundingCircle(points);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pasa
