// Unit tests for the LBS model: location database snapshots, service and
// anonymized requests, masking, and the cloaking table.

#include <gtest/gtest.h>

#include "model/anonymized_request.h"
#include "model/cloaking.h"
#include "model/location_database.h"
#include "model/service_request.h"

namespace pasa {
namespace {

LocationDatabase ExampleDb() {
  // Table I of the paper (shifted to 0-based half-open coordinates).
  LocationDatabase db;
  db.Add(1, {0, 0});  // Alice
  db.Add(2, {0, 1});  // Bob
  db.Add(3, {0, 3});  // Carol
  db.Add(4, {2, 0});  // Sam
  db.Add(5, {3, 3});  // Tom
  return db;
}

TEST(LocationDatabaseTest, BasicAccess) {
  const LocationDatabase db = ExampleDb();
  EXPECT_EQ(db.size(), 5u);
  EXPECT_EQ(db.row(2).user, 3);
  EXPECT_EQ(db.row(2).location, (Point{0, 3}));
}

TEST(LocationDatabaseTest, IndexOfFindsAndFails) {
  const LocationDatabase db = ExampleDb();
  Result<size_t> found = db.IndexOf(4);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 3u);
  EXPECT_EQ(db.IndexOf(99).status().code(), StatusCode::kNotFound);
}

TEST(LocationDatabaseTest, MoveUser) {
  LocationDatabase db = ExampleDb();
  ASSERT_TRUE(db.MoveUser(1, {1, 1}).ok());
  EXPECT_EQ(db.row(0).location, (Point{1, 1}));
  EXPECT_EQ(db.MoveUser(99, {0, 0}).code(), StatusCode::kNotFound);
}

TEST(LocationDatabaseTest, BoundingBoxCoversAllRows) {
  const LocationDatabase db = ExampleDb();
  const Rect box = db.BoundingBox();
  for (const auto& row : db.rows()) {
    EXPECT_TRUE(box.Contains(row.location));
  }
  EXPECT_EQ(LocationDatabase().BoundingBox(), Rect{});
}

TEST(LocationDatabaseTest, CountInside) {
  const LocationDatabase db = ExampleDb();
  EXPECT_EQ(db.CountInside(Rect{0, 0, 2, 4}), 3u);  // Alice, Bob, Carol (R3)
  EXPECT_EQ(db.CountInside(Rect{2, 0, 4, 4}), 2u);  // Sam, Tom (R2)
  EXPECT_EQ(db.CountInside(Rect{0, 0, 4, 4}), 5u);
}

TEST(ServiceRequestTest, ValidityAgainstSnapshot) {
  const LocationDatabase db = ExampleDb();
  const ServiceRequest valid{3, {0, 3}, {{"poi", "rest"}}};
  const ServiceRequest wrong_location{3, {1, 3}, {{"poi", "rest"}}};
  const ServiceRequest unknown_user{9, {0, 3}, {}};
  EXPECT_TRUE(IsValid(valid, db));
  EXPECT_FALSE(IsValid(wrong_location, db));
  EXPECT_FALSE(IsValid(unknown_user, db));
  EXPECT_EQ(id(valid), 3);
  EXPECT_EQ(loc(valid), (Point{0, 3}));
}

TEST(AnonymizedRequestTest, MasksRequiresLocationAndParams) {
  const AnonymizedRequest ar{167, {0, 0, 2, 4}, {{"poi", "rest"}}};
  EXPECT_TRUE(Masks(ar, ServiceRequest{3, {0, 3}, {{"poi", "rest"}}}));
  EXPECT_FALSE(Masks(ar, ServiceRequest{4, {2, 0}, {{"poi", "rest"}}}));
  EXPECT_FALSE(Masks(ar, ServiceRequest{3, {0, 3}, {{"poi", "groc"}}}));
  EXPECT_EQ(reg(ar), (Rect{0, 0, 2, 4}));
}

TEST(CloakingTableTest, CostAndGroups) {
  CloakingTable table(5);
  const Rect r3{0, 0, 2, 4};
  const Rect r2{2, 0, 4, 4};
  for (const size_t i : {0u, 1u, 2u}) table.Assign(i, r3);
  for (const size_t i : {3u, 4u}) table.Assign(i, r2);
  EXPECT_EQ(table.TotalCost(), 3 * 8 + 2 * 8);
  EXPECT_DOUBLE_EQ(table.AverageArea(), 8.0);
  EXPECT_EQ(table.MinGroupSize(), 2u);
  const auto groups = table.GroupSizesByRegion();
  EXPECT_EQ(groups.size(), 2u);
}

TEST(CloakingTableTest, EmptyTable) {
  const CloakingTable table;
  EXPECT_EQ(table.TotalCost(), 0);
  EXPECT_DOUBLE_EQ(table.AverageArea(), 0.0);
  EXPECT_EQ(table.MinGroupSize(), 0u);
}

TEST(CloakingTableTest, MaskingCheck) {
  const LocationDatabase db = ExampleDb();
  CloakingTable table(5);
  for (size_t i = 0; i < 5; ++i) table.Assign(i, Rect{0, 0, 4, 4});
  EXPECT_TRUE(table.IsMasking(db));
  table.Assign(0, Rect{2, 0, 4, 4});  // Alice (0,0) not inside
  EXPECT_FALSE(table.IsMasking(db));
}

TEST(CloakingTableTest, ApplyProducesMaskingAnonymizedRequest) {
  const LocationDatabase db = ExampleDb();
  CloakingTable table(5);
  for (size_t i = 0; i < 5; ++i) table.Assign(i, Rect{0, 0, 4, 4});
  const ServiceRequest sr{3, {0, 3}, {{"poi", "rest"}}};
  Result<AnonymizedRequest> ar = table.Apply(db, sr, 167);
  ASSERT_TRUE(ar.ok());
  EXPECT_EQ(ar->rid, 167);
  EXPECT_TRUE(Masks(*ar, sr));

  // Invalid request: location disagrees with the snapshot.
  const ServiceRequest stale{3, {1, 1}, {}};
  EXPECT_EQ(table.Apply(db, stale, 168).status().code(),
            StatusCode::kInvalidArgument);
  const ServiceRequest unknown{42, {0, 0}, {}};
  EXPECT_EQ(table.Apply(db, unknown, 169).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace pasa
