// TailTraceRing tests: slowest-N retention order, anomaly capture,
// sliding-window eviction, the disabled fast path, and the /trace JSON
// export shape.

#include "obs/tail_trace.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/json.h"

namespace pasa {
namespace obs {
namespace {

TailTrace Make(uint64_t trace_id, double seconds, const std::string& outcome,
               uint64_t wall_micros) {
  TailTrace t;
  t.trace_id = trace_id;
  t.rid = static_cast<int64_t>(trace_id);
  t.outcome = outcome;
  t.total_seconds = seconds;
  t.completed_wall_micros = wall_micros;
  return t;
}

class TailTraceRingTest : public ::testing::Test {
 protected:
  void TearDown() override {
    TailTraceRing::Global().Disable();
    TailTraceRing::Global().Reset();
  }
};

TEST_F(TailTraceRingTest, DisabledDropsEverything) {
  TailTraceRing& ring = TailTraceRing::Global();
  ASSERT_FALSE(ring.enabled());
  ring.Offer(Make(1, 1.0, "served", 1000));
  EXPECT_EQ(ring.slowest_size(), 0u);
}

TEST_F(TailTraceRingTest, KeepsSlowestSorted) {
  TailTraceRing& ring = TailTraceRing::Global();
  TailTraceRing::Options options;
  options.slowest_capacity = 3;
  options.window_seconds = 1e6;
  ring.Enable(options);
  const uint64_t base = 1;
  ring.Offer(Make(1, 0.010, "served", base));
  ring.Offer(Make(2, 0.050, "served", base));
  ring.Offer(Make(3, 0.001, "served", base));
  ring.Offer(Make(4, 0.020, "served", base));
  ring.Offer(Make(5, 0.002, "served", base));  // too fast: evicted
  EXPECT_EQ(ring.slowest_size(), 3u);

  Result<json::Value> doc = json::Parse(ring.ExportJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::Value* slowest = doc->Find("slowest");
  ASSERT_NE(slowest, nullptr);
  ASSERT_EQ(slowest->array().size(), 3u);
  // Slowest first: 50ms, 20ms, 10ms.
  EXPECT_EQ(slowest->array()[0].Find("trace_id")->str(),
            TraceIdHex(2));
  EXPECT_EQ(slowest->array()[1].Find("trace_id")->str(),
            TraceIdHex(4));
  EXPECT_EQ(slowest->array()[2].Find("trace_id")->str(),
            TraceIdHex(1));
}

TEST_F(TailTraceRingTest, AnomaliesAlwaysKeptNewestFirst) {
  TailTraceRing& ring = TailTraceRing::Global();
  TailTraceRing::Options options;
  options.slowest_capacity = 1;
  options.anomaly_capacity = 2;
  options.window_seconds = 1e6;
  ring.Enable(options);
  ring.Offer(Make(1, 0.0001, "failed", 1));
  ring.Offer(Make(2, 0.0001, "degraded", 2));
  ring.Offer(Make(3, 0.0001, "rejected", 3));
  EXPECT_EQ(ring.anomaly_size(), 2u);  // capacity bound, oldest dropped

  Result<json::Value> doc = json::Parse(ring.ExportJson());
  ASSERT_TRUE(doc.ok());
  const json::Value* anomalies = doc->Find("anomalies");
  ASSERT_NE(anomalies, nullptr);
  ASSERT_EQ(anomalies->array().size(), 2u);
  EXPECT_EQ(anomalies->array()[0].Find("outcome")->str(), "rejected");
  EXPECT_EQ(anomalies->array()[1].Find("outcome")->str(), "degraded");
}

TEST_F(TailTraceRingTest, WindowEvictsOldSlowest) {
  TailTraceRing& ring = TailTraceRing::Global();
  TailTraceRing::Options options;
  options.slowest_capacity = 8;
  options.window_seconds = 1.0;  // 1e6 micros
  ring.Enable(options);
  ring.Offer(Make(1, 0.5, "served", 1000));
  EXPECT_EQ(ring.slowest_size(), 1u);
  // 2 seconds later the first entry has aged out of the window, so even a
  // much faster request replaces it.
  ring.Offer(Make(2, 0.001, "served", 2 * 1000 * 1000 + 1000));
  Result<json::Value> doc = json::Parse(ring.ExportJson());
  ASSERT_TRUE(doc.ok());
  const json::Value* slowest = doc->Find("slowest");
  ASSERT_EQ(slowest->array().size(), 1u);
  EXPECT_EQ(slowest->array()[0].Find("trace_id")->str(), TraceIdHex(2));
}

TEST_F(TailTraceRingTest, ExportCarriesSpans) {
  TailTraceRing& ring = TailTraceRing::Global();
  ring.Enable();
  TailTrace t = Make(0xabc, 0.010, "served", 1);
  t.spans.push_back(CollectedSpan{10, 0, "net/dispatch", 0.0, 10000.0});
  t.spans.push_back(
      CollectedSpan{11, 10, "net/dispatch/csp", 100.0, 9000.0});
  ring.Offer(std::move(t));

  Result<json::Value> doc = json::Parse(ring.ExportJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::Value* slowest = doc->Find("slowest");
  ASSERT_EQ(slowest->array().size(), 1u);
  const json::Value& trace = slowest->array()[0];
  EXPECT_EQ(trace.Find("trace_id")->str(), TraceIdHex(0xabc));
  const json::Value* spans = trace.Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->array().size(), 2u);
  EXPECT_EQ(spans->array()[0].Find("path")->str(), "net/dispatch");
  EXPECT_EQ(spans->array()[1].Find("parent_span_id")->str(), TraceIdHex(10));
  EXPECT_DOUBLE_EQ(spans->array()[1].Find("duration_micros")->number(),
                   9000.0);
}

TEST_F(TailTraceRingTest, OfferStampsCompletionTime) {
  TailTraceRing& ring = TailTraceRing::Global();
  ring.Enable();
  ring.Offer(Make(1, 0.001, "served", 0));  // 0 = "stamp for me"
  Result<json::Value> doc = json::Parse(ring.ExportJson());
  ASSERT_TRUE(doc.ok());
  const json::Value* slowest = doc->Find("slowest");
  ASSERT_EQ(slowest->array().size(), 1u);
  EXPECT_GT(slowest->array()[0].Find("completed_wall_micros")->number(), 0.0);
}

}  // namespace
}  // namespace obs
}  // namespace pasa
