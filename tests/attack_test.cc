// Tests for the attacker substrate: auditors, the brute-force PRE engine,
// and the paper's Propositions 1-3 as executable statements.

#include <gtest/gtest.h>

#include "attack/auditor.h"
#include "attack/pre.h"
#include "pasa/anonymizer.h"
#include "policies/k_inside_quad.h"
#include "tests/test_util.h"

namespace pasa {
namespace {

using testing_util::MakeDb;
using testing_util::RandomDb;

TEST(AuditorTest, PolicyAwareCountsGroups) {
  CloakingTable table(5);
  const Rect a{0, 0, 2, 2};
  const Rect b{2, 0, 4, 4};
  table.Assign(0, a);
  table.Assign(1, a);
  table.Assign(2, a);
  table.Assign(3, b);
  table.Assign(4, b);
  const AuditReport report = AuditPolicyAware(table);
  EXPECT_EQ(report.min_possible_senders, 2u);
  EXPECT_TRUE(report.Anonymous(2));
  EXPECT_FALSE(report.Anonymous(3));
  EXPECT_EQ(report.Breaches(3), (std::vector<size_t>{3, 4}));
}

TEST(AuditorTest, PolicyUnawareCountsOccupancy) {
  const LocationDatabase db = MakeDb({{0, 0}, {1, 1}, {3, 3}});
  CloakingTable table(3);
  table.Assign(0, Rect{0, 0, 2, 2});  // contains rows 0, 1
  table.Assign(1, Rect{0, 0, 2, 2});
  table.Assign(2, Rect{3, 3, 4, 4});  // contains row 2 only
  const AuditReport report = AuditPolicyUnaware(table, db);
  EXPECT_EQ(report.possible_senders_per_row,
            (std::vector<size_t>{2, 2, 1}));
  EXPECT_EQ(report.min_possible_senders, 1u);
}

TEST(AuditorTest, EmptyPolicy) {
  const AuditReport report = AuditPolicyAware(CloakingTable(0));
  EXPECT_EQ(report.min_possible_senders, 0u);
  EXPECT_FALSE(report.Anonymous(1));
}

TEST(PreTest, CandidatesForSingletonAndMaskingFamilies) {
  const LocationDatabase db = MakeDb({{0, 0}, {0, 1}, {0, 3}});
  CloakingTable policy(3);
  const Rect r{0, 0, 2, 4};
  policy.Assign(0, r);
  policy.Assign(1, r);
  policy.Assign(2, Rect{0, 2, 2, 4});

  const std::vector<Rect> observed = {r};
  const CandidateSets singleton = SingletonFamilyCandidates(policy, observed);
  ASSERT_EQ(singleton.size(), 1u);
  EXPECT_EQ(singleton[0], (std::vector<size_t>{0, 1}));

  const CandidateSets masking = MaskingFamilyCandidates(db, observed);
  EXPECT_EQ(masking[0], (std::vector<size_t>{0, 1, 2}));
}

TEST(PreTest, DefinitionSixOnTinyInstances) {
  // Two observations sharing the candidate pool {0,1}: 2 distinct PREs per
  // observation exist (cyclic shifts), 3 do not.
  const CandidateSets sets = {{0, 1}, {0, 1}};
  EXPECT_TRUE(HasKDistinctPres(sets, 2, /*functional=*/true));
  EXPECT_FALSE(HasKDistinctPres(sets, 3, /*functional=*/true));
  // Without functionality the same row could serve both observations, but
  // per-observation distinctness still caps k at the pool size.
  EXPECT_TRUE(HasKDistinctPres(sets, 2, /*functional=*/false));
  EXPECT_FALSE(HasKDistinctPres(sets, 3, /*functional=*/false));
}

TEST(PreTest, EmptyCandidateSetMeansNoPre) {
  EXPECT_FALSE(HasKDistinctPres({{0, 1}, {}}, 1, true));
  EXPECT_TRUE(HasKDistinctPres({}, 5, true));
}

TEST(PreTest, FunctionalityConstraintBites) {
  // Three observations all drawing from {0,1,2}: with functionality each
  // PRE is a permutation; a 3x3 Latin square exists so k=3 works, k=4 not.
  const CandidateSets sets = {{0, 1, 2}, {0, 1, 2}, {0, 1, 2}};
  EXPECT_TRUE(HasKDistinctPres(sets, 3, true));
  EXPECT_FALSE(HasKDistinctPres(sets, 4, true));
}

// Property: on random snapshots, the group-size audit (what the library
// uses) agrees with the brute-force Definition-6 check under the singleton
// family, for the "every user sends one request" observation set.
TEST(PreTest, GroupAuditAgreesWithBruteForceDefinitionSix) {
  for (const uint64_t seed : {41u, 42u, 43u, 44u, 45u}) {
    Rng rng(seed);
    const MapExtent extent{0, 0, 2};
    const LocationDatabase db = RandomDb(&rng, 6, extent);
    const int k = 2;
    AnonymizerOptions options;
    options.k = k;
    Result<Anonymizer> anonymizer = Anonymizer::Build(db, extent, options);
    ASSERT_TRUE(anonymizer.ok());

    // Observe one anonymized request per user.
    std::vector<Rect> observed;
    for (size_t row = 0; row < db.size(); ++row) {
      observed.push_back(anonymizer->policy().cloak(row));
    }
    const CandidateSets candidates =
        SingletonFamilyCandidates(anonymizer->policy(), observed);
    const bool brute = HasKDistinctPres(candidates, k, /*functional=*/true);
    const bool audit = AuditPolicyAware(anonymizer->policy()).Anonymous(k);
    EXPECT_EQ(brute, audit) << "seed " << seed;
    EXPECT_TRUE(audit);  // the optimal policy must be k-anonymous
  }
}

// Proposition 1: policy-aware sender k-anonymity implies policy-unaware
// sender k-anonymity (groups are subsets of cloak occupancy).
TEST(Propositions, PolicyAwareImpliesPolicyUnaware) {
  for (const uint64_t seed : {51u, 52u, 53u}) {
    Rng rng(seed);
    const MapExtent extent{0, 0, 5};
    const LocationDatabase db = RandomDb(&rng, 60, extent);
    const int k = 4;
    AnonymizerOptions options;
    options.k = k;
    Result<Anonymizer> anonymizer = Anonymizer::Build(db, extent, options);
    ASSERT_TRUE(anonymizer.ok());
    const AuditReport aware = AuditPolicyAware(anonymizer->policy());
    const AuditReport unaware = AuditPolicyUnaware(anonymizer->policy(), db);
    ASSERT_TRUE(aware.Anonymous(k));
    EXPECT_TRUE(unaware.Anonymous(k));
    // Row-wise: the policy-unaware attacker is never more informed.
    for (size_t row = 0; row < db.size(); ++row) {
      EXPECT_GE(unaware.possible_senders_per_row[row],
                aware.possible_senders_per_row[row]);
    }
  }
}

// Proposition 2 via brute force: a k-inside policy admits k distinct PREs
// under the masking family. The paper's policy-unaware attacker observes a
// single anonymized request, so the observation set is a singleton.
TEST(Propositions, KInsideGivesPolicyUnawareAnonymityByDefinitionSix) {
  Rng rng(61);
  const MapExtent extent{0, 0, 2};
  const LocationDatabase db = RandomDb(&rng, 6, extent);
  const int k = 2;
  Result<CloakingTable> table = PolicyUnawareQuad(extent).Cloak(db, k);
  ASSERT_TRUE(table.ok());
  for (size_t row = 0; row < db.size(); ++row) {
    const CandidateSets candidates =
        MaskingFamilyCandidates(db, {table->cloak(row)});
    EXPECT_TRUE(HasKDistinctPres(candidates, k, /*functional=*/true))
        << "observation from row " << row;
  }
}

}  // namespace
}  // namespace pasa
