// Unit tests for the minimal JSON reader backing pasa_benchstat and the
// trace/metrics round-trip tests.

#include "obs/json.h"

#include <gtest/gtest.h>

namespace pasa {
namespace obs {
namespace json {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_TRUE(Parse("true")->boolean());
  EXPECT_FALSE(Parse("false")->boolean());
  EXPECT_DOUBLE_EQ(Parse("42")->number(), 42.0);
  EXPECT_DOUBLE_EQ(Parse("-3.5e2")->number(), -350.0);
  EXPECT_EQ(Parse("\"hi\"")->str(), "hi");
}

TEST(JsonTest, ParsesStringEscapes) {
  Result<Value> v = Parse(R"("a\"b\\c\nd\teA")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->str(), "a\"b\\c\nd\teA");
}

TEST(JsonTest, ParsesNestedStructure) {
  Result<Value> v = Parse(R"({
    "name": "fig4a",
    "iterations": 3,
    "empty_array": [],
    "empty_object": {},
    "measurements": {"span/bulk_dp": {"mean": 1.5, "samples": 3}},
    "list": [1, 2.5, "x", null, true]
  })");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->Find("name")->str(), "fig4a");
  EXPECT_DOUBLE_EQ(v->Find("iterations")->number(), 3.0);
  EXPECT_TRUE(v->Find("empty_array")->array().empty());
  EXPECT_TRUE(v->Find("empty_object")->object().empty());
  const Value* span = v->Find("measurements")->Find("span/bulk_dp");
  ASSERT_NE(span, nullptr);
  EXPECT_DOUBLE_EQ(span->Find("mean")->number(), 1.5);
  const std::vector<Value>& list = v->Find("list")->array();
  ASSERT_EQ(list.size(), 5u);
  EXPECT_DOUBLE_EQ(list[1].number(), 2.5);
  EXPECT_EQ(list[2].str(), "x");
  EXPECT_TRUE(list[3].is_null());
  EXPECT_TRUE(list[4].boolean());
}

TEST(JsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("nul").ok());
  EXPECT_FALSE(Parse("{} trailing").ok());
  EXPECT_FALSE(Parse("{\"a\": 1,}").ok());
}

TEST(JsonTest, WrongTypeAccessorsReturnZeroValues) {
  Result<Value> v = Parse("[1]");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->number(), 0.0);
  EXPECT_EQ(v->str(), "");
  EXPECT_TRUE(v->object().empty());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonTest, SerializeIsCompactAndSortsKeys) {
  Result<Value> v = Parse("{\"b\": [1, 2.5, \"x\", null, true], \"a\": {}}");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(Serialize(*v), "{\"a\":{},\"b\":[1,2.5,\"x\",null,true]}");
}

TEST(JsonTest, SerializeParseRoundTripIsStable) {
  const std::string text =
      "{\"name\":\"trace\",\"ts\":1754640000123456,\"values\":[0.001,-3,"
      "\"a\\\"b\\\\c\\nd\"]}";
  Result<Value> v = Parse(text);
  ASSERT_TRUE(v.ok());
  const std::string once = Serialize(*v);
  Result<Value> again = Parse(once);
  ASSERT_TRUE(again.ok()) << once;
  // A second round trip is byte-identical: the format is a fixed point.
  EXPECT_EQ(Serialize(*again), once);
  // Large integral timestamps survive without scientific notation.
  EXPECT_NE(once.find("1754640000123456"), std::string::npos) << once;
}

TEST(JsonTest, SerializeEscapesControlCharacters) {
  const Value v = Value::MakeString(std::string("tab\there\x01") + '\n');
  EXPECT_EQ(Serialize(v), "\"tab\\there\\u0001\\n\"");
}

}  // namespace
}  // namespace json
}  // namespace obs
}  // namespace pasa
