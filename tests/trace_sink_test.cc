// Tests for the lock-light timeline recorder: concurrent-writer stress
// (no tears, bounded capacity with drop counter), the ScopedSpan feed and
// Chrome trace_event export well-formedness.

#include "obs/trace_sink.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace pasa {
namespace obs {
namespace {

class TraceSinkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Configure(ObsOptions{.enabled = true});
    MetricsRegistry::Global().Reset();
  }
  void TearDown() override {
    TraceEventSink::Global().Stop();
    Configure(ObsOptions{.enabled = true});
  }
};

TEST_F(TraceSinkTest, InactiveSinkRecordsNothing) {
  TraceEventSink sink;
  EXPECT_FALSE(sink.active());
  sink.Record(TraceEvent::Type::kInstant, "ignored");
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST_F(TraceSinkTest, RecordsTypedEventsWithMonotonicTimestamps) {
  TraceEventSink sink;
  sink.Start(64);
  sink.Record(TraceEvent::Type::kBegin, "phase");
  sink.Record(TraceEvent::Type::kInstant, "tick");
  sink.Record(TraceEvent::Type::kCounter, "moves", 128.0);
  sink.Record(TraceEvent::Type::kEnd, "phase");
  sink.Stop();

  const std::vector<TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].type, TraceEvent::Type::kBegin);
  EXPECT_EQ(events[0].name, "phase");
  EXPECT_EQ(events[1].type, TraceEvent::Type::kInstant);
  EXPECT_EQ(events[2].type, TraceEvent::Type::kCounter);
  EXPECT_DOUBLE_EQ(events[2].value, 128.0);
  EXPECT_EQ(events[3].type, TraceEvent::Type::kEnd);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_micros, events[i - 1].ts_micros);
    EXPECT_EQ(events[i].tid, events[0].tid);  // all from this thread
  }
}

TEST_F(TraceSinkTest, StartRebasesClockAndClearsBuffer) {
  TraceEventSink sink;
  sink.Start(4);
  sink.Record(TraceEvent::Type::kInstant, "old");
  sink.Start(8);
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.capacity(), 8u);
  sink.Record(TraceEvent::Type::kInstant, "new");
  const std::vector<TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "new");
}

// The satellite stress test: 8 threads hammer a sink whose capacity only
// fits one eighth of the traffic. Every published event must be intact
// (no torn name/type), the buffer must stay bounded, and every discarded
// event must be accounted for in dropped().
TEST_F(TraceSinkTest, ConcurrentWritersNeverTearAndDropsAreCounted) {
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 1000;
  constexpr size_t kCapacity = kThreads * kPerThread / 8;

  TraceEventSink sink;
  sink.Start(kCapacity);

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink, &go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      const std::string name = "writer-" + std::to_string(t);
      for (size_t i = 0; i < kPerThread; ++i) {
        sink.Record(TraceEvent::Type::kCounter, name,
                    static_cast<double>(i));
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  sink.Stop();

  EXPECT_EQ(sink.size(), kCapacity);
  EXPECT_EQ(sink.dropped(), kThreads * kPerThread - kCapacity);

  const std::vector<TraceEvent> events = sink.Events();
  EXPECT_EQ(events.size(), kCapacity);
  // Tear check: every published event must carry an intact writer name,
  // an in-range value and a tid that is consistent for that writer.
  std::map<std::string, uint32_t> tid_of_writer;
  for (const TraceEvent& event : events) {
    EXPECT_EQ(event.type, TraceEvent::Type::kCounter);
    ASSERT_EQ(event.name.rfind("writer-", 0), 0u) << event.name;
    const int writer = std::stoi(event.name.substr(7));
    EXPECT_GE(writer, 0);
    EXPECT_LT(writer, static_cast<int>(kThreads));
    EXPECT_GE(event.value, 0.0);
    EXPECT_LT(event.value, static_cast<double>(kPerThread));
    const auto [it, inserted] =
        tid_of_writer.emplace(event.name, event.tid);
    if (!inserted) {
      EXPECT_EQ(it->second, event.tid) << event.name;
    }
  }
  EXPECT_GE(tid_of_writer.size(), 1u);
}

TEST_F(TraceSinkTest, ScopedSpanFeedsActiveGlobalSink) {
  TraceEventSink& sink = TraceEventSink::Global();
  sink.Start(64);
  {
    ScopedSpan outer("outer", ScopedSpan::kRoot);
    ScopedSpan inner("inner");
  }
  sink.Stop();

  // Spans record their full hierarchical path, matching the span metrics.
  const std::vector<TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].type, TraceEvent::Type::kBegin);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].type, TraceEvent::Type::kBegin);
  EXPECT_EQ(events[1].name, "outer/inner");
  EXPECT_EQ(events[2].type, TraceEvent::Type::kEnd);
  EXPECT_EQ(events[2].name, "outer/inner");
  EXPECT_EQ(events[3].type, TraceEvent::Type::kEnd);
  EXPECT_EQ(events[3].name, "outer");
}

TEST_F(TraceSinkTest, ObsKillSwitchAlsoSilencesSpans) {
  TraceEventSink& sink = TraceEventSink::Global();
  sink.Start(64);
  Configure(ObsOptions{.enabled = false});
  {
    ScopedSpan span("invisible", ScopedSpan::kRoot);
  }
  TraceInstant("also-invisible-via-helper-only-when-inactive");
  sink.Stop();
  // The span early-returns when obs is disabled; the helper still records
  // because the sink itself is active — assert only the span silence.
  for (const TraceEvent& event : sink.Events()) {
    EXPECT_NE(event.name, "invisible");
  }
}

TEST_F(TraceSinkTest, HelpersAreNoOpsWhenSinkInactive) {
  TraceEventSink& sink = TraceEventSink::Global();
  sink.Stop();
  const size_t before = sink.size();
  TraceInstant("nope");
  TraceCounter("nope", 1.0);
  EXPECT_EQ(sink.size(), before);
}

TEST_F(TraceSinkTest, ExportIsValidChromeTraceJson) {
  TraceEventSink& sink = TraceEventSink::Global();
  sink.Start(8);
  sink.SetCurrentThreadName("test-main");
  sink.Record(TraceEvent::Type::kBegin, "bulk_dp");
  sink.Record(TraceEvent::Type::kInstant, "csp/rebuild \"quoted\"");
  sink.Record(TraceEvent::Type::kCounter, "moves", 42.0);
  sink.Record(TraceEvent::Type::kEnd, "bulk_dp");
  // Overflow the 8-slot buffer to surface droppedEventCount.
  for (int i = 0; i < 10; ++i) {
    sink.Record(TraceEvent::Type::kInstant, "overflow");
  }
  sink.Stop();

  Result<json::Value> doc = json::Parse(sink.ExportChromeTrace());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->Find("displayTimeUnit")->str(), "ms");
  EXPECT_DOUBLE_EQ(doc->Find("droppedEventCount")->number(), 6.0);

  const json::Value* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  bool saw_thread_name = false, saw_begin = false, saw_end = false;
  bool saw_instant = false, saw_counter = false;
  for (const json::Value& event : events->array()) {
    ASSERT_TRUE(event.is_object());
    const std::string ph = event.Find("ph")->str();
    EXPECT_DOUBLE_EQ(event.Find("pid")->number(), 1.0);
    ASSERT_NE(event.Find("tid"), nullptr);
    if (ph == "M") {
      EXPECT_EQ(event.Find("name")->str(), "thread_name");
      EXPECT_EQ(event.Find("args")->Find("name")->str(), "test-main");
      saw_thread_name = true;
      continue;
    }
    EXPECT_EQ(event.Find("cat")->str(), "pasa");
    ASSERT_NE(event.Find("ts"), nullptr);
    if (ph == "B") {
      EXPECT_EQ(event.Find("name")->str(), "bulk_dp");
      saw_begin = true;
    } else if (ph == "E") {
      saw_end = true;
    } else if (ph == "i") {
      EXPECT_EQ(event.Find("s")->str(), "t");
      if (event.Find("name")->str() == "csp/rebuild \"quoted\"") {
        saw_instant = true;  // escape round trip survived
      }
    } else if (ph == "C") {
      EXPECT_DOUBLE_EQ(event.Find("args")->Find("value")->number(), 42.0);
      saw_counter = true;
    }
  }
  EXPECT_TRUE(saw_thread_name);
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_end);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_counter);
}

// Spans opened under a distributed trace context stamp their identity onto
// the exported events and emit flow halves: the locally originated root
// starts the arrow ("s"), the first span under a remotely adopted context
// finishes it ("f").
TEST_F(TraceSinkTest, ExportsTraceIdentityAndFlowEvents) {
  TraceEventSink& sink = TraceEventSink::Global();
  sink.Start(64);

  TraceContext local;
  local.trace_id = 0x1234;
  {
    ScopedTraceContext scope(local);
    ScopedSpan root("loadgen/request", ScopedSpan::kRoot);
  }
  TraceContext remote;
  remote.trace_id = 0x5678;
  remote.span_id = 0x42;  // the wire-carried parent
  remote.remote = true;
  {
    ScopedTraceContext scope(remote);
    ScopedSpan adopted("net/dispatch", ScopedSpan::kRoot);
  }
  sink.Stop();

  Result<json::Value> doc = json::Parse(sink.ExportChromeTrace());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_GT(doc->Find("wallClockBaseMicros")->number(), 0.0);
  bool saw_flow_start = false, saw_flow_finish = false;
  bool saw_local_args = false, saw_remote_args = false;
  for (const json::Value& event : doc->Find("traceEvents")->array()) {
    const std::string ph = event.Find("ph")->str();
    if (ph == "s") {
      EXPECT_EQ(event.Find("id")->str(), TraceIdHex(0x1234));
      EXPECT_EQ(event.Find("name")->str(), "request");
      saw_flow_start = true;
    } else if (ph == "f") {
      EXPECT_EQ(event.Find("id")->str(), TraceIdHex(0x5678));
      EXPECT_EQ(event.Find("bp")->str(), "e");
      saw_flow_finish = true;
    } else if (ph == "B") {
      const json::Value* args = event.Find("args");
      ASSERT_NE(args, nullptr);
      if (args->Find("trace_id")->str() == TraceIdHex(0x1234)) {
        EXPECT_EQ(args->Find("parent_span_id")->str(), TraceIdHex(0));
        saw_local_args = true;
      } else if (args->Find("trace_id")->str() == TraceIdHex(0x5678)) {
        EXPECT_EQ(args->Find("parent_span_id")->str(), TraceIdHex(0x42));
        saw_remote_args = true;
      }
    }
  }
  EXPECT_TRUE(saw_flow_start);
  EXPECT_TRUE(saw_flow_finish);
  EXPECT_TRUE(saw_local_args);
  EXPECT_TRUE(saw_remote_args);
}

// The sink's drop counter surfaces as a counter metric in every snapshot,
// so a Prometheus scrape can alert on trace loss.
TEST_F(TraceSinkTest, DroppedEventsExportedAsMetric) {
  TraceEventSink& sink = TraceEventSink::Global();
  sink.Start(4);
  for (int i = 0; i < 12; ++i) {
    sink.Record(TraceEvent::Type::kInstant, "overflow");
  }
  ASSERT_EQ(sink.dropped(), 8u);

  const MetricsSnapshot snapshot = FullSnapshot();
  const auto it = snapshot.counters.find("obs/trace_dropped_events");
  ASSERT_NE(it, snapshot.counters.end());
  EXPECT_EQ(it->second, 8u);
  const std::string prom = ExportPrometheus(snapshot);
  EXPECT_NE(prom.find("pasa_obs_trace_dropped_events 8"), std::string::npos)
      << prom;
  sink.Stop();
  // Even after Stop the nonzero drop count stays visible.
  const MetricsSnapshot after = FullSnapshot();
  ASSERT_NE(after.counters.find("obs/trace_dropped_events"),
            after.counters.end());
}

TEST_F(TraceSinkTest, WriteChromeTraceFileCreatesParentDirectories) {
  TraceEventSink sink;
  sink.Start(4);
  sink.Record(TraceEvent::Type::kInstant, "x");
  sink.Stop();
  const std::string path = ::testing::TempDir() +
                           "/trace_sink_test/nested/dir/trace.json";
  ASSERT_TRUE(sink.WriteChromeTraceFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
}

}  // namespace
}  // namespace obs
}  // namespace pasa
