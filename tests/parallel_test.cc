// Tests for parallel anonymization: the greedy partitioner, per-jurisdiction
// anonymization, and the master policy's cost and privacy properties.

#include <gtest/gtest.h>

#include "attack/auditor.h"
#include "parallel/master_policy.h"
#include "parallel/partitioner.h"
#include "parallel/runner.h"
#include "pasa/anonymizer.h"
#include "tests/test_util.h"

namespace pasa {
namespace {

using testing_util::RandomDb;

TEST(PartitionerTest, JurisdictionsPartitionTheMap) {
  Rng rng(1);
  const MapExtent extent{0, 0, 6};
  const LocationDatabase db = RandomDb(&rng, 500, extent);
  const int k = 10;
  Result<BinaryTree> tree =
      BinaryTree::Build(db, extent, TreeOptions{.split_threshold = k});
  ASSERT_TRUE(tree.ok());

  for (const size_t target : {1u, 2u, 4u, 8u, 16u}) {
    const std::vector<Jurisdiction> jurisdictions =
        GreedyPartition(*tree, k, target);
    EXPECT_LE(jurisdictions.size(), std::max<size_t>(target, 1));
    // Disjoint regions covering all users; each holds 0 or >= k users.
    size_t total_users = 0;
    int64_t total_area = 0;
    for (size_t i = 0; i < jurisdictions.size(); ++i) {
      total_users += jurisdictions[i].users;
      total_area += jurisdictions[i].region.Area();
      EXPECT_TRUE(jurisdictions[i].users == 0 ||
                  jurisdictions[i].users >= static_cast<size_t>(k));
      for (size_t j = i + 1; j < jurisdictions.size(); ++j) {
        EXPECT_FALSE(
            jurisdictions[i].region.Intersects(jurisdictions[j].region));
      }
    }
    EXPECT_EQ(total_users, db.size());
    EXPECT_EQ(total_area, extent.ToRect().Area());
  }
}

TEST(PartitionerTest, StopsWhenNothingSplittable) {
  // 2k users in one tight cluster: the root's children would strand a
  // group, so the partitioner must return fewer jurisdictions than asked.
  LocationDatabase db;
  for (int i = 0; i < 6; ++i) db.Add(i, {i % 2, i / 2});
  const MapExtent extent{0, 0, 6};
  Result<BinaryTree> tree =
      BinaryTree::Build(db, extent, TreeOptions{.split_threshold = 3});
  ASSERT_TRUE(tree.ok());
  const auto jurisdictions = GreedyPartition(*tree, 3, 64);
  size_t nonempty = 0;
  for (const auto& j : jurisdictions) {
    if (j.users > 0) {
      ++nonempty;
      EXPECT_GE(j.users, 3u);
    }
  }
  EXPECT_GE(nonempty, 1u);
}

struct ParallelParam {
  uint64_t seed;
  int n;
  int k;
  size_t jurisdictions;
};

class ParallelSweep : public ::testing::TestWithParam<ParallelParam> {};

TEST_P(ParallelSweep, MasterPolicyIsValidAndNearOptimal) {
  const ParallelParam p = GetParam();
  Rng rng(p.seed);
  const MapExtent extent{0, 0, 6};
  const LocationDatabase db = RandomDb(&rng, p.n, extent);

  ParallelRunOptions options;
  options.k = p.k;
  options.num_jurisdictions = p.jurisdictions;
  Result<ParallelRunReport> report = RunPartitioned(db, extent, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // The master policy masks everyone and keeps every group >= k.
  EXPECT_TRUE(report->master_table.IsMasking(db));
  EXPECT_GE(AuditPolicyAware(report->master_table).min_possible_senders,
            static_cast<size_t>(p.k));
  EXPECT_EQ(report->master_table.TotalCost(), report->total_cost);

  // Against the single-server optimum: never better, and within a small
  // factor (the paper measures < 1% divergence; exact equality is common
  // because border cloaks rarely span jurisdictions).
  AnonymizerOptions single;
  single.k = p.k;
  Result<Anonymizer> optimum = Anonymizer::Build(db, extent, single);
  ASSERT_TRUE(optimum.ok());
  EXPECT_GE(report->total_cost, optimum->cost());
  EXPECT_LE(static_cast<double>(report->total_cost),
            1.25 * static_cast<double>(optimum->cost()));
}

INSTANTIATE_TEST_SUITE_P(
    Partitioned, ParallelSweep,
    ::testing::Values(ParallelParam{1, 400, 5, 1},
                      ParallelParam{2, 400, 5, 4},
                      ParallelParam{3, 400, 5, 16},
                      ParallelParam{4, 700, 10, 8},
                      ParallelParam{5, 700, 3, 32}),
    [](const ::testing::TestParamInfo<ParallelParam>& info) {
      const ParallelParam& p = info.param;
      return "seed" + std::to_string(p.seed) + "_n" + std::to_string(p.n) +
             "_k" + std::to_string(p.k) + "_j" +
             std::to_string(p.jurisdictions);
    });

TEST(ParallelTest, SingleJurisdictionEqualsSingleServerOptimum) {
  Rng rng(9);
  const MapExtent extent{0, 0, 6};
  const LocationDatabase db = RandomDb(&rng, 300, extent);
  const int k = 7;
  ParallelRunOptions options;
  options.k = k;
  options.num_jurisdictions = 1;
  Result<ParallelRunReport> report = RunPartitioned(db, extent, options);
  ASSERT_TRUE(report.ok());
  AnonymizerOptions single;
  single.k = k;
  Result<Anonymizer> optimum = Anonymizer::Build(db, extent, single);
  ASSERT_TRUE(optimum.ok());
  EXPECT_EQ(report->total_cost, optimum->cost());
}

TEST(ParallelTest, ThreadedModeMatchesSequential) {
  Rng rng(10);
  const MapExtent extent{0, 0, 6};
  const LocationDatabase db = RandomDb(&rng, 400, extent);
  ParallelRunOptions sequential;
  sequential.k = 5;
  sequential.num_jurisdictions = 8;
  ParallelRunOptions threaded = sequential;
  threaded.use_threads = true;
  Result<ParallelRunReport> a = RunPartitioned(db, extent, sequential);
  Result<ParallelRunReport> b = RunPartitioned(db, extent, threaded);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->total_cost, b->total_cost);
  for (size_t row = 0; row < db.size(); ++row) {
    EXPECT_EQ(a->master_table.cloak(row), b->master_table.cloak(row));
  }
}

TEST(MasterPolicyTest, RoutesLocationsToOwningJurisdiction) {
  Rng rng(11);
  const MapExtent extent{0, 0, 5};
  const LocationDatabase db = RandomDb(&rng, 200, extent);
  ParallelRunOptions options;
  options.k = 5;
  options.num_jurisdictions = 4;
  Result<ParallelRunReport> report = RunPartitioned(db, extent, options);
  ASSERT_TRUE(report.ok());

  std::vector<Jurisdiction> jurisdictions;
  for (const auto& jr : report->jurisdictions) {
    jurisdictions.push_back(jr.jurisdiction);
  }
  const MasterPolicy master(jurisdictions, report->master_table);
  for (size_t row = 0; row < db.size(); ++row) {
    Result<size_t> j = master.JurisdictionFor(db.row(row).location);
    ASSERT_TRUE(j.ok());
    EXPECT_TRUE(master.jurisdictions()[*j].region.Contains(
        db.row(row).location));
    // The user's cloak lies inside the owning jurisdiction.
    EXPECT_TRUE(master.jurisdictions()[*j].region.ContainsRect(
        master.CloakForRow(row)));
  }
  EXPECT_FALSE(master.JurisdictionFor({-5, -5}).ok());
}

}  // namespace
}  // namespace pasa
