// Tests for the span-sampling profiler. Determinism matters most: armed
// with hz <= 0 the profiler has no background thread, so a fixed schedule
// of SampleOnce() calls against a fixed span stack must always aggregate
// to the same folded output. Also covered: ring overwrite, the trailing
// time window, the disarmed hook being inert, and the background sampler
// as a smoke test.

#include "obs/profile.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/trace.h"

namespace pasa {
namespace obs {
namespace {

// Arms the global profiler without the sampler thread (hz = 0) so tests
// control the sample schedule, and guarantees disarm + sample reset on the
// way out — the Profiler is process-global state shared between tests.
class ManualProfiler {
 public:
  explicit ManualProfiler(size_t capacity = 1024) {
    ProfilerOptions options;
    options.hz = 0.0;
    options.capacity = capacity;
    const Status s = Profiler::Global().Start(options);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  ~ManualProfiler() {
    Profiler::Global().Stop();
    Profiler::Global().Reset();
  }
};

TEST(ProfilerTest, FixedScheduleProducesStableFoldedAggregate) {
  std::string first;
  std::string second;
  for (std::string* out : {&first, &second}) {
    ManualProfiler profiler;
    {
      ScopedSpan outer("bulk_dp", ScopedSpan::kRoot);
      for (uint64_t t = 0; t < 3; ++t) {
        Profiler::Global().SampleOnce(1000 + t);
      }
      {
        ScopedSpan inner("leaf_init");
        for (uint64_t t = 0; t < 2; ++t) {
          Profiler::Global().SampleOnce(2000 + t);
        }
      }
      Profiler::Global().SampleOnce(3000);
    }
    *out = Profiler::Global().CollapsedSince(0);
  }
  // Identical schedule, identical spans: byte-identical folded output.
  EXPECT_EQ(first, second);
  EXPECT_EQ(first,
            "bulk_dp 4\n"
            "bulk_dp;leaf_init 2\n");
}

TEST(ProfilerTest, NestedPathSplitsIntoFoldedFrames) {
  ManualProfiler profiler;
  ScopedSpan a("csp", ScopedSpan::kRoot);
  ScopedSpan b("handle_request");
  ScopedSpan c("cache_miss");
  ASSERT_EQ(Profiler::Global().SampleOnce(1), 1u);
  EXPECT_EQ(Profiler::Global().CollapsedSince(0),
            "csp;handle_request;cache_miss 1\n");
}

TEST(ProfilerTest, ThreadsWithNoOpenSpanContributeNothing) {
  ManualProfiler profiler;
  // This thread has published "" (or nothing): no samples recorded.
  EXPECT_EQ(Profiler::Global().SampleOnce(1), 0u);
  EXPECT_EQ(Profiler::Global().CollapsedSince(0), "");
  EXPECT_EQ(Profiler::Global().retained(), 0u);
}

TEST(ProfilerTest, SinceFilterDropsOldSamples) {
  ManualProfiler profiler;
  ScopedSpan span("serve", ScopedSpan::kRoot);
  Profiler::Global().SampleOnce(100);
  Profiler::Global().SampleOnce(200);
  Profiler::Global().SampleOnce(300);
  EXPECT_EQ(Profiler::Global().CollapsedSince(0), "serve 3\n");
  EXPECT_EQ(Profiler::Global().CollapsedSince(200), "serve 2\n");
  EXPECT_EQ(Profiler::Global().CollapsedSince(301), "");
}

TEST(ProfilerTest, RingOverwritesOldestSamples) {
  ManualProfiler profiler(/*capacity=*/4);
  const uint64_t taken_before = Profiler::Global().samples_taken();
  {
    ScopedSpan old_span("old", ScopedSpan::kRoot);
    for (uint64_t t = 0; t < 3; ++t) Profiler::Global().SampleOnce(t);
  }
  {
    ScopedSpan new_span("new", ScopedSpan::kRoot);
    for (uint64_t t = 10; t < 13; ++t) Profiler::Global().SampleOnce(t);
  }
  // 6 samples into a 4-slot ring: the two oldest "old" samples are gone.
  EXPECT_EQ(Profiler::Global().retained(), 4u);
  EXPECT_EQ(Profiler::Global().samples_taken(), taken_before + 6);
  EXPECT_EQ(Profiler::Global().CollapsedSince(0),
            "new 3\n"
            "old 1\n");
}

TEST(ProfilerTest, SelfTimeTableSeparatesSelfFromTotal) {
  ManualProfiler profiler;
  {
    ScopedSpan outer("outer", ScopedSpan::kRoot);
    Profiler::Global().SampleOnce(1);  // outer is innermost: self time
    ScopedSpan inner("inner");
    Profiler::Global().SampleOnce(2);  // inner self, outer total only
    Profiler::Global().SampleOnce(3);
  }
  const std::string table = Profiler::Global().SelfTimeTableSince(0);
  // inner: self 2 of 2 on-stack; outer: self 1 of 3 on-stack.
  EXPECT_NE(table.find("inner"), std::string::npos);
  EXPECT_NE(table.find("outer"), std::string::npos);
  const size_t inner_pos = table.find("inner");
  const size_t outer_pos = table.find("outer");
  // Sorted by self samples descending: inner (2) before outer (1).
  EXPECT_LT(inner_pos, outer_pos);
}

TEST(ProfilerTest, StartWhileArmedFailsAndZeroCapacityFails) {
  ManualProfiler profiler;
  ProfilerOptions again;
  again.hz = 0.0;
  EXPECT_FALSE(Profiler::Global().Start(again).ok());
  Profiler::Global().Stop();
  ProfilerOptions zero;
  zero.capacity = 0;
  EXPECT_FALSE(Profiler::Global().Start(zero).ok());
}

TEST(ProfilerTest, DisarmedHookIsInert) {
  ASSERT_FALSE(Profiler::Global().armed());
  const uint64_t before = Profiler::Global().samples_taken();
  {
    // Spans open and close without the profiler noticing.
    ScopedSpan span("invisible", ScopedSpan::kRoot);
  }
  EXPECT_EQ(Profiler::Global().SampleOnce(1), 0u)
      << "a path published while disarmed leaked into the profiler";
  EXPECT_EQ(Profiler::Global().samples_taken(), before);
}

TEST(ProfilerTest, SamplesSurviveStopAndResetDropsThem) {
  {
    ManualProfiler profiler;
    ScopedSpan span("kept", ScopedSpan::kRoot);
    Profiler::Global().SampleOnce(1);
    Profiler::Global().Stop();
    // Readable after disarm (the /profile endpoint reads a stopped ring).
    EXPECT_EQ(Profiler::Global().CollapsedSince(0), "kept 1\n");
  }  // ~ManualProfiler: Stop (idempotent) + Reset
  EXPECT_EQ(Profiler::Global().retained(), 0u);
  EXPECT_EQ(Profiler::Global().CollapsedSince(0), "");
}

TEST(ProfilerTest, BackgroundSamplerSmokeTest) {
  ProfilerOptions options;
  options.hz = 500.0;
  ASSERT_TRUE(Profiler::Global().Start(options).ok());
  {
    ScopedSpan span("busy_loop", ScopedSpan::kRoot);
    // Spin until the sampler has provably seen this thread.
    const uint64_t deadline = Profiler::NowMicros() + 5 * 1000 * 1000;
    while (Profiler::Global().retained() == 0 &&
           Profiler::NowMicros() < deadline) {
    }
  }
  Profiler::Global().Stop();
  const std::string folded = Profiler::Global().CollapsedSince(0);
  EXPECT_NE(folded.find("busy_loop"), std::string::npos) << folded;
  Profiler::Global().Reset();
}

}  // namespace
}  // namespace obs
}  // namespace pasa
