// Metamorphic properties of the optimal policy-aware anonymization: the
// optimum must transform predictably under map translation and integer
// scaling, and be invariant to user relabeling. These catch coordinate-
// handling bugs no fixed example would.

#include <gtest/gtest.h>

#include <algorithm>

#include "pasa/anonymizer.h"
#include "tests/test_util.h"

namespace pasa {
namespace {

using testing_util::RandomDb;

Result<Anonymizer> BuildAt(const LocationDatabase& db, const MapExtent& e,
                           int k) {
  AnonymizerOptions options;
  options.k = k;
  return Anonymizer::Build(db, e, options);
}

TEST(Metamorphic, TranslationShiftsCloaksNotCost) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    const MapExtent extent{0, 0, 5};
    const LocationDatabase db = RandomDb(&rng, 120, extent);
    const int k = 6;
    const Coord dx = 1000, dy = -777;

    LocationDatabase shifted;
    for (const auto& row : db.rows()) {
      shifted.Add(row.user, {row.location.x + dx, row.location.y + dy});
    }
    const MapExtent shifted_extent{extent.origin_x + dx,
                                   extent.origin_y + dy, extent.log2_side};

    Result<Anonymizer> a = BuildAt(db, extent, k);
    Result<Anonymizer> b = BuildAt(shifted, shifted_extent, k);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->cost(), b->cost());
    for (size_t row = 0; row < db.size(); ++row) {
      const Rect& original = a->CloakForRow(row);
      const Rect& moved = b->CloakForRow(row);
      EXPECT_EQ(moved, (Rect{original.x1 + dx, original.y1 + dy,
                             original.x2 + dx, original.y2 + dy}))
          << "row " << row << " seed " << seed;
    }
  }
}

TEST(Metamorphic, DoublingTheMapQuadruplesTheCost) {
  // Scaling every coordinate by 2 (on a doubled extent) preserves the tree
  // structure one level up: every cloak area, hence the total cost, scales
  // by exactly 4.
  for (const uint64_t seed : {4u, 5u}) {
    Rng rng(seed);
    const MapExtent extent{0, 0, 5};
    const LocationDatabase db = RandomDb(&rng, 100, extent);
    const int k = 5;

    LocationDatabase scaled;
    for (const auto& row : db.rows()) {
      scaled.Add(row.user, {row.location.x * 2, row.location.y * 2});
    }
    const MapExtent scaled_extent{0, 0, extent.log2_side + 1};

    Result<Anonymizer> a = BuildAt(db, extent, k);
    Result<Anonymizer> b = BuildAt(scaled, scaled_extent, k);
    ASSERT_TRUE(a.ok() && b.ok());
    // Scaled coordinates leave odd cells empty, so the scaled tree can cut
    // one level deeper; the optimum can only improve beyond exact 4x at the
    // very bottom. At the granularity used here the costs match exactly.
    EXPECT_LE(b->cost(), 4 * a->cost()) << "seed " << seed;
    // And never better than 4x the unscaled optimum shrunk by the deepest
    // extra level (cloaks at worst halve once more): >= 4x cost of a policy
    // that is feasible for the original instance, i.e. >= ... conservative:
    EXPECT_GE(b->cost(), a->cost()) << "seed " << seed;
  }
}

TEST(Metamorphic, RowOrderDoesNotChangeCostOrGroups) {
  Rng rng(6);
  const MapExtent extent{0, 0, 5};
  const LocationDatabase db = RandomDb(&rng, 90, extent);
  const int k = 4;

  // Reverse the row order (user ids move with their locations).
  std::vector<UserLocation> rows(db.rows().rbegin(), db.rows().rend());
  const LocationDatabase reversed(rows);

  Result<Anonymizer> a = BuildAt(db, extent, k);
  Result<Anonymizer> b = BuildAt(reversed, extent, k);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->cost(), b->cost());
  // Per-user cloak areas form the same multiset.
  std::vector<int64_t> areas_a, areas_b;
  for (size_t i = 0; i < db.size(); ++i) {
    areas_a.push_back(a->CloakForRow(i).Area());
    areas_b.push_back(b->CloakForRow(i).Area());
  }
  std::sort(areas_a.begin(), areas_a.end());
  std::sort(areas_b.begin(), areas_b.end());
  EXPECT_EQ(areas_a, areas_b);
}

TEST(Metamorphic, AddingAFarAwayClusterNeverBreaksExistingSafety) {
  // Dropping a fresh >= k cluster into an empty corner must keep the policy
  // k-anonymous and cannot raise the per-user cost of distant users' cloaks
  // above the whole-map fallback.
  Rng rng(7);
  const MapExtent extent{0, 0, 6};
  LocationDatabase db = RandomDb(&rng, 80, MapExtent{0, 0, 5});  // SW only
  const int k = 5;
  Result<Anonymizer> before = BuildAt(db, extent, k);
  ASSERT_TRUE(before.ok());

  UserId next = 1000;
  for (int i = 0; i < 8; ++i) {
    db.Add(next++, {60 + i % 3, 60 + i / 3});  // far NE corner
  }
  Result<Anonymizer> after = BuildAt(db, extent, k);
  ASSERT_TRUE(after.ok());
  EXPECT_GE(after->policy().MinGroupSize(), static_cast<size_t>(k));
  // The new cluster is self-sufficient, so the old users' total cannot get
  // worse than before (their subtree options only stayed or improved).
  Cost old_users_cost = 0;
  for (size_t row = 0; row < 80; ++row) {
    old_users_cost += after->CloakForRow(row).Area();
  }
  EXPECT_LE(old_users_cost, before->cost());
}

}  // namespace
}  // namespace pasa
