// Tests for the CSV exchange formats.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "io/csv.h"
#include "tests/test_util.h"

namespace pasa {
namespace {

using testing_util::MakeDb;

TEST(CsvTest, ParseBasicWithHeaderCommentsAndBlanks) {
  const std::string text =
      "userid,locx,locy\n"
      "# a comment\n"
      "\n"
      "1,10,20\n"
      "2,-5,7\r\n";
  Result<LocationDatabase> db = ParseLocationDatabaseCsv(text);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_EQ(db->size(), 2u);
  EXPECT_EQ(db->row(0).user, 1);
  EXPECT_EQ(db->row(1).location, (Point{-5, 7}));
}

TEST(CsvTest, ParseWithoutHeader) {
  Result<LocationDatabase> db = ParseLocationDatabaseCsv("7,1,2\n8,3,4\n");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->size(), 2u);
}

TEST(CsvTest, RejectsMalformedRows) {
  EXPECT_FALSE(ParseLocationDatabaseCsv("1,2\n").ok());
  EXPECT_FALSE(ParseLocationDatabaseCsv("1,2,x\n").ok());
  EXPECT_FALSE(ParseLocationDatabaseCsv("1,2,3,4\n").ok());
  // The error message carries the line number.
  const Status s = ParseLocationDatabaseCsv("1,1,1\n2,2,oops\n").status();
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
}

TEST(CsvTest, LocationRoundTrip) {
  const LocationDatabase db = MakeDb({{0, 0}, {123, -456}, {7, 7}});
  Result<LocationDatabase> parsed =
      ParseLocationDatabaseCsv(FormatLocationDatabaseCsv(db));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(parsed->row(i), db.row(i));
  }
}

TEST(CsvTest, CloakingRoundTripMatchedByUserId) {
  const LocationDatabase db = MakeDb({{1, 1}, {2, 2}});
  CloakingTable table(2);
  table.Assign(0, Rect{0, 0, 4, 4});
  table.Assign(1, Rect{2, 0, 4, 4});
  const std::string csv = FormatCloakingCsv(db, table);
  Result<CloakingTable> parsed = ParseCloakingCsv(csv, db);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->cloak(0), table.cloak(0));
  EXPECT_EQ(parsed->cloak(1), table.cloak(1));
}

TEST(CsvTest, CloakingErrors) {
  const LocationDatabase db = MakeDb({{1, 1}, {2, 2}});
  // Unknown user.
  EXPECT_FALSE(ParseCloakingCsv("9,0,0,4,4\n", db).ok());
  // Missing user 1 (row index 1).
  EXPECT_FALSE(ParseCloakingCsv("0,0,0,4,4\n", db).ok());
}

TEST(CsvTest, FileRoundTrip) {
  const std::string dir = ::testing::TempDir();
  const std::string loc_path = dir + "/pasa_io_test_locations.csv";
  const std::string cloak_path = dir + "/pasa_io_test_cloaks.csv";
  const LocationDatabase db = MakeDb({{5, 6}, {7, 8}});
  CloakingTable table(2);
  table.Assign(0, Rect{0, 0, 8, 8});
  table.Assign(1, Rect{0, 0, 8, 8});

  ASSERT_TRUE(SaveLocationDatabaseCsv(db, loc_path).ok());
  ASSERT_TRUE(SaveCloakingCsv(db, table, cloak_path).ok());

  Result<LocationDatabase> loaded = LoadLocationDatabaseCsv(loc_path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  Result<CloakingTable> cloaks = LoadCloakingCsv(cloak_path, *loaded);
  ASSERT_TRUE(cloaks.ok());
  EXPECT_EQ(cloaks->cloak(1), (Rect{0, 0, 8, 8}));

  std::remove(loc_path.c_str());
  std::remove(cloak_path.c_str());
}

TEST(CsvTest, MissingFile) {
  EXPECT_EQ(LoadLocationDatabaseCsv("/no/such/file.csv").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace pasa
