// Chaos tests: drive the CSP serving path and the parallel runner through
// seeded fault schedules and assert the three robustness invariants of
// docs/robustness.md — (1) every served cloak is still k-anonymous, (2)
// nothing crashes or wedges, (3) a given seed replays the identical outcome.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "attack/auditor.h"
#include "csp/server.h"
#include "fault/injector.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/slo.h"
#include "obs/window.h"
#include "parallel/runner.h"
#include "workload/bay_area.h"
#include "workload/movement.h"
#include "workload/requests.h"

namespace pasa {
namespace {

// How many seeds each chaos sweep runs. Defaults to 3 so the suite stays
// fast locally; CI legs widen the sweep with PASA_CHAOS_SEEDS (see
// tools/ci.sh — the TSan leg runs 8).
size_t ChaosSeedCount() {
  const char* env = std::getenv("PASA_CHAOS_SEEDS");
  if (env == nullptr || *env == '\0') return 3;
  const long parsed = std::atol(env);
  if (parsed < 1) return 1;
  if (parsed > 64) return 64;
  return static_cast<size_t>(parsed);
}

// The sweep itself: base, 2*base, 3*base, ... so the historical default
// seeds (101, 202, 303) are a prefix of every wider sweep.
std::vector<uint64_t> SweepSeeds(uint64_t base) {
  std::vector<uint64_t> seeds;
  const size_t count = ChaosSeedCount();
  seeds.reserve(count);
  for (size_t i = 0; i < count; ++i) seeds.push_back(base * (i + 1));
  return seeds;
}

BayAreaOptions ChaosBay() {
  BayAreaOptions options;
  options.log2_map_side = 13;
  options.num_intersections = 250;
  options.users_per_intersection = 4;
  options.user_sigma = 40.0;
  options.num_clusters = 6;
  options.seed = 23;
  return options;
}

PoiDatabase ChaosPois(const MapExtent& extent, size_t n) {
  Rng rng(29);
  const std::vector<std::string> categories = {"rest", "gas", "hospital"};
  std::vector<PointOfInterest> pois;
  for (size_t i = 0; i < n; ++i) {
    pois.push_back(PointOfInterest{
        static_cast<int64_t>(i),
        Point{static_cast<Coord>(rng.NextBounded(extent.side())),
              static_cast<Coord>(rng.NextBounded(extent.side()))},
        categories[rng.NextBounded(categories.size())]});
  }
  return PoiDatabase(std::move(pois));
}

// Everything in every fault spans: an unreliable provider (errors, latency
// spikes, hangs), a dirty move feed, and flaky incremental repairs.
fault::FaultPlan EverythingPlan() {
  fault::FaultPlan plan;
  fault::FaultPointConfig error{std::string(fault::kLbsError)};
  error.probability = 0.2;
  plan.points.push_back(error);
  fault::FaultPointConfig latency{std::string(fault::kLbsLatency)};
  latency.probability = 0.15;
  latency.latency_micros = 30'000;  // over half the 50 ms default deadline
  plan.points.push_back(latency);
  fault::FaultPointConfig timeout{std::string(fault::kLbsTimeout)};
  timeout.probability = 0.05;
  plan.points.push_back(timeout);
  fault::FaultPointConfig corrupt{std::string(fault::kSnapshotCorruptMove)};
  corrupt.probability = 0.1;
  plan.points.push_back(corrupt);
  fault::FaultPointConfig repair{std::string(fault::kSnapshotRepairFail)};
  repair.probability = 0.3;
  plan.points.push_back(repair);
  return plan;
}

/// The complete observable outcome of one chaos run; two runs with the same
/// seed must produce equal outcomes, field for field.
struct ChaosOutcome {
  std::vector<SnapshotReport> reports;
  std::vector<Cost> policy_costs;
  CspServer::Stats stats;
  ResilientLbsClient::Stats client_stats;
  std::map<std::string, uint64_t> fires;
  size_t lbs_requests_seen = 0;
  size_t degraded_answers = 0;

  friend bool operator==(const ChaosOutcome& a, const ChaosOutcome& b) =
      default;
};

// One full chaos run: `snapshots` epochs of (request burst, snapshot
// advance) against a CSP server under EverythingPlan() armed with `seed`
// (or a fault-free run when `arm_faults` is false). Asserts the safety
// invariants inline; returns the outcome for replay comparison.
ChaosOutcome ChaosRun(uint64_t seed, int snapshots, int requests_per_epoch,
                      bool arm_faults = true) {
  const BayAreaGenerator gen(ChaosBay());
  LocationDatabase db = gen.Generate(1000);
  CspOptions options;
  options.k = 10;
  options.rebuild_fraction = 0.2;  // keep advances on the incremental path
  Result<CspServer> csp = CspServer::Start(db, gen.extent(),
                                           ChaosPois(gen.extent(), 400),
                                           options);
  EXPECT_TRUE(csp.ok()) << csp.status().ToString();
  ChaosOutcome outcome;
  if (!csp.ok()) return outcome;

  if (arm_faults) {
    fault::FaultInjector::Global().Arm(EverythingPlan(), seed);
  } else {
    fault::FaultInjector::Global().Disarm();
  }
  RequestGenerator requests(static_cast<uint64_t>(seed * 31 + 1));
  MovementOptions movement;
  movement.moving_fraction = 0.03;
  movement.max_distance = 60.0;
  for (int epoch = 0; epoch < snapshots; ++epoch) {
    for (const ServiceRequest& sr :
         requests.Draw(csp->snapshot(), requests_per_epoch)) {
      const Result<LbsAnswer> answer = csp->HandleRequest(sr);
      // A failed request is acceptable degradation (provider down, nothing
      // cached); a served one must never relax the answer size contract.
      if (answer.ok()) {
        EXPECT_LE(answer->pois.size(), options.answers_per_request);
        if (answer->degraded) ++outcome.degraded_answers;
      } else {
        EXPECT_TRUE(answer.status().code() == StatusCode::kUnavailable ||
                    answer.status().code() == StatusCode::kDeadlineExceeded)
            << answer.status().ToString();
      }
    }
    movement.seed = seed * 1000 + static_cast<uint64_t>(epoch);
    const std::vector<UserMove> moves =
        DrawMoves(csp->snapshot(), gen.extent(), movement);
    Result<SnapshotReport> report = csp->AdvanceSnapshot(moves);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    if (!report.ok()) break;
    outcome.reports.push_back(*report);
    outcome.policy_costs.push_back(csp->policy_cost());

    // The heart of the matter: whatever faults fired, the policy served to
    // users is a valid masking of the current snapshot and k-anonymous
    // against the policy-aware attacker.
    EXPECT_TRUE(csp->policy().IsMasking(csp->snapshot()));
    EXPECT_TRUE(AuditPolicyAware(csp->policy()).Anonymous(options.k));
  }
  outcome.stats = csp->stats();
  outcome.client_stats = csp->lbs_client().stats();
  outcome.lbs_requests_seen = csp->lbs_requests_seen();
  for (const std::string_view point : fault::KnownFaultPoints()) {
    outcome.fires[std::string(point)] =
        fault::FaultInjector::Global().fires(point);
  }
  fault::FaultInjector::Global().Disarm();
  return outcome;
}

TEST(ChaosTest, ServingPathSurvivesAndReplaysDeterministically) {
  size_t total_quarantined = 0;
  size_t total_repair_fallbacks = 0;
  size_t total_degraded_or_failed = 0;
  for (const uint64_t seed : SweepSeeds(101)) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const ChaosOutcome first = ChaosRun(seed, /*snapshots=*/5,
                                        /*requests_per_epoch=*/150);
    const ChaosOutcome replay = ChaosRun(seed, 5, 150);
    EXPECT_TRUE(first == replay) << "chaos run is not deterministic";

    // The plan actually bit: provider faults fired and were absorbed.
    EXPECT_GT(first.fires.at(std::string(fault::kLbsError)), 0u);
    EXPECT_GT(first.client_stats.retries, 0u);
    EXPECT_EQ(first.stats.snapshots_advanced, 5u);
    total_quarantined += first.stats.moves_quarantined;
    total_repair_fallbacks += first.stats.repair_fallbacks;
    total_degraded_or_failed +=
        first.stats.requests_degraded + first.stats.requests_failed;

    // Different seeds must differ somewhere (fire counts, reports, ...).
    const ChaosOutcome other = ChaosRun(seed + 7, 5, 150);
    EXPECT_FALSE(first == other);
  }
  // Across the seeds, every degradation path was exercised.
  EXPECT_GT(total_quarantined, 0u);
  EXPECT_GT(total_repair_fallbacks, 0u);
  EXPECT_GT(total_degraded_or_failed, 0u);
}

// Arms the full pasa::obs v3 stack (provenance ring, windowed telemetry,
// SLO tracker) from a clean slate, so a chaos run can be audited after the
// fact.
void ArmObservability() {
  obs::SimClock::Global().Reset();
  obs::MetricsRegistry::Global().Reset();
  obs::ProvenanceRing::Global().Enable();
  obs::WindowRegistry::Global().Enable();
  obs::WindowRegistry::Global().Reset();
  obs::SloTracker::Global().Configure({});  // CspServer re-adds the defaults
  obs::SloTracker::Global().Enable();
}

void DisarmObservability() {
  obs::ProvenanceRing::Global().Disable();
  obs::WindowRegistry::Global().Disable();
  obs::SloTracker::Global().Disable();
  obs::SimClock::Global().Reset();
}

const obs::SloState& StateOf(const std::vector<obs::SloState>& states,
                             const std::string& name) {
  for (const obs::SloState& state : states) {
    if (state.name == name) return state;
  }
  ADD_FAILURE() << "objective " << name << " was not evaluated";
  static obs::SloState missing;
  return missing;
}

// The audit trail must explain the chaos: every degraded or failed answer
// carries the fault evidence that caused it, per-request fire counts add up
// to exactly what the injector reports, and the availability SLO's
// burn-rate alert fires while anonymity stays clean.
TEST(ChaosTest, ProvenanceExplainsDegradationAndAvailabilitySloFires) {
  ArmObservability();
  const int snapshots = 5;
  const int per_epoch = 150;
  const ChaosOutcome outcome = ChaosRun(101, snapshots, per_epoch);

  const std::vector<obs::ProvenanceRecord> records =
      obs::ProvenanceRing::Global().Records();
  ASSERT_EQ(records.size(),
            static_cast<size_t>(snapshots) * static_cast<size_t>(per_epoch));
  size_t degraded = 0;
  size_t failed = 0;
  std::map<std::string, uint64_t> fires_by_point;
  for (const obs::ProvenanceRecord& r : records) {
    ASSERT_NE(r.outcome, obs::RequestOutcome::kRejected);
    // The per-request face of the k-anonymity audit: every accepted
    // request was cloaked by a group no smaller than k.
    EXPECT_GE(r.group_size, 10u);
    EXPECT_GT(r.cloak_area, 0);
    for (const auto& [point, count] : r.fault_fires) {
      fires_by_point[point] += count;
    }
    if (r.outcome == obs::RequestOutcome::kDegraded) {
      ++degraded;
      EXPECT_TRUE(r.stale_fallback)
          << "degraded answers come only from the stale-cache fallback";
    }
    if (r.outcome == obs::RequestOutcome::kFailed) ++failed;
    if (r.outcome == obs::RequestOutcome::kDegraded ||
        r.outcome == obs::RequestOutcome::kFailed) {
      // No unexplained degradation: something observable went wrong first.
      EXPECT_TRUE(!r.fault_fires.empty() || r.breaker_rejected ||
                  r.deadline_exceeded)
          << "rid " << r.rid << " degraded without fault evidence";
    }
  }
  EXPECT_EQ(degraded, outcome.degraded_answers);
  EXPECT_EQ(failed, outcome.stats.requests_failed);
  // Per-request LBS fire counts reconcile exactly with the injector's own
  // totals (every LBS fault fires under some request's provenance scope).
  for (const std::string_view point :
       {fault::kLbsError, fault::kLbsLatency, fault::kLbsTimeout}) {
    EXPECT_EQ(fires_by_point[std::string(point)],
              outcome.fires.at(std::string(point)))
        << point;
  }

  const std::vector<obs::SloState> states =
      obs::SloTracker::Global().Evaluate(obs::SimClock::Global().now());
  EXPECT_GT(StateOf(states, obs::kSloAvailability).alerts_fired, 0u)
      << "a provider this unreliable must trip the availability burn alert";
  EXPECT_EQ(StateOf(states, obs::kSloAnonymity).alerts_fired, 0u)
      << "faults degrade answers, never anonymity";
  DisarmObservability();
}

// The control: with no faults armed, the same harness serves everything
// fresh, writes only clean provenance, and no SLO alert fires.
TEST(ChaosTest, CleanRunKeepsSlosQuietAndProvenanceClean) {
  ArmObservability();
  const ChaosOutcome outcome =
      ChaosRun(404, /*snapshots=*/3, /*requests_per_epoch=*/100,
               /*arm_faults=*/false);
  EXPECT_EQ(outcome.degraded_answers, 0u);
  EXPECT_EQ(outcome.stats.requests_failed, 0u);
  const std::vector<obs::ProvenanceRecord> records =
      obs::ProvenanceRing::Global().Records();
  ASSERT_EQ(records.size(), 300u);
  for (const obs::ProvenanceRecord& r : records) {
    ASSERT_EQ(r.outcome, obs::RequestOutcome::kServed);
    EXPECT_TRUE(r.fault_fires.empty());
    EXPECT_FALSE(r.breaker_rejected);
    EXPECT_FALSE(r.deadline_exceeded);
    EXPECT_EQ(r.lbs_retries, 0u);
  }
  for (const obs::SloState& state :
       obs::SloTracker::Global().Evaluate(obs::SimClock::Global().now())) {
    EXPECT_FALSE(state.alerting) << state.name;
    EXPECT_EQ(state.alerts_fired, 0u) << state.name;
  }
  EXPECT_EQ(
      obs::MetricsRegistry::Global().GetCounter("slo/alerts_fired").value(),
      0u);
  DisarmObservability();
}

// Jurisdiction-level chaos for the parallel runner: servers fail randomly,
// the run retries and falls back but always recombines a complete,
// k-anonymous master policy.
ParallelRunReport ParallelChaosRun(uint64_t seed, bool use_threads,
                                   const LocationDatabase& db,
                                   const MapExtent& extent) {
  fault::FaultPlan plan;
  fault::FaultPointConfig fail{std::string(fault::kParallelJurisdictionFail)};
  fail.probability = 0.35;
  plan.points.push_back(fail);
  fault::FaultInjector::Global().Arm(plan, seed);
  ParallelRunOptions options;
  options.k = 10;
  options.num_jurisdictions = 8;
  options.use_threads = use_threads;
  options.max_jurisdiction_retries = 4;
  Result<ParallelRunReport> report = RunPartitioned(db, extent, options);
  fault::FaultInjector::Global().Disarm();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->master_table.IsMasking(db));
  EXPECT_TRUE(AuditPolicyAware(report->master_table).Anonymous(options.k));
  return report.ok() ? *report : ParallelRunReport{};
}

TEST(ChaosTest, ParallelRunnerContainsJurisdictionFailures) {
  const BayAreaGenerator gen(ChaosBay());
  const LocationDatabase db = gen.Generate(1500);
  size_t total_failures = 0;
  for (const uint64_t seed : SweepSeeds(11)) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const ParallelRunReport first =
        ParallelChaosRun(seed, /*use_threads=*/false, db, gen.extent());
    const ParallelRunReport replay =
        ParallelChaosRun(seed, false, db, gen.extent());
    // Sequential evaluation order is fixed, so the contained failures and
    // retries replay exactly, as does the recombined policy.
    EXPECT_EQ(first.jurisdiction_failures, replay.jurisdiction_failures);
    EXPECT_EQ(first.jurisdiction_retries, replay.jurisdiction_retries);
    EXPECT_EQ(first.total_cost, replay.total_cost);
    total_failures += first.jurisdiction_failures;
  }
  EXPECT_GT(total_failures, 0u);

  // Thread mode: evaluation order (and so the fault pattern) is scheduler
  // dependent, but the safety invariants checked inside ParallelChaosRun
  // must hold regardless, and the master policy is never lost.
  const ParallelRunReport threaded =
      ParallelChaosRun(44u, /*use_threads=*/true, db, gen.extent());
  EXPECT_EQ(threaded.total_users, db.size());
}

}  // namespace
}  // namespace pasa
