// Wire-protocol tests: field-for-field round trips for every message,
// golden little-endian frame bytes, the incremental FrameDecoder against
// torn/partial delivery, and a seeded fuzz loop proving garbage bytes can
// only produce typed errors — never crashes or silent misdecodes.

#include "net/wire.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"

namespace pasa {
namespace net {
namespace {

TEST(NetWireTest, ServiceRequestRoundTrip) {
  ServiceRequest sr;
  sr.sender = 123456789012345;
  sr.location = Point{-7, 1 << 20};
  sr.params = {{"poi", "rest"}, {"cat", "ital"}, {"", ""}};
  const Result<ServiceRequest> decoded =
      DecodeServiceRequest(EncodeServiceRequest(sr));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, sr);
}

TEST(NetWireTest, ServeResponseRoundTrip) {
  ServeResponseMsg msg;
  msg.rid = 42;
  msg.group_size = 50;
  msg.degraded = true;
  msg.cloak_x1 = -100;
  msg.cloak_y1 = 0;
  msg.cloak_x2 = 1 << 17;
  msg.cloak_y2 = (1 << 17) + 1;
  msg.pois = {{7, Point{10, 20}, "rest"}, {9, Point{-1, -2}, "groc"}};
  const Result<ServeResponseMsg> decoded =
      DecodeServeResponse(EncodeServeResponse(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, msg);
}

TEST(NetWireTest, AnonymizeResponseRoundTrip) {
  AnonymizeResponseMsg msg;
  msg.rid = 1;
  msg.group_size = 77;
  msg.cloak_x1 = 3;
  msg.cloak_y1 = 4;
  msg.cloak_x2 = 5;
  msg.cloak_y2 = 6;
  const Result<AnonymizeResponseMsg> decoded =
      DecodeAnonymizeResponse(EncodeAnonymizeResponse(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, msg);
}

TEST(NetWireTest, SnapshotAdvanceRoundTrip) {
  SnapshotAdvanceMsg msg;
  msg.moves = {{0, Point{1, 2}, Point{3, 4}},
               {4294967295u, Point{-5, -6}, Point{7, 8}}};
  const Result<SnapshotAdvanceMsg> decoded =
      DecodeSnapshotAdvance(EncodeSnapshotAdvance(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, msg);
}

TEST(NetWireTest, SnapshotReportRoundTrip) {
  SnapshotReportMsg msg;
  msg.moves_applied = 100;
  msg.moves_quarantined = 3;
  msg.rebuilt = true;
  msg.repair_fell_back_to_rebuild = true;
  msg.dp_rows_repaired = 0;
  msg.policy_cost = -9;
  const Result<SnapshotReportMsg> decoded =
      DecodeSnapshotReport(EncodeSnapshotReport(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, msg);
}

TEST(NetWireTest, HealthResponseRoundTrip) {
  HealthResponseMsg msg;
  msg.healthy = true;
  msg.queue_depth = 17;
  msg.queue_capacity = 4096;
  msg.connections = 3;
  const Result<HealthResponseMsg> decoded =
      DecodeHealthResponse(EncodeHealthResponse(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, msg);
}

TEST(NetWireTest, StatsResponseRoundTrip) {
  StatsResponseMsg msg;
  msg.requests_served = 1;
  msg.requests_degraded = 2;
  msg.requests_failed = 3;
  msg.requests_rejected = 4;
  msg.snapshots_advanced = 5;
  msg.moves_quarantined = 6;
  msg.rebuilds = 7;
  msg.incremental_updates = 8;
  msg.repair_fallbacks = 9;
  msg.admission_rejected = 10;
  const Result<StatsResponseMsg> decoded =
      DecodeStatsResponse(EncodeStatsResponse(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, msg);
}

TEST(NetWireTest, ErrorRoundTrip) {
  ErrorMsg msg;
  msg.code = StatusCode::kUnavailable;
  msg.retry_after_micros = 1000;
  msg.message = "queue full";
  const Result<ErrorMsg> decoded = DecodeError(EncodeError(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, msg);
}

// The header layout is part of the protocol contract: byte-for-byte
// little-endian regardless of host order.
TEST(NetWireTest, GoldenFrameBytes) {
  const std::string frame = EncodeFrame(MsgType::kHealthRequest, "ab");
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 2);
  const unsigned char expected[14] = {
      0x70, 0x61, 0x73, 0x6E,  // magic "pasn" little-endian
      0x02,                    // version
      0x07,                    // type kHealthRequest
      0x00, 0x00,              // flags: none
      0x02, 0x00, 0x00, 0x00,  // payload length 2
      'a',  'b'};
  EXPECT_EQ(std::memcmp(frame.data(), expected, sizeof(expected)), 0);
}

// A traced frame carries the 17-byte trace-context extension between the
// header and the payload; the length field still counts payload only.
TEST(NetWireTest, GoldenTracedFrameBytes) {
  const WireTraceContext trace{0x0123456789abcdefULL, 0x1122334455667788ULL,
                               true};
  const std::string frame = EncodeFrame(MsgType::kHealthRequest, "ab", trace);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + kTraceContextBytes + 2);
  const unsigned char expected[31] = {
      0x70, 0x61, 0x73, 0x6E,                          // magic
      0x02,                                            // version
      0x07,                                            // type kHealthRequest
      0x01, 0x00,                                      // flags: trace context
      0x02, 0x00, 0x00, 0x00,                          // payload length 2
      0xef, 0xcd, 0xab, 0x89, 0x67, 0x45, 0x23, 0x01,  // trace id LE
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,  // parent span id LE
      0x01,                                            // sampled
      'a',  'b'};
  EXPECT_EQ(std::memcmp(frame.data(), expected, sizeof(expected)), 0);
}

TEST(NetWireTest, TracedFrameRoundTrip) {
  const WireTraceContext trace{0xdeadbeefcafef00dULL, 0x42ULL, true};
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame(MsgType::kServeRequest, "payload", trace));
  Frame frame;
  Status error;
  ASSERT_EQ(decoder.Next(&frame, &error), FrameDecoder::Poll::kFrame);
  EXPECT_TRUE(frame.has_trace);
  EXPECT_EQ(frame.trace_id, trace.trace_id);
  EXPECT_EQ(frame.parent_span_id, trace.parent_span_id);
  EXPECT_TRUE(frame.trace_sampled);
  EXPECT_EQ(frame.payload, "payload");
}

// A zero trace id downgrades to a plain untraced frame — callers can pass
// an unconditional WireTraceContext without paying the extension.
TEST(NetWireTest, ZeroTraceIdEncodesPlainFrame) {
  const std::string traced =
      EncodeFrame(MsgType::kHealthRequest, "ab", WireTraceContext{});
  EXPECT_EQ(traced, EncodeFrame(MsgType::kHealthRequest, "ab"));
}

TEST(NetWireTest, GoldenServiceRequestBytes) {
  ServiceRequest sr;
  sr.sender = 2;
  sr.location = Point{1, -1};
  sr.params = {{"a", "b"}};
  const std::string payload = EncodeServiceRequest(sr);
  const unsigned char expected[] = {
      0x02, 0, 0, 0, 0, 0, 0, 0,                          // sender
      0x01, 0, 0, 0, 0, 0, 0, 0,                          // x
      0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,     // y = -1
      0x01, 0x00,                                         // 1 param
      0x01, 0x00, 'a',                                    // name
      0x01, 0x00, 'b'};                                   // value
  ASSERT_EQ(payload.size(), sizeof(expected));
  EXPECT_EQ(std::memcmp(payload.data(), expected, sizeof(expected)), 0);
}

TEST(NetWireTest, DecoderRejectsTruncation) {
  ServiceRequest sr;
  sr.sender = 1;
  sr.params = {{"poi", "rest"}};
  const std::string payload = EncodeServiceRequest(sr);
  // Every strict prefix must fail with InvalidArgument, never crash.
  for (size_t len = 0; len < payload.size(); ++len) {
    const Result<ServiceRequest> decoded =
        DecodeServiceRequest(payload.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix length " << len;
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(NetWireTest, DecoderRejectsTrailingBytes) {
  const std::string payload = EncodeServiceRequest(ServiceRequest{});
  const Result<ServiceRequest> decoded =
      DecodeServiceRequest(payload + "x");
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetWireTest, DecoderRejectsOversizedCounts) {
  // A tiny payload claiming 4 billion POIs must be rejected before any
  // allocation proportional to the claim.
  std::string payload = EncodeServeResponse(ServeResponseMsg{});
  payload[payload.size() - 4] = static_cast<char>(0xFF);
  payload[payload.size() - 3] = static_cast<char>(0xFF);
  payload[payload.size() - 2] = static_cast<char>(0xFF);
  payload[payload.size() - 1] = static_cast<char>(0xFF);
  const Result<ServeResponseMsg> decoded = DecodeServeResponse(payload);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetWireTest, FrameDecoderHandlesOneByteDelivery) {
  ServiceRequest sr;
  sr.sender = 9;
  sr.params = {{"poi", "rest"}};
  const std::string bytes =
      EncodeFrame(MsgType::kServeRequest, EncodeServiceRequest(sr)) +
      EncodeFrame(MsgType::kHealthRequest, "");

  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (const char byte : bytes) {
    decoder.Feed(&byte, 1);
    Frame frame;
    Status error;
    while (decoder.Next(&frame, &error) == FrameDecoder::Poll::kFrame) {
      frames.push_back(frame);
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, MsgType::kServeRequest);
  const Result<ServiceRequest> decoded =
      DecodeServiceRequest(frames[0].payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, sr);
  EXPECT_EQ(frames[1].type, MsgType::kHealthRequest);
  EXPECT_TRUE(frames[1].payload.empty());
}

TEST(NetWireTest, FrameDecoderRejectsBadMagic) {
  FrameDecoder decoder;
  decoder.Feed("XXXXXXXXXXXX");
  Frame frame;
  Status error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Poll::kError);
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
}

TEST(NetWireTest, FrameDecoderRejectsBadVersion) {
  std::string bytes = EncodeFrame(MsgType::kHealthRequest, "");
  bytes[4] = 99;
  FrameDecoder decoder;
  decoder.Feed(bytes);
  Frame frame;
  Status error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Poll::kError);
}

// A v1 frame (no flags, no extension) must still decode against today's
// decoder: old clients keep working against a v2 server.
TEST(NetWireTest, FrameDecoderAcceptsVersion1) {
  std::string bytes = EncodeFrame(MsgType::kHealthRequest, "old");
  bytes[4] = 1;
  FrameDecoder decoder;
  decoder.Feed(bytes);
  Frame frame;
  Status error;
  ASSERT_EQ(decoder.Next(&frame, &error), FrameDecoder::Poll::kFrame);
  EXPECT_EQ(frame.type, MsgType::kHealthRequest);
  EXPECT_EQ(frame.payload, "old");
  EXPECT_FALSE(frame.has_trace);
}

// Future versions get a typed error naming the version, so a mismatched
// peer produces a debuggable close instead of a silent hang.
TEST(NetWireTest, FrameDecoderRejectsVersion3) {
  std::string bytes = EncodeFrame(MsgType::kHealthRequest, "");
  bytes[4] = 3;
  FrameDecoder decoder;
  decoder.Feed(bytes);
  Frame frame;
  Status error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Poll::kError);
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(error.ToString().find("unsupported protocol version 3"),
            std::string::npos)
      << error.ToString();
}

TEST(NetWireTest, FrameDecoderRejectsVersion0) {
  std::string bytes = EncodeFrame(MsgType::kHealthRequest, "");
  bytes[4] = 0;
  FrameDecoder decoder;
  decoder.Feed(bytes);
  Frame frame;
  Status error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Poll::kError);
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
}

TEST(NetWireTest, FrameDecoderRejectsUnknownType) {
  std::string bytes = EncodeFrame(MsgType::kHealthRequest, "");
  bytes[5] = 0;  // 0 is not a known type
  FrameDecoder decoder;
  decoder.Feed(bytes);
  Frame frame;
  Status error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Poll::kError);
}

// v1 reserved the flag bytes as must-be-zero; that contract still holds
// for v1 frames.
TEST(NetWireTest, FrameDecoderRejectsNonZeroReservedInV1) {
  std::string bytes = EncodeFrame(MsgType::kHealthRequest, "");
  bytes[4] = 1;  // downgrade to v1, where the flag bytes are reserved
  bytes[6] = 1;
  FrameDecoder decoder;
  decoder.Feed(bytes);
  Frame frame;
  Status error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Poll::kError);
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
}

// Unknown v2 flag bits are tolerated (ignored), so minor protocol
// extensions do not break older servers.
TEST(NetWireTest, FrameDecoderToleratesUnknownV2Flags) {
  std::string bytes = EncodeFrame(MsgType::kHealthRequest, "hi");
  bytes[7] = static_cast<char>(0x80);  // top flag bit: undefined today
  FrameDecoder decoder;
  decoder.Feed(bytes);
  Frame frame;
  Status error;
  ASSERT_EQ(decoder.Next(&frame, &error), FrameDecoder::Poll::kFrame);
  EXPECT_EQ(frame.payload, "hi");
  EXPECT_FALSE(frame.has_trace);
}

// The trace-context extension with a zero trace id decodes as untraced
// (zero means "no context" everywhere).
TEST(NetWireTest, FrameDecoderDowngradesZeroTraceId) {
  std::string bytes =
      EncodeFrame(MsgType::kHealthRequest, "x", WireTraceContext{1, 2, true});
  // Zero out the trace id bytes inside the extension.
  for (size_t i = kFrameHeaderBytes; i < kFrameHeaderBytes + 8; ++i) {
    bytes[i] = 0;
  }
  FrameDecoder decoder;
  decoder.Feed(bytes);
  Frame frame;
  Status error;
  ASSERT_EQ(decoder.Next(&frame, &error), FrameDecoder::Poll::kFrame);
  EXPECT_FALSE(frame.has_trace);
  EXPECT_EQ(frame.payload, "x");
}

// A traced frame delivered one byte at a time must decode identically —
// the decoder has to wait for the extension, not just the header.
TEST(NetWireTest, FrameDecoderHandlesTornTracedFrame) {
  const WireTraceContext trace{77, 88, false};
  const std::string bytes =
      EncodeFrame(MsgType::kServeRequest, "torn", trace);
  FrameDecoder decoder;
  Frame frame;
  Status error;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.Feed(&bytes[i], 1);
    EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Poll::kNeedMore)
        << "at byte " << i;
  }
  decoder.Feed(&bytes[bytes.size() - 1], 1);
  ASSERT_EQ(decoder.Next(&frame, &error), FrameDecoder::Poll::kFrame);
  EXPECT_TRUE(frame.has_trace);
  EXPECT_EQ(frame.trace_id, 77u);
  EXPECT_EQ(frame.parent_span_id, 88u);
  EXPECT_FALSE(frame.trace_sampled);
  EXPECT_EQ(frame.payload, "torn");
}

TEST(NetWireTest, FrameDecoderRejectsOversizedLength) {
  // A hostile length prefix (2 MiB > kMaxPayloadBytes) is rejected from the
  // header alone — no allocation, no waiting for the claimed bytes.
  std::string bytes = EncodeFrame(MsgType::kHealthRequest, "");
  bytes[8] = 0;
  bytes[9] = 0;
  bytes[10] = 0x20;
  bytes[11] = 0;
  FrameDecoder decoder;
  decoder.Feed(bytes);
  Frame frame;
  Status error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Poll::kError);
}

TEST(NetWireTest, FrameDecoderNeedsMoreOnPartialHeader) {
  FrameDecoder decoder;
  const std::string bytes = EncodeFrame(MsgType::kHealthRequest, "payload");
  decoder.Feed(bytes.substr(0, kFrameHeaderBytes - 1));
  Frame frame;
  Status error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Poll::kNeedMore);
  decoder.Feed(bytes.substr(kFrameHeaderBytes - 1));
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Poll::kFrame);
  EXPECT_EQ(frame.payload, "payload");
}

// Fuzz 1: random garbage fed to the frame decoder in random-sized chunks.
// The decoder must only ever return frames or typed errors.
TEST(NetWireTest, FuzzFrameDecoderSurvivesGarbage) {
  Rng rng(2010);
  for (int round = 0; round < 200; ++round) {
    FrameDecoder decoder;
    const size_t total = 1 + rng.NextBounded(512);
    std::string bytes(total, '\0');
    for (char& byte : bytes) {
      byte = static_cast<char>(rng.NextBounded(256));
    }
    size_t offset = 0;
    bool dead = false;
    while (offset < bytes.size() && !dead) {
      const size_t chunk =
          std::min(bytes.size() - offset, 1 + rng.NextBounded(64));
      decoder.Feed(bytes.data() + offset, chunk);
      offset += chunk;
      Frame frame;
      Status error;
      for (;;) {
        const FrameDecoder::Poll poll = decoder.Next(&frame, &error);
        if (poll == FrameDecoder::Poll::kNeedMore) break;
        if (poll == FrameDecoder::Poll::kError) {
          // Typed error: the connection would close here.
          EXPECT_FALSE(error.ok());
          dead = true;
          break;
        }
      }
    }
  }
}

// Fuzz 2: valid frames whose payloads are randomly corrupted. Message
// decoders must return ok or InvalidArgument — nothing else, no crashes.
TEST(NetWireTest, FuzzPayloadDecodersSurviveCorruption) {
  Rng rng(4021);
  ServiceRequest sr;
  sr.sender = 31337;
  sr.location = Point{1000, 2000};
  sr.params = {{"poi", "rest"}, {"cat", "ital"}};
  ServeResponseMsg resp;
  resp.rid = 5;
  resp.group_size = 50;
  resp.pois = {{1, Point{2, 3}, "rest"}};
  SnapshotAdvanceMsg adv;
  adv.moves = {{3, Point{0, 0}, Point{9, 9}}};

  const std::string seeds[] = {
      EncodeServiceRequest(sr), EncodeServeResponse(resp),
      EncodeSnapshotAdvance(adv), EncodeStatsResponse(StatsResponseMsg{}),
      EncodeError(ErrorMsg{StatusCode::kUnavailable, 10, "x"})};
  for (int round = 0; round < 500; ++round) {
    std::string payload = seeds[rng.NextBounded(std::size(seeds))];
    const size_t flips = 1 + rng.NextBounded(8);
    for (size_t i = 0; i < flips && !payload.empty(); ++i) {
      payload[rng.NextBounded(payload.size())] =
          static_cast<char>(rng.NextBounded(256));
    }
    if (rng.NextBounded(4) == 0 && !payload.empty()) {
      payload.resize(rng.NextBounded(payload.size()));
    }
    // Run every decoder over the corrupted payload: either a clean decode
    // or a typed InvalidArgument.
    const auto check = [](const auto& result) {
      if (!result.ok()) {
        EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
      }
    };
    check(DecodeServiceRequest(payload));
    check(DecodeServeResponse(payload));
    check(DecodeAnonymizeResponse(payload));
    check(DecodeSnapshotAdvance(payload));
    check(DecodeSnapshotReport(payload));
    check(DecodeHealthResponse(payload));
    check(DecodeStatsResponse(payload));
    check(DecodeError(payload));
  }
}

TEST(NetWireTest, KnownMsgTypeRange) {
  EXPECT_FALSE(IsKnownMsgType(0));
  for (uint8_t type = 1; type <= 13; ++type) {
    EXPECT_TRUE(IsKnownMsgType(type)) << int{type};
  }
  EXPECT_FALSE(IsKnownMsgType(14));
  EXPECT_FALSE(IsKnownMsgType(255));
}

}  // namespace
}  // namespace net
}  // namespace pasa
