// Distributed trace-context tests: id generation and hex round trips, the
// thread-local context slot, ScopedSpan's parent/child chaining under an
// active context, span collection, and the remote-adoption flow flag.

#include "obs/trace_context.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "obs/trace.h"

namespace pasa {
namespace obs {
namespace {

TEST(TraceContextTest, NewIdsAreNonZeroAndDistinct) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t id = NewTraceId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(seen.insert(id).second) << "duplicate id";
  }
}

TEST(TraceContextTest, HexRoundTrip) {
  EXPECT_EQ(TraceIdHex(0x0123456789abcdefULL), "0123456789abcdef");
  EXPECT_EQ(TraceIdHex(1), "0000000000000001");
  EXPECT_EQ(TraceIdFromHex("0123456789abcdef"), 0x0123456789abcdefULL);
  const uint64_t id = NewTraceId();
  EXPECT_EQ(TraceIdFromHex(TraceIdHex(id)), id);
}

TEST(TraceContextTest, FromHexRejectsGarbage) {
  EXPECT_EQ(TraceIdFromHex(""), 0u);
  EXPECT_EQ(TraceIdFromHex("not hex"), 0u);
  EXPECT_EQ(TraceIdFromHex("12345678901234567"), 0u);  // too long
}

TEST(TraceContextTest, NoContextByDefault) {
  EXPECT_EQ(MutableCurrentTraceContext(), nullptr);
  EXPECT_FALSE(CurrentTraceContext().valid());
}

TEST(TraceContextTest, ScopedInstallAndRestore) {
  TraceContext ctx;
  ctx.trace_id = 7;
  ctx.span_id = 9;
  {
    ScopedTraceContext scope(ctx);
    ASSERT_NE(MutableCurrentTraceContext(), nullptr);
    EXPECT_EQ(CurrentTraceContext().trace_id, 7u);
    EXPECT_EQ(CurrentTraceContext().span_id, 9u);
    TraceContext inner;
    inner.trace_id = 8;
    {
      ScopedTraceContext nested(inner);
      EXPECT_EQ(CurrentTraceContext().trace_id, 8u);
    }
    EXPECT_EQ(CurrentTraceContext().trace_id, 7u);
  }
  EXPECT_EQ(MutableCurrentTraceContext(), nullptr);
}

TEST(TraceContextTest, ContextIsThreadLocal) {
  TraceContext ctx;
  ctx.trace_id = 42;
  ScopedTraceContext scope(ctx);
  bool other_thread_sees_context = true;
  std::thread probe([&] {
    other_thread_sees_context = MutableCurrentTraceContext() != nullptr;
  });
  probe.join();
  EXPECT_FALSE(other_thread_sees_context);
}

TEST(TraceContextTest, SpansChainUnderContext) {
  TraceContext ctx;
  ctx.trace_id = NewTraceId();
  ScopedTraceContext scope(ctx);
  ScopedSpan outer("outer", ScopedSpan::kRoot);
  EXPECT_EQ(outer.trace_id(), ctx.trace_id);
  EXPECT_NE(outer.span_id(), 0u);
  EXPECT_EQ(CurrentTraceContext().span_id, outer.span_id());
  {
    ScopedSpan inner("inner");
    EXPECT_EQ(inner.trace_id(), ctx.trace_id);
    EXPECT_NE(inner.span_id(), outer.span_id());
    EXPECT_EQ(CurrentTraceContext().span_id, inner.span_id());
  }
  // Closing the inner span restores the outer as the innermost.
  EXPECT_EQ(CurrentTraceContext().span_id, outer.span_id());
}

TEST(TraceContextTest, SpansWithoutContextGetNoIds) {
  ScopedSpan span("plain", ScopedSpan::kRoot);
  EXPECT_EQ(span.trace_id(), 0u);
  EXPECT_EQ(span.span_id(), 0u);
}

TEST(TraceContextTest, CollectorCapturesSpanTree) {
  TraceContext ctx;
  ctx.trace_id = NewTraceId();
  ScopedTraceContext scope(ctx);
  SpanCollector collector;
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  {
    ScopedSpanCollector arm(&collector);
    ScopedSpan outer("csp/handle", ScopedSpan::kRoot);
    outer_id = outer.span_id();
    {
      ScopedSpan inner("lbs/serve");
      inner_id = inner.span_id();
    }
  }
  ASSERT_EQ(collector.spans.size(), 2u);
  // Spans report on close, so the inner lands first.
  EXPECT_EQ(collector.spans[0].span_id, inner_id);
  EXPECT_EQ(collector.spans[0].parent_span_id, outer_id);
  EXPECT_EQ(collector.spans[0].path, "csp/handle/lbs/serve");
  EXPECT_EQ(collector.spans[1].span_id, outer_id);
  EXPECT_EQ(collector.spans[1].parent_span_id, 0u);
  EXPECT_GE(collector.spans[1].duration_micros,
            collector.spans[0].duration_micros);
}

TEST(TraceContextTest, CollectorIgnoredWithoutContext) {
  SpanCollector collector;
  ScopedSpanCollector arm(&collector);
  { ScopedSpan span("untraced", ScopedSpan::kRoot); }
  EXPECT_TRUE(collector.spans.empty());
}

TEST(TraceContextTest, RemoteFlagClearedByFirstSpan) {
  TraceContext ctx;
  ctx.trace_id = NewTraceId();
  ctx.span_id = 123;  // the remote parent
  ctx.remote = true;
  ScopedTraceContext scope(ctx);
  ScopedSpan first("net/dispatch", ScopedSpan::kRoot);
  EXPECT_FALSE(MutableCurrentTraceContext()->remote);
  // The adopted span parents under the wire-carried parent span id.
  EXPECT_EQ(CurrentTraceContext().span_id, first.span_id());
}

}  // namespace
}  // namespace obs
}  // namespace pasa
