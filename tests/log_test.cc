// Tests for the structured logger: level parsing, the runtime filter and
// both sink formats (JSONL and human).

#include "obs/log.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace pasa {
namespace obs {
namespace {

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// The logger is a process-wide singleton: point it at a per-test file and
// always restore the stderr sink and default level afterwards.
class LogTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Logger::Global().UseStderr();
    Logger::Global().SetLevel(LogLevel::kInfo);
  }

  std::string TestFile(const std::string& name) {
    return ::testing::TempDir() + "/log_test/" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           "/" + name;
  }
};

TEST_F(LogTest, LevelNamesRoundTrip) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "debug");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "info");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "warn");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "error");
  EXPECT_STREQ(LogLevelName(LogLevel::kOff), "off");
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    Result<LogLevel> parsed = ParseLogLevel(LogLevelName(level));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, level);
  }
}

TEST_F(LogTest, ParseLogLevelAcceptsAliasesAndRejectsJunk) {
  EXPECT_EQ(*ParseLogLevel("WARN"), LogLevel::kWarn);
  EXPECT_EQ(*ParseLogLevel("warning"), LogLevel::kWarn);
  EXPECT_EQ(*ParseLogLevel("Debug"), LogLevel::kDebug);
  EXPECT_FALSE(ParseLogLevel("shouting").ok());
  EXPECT_FALSE(ParseLogLevel("").ok());
}

TEST_F(LogTest, EnabledFollowsRuntimeLevel) {
  Logger& logger = Logger::Global();
  logger.SetLevel(LogLevel::kWarn);
  EXPECT_FALSE(logger.Enabled(LogLevel::kDebug));
  EXPECT_FALSE(logger.Enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.Enabled(LogLevel::kWarn));
  EXPECT_TRUE(logger.Enabled(LogLevel::kError));
  logger.SetLevel(LogLevel::kOff);
  EXPECT_FALSE(logger.Enabled(LogLevel::kError));
}

// The satellite filter test: with the level at warn, only warn and error
// records reach the sink, and each emitted line is a self-contained JSON
// object carrying ts/level/component/msg plus the structured fields.
TEST_F(LogTest, JsonlSinkFiltersBelowMinLevel) {
  const std::string path = TestFile("filtered.jsonl");
  Logger& logger = Logger::Global();
  ASSERT_TRUE(logger.SetJsonlFile(path).ok());
  logger.SetLevel(LogLevel::kWarn);

  logger.Log(LogLevel::kDebug, "csp", "suppressed debug");
  logger.Log(LogLevel::kInfo, "csp", "suppressed info");
  logger.Log(LogLevel::kWarn, "csp", "policy refresh failed",
             {{"moves", "128"}});
  logger.Log(LogLevel::kError, "cli", "bad \"input\"");
  logger.UseStderr();  // flush + close the file sink

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);

  Result<json::Value> warn = json::Parse(lines[0]);
  ASSERT_TRUE(warn.ok()) << lines[0];
  EXPECT_EQ(warn->Find("level")->str(), "warn");
  EXPECT_EQ(warn->Find("component")->str(), "csp");
  EXPECT_EQ(warn->Find("msg")->str(), "policy refresh failed");
  EXPECT_EQ(warn->Find("moves")->str(), "128");
  ASSERT_NE(warn->Find("ts"), nullptr);
  EXPECT_NE(warn->Find("ts")->str().find("T"), std::string::npos);

  Result<json::Value> error = json::Parse(lines[1]);
  ASSERT_TRUE(error.ok()) << lines[1];
  EXPECT_EQ(error->Find("level")->str(), "error");
  EXPECT_EQ(error->Find("msg")->str(), "bad \"input\"");  // escape survived
}

TEST_F(LogTest, HumanSinkFormatsLevelComponentAndFields) {
  const std::string path = TestFile("human.log");
  Logger& logger = Logger::Global();
  ASSERT_TRUE(logger.SetHumanFile(path).ok());
  logger.SetLevel(LogLevel::kDebug);
  logger.Log(LogLevel::kInfo, "parallel", "run finished",
             {{"jurisdictions", "4"}, {"users", "1000"}});
  logger.UseStderr();

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_NE(line.find("INFO"), std::string::npos) << line;
  EXPECT_NE(line.find("[parallel]"), std::string::npos) << line;
  EXPECT_NE(line.find("run finished"), std::string::npos) << line;
  EXPECT_NE(line.find("jurisdictions=4"), std::string::npos) << line;
  EXPECT_NE(line.find("users=1000"), std::string::npos) << line;
  // ISO-8601 UTC timestamp prefix.
  EXPECT_NE(line.find("T"), std::string::npos);
  EXPECT_NE(line.find("Z "), std::string::npos);
}

TEST_F(LogTest, PrintfWrappersFormatAndFilter) {
  const std::string path = TestFile("wrappers.jsonl");
  Logger& logger = Logger::Global();
  ASSERT_TRUE(logger.SetJsonlFile(path).ok());
  logger.SetLevel(LogLevel::kInfo);

  LogDebug("anonymizer", "hidden %d", 1);
  LogInfo("anonymizer", "built policy: %zu users, k=%d",
          static_cast<size_t>(1750000), 20);
  LogWarn("csp", "refresh failed: %s", "timeout");
  LogError("cli", "exit %d", 3);
  logger.UseStderr();

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(json::Parse(lines[0])->Find("msg")->str(),
            "built policy: 1750000 users, k=20");
  EXPECT_EQ(json::Parse(lines[1])->Find("level")->str(), "warn");
  EXPECT_EQ(json::Parse(lines[2])->Find("component")->str(), "cli");
}

TEST_F(LogTest, FileSinkCreatesParentDirectories) {
  const std::string path = TestFile("deep/nested/dirs/out.jsonl");
  ASSERT_TRUE(Logger::Global().SetJsonlFile(path).ok());
  Logger::Global().Log(LogLevel::kError, "t", "x");
  Logger::Global().UseStderr();
  EXPECT_EQ(ReadLines(path).size(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace pasa
