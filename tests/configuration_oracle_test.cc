// A second, independent ground truth: exhaustively enumerate every
// k-summation configuration (Definition 9) of a small tree and take the
// cheapest complete one. Lemma 3 says this must coincide with the cheapest
// policy whose cloaking groups all have >= k members — and both must match
// the DP. The policy-level oracle lives in tests/test_util.h; agreement of
// all three pins down the Lemma 2/3 equivalences.

#include <gtest/gtest.h>

#include "pasa/bulk_dp_binary.h"
#include "pasa/configuration.h"
#include "tests/test_util.h"

namespace pasa {
namespace {

using testing_util::BruteForceOptimalCost;
using testing_util::RandomDb;

// Exhaustive minimum over complete k-summation configurations of the
// binary tree. Enumerates C(m) bottom-up (children before parents, i.e.
// descending node index), pruning nothing — tiny trees only.
Cost ConfigurationOracle(const BinaryTree& tree, int k) {
  const size_t n = tree.num_nodes();
  std::vector<uint32_t> c(n, 0);
  Cost best = kInfiniteCost;

  // Valid C(m) choices given the node's "available" count (d for leaves,
  // Delta for internal nodes): pass everything, or keep at least k.
  auto choices = [&](uint32_t available) {
    std::vector<uint32_t> out;
    if (available < static_cast<uint32_t>(k)) {
      out.push_back(available);
      return out;
    }
    for (uint32_t u = 0; u + static_cast<uint32_t>(k) <= available; ++u) {
      out.push_back(u);
    }
    out.push_back(available);
    return out;
  };

  auto recurse = [&](auto&& self, size_t index, Cost cost) -> void {
    if (cost >= best) return;
    if (index == static_cast<size_t>(-1)) {  // all nodes assigned
      if (c[BinaryTree::kRootId] == 0) best = std::min(best, cost);
      return;
    }
    const int32_t id = static_cast<int32_t>(index);
    const BinaryTree::Node& node = tree.node(id);
    if (!node.live) {
      self(self, index - 1, cost);
      return;
    }
    const uint32_t available =
        node.IsLeaf()
            ? node.count
            : c[node.first_child] + c[node.first_child + 1];
    for (const uint32_t u : choices(available)) {
      c[id] = u;
      self(self, index - 1,
           cost + static_cast<Cost>(available - u) * node.region.Area());
    }
  };
  recurse(recurse, n - 1, 0);
  return best;
}

struct OracleParam {
  uint64_t seed;
  int n;
  int k;
};

class ConfigurationOracleSweep
    : public ::testing::TestWithParam<OracleParam> {};

TEST_P(ConfigurationOracleSweep, ThreeWayAgreement) {
  const OracleParam p = GetParam();
  Rng rng(p.seed);
  const MapExtent extent{0, 0, 2};
  const LocationDatabase db = RandomDb(&rng, p.n, extent);
  Result<BinaryTree> tree = BinaryTree::Build(
      db, extent, TreeOptions{.split_threshold = p.k});
  ASSERT_TRUE(tree.ok());

  const Cost via_configurations = ConfigurationOracle(*tree, p.k);
  const Cost via_policies = BruteForceOptimalCost(*tree, db.size(), p.k);
  EXPECT_EQ(via_configurations, via_policies);  // Lemma 3

  Result<DpMatrix> matrix = ComputeDpMatrix(*tree, p.k, DpOptions{});
  if (via_policies >= kInfiniteCost) {
    if (matrix.ok()) EXPECT_FALSE(matrix->OptimalCost(*tree).ok());
    return;
  }
  ASSERT_TRUE(matrix.ok());
  Result<Cost> dp = matrix->OptimalCost(*tree);
  ASSERT_TRUE(dp.ok());
  EXPECT_EQ(*dp, via_policies);
}

std::vector<OracleParam> OracleSweep() {
  std::vector<OracleParam> params;
  uint64_t seed = 1000;
  for (const int n : {2, 4, 5, 6, 7}) {
    for (const int k : {1, 2, 3}) {
      params.push_back(OracleParam{seed++, n, k});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(TinyTrees, ConfigurationOracleSweep,
                         ::testing::ValuesIn(OracleSweep()),
                         [](const ::testing::TestParamInfo<OracleParam>& i) {
                           return "seed" + std::to_string(i.param.seed) +
                                  "_n" + std::to_string(i.param.n) + "_k" +
                                  std::to_string(i.param.k);
                         });

}  // namespace
}  // namespace pasa
