// The state-space explorer (src/sim): deterministic stepping, canonical
// digests, exhaustive bounded exploration with a clean verdict on the real
// stack, and — the part that keeps the tool honest — deliberately broken
// doubles whose planted bugs must be found, delta-debugged to a minimal
// trace, and replayed from the emitted counterexample script.
#include <gtest/gtest.h>

#include "fault/injector.h"
#include "obs/log.h"
#include "sim/broken.h"
#include "sim/explorer.h"
#include "sim/invariants.h"
#include "sim/model.h"
#include "sim/script.h"

namespace pasa {
namespace sim {
namespace {

class SimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_log_level_ = obs::Logger::Global().level();
    obs::Logger::Global().SetLevel(obs::LogLevel::kError);
  }
  void TearDown() override {
    fault::FaultInjector::Global().Disarm();
    obs::Logger::Global().SetLevel(previous_log_level_);
  }
  obs::LogLevel previous_log_level_ = obs::LogLevel::kInfo;

  static SimOptions SmallInstance() {
    SimOptions options;
    options.users = 8;
    options.k = 3;
    options.max_advances = 2;
    options.move_batches = 2;
    options.seed = 2010;
    return options;
  }
};

TEST_F(SimTest, ActionSpellingRoundTrips) {
  const std::vector<SimAction> actions = {
      {SimAction::Kind::kRequest, 3, ""},
      {SimAction::Kind::kServeStale, 1, ""},
      {SimAction::Kind::kAdvance, 0, ""},
      {SimAction::Kind::kFireFault, 0, "lbs/error"},
      {SimAction::Kind::kExpireCache, 0, ""},
  };
  for (const SimAction& action : actions) {
    Result<SimAction> parsed = SimAction::Parse(action.ToString());
    ASSERT_TRUE(parsed.ok()) << action.ToString();
    EXPECT_EQ(*parsed, action) << action.ToString();
  }
  EXPECT_FALSE(SimAction::Parse("bogus").ok());
  EXPECT_FALSE(SimAction::Parse("request:").ok());
  EXPECT_FALSE(SimAction::Parse("advance:x").ok());
}

TEST_F(SimTest, StepsAreDeterministic) {
  const std::vector<SimAction> script = {
      {SimAction::Kind::kRequest, 0, ""},
      {SimAction::Kind::kFireFault, 0, "lbs/error"},
      {SimAction::Kind::kRequest, 1, ""},
      {SimAction::Kind::kAdvance, 0, ""},
      {SimAction::Kind::kServeStale, 0, ""},
      {SimAction::Kind::kExpireCache, 0, ""},
  };
  Result<SimModel> a = SimModel::Create(SmallInstance());
  Result<SimModel> b = SimModel::Create(SmallInstance());
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->Digest(), b->Digest());
  for (const SimAction& action : script) {
    ASSERT_TRUE(a->Step(action).ok());
    ASSERT_TRUE(b->Step(action).ok());
    EXPECT_EQ(a->DigestText(), b->DigestText()) << action.ToString();
  }
}

TEST_F(SimTest, CloneBranchesIndependently) {
  Result<SimModel> model = SimModel::Create(SmallInstance());
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->Step({SimAction::Kind::kRequest, 0, ""}).ok());
  const uint64_t digest = model->Digest();
  SimModel branch = *model;
  EXPECT_EQ(branch.Digest(), digest);
  ASSERT_TRUE(branch.Step({SimAction::Kind::kAdvance, 1, ""}).ok());
  EXPECT_NE(branch.Digest(), digest);
  EXPECT_EQ(model->Digest(), digest) << "stepping a clone mutated the parent";
  EXPECT_EQ(model->advances_done(), 0);
  EXPECT_EQ(branch.advances_done(), 1);
}

TEST_F(SimTest, StaleServingDegradesButStaysAnonymous) {
  Result<SimModel> model = SimModel::Create(SmallInstance());
  ASSERT_TRUE(model.ok());
  // Prime the cache, move the world so cloaks change, then request with the
  // provider forced down: the answer must degrade (or fail typed), never
  // pass stale data off as fresh — and the cloak stays k-anonymous.
  ASSERT_TRUE(model->Step({SimAction::Kind::kRequest, 0, ""}).ok());
  ASSERT_TRUE(model->Step({SimAction::Kind::kAdvance, 1, ""}).ok());
  ASSERT_TRUE(model->Step({SimAction::Kind::kServeStale, 0, ""}).ok());
  const StepRecord& step = model->last_step();
  EXPECT_TRUE(step.served || step.serve_failed);
  if (step.served) {
    EXPECT_TRUE(step.answer_degraded ||
                step.receipt.cloak == model->csp().policy().cloak(0));
  }
  EXPECT_EQ(CheckInvariants(*model), std::nullopt);
}

TEST_F(SimTest, ExplorerCoversBoundedInstanceCleanly) {
  ExplorerOptions options;
  options.model = SmallInstance();
  options.max_depth = 3;
  options.max_states = 20'000;
  Result<ExploreResult> result = Explore(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->violation, std::nullopt)
      << result->violation->invariant << ": " << result->violation->detail;
  EXPECT_TRUE(result->stats.exhausted);
  EXPECT_EQ(result->stats.depth_reached, 3);
  EXPECT_GT(result->stats.states_visited, 100u);
  EXPECT_GT(result->stats.states_pruned, 0u)
      << "canonical hashing should merge equivalent interleavings";
}

TEST_F(SimTest, BrokenRepairDoubleIsCaughtAndShrunk) {
  Result<SimSystem*> broken = SystemForName("repair");
  ASSERT_TRUE(broken.ok());
  ExplorerOptions options;
  options.model = SmallInstance();
  options.max_depth = 4;
  options.system = *broken;
  Result<ExploreResult> result = Explore(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->violation.has_value())
      << "the planted repair bug was not found";
  EXPECT_EQ(result->violation->invariant, "kanon");
  ASSERT_FALSE(result->shrunk_trace.empty());
  EXPECT_LE(result->shrunk_trace.size(), 2u)
      << "ddmin should reduce to advance + request";
  // The shrunk trace must still reproduce the violation from scratch.
  Result<std::optional<Violation>> replay =
      ReplayTrace(options, result->shrunk_trace);
  ASSERT_TRUE(replay.ok());
  ASSERT_TRUE(replay->has_value());
  EXPECT_EQ((*replay)->invariant, "kanon");
}

TEST_F(SimTest, BrokenQuarantineDoubleIsCaughtAndShrunk) {
  Result<SimSystem*> broken = SystemForName("quarantine");
  ASSERT_TRUE(broken.ok());
  ExplorerOptions options;
  options.model = SmallInstance();
  options.max_depth = 4;
  options.system = *broken;
  Result<ExploreResult> result = Explore(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->violation.has_value())
      << "the planted quarantine bug was not found";
  EXPECT_EQ(result->violation->invariant, "quarantine");
  EXPECT_LE(result->shrunk_trace.size(), 2u)
      << "ddmin should reduce to corrupt-move fault + advance";
  Result<std::optional<Violation>> replay =
      ReplayTrace(options, result->shrunk_trace);
  ASSERT_TRUE(replay.ok());
  ASSERT_TRUE(replay->has_value());
  EXPECT_EQ((*replay)->invariant, "quarantine");
}

TEST_F(SimTest, InvariantMaskParsing) {
  Result<uint32_t> all = ParseInvariantMask("all");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, kAllInvariants);
  Result<uint32_t> two = ParseInvariantMask("kanon,repair");
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(*two, kInvariantKAnonymity | kInvariantRepairEqualsRebuild);
  EXPECT_FALSE(ParseInvariantMask("kanon,bogus").ok());
}

TEST_F(SimTest, CounterexampleScriptRoundTrips) {
  CounterexampleScript script;
  script.model = SmallInstance();
  script.broken = "repair";
  script.expect_invariant = "kanon";
  script.actions = {
      {SimAction::Kind::kFireFault, 0, "snapshot/repair_fail"},
      {SimAction::Kind::kAdvance, 0, ""},
      {SimAction::Kind::kRequest, 2, ""},
  };
  Result<CounterexampleScript> parsed =
      CounterexampleScript::FromJson(script.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->model.users, script.model.users);
  EXPECT_EQ(parsed->model.k, script.model.k);
  EXPECT_EQ(parsed->model.seed, script.model.seed);
  EXPECT_EQ(parsed->broken, "repair");
  EXPECT_EQ(parsed->expect_invariant, "kanon");
  EXPECT_EQ(parsed->actions, script.actions);
  const fault::FaultPlan plan = parsed->DerivedFaultPlan();
  ASSERT_EQ(plan.points.size(), 1u);
  EXPECT_EQ(plan.points[0].point, "snapshot/repair_fail");
  EXPECT_EQ(plan.points[0].max_fires, 1u);
  EXPECT_FALSE(CounterexampleScript::FromJson("{\"actions\": 3}").ok());
  EXPECT_FALSE(CounterexampleScript::FromJson("{}").ok());
}

TEST_F(SimTest, NetFaultPointsAreRejected) {
  SimOptions options = SmallInstance();
  options.fault_points = {"net/conn_drop"};
  EXPECT_FALSE(SimModel::Create(options).ok());
  options.fault_points = {"no/such_point"};
  EXPECT_FALSE(SimModel::Create(options).ok());
}

}  // namespace
}  // namespace sim
}  // namespace pasa
