// Reproductions of the Section VII / Figure 6 breach scenarios: k-sharing
// and k-reciprocity both fail against a policy-aware attacker, while the
// policy-aware optimum on the same inputs does not.

#include <gtest/gtest.h>

#include "attack/auditor.h"
#include "pasa/anonymizer.h"
#include "policies/k_reciprocity.h"
#include "policies/k_sharing.h"
#include "tests/test_util.h"

namespace pasa {
namespace {

using testing_util::MakeDb;

// Figure 6(a): three users on a line, B closer to A than to C.
//   A(0,0)   B(2,0)      C(5,0)
LocationDatabase Fig6aDb() { return MakeDb({{0, 0}, {2, 0}, {5, 0}}); }
constexpr size_t kA = 0, kB = 1, kC = 2;

TEST(KSharingBreach, GroupsDependOnArrivalOrder) {
  const LocationDatabase db = Fig6aDb();
  const KSharingPolicy policy(2);

  // C first: C is grouped with its nearest ungrouped user B.
  Result<CloakingTable> c_first = policy.CloakInOrder(db, {kC});
  ASSERT_TRUE(c_first.ok());
  EXPECT_EQ(c_first->cloak(kC), c_first->cloak(kB));

  // B first: B is grouped with A instead.
  Result<CloakingTable> b_first = policy.CloakInOrder(db, {kB});
  ASSERT_TRUE(b_first.ok());
  EXPECT_EQ(b_first->cloak(kB), b_first->cloak(kA));
  EXPECT_NE(b_first->cloak(kB), c_first->cloak(kC));
}

TEST(KSharingBreach, KSharingHoldsYetPolicyAwareAttackerIdentifiesC) {
  const LocationDatabase db = Fig6aDb();
  const KSharingPolicy policy(2);
  Result<CloakingTable> table = policy.CloakInOrder(db, {kC});
  ASSERT_TRUE(table.ok());

  // The k-sharing property holds for the request that was actually made:
  // C's cloak is shared by 2 users ({B, C}).
  EXPECT_GE(AuditPolicyAware(*table).possible_senders_per_row[kC], 2u);

  // The breach is about the FIRST request: the attacker knows the grouping
  // algorithm, observes the first cloak, and reverse-engineers which users
  // could have triggered it. Only C produces the {B,C} box.
  Result<std::vector<size_t>> possible =
      policy.PossibleFirstSenders(db, table->cloak(kC));
  ASSERT_TRUE(possible.ok());
  EXPECT_EQ(*possible, std::vector<size_t>{kC})
      << "policy-aware attacker pins the first sender down to C";
}

TEST(KSharingBreach, PolicyAwareOptimumIsSafeOnTheSameInput) {
  const LocationDatabase db = Fig6aDb();
  AnonymizerOptions options;
  options.k = 2;
  Result<Anonymizer> a = Anonymizer::Build(db, MapExtent{0, 0, 3}, options);
  ASSERT_TRUE(a.ok());
  // Our policy is a pure function of the snapshot — no arrival-order channel
  // — and every group has >= 2 members.
  EXPECT_TRUE(AuditPolicyAware(a->policy()).Anonymous(2));
}

// Figure 6(b): two base stations; Alice nearest S1, Bob nearest S2, both
// users inside both circles.
//   S1(0,0)  Alice(2,0)  Bob(3,0)  S2(5,0)
TEST(KReciprocityBreach, ReciprocalCirclesStillLeakSenders) {
  const LocationDatabase db = MakeDb({{2, 0}, {3, 0}});  // Alice, Bob
  const NearestStationCircles policy({{0, 0}, {5, 0}});
  Result<std::vector<Circle>> cloaks = policy.Cloak(db, 2);
  ASSERT_TRUE(cloaks.ok());

  // Alice's circle is centered at S1 and reaches Bob; Bob's at S2 reaches
  // Alice. Both users lie inside both circles.
  EXPECT_EQ((*cloaks)[0].cx, 0.0);
  EXPECT_EQ((*cloaks)[1].cx, 5.0);
  for (const Circle& c : *cloaks) {
    EXPECT_TRUE(c.Contains({2, 0}));
    EXPECT_TRUE(c.Contains({3, 0}));
  }

  // 2-reciprocity and the 2-inside property hold...
  EXPECT_TRUE(NearestStationCircles::SatisfiesKReciprocity(db, *cloaks, 2));
  EXPECT_TRUE(AuditPolicyUnaware(*cloaks, db).Anonymous(2));
  // ...yet each circle is issued by exactly one user: the policy-aware
  // attacker observing the S1-centered cloak knows the sender is Alice.
  const AuditReport aware = AuditPolicyAware(*cloaks);
  EXPECT_EQ(aware.min_possible_senders, 1u);
  EXPECT_FALSE(aware.Anonymous(2));
}

TEST(KReciprocityBreach, CloaksAreMaskingAndDeterministic) {
  const LocationDatabase db = MakeDb({{2, 0}, {3, 0}, {9, 9}, {8, 8}});
  const NearestStationCircles policy({{0, 0}, {10, 10}});
  Result<std::vector<Circle>> a = policy.Cloak(db, 2);
  Result<std::vector<Circle>> b = policy.Cloak(db, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
  for (size_t row = 0; row < db.size(); ++row) {
    EXPECT_TRUE((*a)[row].Contains(db.row(row).location));
  }
}

TEST(KReciprocityBreach, ErrorsOnBadConfig) {
  const LocationDatabase db = MakeDb({{0, 0}, {1, 1}});
  EXPECT_EQ(NearestStationCircles({}).Cloak(db, 2).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(NearestStationCircles({{0, 0}}).Cloak(db, 3).status().code(),
            StatusCode::kInfeasible);
}

}  // namespace
}  // namespace pasa
