// Tests for the policy-unaware k-inside baselines (PUQ, PUB, Casper,
// FindMBC): masking, the k-inside property, relative utility ordering, and
// the Example-1 policy-aware breach.

#include <gtest/gtest.h>

#include "attack/auditor.h"
#include "policies/casper.h"
#include "policies/find_mbc.h"
#include "policies/k_inside_binary.h"
#include "policies/k_inside_quad.h"
#include "tests/test_util.h"

namespace pasa {
namespace {

using testing_util::MakeDb;
using testing_util::RandomDb;

// Paper running example (Table I shifted): A(0,0) B(0,1) C(0,3) S(2,0)
// T(3,3) on the 4x4 map.
LocationDatabase PaperExampleDb() {
  return MakeDb({{0, 0}, {0, 1}, {0, 3}, {2, 0}, {3, 3}});
}

struct BaselineCase {
  const char* name;
  // Factory so each test owns its algorithm instance.
  std::unique_ptr<BulkPolicyAlgorithm> (*make)(MapExtent);
};

std::unique_ptr<BulkPolicyAlgorithm> MakePuq(MapExtent e) {
  return std::make_unique<PolicyUnawareQuad>(e);
}
std::unique_ptr<BulkPolicyAlgorithm> MakePub(MapExtent e) {
  return std::make_unique<PolicyUnawareBinary>(e);
}
std::unique_ptr<BulkPolicyAlgorithm> MakeCasper(MapExtent e) {
  return std::make_unique<CasperPolicy>(e);
}

class KInsideBaselineTest
    : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(KInsideBaselineTest, MaskingAndKInsideOnRandomSnapshots) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    const MapExtent extent{0, 0, 6};
    const LocationDatabase db = RandomDb(&rng, 400, extent);
    const auto algorithm = GetParam().make(extent);
    for (const int k : {2, 5, 17}) {
      Result<CloakingTable> table = algorithm->Cloak(db, k);
      ASSERT_TRUE(table.ok()) << algorithm->name() << " k=" << k;
      EXPECT_TRUE(table->IsMasking(db));
      // k-inside == sender k-anonymous against policy-unaware attackers
      // (Proposition 2): every used cloak contains >= k locations.
      const AuditReport unaware = AuditPolicyUnaware(*table, db);
      EXPECT_TRUE(unaware.Anonymous(k))
          << algorithm->name() << " k=" << k << " min="
          << unaware.min_possible_senders;
    }
  }
}

TEST_P(KInsideBaselineTest, InfeasibleBelowK) {
  const MapExtent extent{0, 0, 3};
  const LocationDatabase db = MakeDb({{0, 0}, {1, 1}});
  const auto algorithm = GetParam().make(extent);
  EXPECT_EQ(algorithm->Cloak(db, 3).status().code(), StatusCode::kInfeasible);
}

INSTANTIATE_TEST_SUITE_P(
    Baselines, KInsideBaselineTest,
    ::testing::Values(BaselineCase{"PUQ", &MakePuq},
                      BaselineCase{"PUB", &MakePub},
                      BaselineCase{"Casper", &MakeCasper}),
    [](const ::testing::TestParamInfo<BaselineCase>& info) {
      return info.param.name;
    });

TEST(KInsideOrdering, CasperAndPubNeverWorseThanPuqPerUser) {
  for (const uint64_t seed : {10u, 11u, 12u, 13u}) {
    Rng rng(seed);
    const MapExtent extent{0, 0, 6};
    const LocationDatabase db = RandomDb(&rng, 300, extent);
    const int k = 5;
    Result<CloakingTable> puq = PolicyUnawareQuad(extent).Cloak(db, k);
    Result<CloakingTable> pub = PolicyUnawareBinary(extent).Cloak(db, k);
    Result<CloakingTable> casper = CasperPolicy(extent).Cloak(db, k);
    ASSERT_TRUE(puq.ok() && pub.ok() && casper.ok());
    for (size_t row = 0; row < db.size(); ++row) {
      // Casper shrinks PUQ's quadrant to a semi-quadrant when possible; PUB
      // extends the chain below every quadrant by a vertical semi.
      EXPECT_LE(casper->cloak(row).Area(), puq->cloak(row).Area());
      EXPECT_LE(pub->cloak(row).Area(), puq->cloak(row).Area());
    }
    // Aggregate ordering of Figure 5(a): Casper is the cheapest k-inside.
    EXPECT_LE(casper->TotalCost(), pub->TotalCost());
  }
}

TEST(Example1Breach, SemiQuadrantKInsidePoliciesExposeCarol) {
  // Example 1/6 uses semi-quadrant cloaks (the [23]-style algorithm): under
  // PUB and Casper, Carol's cloak group is a singleton, so a policy-aware
  // attacker identifies her — while policy-unaware 2-anonymity still holds
  // (Propositions 2 and 3).
  const LocationDatabase db = PaperExampleDb();
  const MapExtent extent{0, 0, 2};
  const size_t carol = 2;
  for (auto* make : {&MakePub, &MakeCasper}) {
    const auto algorithm = (*make)(extent);
    Result<CloakingTable> table = algorithm->Cloak(db, 2);
    ASSERT_TRUE(table.ok()) << algorithm->name();
    EXPECT_TRUE(AuditPolicyUnaware(*table, db).Anonymous(2))
        << algorithm->name();
    const AuditReport aware = AuditPolicyAware(*table);
    EXPECT_FALSE(aware.Anonymous(2)) << algorithm->name();
    const std::vector<size_t> breached = aware.Breaches(2);
    ASSERT_FALSE(breached.empty());
    EXPECT_NE(std::find(breached.begin(), breached.end(), carol),
              breached.end())
        << algorithm->name() << ": Carol should be identifiable";
  }
}

TEST(Example1Breach, QuadrantKInsidePolicyBreachesOnOutlierInstance) {
  // PUQ happens to be safe on the Table I instance (all root-cloaked users
  // share the root group), but an outlier alone in her quadrant while the
  // rest pair up deeper exposes her.
  const LocationDatabase db = MakeDb({{0, 0}, {1, 1}, {0, 3}});
  const MapExtent extent{0, 0, 2};
  const size_t outlier = 2;
  Result<CloakingTable> table = PolicyUnawareQuad(extent).Cloak(db, 2);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(AuditPolicyUnaware(*table, db).Anonymous(2));
  const AuditReport aware = AuditPolicyAware(*table);
  EXPECT_FALSE(aware.Anonymous(2));
  EXPECT_EQ(aware.possible_senders_per_row[outlier], 1u);
}

TEST(FindMbcTest, CirclesAreKInsideButPolicyAwareBreachable) {
  Rng rng(31);
  const MapExtent extent{0, 0, 6};
  const LocationDatabase db = RandomDb(&rng, 120, extent);
  const int k = 6;
  Result<CircularCloaking> cloaking = FindMbcCloaking(db, k);
  ASSERT_TRUE(cloaking.ok());
  EXPECT_TRUE(cloaking->IsMasking(db));
  // k-inside: at least k users inside every circle.
  EXPECT_TRUE(AuditPolicyUnaware(cloaking->cloaks, db).Anonymous(k));
  // Policy-aware: MBCs are essentially unique per user; expect a breach.
  EXPECT_FALSE(AuditPolicyAware(cloaking->cloaks).Anonymous(k));
}

TEST(FindMbcTest, KNearestRowsMatchesBruteForce) {
  Rng rng(32);
  const MapExtent extent{0, 0, 7};
  const LocationDatabase db = RandomDb(&rng, 200, extent);
  for (int trial = 0; trial < 20; ++trial) {
    const Point query{static_cast<Coord>(rng.NextBounded(extent.side())),
                      static_cast<Coord>(rng.NextBounded(extent.side()))};
    const size_t k = 1 + rng.NextBounded(10);
    const std::vector<size_t> got = KNearestRows(db, query, k);
    ASSERT_EQ(got.size(), k);
    // Brute-force reference.
    std::vector<std::pair<int64_t, size_t>> all;
    for (size_t r = 0; r < db.size(); ++r) {
      all.emplace_back(SquaredDistance(db.row(r).location, query), r);
    }
    std::sort(all.begin(), all.end());
    for (size_t i = 0; i < k; ++i) {
      EXPECT_EQ(SquaredDistance(db.row(got[i]).location, query), all[i].first)
          << "neighbour " << i;
    }
  }
}

TEST(FindMbcTest, InfeasibleBelowK) {
  const LocationDatabase db = MakeDb({{0, 0}});
  EXPECT_EQ(FindMbcCloaking(db, 2).status().code(), StatusCode::kInfeasible);
}

}  // namespace
}  // namespace pasa
