// Tests for the benchstat layer: aggregation statistics, snapshot JSON
// round trip, metrics-JSON extraction, and the compare verdicts that back
// the perf-regression gate (improvement, regression, within-noise).

#include "obs/benchstat.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pasa {
namespace obs {
namespace benchstat {
namespace {

Snapshot MakeSnapshot(const std::string& name,
                      const std::map<std::string, Measurement>& measurements) {
  Snapshot snapshot;
  snapshot.name = name;
  snapshot.iterations = 5;
  snapshot.measurements = measurements;
  return snapshot;
}

Measurement MakeMeasurement(double mean, double stddev) {
  Measurement m;
  m.mean = mean;
  m.stddev = stddev;
  m.min = mean - stddev;
  m.samples = 5;
  return m;
}

TEST(BenchstatTest, AggregateComputesMeanStddevMin) {
  const std::vector<std::map<std::string, double>> runs = {
      {{"wall_seconds", 1.0}, {"span/bulk_dp", 0.5}},
      {{"wall_seconds", 2.0}, {"span/bulk_dp", 0.7}},
      {{"wall_seconds", 3.0}},
  };
  const Snapshot snapshot = Aggregate("fig4a", runs);
  EXPECT_EQ(snapshot.name, "fig4a");
  EXPECT_EQ(snapshot.iterations, 3);
  ASSERT_EQ(snapshot.measurements.size(), 2u);

  const Measurement& wall = snapshot.measurements.at("wall_seconds");
  EXPECT_DOUBLE_EQ(wall.mean, 2.0);
  EXPECT_DOUBLE_EQ(wall.stddev, 1.0);  // sample stddev of {1,2,3}
  EXPECT_DOUBLE_EQ(wall.min, 1.0);
  EXPECT_EQ(wall.samples, 3u);

  // Keys missing from some runs aggregate over the runs that have them.
  const Measurement& span = snapshot.measurements.at("span/bulk_dp");
  EXPECT_DOUBLE_EQ(span.mean, 0.6);
  EXPECT_EQ(span.samples, 2u);
}

TEST(BenchstatTest, SingleSampleHasZeroStddev) {
  const Snapshot snapshot = Aggregate("one", {{{"wall_seconds", 1.5}}});
  const Measurement& m = snapshot.measurements.at("wall_seconds");
  EXPECT_DOUBLE_EQ(m.stddev, 0.0);
  EXPECT_DOUBLE_EQ(m.mean, 1.5);
  EXPECT_DOUBLE_EQ(m.min, 1.5);
}

TEST(BenchstatTest, JsonRoundTripPreservesSnapshot) {
  const Snapshot original = MakeSnapshot(
      "fig7b", {{"span/bulk_dp", MakeMeasurement(1.92, 0.05)},
                {"hist/lbs/serve_seconds/mean_seconds",
                 MakeMeasurement(3.5e-05, 1e-06)}});

  Result<json::Value> document = json::Parse(ToJson(original));
  ASSERT_TRUE(document.ok()) << document.status().ToString();
  Result<Snapshot> parsed = FromJson(*document);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed->name, original.name);
  EXPECT_EQ(parsed->iterations, original.iterations);
  ASSERT_EQ(parsed->measurements.size(), original.measurements.size());
  for (const auto& [key, m] : original.measurements) {
    ASSERT_TRUE(parsed->measurements.count(key)) << key;
    const Measurement& got = parsed->measurements.at(key);
    EXPECT_NEAR(got.mean, m.mean, 1e-12) << key;
    EXPECT_NEAR(got.stddev, m.stddev, 1e-12) << key;
    EXPECT_NEAR(got.min, m.min, 1e-12) << key;
    EXPECT_EQ(got.samples, m.samples) << key;
  }
}

TEST(BenchstatTest, FileRoundTripCreatesParentDirectories) {
  const Snapshot original =
      MakeSnapshot("smoke", {{"wall_seconds", MakeMeasurement(0.3, 0.01)}});
  const std::string path =
      ::testing::TempDir() + "/benchstat_test/deep/BENCH_smoke.json";
  ASSERT_TRUE(WriteSnapshotFile(original, path).ok());
  Result<Snapshot> loaded = LoadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name, "smoke");
  EXPECT_NEAR(loaded->measurements.at("wall_seconds").mean, 0.3, 1e-12);
}

TEST(BenchstatTest, LoadRejectsMissingAndMalformedFiles) {
  EXPECT_FALSE(LoadSnapshotFile("/no/such/BENCH.json").ok());
  const std::string path = ::testing::TempDir() + "/benchstat_bad.json";
  ASSERT_TRUE(WriteTextFile(path, "{not json").ok());
  EXPECT_FALSE(LoadSnapshotFile(path).ok());
  ASSERT_TRUE(WriteTextFile(path, "{\"name\": \"x\"}").ok());
  EXPECT_FALSE(LoadSnapshotFile(path).ok());  // no measurements object
}

// End-to-end against the real exporter: spans become "span/<path>" totals
// and histograms become "hist/<name>/mean_seconds"; counters are skipped.
TEST(BenchstatTest, ExtractsMeasurementsFromRealMetricsJson) {
  Configure(ObsOptions{.enabled = true});
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();
  {
    ScopedSpan span("bench_phase", ScopedSpan::kRoot);
  }
  Histogram& histogram = registry.GetHistogram("serve_seconds");
  histogram.Observe(0.010);
  histogram.Observe(0.030);
  registry.GetCounter("cache/hits").Increment(7);

  Result<json::Value> document = json::Parse(ExportJson(registry.Snapshot()));
  ASSERT_TRUE(document.ok()) << document.status().ToString();
  const std::map<std::string, double> measurements =
      MeasurementsFromMetricsJson(*document);

  ASSERT_TRUE(measurements.count("span/bench_phase"));
  EXPECT_GE(measurements.at("span/bench_phase"), 0.0);
  ASSERT_TRUE(measurements.count("hist/serve_seconds/mean_seconds"));
  EXPECT_NEAR(measurements.at("hist/serve_seconds/mean_seconds"), 0.020,
              1e-09);
  for (const auto& [key, value] : measurements) {
    EXPECT_EQ(key.find("cache/hits"), std::string::npos) << key;
  }
}

// The three verdict scenarios of the regression gate, with the default
// options (threshold 10%, noise gate 2 sigma).
TEST(BenchstatTest, CompareFlagsRegressionImprovementAndNoise) {
  const CompareOptions options;
  const Snapshot baseline = MakeSnapshot(
      "base", {{"regressed", MakeMeasurement(1.0, 0.01)},
               {"improved", MakeMeasurement(1.0, 0.01)},
               {"noisy", MakeMeasurement(1.0, 0.5)},
               {"steady", MakeMeasurement(1.0, 0.01)},
               {"removed", MakeMeasurement(1.0, 0.0)}});
  const Snapshot candidate = MakeSnapshot(
      "cand", {{"regressed", MakeMeasurement(1.2, 0.01)},  // +20% slowdown
               {"improved", MakeMeasurement(0.8, 0.01)},
               {"noisy", MakeMeasurement(1.2, 0.5)},
               {"steady", MakeMeasurement(1.05, 0.01)},
               {"added", MakeMeasurement(2.0, 0.0)}});

  const CompareReport report = Compare(baseline, candidate, options);
  ASSERT_EQ(report.rows.size(), 4u);
  std::map<std::string, Verdict> verdict_of;
  for (const KeyComparison& row : report.rows) {
    verdict_of[row.key] = row.verdict;
  }
  EXPECT_EQ(verdict_of.at("regressed"), Verdict::kRegression);
  EXPECT_EQ(verdict_of.at("improved"), Verdict::kImprovement);
  EXPECT_EQ(verdict_of.at("noisy"), Verdict::kWithinNoise);
  EXPECT_EQ(verdict_of.at("steady"), Verdict::kUnchanged);
  EXPECT_TRUE(report.HasRegression());

  ASSERT_EQ(report.only_in_baseline.size(), 1u);
  EXPECT_EQ(report.only_in_baseline[0], "removed");
  ASSERT_EQ(report.only_in_candidate.size(), 1u);
  EXPECT_EQ(report.only_in_candidate[0], "added");

  for (const KeyComparison& row : report.rows) {
    if (row.key == "regressed") {
      EXPECT_NEAR(row.delta_percent, 20.0, 1e-09);
    } else if (row.key == "improved") {
      EXPECT_NEAR(row.delta_percent, -20.0, 1e-09);
    }
  }
}

TEST(BenchstatTest, CompareWithoutRegressionsPasses) {
  const CompareOptions options;
  const Snapshot baseline =
      MakeSnapshot("base", {{"a", MakeMeasurement(1.0, 0.01)}});
  const Snapshot candidate =
      MakeSnapshot("cand", {{"a", MakeMeasurement(0.99, 0.01)}});
  EXPECT_FALSE(Compare(baseline, candidate, options).HasRegression());
}

TEST(BenchstatTest, NoiseGateCanBeDisabled) {
  CompareOptions options;
  options.noise_sigma = 0.0;
  const Snapshot baseline =
      MakeSnapshot("base", {{"noisy", MakeMeasurement(1.0, 0.5)}});
  const Snapshot candidate =
      MakeSnapshot("cand", {{"noisy", MakeMeasurement(1.2, 0.5)}});
  const CompareReport report = Compare(baseline, candidate, options);
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].verdict, Verdict::kRegression);
}

TEST(BenchstatTest, ReportTableListsVerdictsAndSummary) {
  const Snapshot baseline = MakeSnapshot(
      "base", {{"span/bulk_dp", MakeMeasurement(1.0, 0.01)}});
  const Snapshot candidate = MakeSnapshot(
      "cand", {{"span/bulk_dp", MakeMeasurement(1.5, 0.01)}});
  const std::string table =
      ReportTable(Compare(baseline, candidate, CompareOptions()));
  EXPECT_NE(table.find("span/bulk_dp"), std::string::npos) << table;
  EXPECT_NE(table.find("REGRESSION"), std::string::npos) << table;
  EXPECT_NE(table.find("+50.0%"), std::string::npos) << table;
  EXPECT_NE(table.find("1 regression(s)"), std::string::npos) << table;
}

}  // namespace
}  // namespace benchstat
}  // namespace obs
}  // namespace pasa
