// End-to-end integration tests: the full CSP pipeline on realistic synthetic
// workloads — build the optimal policy-aware policy, serve request streams,
// advance snapshots incrementally, and audit everything.

#include <gtest/gtest.h>

#include <set>

#include "attack/auditor.h"
#include "pasa/anonymizer.h"
#include "pasa/incremental.h"
#include "policies/casper.h"
#include "policies/k_inside_binary.h"
#include "policies/k_inside_quad.h"
#include "workload/bay_area.h"
#include "workload/movement.h"
#include "workload/requests.h"

namespace pasa {
namespace {

BayAreaOptions MediumOptions() {
  BayAreaOptions options;
  options.log2_map_side = 14;
  options.num_intersections = 800;
  options.users_per_intersection = 5;
  options.user_sigma = 60.0;
  options.num_clusters = 12;
  options.seed = 99;
  return options;
}

TEST(Integration, EndToEndPipelineOnSyntheticBayArea) {
  const BayAreaGenerator gen(MediumOptions());
  const LocationDatabase db = gen.Generate(4000);
  const int k = 25;

  AnonymizerOptions options;
  options.k = k;
  Result<Anonymizer> anonymizer =
      Anonymizer::Build(db, gen.extent(), options);
  ASSERT_TRUE(anonymizer.ok()) << anonymizer.status().ToString();

  // Privacy: both attacker classes defeated.
  EXPECT_TRUE(AuditPolicyAware(anonymizer->policy()).Anonymous(k));
  EXPECT_TRUE(AuditPolicyUnaware(anonymizer->policy(), db).Anonymous(k));
  EXPECT_TRUE(anonymizer->policy().IsMasking(db));

  // Serve a request stream; every anonymized request masks its service
  // request and rids are unique.
  RequestGenerator requests(17);
  std::set<RequestId> rids;
  for (const ServiceRequest& sr : requests.Draw(db, 500)) {
    Result<AnonymizedRequest> ar = anonymizer->Anonymize(sr);
    ASSERT_TRUE(ar.ok());
    EXPECT_TRUE(Masks(*ar, sr));
    EXPECT_TRUE(rids.insert(ar->rid).second);
  }

  // Lookups agree with the bulk policy.
  for (size_t row = 0; row < db.size(); row += 97) {
    Result<Rect> cloak = anonymizer->CloakForUser(db.row(row).user);
    ASSERT_TRUE(cloak.ok());
    EXPECT_EQ(*cloak, anonymizer->policy().cloak(row));
  }
  EXPECT_FALSE(anonymizer->CloakForUser(987654321).ok());

  // Stale request (user moved since the snapshot) is rejected.
  ServiceRequest stale{db.row(0).user,
                       {db.row(0).location.x + 1, db.row(0).location.y},
                       {}};
  EXPECT_FALSE(anonymizer->Anonymize(stale).ok());
}

TEST(Integration, StrongerGuaranteeCostsBoundedExtraUtility) {
  // The Figure 5(a) shape on a medium instance: the policy-aware optimum
  // pays more than Casper but by a modest factor, and no more than
  // (approximately) the policy-unaware quad baseline.
  const BayAreaGenerator gen(MediumOptions());
  const LocationDatabase db = gen.Generate(5000);
  const int k = 25;

  AnonymizerOptions options;
  options.k = k;
  Result<Anonymizer> aware = Anonymizer::Build(db, gen.extent(), options);
  Result<CloakingTable> casper = CasperPolicy(gen.extent()).Cloak(db, k);
  Result<CloakingTable> pub = PolicyUnawareBinary(gen.extent()).Cloak(db, k);
  Result<CloakingTable> puq = PolicyUnawareQuad(gen.extent()).Cloak(db, k);
  ASSERT_TRUE(aware.ok() && casper.ok() && pub.ok() && puq.ok());

  const double aware_area = aware->policy().AverageArea();
  const double casper_area = casper->AverageArea();
  const double pub_area = pub->AverageArea();
  const double puq_area = puq->AverageArea();

  // k-inside baselines are cheaper than the policy-aware optimum (they give
  // a weaker guarantee); Casper is the cheapest of them.
  EXPECT_LE(casper_area, pub_area);
  EXPECT_LE(pub_area, puq_area);
  EXPECT_GE(aware_area, pub_area);
  // The paper's headline: the stronger guarantee costs at most ~1.7x the
  // tightest policy-unaware cloaks. Allow generous slack for the synthetic
  // map; the benchmark reports the actual ratio.
  EXPECT_LE(aware_area, 3.0 * casper_area);
}

TEST(Integration, SnapshotAdvanceKeepsPrivacyAndOptimality) {
  const BayAreaGenerator gen(MediumOptions());
  LocationDatabase db = gen.Generate(3000);
  const int k = 20;

  Result<IncrementalAnonymizer> inc =
      IncrementalAnonymizer::Build(db, gen.extent(), k, DpOptions{});
  ASSERT_TRUE(inc.ok());

  for (int snapshot = 0; snapshot < 3; ++snapshot) {
    MovementOptions movement;
    movement.moving_fraction = 0.02;
    movement.max_distance = 200.0;
    movement.seed = 1000 + static_cast<uint64_t>(snapshot);
    const std::vector<UserMove> moves = DrawMoves(db, gen.extent(), movement);
    ASSERT_TRUE(inc->ApplyMoves(moves).ok());
    ASSERT_TRUE(ApplyMovesToDatabase(moves, &db).ok());

    Result<ExtractedPolicy> policy = inc->ExtractPolicy();
    ASSERT_TRUE(policy.ok());
    EXPECT_TRUE(policy->table.IsMasking(db));
    EXPECT_TRUE(AuditPolicyAware(policy->table).Anonymous(k));

    // Matches a from-scratch rebuild on the advanced snapshot.
    AnonymizerOptions options;
    options.k = k;
    Result<Anonymizer> fresh = Anonymizer::Build(db, gen.extent(), options);
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(policy->table.TotalCost(), fresh->cost());
  }
}

}  // namespace
}  // namespace pasa
