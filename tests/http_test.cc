// Parser tests for the admin-plane HTTP front end: golden requests, torn
// (byte-at-a-time) feeds, pipelining, and the hostile inputs a public
// port sees — oversized heads, bodies, garbage request lines, wrong HTTP
// versions. Parse errors must be terminal for the stream and suggest the
// right 4xx/5xx status.

#include "net/http.h"

#include <gtest/gtest.h>

#include <string>

namespace pasa {
namespace net {
namespace {

// Feeds the whole string at once and expects exactly one parsed request.
HttpRequest ParseOne(const std::string& bytes) {
  HttpParser parser;
  parser.Feed(bytes.data(), bytes.size());
  HttpRequest request;
  Status error;
  EXPECT_EQ(parser.Next(&request, &error), HttpParser::Poll::kRequest)
      << error.ToString();
  return request;
}

TEST(HttpParserTest, ParsesGoldenGet) {
  const HttpRequest r = ParseOne(
      "GET /profile?seconds=2&fmt=folded+text HTTP/1.1\r\n"
      "Host: localhost:9100\r\n"
      "User-Agent: prometheus/2.0\r\n"
      "\r\n");
  EXPECT_EQ(r.method, "GET");
  EXPECT_EQ(r.target, "/profile?seconds=2&fmt=folded+text");
  EXPECT_EQ(r.path, "/profile");
  EXPECT_EQ(r.minor_version, 1);
  ASSERT_EQ(r.query.count("seconds"), 1u);
  EXPECT_EQ(r.query.at("seconds"), "2");
  EXPECT_EQ(r.query.at("fmt"), "folded text");  // '+' decodes to space
  ASSERT_EQ(r.headers.count("host"), 1u);       // names lower-cased
  EXPECT_EQ(r.headers.at("host"), "localhost:9100");
  EXPECT_EQ(r.headers.at("user-agent"), "prometheus/2.0");
  EXPECT_TRUE(r.keep_alive);  // HTTP/1.1 default
}

TEST(HttpParserTest, KeepAliveFollowsVersionAndConnectionHeader) {
  EXPECT_TRUE(ParseOne("GET / HTTP/1.1\r\n\r\n").keep_alive);
  EXPECT_FALSE(ParseOne("GET / HTTP/1.0\r\n\r\n").keep_alive);
  EXPECT_FALSE(
      ParseOne("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive);
  EXPECT_TRUE(
      ParseOne("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive);
}

TEST(HttpParserTest, TornFeedsReassembleToTheSameRequest) {
  const std::string bytes =
      "GET /metrics HTTP/1.1\r\nHost: a\r\nAccept: text/plain\r\n\r\n";
  HttpParser parser;
  HttpRequest request;
  Status error;
  // Feed one byte at a time: every prefix must report kNeedMore, the full
  // head exactly one request.
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    parser.Feed(&bytes[i], 1);
    EXPECT_EQ(parser.Next(&request, &error), HttpParser::Poll::kNeedMore);
  }
  parser.Feed(&bytes[bytes.size() - 1], 1);
  ASSERT_EQ(parser.Next(&request, &error), HttpParser::Poll::kRequest);
  EXPECT_EQ(request.path, "/metrics");
  EXPECT_EQ(request.headers.at("accept"), "text/plain");
  EXPECT_EQ(parser.Next(&request, &error), HttpParser::Poll::kNeedMore);
}

TEST(HttpParserTest, PipelinedRequestsParseInOrder) {
  const std::string bytes =
      "GET /healthz HTTP/1.1\r\n\r\n"
      "GET /metrics HTTP/1.1\r\n\r\n"
      "HEAD /slo HTTP/1.1\r\n\r\n";
  HttpParser parser;
  parser.Feed(bytes.data(), bytes.size());
  HttpRequest request;
  Status error;
  ASSERT_EQ(parser.Next(&request, &error), HttpParser::Poll::kRequest);
  EXPECT_EQ(request.path, "/healthz");
  ASSERT_EQ(parser.Next(&request, &error), HttpParser::Poll::kRequest);
  EXPECT_EQ(request.path, "/metrics");
  ASSERT_EQ(parser.Next(&request, &error), HttpParser::Poll::kRequest);
  EXPECT_EQ(request.method, "HEAD");
  EXPECT_EQ(request.path, "/slo");
  EXPECT_EQ(parser.Next(&request, &error), HttpParser::Poll::kNeedMore);
}

// Asserts that `bytes` breaks the stream with the given suggested status,
// and that the error is terminal: every further Next stays kError.
void ExpectTerminalError(const std::string& bytes, int http_status) {
  HttpParser parser;
  parser.Feed(bytes.data(), bytes.size());
  HttpRequest request;
  Status error;
  ASSERT_EQ(parser.Next(&request, &error), HttpParser::Poll::kError);
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(parser.http_status(), http_status) << error.ToString();
  // Feeding a perfectly valid request afterwards must not resurrect the
  // stream — the byte boundary is lost.
  const std::string good = "GET / HTTP/1.1\r\n\r\n";
  parser.Feed(good.data(), good.size());
  EXPECT_EQ(parser.Next(&request, &error), HttpParser::Poll::kError);
}

TEST(HttpParserTest, GarbageRequestLineIs400) {
  ExpectTerminalError("\xFF\xFE garbage bytes\r\n\r\n", 400);
  ExpectTerminalError("GET\r\n\r\n", 400);  // no target/version
}

TEST(HttpParserTest, MalformedHeaderIs400) {
  ExpectTerminalError("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n", 400);
}

TEST(HttpParserTest, WrongHttpVersionIs505) {
  ExpectTerminalError("GET / HTTP/2.0\r\n\r\n", 505);
  ExpectTerminalError("GET / HTTP/0.9\r\n\r\n", 505);
  ExpectTerminalError("GET /x NOTHTTP\r\n\r\n", 505);  // bad version token
}

TEST(HttpParserTest, RequestBodyIs413) {
  ExpectTerminalError(
      "POST /metrics HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello", 413);
}

TEST(HttpParserTest, OversizedHeadIs431) {
  std::string huge = "GET / HTTP/1.1\r\n";
  huge += "X-Filler: " + std::string(9000, 'a') + "\r\n\r\n";
  ExpectTerminalError(huge, 431);
}

TEST(HttpParserTest, OversizedHeadRejectedEvenWithoutTerminator) {
  // A peer that streams an endless request line must be cut off at the
  // limit, not buffered forever.
  HttpParser parser;
  const std::string endless(HttpParserLimits{}.max_head_bytes + 1, 'A');
  parser.Feed(endless.data(), endless.size());
  HttpRequest request;
  Status error;
  ASSERT_EQ(parser.Next(&request, &error), HttpParser::Poll::kError);
  EXPECT_EQ(parser.http_status(), 431);
}

TEST(HttpUtilTest, UrlDecode) {
  EXPECT_EQ(UrlDecode("%41%42c"), "ABc");
  EXPECT_EQ(UrlDecode("a+b"), "a b");
  EXPECT_EQ(UrlDecode("100%25"), "100%");
  EXPECT_EQ(UrlDecode("%4"), "%4");    // truncated escape kept verbatim
  EXPECT_EQ(UrlDecode("%zz"), "%zz");  // bad hex kept verbatim
}

TEST(HttpResponseTest, EncodeCarriesStatusLengthAndConnection) {
  const std::string ok =
      EncodeHttpResponse(200, "text/plain", "hello\n", /*keep_alive=*/true);
  EXPECT_EQ(ok.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(ok.find("Content-Length: 6\r\n"), std::string::npos);
  EXPECT_NE(ok.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(ok.substr(ok.size() - 6), "hello\n");

  const std::string gone =
      EncodeHttpResponse(404, "text/plain", "nope\n", /*keep_alive=*/false);
  EXPECT_EQ(gone.rfind("HTTP/1.1 404 Not Found\r\n", 0), 0u);
  EXPECT_NE(gone.find("Connection: close\r\n"), std::string::npos);
}

TEST(HttpResponseTest, HeadOmitsBodyButKeepsContentLength) {
  const std::string head = EncodeHttpResponse(200, "text/plain", "hello\n",
                                              /*keep_alive=*/true,
                                              /*head_only=*/true);
  EXPECT_NE(head.find("Content-Length: 6\r\n"), std::string::npos);
  EXPECT_EQ(head.substr(head.size() - 4), "\r\n\r\n");  // no body bytes
}

}  // namespace
}  // namespace net
}  // namespace pasa
