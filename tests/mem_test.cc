// Unit tests for the memory accounting layer (obs/mem.h): the per-subsystem
// MemCounter, the global MemoryAccountant, the RAII / allocator charging
// paths, the byte-estimation helpers, and the export surfaces (Prometheus
// gauges, the GET /memory JSON document, the memstats table).

#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/export.h"
#include "obs/json.h"
#include "obs/mem.h"
#include "obs/metrics.h"

namespace pasa {
namespace obs {
namespace {

// The accountant is process-global and registrations are permanent, so
// every test zeroes it and uses targeted lookups rather than asserting on
// the full registration set.
class MemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Configure(ObsOptions{.enabled = true});
    MetricsRegistry::Global().Reset();
    MemoryAccountant::Global().Reset();
    MemoryAccountant::Global().Disable();
  }
  void TearDown() override {
    MemoryAccountant::Global().Reset();
    MemoryAccountant::Global().Disable();
    Configure(ObsOptions{.enabled = true});
  }
};

TEST_F(MemTest, MemCounterAddSetClampReset) {
  MemCounter counter;
  EXPECT_EQ(counter.bytes(), 0u);
  counter.Add(100);
  counter.Add(-40);
  EXPECT_EQ(counter.bytes(), 60u);
  // Unbalanced releases (toggle races) clamp at zero on read instead of
  // wrapping to a huge unsigned value.
  counter.Add(-100);
  EXPECT_EQ(counter.bytes(), 0u);
  // ...but the debt is remembered so a late balancing charge re-balances.
  counter.Add(40);
  EXPECT_EQ(counter.bytes(), 0u);
  counter.Set(4096);
  EXPECT_EQ(counter.bytes(), 4096u);
  counter.Reset();
  EXPECT_EQ(counter.bytes(), 0u);
}

TEST_F(MemTest, MemCounterIsExactUnderConcurrency) {
  MemCounter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add(3);
        counter.Add(-1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.bytes(),
            static_cast<uint64_t>(kThreads * kPerThread * 2));
}

TEST_F(MemTest, AccountantGetCounterReturnsStableReference) {
  MemoryAccountant& accountant = MemoryAccountant::Global();
  MemCounter& a = accountant.GetCounter("mem_test/stable");
  MemCounter& b = accountant.GetCounter("mem_test/stable");
  EXPECT_EQ(&a, &b);
  a.Set(7);
  EXPECT_EQ(accountant.Snapshot().at("mem_test/stable"), 7u);
}

TEST_F(MemTest, AccountantSnapshotTotalAndReset) {
  MemoryAccountant& accountant = MemoryAccountant::Global();
  accountant.GetCounter("mem_test/a").Set(100);
  accountant.GetCounter("mem_test/b").Set(200);
  const auto snapshot = accountant.Snapshot();
  EXPECT_EQ(snapshot.at("mem_test/a"), 100u);
  EXPECT_EQ(snapshot.at("mem_test/b"), 200u);
  EXPECT_GE(accountant.TotalBytes(), 300u);
  accountant.Reset();
  // Registrations (and cached references) survive a reset; bytes zero.
  EXPECT_EQ(accountant.Snapshot().at("mem_test/a"), 0u);
  EXPECT_EQ(accountant.TotalBytes(), 0u);
}

TEST_F(MemTest, EnableDisableDrivesTheDisarmedHook) {
  MemoryAccountant& accountant = MemoryAccountant::Global();
  EXPECT_FALSE(MemoryAccounting());
  accountant.Enable();
  EXPECT_TRUE(MemoryAccounting());
  accountant.Disable();
  EXPECT_FALSE(MemoryAccounting());
}

TEST_F(MemTest, ScopedAllocTrackerChargesAndReleases) {
  MemCounter counter;
  {
    ScopedAllocTracker tracker(&counter, 128);
    EXPECT_EQ(counter.bytes(), 128u);
    EXPECT_EQ(tracker.charged(), 128u);
    tracker.Update(512);  // re-charge in place, not additive
    EXPECT_EQ(counter.bytes(), 512u);
    tracker.Update(64);
    EXPECT_EQ(counter.bytes(), 64u);
  }
  EXPECT_EQ(counter.bytes(), 0u);  // destructor releases the residue
}

TEST_F(MemTest, ScopedAllocTrackerMoveTransfersTheCharge) {
  MemCounter counter;
  ScopedAllocTracker outer;
  {
    ScopedAllocTracker inner(&counter, 256);
    outer = std::move(inner);
    // `inner` is disarmed by the move: its destructor releases nothing.
  }
  EXPECT_EQ(counter.bytes(), 256u);
  EXPECT_EQ(outer.charged(), 256u);
  outer.Release();
  EXPECT_EQ(counter.bytes(), 0u);
}

TEST_F(MemTest, AccountingAllocatorTracksContainerHeap) {
  MemCounter counter;
  {
    std::deque<int, AccountingAllocator<int>> q{
        AccountingAllocator<int>(&counter)};
    for (int i = 0; i < 10'000; ++i) q.push_back(i);
    EXPECT_GE(counter.bytes(), 10'000u * sizeof(int));
    // A rebound copy (what node containers do internally) shares the
    // counter and compares equal.
    const AccountingAllocator<long> rebound(q.get_allocator());
    EXPECT_EQ(rebound.counter(), q.get_allocator().counter());
    EXPECT_TRUE(rebound == q.get_allocator());
  }
  // Every allocation was matched by a deallocation.
  EXPECT_EQ(counter.bytes(), 0u);
}

TEST_F(MemTest, AccountingAllocatorChargesRegardlessOfEnableToggle) {
  MemCounter counter;
  std::deque<int, AccountingAllocator<int>> q{
      AccountingAllocator<int>(&counter)};
  // Disabled accountant: charges still land (Add is unconditional) so the
  // release after a mid-flight Enable cannot underflow.
  MemoryAccountant::Global().Disable();
  for (int i = 0; i < 1000; ++i) q.push_back(i);
  MemoryAccountant::Global().Enable();
  const uint64_t charged = counter.bytes();
  EXPECT_GT(charged, 0u);
  q.clear();
  q.shrink_to_fit();
  EXPECT_LE(counter.bytes(), charged);
}

TEST_F(MemTest, StringApproxBytesIsSsoAware) {
  std::string small = "tiny";
  EXPECT_EQ(StringApproxBytes(small), 0u);  // inline buffer, no heap
  std::string big(100, 'x');
  EXPECT_EQ(StringApproxBytes(big), big.capacity() + 1);
}

TEST_F(MemTest, VectorApproxBytesUsesCapacity) {
  std::vector<uint64_t> v;
  v.reserve(32);
  v.push_back(1);
  EXPECT_EQ(VectorApproxBytes(v), v.capacity() * sizeof(uint64_t));
}

TEST_F(MemTest, ExportJsonCarriesTotalsUsersAndSubsystems) {
  MemoryAccountant& accountant = MemoryAccountant::Global();
  accountant.GetCounter("mem_test/json").Set(1024);
  const std::string text = accountant.ExportJson(/*users=*/512);
  const Result<json::Value> doc = json::Parse(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(doc->is_object());
  const json::Value* total = doc->Find("total_bytes");
  ASSERT_NE(total, nullptr);
  EXPECT_GE(total->number(), 1024.0);
  const json::Value* users = doc->Find("users");
  ASSERT_NE(users, nullptr);
  EXPECT_EQ(users->number(), 512.0);
  ASSERT_NE(doc->Find("bytes_per_user"), nullptr);
  const json::Value* subsystems = doc->Find("subsystems");
  ASSERT_NE(subsystems, nullptr);
  ASSERT_TRUE(subsystems->is_object());
  const json::Value* entry = subsystems->Find("mem_test/json");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->number(), 1024.0);
}

TEST_F(MemTest, SummaryTableSortsByBytesAndEndsWithTotal) {
  MemoryAccountant& accountant = MemoryAccountant::Global();
  accountant.GetCounter("mem_test/small").Set(10);
  accountant.GetCounter("mem_test/large").Set(1'000'000);
  const std::string table = accountant.SummaryTable();
  const size_t large_pos = table.find("mem_test/large");
  const size_t small_pos = table.find("mem_test/small");
  const size_t total_pos = table.rfind("total");
  ASSERT_NE(large_pos, std::string::npos);
  ASSERT_NE(small_pos, std::string::npos);
  ASSERT_NE(total_pos, std::string::npos);
  EXPECT_LT(large_pos, small_pos);  // bytes-descending
  EXPECT_GT(total_pos, small_pos);  // roll-up row last
}

TEST_F(MemTest, PublishGaugesExportsLabeledPrometheusFamily) {
  MemoryAccountant& accountant = MemoryAccountant::Global();
  accountant.GetCounter("mem_test/gauge").Set(2048);
  accountant.PublishGauges(MetricsRegistry::Global());
  const std::string text =
      ExportPrometheus(MetricsRegistry::Global().Snapshot());
  EXPECT_NE(text.find("pasa_mem_bytes{subsystem=\"mem_test/gauge\"} 2048"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("pasa_mem_total_bytes"), std::string::npos);
  const Status format = CheckPrometheusText(text);
  EXPECT_TRUE(format.ok()) << format.ToString();
}

}  // namespace
}  // namespace obs
}  // namespace pasa
