// Consolidated edge-case coverage across modules: degenerate extents, depth
// caps, empty inputs, argument validation, and unusual-but-legal configs.

#include <gtest/gtest.h>

#include "index/binary_tree.h"
#include "index/morton.h"
#include "index/quad_tree.h"
#include "lbs/poi.h"
#include "parallel/runner.h"
#include "pasa/anonymizer.h"
#include "policies/k_sharing.h"
#include "tests/test_util.h"
#include "workload/bay_area.h"

namespace pasa {
namespace {

using testing_util::MakeDb;
using testing_util::RandomDb;

TEST(EdgeMorton, SingleCellMap) {
  const LocationDatabase db = MakeDb({{5, 5}, {5, 5}});
  const MapExtent extent{5, 5, 0};  // 1x1 map at offset (5,5)
  Result<MortonIndex> index = MortonIndex::Build(db, extent);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->max_depth(), 0);
  EXPECT_EQ(index->CountQuadrant(QuadPath{0, 0}), 2u);
  EXPECT_EQ(index->RegionOf(QuadPath{0, 0}), (Rect{5, 5, 6, 6}));
}

TEST(EdgeMorton, OffsetOriginsWork) {
  const LocationDatabase db = MakeDb({{-100, -200}, {-97, -199}});
  Result<MapExtent> extent = MapExtent::Covering(db.BoundingBox());
  ASSERT_TRUE(extent.ok());
  Result<MortonIndex> index = MortonIndex::Build(db, *extent);
  ASSERT_TRUE(index.ok());
  for (const auto& row : db.rows()) {
    const QuadPath leaf = index->PathForPoint(row.location,
                                              index->max_depth());
    EXPECT_TRUE(index->RegionOf(leaf).Contains(row.location));
  }
}

TEST(EdgeTree, MaxDepthCapsMaterialization) {
  Rng rng(1);
  const MapExtent extent{0, 0, 8};
  const LocationDatabase db = RandomDb(&rng, 500, extent);
  TreeOptions options;
  options.split_threshold = 2;
  options.max_depth = 4;
  Result<BinaryTree> tree = BinaryTree::Build(db, extent, options);
  ASSERT_TRUE(tree.ok());
  EXPECT_LE(tree->Height(), 4);
  // The DP still produces a valid policy on the truncated tree.
  Result<DpMatrix> matrix = ComputeDpMatrix(*tree, 2, DpOptions{});
  ASSERT_TRUE(matrix.ok());
  Result<ExtractedPolicy> policy = ExtractOptimalPolicy(*tree, *matrix, 2);
  ASSERT_TRUE(policy.ok());
  EXPECT_TRUE(policy->table.IsMasking(db));
  EXPECT_GE(policy->table.MinGroupSize(), 2u);
}

TEST(EdgeTree, ZeroThresholdRejected) {
  const LocationDatabase db = MakeDb({{0, 0}});
  TreeOptions options;
  options.split_threshold = 0;
  EXPECT_FALSE(BinaryTree::Build(db, MapExtent{0, 0, 2}, options).ok());
  EXPECT_FALSE(QuadTree::Build(db, MapExtent{0, 0, 2}, options).ok());
}

TEST(EdgeTree, PointsOutsideExtentRejected) {
  const LocationDatabase db = MakeDb({{100, 100}});
  TreeOptions options;
  EXPECT_FALSE(BinaryTree::Build(db, MapExtent{0, 0, 3}, options).ok());
  EXPECT_FALSE(QuadTree::Build(db, MapExtent{0, 0, 3}, options).ok());
}

TEST(EdgeParallel, ZeroJurisdictionsRejected) {
  Rng rng(2);
  const MapExtent extent{0, 0, 4};
  const LocationDatabase db = RandomDb(&rng, 50, extent);
  ParallelRunOptions options;
  options.k = 5;
  options.num_jurisdictions = 0;
  EXPECT_EQ(RunPartitioned(db, extent, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EdgeParallel, MoreJurisdictionsThanGroups) {
  // 12 users, k=5: at most 2 groups can exist; asking for 64 jurisdictions
  // must degrade gracefully and stay optimal.
  Rng rng(3);
  const MapExtent extent{0, 0, 4};
  const LocationDatabase db = RandomDb(&rng, 12, extent);
  ParallelRunOptions options;
  options.k = 5;
  options.num_jurisdictions = 64;
  Result<ParallelRunReport> report = RunPartitioned(db, extent, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->master_table.IsMasking(db));
  EXPECT_GE(report->master_table.MinGroupSize(), 5u);
}

TEST(EdgeKSharing, DuplicateArrivalsAndFullOrder) {
  const LocationDatabase db = MakeDb({{0, 0}, {2, 0}, {5, 0}, {9, 0}});
  const KSharingPolicy policy(2);
  // Duplicate arrivals are idempotent; a full order cloaks everybody.
  Result<CloakingTable> table = policy.CloakInOrder(db, {0, 0, 1, 2, 3});
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->IsMasking(db));
  EXPECT_GE(table->MinGroupSize(), 2u);
  EXPECT_FALSE(policy.CloakInOrder(db, {17}).ok());  // out of range
}

TEST(EdgeKSharing, BelowK) {
  const LocationDatabase db = MakeDb({{0, 0}});
  EXPECT_EQ(KSharingPolicy(2).CloakInOrder(db, {0}).status().code(),
            StatusCode::kInfeasible);
}

TEST(EdgePoi, CustomCellSizeAndSinglePoi) {
  PoiDatabase db({{1, {50, 50}, "rest"}}, /*cell_size=*/7);
  const auto hits = db.NearestToCloak(Rect{0, 0, 10, 10}, "rest", 3);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 1);
}

TEST(EdgeWorkload, ZeroUsers) {
  BayAreaOptions options;
  options.log2_map_side = 10;
  options.num_intersections = 10;
  options.users_per_intersection = 2;
  const BayAreaGenerator gen(options);
  EXPECT_TRUE(gen.Generate(0).empty());
  EXPECT_TRUE(BayAreaGenerator::Sample(gen.Generate(50), 0, 1).empty());
}

TEST(EdgeAnonymizer, EmptySnapshotWithDerivedExtentFails) {
  // An empty snapshot has no bounding box to derive an extent from.
  AnonymizerOptions options;
  options.k = 1;
  EXPECT_FALSE(Anonymizer::Build(LocationDatabase(), options).ok());
  // With an explicit extent it succeeds trivially.
  Result<Anonymizer> a =
      Anonymizer::Build(LocationDatabase(), MapExtent{0, 0, 3}, options);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->cost(), 0);
}

TEST(EdgeAnonymizer, NegativeCoordinates) {
  const LocationDatabase db =
      MakeDb({{-8, -8}, {-7, -8}, {-8, -7}, {-1, -1}});
  AnonymizerOptions options;
  options.k = 2;
  Result<Anonymizer> a = Anonymizer::Build(db, options);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_TRUE(a->policy().IsMasking(db));
  EXPECT_GE(a->policy().MinGroupSize(), 2u);
}

}  // namespace
}  // namespace pasa
