// Tests for the adaptive split-orientation extension: the balance-driven
// cut choice preserves every structural and privacy invariant, stays
// deterministic, and cooperates with incremental maintenance.

#include <gtest/gtest.h>

#include "attack/auditor.h"
#include "pasa/anonymizer.h"
#include "pasa/incremental.h"
#include "tests/test_util.h"
#include "workload/bay_area.h"
#include "workload/movement.h"

namespace pasa {
namespace {

using testing_util::MakeDb;
using testing_util::RandomDb;

TreeOptions AdaptiveOptions(int k) {
  TreeOptions options;
  options.split_threshold = k;
  options.orientation = SplitOrientation::kAdaptive;
  return options;
}

TEST(AdaptiveOrientation, HorizontalCutChosenForHorizontalImbalance) {
  // All users in the southern half, spread evenly east-west: a horizontal
  // cut is perfectly balanced... actually the adaptive rule picks the MOST
  // balanced cut; east-west spread is even, south-north is maximally
  // unbalanced, so the vertical cut wins. Flip the layout to force the
  // horizontal choice: all users west, spread evenly south-north.
  std::vector<Point> points;
  for (Coord y = 0; y < 8; ++y) points.push_back({1, y});
  const LocationDatabase db = MakeDb(points);
  Result<BinaryTree> tree =
      BinaryTree::Build(db, MapExtent{0, 0, 3}, AdaptiveOptions(2));
  ASSERT_TRUE(tree.ok());
  // Root splits horizontally (south/north), since that cut is balanced 4/4
  // while the vertical cut would be 8/0.
  const int32_t first = tree->node(BinaryTree::kRootId).first_child;
  ASSERT_GE(first, 0);
  EXPECT_EQ(tree->node(first).kind, BinaryTree::NodeKind::kHorizontalSemi);
  EXPECT_EQ(tree->node(first).region, (Rect{0, 0, 8, 4}));
  EXPECT_EQ(tree->node(first + 1).region, (Rect{0, 4, 8, 8}));
}

TEST(AdaptiveOrientation, VerticalPreferredOnTies) {
  std::vector<Point> points = {{0, 0}, {7, 7}, {0, 7}, {7, 0}};
  const LocationDatabase db = MakeDb(points);
  Result<BinaryTree> tree =
      BinaryTree::Build(db, MapExtent{0, 0, 3}, AdaptiveOptions(2));
  ASSERT_TRUE(tree.ok());
  const int32_t first = tree->node(BinaryTree::kRootId).first_child;
  ASSERT_GE(first, 0);
  EXPECT_EQ(tree->node(first).kind, BinaryTree::NodeKind::kVerticalSemi);
}

TEST(AdaptiveOrientation, TreeInvariantsHold) {
  Rng rng(1);
  const MapExtent extent{0, 0, 6};
  const LocationDatabase db = RandomDb(&rng, 400, extent);
  Result<BinaryTree> tree = BinaryTree::Build(db, extent, AdaptiveOptions(7));
  ASSERT_TRUE(tree.ok());
  // Children exactly cover their parent; counts consistent; every point in
  // exactly one leaf.
  size_t leaf_users = 0;
  for (size_t i = 0; i < tree->num_nodes(); ++i) {
    const BinaryTree::Node& n = tree->node(static_cast<int32_t>(i));
    if (!n.live) continue;
    EXPECT_EQ(n.count, db.CountInside(n.region));
    if (n.IsLeaf()) {
      leaf_users += n.count;
    } else {
      const Rect& a = tree->node(n.first_child).region;
      const Rect& b = tree->node(n.first_child + 1).region;
      EXPECT_FALSE(a.Intersects(b));
      EXPECT_EQ(a.Area() + b.Area(), n.region.Area());
    }
  }
  EXPECT_EQ(leaf_users, db.size());
}

TEST(AdaptiveOrientation, OptimalPolicyOnAdaptiveTreeIsValid) {
  BayAreaOptions bay;
  bay.log2_map_side = 12;
  bay.num_intersections = 400;
  bay.users_per_intersection = 5;
  bay.user_sigma = 30.0;
  bay.num_clusters = 6;
  bay.seed = 5;
  const BayAreaGenerator generator(bay);
  const LocationDatabase db = generator.Generate(2000);
  const int k = 20;

  AnonymizerOptions adaptive;
  adaptive.k = k;
  adaptive.orientation = SplitOrientation::kAdaptive;
  Result<Anonymizer> a = Anonymizer::Build(db, generator.extent(), adaptive);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->policy().IsMasking(db));
  EXPECT_TRUE(AuditPolicyAware(a->policy()).Anonymous(k));
  EXPECT_TRUE(SatisfiesKSummation(a->tree(), a->config(), k));

  // Deterministic.
  Result<Anonymizer> b = Anonymizer::Build(db, generator.extent(), adaptive);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->cost(), b->cost());

  // Informative (not guaranteed): on skewed data the adaptive cut usually
  // wins. Record both costs so regressions in either mode are visible.
  AnonymizerOptions fixed;
  fixed.k = k;
  Result<Anonymizer> v = Anonymizer::Build(db, generator.extent(), fixed);
  ASSERT_TRUE(v.ok());
  RecordProperty("adaptive_cost", std::to_string(a->cost()));
  RecordProperty("vertical_cost", std::to_string(v->cost()));
  EXPECT_GT(a->cost(), 0);
}

TEST(AdaptiveOrientation, ApplyMoveKeepsPartitionAndOptimality) {
  // Under kAdaptive, surviving internal nodes keep the orientation chosen
  // when they were split, so the mutated tree may legitimately differ in
  // shape from a fresh build (documented drift). What must hold: the tree
  // still partitions the map with exact counts, and the DP over it yields a
  // valid k-anonymous optimal-for-this-tree policy.
  Rng rng(6);
  const MapExtent extent{0, 0, 5};
  LocationDatabase db = RandomDb(&rng, 150, extent);
  const int k = 5;

  Result<BinaryTree> tree = BinaryTree::Build(db, extent, AdaptiveOptions(k));
  ASSERT_TRUE(tree.ok());
  for (int round = 0; round < 25; ++round) {
    const uint32_t row = static_cast<uint32_t>(rng.NextBounded(db.size()));
    const Point from = db.row(row).location;
    const Point to{static_cast<Coord>(rng.NextBounded(extent.side())),
                   static_cast<Coord>(rng.NextBounded(extent.side()))};
    std::vector<int32_t> dirty;
    ASSERT_TRUE(tree->ApplyMove(row, from, to, &dirty).ok());
    ASSERT_TRUE(db.MoveUser(db.row(row).user, to).ok());
  }
  size_t leaf_users = 0;
  for (size_t i = 0; i < tree->num_nodes(); ++i) {
    const BinaryTree::Node& n = tree->node(static_cast<int32_t>(i));
    if (!n.live) continue;
    EXPECT_EQ(n.count, db.CountInside(n.region));
    if (n.IsLeaf()) leaf_users += n.count;
  }
  EXPECT_EQ(leaf_users, db.size());

  Result<DpMatrix> matrix = ComputeDpMatrix(*tree, k, DpOptions{});
  ASSERT_TRUE(matrix.ok());
  Result<ExtractedPolicy> policy = ExtractOptimalPolicy(*tree, *matrix, k);
  ASSERT_TRUE(policy.ok());
  EXPECT_TRUE(policy->table.IsMasking(db));
  EXPECT_GE(policy->table.MinGroupSize(), static_cast<size_t>(k));
}

}  // namespace
}  // namespace pasa
