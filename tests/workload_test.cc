// Tests for the synthetic workload substrate: the Bay-Area-style generator,
// the movement model, and the request generator.

#include <gtest/gtest.h>

#include <cmath>

#include "workload/bay_area.h"
#include "workload/movement.h"
#include "workload/requests.h"

namespace pasa {
namespace {

BayAreaOptions SmallOptions() {
  BayAreaOptions options;
  options.log2_map_side = 12;  // 4 km toy map
  options.num_intersections = 500;
  options.users_per_intersection = 4;
  options.user_sigma = 30.0;
  options.num_clusters = 8;
  options.seed = 42;
  return options;
}

TEST(BayAreaTest, GeneratesRequestedSizeInsideExtent) {
  const BayAreaGenerator gen(SmallOptions());
  const LocationDatabase db = gen.Generate(1000);
  EXPECT_EQ(db.size(), 1000u);
  const Rect map = gen.extent().ToRect();
  for (const auto& row : db.rows()) {
    EXPECT_TRUE(map.Contains(row.location));
  }
}

TEST(BayAreaTest, MasterSizeMatchesIntersectionsTimesUsers) {
  BayAreaOptions options = SmallOptions();
  options.num_intersections = 100;
  options.users_per_intersection = 7;
  const LocationDatabase db = BayAreaGenerator(options).GenerateMaster();
  EXPECT_EQ(db.size(), 700u);
}

TEST(BayAreaTest, DeterministicPerSeedAndDistinctAcrossSeeds) {
  const BayAreaGenerator a(SmallOptions());
  const LocationDatabase d1 = a.Generate(300);
  const LocationDatabase d2 = a.Generate(300);
  ASSERT_EQ(d1.size(), d2.size());
  for (size_t i = 0; i < d1.size(); ++i) {
    EXPECT_EQ(d1.row(i).location, d2.row(i).location);
  }
  BayAreaOptions other = SmallOptions();
  other.seed = 43;
  const LocationDatabase d3 = BayAreaGenerator(other).Generate(300);
  bool differs = false;
  for (size_t i = 0; i < d1.size(); ++i) {
    if (!(d1.row(i).location == d3.row(i).location)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(BayAreaTest, DensityIsSkewed) {
  // The cluster mixture must produce strong skew: the most-populated map
  // quadrant should hold far more than the uniform 25% share.
  const BayAreaGenerator gen(SmallOptions());
  const LocationDatabase db = gen.Generate(4000);
  const Rect map = gen.extent().ToRect();
  size_t best = 0;
  for (int q = 0; q < 4; ++q) {
    best = std::max(best, db.CountInside(map.Quadrant(q)));
  }
  EXPECT_GT(best, db.size() * 35 / 100)
      << "expected a dominant quadrant, got max share "
      << (100.0 * static_cast<double>(best) / static_cast<double>(db.size()))
      << "%";
}

TEST(BayAreaTest, SampleDrawsDistinctRowsWithDenseIds) {
  const BayAreaGenerator gen(SmallOptions());
  const LocationDatabase master = gen.Generate(2000);
  const LocationDatabase sample = BayAreaGenerator::Sample(master, 500, 7);
  EXPECT_EQ(sample.size(), 500u);
  for (size_t i = 0; i < sample.size(); ++i) {
    EXPECT_EQ(sample.row(i).user, static_cast<UserId>(i));
  }
  // Oversampling clamps to the master size.
  EXPECT_EQ(BayAreaGenerator::Sample(master, 99999, 7).size(), 2000u);
}

TEST(MovementTest, MovesAreBoundedAndDistinct) {
  const BayAreaGenerator gen(SmallOptions());
  LocationDatabase db = gen.Generate(1000);
  MovementOptions options;
  options.moving_fraction = 0.2;
  options.max_distance = 50.0;
  options.seed = 3;
  const std::vector<UserMove> moves = DrawMoves(db, gen.extent(), options);
  EXPECT_EQ(moves.size(), 200u);
  std::set<uint32_t> rows;
  for (const UserMove& m : moves) {
    rows.insert(m.row);
    EXPECT_EQ(m.from, db.row(m.row).location);
    const double dist =
        std::sqrt(static_cast<double>(SquaredDistance(m.from, m.to)));
    EXPECT_LE(dist, options.max_distance + 1.5);  // rounding slack
    EXPECT_TRUE(gen.extent().ToRect().Contains(m.to));
  }
  EXPECT_EQ(rows.size(), moves.size());  // distinct movers

  ASSERT_TRUE(ApplyMovesToDatabase(moves, &db).ok());
  for (const UserMove& m : moves) {
    EXPECT_EQ(db.row(m.row).location, m.to);
  }
}

TEST(MovementTest, ZeroFractionMovesNobody) {
  const BayAreaGenerator gen(SmallOptions());
  const LocationDatabase db = gen.Generate(100);
  MovementOptions options;
  options.moving_fraction = 0.0;
  EXPECT_TRUE(DrawMoves(db, gen.extent(), options).empty());
}

TEST(RequestsTest, DrawsValidRequests) {
  const BayAreaGenerator gen(SmallOptions());
  const LocationDatabase db = gen.Generate(500);
  RequestGenerator requests(5);
  const std::vector<ServiceRequest> batch = requests.Draw(db, 200);
  EXPECT_EQ(batch.size(), 200u);
  for (const ServiceRequest& sr : batch) {
    EXPECT_TRUE(IsValid(sr, db));
    EXPECT_EQ(sr.params.size(), 2u);
    EXPECT_EQ(sr.params[0].name, "poi");
    EXPECT_EQ(sr.params[1].name, "cat");
  }
}

TEST(RequestsTest, EmptySnapshotYieldsNoRequests) {
  RequestGenerator requests(5);
  EXPECT_TRUE(requests.Draw(LocationDatabase(), 10).empty());
}

}  // namespace
}  // namespace pasa
