// Unit tests for the windowed telemetry: the simulated clock, sliding
// histogram/rate slice rotation and expiry, quantile interpolation, and the
// WindowRegistry arming semantics.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/window.h"

namespace pasa {
namespace obs {
namespace {

// A 16-slice window over 16'000 us gives slices of exactly 1'000 us, which
// keeps the expiry arithmetic in the tests exact.
constexpr uint64_t kWindow = 16'000;
constexpr uint64_t kSlice = kWindow / kWindowSlices;

class WindowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimClock::Global().Reset();
    WindowRegistry::Global().Disable();
    WindowRegistry::Global().Reset();
  }
  void TearDown() override {
    SimClock::Global().Reset();
    WindowRegistry::Global().Disable();
    WindowRegistry::Global().Reset();
  }
};

TEST_F(WindowTest, SimClockAdvancesAndResets) {
  SimClock& clock = SimClock::Global();
  EXPECT_EQ(clock.now(), 0u);
  EXPECT_EQ(clock.Advance(250), 250u);
  EXPECT_EQ(clock.Advance(50), 300u);
  EXPECT_EQ(clock.now(), 300u);
  clock.Reset();
  EXPECT_EQ(clock.now(), 0u);
}

TEST_F(WindowTest, HistogramCountsOnlyTheCurrentWindow) {
  SlidingWindowHistogram h({1.0, 2.0, 5.0}, kWindow);
  h.Observe(0.5, /*now=*/0);
  h.Observe(1.5, /*now=*/kSlice);
  SlidingWindowHistogram::Stats stats = h.Snapshot(kSlice);
  EXPECT_EQ(stats.count, 2u);
  EXPECT_DOUBLE_EQ(stats.sum, 2.0);

  // A snapshot taken more than a window later sees nothing.
  stats = h.Snapshot(kSlice + 2 * kWindow);
  EXPECT_EQ(stats.count, 0u);
  EXPECT_DOUBLE_EQ(stats.sum, 0.0);
  EXPECT_DOUBLE_EQ(stats.p50, 0.0);
}

TEST_F(WindowTest, HistogramSliceReclaimDropsExpiredObservations) {
  SlidingWindowHistogram h({1.0}, kWindow);
  h.Observe(0.5, /*now=*/0);  // slice index 0
  // One full rotation later the same slot is reclaimed for a new epoch;
  // the old observation must not leak into the new tenancy.
  h.Observe(0.5, kWindow);  // slice index 16 -> same slot as index 0
  const SlidingWindowHistogram::Stats stats = h.Snapshot(kWindow);
  EXPECT_EQ(stats.count, 1u);
}

TEST_F(WindowTest, HistogramQuantilesInterpolateWithinBuckets) {
  SlidingWindowHistogram h({10.0, 20.0, 50.0}, kWindow);
  // 90 observations in (0,10], 10 in (10,20]: p50 lands mid-bucket-one,
  // p95 inside bucket two, p99 near its top.
  for (int i = 0; i < 90; ++i) h.Observe(5.0, 0);
  for (int i = 0; i < 10; ++i) h.Observe(15.0, 0);
  const SlidingWindowHistogram::Stats stats = h.Snapshot(0);
  EXPECT_EQ(stats.count, 100u);
  EXPECT_GT(stats.p50, 0.0);
  EXPECT_LE(stats.p50, 10.0);
  EXPECT_GT(stats.p95, 10.0);
  EXPECT_LE(stats.p95, 20.0);
  EXPECT_GE(stats.p99, stats.p95);
  EXPECT_LE(stats.p99, 20.0);
}

TEST_F(WindowTest, HistogramInfBucketReportsLargestBound) {
  SlidingWindowHistogram h({1.0, 2.0}, kWindow);
  h.Observe(99.0, 0);  // lands in +Inf, which has no finite upper edge
  const SlidingWindowHistogram::Stats stats = h.Snapshot(0);
  EXPECT_DOUBLE_EQ(stats.p50, 2.0);
  EXPECT_DOUBLE_EQ(stats.p99, 2.0);
}

TEST_F(WindowTest, RateSlidesGoodAndTotal) {
  SlidingWindowRate rate(kWindow);
  rate.Record(true, 0);
  rate.Record(true, 0);
  rate.Record(false, kSlice);
  SlidingWindowRate::Stats stats = rate.Snapshot(kSlice);
  EXPECT_EQ(stats.good, 2u);
  EXPECT_EQ(stats.total, 3u);
  EXPECT_DOUBLE_EQ(stats.rate, 2.0 / 3.0);

  // Advance until only the failure's slice is still in the window.
  stats = rate.Snapshot(kSlice + kWindow - kSlice);
  EXPECT_EQ(stats.good, 0u);
  EXPECT_EQ(stats.total, 1u);
  EXPECT_DOUBLE_EQ(stats.rate, 0.0);

  // Empty window: rate is 0, not NaN.
  stats = rate.Snapshot(10 * kWindow);
  EXPECT_EQ(stats.total, 0u);
  EXPECT_DOUBLE_EQ(stats.rate, 0.0);
}

TEST_F(WindowTest, RegistryIsDisarmedByDefaultAndGetOrCreates) {
  WindowRegistry& registry = WindowRegistry::Global();
  EXPECT_FALSE(registry.enabled());
  SlidingWindowHistogram& h =
      registry.GetHistogram("window_test/lat", {1.0, 2.0}, kWindow);
  // Same name returns the same instance; later arguments are ignored.
  EXPECT_EQ(&h, &registry.GetHistogram("window_test/lat", {99.0}, 1));
  EXPECT_EQ(h.upper_bounds(), (std::vector<double>{1.0, 2.0}));
  SlidingWindowRate& r = registry.GetRate("window_test/rate", kWindow);
  EXPECT_EQ(&r, &registry.GetRate("window_test/rate"));
}

TEST_F(WindowTest, RegistrySnapshotCoversAllWindows) {
  WindowRegistry& registry = WindowRegistry::Global();
  registry.Enable();
  EXPECT_TRUE(registry.enabled());
  registry.GetHistogram("window_test/snap_lat", {1.0}, kWindow)
      .Observe(0.5, 0);
  registry.GetRate("window_test/snap_rate", kWindow).Record(true, 0);
  const WindowSnapshot snapshot = registry.Snapshot(0);
  ASSERT_EQ(snapshot.histograms.count("window_test/snap_lat"), 1u);
  EXPECT_EQ(snapshot.histograms.at("window_test/snap_lat").count, 1u);
  EXPECT_EQ(snapshot.histograms.at("window_test/snap_lat").window_micros,
            kWindow);
  ASSERT_EQ(snapshot.rates.count("window_test/snap_rate"), 1u);
  EXPECT_EQ(snapshot.rates.at("window_test/snap_rate").good, 1u);

  registry.Reset();
  const WindowSnapshot after = registry.Snapshot(0);
  EXPECT_EQ(after.histograms.at("window_test/snap_lat").count, 0u);
  EXPECT_EQ(after.rates.at("window_test/snap_rate").total, 0u);
}

TEST_F(WindowTest, DefaultBoundsComeFromTheLatencyBuckets) {
  SlidingWindowHistogram h({}, kWindow);
  EXPECT_FALSE(h.upper_bounds().empty());
  EXPECT_EQ(h.window_micros(), kWindow);
}

}  // namespace
}  // namespace obs
}  // namespace pasa
