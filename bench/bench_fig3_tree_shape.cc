// Experiment E2 — Figure 3: shape of the lazily materialized binary tree on
// the Bay-Area workload (k = 50). The paper reports height ~20 for 1M users
// (never reaching 25 at 1.75M), no leaf above 50 users, and finer quadrants
// in denser areas.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"
#include "index/binary_tree.h"
#include "workload/bay_area.h"

int main() {
  using namespace pasa;
  using bench_util::PaperScaleOptions;
  using bench_util::Scaled;

  bench_util::PrintHeader(
      "Figure 3: binary tree structure on the Bay-Area workload (k = 50)");
  const BayAreaGenerator generator(PaperScaleOptions());
  const LocationDatabase master = generator.GenerateMaster();
  const int k = 50;

  TablePrinter table({"|D|", "live nodes", "leaves", "height",
                      "mean leaf depth", "max leaf occupancy", "build (s)"});
  for (const size_t n :
       {Scaled(100'000), Scaled(500'000), Scaled(1'000'000),
        Scaled(1'750'000)}) {
    const LocationDatabase db = BayAreaGenerator::Sample(master, n, 1);
    WallTimer timer;
    Result<BinaryTree> tree = BinaryTree::Build(
        db, generator.extent(), TreeOptions{.split_threshold = k});
    if (!tree.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   tree.status().ToString().c_str());
      return 1;
    }
    const double seconds = timer.ElapsedSeconds();
    const BinaryTree::ShapeStats stats = tree->ComputeShapeStats();
    table.AddRow({WithThousandsSeparators(static_cast<int64_t>(db.size())),
                  WithThousandsSeparators(static_cast<int64_t>(stats.live_nodes)),
                  WithThousandsSeparators(static_cast<int64_t>(stats.leaves)),
                  TablePrinter::Cell(static_cast<int64_t>(stats.height)),
                  TablePrinter::Cell(stats.mean_leaf_depth, 1),
                  TablePrinter::Cell(
                      static_cast<int64_t>(stats.max_leaf_occupancy)),
                  TablePrinter::Cell(seconds, 3)});
  }
  table.Print();

  // Figure 2 analog: ASCII density map of the synthetic workload (the
  // substitution for the paper's street-intersection data; the algorithms
  // care only about this skew).
  {
    const LocationDatabase db =
        BayAreaGenerator::Sample(master, Scaled(200'000), 11);
    constexpr int kGrid = 32;
    std::vector<size_t> counts(kGrid * kGrid, 0);
    const Coord cell = generator.extent().side() / kGrid;
    for (const auto& row : db.rows()) {
      const int gx = static_cast<int>(row.location.x / cell);
      const int gy = static_cast<int>(row.location.y / cell);
      ++counts[gy * kGrid + gx];
    }
    size_t max_count = 1;
    for (const size_t c : counts) max_count = std::max(max_count, c);
    const char shades[] = " .:-=+*#%@";
    std::printf("\npopulation density (cf. the paper's Figure 2):\n");
    for (int gy = kGrid - 1; gy >= 0; --gy) {
      std::fputs("  ", stdout);
      for (int gx = 0; gx < kGrid; ++gx) {
        // Log shading: population density spans orders of magnitude.
        const double t =
            std::log1p(static_cast<double>(counts[gy * kGrid + gx])) /
            std::log1p(static_cast<double>(max_count));
        const int shade =
            std::min(9, static_cast<int>(t * 9.0 + (t > 0.0 ? 0.999 : 0.0)));
        std::putchar(shades[shade]);
      }
      std::putchar('\n');
    }
  }

  // Density adaptivity (the Figure 3 gray-scale observation): leaf depth in
  // the densest map quadrant vs the sparsest.
  {
    const LocationDatabase db =
        BayAreaGenerator::Sample(master, Scaled(1'000'000), 1);
    Result<BinaryTree> tree = BinaryTree::Build(
        db, generator.extent(), TreeOptions{.split_threshold = k});
    if (!tree.ok()) return 1;
    const Rect map = generator.extent().ToRect();
    std::printf("\nleaf depth by map quadrant (denser => deeper):\n");
    for (int q = 0; q < 4; ++q) {
      const Rect quadrant = map.Quadrant(q);
      RunningStats depth;
      size_t users = 0;
      for (size_t id = 0; id < tree->num_nodes(); ++id) {
        const BinaryTree::Node& n = tree->node(static_cast<int32_t>(id));
        if (!n.live || !n.IsLeaf() || !quadrant.ContainsRect(n.region)) {
          continue;
        }
        depth.Add(n.depth);
        users += n.count;
      }
      std::printf(
          "  quadrant %d: %9s users, mean leaf depth %5.1f, max %2.0f\n", q,
          WithThousandsSeparators(static_cast<int64_t>(users)).c_str(),
          depth.mean(), depth.max());
    }
  }
  return 0;
}
