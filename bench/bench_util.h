#ifndef PASA_BENCH_BENCH_UTIL_H_
#define PASA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/export.h"
#include "obs/metrics.h"
#include "workload/bay_area.h"

namespace pasa {
namespace bench_util {

/// The experiment workload of Section VI: a 131 km map with 1.75M users
/// placed 10-per-intersection around 175k skew-distributed intersections.
inline BayAreaOptions PaperScaleOptions() {
  BayAreaOptions options;
  options.log2_map_side = 17;
  options.num_intersections = 175'000;
  options.users_per_intersection = 10;
  options.user_sigma = 500.0;
  options.num_clusters = 64;
  options.seed = 2010;
  return options;
}

/// Global scale factor for the harnesses: PASA_BENCH_SCALE=0.1 shrinks every
/// |D| tenfold for quick smoke runs; default 1.0 reproduces the paper sizes.
inline double Scale() {
  const char* env = std::getenv("PASA_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

inline size_t Scaled(size_t n) {
  return static_cast<size_t>(static_cast<double>(n) * Scale());
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%s\n", std::string(title.size(), '=').c_str());
}

/// Writes the global observability snapshot to bench/out/<name>.metrics.json
/// (relative to the working directory) so BENCH_*.json trajectories carry
/// per-phase breakdowns alongside each harness's printed table. Call once at
/// the end of a harness's main().
inline void WriteMetricsSnapshot(const std::string& bench_name) {
  // WriteJsonFile creates bench/out/ itself when missing.
  const std::string path = "bench/out/" + bench_name + ".metrics.json";
  const Status status =
      obs::WriteJsonFile(obs::MetricsRegistry::Global(), path);
  if (status.ok()) {
    std::printf("\n[metrics snapshot: %s]\n", path.c_str());
  } else {
    std::fprintf(stderr, "metrics snapshot failed: %s\n",
                 status.ToString().c_str());
  }
}

}  // namespace bench_util
}  // namespace pasa

#endif  // PASA_BENCH_BENCH_UTIL_H_
