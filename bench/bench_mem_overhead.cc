// Memory-accounting overhead microbenchmark: proves the pasa::obs memory
// accountant (obs/mem.h) keeps the production serving path near-free.
//
// The accountant is pull-model by design — subsystems report ApproxBytes()
// when a scrape (GET /memory, /metrics) or the periodic net refresh asks,
// never per request — so the only hot-path residue is the disarmed hook:
// one relaxed load (`if (obs::MemoryAccounting())`). Part 1 times the full
// CSP request path in three configurations:
//   (a) uninstrumented: obs kill switch off, accountant disabled
//   (b) production:     obs on, accountant disabled, hook checked per request
//   (c) armed:          obs on, accountant enabled; the hook fires a
//                       snapshot-style counter refresh every 64 requests
//                       (the NetServer loop cadence) and a full
//                       CspServer::ReportMemory every 4096 requests (the
//                       scrape cadence)
// Both (b) and (c) are gated within 5% of (a).
//
// Part 2 reports the per-operation cost of the primitives: the disarmed
// hook, MemCounter::Add/Set, ScopedAllocTracker::Update, and a deque
// push/pop through AccountingAllocator against the std::allocator baseline.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "common/timer.h"
#include "csp/server.h"
#include "obs/mem.h"
#include "obs/metrics.h"
#include "workload/bay_area.h"
#include "workload/requests.h"

namespace {

using namespace pasa;

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

// Serves the same request stream `reps` times, returning the median
// wall-clock of one pass. The cache is flushed per pass so every pass does
// identical work. When `hook` is true the loop body carries the disarmed
// accounting hook exactly as the serving stack does: a relaxed load, and —
// only when the accountant is armed — the periodic refreshes.
double TimeServing(CspServer& csp, const std::vector<ServiceRequest>& stream,
                   int reps, bool hook) {
  obs::MemoryAccountant& accountant = obs::MemoryAccountant::Global();
  std::vector<double> seconds;
  seconds.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    csp.FlushAnswerCache();
    uint64_t ticks = 0;
    WallTimer timer;
    for (const ServiceRequest& sr : stream) {
      if (!csp.HandleRequest(sr).ok()) return -1.0;
      if (hook) {
        ++ticks;
        if (obs::MemoryAccounting()) {
          if (ticks % 64 == 0) {
            // NetServer::RefreshMemoryStats-shaped work: snapshot-style
            // Set on a couple of counters.
            accountant.GetCounter("net/conn_buffers").Set(ticks);
            accountant.GetCounter("net/pending_payloads").Set(ticks / 2);
          }
          if (ticks % 4096 == 0) csp.ReportMemory(accountant);
        }
      }
    }
    seconds.push_back(timer.ElapsedSeconds());
  }
  return Median(std::move(seconds));
}

}  // namespace

int main() {
  using bench_util::Scaled;

  bench_util::PrintHeader(
      "pasa::obs memory accounting overhead: CSP request path");
  BayAreaOptions bay;
  bay.log2_map_side = 15;
  bay.num_intersections = 2000;
  bay.users_per_intersection = 10;
  bay.seed = 3;
  const BayAreaGenerator generator(bay);
  const LocationDatabase db = generator.Generate(Scaled(50'000));
  const int reps = 5;

  Rng rng(9);
  std::vector<PointOfInterest> pois;
  for (size_t i = 0; i < 2048; ++i) {
    pois.push_back(PointOfInterest{
        static_cast<int64_t>(i),
        Point{static_cast<Coord>(rng.NextBounded(generator.extent().side())),
              static_cast<Coord>(rng.NextBounded(generator.extent().side()))},
        "poi"});
  }
  CspOptions options;
  options.k = 50;
  Result<CspServer> csp = CspServer::Start(db, generator.extent(),
                                           PoiDatabase(std::move(pois)),
                                           options);
  if (!csp.ok()) {
    std::fprintf(stderr, "CSP start failed: %s\n",
                 csp.status().ToString().c_str());
    return 1;
  }
  RequestGenerator requests(13);
  const std::vector<ServiceRequest> stream =
      requests.Draw(csp->snapshot(), Scaled(100'000));

  obs::MemoryAccountant& accountant = obs::MemoryAccountant::Global();
  accountant.Disable();
  accountant.Reset();

  // Warm-up pass (page in the policy, stabilize the allocator).
  (void)TimeServing(*csp, stream, 1, /*hook=*/false);

  obs::Configure(obs::ObsOptions{.enabled = false});
  const double uninstrumented_seconds =
      TimeServing(*csp, stream, reps, /*hook=*/false);
  obs::Configure(obs::ObsOptions{.enabled = true});
  const double disarmed_seconds =
      TimeServing(*csp, stream, reps, /*hook=*/true);
  accountant.Enable();
  const double armed_seconds = TimeServing(*csp, stream, reps, /*hook=*/true);
  const uint64_t accounted_bytes = accountant.TotalBytes();
  accountant.Disable();
  if (uninstrumented_seconds < 0.0 || disarmed_seconds < 0.0 ||
      armed_seconds < 0.0) {
    std::fprintf(stderr, "serving pass failed\n");
    return 1;
  }
  const double disarmed_percent =
      (disarmed_seconds - uninstrumented_seconds) / uninstrumented_seconds *
      100.0;
  const double armed_percent =
      (armed_seconds - uninstrumented_seconds) / uninstrumented_seconds *
      100.0;

  TablePrinter table({"mode", "median of " + std::to_string(reps) +
                                  " passes (s)"});
  table.AddRow({"obs off, accountant off (uninstrumented)",
                TablePrinter::Cell(uninstrumented_seconds, 4)});
  table.AddRow({"obs on, accountant disarmed (production)",
                TablePrinter::Cell(disarmed_seconds, 4)});
  table.AddRow({"accountant armed (periodic refresh)",
                TablePrinter::Cell(armed_seconds, 4)});
  table.Print();
  std::printf(
      "\ndisarmed-vs-uninstrumented overhead: %+.2f%% (gated <= 5%%)\n"
      "armed-vs-uninstrumented overhead:    %+.2f%% (gated <= 5%%, "
      "accounted %llu bytes)\n"
      "The accountant is pull-model: armed cost is a 1/64-cadence counter\n"
      "refresh plus a 1/4096-cadence full ReportMemory, never per-request\n"
      "work, so even armed accounting must stay within the 5%% bound.\n",
      disarmed_percent, armed_percent,
      static_cast<unsigned long long>(accounted_bytes));

  bench_util::PrintHeader("Per-operation cost of the accounting primitives");
  constexpr int kOps = 2'000'000;
  auto time_ops = [](auto&& body) {
    WallTimer timer;
    for (int i = 0; i < kOps; ++i) body();
    return timer.ElapsedSeconds() * 1e9 / kOps;
  };
  obs::MemCounter& counter = accountant.GetCounter("bench/scratch");
  const double hook_ns = time_ops([] {
    if (obs::MemoryAccounting()) std::abort();
  });
  const double add_ns = time_ops([&] { counter.Add(1); });
  const double set_ns =
      time_ops([&] { counter.Set(static_cast<uint64_t>(1)); });
  const double tracker_ns = time_ops([&] {
    obs::ScopedAllocTracker tracker(&counter);
    tracker.Update(64);
  });
  std::deque<int> plain_deque;
  const double plain_deque_ns = time_ops([&] {
    plain_deque.push_back(1);
    plain_deque.pop_front();
  });
  std::deque<int, obs::AccountingAllocator<int>> accounted_deque{
      obs::AccountingAllocator<int>(&counter)};
  const double accounted_deque_ns = time_ops([&] {
    accounted_deque.push_back(1);
    accounted_deque.pop_front();
  });
  counter.Reset();
  TablePrinter ops_table({"operation", "ns/op"});
  ops_table.AddRow({"disarmed hook (relaxed load)",
                    TablePrinter::Cell(hook_ns, 1)});
  ops_table.AddRow({"MemCounter::Add", TablePrinter::Cell(add_ns, 1)});
  ops_table.AddRow({"MemCounter::Set", TablePrinter::Cell(set_ns, 1)});
  ops_table.AddRow({"ScopedAllocTracker update+release",
                    TablePrinter::Cell(tracker_ns, 1)});
  ops_table.AddRow({"std::deque push+pop (std::allocator)",
                    TablePrinter::Cell(plain_deque_ns, 1)});
  ops_table.AddRow({"std::deque push+pop (AccountingAllocator)",
                    TablePrinter::Cell(accounted_deque_ns, 1)});
  ops_table.Print();

  bench_util::WriteMetricsSnapshot("mem_overhead");
  // Exit code encodes the acceptance bound so CI can gate on it; 5% leaves
  // slack for scheduler noise on shared hosts.
  return (disarmed_percent <= 5.0 && armed_percent <= 5.0) ? 0 : 1;
}
