// Experiment E9 — the Section VII throughput discussion: once the bulk
// policy is computed, serving a request is a cloak lookup. Google-benchmark
// microbenchmarks for the lookup and full anonymize paths (the paper
// measures 0.3-0.5 ms on 2005 hardware; modern hosts are far faster).

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "lbs/poi.h"
#include "pasa/anonymizer.h"
#include "workload/bay_area.h"
#include "workload/requests.h"

namespace {

using namespace pasa;

struct SharedState {
  LocationDatabase db;
  std::unique_ptr<Anonymizer> anonymizer;
  std::vector<ServiceRequest> requests;
};

SharedState* BuildState() {
  auto* state = new SharedState();
  BayAreaOptions bay = bench_util::PaperScaleOptions();
  const BayAreaGenerator generator(bay);
  const LocationDatabase master = generator.GenerateMaster();
  state->db =
      BayAreaGenerator::Sample(master, bench_util::Scaled(1'000'000), 9);
  AnonymizerOptions options;
  options.k = 50;
  Result<Anonymizer> anonymizer =
      Anonymizer::Build(state->db, generator.extent(), options);
  if (!anonymizer.ok()) {
    std::fprintf(stderr, "anonymizer build failed: %s\n",
                 anonymizer.status().ToString().c_str());
    std::exit(1);
  }
  state->anonymizer = std::make_unique<Anonymizer>(std::move(*anonymizer));
  RequestGenerator generator_requests(77);
  state->requests = generator_requests.Draw(state->db, 100'000);
  return state;
}

SharedState& Shared() {
  static SharedState* state = BuildState();
  return *state;
}

void BM_CloakLookupByUser(benchmark::State& state) {
  SharedState& shared = Shared();
  size_t i = 0;
  for (auto _ : state) {
    const ServiceRequest& sr =
        shared.requests[i++ % shared.requests.size()];
    Result<Rect> cloak = shared.anonymizer->CloakForUser(sr.sender);
    benchmark::DoNotOptimize(cloak);
  }
}
BENCHMARK(BM_CloakLookupByUser);

void BM_FullAnonymizeRequest(benchmark::State& state) {
  SharedState& shared = Shared();
  size_t i = 0;
  for (auto _ : state) {
    const ServiceRequest& sr =
        shared.requests[i++ % shared.requests.size()];
    Result<AnonymizedRequest> ar = shared.anonymizer->Anonymize(sr);
    benchmark::DoNotOptimize(ar);
  }
}
BENCHMARK(BM_FullAnonymizeRequest);

void BM_CloakLookupByRow(benchmark::State& state) {
  SharedState& shared = Shared();
  size_t row = 0;
  const size_t n = shared.db.size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(shared.anonymizer->CloakForRow(row));
    row = (row + 7919) % n;
  }
}
BENCHMARK(BM_CloakLookupByRow);

// The downstream LBS query the paper's throughput discussion cites: Casper
// reports ~2 ms per nearest-neighbor query over 10K POIs on 2005 hardware.
void BM_PoiNearestToCloak(benchmark::State& state) {
  SharedState& shared = Shared();
  static PoiDatabase* pois = [] {
    Rng rng(55);
    std::vector<PointOfInterest> list;
    const Coord side = Coord{1} << 17;
    for (int i = 0; i < 10'000; ++i) {
      list.push_back(PointOfInterest{
          i,
          Point{static_cast<Coord>(rng.NextBounded(side)),
                static_cast<Coord>(rng.NextBounded(side))},
          i % 2 == 0 ? "rest" : "gas"});
    }
    return new PoiDatabase(std::move(list));
  }();
  size_t row = 0;
  const size_t n = shared.db.size();
  for (auto _ : state) {
    const Rect& cloak = shared.anonymizer->CloakForRow(row);
    benchmark::DoNotOptimize(pois->NearestToCloak(cloak, "rest", 5));
    row = (row + 7919) % n;
  }
}
BENCHMARK(BM_PoiNearestToCloak);

}  // namespace

BENCHMARK_MAIN();
