// Profiler overhead microbenchmark: proves the always-on span-sampling
// profiler is free when disarmed and cheap when armed.
//
// The ScopedSpan hook costs one relaxed atomic load while the profiler is
// disarmed — the state every run not being profiled is in. Part 1 times
// the fully instrumented ComputeDpMatrix three ways: obs disabled (spans
// inert, the hook never reached), obs enabled with the profiler disarmed
// (the new always-on default), and obs enabled with the profiler armed at
// its default rate. Both the disarmed-vs-disabled and the
// armed-vs-disarmed overheads are gated at 5% via the exit code.
//
// Part 2 reports the per-operation scoped-span cost disarmed vs armed
// (armed adds a per-thread mutex'd path publish on every push/pop).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "common/timer.h"
#include "index/binary_tree.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "pasa/bulk_dp_binary.h"
#include "workload/bay_area.h"

namespace {

using namespace pasa;

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

// Runs ComputeDpMatrix `reps` times and returns the median wall-clock.
double TimeDp(const BinaryTree& tree, int k, int reps) {
  std::vector<double> seconds;
  seconds.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    Result<DpMatrix> matrix = ComputeDpMatrix(tree, k, DpOptions{});
    if (!matrix.ok()) return -1.0;
    seconds.push_back(timer.ElapsedSeconds());
  }
  return Median(std::move(seconds));
}

void SetEnabled(bool enabled) {
  obs::ObsOptions options;
  options.enabled = enabled;
  obs::Configure(options);
}

}  // namespace

int main() {
  using bench_util::PaperScaleOptions;
  using bench_util::Scaled;

  bench_util::PrintHeader(
      "Profiler overhead: instrumented Bulk_dp, disarmed vs armed");
  const BayAreaGenerator generator(PaperScaleOptions());
  const LocationDatabase master = generator.GenerateMaster();
  const int k = 50;
  const int reps = 5;
  const LocationDatabase db =
      BayAreaGenerator::Sample(master, Scaled(250'000), 2);
  Result<BinaryTree> tree = BinaryTree::Build(
      db, generator.extent(), TreeOptions{.split_threshold = k});
  if (!tree.ok()) {
    std::fprintf(stderr, "tree build failed: %s\n",
                 tree.status().ToString().c_str());
    return 1;
  }

  // Warm-up run (page in the tree, stabilize the allocator) before timing.
  (void)TimeDp(*tree, k, 1);

  obs::Profiler& profiler = obs::Profiler::Global();
  profiler.Stop();

  SetEnabled(false);
  const double off_seconds = TimeDp(*tree, k, reps);

  SetEnabled(true);
  obs::MetricsRegistry::Global().Reset();
  const double disarmed_seconds = TimeDp(*tree, k, reps);

  const Status armed = profiler.Start(obs::ProfilerOptions{});
  if (!armed.ok()) {
    std::fprintf(stderr, "profiler arm failed: %s\n",
                 armed.ToString().c_str());
    return 1;
  }
  const double armed_seconds = TimeDp(*tree, k, reps);
  profiler.Stop();
  const uint64_t samples = profiler.samples_taken();
  profiler.Reset();

  if (off_seconds < 0.0 || disarmed_seconds < 0.0 || armed_seconds < 0.0) {
    std::fprintf(stderr, "DP run failed\n");
    return 1;
  }
  const double disarmed_percent =
      (disarmed_seconds - off_seconds) / off_seconds * 100.0;
  const double armed_percent =
      (armed_seconds - disarmed_seconds) / disarmed_seconds * 100.0;

  TablePrinter dp_table({"mode", "median of " + std::to_string(reps) +
                                     " runs (s)"});
  dp_table.AddRow({"obs disabled (hook never reached)",
                   TablePrinter::Cell(off_seconds, 4)});
  dp_table.AddRow({"obs on, profiler disarmed",
                   TablePrinter::Cell(disarmed_seconds, 4)});
  dp_table.AddRow({"obs on, profiler armed (default Hz)",
                   TablePrinter::Cell(armed_seconds, 4)});
  dp_table.Print();
  std::printf(
      "\ndisarmed-vs-disabled overhead: %+.2f%% (gate: <= 5%%)\n"
      "armed-vs-disarmed overhead:    %+.2f%% (gate: <= 5%%)\n"
      "samples taken while armed: %llu\n"
      "Disarmed is the always-on state: the ScopedSpan hook is one relaxed\n"
      "atomic load, so profiling support must not make routine runs\n"
      "slower. Armed adds a per-span path publish and a %g Hz sampler.\n",
      disarmed_percent, armed_percent,
      static_cast<unsigned long long>(samples),
      obs::ProfilerOptions{}.hz);

  bench_util::PrintHeader("Per-operation scoped-span cost");
  constexpr int kOps = 2'000'000;
  auto time_ops = [](auto&& body) {
    WallTimer timer;
    for (int i = 0; i < kOps; ++i) body();
    return timer.ElapsedSeconds() * 1e9 / kOps;
  };
  const double span_disarmed =
      time_ops([] { obs::ScopedSpan span("profile_overhead/span"); });
  const Status rearmed = profiler.Start(obs::ProfilerOptions{});
  double span_armed = 0.0;
  if (rearmed.ok()) {
    span_armed =
        time_ops([] { obs::ScopedSpan span("profile_overhead/span"); });
    profiler.Stop();
    profiler.Reset();
  }
  TablePrinter ops_table({"primitive", "disarmed (ns/op)", "armed (ns/op)"});
  ops_table.AddRow({"scoped span", TablePrinter::Cell(span_disarmed, 1),
                    TablePrinter::Cell(span_armed, 1)});
  ops_table.Print();

  SetEnabled(true);
  bench_util::WriteMetricsSnapshot("profile_overhead");
  // Exit code encodes both acceptance bounds so CI can gate on them.
  return (disarmed_percent <= 5.0 && armed_percent <= 5.0) ? 0 : 1;
}
