// Experiment E7 — Section VI-D: utility loss of parallel anonymization as
// the jurisdiction count grows far beyond what throughput needs. The paper's
// shape: cost identical to the single-server optimum up to ~2k
// jurisdictions, and within 1% even at 4096.

#include <cstdio>

#include "attack/auditor.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "parallel/runner.h"
#include "pasa/anonymizer.h"
#include "workload/bay_area.h"

int main() {
  using namespace pasa;
  using bench_util::PaperScaleOptions;
  using bench_util::Scaled;

  bench_util::PrintHeader(
      "Section VI-D: parallel anonymization utility stress test "
      "(|D| = 1M, k = 50)");
  const BayAreaGenerator generator(PaperScaleOptions());
  const LocationDatabase master = generator.GenerateMaster();
  const LocationDatabase db =
      BayAreaGenerator::Sample(master, Scaled(1'000'000), 6);
  const int k = 50;

  AnonymizerOptions single;
  single.k = k;
  Result<Anonymizer> optimum = Anonymizer::Build(db, generator.extent(), single);
  if (!optimum.ok()) {
    std::fprintf(stderr, "optimum failed: %s\n",
                 optimum.status().ToString().c_str());
    return 1;
  }
  std::printf("single-server optimal cost: %s\n",
              WithThousandsSeparators(optimum->cost()).c_str());

  TablePrinter table({"jurisdictions", "actual", "cost", "overhead (%)",
                      "parallel time (s)", "min group"});
  for (const size_t target : {1u, 16u, 64u, 256u, 1024u, 2048u, 4096u}) {
    ParallelRunOptions options;
    options.k = k;
    options.num_jurisdictions = target;
    Result<ParallelRunReport> report =
        RunPartitioned(db, generator.extent(), options);
    if (!report.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    const double overhead =
        100.0 * (static_cast<double>(report->total_cost) /
                     static_cast<double>(optimum->cost()) -
                 1.0);
    table.AddRow(
        {TablePrinter::Cell(static_cast<int64_t>(target)),
         TablePrinter::Cell(static_cast<int64_t>(report->jurisdictions.size())),
         WithThousandsSeparators(report->total_cost),
         TablePrinter::Cell(overhead, 4),
         TablePrinter::Cell(report->parallel_seconds, 3),
         TablePrinter::Cell(static_cast<int64_t>(
             AuditPolicyAware(report->master_table).min_possible_senders))});
  }
  table.Print();
  std::printf(
      "\nExpected shape: 0%% overhead for small pools; < 1%% even at 4096\n"
      "jurisdictions (border cloaks that would span jurisdictions are rare).\n");
  return 0;
}
