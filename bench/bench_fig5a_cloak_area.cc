// Experiment E5 — Figure 5(a): average cloak area of the policy-aware
// optimum vs the policy-unaware baselines (Casper, PUB, PUQ) at k = 50.
// The paper's shape: Casper cheapest; policy-aware ~= PUQ and at most
// ~1.7x Casper; all areas shrink as |D| grows.

#include <cstdio>
#include <memory>

#include "attack/auditor.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "index/quad_tree.h"
#include "pasa/anonymizer.h"
#include "pasa/bulk_dp_quad.h"
#include "policies/casper.h"
#include "policies/k_inside_binary.h"
#include "policies/k_inside_quad.h"
#include "workload/bay_area.h"

int main() {
  using namespace pasa;
  using bench_util::PaperScaleOptions;
  using bench_util::Scaled;

  bench_util::PrintHeader(
      "Figure 5(a): average cloak area per policy (k = 50)");
  const BayAreaGenerator generator(PaperScaleOptions());
  const LocationDatabase master = generator.GenerateMaster();
  const int k = 50;

  std::vector<std::unique_ptr<BulkPolicyAlgorithm>> algorithms;
  algorithms.push_back(
      std::make_unique<PolicyAwareOptimumAlgorithm>(generator.extent()));
  algorithms.push_back(std::make_unique<CasperPolicy>(generator.extent()));
  algorithms.push_back(
      std::make_unique<PolicyUnawareBinary>(generator.extent()));
  algorithms.push_back(
      std::make_unique<PolicyUnawareQuad>(generator.extent()));

  TablePrinter table({"|D|", "PolicyAware-OPT", "PAQ (quad OPT)", "Casper",
                      "PUB", "PUQ", "OPT/Casper", "aware-safe?"});
  for (const size_t n : {Scaled(100'000), Scaled(250'000), Scaled(500'000),
                         Scaled(1'000'000)}) {
    const LocationDatabase db = BayAreaGenerator::Sample(master, n, 4);
    std::vector<std::string> row = {
        WithThousandsSeparators(static_cast<int64_t>(db.size()))};
    double aware_area = 0.0, casper_area = 0.0;
    bool aware_safe = false;
    // Policy-aware optimum restricted to quadrant cloaks (extension: the
    // cost-only fast quad DP), to separate the price of the guarantee from
    // the gain of the semi-quadrant cloak family.
    std::string paq_cell = "-";
    {
      Result<QuadTree> quad = QuadTree::Build(
          db, generator.extent(), TreeOptions{.split_threshold = k});
      if (quad.ok()) {
        Result<Cost> cost = OptimalQuadCostFast(*quad, k);
        if (cost.ok()) {
          paq_cell = TablePrinter::Cell(
              static_cast<double>(*cost) / static_cast<double>(db.size()),
              0);
        }
      }
    }
    for (const auto& algorithm : algorithms) {
      Result<CloakingTable> policy = algorithm->Cloak(db, k);
      if (!policy.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", algorithm->name().c_str(),
                     policy.status().ToString().c_str());
        return 1;
      }
      const double area = policy->AverageArea();
      row.push_back(TablePrinter::Cell(area, 0));
      if (algorithm->name() == "PolicyAware-OPT") {
        aware_area = area;
        aware_safe = AuditPolicyAware(*policy).Anonymous(k);
        row.push_back(paq_cell);  // PAQ column right after the optimum
      }
      if (algorithm->name() == "Casper") casper_area = area;
    }
    row.push_back(TablePrinter::Cell(aware_area / casper_area, 2));
    row.push_back(aware_safe ? "yes" : "NO");
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nExpected shape: Casper < PUB < PUQ; PolicyAware-OPT ~= PUQ and at\n"
      "most ~1.7x Casper (the utility price of the stronger guarantee).\n"
      "Only PolicyAware-OPT survives the policy-aware audit. PAQ is the\n"
      "policy-aware optimum restricted to quadrant cloaks: its ratio to PUQ\n"
      "isolates the guarantee's price within one cloak family (~1.1x),\n"
      "while OPT vs PAQ isolates the semi-quadrant family's gain.\n");
  return 0;
}
