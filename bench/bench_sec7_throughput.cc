// Experiment E12 — the Section VII feasibility comparison: per-snapshot
// bulk anonymization amortized over a request stream served by the full CSP
// stack (policy lookup + POI nearest-neighbor + answer cache), against the
// cryptographic PIR numbers the paper quotes (20-45 s per query, 6-12 s
// when parallelized over 8 servers, for 65K points of interest).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"
#include "csp/server.h"
#include "workload/bay_area.h"
#include "workload/requests.h"

int main() {
  using namespace pasa;
  using bench_util::PaperScaleOptions;
  using bench_util::Scaled;

  bench_util::PrintHeader(
      "Section VII: end-to-end request throughput (CSP + LBS, k = 50)");
  const BayAreaGenerator generator(PaperScaleOptions());
  const LocationDatabase master = generator.GenerateMaster();
  const LocationDatabase db =
      BayAreaGenerator::Sample(master, Scaled(1'000'000), 12);

  // 65K points of interest, matching the PIR experiment scale in [15].
  std::vector<PointOfInterest> pois;
  {
    Rng rng(65);
    const std::vector<std::string> categories = {"rest", "groc", "cinema",
                                                 "gas", "hospital"};
    for (int i = 0; i < 65'000; ++i) {
      pois.push_back(PointOfInterest{
          i,
          Point{static_cast<Coord>(rng.NextBounded(generator.extent().side())),
                static_cast<Coord>(
                    rng.NextBounded(generator.extent().side()))},
          categories[rng.NextBounded(categories.size())]});
    }
  }

  CspOptions options;
  options.k = 50;
  options.answers_per_request = 10;
  WallTimer init_timer;
  Result<CspServer> csp = CspServer::Start(db, generator.extent(),
                                           PoiDatabase(std::move(pois)),
                                           options);
  if (!csp.ok()) {
    std::fprintf(stderr, "start failed: %s\n", csp.status().ToString().c_str());
    return 1;
  }
  const double init_seconds = init_timer.ElapsedSeconds();

  RequestGenerator requests(9);
  const size_t batch = 100'000;
  const std::vector<ServiceRequest> stream = requests.Draw(db, batch);
  WallTimer serve_timer;
  size_t served = 0;
  for (const ServiceRequest& sr : stream) {
    if (csp->HandleRequest(sr).ok()) ++served;
  }
  const double serve_seconds = serve_timer.ElapsedSeconds();

  TablePrinter table({"metric", "value"});
  table.AddRow({"users (|D|)", WithThousandsSeparators(
                                   static_cast<int64_t>(db.size()))});
  table.AddRow({"points of interest", "65,000"});
  table.AddRow({"per-snapshot bulk anonymization (s)",
                TablePrinter::Cell(init_seconds, 3)});
  table.AddRow({"requests served", WithThousandsSeparators(
                                       static_cast<int64_t>(served))});
  table.AddRow({"end-to-end time per request (us)",
                TablePrinter::Cell(serve_seconds * 1e6 /
                                       static_cast<double>(served),
                                   2)});
  table.AddRow({"throughput (requests/s)",
                WithThousandsSeparators(static_cast<int64_t>(
                    static_cast<double>(served) / serve_seconds))});
  table.AddRow({"LBS saw (after cache)", WithThousandsSeparators(
                                             static_cast<int64_t>(
                                                 csp->lbs_requests_seen()))});
  table.Print();
  std::printf(
      "\nThe paper's comparison point: cryptographic PIR over the same 65K\n"
      "POIs costs 20-45 s per query (6-12 s on 8 servers). The anonymizer\n"
      "trades the absolute guarantee for >= 3 orders of magnitude more\n"
      "throughput, while keeping LBS interfaces and billing unchanged.\n");
  bench_util::WriteMetricsSnapshot("sec7_throughput");
  return 0;
}
