// Experiment E13 — serving-path throughput over the wire: the full
// socket stack (frame decode -> admission -> CspServer -> frame encode)
// on loopback, closed-loop clients. Complements bench_sec7_throughput,
// which measures the same serving path via direct function calls; the
// difference between the two is the wire + event-loop overhead.
//
// Prints req/s and latency percentiles per connection count and writes
// the usual metrics snapshot. tools/ci.sh runs pasa_loadgen against
// `pasa_cli serve --listen` for the benchstat-gated BENCH_net.json; this
// harness is the in-process variant for quick local iteration.

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/timer.h"
#include "csp/server.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "workload/bay_area.h"

namespace {

using namespace pasa;

struct ClientStats {
  std::vector<double> latencies;
  uint64_t ok = 0;
  uint64_t failed = 0;
};

void ClientLoop(uint16_t port, const LocationDatabase* db, int k,
                size_t worker, size_t stride, uint64_t requests,
                ClientStats* stats) {
  Result<net::NetClient> client = net::NetClient::Connect(port, 10.0);
  if (!client.ok()) {
    stats->failed += requests;
    return;
  }
  WallTimer timer;
  for (uint64_t i = 0; i < requests; ++i) {
    const auto& row = db->row((worker + i * stride) % db->size());
    const ServiceRequest sr{row.user, row.location, {{"poi", "rest"}}};
    const double start = timer.ElapsedSeconds();
    Result<net::Frame> frame = client->Call(
        net::MsgType::kServeRequest, net::EncodeServiceRequest(sr), 10.0);
    const double latency = timer.ElapsedSeconds() - start;
    if (!frame.ok() || frame->type != net::MsgType::kServeResponse) {
      ++stats->failed;
      continue;
    }
    Result<net::ServeResponseMsg> msg =
        net::DecodeServeResponse(frame->payload);
    if (!msg.ok() || msg->group_size < static_cast<uint64_t>(k)) {
      ++stats->failed;
      continue;
    }
    ++stats->ok;
    stats->latencies.push_back(latency);
  }
}

double Percentile(std::vector<double>* values, double q) {
  if (values->empty()) return 0.0;
  const size_t index = std::min(
      values->size() - 1,
      static_cast<size_t>(q * static_cast<double>(values->size())));
  std::nth_element(values->begin(), values->begin() + index, values->end());
  return (*values)[index];
}

}  // namespace

int main() {
  using bench_util::Scaled;

  bench_util::PrintHeader(
      "Serving-path throughput over loopback sockets (k = 50)");
  BayAreaOptions map_options = bench_util::PaperScaleOptions();
  const BayAreaGenerator generator(map_options);
  const LocationDatabase master = generator.GenerateMaster();
  const LocationDatabase db =
      BayAreaGenerator::Sample(master, Scaled(100'000), 12);

  std::vector<PointOfInterest> pois;
  {
    Rng rng(65);
    const std::vector<std::string> categories = {"rest", "groc", "cinema"};
    for (int i = 0; i < 10'000; ++i) {
      pois.push_back(PointOfInterest{
          i,
          Point{static_cast<Coord>(rng.NextBounded(generator.extent().side())),
                static_cast<Coord>(
                    rng.NextBounded(generator.extent().side()))},
          categories[rng.NextBounded(categories.size())]});
    }
  }

  CspOptions options;
  options.k = 50;
  options.answers_per_request = 10;
  Result<CspServer> csp = CspServer::Start(db, generator.extent(),
                                           PoiDatabase(std::move(pois)),
                                           options);
  if (!csp.ok()) {
    std::fprintf(stderr, "csp start failed: %s\n",
                 csp.status().ToString().c_str());
    return 1;
  }

  net::NetServerOptions net_options;
  Result<std::unique_ptr<net::NetServer>> server =
      net::NetServer::Start(&*csp, net_options);
  if (!server.ok()) {
    std::fprintf(stderr, "net start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  const uint16_t port = (*server)->port();

  const uint64_t requests_total = Scaled(100'000);
  TablePrinter table({"connections", "req/s", "p50 (us)", "p99 (us)"});
  for (const size_t connections : {1u, 4u, 8u}) {
    std::vector<ClientStats> stats(connections);
    std::vector<std::thread> workers;
    WallTimer wall;
    for (size_t w = 0; w < connections; ++w) {
      const uint64_t share = requests_total / connections;
      workers.emplace_back(ClientLoop, port, &db, options.k, w, connections,
                           share, &stats[w]);
    }
    for (std::thread& worker : workers) worker.join();
    const double elapsed = wall.ElapsedSeconds();

    uint64_t ok = 0;
    uint64_t failed = 0;
    std::vector<double> latencies;
    for (ClientStats& s : stats) {
      ok += s.ok;
      failed += s.failed;
      latencies.insert(latencies.end(), s.latencies.begin(),
                       s.latencies.end());
    }
    if (failed > 0) {
      std::fprintf(stderr, "%llu request(s) failed\n",
                   static_cast<unsigned long long>(failed));
      return 1;
    }
    table.AddRow({std::to_string(connections),
                  TablePrinter::Cell(static_cast<double>(ok) / elapsed, 0),
                  TablePrinter::Cell(Percentile(&latencies, 0.50) * 1e6, 1),
                  TablePrinter::Cell(Percentile(&latencies, 0.99) * 1e6, 1)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: req/s grows with connections until the single\n"
      "event-loop thread saturates; p99 stays in the sub-millisecond range\n"
      "on loopback.\n");

  (*server)->Stop();
  bench_util::WriteMetricsSnapshot("net_throughput");
  return 0;
}
