// Experiment E4 — Figure 4(b): single-server bulk anonymization time vs k
// at |D| = 1M. The paper's shape: quasi-linear (really sub-linear) growth.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"
#include "pasa/anonymizer.h"
#include "workload/bay_area.h"

int main() {
  using namespace pasa;
  using bench_util::PaperScaleOptions;
  using bench_util::Scaled;

  bench_util::PrintHeader("Figure 4(b): anonymization time vs k (|D| = 1M)");
  const BayAreaGenerator generator(PaperScaleOptions());
  const LocationDatabase master = generator.GenerateMaster();
  const LocationDatabase db =
      BayAreaGenerator::Sample(master, Scaled(1'000'000), 3);

  TablePrinter table({"k", "time (s)", "cost", "avg cloak area (m^2)"});
  for (const int k : {2, 10, 25, 50, 100, 150, 200}) {
    WallTimer timer;
    AnonymizerOptions options;
    options.k = k;
    Result<Anonymizer> anonymizer =
        Anonymizer::Build(db, generator.extent(), options);
    if (!anonymizer.ok()) {
      std::fprintf(stderr, "k=%d failed: %s\n", k,
                   anonymizer.status().ToString().c_str());
      return 1;
    }
    const double seconds = timer.ElapsedSeconds();
    table.AddRow({TablePrinter::Cell(static_cast<int64_t>(k)),
                  TablePrinter::Cell(seconds, 3),
                  WithThousandsSeparators(anonymizer->cost()),
                  TablePrinter::Cell(anonymizer->policy().AverageArea(), 0)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: time grows quasi-linearly (sub-linearly) with k.\n");
  bench_util::WriteMetricsSnapshot("fig4b_time_vs_k");
  return 0;
}
