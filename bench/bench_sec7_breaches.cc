// Experiment E8 — Section VII / Figure 6: the k-sharing and k-reciprocity
// refinements of k-inside still break against a policy-aware attacker.

#include <cstdio>

#include "attack/auditor.h"
#include "common/table.h"
#include "pasa/anonymizer.h"
#include "policies/find_mbc.h"
#include "policies/k_reciprocity.h"
#include "policies/k_sharing.h"

int main() {
  using namespace pasa;
  const int k = 2;

  std::printf("Section VII: breaches of k-inside refinements (k = 2)\n");
  std::printf("=====================================================\n\n");

  TablePrinter table({"scenario", "claimed property", "holds?",
                      "policy-aware min senders", "verdict"});

  // Figure 6(a): k-sharing with arrival order C-first.
  {
    LocationDatabase db;
    db.Add(1, {0, 0});  // A
    db.Add(2, {2, 0});  // B
    db.Add(3, {5, 0});  // C
    const KSharingPolicy policy(k);
    Result<CloakingTable> cloaks = policy.CloakInOrder(db, {2});
    if (!cloaks.ok()) return 1;
    Result<std::vector<size_t>> first =
        policy.PossibleFirstSenders(db, cloaks->cloak(2));
    if (!first.ok()) return 1;
    // The 2-sharing property is claimed for the request actually served:
    // C's cloak is shared by the {B, C} group.
    const size_t shared_by =
        AuditPolicyAware(*cloaks).possible_senders_per_row[2];
    table.AddRow({"Fig 6(a) k-sharing", "2-sharing groups",
                  shared_by >= static_cast<size_t>(k) ? "yes" : "no",
                  TablePrinter::Cell(static_cast<int64_t>(first->size())),
                  first->size() < static_cast<size_t>(k)
                      ? "BREACHED (first sender must be C)"
                      : "safe"});
  }

  // Figure 6(b): k-reciprocity via nearest-station circles.
  {
    LocationDatabase db;
    db.Add(1, {2, 0});  // Alice
    db.Add(2, {3, 0});  // Bob
    const NearestStationCircles policy({{0, 0}, {5, 0}});
    Result<std::vector<Circle>> cloaks = policy.Cloak(db, k);
    if (!cloaks.ok()) return 1;
    const AuditReport aware = AuditPolicyAware(*cloaks);
    table.AddRow(
        {"Fig 6(b) k-reciprocity", "2-reciprocity",
         NearestStationCircles::SatisfiesKReciprocity(db, *cloaks, k)
             ? "yes"
             : "no",
         TablePrinter::Cell(static_cast<int64_t>(aware.min_possible_senders)),
         aware.Anonymous(k) ? "safe" : "BREACHED (circle reveals sender)"});
  }

  // FindMBC-style minimum bounding circles.
  {
    LocationDatabase db;
    db.Add(1, {0, 0});
    db.Add(2, {0, 1});
    db.Add(3, {0, 3});
    db.Add(4, {2, 0});
    db.Add(5, {3, 3});
    Result<CircularCloaking> cloaks = FindMbcCloaking(db, k);
    if (!cloaks.ok()) return 1;
    const AuditReport aware = AuditPolicyAware(cloaks->cloaks);
    const AuditReport unaware = AuditPolicyUnaware(cloaks->cloaks, db);
    table.AddRow(
        {"FindMBC circles", "k-inside (>= k in cloak)",
         unaware.Anonymous(k) ? "yes" : "no",
         TablePrinter::Cell(static_cast<int64_t>(aware.min_possible_senders)),
         aware.Anonymous(k) ? "safe" : "BREACHED (MBC unique per user)"});
  }

  // The policy-aware optimum on the Fig 6(a) input, for contrast.
  {
    LocationDatabase db;
    db.Add(1, {0, 0});
    db.Add(2, {2, 0});
    db.Add(3, {5, 0});
    AnonymizerOptions options;
    options.k = k;
    Result<Anonymizer> ours = Anonymizer::Build(db, MapExtent{0, 0, 3}, options);
    if (!ours.ok()) return 1;
    const AuditReport aware = AuditPolicyAware(ours->policy());
    table.AddRow(
        {"PolicyAware-OPT (same input)", "policy-aware 2-anonymity",
         "yes",
         TablePrinter::Cell(static_cast<int64_t>(aware.min_possible_senders)),
         aware.Anonymous(k) ? "safe" : "BREACHED"});
  }

  table.Print();
  return 0;
}
