// Provenance / windowed-telemetry / SLO overhead microbenchmark: proves the
// pasa::obs v3 additions keep the production serving path near-free while
// everything is disarmed (the default configuration).
//
// Part 1 times the full CSP request path — validate, cloak, resilient LBS
// fetch through the answer cache — in three configurations:
//   (a) uninstrumented: obs kill switch off, v3 stack disarmed
//   (b) production:     obs on, provenance ring / windows / SLOs disarmed
//   (c) fully armed:    obs on, ring + windows + SLO tracker recording
// The acceptance bound gates (b) against (a): a disarmed ring costs one
// relaxed load in ScopedProvenanceRecord plus null-pointer checks at the
// annotation sites, and disarmed windows/SLOs cost one relaxed load each
// per request, so (b) must stay within 2% of (a); 5% is enforced for
// scheduler noise on shared hosts, mirroring bench_obs_overhead and
// bench_fault_overhead. (c) is reported for context — an armed audit pays
// for record moves, window slices and burn-rate evaluation by design.
//
// Part 2 reports the per-operation cost of the new primitives in both
// disarmed and armed modes.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "common/timer.h"
#include "csp/server.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/slo.h"
#include "obs/window.h"
#include "workload/bay_area.h"
#include "workload/requests.h"

namespace {

using namespace pasa;

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

// Serves the same request stream `reps` times, returning the median
// wall-clock of one pass. The cache is flushed per pass so every pass does
// identical work (same hits, same misses, same provider fetches).
double TimeServing(CspServer& csp, const std::vector<ServiceRequest>& stream,
                   int reps) {
  std::vector<double> seconds;
  seconds.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    csp.FlushAnswerCache();
    WallTimer timer;
    for (const ServiceRequest& sr : stream) {
      if (!csp.HandleRequest(sr).ok()) return -1.0;
    }
    seconds.push_back(timer.ElapsedSeconds());
  }
  return Median(std::move(seconds));
}

void DisarmV3() {
  obs::ProvenanceRing::Global().Disable();
  obs::WindowRegistry::Global().Disable();
  obs::SloTracker::Global().Disable();
}

void ArmV3() {
  obs::SimClock::Global().Reset();
  obs::ProvenanceRing::Global().Enable();
  obs::WindowRegistry::Global().Enable();
  obs::SloTracker::Global().Enable();
}

}  // namespace

int main() {
  using bench_util::Scaled;

  bench_util::PrintHeader(
      "pasa::obs v3 overhead: CSP request path, disarmed vs armed audit");
  BayAreaOptions bay;
  bay.log2_map_side = 15;
  bay.num_intersections = 2000;
  bay.users_per_intersection = 10;
  bay.seed = 3;
  const BayAreaGenerator generator(bay);
  const LocationDatabase db = generator.Generate(Scaled(50'000));
  const int k = 50;
  const int reps = 5;

  Rng rng(9);
  std::vector<PointOfInterest> pois;
  for (size_t i = 0; i < 2048; ++i) {
    pois.push_back(PointOfInterest{
        static_cast<int64_t>(i),
        Point{static_cast<Coord>(rng.NextBounded(generator.extent().side())),
              static_cast<Coord>(rng.NextBounded(generator.extent().side()))},
        "poi"});
  }
  CspOptions options;
  options.k = k;
  Result<CspServer> csp = CspServer::Start(db, generator.extent(),
                                           PoiDatabase(std::move(pois)),
                                           options);
  if (!csp.ok()) {
    std::fprintf(stderr, "CSP start failed: %s\n",
                 csp.status().ToString().c_str());
    return 1;
  }
  RequestGenerator requests(13);
  const std::vector<ServiceRequest> stream =
      requests.Draw(csp->snapshot(), Scaled(100'000));

  // Warm-up pass (page in the policy, stabilize the allocator).
  DisarmV3();
  (void)TimeServing(*csp, stream, 1);

  obs::Configure(obs::ObsOptions{.enabled = false});
  const double uninstrumented_seconds = TimeServing(*csp, stream, reps);
  obs::Configure(obs::ObsOptions{.enabled = true});
  const double production_seconds = TimeServing(*csp, stream, reps);
  ArmV3();
  const double armed_seconds = TimeServing(*csp, stream, reps);
  const size_t audited = obs::ProvenanceRing::Global().size();
  DisarmV3();
  if (uninstrumented_seconds < 0.0 || production_seconds < 0.0 ||
      armed_seconds < 0.0) {
    std::fprintf(stderr, "serving pass failed\n");
    return 1;
  }
  const double overhead_percent =
      (production_seconds - uninstrumented_seconds) / uninstrumented_seconds *
      100.0;
  const double armed_percent =
      (armed_seconds - uninstrumented_seconds) / uninstrumented_seconds *
      100.0;

  TablePrinter table({"mode", "median of " + std::to_string(reps) +
                                  " passes (s)"});
  table.AddRow({"obs off, v3 disarmed (uninstrumented)",
                TablePrinter::Cell(uninstrumented_seconds, 4)});
  table.AddRow({"obs on, v3 disarmed (production)",
                TablePrinter::Cell(production_seconds, 4)});
  table.AddRow({"ring + windows + SLOs armed",
                TablePrinter::Cell(armed_seconds, 4)});
  table.Print();
  std::printf(
      "\nproduction-vs-uninstrumented overhead: %+.2f%% (gated)\n"
      "armed-audit-vs-uninstrumented overhead: %+.2f%% (context, kept %zu "
      "records)\n"
      "Disarmed provenance reduces to one relaxed load per request plus\n"
      "null-pointer checks at the annotation sites, so the production path\n"
      "must stay within 2%% of the uninstrumented baseline.\n",
      overhead_percent, armed_percent, audited);

  bench_util::PrintHeader("Per-operation cost of the v3 primitives");
  constexpr int kOps = 2'000'000;
  auto time_ops = [](auto&& body) {
    WallTimer timer;
    for (int i = 0; i < kOps; ++i) body();
    return timer.ElapsedSeconds() * 1e9 / kOps;
  };
  const double scope_disarmed_ns =
      time_ops([] { obs::ScopedProvenanceRecord scope; });
  obs::SloTracker::Global().EnsureObjective(obs::DefaultServingObjectives()[0]);
  const double slo_disarmed_ns = time_ops(
      [] { obs::SloTracker::Global().Record(obs::kSloAvailability, true, 0); });
  ArmV3();
  const double scope_armed_ns =
      time_ops([] { obs::ScopedProvenanceRecord scope; });
  const double slo_armed_ns = time_ops(
      [] { obs::SloTracker::Global().Record(obs::kSloAvailability, true, 0); });
  DisarmV3();
  TablePrinter ops_table({"operation", "disarmed ns/op", "armed ns/op"});
  ops_table.AddRow({"ScopedProvenanceRecord open+close",
                    TablePrinter::Cell(scope_disarmed_ns, 1),
                    TablePrinter::Cell(scope_armed_ns, 1)});
  ops_table.AddRow({"SloTracker::Record",
                    TablePrinter::Cell(slo_disarmed_ns, 1),
                    TablePrinter::Cell(slo_armed_ns, 1)});
  ops_table.Print();

  bench_util::WriteMetricsSnapshot("provenance_overhead");
  // Exit code encodes the acceptance bound so CI can gate on it; allow a
  // little slack over the documented 2% for scheduler noise on shared hosts.
  return overhead_percent <= 5.0 ? 0 : 1;
}
