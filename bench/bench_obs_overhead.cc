// Observability overhead microbenchmark: proves the ObsOptions::enabled kill
// switch makes the instrumentation layer near-zero-cost when off.
//
// Part 1 times the fully instrumented ComputeDpMatrix (the hottest span- and
// counter-bearing path) on a Figure 4(a)-style workload with the obs layer
// disabled vs enabled, over several repetitions, and reports the median of
// each plus the relative overhead. The acceptance bound is: disabled-mode
// timing within 2% of the uninstrumented seed; since the disabled path
// compiles to a relaxed atomic load plus a skipped branch, disabled-mode
// median is the proxy measured here (enabled-mode is reported for context).
//
// Part 2 reports the per-operation cost of the primitives themselves
// (counter increment, histogram observe, scoped span) in both modes.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "common/timer.h"
#include "index/binary_tree.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pasa/bulk_dp_binary.h"
#include "workload/bay_area.h"

namespace {

using namespace pasa;

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

// Runs ComputeDpMatrix `reps` times and returns the median wall-clock.
double TimeDp(const BinaryTree& tree, int k, int reps) {
  std::vector<double> seconds;
  seconds.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    Result<DpMatrix> matrix = ComputeDpMatrix(tree, k, DpOptions{});
    if (!matrix.ok()) return -1.0;
    seconds.push_back(timer.ElapsedSeconds());
  }
  return Median(std::move(seconds));
}

void SetEnabled(bool enabled) {
  obs::ObsOptions options;
  options.enabled = enabled;
  obs::Configure(options);
}

}  // namespace

int main() {
  using bench_util::PaperScaleOptions;
  using bench_util::Scaled;

  bench_util::PrintHeader(
      "Observability overhead: instrumented Bulk_dp, obs off vs on");
  const BayAreaGenerator generator(PaperScaleOptions());
  const LocationDatabase master = generator.GenerateMaster();
  const int k = 50;
  const int reps = 5;
  const LocationDatabase db =
      BayAreaGenerator::Sample(master, Scaled(250'000), 2);
  Result<BinaryTree> tree = BinaryTree::Build(
      db, generator.extent(), TreeOptions{.split_threshold = k});
  if (!tree.ok()) {
    std::fprintf(stderr, "tree build failed: %s\n",
                 tree.status().ToString().c_str());
    return 1;
  }

  // Warm-up run (page in the tree, stabilize the allocator) before timing.
  (void)TimeDp(*tree, k, 1);

  SetEnabled(false);
  const double off_seconds = TimeDp(*tree, k, reps);
  SetEnabled(true);
  obs::MetricsRegistry::Global().Reset();
  const double on_seconds = TimeDp(*tree, k, reps);
  if (off_seconds < 0.0 || on_seconds < 0.0) {
    std::fprintf(stderr, "DP run failed\n");
    return 1;
  }
  const double overhead_percent =
      (on_seconds - off_seconds) / off_seconds * 100.0;

  TablePrinter dp_table({"mode", "median of " + std::to_string(reps) +
                                     " runs (s)"});
  dp_table.AddRow({"obs disabled", TablePrinter::Cell(off_seconds, 4)});
  dp_table.AddRow({"obs enabled", TablePrinter::Cell(on_seconds, 4)});
  dp_table.Print();
  std::printf(
      "\nenabled-vs-disabled overhead: %+.2f%%\n"
      "Disabled mode is the kill-switch path: every instrumentation site\n"
      "reduces to one relaxed atomic load and a skipped branch, so it must\n"
      "stay within 2%% of the uninstrumented seed timing.\n",
      overhead_percent);

  bench_util::PrintHeader("Per-operation cost of the obs primitives");
  constexpr int kOps = 5'000'000;
  TablePrinter ops_table({"primitive", "obs off (ns/op)", "obs on (ns/op)"});
  auto time_ops = [](auto&& body) {
    WallTimer timer;
    for (int i = 0; i < kOps; ++i) body();
    return timer.ElapsedSeconds() * 1e9 / kOps;
  };

  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter& counter = registry.GetCounter("obs_overhead/counter");
  obs::Histogram& histogram =
      registry.GetHistogram("obs_overhead/histogram_seconds");
  double costs[3][2];
  for (const bool enabled : {false, true}) {
    SetEnabled(enabled);
    const int column = enabled ? 1 : 0;
    costs[0][column] = time_ops([&] { counter.Increment(); });
    costs[1][column] = time_ops([&] { histogram.Observe(1e-4); });
    costs[2][column] =
        time_ops([&] { obs::ScopedSpan span("obs_overhead/span"); });
  }
  const char* names[3] = {"counter increment", "histogram observe",
                          "scoped span"};
  for (int i = 0; i < 3; ++i) {
    ops_table.AddRow({names[i], TablePrinter::Cell(costs[i][0], 1),
                      TablePrinter::Cell(costs[i][1], 1)});
  }
  ops_table.Print();

  SetEnabled(true);
  bench_util::WriteMetricsSnapshot("obs_overhead");
  // Exit code encodes the acceptance bound so CI can gate on it; allow a
  // little slack over the documented 2% for scheduler noise on shared hosts.
  return overhead_percent <= 5.0 ? 0 : 1;
}
