// Memory footprint sweep: builds the full serving stack (snapshot, policy
// tree, configuration matrix, extracted policy, user index, POI grid,
// answer cache) at |D| = 10^4, 10^5 and 10^6 users and snapshots the
// per-subsystem byte accounting into BENCH_footprint.json, the capacity
// counterpart of the latency snapshots: benchstat compares a fresh run
// against bench/baseline/BENCH_footprint.json and flags any bytes-per-user
// regression, so a change that silently doubles a structure's footprint
// fails CI the same way a 2x slowdown would.
//
// Measurement keys are absolute (not PASA_BENCH_SCALE-scaled) so snapshots
// stay comparable across hosts; memory is deterministic per seed. Set
// PASA_FOOTPRINT_MAX=<users> to cap the sweep on constrained hosts —
// benchstat only compares keys both snapshots share, so a capped candidate
// still gates the sizes it ran.
//
// Usage: bench_footprint [--out PATH]   (default BENCH_footprint.json)

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "csp/server.h"
#include "obs/benchstat.h"
#include "obs/mem.h"
#include "workload/bay_area.h"

namespace {

using namespace pasa;

constexpr size_t kSweep[] = {10'000, 100'000, 1'000'000};

std::string KeyPrefix(size_t users) {
  return "footprint/d" + std::to_string(users) + "/";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_footprint.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  size_t max_users = kSweep[sizeof(kSweep) / sizeof(kSweep[0]) - 1];
  if (const char* env = std::getenv("PASA_FOOTPRINT_MAX")) {
    max_users = static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }

  bench_util::PrintHeader(
      "pasa memory footprint sweep: bytes per user vs |D|");

  obs::MemoryAccountant& accountant = obs::MemoryAccountant::Global();
  accountant.Enable();

  std::map<std::string, double> run;
  TablePrinter table({"|D|", "total MiB", "bytes/user", "policy tree MiB",
                      "snapshot MiB"});
  for (size_t users : kSweep) {
    if (users > max_users) {
      std::printf("(|D|=%zu skipped: PASA_FOOTPRINT_MAX=%zu)\n", users,
                  max_users);
      continue;
    }
    BayAreaOptions bay;
    bay.log2_map_side = 17;
    bay.seed = 3;
    const BayAreaGenerator generator(bay);
    const LocationDatabase db = generator.Generate(users);

    Rng rng(9);
    std::vector<PointOfInterest> pois;
    for (size_t i = 0; i < 2048; ++i) {
      pois.push_back(PointOfInterest{
          static_cast<int64_t>(i),
          Point{static_cast<Coord>(rng.NextBounded(generator.extent().side())),
                static_cast<Coord>(rng.NextBounded(generator.extent().side()))},
          "poi"});
    }
    CspOptions options;
    options.k = 50;
    Result<CspServer> csp = CspServer::Start(db, generator.extent(),
                                             PoiDatabase(std::move(pois)),
                                             options);
    if (!csp.ok()) {
      std::fprintf(stderr, "CSP start failed at |D|=%zu: %s\n", users,
                   csp.status().ToString().c_str());
      return 1;
    }

    accountant.Reset();
    csp->ReportMemory(accountant);
    obs::ReportObsMemory(accountant);

    const std::map<std::string, uint64_t> snapshot = accountant.Snapshot();
    const uint64_t total = accountant.TotalBytes();
    const double bytes_per_user = static_cast<double>(total) / users;
    const std::string prefix = KeyPrefix(users);
    run[prefix + "total_bytes"] = static_cast<double>(total);
    run[prefix + "bytes_per_user"] = bytes_per_user;
    for (const auto& [name, bytes] : snapshot) {
      run[prefix + name] = static_cast<double>(bytes);
    }
    const double mib = 1024.0 * 1024.0;
    table.AddRow({std::to_string(users),
                  TablePrinter::Cell(total / mib, 1),
                  TablePrinter::Cell(bytes_per_user, 1),
                  TablePrinter::Cell(
                      snapshot.count("csp/policy_tree")
                          ? snapshot.at("csp/policy_tree") / mib
                          : 0.0,
                      1),
                  TablePrinter::Cell(snapshot.count("csp/snapshot")
                                         ? snapshot.at("csp/snapshot") / mib
                                         : 0.0,
                                     1)});
  }
  accountant.Disable();
  table.Print();

  // Memory is deterministic per seed, so one run is the whole population:
  // stddev 0 makes the benchstat noise gate a pure threshold gate.
  const obs::benchstat::Snapshot snapshot =
      obs::benchstat::Aggregate("footprint", {run});
  const Status written = obs::benchstat::WriteSnapshotFile(snapshot, out_path);
  if (!written.ok()) {
    std::fprintf(stderr, "snapshot write failed: %s\n",
                 written.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %zu measurements to %s\n",
              snapshot.measurements.size(), out_path.c_str());
  return run.empty() ? 1 : 0;
}
