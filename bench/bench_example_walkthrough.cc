// Experiment E1 — the Table I / Figure 1 / Examples 1-8 walkthrough as a
// machine-checked table: the 2-inside policy's breach and the optimal
// policy-aware policy P2.

#include <cstdio>

#include "attack/auditor.h"
#include "common/stats.h"
#include "common/table.h"
#include "pasa/anonymizer.h"
#include "policies/casper.h"
#include "policies/k_inside_binary.h"
#include "policies/k_inside_quad.h"

int main() {
  using namespace pasa;

  std::printf("Table I walkthrough: 5 users on the 4x4 map, k = 2\n");
  std::printf("==================================================\n");

  LocationDatabase db;
  db.Add(1, {0, 0});  // Alice
  db.Add(2, {0, 1});  // Bob
  db.Add(3, {0, 3});  // Carol
  db.Add(4, {2, 0});  // Sam
  db.Add(5, {3, 3});  // Tom
  const MapExtent extent{0, 0, 2};
  const int k = 2;
  const char* names[] = {"Alice", "Bob", "Carol", "Sam", "Tom"};

  AnonymizerOptions options;
  options.k = k;
  Result<Anonymizer> aware = Anonymizer::Build(db, extent, options);
  Result<CloakingTable> puq = PolicyUnawareQuad(extent).Cloak(db, k);
  Result<CloakingTable> pub = PolicyUnawareBinary(extent).Cloak(db, k);
  Result<CloakingTable> casper = CasperPolicy(extent).Cloak(db, k);
  if (!aware.ok() || !puq.ok() || !pub.ok() || !casper.ok()) {
    std::fprintf(stderr, "policy construction failed\n");
    return 1;
  }

  TablePrinter table({"user", "loc", "PUQ cloak", "Casper cloak",
                      "PolicyAware-OPT cloak"});
  for (size_t row = 0; row < db.size(); ++row) {
    table.AddRow({names[row], db.row(row).location.ToString(),
                  puq->cloak(row).ToString(), casper->cloak(row).ToString(),
                  aware->CloakForRow(row).ToString()});
  }
  table.Print();

  TablePrinter audit({"policy", "cost", "min senders (unaware)",
                      "min senders (aware)", "verdict"});
  struct Entry {
    const char* name;
    const CloakingTable* policy;
  };
  const CloakingTable aware_table = aware->policy();
  for (const Entry& e :
       {Entry{"PUQ (2-inside)", &*puq}, Entry{"PUB (2-inside)", &*pub},
        Entry{"Casper (2-inside)", &*casper},
        Entry{"PolicyAware-OPT", &aware_table}}) {
    const AuditReport a = AuditPolicyAware(*e.policy);
    const AuditReport u = AuditPolicyUnaware(*e.policy, db);
    audit.AddRow({e.name, WithThousandsSeparators(e.policy->TotalCost()),
                  TablePrinter::Cell(static_cast<int64_t>(
                      u.min_possible_senders)),
                  TablePrinter::Cell(static_cast<int64_t>(
                      a.min_possible_senders)),
                  a.Anonymous(k) ? "sender 2-anonymous"
                                 : "BREACHED by policy-aware attacker"});
  }
  std::printf("\n");
  audit.Print();
  std::printf(
      "\nAs in Example 1/6: the semi-quadrant 2-inside policies (Casper,\n"
      "PUB) expose Carol to the policy-aware attacker. PUQ escapes on this\n"
      "instance only because its quadrant cloaks are coarser (cost 56); see\n"
      "the attack_demo example for a PUQ breach. The optimal policy-aware\n"
      "policy (Example 8's P2, cost 40) cloaks {Alice,Bob,Carol} at R3 and\n"
      "{Sam,Tom} at R2 - safe against both attacker classes.\n");
  return 0;
}
