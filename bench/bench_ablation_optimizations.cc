// Experiment E10 — ablation of the Section V optimizations: the first-cut
// quad-tree Bulk_dp vs the binary-tree DP with/without Lemma-5 pruning and
// with/without the two-stage temp-matrix evaluation. Every variant must
// report the same optimal cost on the same tree; the running times expose
// the value of each optimization.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"
#include "pasa/anonymizer.h"
#include "pasa/bulk_dp_binary.h"
#include "pasa/bulk_dp_quad.h"
#include "workload/bay_area.h"

namespace {

using namespace pasa;

// Times one binary-DP variant; returns (seconds, cost).
std::pair<double, Cost> TimeBinary(const BinaryTree& tree, int k,
                                   const DpOptions& options) {
  WallTimer timer;
  Result<DpMatrix> matrix = ComputeDpMatrix(tree, k, options);
  if (!matrix.ok()) return {-1.0, -1};
  Result<Cost> cost = matrix->OptimalCost(tree);
  if (!cost.ok()) return {-1.0, -1};
  return {timer.ElapsedSeconds(), *cost};
}

}  // namespace

int main() {
  using bench_util::PaperScaleOptions;
  using bench_util::Scaled;

  bench_util::PrintHeader(
      "Ablation A: first-cut quad Bulk_dp (O(|T||D|^5)-family) vs the "
      "optimized binary DP (k = 5, tiny |D| - the first cut explodes "
      "beyond this)");
  BayAreaOptions small = PaperScaleOptions();
  small.log2_map_side = 12;
  const BayAreaGenerator small_gen(small);
  {
    TablePrinter table({"|D|", "quad first-cut (s)", "quad cost",
                        "binary two-stage (s)", "binary cost"});
    const int k = 5;
    for (const size_t n : {100u, 200u, 400u}) {
      const LocationDatabase db = small_gen.Generate(n);
      const TreeOptions tree_options{.split_threshold = k};
      Result<QuadTree> quad =
          QuadTree::Build(db, small_gen.extent(), tree_options);
      Result<BinaryTree> binary =
          BinaryTree::Build(db, small_gen.extent(), tree_options);
      if (!quad.ok() || !binary.ok()) return 1;

      WallTimer quad_timer;
      Result<QuadDpMatrix> quad_matrix = ComputeQuadDpMatrix(*quad, k);
      if (!quad_matrix.ok()) return 1;
      Result<Cost> quad_cost = quad_matrix->OptimalCost(*quad);
      const double quad_seconds = quad_timer.ElapsedSeconds();

      const auto [binary_seconds, binary_cost] =
          TimeBinary(*binary, k, DpOptions{});
      table.AddRow({WithThousandsSeparators(static_cast<int64_t>(n)),
                    TablePrinter::Cell(quad_seconds, 4),
                    WithThousandsSeparators(quad_cost.ok() ? *quad_cost : -1),
                    TablePrinter::Cell(binary_seconds, 4),
                    WithThousandsSeparators(binary_cost)});
    }
    table.Print();
    std::printf(
        "(Quad and binary costs differ slightly: different cloak families.\n"
        " Binary is never worse; see the bulkdp tests.)\n");
  }

  bench_util::PrintHeader(
      "Ablation B: Lemma-5 pruning and two-stage evaluation (k = 25)");
  {
    const BayAreaGenerator generator(PaperScaleOptions());
    const LocationDatabase master = generator.GenerateMaster();
    const int k = 25;
    TablePrinter table({"|D|", "no opts (s)", "pruning only (s)",
                        "two-stage only (s)", "both (s)", "costs equal?"});
    // The unoptimized variants are O(|B||D|^3); sizes are chosen so the
    // worst column stays in seconds, which is exactly the paper's point.
    for (const size_t n : {500u, 1'000u, 2'000u}) {
      const LocationDatabase db = BayAreaGenerator::Sample(master, n, 8);
      Result<BinaryTree> tree = BinaryTree::Build(
          db, generator.extent(), TreeOptions{.split_threshold = k});
      if (!tree.ok()) return 1;

      const auto none = TimeBinary(
          *tree, k, DpOptions{.lemma5_pruning = false, .two_stage = false});
      const auto pruning_only = TimeBinary(
          *tree, k, DpOptions{.lemma5_pruning = true, .two_stage = false});
      const auto staged_only = TimeBinary(
          *tree, k, DpOptions{.lemma5_pruning = false, .two_stage = true});
      const auto both = TimeBinary(
          *tree, k, DpOptions{.lemma5_pruning = true, .two_stage = true});
      const bool equal = none.second == pruning_only.second &&
                         none.second == staged_only.second &&
                         none.second == both.second;
      table.AddRow({WithThousandsSeparators(static_cast<int64_t>(db.size())),
                    TablePrinter::Cell(none.first, 3),
                    TablePrinter::Cell(pruning_only.first, 3),
                    TablePrinter::Cell(staged_only.first, 3),
                    TablePrinter::Cell(both.first, 3),
                    equal ? "yes" : "NO"});
    }
    table.Print();
    std::printf(
        "\nExpected shape: both optimizations independently cut time, their\n"
        "combination is fastest, and the optimal cost never changes.\n");
  }

  bench_util::PrintHeader(
      "Ablation C: with Lemma-5 pruning on, O(|B|(kh)^3) direct vs "
      "O(|B|(kh)^2) two-stage (k = 10)");
  {
    const BayAreaGenerator generator(PaperScaleOptions());
    const LocationDatabase master = generator.GenerateMaster();
    const int k = 10;
    TablePrinter table(
        {"|D|", "direct (s)", "two-stage (s)", "speedup", "costs equal?"});
    for (const size_t n : {Scaled(10'000), Scaled(50'000), Scaled(200'000)}) {
      const LocationDatabase db = BayAreaGenerator::Sample(master, n, 9);
      Result<BinaryTree> tree = BinaryTree::Build(
          db, generator.extent(), TreeOptions{.split_threshold = k});
      if (!tree.ok()) return 1;
      const auto direct = TimeBinary(
          *tree, k, DpOptions{.lemma5_pruning = true, .two_stage = false});
      const auto staged = TimeBinary(
          *tree, k, DpOptions{.lemma5_pruning = true, .two_stage = true});
      table.AddRow({WithThousandsSeparators(static_cast<int64_t>(db.size())),
                    TablePrinter::Cell(direct.first, 3),
                    TablePrinter::Cell(staged.first, 3),
                    TablePrinter::Cell(direct.first / staged.first, 1),
                    direct.second == staged.second ? "yes" : "NO"});
    }
    table.Print();
    std::printf(
        "\nExpected shape: the two-stage evaluation's advantage widens with\n"
        "|D| while both return the identical optimal cost.\n");
  }

  bench_util::PrintHeader(
      "Ablation D (extension): fixed vertical cuts (the paper) vs adaptive "
      "balance-driven cuts (k = 50)");
  {
    const BayAreaGenerator generator(PaperScaleOptions());
    const LocationDatabase master = generator.GenerateMaster();
    const int k = 50;
    TablePrinter table({"|D|", "vertical avg area", "adaptive avg area",
                        "adaptive/vertical"});
    for (const size_t n : {Scaled(100'000), Scaled(500'000)}) {
      const LocationDatabase db = BayAreaGenerator::Sample(master, n, 10);
      AnonymizerOptions vertical;
      vertical.k = k;
      AnonymizerOptions adaptive = vertical;
      adaptive.orientation = SplitOrientation::kAdaptive;
      Result<Anonymizer> v =
          Anonymizer::Build(db, generator.extent(), vertical);
      Result<Anonymizer> a =
          Anonymizer::Build(db, generator.extent(), adaptive);
      if (!v.ok() || !a.ok()) return 1;
      const double va = v->policy().AverageArea();
      const double aa = a->policy().AverageArea();
      table.AddRow({WithThousandsSeparators(static_cast<int64_t>(db.size())),
                    TablePrinter::Cell(va, 0), TablePrinter::Cell(aa, 0),
                    TablePrinter::Cell(aa / va, 3)});
    }
    table.Print();
    std::printf(
        "\nExpected shape: the adaptive cut (the run-time orientation choice\n"
        "the paper credits to Casper but leaves out for simplicity) trims\n"
        "average cloak area on skewed data.\n");
  }
  bench_util::WriteMetricsSnapshot("ablation_optimizations");
  return 0;
}
