// Fault-injection overhead microbenchmark: proves the FaultInjector kill
// switch makes the hardened serving path near-zero-cost when no plan is
// armed (the production configuration).
//
// Part 1 times the full CSP request path — validate, cloak, resilient LBS
// fetch through the answer cache — with the injector disarmed vs armed with
// a zero-probability plan (every point consulted, nothing fires). The
// acceptance bound mirrors bench_obs_overhead: the disarmed path adds one
// relaxed atomic load per injection point, so disarmed-mode timing must
// stay within 2% of the pre-robustness seed; armed-with-quiet-plan is
// reported for context (it pays the per-point mutex + schedule bookkeeping).
//
// Part 2 reports the per-consultation cost of ShouldInject itself in both
// modes.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "common/timer.h"
#include "csp/server.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "workload/bay_area.h"
#include "workload/requests.h"

namespace {

using namespace pasa;

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

// Serves the same request stream `reps` times, returning the median
// wall-clock of one pass. The cache is flushed per pass so every pass does
// identical work (same hits, same misses, same provider fetches).
double TimeServing(CspServer& csp, const std::vector<ServiceRequest>& stream,
                   int reps) {
  std::vector<double> seconds;
  seconds.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    csp.FlushAnswerCache();
    WallTimer timer;
    for (const ServiceRequest& sr : stream) {
      if (!csp.HandleRequest(sr).ok()) return -1.0;
    }
    seconds.push_back(timer.ElapsedSeconds());
  }
  return Median(std::move(seconds));
}

// A plan naming every injection point with probability zero: the armed slow
// path runs end to end (lookup, schedule, probability draw) but no fault
// ever fires, isolating the bookkeeping cost.
fault::FaultPlan QuietPlan() {
  fault::FaultPlan plan;
  for (const std::string_view point : fault::KnownFaultPoints()) {
    fault::FaultPointConfig config{std::string(point)};
    config.probability = 0.0;
    plan.points.push_back(config);
  }
  return plan;
}

}  // namespace

int main() {
  using bench_util::Scaled;

  bench_util::PrintHeader(
      "Fault-injection overhead: CSP request path, disarmed vs armed-quiet");
  BayAreaOptions bay;
  bay.log2_map_side = 15;
  bay.num_intersections = 2000;
  bay.users_per_intersection = 10;
  bay.seed = 3;
  const BayAreaGenerator generator(bay);
  const LocationDatabase db = generator.Generate(Scaled(50'000));
  const int k = 50;
  const int reps = 5;

  Rng rng(9);
  std::vector<PointOfInterest> pois;
  for (size_t i = 0; i < 2048; ++i) {
    pois.push_back(PointOfInterest{
        static_cast<int64_t>(i),
        Point{static_cast<Coord>(rng.NextBounded(generator.extent().side())),
              static_cast<Coord>(rng.NextBounded(generator.extent().side()))},
        "poi"});
  }
  CspOptions options;
  options.k = k;
  Result<CspServer> csp = CspServer::Start(db, generator.extent(),
                                           PoiDatabase(std::move(pois)),
                                           options);
  if (!csp.ok()) {
    std::fprintf(stderr, "CSP start failed: %s\n",
                 csp.status().ToString().c_str());
    return 1;
  }
  RequestGenerator requests(13);
  const std::vector<ServiceRequest> stream =
      requests.Draw(csp->snapshot(), Scaled(100'000));

  // Warm-up pass (page in the policy, stabilize the allocator).
  (void)TimeServing(*csp, stream, 1);

  fault::FaultInjector::Global().Disarm();
  const double disarmed_seconds = TimeServing(*csp, stream, reps);
  fault::FaultInjector::Global().Arm(QuietPlan(), 1);
  const double armed_seconds = TimeServing(*csp, stream, reps);
  fault::FaultInjector::Global().Disarm();
  if (disarmed_seconds < 0.0 || armed_seconds < 0.0) {
    std::fprintf(stderr, "serving pass failed\n");
    return 1;
  }
  const double overhead_percent =
      (armed_seconds - disarmed_seconds) / disarmed_seconds * 100.0;

  TablePrinter table({"mode", "median of " + std::to_string(reps) +
                                  " passes (s)"});
  table.AddRow({"injector disarmed", TablePrinter::Cell(disarmed_seconds, 4)});
  table.AddRow({"armed, quiet plan", TablePrinter::Cell(armed_seconds, 4)});
  table.Print();
  std::printf(
      "\narmed-vs-disarmed overhead: %+.2f%%\n"
      "Disarmed is the production kill-switch path: every injection point\n"
      "reduces to one relaxed atomic load and a skipped branch, so the\n"
      "instrumented request path must stay within 2%% of the baseline.\n",
      overhead_percent);

  bench_util::PrintHeader("Per-consultation cost of ShouldInject");
  constexpr int kOps = 5'000'000;
  auto time_ops = [](auto&& body) {
    WallTimer timer;
    for (int i = 0; i < kOps; ++i) body();
    return timer.ElapsedSeconds() * 1e9 / kOps;
  };
  fault::FaultInjector& injector = fault::FaultInjector::Global();
  const double disarmed_ns =
      time_ops([&] { injector.ShouldInject(fault::kLbsError); });
  injector.Arm(QuietPlan(), 1);
  const double armed_ns =
      time_ops([&] { injector.ShouldInject(fault::kLbsError); });
  injector.Disarm();
  TablePrinter ops_table({"mode", "ns/consultation"});
  ops_table.AddRow({"disarmed", TablePrinter::Cell(disarmed_ns, 1)});
  ops_table.AddRow({"armed, quiet plan", TablePrinter::Cell(armed_ns, 1)});
  ops_table.Print();

  bench_util::WriteMetricsSnapshot("fault_overhead");
  // Exit code encodes the acceptance bound so CI can gate on it; allow a
  // little slack over the documented 2% for scheduler noise on shared hosts.
  return overhead_percent <= 5.0 ? 0 : 1;
}
