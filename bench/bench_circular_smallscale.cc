// Experiment E11 — the Theorem-1 side: Optimal Policy-aware
// Bulk-anonymization with Circular cloaks is NP-complete. The exact
// branch-and-bound's search effort blows up with |D| while the greedy
// heuristic stays polynomial and close to optimal on small instances.

#include <cstdio>

#include "circular/exact_solver.h"
#include "circular/greedy_solver.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"
#include "tests/test_util.h"

int main() {
  using namespace pasa;
  using testing_util::RandomDb;

  std::printf(
      "Theorem 1: circular-cloak optimal anonymization (exact vs greedy)\n");
  std::printf(
      "=================================================================\n\n");

  const MapExtent extent{0, 0, 6};
  const int k = 3;
  std::vector<Point> centers;
  {
    Rng rng(404);
    for (int c = 0; c < 3; ++c) {
      centers.push_back(Point{static_cast<Coord>(rng.NextBounded(64)),
                              static_cast<Coord>(rng.NextBounded(64))});
    }
  }

  TablePrinter table({"|D|", "exact nodes expanded", "exact time (s)",
                      "greedy time (s)", "greedy/optimal area"});
  for (const size_t n : {6u, 7u, 8u, 9u, 10u, 11u, 12u}) {
    Rng rng(1000 + n);
    const LocationDatabase db = RandomDb(&rng, n, extent);

    WallTimer exact_timer;
    Result<CircularSolution> exact = SolveExactCircular(db, centers, k, 16);
    if (!exact.ok()) {
      std::fprintf(stderr, "|D|=%zu exact failed: %s\n", n,
                   exact.status().ToString().c_str());
      continue;
    }
    const double exact_seconds = exact_timer.ElapsedSeconds();

    WallTimer greedy_timer;
    Result<CircularSolution> greedy = SolveGreedyCircular(db, centers, k);
    if (!greedy.ok()) continue;
    const double greedy_seconds = greedy_timer.ElapsedSeconds();

    table.AddRow(
        {TablePrinter::Cell(static_cast<int64_t>(n)),
         WithThousandsSeparators(static_cast<int64_t>(exact->work)),
         TablePrinter::Cell(exact_seconds, 4),
         TablePrinter::Cell(greedy_seconds, 4),
         TablePrinter::Cell(greedy->total_area / exact->total_area, 3)});
  }
  table.Print();

  std::printf("\nGreedy at scale (no exact reference):\n");
  TablePrinter big({"|D|", "greedy time (s)", "avg cloak area",
                    "min group size"});
  for (const size_t n : {100u, 300u, 1000u}) {
    Rng rng(2000 + n);
    const LocationDatabase db = RandomDb(&rng, n, extent);
    WallTimer timer;
    Result<CircularSolution> greedy = SolveGreedyCircular(db, centers, 10);
    if (!greedy.ok()) continue;
    // Group sizes under the policy-aware attacker.
    size_t min_group = db.size();
    {
      std::vector<size_t> counts;
      std::vector<int32_t> seen;
      for (const int32_t a : greedy->assignment) {
        bool found = false;
        for (size_t i = 0; i < seen.size(); ++i) {
          if (seen[i] == a) {
            ++counts[i];
            found = true;
            break;
          }
        }
        if (!found) {
          seen.push_back(a);
          counts.push_back(1);
        }
      }
      for (const size_t c : counts) min_group = std::min(min_group, c);
    }
    big.AddRow({WithThousandsSeparators(static_cast<int64_t>(n)),
                TablePrinter::Cell(timer.ElapsedSeconds(), 3),
                TablePrinter::Cell(greedy->total_area /
                                       static_cast<double>(db.size()),
                                   1),
                TablePrinter::Cell(static_cast<int64_t>(min_group))});
  }
  big.Print();
  std::printf(
      "\nExpected shape: exact search effort grows exponentially in |D|\n"
      "(Theorem 1); greedy stays polynomial with bounded area overhead.\n");
  return 0;
}
