// Distributed-tracing overhead microbenchmark: proves the trace-context
// hook added to every ScopedSpan is near-free when no trace is active.
//
// Every span construction now consults the thread-local trace context (one
// TLS load) to decide whether to mint span ids and collect — the state
// every untraced request is in. Part 1 times the fully instrumented
// ComputeDpMatrix three ways: obs disabled (spans inert), obs enabled with
// no trace context installed (the disarmed hook, the production default),
// and obs enabled under an active trace context with a span collector
// armed (the fully traced path). The disarmed-vs-disabled overhead is
// gated at 5% via the exit code; the traced column is reported for
// context.
//
// Part 2 reports the per-operation cost of the primitives: a scoped span
// untraced vs traced vs traced-and-collected, and TailTraceRing::Offer
// while the ring is disabled (the per-request tail-capture guard).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "common/timer.h"
#include "index/binary_tree.h"
#include "obs/metrics.h"
#include "obs/tail_trace.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "pasa/bulk_dp_binary.h"
#include "workload/bay_area.h"

namespace {

using namespace pasa;

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

// Runs ComputeDpMatrix `reps` times and returns the median wall-clock.
double TimeDp(const BinaryTree& tree, int k, int reps) {
  std::vector<double> seconds;
  seconds.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    Result<DpMatrix> matrix = ComputeDpMatrix(tree, k, DpOptions{});
    if (!matrix.ok()) return -1.0;
    seconds.push_back(timer.ElapsedSeconds());
  }
  return Median(std::move(seconds));
}

void SetEnabled(bool enabled) {
  obs::ObsOptions options;
  options.enabled = enabled;
  obs::Configure(options);
}

}  // namespace

int main() {
  using bench_util::PaperScaleOptions;
  using bench_util::Scaled;

  bench_util::PrintHeader(
      "Trace-context overhead: instrumented Bulk_dp, untraced vs traced");
  const BayAreaGenerator generator(PaperScaleOptions());
  const LocationDatabase master = generator.GenerateMaster();
  const int k = 50;
  const int reps = 5;
  const LocationDatabase db =
      BayAreaGenerator::Sample(master, Scaled(250'000), 2);
  Result<BinaryTree> tree = BinaryTree::Build(
      db, generator.extent(), TreeOptions{.split_threshold = k});
  if (!tree.ok()) {
    std::fprintf(stderr, "tree build failed: %s\n",
                 tree.status().ToString().c_str());
    return 1;
  }

  // Warm-up run (page in the tree, stabilize the allocator) before timing.
  (void)TimeDp(*tree, k, 1);

  SetEnabled(false);
  const double off_seconds = TimeDp(*tree, k, reps);

  SetEnabled(true);
  obs::MetricsRegistry::Global().Reset();
  const double disarmed_seconds = TimeDp(*tree, k, reps);

  double traced_seconds = -1.0;
  {
    obs::TraceContext ctx;
    ctx.trace_id = obs::NewTraceId();
    ctx.sampled = true;
    obs::ScopedTraceContext scope(ctx);
    obs::SpanCollector collector;
    obs::ScopedSpanCollector arm(&collector);
    traced_seconds = TimeDp(*tree, k, reps);
  }
  if (off_seconds < 0.0 || disarmed_seconds < 0.0 || traced_seconds < 0.0) {
    std::fprintf(stderr, "DP run failed\n");
    return 1;
  }
  const double disarmed_percent =
      (disarmed_seconds - off_seconds) / off_seconds * 100.0;
  const double traced_percent =
      (traced_seconds - disarmed_seconds) / disarmed_seconds * 100.0;

  TablePrinter dp_table({"mode", "median of " + std::to_string(reps) +
                                     " runs (s)"});
  dp_table.AddRow({"obs disabled", TablePrinter::Cell(off_seconds, 4)});
  dp_table.AddRow(
      {"enabled, no trace context", TablePrinter::Cell(disarmed_seconds, 4)});
  dp_table.AddRow(
      {"enabled, traced + collected", TablePrinter::Cell(traced_seconds, 4)});
  dp_table.Print();
  std::printf(
      "\nno-context-vs-disabled overhead: %+.2f%% (gate: <= 5%%)\n"
      "traced-vs-no-context overhead:   %+.2f%% (reported, not gated)\n"
      "The disarmed hook is one thread-local load per span; requests that\n"
      "carry no trace context must not pay for the tracing subsystem.\n",
      disarmed_percent, traced_percent);

  bench_util::PrintHeader("Per-operation cost of the tracing primitives");
  auto time_ops = [](int ops, auto&& body) {
    WallTimer timer;
    for (int i = 0; i < ops; ++i) body();
    return timer.ElapsedSeconds() * 1e9 / ops;
  };
  constexpr int kOps = 5'000'000;
  // The collected case appends one CollectedSpan per op: keep the count
  // small enough that the span buffer stays cache- and memory-friendly.
  constexpr int kCollectedOps = 200'000;

  TablePrinter ops_table({"primitive", "ns/op"});
  const double span_untraced =
      time_ops(kOps, [&] { obs::ScopedSpan span("trace_overhead/span"); });
  double span_traced = 0.0;
  double span_collected = 0.0;
  {
    obs::TraceContext ctx;
    ctx.trace_id = obs::NewTraceId();
    obs::ScopedTraceContext scope(ctx);
    span_traced =
        time_ops(kOps, [&] { obs::ScopedSpan span("trace_overhead/span"); });
    obs::SpanCollector collector;
    collector.spans.reserve(static_cast<size_t>(kCollectedOps));
    obs::ScopedSpanCollector arm(&collector);
    span_collected = time_ops(
        kCollectedOps, [&] { obs::ScopedSpan span("trace_overhead/span"); });
  }
  obs::TailTraceRing ring;
  const double offer_disabled = time_ops(kOps, [&] {
    obs::TailTrace trace;
    ring.Offer(std::move(trace));
  });
  ops_table.AddRow(
      {"scoped span, no context", TablePrinter::Cell(span_untraced, 1)});
  ops_table.AddRow(
      {"scoped span, traced", TablePrinter::Cell(span_traced, 1)});
  ops_table.AddRow({"scoped span, traced + collected",
                    TablePrinter::Cell(span_collected, 1)});
  ops_table.AddRow({"tail ring offer, disabled",
                    TablePrinter::Cell(offer_disabled, 1)});
  ops_table.Print();

  bench_util::WriteMetricsSnapshot("trace_context_overhead");
  // Exit code encodes the acceptance bound so CI can gate on it.
  return disarmed_percent <= 5.0 ? 0 : 1;
}
