// Experiment E3 — Figure 4(a): bulk anonymization time vs |D| at k = 50,
// one series per server-pool size. The paper's shape: linear in |D|; 16
// servers anonymize 1.75M users in well under the single-server time.
//
// Server pools are simulated faithfully on this host: each jurisdiction is
// timed in isolation and the pool's wall-clock is the slowest jurisdiction
// (see DESIGN.md, substitution 2).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "parallel/runner.h"
#include "workload/bay_area.h"

int main() {
  using namespace pasa;
  using bench_util::PaperScaleOptions;
  using bench_util::Scaled;

  bench_util::PrintHeader(
      "Figure 4(a): bulk anonymization time vs |D| (k = 50)");
  const BayAreaGenerator generator(PaperScaleOptions());
  const LocationDatabase master = generator.GenerateMaster();
  const int k = 50;

  TablePrinter table(
      {"|D|", "1 server (s)", "4 servers (s)", "16 servers (s)",
       "32 servers (s)"});
  for (const size_t n :
       {Scaled(100'000), Scaled(250'000), Scaled(500'000), Scaled(1'000'000),
        Scaled(1'750'000)}) {
    const LocationDatabase db = BayAreaGenerator::Sample(master, n, 2);
    std::vector<std::string> row = {
        WithThousandsSeparators(static_cast<int64_t>(db.size()))};
    for (const size_t servers : {1u, 4u, 16u, 32u}) {
      ParallelRunOptions options;
      options.k = k;
      options.num_jurisdictions = servers;
      Result<ParallelRunReport> report =
          RunPartitioned(db, generator.extent(), options);
      if (!report.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     report.status().ToString().c_str());
        return 1;
      }
      row.push_back(TablePrinter::Cell(report->parallel_seconds, 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nExpected shape: each column grows linearly in |D|; more servers =>\n"
      "proportionally lower wall-clock (the paper reports <1 s for 1.75M on\n"
      "16 servers of 2005-era hardware).\n");
  bench_util::WriteMetricsSnapshot("fig4a_bulk_time");
  return 0;
}
