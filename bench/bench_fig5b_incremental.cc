// Experiment E6 — Figure 5(b): incremental maintenance of the configuration
// matrix vs bulk recomputation at |D| = 1M, k = 50, varying the fraction of
// users that move (<= 200 m) between snapshots. The paper's shape:
// incremental always at or below bulk, converging to bulk around 5% movers.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"
#include "pasa/incremental.h"
#include "workload/bay_area.h"
#include "workload/movement.h"

int main() {
  using namespace pasa;
  using bench_util::PaperScaleOptions;
  using bench_util::Scaled;

  bench_util::PrintHeader(
      "Figure 5(b): incremental maintenance vs bulk recomputation "
      "(|D| = 1M, k = 50)");
  const BayAreaGenerator generator(PaperScaleOptions());
  const LocationDatabase master = generator.GenerateMaster();
  const int k = 50;
  const LocationDatabase base =
      BayAreaGenerator::Sample(master, Scaled(1'000'000), 5);

  TablePrinter table({"moving users (%)", "incremental (s)", "bulk (s)",
                      "rows repaired", "costs equal?"});
  for (const double percent : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    LocationDatabase db = base;  // fresh copy per data point
    Result<IncrementalAnonymizer> engine =
        IncrementalAnonymizer::Build(db, generator.extent(), k, DpOptions{});
    if (!engine.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }

    MovementOptions movement;
    movement.moving_fraction = percent / 100.0;
    movement.max_distance = 200.0;
    movement.seed = 60 + static_cast<uint64_t>(percent * 10);
    const std::vector<UserMove> moves =
        DrawMoves(db, generator.extent(), movement);

    WallTimer incremental_timer;
    Result<size_t> repaired = engine->ApplyMoves(moves);
    if (!repaired.ok()) return 1;
    const double incremental_seconds = incremental_timer.ElapsedSeconds();
    if (!ApplyMovesToDatabase(moves, &db).ok()) return 1;

    WallTimer bulk_timer;
    Result<IncrementalAnonymizer> rebuilt =
        IncrementalAnonymizer::Build(db, generator.extent(), k, DpOptions{});
    if (!rebuilt.ok()) return 1;
    const double bulk_seconds = bulk_timer.ElapsedSeconds();

    Result<Cost> incremental_cost = engine->OptimalCost();
    Result<Cost> bulk_cost = rebuilt->OptimalCost();
    if (!incremental_cost.ok() || !bulk_cost.ok()) return 1;

    table.AddRow({TablePrinter::Cell(percent, 1),
                  TablePrinter::Cell(incremental_seconds, 3),
                  TablePrinter::Cell(bulk_seconds, 3),
                  WithThousandsSeparators(static_cast<int64_t>(*repaired)),
                  *incremental_cost == *bulk_cost ? "yes" : "NO"});
  }
  table.Print();
  std::printf(
      "\nExpected shape: incremental <= bulk everywhere; the gap closes as\n"
      "the moving fraction approaches ~5%% (most leaves go dirty and\n"
      "incremental degenerates into bulk re-anonymization).\n");
  bench_util::WriteMetricsSnapshot("fig5b_incremental");
  return 0;
}
