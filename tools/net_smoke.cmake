# ctest driver for the socket serving path: `pasa_cli serve --listen` and
# pasa_loadgen against each other over loopback.
#
# execute_process runs its COMMANDs concurrently as a pipeline, which is
# exactly what we need: the server starts listening while the load
# generator's --wait-ready-seconds connect loop retries until it is up.
# The loadgen verifies every response end to end (cloak contains the true
# location, group_size >= k), then sends a kShutdownRequest so the server
# exits on its own; --listen-duration is only the safety net.

set(LOC ${WORK_DIR}/net_smoke_locations.csv)
set(PORT 19473)

execute_process(COMMAND ${CLI} generate --n 3000 --seed 7 --map-log2-side 13
                        --out ${LOC}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate exited ${rc}\n${out}\n${err}")
endif()

# Closed-loop load on the epoll backend (the default). The loadgen comes
# first in the pipeline so its stdout drains into the still-running server
# (which ignores stdin) rather than into a closed pipe; the server's final
# stats table is what OUTPUT_VARIABLE captures. The loadgen's verification
# verdict is its exit code (1 on any non-k-anonymous answer, or on a
# /metrics cross-check mismatch against the admin plane: with --admin-port
# it scrapes pasa_net_requests_served before sending the shutdown and
# requires it to equal its own dispatched-request count).
math(EXPR ADMIN_PORT "${PORT} + 2")
execute_process(
  COMMAND ${LOADGEN} --port ${PORT} --in ${LOC} --k 20 --connections 4
          --requests 5000 --wait-ready-seconds 30 --shutdown 1
          --admin-port ${ADMIN_PORT}
  COMMAND ${CLI} serve --in ${LOC} --k 20 --listen ${PORT}
          --listen-duration 60 --admin-port ${ADMIN_PORT}
  RESULTS_VARIABLE rcs OUTPUT_VARIABLE serve_out ERROR_VARIABLE err)
list(GET rcs 0 loadgen_rc)
list(GET rcs 1 serve_rc)
if(NOT serve_rc EQUAL 0 OR NOT loadgen_rc EQUAL 0)
  message(FATAL_ERROR "serve exited ${serve_rc}, loadgen exited "
                      "${loadgen_rc}\n${serve_out}\n${err}")
endif()
foreach(required_fragment
        "final policy k-anonymous" "| yes" "requests served"
        "admission rejected" "admin connections / http requests")
  string(FIND "${serve_out}" "${required_fragment}" fragment_at)
  if(fragment_at EQUAL -1)
    message(FATAL_ERROR "serve output is missing '${required_fragment}':\n"
                        "${serve_out}")
  endif()
endforeach()

# Same exchange on the portable poll() backend, open loop, with the net/*
# fault plan armed: drops, torn writes and one-byte reads may cost latency
# and availability but never k-anonymity (the loadgen still verifies every
# answer that arrives).
set(PLAN ${WORK_DIR}/net_smoke_fault_plan.json)
file(WRITE ${PLAN} "{\n"
     "  \"seed\": 42,\n"
     "  \"points\": [\n"
     "    {\"point\": \"net/slow_read\", \"probability\": 0.2},\n"
     "    {\"point\": \"net/torn_write\", \"probability\": 0.3},\n"
     "    {\"point\": \"net/conn_drop\", \"probability\": 0.02}\n"
     "  ]\n"
     "}\n")
math(EXPR PORT2 "${PORT} + 1")
execute_process(
  COMMAND ${LOADGEN} --port ${PORT2} --in ${LOC} --k 20 --connections 2
          --mode open --rate 2000 --duration-seconds 1
          --wait-ready-seconds 30 --shutdown 1
  COMMAND ${CLI} serve --in ${LOC} --k 20 --listen ${PORT2}
          --listen-duration 60 --net-backend poll --fault-plan ${PLAN}
  RESULTS_VARIABLE rcs OUTPUT_VARIABLE serve_out ERROR_VARIABLE err)
list(GET rcs 0 loadgen_rc)
list(GET rcs 1 serve_rc)
if(NOT serve_rc EQUAL 0 OR NOT loadgen_rc EQUAL 0)
  message(FATAL_ERROR "chaos serve exited ${serve_rc}, loadgen exited "
                      "${loadgen_rc}\n${serve_out}\n${err}")
endif()
# The fault plan must actually have fired, and the final policy must still
# audit k-anonymous (the loadgen's exit 0 already certifies every answer).
string(REGEX MATCH "net faults injected[^|]*\\|[ ]*([0-9]+)" fault_row
       "${serve_out}")
if(NOT fault_row OR CMAKE_MATCH_1 EQUAL 0)
  message(FATAL_ERROR "no net/* faults fired during the chaos leg:\n"
                      "${serve_out}")
endif()
string(FIND "${serve_out}" "final policy k-anonymous" anonymous_at)
if(anonymous_at EQUAL -1)
  message(FATAL_ERROR "serve output is missing the anonymity verdict:\n"
                      "${serve_out}")
endif()

file(REMOVE ${LOC} ${PLAN})
