# ctest driver for the pasa_benchstat end-to-end smoke test: a real run
# over a scaled-down harness, a self-compare that must pass, and synthetic
# snapshot pairs exercising the regression / improvement / within-noise
# verdicts and their exit codes.

function(run_or_die expected_rc)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                  WORKING_DIRECTORY ${WORK_DIR}
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expected_rc})
    message(FATAL_ERROR "command ${ARGN} exited ${rc} (expected "
                        "${expected_rc})\nstdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

function(write_snapshot path mean stddev)
  file(WRITE ${path} "{\n  \"name\": \"synthetic\",\n  \"iterations\": 3,\n"
       "  \"measurements\": {\n    \"span/bulk_dp\": {\"mean\": ${mean}, "
       "\"stddev\": ${stddev}, \"min\": ${mean}, \"samples\": 3}\n  }\n}\n")
endfunction()

set(SNAP ${WORK_DIR}/BENCH_smoke_test.json)

run_or_die(0 ${BENCHSTAT} run --bench ${BENCH} --name smoke_test
           --iterations 2 --scale 0.002 --out ${SNAP})

if(NOT EXISTS ${SNAP})
  message(FATAL_ERROR "benchstat run did not write ${SNAP}")
endif()
file(READ ${SNAP} snap_json)
foreach(required_key "\"name\"" "\"iterations\"" "\"measurements\""
        "\"wall_seconds\"" "\"span/bulk_dp\"" "\"mean\"" "\"stddev\""
        "\"min\"" "\"samples\"")
  string(FIND "${snap_json}" "${required_key}" key_at)
  if(key_at EQUAL -1)
    message(FATAL_ERROR "snapshot is missing ${required_key}:\n${snap_json}")
  endif()
endforeach()

# Identical snapshots never regress.
run_or_die(0 ${BENCHSTAT} compare --baseline ${SNAP} --candidate ${SNAP})

# Synthetic pairs: an injected 20% slowdown beyond noise must exit 1; the
# reverse direction is an improvement (exit 0); a slowdown buried in noise
# passes (exit 0).
set(BASE ${WORK_DIR}/BENCH_syn_base.json)
set(SLOW ${WORK_DIR}/BENCH_syn_slow.json)
set(NOISY_BASE ${WORK_DIR}/BENCH_syn_noisy_base.json)
set(NOISY_SLOW ${WORK_DIR}/BENCH_syn_noisy_slow.json)
write_snapshot(${BASE} 1.0 0.01)
write_snapshot(${SLOW} 1.2 0.01)
write_snapshot(${NOISY_BASE} 1.0 0.5)
write_snapshot(${NOISY_SLOW} 1.2 0.5)

run_or_die(1 ${BENCHSTAT} compare --baseline ${BASE} --candidate ${SLOW})
run_or_die(0 ${BENCHSTAT} compare --baseline ${SLOW} --candidate ${BASE})
run_or_die(0 ${BENCHSTAT} compare --baseline ${NOISY_BASE}
           --candidate ${NOISY_SLOW})

file(REMOVE ${SNAP} ${BASE} ${SLOW} ${NOISY_BASE} ${NOISY_SLOW})
