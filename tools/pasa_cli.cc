// pasa_cli — command-line front end for the pasa library.
//
//   pasa_cli generate  --n 100000 --seed 1 --out locations.csv
//   pasa_cli anonymize --in locations.csv --k 50 --out cloaks.csv
//                      [--algorithm opt|casper|puq|pub]
//   pasa_cli audit     --locations locations.csv --cloaks cloaks.csv --k 50
//   pasa_cli stats     --in locations.csv [--k 50]
//   pasa_cli serve     --in locations.csv --k 50 [--snapshots N]
//                      [--requests R] [--seed S] [--watch N]
//                      [--listen PORT] [--listen-duration SECONDS]
//                      [--max-pending N] [--net-backend epoll|poll]
//                      [--admin-port P]
//   pasa_cli scrape    --port P [--path /metrics] [--check 1]
//   pasa_cli explain   --audit audit.jsonl [--rid N] [--limit N]
//                      [--only served|degraded|failed|rejected|violations]
//   pasa_cli trace-merge --client client.json --server server.json
//                      --out merged.json
//   pasa_cli slowest   --port P [--limit N]
//   pasa_cli explore   [--users N] [--k K] [--advances N] [--batches N]
//                      [--seed S] [--depth D] [--budget STATES]
//                      [--invariants all|kanon,cache,quarantine,repair]
//                      [--broken none|repair|quarantine] [--out F.json]
//                      [--replay F.json]
//
// explore runs the deterministic state-space explorer (src/sim): breadth-
// first over every interleaving of requests, snapshot advances, fault
// firings, cache expiries, and stale serves on a bounded instance, checking
// the invariant catalog at every state. Exit 0 when the bounded instance is
// covered cleanly, 4 when a violation is found (the shrunk counterexample
// goes to --out as a replayable script). --replay re-runs a committed
// counterexample script and exits 4 iff the expected invariant violation
// reproduces. See docs/robustness.md.
//
// trace-merge stitches a loadgen --trace-out file and a server --trace-out
// file into one Perfetto-loadable timeline: server events move to pid 2,
// timestamps are aligned via each file's wallClockBaseMicros anchor, and
// the shared trace ids' flow events draw client->server arrows.
// slowest fetches GET /trace from a serving admin plane and pretty-prints
// the tail-trace ring: span trees of the slowest and anomalous requests.
//
// serve --listen also accepts:
//   --exemplars 1             emit OpenMetrics exemplars (the trace id of
//                             each latency bucket's slowest request) on
//                             /metrics
//   --tail-slowest N          tail-trace ring: keep the N slowest requests
//                             per sliding window (default 8; 0 disables
//                             tail tracing)
//   --tail-window SECONDS     the sliding window (default 60)
//
// Every subcommand additionally accepts:
//   --metrics-out FILE.json   observability snapshot (per-phase bulk_dp
//                             spans, latency histograms, answer-cache
//                             counters) written as structured JSON on exit
//   --trace-out FILE.json     per-event timeline as Chrome trace_event
//                             JSON, loadable in Perfetto/chrome://tracing
//   --audit-out FILE.jsonl    arm the per-request provenance ring (plus the
//                             windowed telemetry and SLO tracker) and write
//                             one JSONL ProvenanceRecord per request on
//                             exit; inspect with `pasa_cli explain`
//   --audit-mode ring|stream  ring (default) writes the retained ring on
//                             exit; stream appends each record to
//                             --audit-out as it happens, so long runs keep
//                             records the ring has already overwritten
//   --slo-config FILE.json    replace the compiled-in SLO objectives with
//                             the config file's (see docs/serving.md)
//   --log-level LEVEL         runtime log filter (debug|info|warn|error|off)
//   --fault-plan FILE.json    arm the deterministic fault injector with a
//                             seeded fault schedule (see docs/robustness.md)
//   --fault-seed N            override the plan's seed for replaying a
//                             specific chaos schedule
//   --profile-hz HZ           arm the always-on span-sampling profiler at
//                             HZ samples/s before the subcommand runs
//   --profile-out FILE        write the profiler's collapsed stacks
//                             (flamegraph.pl/speedscope folded format) and
//                             self-time table on exit; implies --profile-hz
//                             97 when not given
// serve with --listen additionally accepts --admin-port P: a second
// loopback listener serving live HTTP telemetry (GET /metrics, /healthz,
// /slo, /vars, /memory, /profile?seconds=N) on the same event loop; 0 picks a free
// port. `pasa_cli scrape --port P` fetches one admin target and --check 1
// validates /metrics against the Prometheus text format.
// serve always arms the windowed telemetry and SLO burn-rate tracker;
// `--watch N` renders their dashboard every N epochs. anonymize and audit
// also print a human-readable metrics dump. See docs/observability.md and
// docs/robustness.md.
//
// CSV formats are documented in src/io/csv.h.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "attack/auditor.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"
#include "csp/server.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "index/binary_tree.h"
#include "io/csv.h"
#include "lbs/poi.h"
#include "lbs/provider.h"
#include "net/server.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/trace_context.h"
#include "net/http.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/provenance.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "obs/trace_sink.h"
#include "obs/window.h"
#include "pasa/anonymizer.h"
#include "policies/casper.h"
#include "policies/k_inside_binary.h"
#include "policies/k_inside_quad.h"
#include "sim/broken.h"
#include "sim/explorer.h"
#include "sim/invariants.h"
#include "sim/model.h"
#include "sim/script.h"
#include "workload/bay_area.h"
#include "workload/movement.h"
#include "workload/requests.h"
#include "tools/cli_flags.h"

namespace {

using namespace pasa;
using tools::Flags;

int Fail(const Status& status) {
  obs::LogError("cli", "%s", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  pasa_cli generate  --n N [--seed S] [--map-log2-side L] --out F\n"
      "  pasa_cli anonymize --in F --k K --out F2 [--algorithm "
      "opt|casper|puq|pub]\n"
      "  pasa_cli audit     --locations F --cloaks F2 --k K\n"
      "  pasa_cli stats     --in F [--k K]\n"
      "  pasa_cli serve     --in F --k K [--snapshots N] [--requests R] "
      "[--seed S] [--watch N]\n"
      "                     [--listen PORT] [--listen-duration SECONDS]\n"
      "                     [--max-pending N] [--net-backend epoll|poll]\n"
      "                     [--admin-port P] [--exemplars 1]\n"
      "                     [--tail-slowest N] [--tail-window SECONDS]\n"
      "  pasa_cli scrape    --port P [--path /metrics] [--check 1]\n"
      "  pasa_cli memstats  --port P | --in F [--k K] [--seed S]\n"
      "  pasa_cli explain   --audit F.jsonl [--rid N] [--limit N]\n"
      "                     [--only served|degraded|failed|rejected|"
      "violations]\n"
      "  pasa_cli trace-merge --client F.json --server F2.json --out F3.json\n"
      "  pasa_cli slowest   --port P [--limit N]\n"
      "  pasa_cli explore   [--users N] [--k K] [--advances N] [--batches N]\n"
      "                     [--seed S] [--depth D] [--budget STATES]\n"
      "                     [--invariants all|kanon,cache,quarantine,repair]\n"
      "                     [--broken none|repair|quarantine] [--out F.json]\n"
      "                     [--replay F.json]\n"
      "every subcommand also accepts:\n"
      "  --metrics-out FILE.json  observability snapshot\n"
      "  --trace-out FILE.json    Chrome trace_event timeline "
      "(Perfetto-loadable)\n"
      "  --audit-out FILE.jsonl   per-request provenance audit log\n"
      "  --audit-mode ring|stream write the ring on exit (default) or "
      "append per record\n"
      "  --slo-config FILE.json   load SLO objectives instead of the "
      "compiled-in defaults\n"
      "  --log-level LEVEL        debug|info|warn|error|off\n"
      "  --fault-plan FILE.json   arm the deterministic fault injector\n"
      "  --fault-seed N           override the fault plan's seed\n"
      "  --profile-hz HZ          arm the span-sampling profiler at HZ/s\n"
      "  --profile-out FILE       write collapsed stacks + self-time table "
      "on exit\n");
  return 2;
}

void PrintMetricsDump() {
  std::printf("\nmetrics:\n%s", obs::SummaryTable(obs::FullSnapshot()).c_str());
}

// Exercises the Section VII per-request path against the freshly built
// policy: samples senders, anonymizes each request, and serves it through
// the deduplicating answer cache backed by a synthetic POI set. Populates
// the cloak-lookup / serve latency histograms and answer-cache counters so
// `anonymize --metrics-out` captures the full pipeline, not just Bulk_dp.
void ServeSampleRequests(Anonymizer& engine, const LocationDatabase& db,
                         const MapExtent& extent) {
  if (db.size() == 0) return;
  obs::ScopedSpan span("cli/serve_sample_requests", obs::ScopedSpan::kRoot);
  obs::LogDebug("cli", "serving sampled requests through the answer cache");
  Rng rng(42);
  std::vector<PointOfInterest> pois;
  constexpr size_t kNumPois = 256;
  pois.reserve(kNumPois);
  for (size_t i = 0; i < kNumPois; ++i) {
    pois.push_back(PointOfInterest{
        static_cast<int64_t>(i),
        Point{static_cast<Coord>(rng.NextBounded(extent.side())),
              static_cast<Coord>(rng.NextBounded(extent.side()))},
        "poi"});
  }
  CachingLbsFrontend frontend(LbsProvider(PoiDatabase(std::move(pois)), 10));
  const size_t samples = std::min<size_t>(db.size(), 2000);
  const size_t stride = std::max<size_t>(1, db.size() / samples);
  for (size_t row = 0; row < db.size(); row += stride) {
    const ServiceRequest sr{db.row(row).user, db.row(row).location,
                            {{"poi", "poi"}}};
    // Each sampled request is one provenance record when --audit-out armed
    // the ring; Anonymize and Serve annotate through CurrentProvenance().
    obs::ScopedProvenanceRecord prov;
    Result<AnonymizedRequest> ar = engine.Anonymize(sr);
    if (!ar.ok()) {
      if (obs::ProvenanceRecord* p = prov.get()) {
        p->sender = sr.sender;
        p->outcome = obs::RequestOutcome::kRejected;
        p->status = StatusCodeName(ar.status().code());
      }
      continue;
    }
    Result<LbsAnswer> answer = frontend.Serve(*ar);
    if (obs::ProvenanceRecord* p = prov.get()) {
      if (answer.ok()) {
        p->outcome = answer->degraded ? obs::RequestOutcome::kDegraded
                                      : obs::RequestOutcome::kServed;
      } else {
        p->outcome = obs::RequestOutcome::kFailed;
        p->status = StatusCodeName(answer.status().code());
      }
    }
  }
}

int RunGenerate(const Flags& flags) {
  const int64_t n = flags.GetInt("n", 0);
  if (n <= 0 || !flags.Has("out")) return Usage();
  BayAreaOptions options;
  options.log2_map_side =
      static_cast<int>(flags.GetInt("map-log2-side", 17));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 2010));
  const BayAreaGenerator generator(options);
  const LocationDatabase db = generator.Generate(static_cast<size_t>(n));
  Status s = SaveLocationDatabaseCsv(db, flags.GetString("out"));
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s users to %s (map side 2^%d m)\n",
              WithThousandsSeparators(static_cast<int64_t>(db.size())).c_str(),
              flags.GetString("out").c_str(), options.log2_map_side);
  return 0;
}

int RunAnonymize(const Flags& flags) {
  if (!flags.Has("in") || !flags.Has("out")) return Usage();
  const int k = static_cast<int>(flags.GetInt("k", 50));
  Result<LocationDatabase> db = LoadLocationDatabaseCsv(flags.GetString("in"));
  if (!db.ok()) return Fail(db.status());
  Result<MapExtent> extent = MapExtent::Covering(db->BoundingBox());
  if (!extent.ok()) return Fail(extent.status());

  const std::string algorithm = flags.GetString("algorithm", "opt");
  obs::LogInfo("cli", "anonymize: %zu users, k=%d, algorithm=%s", db->size(),
               k, algorithm.c_str());
  std::unique_ptr<BulkPolicyAlgorithm> policy;
  if (algorithm == "opt") {
    // Handled below: the optimum path keeps the engine alive so the
    // per-request simulation can reuse the extracted policy.
  } else if (algorithm == "casper") {
    policy = std::make_unique<CasperPolicy>(*extent);
  } else if (algorithm == "puq") {
    policy = std::make_unique<PolicyUnawareQuad>(*extent);
  } else if (algorithm == "pub") {
    policy = std::make_unique<PolicyUnawareBinary>(*extent);
  } else {
    return Usage();
  }

  WallTimer timer;
  std::unique_ptr<Anonymizer> engine;
  std::string algorithm_name;
  Result<CloakingTable> table = Status::Internal("unset");
  if (algorithm == "opt") {
    AnonymizerOptions engine_options;
    engine_options.k = k;
    Result<Anonymizer> built = Anonymizer::Build(*db, *extent, engine_options);
    if (!built.ok()) return Fail(built.status());
    engine = std::make_unique<Anonymizer>(std::move(*built));
    table = engine->policy();
    algorithm_name = "PolicyAware-OPT";
  } else {
    table = policy->Cloak(*db, k);
    if (!table.ok()) return Fail(table.status());
    algorithm_name = policy->name();
  }
  const double seconds = timer.ElapsedSeconds();
  Status s = SaveCloakingCsv(*db, *table, flags.GetString("out"));
  if (!s.ok()) return Fail(s);
  std::printf(
      "%s cloaked %s users at k=%d in %.3f s (total cost %s, avg area "
      "%.0f)\n",
      algorithm_name.c_str(),
      WithThousandsSeparators(static_cast<int64_t>(db->size())).c_str(), k,
      seconds, WithThousandsSeparators(table->TotalCost()).c_str(),
      table->AverageArea());
  if (engine != nullptr) ServeSampleRequests(*engine, *db, *extent);
  PrintMetricsDump();
  return 0;
}

int RunAudit(const Flags& flags) {
  if (!flags.Has("locations") || !flags.Has("cloaks")) return Usage();
  const int k = static_cast<int>(flags.GetInt("k", 50));
  Result<LocationDatabase> db =
      LoadLocationDatabaseCsv(flags.GetString("locations"));
  if (!db.ok()) return Fail(db.status());
  Result<CloakingTable> table =
      LoadCloakingCsv(flags.GetString("cloaks"), *db);
  if (!table.ok()) return Fail(table.status());

  const bool masking = table->IsMasking(*db);
  const AuditReport aware = AuditPolicyAware(*table);
  const AuditReport unaware = AuditPolicyUnaware(*table, *db);
  TablePrinter out({"check", "result"});
  out.AddRow({"masking (every cloak contains its user)",
              masking ? "yes" : "NO"});
  out.AddRow({"policy-unaware attacker: min possible senders",
              TablePrinter::Cell(
                  static_cast<int64_t>(unaware.min_possible_senders))});
  out.AddRow({"policy-AWARE attacker: min possible senders",
              TablePrinter::Cell(
                  static_cast<int64_t>(aware.min_possible_senders))});
  out.AddRow({"sender k-anonymous vs policy-unaware (k=" + std::to_string(k) +
                  ")",
              unaware.Anonymous(k) ? "yes" : "NO"});
  out.AddRow({"sender k-anonymous vs policy-aware  (k=" + std::to_string(k) +
                  ")",
              aware.Anonymous(k) ? "yes" : "NO"});
  out.Print();
  const size_t breaches = aware.Breaches(k).size();
  if (breaches > 0) {
    std::printf("%zu request(s) would expose their sender to a policy-aware "
                "attacker.\n",
                breaches);
  }
  PrintMetricsDump();
  return masking && aware.Anonymous(k) ? 0 : 3;
}

// Pretty-prints one audit record: the cloak decision (which node, why it is
// k-anonymous), the LBS hop, and where the latency went.
void PrintProvenanceRecord(const obs::ProvenanceRecord& r) {
  std::printf("request %lld (sender %lld): %s, status %s\n",
              static_cast<long long>(r.rid), static_cast<long long>(r.sender),
              obs::RequestOutcomeName(r.outcome), r.status.c_str());
  if (r.outcome != obs::RequestOutcome::kRejected) {
    std::printf("  cloak: [%lld,%lld)x[%lld,%lld), area %lld\n",
                static_cast<long long>(r.cloak_x1),
                static_cast<long long>(r.cloak_x2),
                static_cast<long long>(r.cloak_y1),
                static_cast<long long>(r.cloak_y2),
                static_cast<long long>(r.cloak_area));
    std::printf("  policy: node %d (path %s, depth %d), group size %llu vs "
                "k=%d (margin %+lld), C(m)=%llu passed up\n",
                r.policy_node, r.tree_path.empty() ? "?" : r.tree_path.c_str(),
                r.node_depth, static_cast<unsigned long long>(r.group_size),
                r.k,
                static_cast<long long>(r.group_size) -
                    static_cast<long long>(r.k),
                static_cast<unsigned long long>(r.passed_up));
    const char* hop = r.cache_hit
                          ? "answer cache hit"
                          : (r.stale_fallback ? "STALE cache fallback"
                                              : "provider fetch");
    std::printf("  lbs: %s, %u attempt(s), %u retr%s%s%s\n", hop,
                r.lbs_attempts, r.lbs_retries, r.lbs_retries == 1 ? "y" : "ies",
                r.breaker_rejected ? ", rejected by open breaker" : "",
                r.deadline_exceeded ? ", deadline exceeded" : "");
    if (!r.fault_fires.empty()) {
      std::string fires;
      for (const auto& [point, count] : r.fault_fires) {
        if (!fires.empty()) fires += ", ";
        fires += point + " x" + std::to_string(count);
      }
      std::printf("  faults fired: %s\n", fires.c_str());
    }
  }
  std::printf("  latency: total %.1f us (cloak %.1f us, lbs %.1f us, "
              "simulated %.0f us)\n",
              r.total_seconds * 1e6, r.cloak_seconds * 1e6,
              r.lbs_seconds * 1e6, r.lbs_simulated_micros);
}

// Reconstructs cloak decisions from a --audit-out JSONL file, optionally
// filtered to one request id or one outcome class ("violations" selects
// accepted requests whose anonymity group was smaller than k — under the
// maintained optimal policy there should be none).
int RunExplain(const Flags& flags) {
  if (!flags.Has("audit")) return Usage();
  const std::string only = flags.GetString("only", "");
  if (!only.empty() && only != "served" && only != "degraded" &&
      only != "failed" && only != "rejected" && only != "violations") {
    return Usage();
  }
  Result<std::vector<obs::ProvenanceRecord>> records =
      obs::ReadProvenanceJsonlFile(flags.GetString("audit"));
  if (!records.ok()) return Fail(records.status());
  const bool have_rid = flags.Has("rid");
  const int64_t rid = flags.GetInt("rid", 0);
  const int64_t limit = flags.GetInt("limit", 0);
  size_t matched = 0;
  size_t shown = 0;
  for (const obs::ProvenanceRecord& r : *records) {
    if (have_rid && r.rid != rid) continue;
    if (only == "violations") {
      const bool violation = r.outcome != obs::RequestOutcome::kRejected &&
                             r.group_size < static_cast<uint64_t>(r.k);
      if (!violation) continue;
    } else if (!only.empty() &&
               only != obs::RequestOutcomeName(r.outcome)) {
      continue;
    }
    ++matched;
    if (limit > 0 && shown >= static_cast<size_t>(limit)) continue;
    ++shown;
    PrintProvenanceRecord(r);
  }
  std::printf("%zu of %zu audit record(s) matched (%zu shown)\n", matched,
              records->size(), shown);
  return 0;
}

// The `serve --watch` dashboard: SLO burn rates and the sliding windows,
// rendered against the current simulated time.
void PrintWatchDashboard(int epoch) {
  const uint64_t now = obs::SimClock::Global().now();
  TablePrinter table({"objective / window", "state", "detail"});
  for (const obs::SloState& slo : obs::SloTracker::Global().Evaluate(now)) {
    char detail[160];
    std::snprintf(detail, sizeof(detail),
                  "target=%.4g fast_burn=%.2f slow_burn=%.2f fired=%llu",
                  slo.target, slo.fast_burn, slo.slow_burn,
                  static_cast<unsigned long long>(slo.alerts_fired));
    table.AddRow({slo.name, slo.alerting ? "ALERT" : "ok", detail});
  }
  const obs::WindowSnapshot windows =
      obs::WindowRegistry::Global().Snapshot(now);
  for (const auto& [name, h] : windows.histograms) {
    char detail[160];
    std::snprintf(detail, sizeof(detail),
                  "n=%llu p50=%.1f us p95=%.1f us p99=%.1f us",
                  static_cast<unsigned long long>(h.count), h.p50 * 1e6,
                  h.p95 * 1e6, h.p99 * 1e6);
    table.AddRow({name, "window", detail});
  }
  for (const auto& [name, r] : windows.rates) {
    char detail[128];
    std::snprintf(detail, sizeof(detail), "rate=%.4f (%llu/%llu)", r.rate,
                  static_cast<unsigned long long>(r.good),
                  static_cast<unsigned long long>(r.total));
    table.AddRow({name, "window", detail});
  }
  std::printf("\n[watch] epoch %d, simulated t=%.3f s\n", epoch,
              static_cast<double>(now) / 1e6);
  table.Print();
}

// Runs the resilient CSP serving path end to end: per snapshot, a burst of
// service requests through the answer cache / resilient LBS client, then a
// snapshot advance with movement (quarantine + incremental repair or
// rebuild). With --fault-plan this is the CLI face of the chaos harness:
// the printed report shows how much degradation the faults caused and that
// the k-anonymity audit still passes.
// Serves the wire protocol on a loopback socket until a client sends
// kShutdownRequest or --listen-duration expires. The CspServer itself is
// only ever touched from the NetServer's event loop.
int RunListen(CspServer* csp, const Flags& flags, int k) {
  net::NetServerOptions options;
  options.port = static_cast<uint16_t>(flags.GetInt("listen", 0));
  options.max_pending =
      static_cast<size_t>(flags.GetInt("max-pending", 4096));
  options.max_batch = static_cast<size_t>(flags.GetInt("max-batch", 256));
  options.use_poll = flags.GetString("net-backend", "epoll") == "poll";
  if (flags.Has("admin-port")) {
    options.admin_port = static_cast<int>(flags.GetInt("admin-port", -1));
  }
  options.exemplars = flags.GetInt("exemplars", 0) != 0;
  const int64_t tail_slowest = flags.GetInt("tail-slowest", 8);
  options.tail_traces = tail_slowest > 0;
  options.tail_slowest = static_cast<size_t>(std::max<int64_t>(1, tail_slowest));
  options.tail_window_seconds = flags.GetDouble("tail-window", 60.0);
  const double duration = flags.GetDouble("listen-duration", 30.0);
  Result<std::unique_ptr<net::NetServer>> server =
      net::NetServer::Start(csp, options);
  if (!server.ok()) return Fail(server.status());
  std::printf("listening on 127.0.0.1:%u for up to %.1f s\n",
              unsigned{(*server)->port()}, duration);
  if ((*server)->admin_port() != 0) {
    std::printf("admin plane on http://127.0.0.1:%u "
                "(/metrics /healthz /slo /vars /memory /trace /profile)\n",
                unsigned{(*server)->admin_port()});
  }
  std::fflush(stdout);
  (*server)->WaitForShutdown(duration);
  (*server)->Stop();
  const net::NetServer::Stats net = (*server)->stats();
  const CspServer::Stats& stats = csp->stats();
  const bool anonymous = AuditPolicyAware(csp->policy()).Anonymous(k);
  TablePrinter out({"metric", "value"});
  out.AddRow({"connections accepted",
              TablePrinter::Cell(
                  static_cast<int64_t>(net.connections_accepted))});
  out.AddRow({"frames decoded / rejected",
              std::to_string(net.frames_decoded) + " / " +
                  std::to_string(net.frames_rejected)});
  out.AddRow({"requests served (responses written)",
              TablePrinter::Cell(
                  static_cast<int64_t>(net.requests_served))});
  out.AddRow({"admission rejected (queue full)",
              TablePrinter::Cell(
                  static_cast<int64_t>(net.admission_rejected))});
  out.AddRow({"net faults injected",
              TablePrinter::Cell(
                  static_cast<int64_t>(net.faults_injected))});
  out.AddRow({"bytes read / written",
              std::to_string(net.bytes_read) + " / " +
                  std::to_string(net.bytes_written)});
  if ((*server)->admin_port() != 0) {
    out.AddRow({"admin connections / http requests",
                std::to_string(net.admin_connections) + " / " +
                    std::to_string(net.admin_requests)});
  }
  out.AddRow({"csp requests served",
              TablePrinter::Cell(
                  static_cast<int64_t>(stats.requests_served))});
  out.AddRow({"csp requests rejected",
              TablePrinter::Cell(
                  static_cast<int64_t>(stats.requests_rejected))});
  out.AddRow({"snapshots advanced",
              TablePrinter::Cell(
                  static_cast<int64_t>(stats.snapshots_advanced))});
  out.AddRow({"final policy k-anonymous (policy-aware, k=" +
                  std::to_string(k) + ")",
              anonymous ? "yes" : "NO"});
  out.Print();
  PrintMetricsDump();
  return anonymous ? 0 : 3;
}

int RunServe(const Flags& flags) {
  if (!flags.Has("in")) return Usage();
  const int k = static_cast<int>(flags.GetInt("k", 50));
  const int snapshots = static_cast<int>(flags.GetInt("snapshots", 5));
  const int per_epoch = static_cast<int>(flags.GetInt("requests", 1000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 2010));
  const int watch = static_cast<int>(flags.GetInt("watch", 0));
  if (snapshots < 1 || per_epoch < 0 || watch < 0) return Usage();
  if (flags.Has("listen")) {
    const int64_t port = flags.GetInt("listen", 0);
    if (port < 0 || port > 65535) return Usage();
    const std::string backend = flags.GetString("net-backend", "epoll");
    if (backend != "epoll" && backend != "poll") return Usage();
    if (flags.GetDouble("listen-duration", 30.0) <= 0.0 ||
        flags.GetInt("max-pending", 4096) < 1 ||
        flags.GetInt("max-batch", 256) < 1 ||
        flags.GetInt("admin-port", 0) < 0 ||
        flags.GetInt("admin-port", 0) > 65535) {
      return Usage();
    }
  }
  // serve is the SLO-bearing path: always arm the windowed telemetry and
  // burn-rate tracker so the final report (and --watch) can show them.
  obs::WindowRegistry::Global().Enable();
  obs::SloTracker::Global().Enable();
  Result<LocationDatabase> db = LoadLocationDatabaseCsv(flags.GetString("in"));
  if (!db.ok()) return Fail(db.status());
  Result<MapExtent> extent = MapExtent::Covering(db->BoundingBox());
  if (!extent.ok()) return Fail(extent.status());

  Rng rng(seed);
  std::vector<PointOfInterest> pois;
  constexpr size_t kNumPois = 512;
  const std::vector<std::string> categories = {"rest", "gas", "hospital"};
  pois.reserve(kNumPois);
  for (size_t i = 0; i < kNumPois; ++i) {
    pois.push_back(PointOfInterest{
        static_cast<int64_t>(i),
        Point{static_cast<Coord>(rng.NextBounded(extent->side())),
              static_cast<Coord>(rng.NextBounded(extent->side()))},
        categories[rng.NextBounded(categories.size())]});
  }
  CspOptions options;
  options.k = k;
  obs::LogInfo("cli", "serve: %zu users, k=%d, %d snapshot(s), %d "
               "request(s) each%s",
               db->size(), k, snapshots, per_epoch,
               fault::FaultInjector::Global().armed()
                   ? ", fault injector ARMED" : "");
  WallTimer timer;
  Result<CspServer> csp = CspServer::Start(std::move(*db), *extent,
                                           PoiDatabase(std::move(pois)),
                                           options);
  if (!csp.ok()) return Fail(csp.status());

  if (flags.Has("listen")) return RunListen(&*csp, flags, k);

  RequestGenerator requests(seed + 1);
  MovementOptions movement;
  movement.moving_fraction = 0.02;
  for (int epoch = 0; epoch < snapshots; ++epoch) {
    for (const ServiceRequest& sr :
         requests.Draw(csp->snapshot(), static_cast<size_t>(per_epoch))) {
      csp->HandleRequest(sr).ok();  // failures are counted in stats
    }
    movement.seed = seed + 100 + static_cast<uint64_t>(epoch);
    const std::vector<UserMove> moves =
        DrawMoves(csp->snapshot(), *extent, movement);
    Result<SnapshotReport> report = csp->AdvanceSnapshot(moves);
    if (!report.ok()) return Fail(report.status());
    if (watch > 0 && (epoch + 1) % watch == 0) PrintWatchDashboard(epoch + 1);
  }
  const double seconds = timer.ElapsedSeconds();

  const CspServer::Stats& stats = csp->stats();
  const ResilientLbsClient::Stats& client = csp->lbs_client().stats();
  const bool anonymous = AuditPolicyAware(csp->policy()).Anonymous(k);
  TablePrinter out({"metric", "value"});
  out.AddRow({"requests served",
              TablePrinter::Cell(static_cast<int64_t>(stats.requests_served))});
  out.AddRow({"  of which degraded (stale answers)",
              TablePrinter::Cell(
                  static_cast<int64_t>(stats.requests_degraded))});
  out.AddRow({"requests failed (provider down)",
              TablePrinter::Cell(static_cast<int64_t>(stats.requests_failed))});
  out.AddRow({"lbs requests actually seen",
              TablePrinter::Cell(
                  static_cast<int64_t>(csp->lbs_requests_seen()))});
  out.AddRow({"lbs retries / fail-fast / breaker opens",
              std::to_string(client.retries) + " / " +
                  std::to_string(client.fail_fast) + " / " +
                  std::to_string(client.breaker_opens)});
  out.AddRow({"snapshots advanced",
              TablePrinter::Cell(
                  static_cast<int64_t>(stats.snapshots_advanced))});
  out.AddRow({"moves quarantined",
              TablePrinter::Cell(
                  static_cast<int64_t>(stats.moves_quarantined))});
  out.AddRow({"incremental updates / rebuilds / repair fallbacks",
              std::to_string(stats.incremental_updates) + " / " +
                  std::to_string(stats.rebuilds) + " / " +
                  std::to_string(stats.repair_fallbacks)});
  out.AddRow({"final policy k-anonymous (policy-aware, k=" +
                  std::to_string(k) + ")",
              anonymous ? "yes" : "NO"});
  out.Print();
  std::printf("served %d snapshot(s) in %.3f s\n", snapshots, seconds);
  PrintMetricsDump();
  return anonymous ? 0 : 3;
}

// Fetches one admin-plane target over HTTP and prints the body; with
// --check 1 the body must additionally pass the Prometheus text-format
// checker (how CI validates /metrics without a real Prometheus server).
int RunScrape(const Flags& flags) {
  const int64_t port = flags.GetInt("port", 0);
  if (port <= 0 || port > 65535) return Usage();
  const std::string target = flags.GetString("path", "/metrics");
  Result<net::HttpResponse> response = net::HttpGet(
      static_cast<uint16_t>(port), target, flags.GetDouble("timeout", 5.0));
  if (!response.ok()) return Fail(response.status());
  std::fwrite(response->body.data(), 1, response->body.size(), stdout);
  std::fflush(stdout);
  if (response->status != 200) {
    obs::LogError("cli", "GET %s -> HTTP %d", target.c_str(),
                  response->status);
    return 1;
  }
  if (flags.GetInt("check", 0) != 0) {
    const Status s = obs::CheckPrometheusText(response->body);
    if (!s.ok()) return Fail(s);
    std::fprintf(stderr, "prometheus text format: ok (%zu bytes)\n",
                 response->body.size());
  }
  return 0;
}

// Per-subsystem memory accounting: scraped live from a serving process's
// GET /memory (--port), or computed offline by building the full serving
// stack from a snapshot CSV (--in) and reporting every long-lived
// structure's ApproxBytes into the accountant.
int RunMemstats(const Flags& flags) {
  if (flags.Has("port")) {
    const int64_t port = flags.GetInt("port", 0);
    if (port <= 0 || port > 65535) return Usage();
    Result<net::HttpResponse> response =
        net::HttpGet(static_cast<uint16_t>(port), "/memory",
                     flags.GetDouble("timeout", 5.0));
    if (!response.ok()) return Fail(response.status());
    if (response->status != 200) {
      obs::LogError("cli", "GET /memory -> HTTP %d", response->status);
      return 1;
    }
    Result<obs::json::Value> doc = obs::json::Parse(response->body);
    if (!doc.ok()) return Fail(doc.status());
    const obs::json::Value* subsystems = doc->Find("subsystems");
    if (subsystems == nullptr || !subsystems->is_object()) {
      return Fail(Status::InvalidArgument(
          "GET /memory returned no subsystems object"));
    }
    // Re-render the document server-side numbers as the same table the
    // offline path prints, sorted by bytes descending.
    std::vector<std::pair<std::string, uint64_t>> rows;
    uint64_t total = 0;
    for (const auto& [name, bytes] : subsystems->object()) {
      const uint64_t b = static_cast<uint64_t>(bytes.number());
      rows.emplace_back(name, b);
      total += b;
    }
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    TablePrinter table({"subsystem", "bytes", "MiB", "share"});
    for (const auto& [name, bytes] : rows) {
      char mib[32], share[32];
      std::snprintf(mib, sizeof(mib), "%.2f",
                    static_cast<double>(bytes) / (1024.0 * 1024.0));
      std::snprintf(share, sizeof(share), "%.1f%%",
                    total == 0 ? 0.0
                               : 100.0 * static_cast<double>(bytes) /
                                     static_cast<double>(total));
      table.AddRow({name, TablePrinter::Cell(static_cast<int64_t>(bytes)),
                    mib, share});
    }
    table.Print();
    const obs::json::Value* users = doc->Find("users");
    const obs::json::Value* per_user = doc->Find("bytes_per_user");
    std::printf("total: %llu bytes", static_cast<unsigned long long>(total));
    if (users != nullptr && users->number() > 0) {
      std::printf(" over %llu users (%.1f bytes/user)",
                  static_cast<unsigned long long>(users->number()),
                  per_user != nullptr ? per_user->number() : 0.0);
    }
    std::printf("\n");
    return 0;
  }

  if (!flags.Has("in")) return Usage();
  const int k = static_cast<int>(flags.GetInt("k", 50));
  Result<LocationDatabase> db = LoadLocationDatabaseCsv(flags.GetString("in"));
  if (!db.ok()) return Fail(db.status());
  const size_t users = db->size();
  Result<MapExtent> extent = MapExtent::Covering(db->BoundingBox());
  if (!extent.ok()) return Fail(extent.status());
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 2010)));
  std::vector<PointOfInterest> pois;
  constexpr size_t kNumPois = 512;
  const std::vector<std::string> categories = {"rest", "gas", "hospital"};
  pois.reserve(kNumPois);
  for (size_t i = 0; i < kNumPois; ++i) {
    pois.push_back(PointOfInterest{
        static_cast<int64_t>(i),
        Point{static_cast<Coord>(rng.NextBounded(extent->side())),
              static_cast<Coord>(rng.NextBounded(extent->side()))},
        categories[rng.NextBounded(categories.size())]});
  }
  CspOptions options;
  options.k = k;
  Result<CspServer> csp = CspServer::Start(std::move(*db), *extent,
                                           PoiDatabase(std::move(pois)),
                                           options);
  if (!csp.ok()) return Fail(csp.status());

  obs::MemoryAccountant& accountant = obs::MemoryAccountant::Global();
  accountant.Enable();
  csp->ReportMemory(accountant);
  obs::ReportObsMemory(accountant);
  std::printf("%s", accountant.SummaryTable().c_str());
  const uint64_t total = accountant.TotalBytes();
  std::printf("total: %llu bytes over %zu users (%.1f bytes/user, k=%d)\n",
              static_cast<unsigned long long>(total), users,
              users == 0 ? 0.0
                         : static_cast<double>(total) /
                               static_cast<double>(users),
              k);
  return 0;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot read " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

// Stitches a client-side and a server-side Chrome trace into one timeline.
// Both files carry a "wallClockBaseMicros" anchor (wall-clock micros at
// their ts == 0), so rebasing every server timestamp by the anchor delta
// puts both processes on the client's clock. Server events (and their flow
// halves) move to pid 2 so Perfetto draws them as a second process; the
// flow events already share ids (the trace ids), which is what draws the
// client->server arrows.
int RunTraceMerge(const Flags& flags) {
  if (!flags.Has("client") || !flags.Has("server") || !flags.Has("out")) {
    return Usage();
  }
  struct Side {
    const char* role;
    double pid;
    obs::json::Value doc;
    double base_micros = 0.0;
  };
  Side sides[2] = {{"client", 1.0, {}, 0.0}, {"server", 2.0, {}, 0.0}};
  for (Side& side : sides) {
    Result<std::string> text = ReadWholeFile(flags.GetString(side.role));
    if (!text.ok()) return Fail(text.status());
    Result<obs::json::Value> doc = obs::json::Parse(*text);
    if (!doc.ok()) {
      return Fail(Status::InvalidArgument(
          std::string(side.role) + " trace: " + doc.status().ToString()));
    }
    const obs::json::Value* events = doc->Find("traceEvents");
    if (events == nullptr || !events->is_array()) {
      return Fail(Status::InvalidArgument(
          std::string(side.role) +
          " trace has no traceEvents array (not a Chrome trace?)"));
    }
    const obs::json::Value* base = doc->Find("wallClockBaseMicros");
    if (base == nullptr || !base->is_number()) {
      return Fail(Status::InvalidArgument(
          std::string(side.role) +
          " trace has no wallClockBaseMicros anchor (written by an older "
          "build?)"));
    }
    side.base_micros = base->number();
    side.doc = std::move(*doc);
  }
  // Merged timeline uses the client's clock: client events keep their ts,
  // server events shift by the wall-clock delta between the two anchors.
  const double delta_micros = sides[1].base_micros - sides[0].base_micros;
  std::vector<obs::json::Value> merged;
  for (Side& side : sides) {
    const bool is_server = side.pid == 2.0;
    // Process-name metadata so Perfetto labels the two tracks.
    merged.push_back(obs::json::Value::MakeObject({
        {"ph", obs::json::Value::MakeString("M")},
        {"pid", obs::json::Value::MakeNumber(side.pid)},
        {"name", obs::json::Value::MakeString("process_name")},
        {"args", obs::json::Value::MakeObject(
                     {{"name", obs::json::Value::MakeString(
                           is_server ? "pasa-server" : "pasa-client")}})},
    }));
    for (const obs::json::Value& event :
         side.doc.Find("traceEvents")->array()) {
      if (!event.is_object()) continue;
      std::map<std::string, obs::json::Value> fields = event.object();
      fields["pid"] = obs::json::Value::MakeNumber(side.pid);
      if (is_server) {
        const auto ts = fields.find("ts");
        if (ts != fields.end() && ts->second.is_number()) {
          ts->second =
              obs::json::Value::MakeNumber(ts->second.number() + delta_micros);
        }
      }
      merged.push_back(obs::json::Value::MakeObject(std::move(fields)));
    }
  }
  const obs::json::Value out = obs::json::Value::MakeObject({
      {"displayTimeUnit", obs::json::Value::MakeString("ms")},
      {"wallClockBaseMicros",
       obs::json::Value::MakeNumber(sides[0].base_micros)},
      {"traceEvents", obs::json::Value::MakeArray(std::move(merged))},
  });
  const Status s =
      obs::WriteTextFile(flags.GetString("out"), obs::json::Serialize(out));
  if (!s.ok()) return Fail(s);
  std::printf("merged %s + %s -> %s (server clock shifted %+.0f us)\n",
              flags.GetString("client").c_str(),
              flags.GetString("server").c_str(),
              flags.GetString("out").c_str(), delta_micros);
  return 0;
}

// Pretty-prints one tail trace's span tree, children indented under their
// parents (a span whose parent is not in the set — e.g. the client-side
// remote parent — prints at the root).
void PrintSpanTree(const obs::json::Value& spans) {
  std::map<std::string, std::vector<const obs::json::Value*>> children;
  std::vector<const obs::json::Value*> roots;
  auto field = [](const obs::json::Value* span, const char* key) {
    const obs::json::Value* v = span->Find(key);
    return v == nullptr ? std::string() : v->str();
  };
  std::map<std::string, bool> present;
  for (const obs::json::Value& span : spans.array()) {
    present[field(&span, "span_id")] = true;
  }
  for (const obs::json::Value& span : spans.array()) {
    const std::string parent = field(&span, "parent_span_id");
    if (present.count(parent) != 0 &&
        parent != "0000000000000000") {
      children[parent].push_back(&span);
    } else {
      roots.push_back(&span);
    }
  }
  struct Printer {
    std::map<std::string, std::vector<const obs::json::Value*>>* children;
    void Print(const obs::json::Value* span, int depth) {
      const obs::json::Value* path = span->Find("path");
      const obs::json::Value* duration = span->Find("duration_micros");
      std::printf("    %*s%-32s %10.1f us\n", depth * 2, "",
                  path == nullptr ? "?" : path->str().c_str(),
                  duration == nullptr ? 0.0 : duration->number());
      const obs::json::Value* id = span->Find("span_id");
      if (id == nullptr) return;
      const auto it = children->find(id->str());
      if (it == children->end()) return;
      for (const obs::json::Value* child : it->second) {
        Print(child, depth + 1);
      }
    }
  } printer{&children};
  for (const obs::json::Value* root : roots) printer.Print(root, 0);
}

void PrintTailTraces(const char* heading, const obs::json::Value& traces,
                     size_t limit) {
  std::printf("%s (%zu):\n", heading,
              std::min(limit, traces.array().size()));
  size_t shown = 0;
  for (const obs::json::Value& trace : traces.array()) {
    if (shown++ >= limit) break;
    const obs::json::Value* id = trace.Find("trace_id");
    const obs::json::Value* rid = trace.Find("rid");
    const obs::json::Value* outcome = trace.Find("outcome");
    const obs::json::Value* total = trace.Find("total_seconds");
    std::printf("  trace %s rid %lld %s, total %.1f us\n",
                id == nullptr ? "?" : id->str().c_str(),
                rid == nullptr ? 0LL
                               : static_cast<long long>(rid->number()),
                outcome == nullptr ? "?" : outcome->str().c_str(),
                (total == nullptr ? 0.0 : total->number()) * 1e6);
    const obs::json::Value* spans = trace.Find("spans");
    if (spans != nullptr) PrintSpanTree(*spans);
  }
}

// Fetches GET /trace from a serving admin plane and renders the tail-trace
// ring: the window's slowest requests and the recent anomalies, each with
// its full span tree.
int RunSlowest(const Flags& flags) {
  const int64_t port = flags.GetInt("port", 0);
  if (port <= 0 || port > 65535) return Usage();
  const size_t limit = static_cast<size_t>(
      std::max<int64_t>(1, flags.GetInt("limit", 8)));
  Result<net::HttpResponse> response =
      net::HttpGet(static_cast<uint16_t>(port), "/trace",
                   flags.GetDouble("timeout", 5.0));
  if (!response.ok()) return Fail(response.status());
  if (response->status != 200) {
    obs::LogError("cli", "GET /trace -> HTTP %d", response->status);
    return 1;
  }
  Result<obs::json::Value> doc = obs::json::Parse(response->body);
  if (!doc.ok()) return Fail(doc.status());
  const obs::json::Value* window = doc->Find("window_seconds");
  std::printf("tail traces over a %.0f s window\n",
              window == nullptr ? 0.0 : window->number());
  const obs::json::Value* slowest = doc->Find("slowest");
  const obs::json::Value* anomalies = doc->Find("anomalies");
  if (slowest != nullptr) PrintTailTraces("slowest", *slowest, limit);
  if (anomalies != nullptr && !anomalies->array().empty()) {
    PrintTailTraces("anomalies (newest first)", *anomalies, limit);
  }
  return 0;
}

int RunStats(const Flags& flags) {
  if (!flags.Has("in")) return Usage();
  const int k = static_cast<int>(flags.GetInt("k", 50));
  Result<LocationDatabase> db = LoadLocationDatabaseCsv(flags.GetString("in"));
  if (!db.ok()) return Fail(db.status());
  Result<MapExtent> extent = MapExtent::Covering(db->BoundingBox());
  if (!extent.ok()) return Fail(extent.status());
  Result<BinaryTree> tree =
      BinaryTree::Build(*db, *extent, TreeOptions{.split_threshold = k});
  if (!tree.ok()) return Fail(tree.status());
  const BinaryTree::ShapeStats shape = tree->ComputeShapeStats();
  TablePrinter out({"metric", "value"});
  out.AddRow({"users", WithThousandsSeparators(
                           static_cast<int64_t>(db->size()))});
  out.AddRow({"bounding box", db->BoundingBox().ToString()});
  out.AddRow({"map extent side (power of two)",
              WithThousandsSeparators(extent->side())});
  out.AddRow({"binary tree nodes", WithThousandsSeparators(
                                       static_cast<int64_t>(shape.live_nodes))});
  out.AddRow({"binary tree height",
              TablePrinter::Cell(static_cast<int64_t>(shape.height))});
  out.AddRow({"max leaf occupancy",
              TablePrinter::Cell(
                  static_cast<int64_t>(shape.max_leaf_occupancy))});
  out.Print();
  return 0;
}

// ---------------------------------------------------------------------------
// explore: the deterministic state-space explorer (src/sim).

std::string JoinActions(const std::vector<sim::SimAction>& actions) {
  std::string out;
  for (const sim::SimAction& action : actions) {
    if (!out.empty()) out += " ";
    out += action.ToString();
  }
  return out;
}

// Re-runs a committed counterexample script. Exit 4 iff the violation the
// script expects reproduces, 0 for an expected-clean script that replays
// clean, 1 when the outcome diverges from the expectation.
int ReplayCounterexample(const Flags& flags, uint32_t invariant_mask) {
  Result<sim::CounterexampleScript> script =
      sim::CounterexampleScript::FromJsonFile(flags.GetString("replay"));
  if (!script.ok()) return Fail(script.status());
  const std::string broken =
      flags.Has("broken") ? flags.GetString("broken") : script->broken;
  Result<sim::SimSystem*> system = sim::SystemForName(broken);
  if (!system.ok()) return Fail(system.status());
  sim::ExplorerOptions options;
  options.model = script->model;
  options.invariant_mask = invariant_mask;
  options.system = *system;
  std::printf("replaying %zu action(s), broken=%s, expect=%s\n  %s\n",
              script->actions.size(), broken.empty() ? "none" : broken.c_str(),
              script->expect_invariant.empty()
                  ? "clean"
                  : script->expect_invariant.c_str(),
              JoinActions(script->actions).c_str());
  Result<std::optional<sim::Violation>> outcome =
      sim::ReplayTrace(options, script->actions);
  if (!outcome.ok()) return Fail(outcome.status());
  if (outcome->has_value()) {
    std::printf("violation: invariant=%s detail=%s\n",
                (*outcome)->invariant.c_str(), (*outcome)->detail.c_str());
  } else {
    std::printf("replay clean: no invariant violated\n");
  }
  const std::string got = outcome->has_value() ? (*outcome)->invariant : "";
  if (got != script->expect_invariant) {
    std::fprintf(stderr,
                 "error: counterexample did not reproduce (expected \"%s\", "
                 "got \"%s\")\n",
                 script->expect_invariant.c_str(), got.c_str());
    return 1;
  }
  return outcome->has_value() ? 4 : 0;
}

int RunExplore(const Flags& flags) {
  Result<uint32_t> mask =
      sim::ParseInvariantMask(flags.GetString("invariants", "all"));
  if (!mask.ok()) {
    std::fprintf(stderr, "error: %s\n", mask.status().ToString().c_str());
    return Usage();
  }
  if (flags.Has("replay")) return ReplayCounterexample(flags, *mask);

  sim::ExplorerOptions options;
  options.model.users = static_cast<int>(flags.GetInt("users", 8));
  options.model.k = static_cast<int>(flags.GetInt("k", 3));
  options.model.max_advances = static_cast<int>(flags.GetInt("advances", 2));
  options.model.move_batches = static_cast<int>(flags.GetInt("batches", 2));
  options.model.seed = static_cast<uint64_t>(flags.GetInt("seed", 2010));
  options.model.log2_side = static_cast<int>(
      flags.GetInt("map-log2-side", options.model.log2_side));
  options.invariant_mask = *mask;
  options.max_depth = static_cast<int>(flags.GetInt("depth", 3));
  options.max_states = static_cast<uint64_t>(flags.GetInt("budget", 20'000));
  const std::string broken = flags.GetString("broken", "none");
  Result<sim::SimSystem*> system = sim::SystemForName(broken);
  if (!system.ok()) {
    std::fprintf(stderr, "error: %s\n", system.status().ToString().c_str());
    return Usage();
  }
  options.system = *system;

  std::printf(
      "explore: users=%d k=%d advances=%d batches=%d seed=%llu depth=%d "
      "budget=%llu broken=%s\n",
      options.model.users, options.model.k, options.model.max_advances,
      options.model.move_batches,
      static_cast<unsigned long long>(options.model.seed), options.max_depth,
      static_cast<unsigned long long>(options.max_states), broken.c_str());
  Result<sim::ExploreResult> result = sim::Explore(options);
  if (!result.ok()) return Fail(result.status());
  std::printf(
      "explore: states_visited=%llu states_pruned=%llu transitions=%llu "
      "depth_reached=%d exhausted=%s\n",
      static_cast<unsigned long long>(result->stats.states_visited),
      static_cast<unsigned long long>(result->stats.states_pruned),
      static_cast<unsigned long long>(result->stats.transitions),
      result->stats.depth_reached, result->stats.exhausted ? "yes" : "no");
  if (!result->violation.has_value()) {
    std::printf(result->stats.exhausted
                    ? "no violation: bounded instance exhaustively covered\n"
                    : "no violation within the state budget (coverage "
                      "incomplete)\n");
    return 0;
  }
  std::printf("violation: invariant=%s detail=%s\n",
              result->violation->invariant.c_str(),
              result->violation->detail.c_str());
  std::printf("trace (%zu actions): %s\n", result->trace.size(),
              JoinActions(result->trace).c_str());
  std::printf("shrunk (%zu actions): %s\n", result->shrunk_trace.size(),
              JoinActions(result->shrunk_trace).c_str());
  if (flags.Has("out")) {
    sim::CounterexampleScript script;
    script.model = options.model;
    script.broken = broken == "none" ? "" : broken;
    script.expect_invariant = result->violation->invariant;
    script.actions = result->shrunk_trace;
    const Status s = script.WriteFile(flags.GetString("out"));
    if (!s.ok()) return Fail(s);
    std::printf("wrote counterexample script to %s\n",
                flags.GetString("out").c_str());
  }
  return 4;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  if (flags.Has("log-level")) {
    Result<obs::LogLevel> level =
        obs::ParseLogLevel(flags.GetString("log-level"));
    if (!level.ok()) {
      std::fprintf(stderr, "error: %s\n", level.status().ToString().c_str());
      return Usage();
    }
    obs::Logger::Global().SetLevel(*level);
  }
  if (flags.Has("fault-plan")) {
    Result<fault::FaultPlan> plan =
        fault::FaultPlan::FromJsonFile(flags.GetString("fault-plan"));
    if (!plan.ok()) {
      std::fprintf(stderr, "error: %s\n", plan.status().ToString().c_str());
      return Usage();
    }
    const uint64_t fault_seed = flags.Has("fault-seed")
        ? static_cast<uint64_t>(flags.GetInt("fault-seed", 0))
        : plan->default_seed;
    fault::FaultInjector::Global().Arm(*plan, fault_seed);
    obs::LogInfo("cli", "fault injector armed: %zu point(s), seed %llu",
                 plan->points.size(),
                 static_cast<unsigned long long>(fault_seed));
  } else if (flags.Has("fault-seed")) {
    std::fprintf(stderr, "error: --fault-seed requires --fault-plan\n");
    return Usage();
  }
  if (flags.Has("slo-config")) {
    Result<std::vector<obs::SloObjective>> objectives =
        obs::SloObjectivesFromJsonFile(flags.GetString("slo-config"));
    if (!objectives.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   objectives.status().ToString().c_str());
      return Usage();
    }
    obs::SloTracker::Global().Configure(*objectives);
    obs::LogInfo("cli", "slo config loaded: %zu objective(s) from %s",
                 objectives->size(), flags.GetString("slo-config").c_str());
  }
  // Arm the profiler before the subcommand runs so even the startup phases
  // (serve's initial Bulk_dp policy build) get sampled.
  const bool profiling =
      flags.Has("profile-hz") || flags.Has("profile-out");
  if (profiling) {
    obs::ProfilerOptions profile_options;
    profile_options.hz = flags.GetDouble("profile-hz", 97.0);
    if (profile_options.hz <= 0.0) {
      std::fprintf(stderr, "error: --profile-hz must be > 0\n");
      return Usage();
    }
    const Status s = obs::Profiler::Global().Start(profile_options);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    obs::LogInfo("cli", "profiler armed at %.1f Hz", profile_options.hz);
  }
  const std::string audit_mode = flags.GetString("audit-mode", "ring");
  if (audit_mode != "ring" && audit_mode != "stream") {
    std::fprintf(stderr, "error: --audit-mode must be ring or stream\n");
    return Usage();
  }
  const bool tracing = flags.Has("trace-out");
  if (tracing) {
    obs::TraceEventSink::Global().SetCurrentThreadName("main");
    obs::TraceEventSink::Global().Start();
  }
  const bool auditing = flags.Has("audit-out");
  if (!auditing && flags.Has("audit-mode")) {
    std::fprintf(stderr, "error: --audit-mode requires --audit-out\n");
    return Usage();
  }
  const bool audit_streaming = auditing && audit_mode == "stream";
  if (auditing) {
    obs::ProvenanceRing::Global().Enable();
    obs::WindowRegistry::Global().Enable();
    obs::SloTracker::Global().Enable();
    if (audit_streaming) {
      const Status s =
          obs::ProvenanceRing::Global().StreamTo(flags.GetString("audit-out"));
      if (!s.ok()) {
        std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    obs::LogInfo("cli", "provenance ring armed (capacity %zu, %s mode)",
                 obs::ProvenanceRing::Global().capacity(),
                 audit_mode.c_str());
  }
  obs::LogDebug("cli", "running subcommand '%s'", command.c_str());
  int rc;
  if (command == "generate") {
    rc = RunGenerate(flags);
  } else if (command == "anonymize") {
    rc = RunAnonymize(flags);
  } else if (command == "audit") {
    rc = RunAudit(flags);
  } else if (command == "stats") {
    rc = RunStats(flags);
  } else if (command == "serve") {
    rc = RunServe(flags);
  } else if (command == "scrape") {
    rc = RunScrape(flags);
  } else if (command == "memstats") {
    rc = RunMemstats(flags);
  } else if (command == "explain") {
    rc = RunExplain(flags);
  } else if (command == "trace-merge") {
    rc = RunTraceMerge(flags);
  } else if (command == "slowest") {
    rc = RunSlowest(flags);
  } else if (command == "explore") {
    rc = RunExplore(flags);
  } else {
    return Usage();
  }
  if (profiling) {
    obs::Profiler& profiler = obs::Profiler::Global();
    profiler.Stop();
    if (flags.Has("profile-out")) {
      const std::string path = flags.GetString("profile-out");
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f == nullptr) {
        Fail(Status::Internal("cannot write profile to " + path));
        if (rc == 0) rc = 1;
      } else {
        const std::string folded = profiler.CollapsedSince(0);
        std::fwrite(folded.data(), 1, folded.size(), f);
        std::fclose(f);
        obs::LogInfo(
            "cli", "wrote %llu profile sample(s) to %s",
            static_cast<unsigned long long>(profiler.samples_taken()),
            path.c_str());
      }
    }
    std::printf("\nprofile self-time (sampled spans):\n%s",
                profiler.SelfTimeTableSince(0).c_str());
  }
  if (auditing) {
    obs::ProvenanceRing& ring = obs::ProvenanceRing::Global();
    if (audit_streaming) {
      // Stream mode already wrote every record (including any the ring has
      // overwritten); just flush and close.
      ring.StopStreaming();
      obs::LogInfo("cli", "streamed %llu provenance record(s) to %s",
                   static_cast<unsigned long long>(ring.streamed()),
                   flags.GetString("audit-out").c_str());
    } else {
      const Status s = ring.WriteJsonlFile(flags.GetString("audit-out"));
      if (!s.ok()) {
        Fail(s);
        if (rc == 0) rc = 1;
      } else {
        obs::LogInfo("cli",
                     "wrote %zu provenance record(s) (%llu overwritten) to %s",
                     ring.size(),
                     static_cast<unsigned long long>(ring.overwritten()),
                     flags.GetString("audit-out").c_str());
      }
    }
  }
  if (flags.Has("metrics-out")) {
    const Status s = obs::WriteJsonFile(obs::MetricsRegistry::Global(),
                                        flags.GetString("metrics-out"));
    if (!s.ok()) {
      Fail(s);
      if (rc == 0) rc = 1;
    }
  }
  if (tracing) {
    obs::TraceEventSink& sink = obs::TraceEventSink::Global();
    sink.Stop();
    const Status s = sink.WriteChromeTraceFile(flags.GetString("trace-out"));
    if (!s.ok()) {
      Fail(s);
      if (rc == 0) rc = 1;
    } else {
      obs::LogInfo("cli", "wrote trace with %zu event(s) (%llu dropped) to %s",
                   sink.size(),
                   static_cast<unsigned long long>(sink.dropped()),
                   flags.GetString("trace-out").c_str());
    }
  }
  return rc;
}
