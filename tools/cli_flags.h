#ifndef PASA_TOOLS_CLI_FLAGS_H_
#define PASA_TOOLS_CLI_FLAGS_H_

#include <cstdlib>
#include <map>
#include <string>

namespace pasa {
namespace tools {

/// Minimal --flag value parser shared by pasa_cli and pasa_benchstat;
/// every command takes only such pairs. A repeated flag last-wins; a
/// dangling flag with no value is ignored.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      std::string key = argv[i];
      if (key.rfind("--", 0) == 0) key = key.substr(2);
      values_[key] = argv[i + 1];
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace tools
}  // namespace pasa

#endif  // PASA_TOOLS_CLI_FLAGS_H_
