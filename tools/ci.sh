#!/usr/bin/env bash
# Tier-1 CI driver: release build + full ctest, an AddressSanitizer
# build + full ctest (both followed by a bounded state-space-explorer leg
# that must cover its instance exhaustively with zero invariant violations
# and reproduce the committed golden counterexample), a ThreadSanitizer
# build running the concurrency suites with a widened chaos seed sweep
# (PASA_CHAOS_SEEDS=8), the overhead gates
# (disarmed obs / fault / provenance / profiler instrumentation must stay
# near-free), and a smoke pasa_benchstat run that proves the perf-regression
# gate works end to end (writes BENCH_smoke.json and self-compares it, which
# must pass, then compares loosely against the committed bench/baseline
# snapshots). The net leg additionally smoke-tests the HTTP admin plane:
# /metrics is format-checked and cross-checked against loadgen's client-side
# count, and /profile must name the Bulk_dp spans sampled at startup. A
# final traced leg runs loadgen and the server with tracing armed on both
# sides and asserts one trace id end to end: /trace, the client latency
# log, the /metrics exemplars, and the trace-merge'd Perfetto timeline.
#
# Usage: tools/ci.sh [build-dir-prefix]
#
# Knobs (environment):
#   PASA_CI_SKIP_RELEASE=1  skip the release build (also skips the
#                           benchstat smoke, which needs its binaries)
#   PASA_CI_SKIP_ASAN=1     skip the sanitizer build (e.g. on hosts
#                           without ASan runtimes)
#   PASA_CI_SKIP_TSAN=1     skip the thread-sanitizer build
#   PASA_CI_JOBS=N          parallelism (default: nproc)
#   PASA_CI_BENCH_SCALE=S   workload scale for the benchstat smoke run
#                           (default 0.002: a couple of seconds)
#   PASA_CI_OVERHEAD_SCALE=S  workload scale for the overhead gates
#                           (default 0.02: large enough that the 5% bound
#                           measures instrumentation, not timer noise)
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-ci}"
jobs="${PASA_CI_JOBS:-$(nproc)}"
scale="${PASA_CI_BENCH_SCALE:-0.002}"
overhead_scale="${PASA_CI_OVERHEAD_SCALE:-0.02}"

step() { printf '\n== %s ==\n' "$*"; }

# Bounded state-space-explorer smoke (docs/robustness.md): the instance
# (8 users, 2 advances, all six fault points) must be covered exhaustively
# with zero invariant violations, and the committed golden counterexample
# (broken repair double) must reproduce its k-anonymity violation (exit 4).
explore_leg() {
  local cli="$1/tools/pasa_cli"
  local out visited rc
  out=$("${cli}" explore --users 8 --k 3 --advances 2 --depth 3 \
        --budget 20000 --log-level error)
  printf '%s\n' "${out}"
  grep -q 'exhausted=yes' <<<"${out}"
  grep -q 'no violation' <<<"${out}"
  visited=$(sed -n 's/.*states_visited=\([0-9]*\).*/\1/p' <<<"${out}")
  test "${visited}" -ge 300
  rc=0
  "${cli}" explore --replay tools/testdata/explore_broken_repair.json \
      --log-level error >/dev/null || rc=$?
  test "${rc}" -eq 4
}

if [[ "${PASA_CI_SKIP_RELEASE:-0}" != "1" ]]; then
  step "release build + tests (${prefix}-release)"
  cmake -B "${prefix}-release" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "${prefix}-release" -j "${jobs}"
  ctest --test-dir "${prefix}-release" --output-on-failure -j "${jobs}"
  step "state-space explorer leg (release)"
  explore_leg "${prefix}-release"
else
  step "release build skipped (PASA_CI_SKIP_RELEASE=1)"
fi

if [[ "${PASA_CI_SKIP_ASAN:-0}" != "1" ]]; then
  step "asan build + tests (${prefix}-asan)"
  cmake -B "${prefix}-asan" -S . -DCMAKE_BUILD_TYPE=Debug \
        -DPASA_SANITIZE=address
  cmake --build "${prefix}-asan" -j "${jobs}"
  ctest --test-dir "${prefix}-asan" --output-on-failure -j "${jobs}"
  step "state-space explorer leg (asan)"
  explore_leg "${prefix}-asan"
else
  step "asan build skipped (PASA_CI_SKIP_ASAN=1)"
fi

if [[ "${PASA_CI_SKIP_TSAN:-0}" != "1" ]]; then
  step "tsan build + concurrency tests (${prefix}-tsan)"
  cmake -B "${prefix}-tsan" -S . -DCMAKE_BUILD_TYPE=Debug \
        -DPASA_SANITIZE=thread
  cmake --build "${prefix}-tsan" -j "${jobs}" \
        --target chaos_test parallel_test trace_sink_test \
                 trace_context_test tail_trace_test \
                 provenance_test window_test slo_test \
                 net_wire_test net_server_test profile_test
  # The threaded suites: jurisdiction workers + fault injector (chaos),
  # the worker pool itself (parallel), the concurrent trace ring, the
  # lock-light obs v3 primitives (provenance ring, windows, SLO tracker),
  # the network front end (event loop vs client threads), and the
  # span-sampling profiler (sampler thread vs instrumented threads).
  # The chaos suite widens its seed sweep here (8 seeds instead of the
  # local default 3) — TSan is where extra schedules pay off.
  PASA_CHAOS_SEEDS=8 \
  ctest --test-dir "${prefix}-tsan" --output-on-failure -j "${jobs}" \
        -R 'Chaos|Parallel|TraceSink|TraceContext|TailTrace|Provenance|Window|Slo|NetWire|NetServer|Profiler'
else
  step "tsan build skipped (PASA_CI_SKIP_TSAN=1)"
fi

if [[ "${PASA_CI_SKIP_RELEASE:-0}" != "1" ]]; then
  step "overhead gates (scale ${overhead_scale})"
  # Each binary exits non-zero when its disarmed instrumentation costs more
  # than 5% on the hot path (obs metrics, fault injection points, the
  # provenance/window/SLO stack, and the span-sampling profiler hook
  # respectively).
  for gate in bench_obs_overhead bench_fault_overhead \
              bench_provenance_overhead bench_profile_overhead \
              bench_trace_context_overhead bench_mem_overhead; do
    PASA_BENCH_SCALE="${overhead_scale}" "${prefix}-release/bench/${gate}"
  done

  step "memory footprint benchstat (BENCH_footprint.json)"
  # Capacity regression gate: the sweep re-measures bytes-per-user at each
  # |D| and benchstat flags growth beyond 25% against the committed
  # baseline. Memory is deterministic per seed (stddev 0), so the noise
  # gate is a pure threshold; the allowance absorbs allocator/libstdc++
  # bucket-geometry drift across hosts, not real footprint regressions.
  # PASA_FOOTPRINT_MAX caps the sweep on constrained hosts — compare only
  # examines the keys both snapshots share.
  PASA_FOOTPRINT_MAX="${PASA_CI_FOOTPRINT_MAX:-1000000}" \
      "${prefix}-release/bench/bench_footprint" \
      --out "${prefix}-release/BENCH_footprint.json"
  "${prefix}-release/tools/pasa_benchstat" compare \
      --baseline bench/baseline/BENCH_footprint.json \
      --candidate "${prefix}-release/BENCH_footprint.json" \
      --threshold 0.25 --noise-sigma 0

  step "benchstat smoke run (scale ${scale})"
  "${prefix}-release/tools/pasa_benchstat" run \
      --bench "${prefix}-release/bench/bench_fig4a_bulk_time" \
      --iterations 2 --scale "${scale}" \
      --name smoke --out "${prefix}-release/BENCH_smoke.json"
  # A snapshot must never regress against itself: exercises the compare
  # path and the exit-code contract.
  "${prefix}-release/tools/pasa_benchstat" compare \
      --baseline "${prefix}-release/BENCH_smoke.json" \
      --candidate "${prefix}-release/BENCH_smoke.json"
  # And against the committed baseline: hosts differ, so the threshold is
  # deliberately loose (100% + 3 sigma) — this catches order-of-magnitude
  # regressions, not percent-level drift.
  "${prefix}-release/tools/pasa_benchstat" compare \
      --baseline bench/baseline/BENCH_smoke.json \
      --candidate "${prefix}-release/BENCH_smoke.json" \
      --threshold 1.0 --noise-sigma 3.0

  step "net throughput benchstat (BENCH_net.json) + admin-plane smoke"
  # Real sockets on loopback: pasa_loadgen drives `pasa_cli serve --listen`
  # and writes a latency-denominated snapshot (seconds per request, p99)
  # that the benchstat gate can compare across builds. Self-compare here
  # proves the gate wiring; a perf branch compares against a saved baseline.
  # The serve process also opens the HTTP admin plane and arms the profiler
  # (1997 Hz: fast enough to catch the ~10ms Bulk_dp build), so the same
  # run verifies the telemetry endpoints against live traffic.
  net_port="${PASA_CI_NET_PORT:-19575}"
  admin_port="${PASA_CI_ADMIN_PORT:-19576}"
  net_locs="${prefix}-release/tools/net_ci_locations.csv"
  "${prefix}-release/tools/pasa_cli" generate --n 20000 --seed 7 \
      --out "${net_locs}"
  "${prefix}-release/tools/pasa_cli" serve --in "${net_locs}" --k 50 \
      --listen "${net_port}" --listen-duration 120 \
      --admin-port "${admin_port}" --profile-hz 1997 &
  serve_pid=$!
  # The main run keeps the server alive (no --shutdown) and cross-checks its
  # client-side dispatched count against the scraped pasa_net_requests_served
  # counter; a mismatch exits non-zero.
  "${prefix}-release/tools/pasa_loadgen" --port "${net_port}" \
      --in "${net_locs}" --k 50 --connections 4 --requests 100000 \
      --wait-ready-seconds 30 --admin-port "${admin_port}" \
      --benchstat-out "${prefix}-release/BENCH_net.json"
  # /metrics must be valid Prometheus exposition text, /healthz must answer,
  # and /profile must contain folded stacks naming the Bulk_dp phase spans
  # sampled during the policy build.
  "${prefix}-release/tools/pasa_cli" scrape --port "${admin_port}" \
      --path /metrics --check 1 > /dev/null
  "${prefix}-release/tools/pasa_cli" scrape --port "${admin_port}" \
      --path /healthz | grep -q '^ok'
  # /healthz now carries drain state and uptime alongside the ok contract.
  "${prefix}-release/tools/pasa_cli" scrape --port "${admin_port}" \
      --path /healthz | grep -q 'state=serving'
  "${prefix}-release/tools/pasa_cli" scrape --port "${admin_port}" \
      --path /profile | grep -q 'bulk_dp'
  # Memory accounting over live traffic: GET /memory reports the serving
  # structures, and the event-loop saturation histogram shows worked ticks.
  mem_doc="$("${prefix}-release/tools/pasa_cli" scrape \
      --port "${admin_port}" --path /memory)"
  for subsystem in csp/snapshot csp/policy_tree lbs/answer_cache \
                   net/conn_buffers; do
    grep -q "\"${subsystem}\"" <<< "${mem_doc}"
  done
  "${prefix}-release/tools/pasa_cli" scrape --port "${admin_port}" \
      --path /metrics | grep -q 'pasa_net_loop_lag_seconds_count'
  "${prefix}-release/tools/pasa_cli" memstats --port "${admin_port}" \
      | grep -q 'csp/policy_tree'
  # A final small run shuts the server down cleanly. No --admin-port here:
  # the cross-check compares a single run's client count against the
  # server's cumulative counter, which by now also holds the main run.
  "${prefix}-release/tools/pasa_loadgen" --port "${net_port}" \
      --in "${net_locs}" --k 50 --connections 1 --requests 100 \
      --shutdown 1
  wait "${serve_pid}"
  "${prefix}-release/tools/pasa_benchstat" compare \
      --baseline "${prefix}-release/BENCH_net.json" \
      --candidate "${prefix}-release/BENCH_net.json"
  "${prefix}-release/tools/pasa_benchstat" compare \
      --baseline bench/baseline/BENCH_net.json \
      --candidate "${prefix}-release/BENCH_net.json" \
      --threshold 1.0 --noise-sigma 3.0
  # The in-process variant of the same measurement (no separate processes),
  # for quick local iteration; also exercises the harness itself.
  PASA_BENCH_SCALE="${overhead_scale}" \
      "${prefix}-release/bench/bench_net_throughput"

  step "traced net leg: wire trace context, /trace, trace-merge, exemplars"
  # A dedicated small run with tracing armed on both sides of the socket:
  # loadgen originates a trace context per request and carries it in the
  # wire v2 frame; the server adopts it, feeds the tail ring, stamps
  # exemplars, and writes its own Chrome trace. The leg asserts one trace
  # id observed end to end: in the server's /trace report, in loadgen's
  # per-request latency log, in the exemplar-annotated /metrics scrape,
  # and in the merged two-process Perfetto timeline.
  trace_port=$((net_port + 2))
  trace_admin=$((admin_port + 2))
  trace_dir="${prefix}-release/tools"
  "${prefix}-release/tools/pasa_cli" serve --in "${net_locs}" --k 50 \
      --listen "${trace_port}" --listen-duration 120 \
      --admin-port "${trace_admin}" --exemplars 1 \
      --trace-out "${trace_dir}/ci_server_trace.json" &
  trace_pid=$!
  "${prefix}-release/tools/pasa_loadgen" --port "${trace_port}" \
      --in "${net_locs}" --k 50 --connections 2 --requests 500 \
      --wait-ready-seconds 30 \
      --trace-out "${trace_dir}/ci_client_trace.json" \
      --latency-out "${trace_dir}/ci_latency.csv"
  # The slowest request's trace id, as kept by the server's tail ring.
  slow_id=$("${prefix}-release/tools/pasa_cli" scrape \
      --port "${trace_admin}" --path /trace \
      | sed -n 's/.*"trace_id": "\([0-9a-f]\{16\}\)".*/\1/p' | head -n 1)
  test -n "${slow_id}"
  # The client logged the same id when it originated the request...
  grep -q "${slow_id}" "${trace_dir}/ci_latency.csv"
  # ...and the Prometheus scrape carries exemplars and stays conformant.
  "${prefix}-release/tools/pasa_cli" scrape --port "${trace_admin}" \
      --path /metrics --check 1 | grep -q '# {trace_id='
  "${prefix}-release/tools/pasa_loadgen" --port "${trace_port}" \
      --in "${net_locs}" --k 50 --connections 1 --requests 10 \
      --shutdown 1
  wait "${trace_pid}"
  "${prefix}-release/tools/pasa_cli" trace-merge \
      --client "${trace_dir}/ci_client_trace.json" \
      --server "${trace_dir}/ci_server_trace.json" \
      --out "${trace_dir}/ci_merged_trace.json"
  grep -q "${slow_id}" "${trace_dir}/ci_merged_trace.json"
fi

step "ci passed"
