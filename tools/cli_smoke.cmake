# ctest driver for the pasa_cli end-to-end smoke test.

function(run_or_die expected_rc)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expected_rc})
    message(FATAL_ERROR "command ${ARGN} exited ${rc} (expected "
                        "${expected_rc})\nstdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

# Like run_or_die, but hands the command's stdout back in `out_var` so the
# caller can assert on its content.
function(run_capture expected_rc out_var)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expected_rc})
    message(FATAL_ERROR "command ${ARGN} exited ${rc} (expected "
                        "${expected_rc})\nstdout: ${out}\nstderr: ${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

function(require_fragment haystack_var fragment what)
  string(FIND "${${haystack_var}}" "${fragment}" fragment_at)
  if(fragment_at EQUAL -1)
    message(FATAL_ERROR "${what} is missing '${fragment}':\n"
                        "${${haystack_var}}")
  endif()
endfunction()

set(LOC ${WORK_DIR}/cli_smoke_locations.csv)
set(OPT ${WORK_DIR}/cli_smoke_opt.csv)
set(CASPER ${WORK_DIR}/cli_smoke_casper.csv)
# Written into a non-existent subdirectory on purpose: the exporters must
# create missing parent directories.
set(METRICS ${WORK_DIR}/cli_smoke_out/metrics.json)
set(TRACE ${WORK_DIR}/cli_smoke_out/trace.json)

run_or_die(0 ${CLI} generate --n 3000 --seed 7 --map-log2-side 13 --out ${LOC})
run_or_die(0 ${CLI} stats --in ${LOC} --k 20)

# The policy-aware optimum passes the audit...
run_or_die(0 ${CLI} anonymize --in ${LOC} --k 20 --out ${OPT} --algorithm opt
           --metrics-out ${METRICS} --trace-out ${TRACE} --log-level debug)
run_or_die(0 ${CLI} audit --locations ${LOC} --cloaks ${OPT} --k 20)

# The observability snapshot must exist and contain the per-phase DP spans,
# the request-path latency histograms and the answer-cache counters.
if(NOT EXISTS ${METRICS})
  message(FATAL_ERROR "anonymize --metrics-out did not write ${METRICS}")
endif()
file(READ ${METRICS} metrics_json)
foreach(required_key
        "\"counters\"" "\"gauges\"" "\"histograms\"" "\"spans\""
        "\"bulk_dp/leaf_init\"" "\"bulk_dp/temp_convolution\""
        "\"bulk_dp/suffix_sweep\"" "\"anonymizer/cloak_lookup_seconds\""
        "\"lbs/serve_seconds\"" "\"lbs/answer_cache/hits\""
        "\"lbs/answer_cache/misses\"")
  string(FIND "${metrics_json}" "${required_key}" key_at)
  if(key_at EQUAL -1)
    message(FATAL_ERROR "metrics JSON is missing ${required_key}:\n"
                        "${metrics_json}")
  endif()
endforeach()

# The timeline trace must be a Chrome trace_event JSON: a traceEvents
# array of begin/end pairs with thread ids and monotonic timestamps, plus
# the thread_name metadata record for the registered main thread.
if(NOT EXISTS ${TRACE})
  message(FATAL_ERROR "anonymize --trace-out did not write ${TRACE}")
endif()
file(READ ${TRACE} trace_json)
foreach(required_fragment
        "\"traceEvents\"" "\"displayTimeUnit\"" "\"droppedEventCount\""
        "\"ph\": \"B\"" "\"ph\": \"E\"" "\"ph\": \"M\""
        "\"name\": \"thread_name\"" "\"args\": {\"name\": \"main\"}"
        "\"ts\": " "\"tid\": " "\"cat\": \"pasa\""
        "\"name\": \"bulk_dp\"" "\"name\": \"anonymizer/build\"")
  string(FIND "${trace_json}" "${required_fragment}" fragment_at)
  if(fragment_at EQUAL -1)
    message(FATAL_ERROR "trace JSON is missing ${required_fragment}")
  endif()
endforeach()

# An invalid --log-level is a usage error.
run_or_die(2 ${CLI} stats --in ${LOC} --log-level shouting)

# The resilient serving path: fault-free first, then under an armed fault
# plan (flaky provider + dirty move feed + failing repairs). Both must exit
# 0 — the k-anonymity audit inside `serve` has to pass even under chaos.
set(PLAN ${WORK_DIR}/cli_smoke_fault_plan.json)
file(WRITE ${PLAN} "{\n"
     "  \"seed\": 42,\n"
     "  \"points\": [\n"
     "    {\"point\": \"lbs/error\", \"probability\": 0.3},\n"
     "    {\"point\": \"lbs/latency\", \"probability\": 0.2,"
     " \"latency_micros\": 30000},\n"
     "    {\"point\": \"snapshot/corrupt_move\", \"probability\": 0.2},\n"
     "    {\"point\": \"snapshot/repair_fail\", \"probability\": 0.5}\n"
     "  ]\n"
     "}\n")
run_or_die(0 ${CLI} serve --in ${LOC} --k 20 --snapshots 3 --requests 500)
run_or_die(0 ${CLI} serve --in ${LOC} --k 20 --snapshots 3 --requests 500
           --fault-plan ${PLAN} --fault-seed 7)

# A malformed fault plan (unknown injection point) is a usage error, as is
# --fault-seed without a plan.
set(BAD_PLAN ${WORK_DIR}/cli_smoke_bad_plan.json)
file(WRITE ${BAD_PLAN} "{\"points\": [{\"point\": \"lbs/typo\"}]}\n")
run_or_die(2 ${CLI} serve --in ${LOC} --k 20 --fault-plan ${BAD_PLAN})
run_or_die(2 ${CLI} serve --in ${LOC} --k 20 --fault-seed 7)
run_or_die(2 ${CLI} serve --k 20)

# Fractional and overflowing schedule counts are typed parse errors, not
# silently truncated casts.
set(FRAC_PLAN ${WORK_DIR}/cli_smoke_frac_plan.json)
file(WRITE ${FRAC_PLAN}
     "{\"points\": [{\"point\": \"lbs/error\", \"max_fires\": 1.5}]}\n")
run_or_die(2 ${CLI} serve --in ${LOC} --k 20 --fault-plan ${FRAC_PLAN})
set(HUGE_PLAN ${WORK_DIR}/cli_smoke_huge_plan.json)
file(WRITE ${HUGE_PLAN}
     "{\"points\": [{\"point\": \"lbs/error\", \"after\": 1e30}]}\n")
run_or_die(2 ${CLI} serve --in ${LOC} --k 20 --fault-plan ${HUGE_PLAN})

# The provenance audit trail: --audit-out writes one JSONL record per
# sampled request (into a fresh subdirectory), `explain` reconstructs the
# cloak decisions from it, and no accepted request may ever be a
# k-anonymity violation.
set(AUDIT ${WORK_DIR}/cli_smoke_out/audit.jsonl)
run_or_die(0 ${CLI} anonymize --in ${LOC} --k 20 --out ${OPT}
           --audit-out ${AUDIT})
if(NOT EXISTS ${AUDIT})
  message(FATAL_ERROR "anonymize --audit-out did not write ${AUDIT}")
endif()
file(READ ${AUDIT} audit_jsonl)
foreach(required_key
        "\"rid\":" "\"sender\":" "\"outcome\":\"served\"" "\"k\":20"
        "\"cloak_area\":" "\"policy_node\":" "\"tree_path\":\"r"
        "\"group_size\":" "\"passed_up\":" "\"cache_hit\":true"
        "\"lbs_attempts\":" "\"fault_fires\":{}" "\"total_seconds\":")
  require_fragment(audit_jsonl "${required_key}" "audit JSONL")
endforeach()

run_capture(0 explain_out ${CLI} explain --audit ${AUDIT} --limit 3)
require_fragment(explain_out "cloak: [" "explain output")
require_fragment(explain_out "group size" "explain output")
require_fragment(explain_out "passed up" "explain output")
require_fragment(explain_out "record(s) matched (3 shown)" "explain output")

run_capture(0 violations_out ${CLI} explain --audit ${AUDIT}
            --only violations)
require_fragment(violations_out "0 of " "explain --only violations output")

# explain without an audit file is a usage error; a missing file fails.
run_or_die(2 ${CLI} explain)
run_or_die(2 ${CLI} explain --audit ${AUDIT} --only sideways)
run_or_die(1 ${CLI} explain --audit ${WORK_DIR}/no_such_audit.jsonl)

# serve --watch renders the SLO / sliding-window dashboard against the
# simulated clock at the requested epoch cadence.
run_capture(0 watch_out ${CLI} serve --in ${LOC} --k 20 --snapshots 2
            --requests 300 --watch 2)
require_fragment(watch_out "[watch] epoch 2" "serve --watch output")
require_fragment(watch_out "csp/availability" "serve --watch output")
require_fragment(watch_out "csp/serve_latency" "serve --watch output")
require_fragment(watch_out "csp/anonymity" "serve --watch output")
require_fragment(watch_out "csp/window/serve_latency_seconds"
                 "serve --watch output")
require_fragment(watch_out "fast_burn=" "serve --watch output")

# SLO objectives from JSON: a valid config replaces the compiled-in
# defaults (the custom objective must show up on the watch dashboard), a
# malformed one is a usage error.
set(SLO ${WORK_DIR}/cli_smoke_slo.json)
file(WRITE ${SLO} "{\n"
     "  \"objectives\": [\n"
     "    {\"name\": \"custom/latency\", \"kind\": \"latency\","
     " \"target\": 0.95, \"latency_threshold_seconds\": 0.5},\n"
     "    {\"name\": \"custom/availability\", \"kind\": \"availability\","
     " \"target\": 0.999}\n"
     "  ]\n"
     "}\n")
run_capture(0 slo_out ${CLI} serve --in ${LOC} --k 20 --snapshots 2
            --requests 300 --watch 2 --slo-config ${SLO})
require_fragment(slo_out "custom/latency" "serve --slo-config watch output")
require_fragment(slo_out "custom/availability"
                 "serve --slo-config watch output")
set(BAD_SLO ${WORK_DIR}/cli_smoke_bad_slo.json)
file(WRITE ${BAD_SLO} "{\"objectives\": [{\"name\": \"x\","
     " \"kind\": \"sideways\", \"target\": 0.9}]}\n")
run_or_die(2 ${CLI} serve --in ${LOC} --k 20 --slo-config ${BAD_SLO})
run_or_die(2 ${CLI} serve --in ${LOC} --k 20 --slo-config
           ${WORK_DIR}/no_such_slo.json)

# Streaming audit mode appends records to disk as they are made rather than
# dumping the ring at exit; the file must carry the same record shape.
set(STREAM_AUDIT ${WORK_DIR}/cli_smoke_out/audit_stream.jsonl)
run_or_die(0 ${CLI} anonymize --in ${LOC} --k 20 --out ${OPT}
           --audit-out ${STREAM_AUDIT} --audit-mode stream)
if(NOT EXISTS ${STREAM_AUDIT})
  message(FATAL_ERROR "--audit-mode stream did not write ${STREAM_AUDIT}")
endif()
file(READ ${STREAM_AUDIT} stream_jsonl)
foreach(required_key "\"rid\":" "\"outcome\":\"served\"" "\"k\":20"
        "\"group_size\":")
  require_fragment(stream_jsonl "${required_key}" "streamed audit JSONL")
endforeach()
run_capture(0 stream_explain_out ${CLI} explain --audit ${STREAM_AUDIT}
            --limit 1)
require_fragment(stream_explain_out "cloak: [" "explain on streamed audit")
# An unknown mode is a usage error, as is a mode without a destination.
run_or_die(2 ${CLI} anonymize --in ${LOC} --k 20 --out ${OPT}
           --audit-out ${STREAM_AUDIT} --audit-mode sideways)
run_or_die(2 ${CLI} anonymize --in ${LOC} --k 20 --out ${OPT}
           --audit-mode stream)

# trace-merge stitches two Chrome trace files into one two-process
# timeline with pasa-client/pasa-server process names. Missing flags are
# usage errors; an unreadable input is a runtime failure.
set(TRACE2 ${WORK_DIR}/cli_smoke_out/trace2.json)
set(MERGED ${WORK_DIR}/cli_smoke_out/merged.json)
run_or_die(0 ${CLI} anonymize --in ${LOC} --k 20 --out ${OPT}
           --trace-out ${TRACE2})
run_or_die(0 ${CLI} trace-merge --client ${TRACE} --server ${TRACE2}
           --out ${MERGED})
if(NOT EXISTS ${MERGED})
  message(FATAL_ERROR "trace-merge did not write ${MERGED}")
endif()
file(READ ${MERGED} merged_json)
require_fragment(merged_json "pasa-client" "merged trace")
require_fragment(merged_json "pasa-server" "merged trace")
require_fragment(merged_json "\"traceEvents\"" "merged trace")
run_or_die(2 ${CLI} trace-merge)
run_or_die(2 ${CLI} trace-merge --client ${TRACE} --out ${MERGED})
run_or_die(1 ${CLI} trace-merge --client ${WORK_DIR}/no_such_trace.json
           --server ${TRACE2} --out ${MERGED})

# slowest needs a server: missing --port is a usage error, an unreachable
# port a runtime failure.
run_or_die(2 ${CLI} slowest)
run_or_die(1 ${CLI} slowest --port 1)

# Bad --listen invocations are usage errors: out-of-range port, unknown
# backend, nonsensical pending bound.
run_or_die(2 ${CLI} serve --in ${LOC} --k 20 --listen 99999999)
run_or_die(2 ${CLI} serve --in ${LOC} --k 20 --listen 18080
           --net-backend sideways)
run_or_die(2 ${CLI} serve --in ${LOC} --k 20 --listen 18080 --max-pending 0)

# The state-space explorer: a small bounded instance is covered
# exhaustively with zero violations (exit 0); the committed golden
# counterexample — a shrunk trace against the broken-repair double — must
# reproduce its k-anonymity violation deterministically (exit 4); and a
# live run against the broken double must find, shrink, and write a
# counterexample script that itself replays to the same violation.
run_capture(0 explore_out ${CLI} explore --users 6 --k 2 --advances 1
            --depth 2 --budget 5000 --log-level error)
require_fragment(explore_out "exhausted=yes" "explore output")
require_fragment(explore_out "no violation" "explore output")

run_capture(4 replay_out ${CLI} explore
            --replay ${SRC_DIR}/testdata/explore_broken_repair.json
            --log-level error)
require_fragment(replay_out "violation: invariant=kanon"
                 "explore --replay output")

set(CE ${WORK_DIR}/cli_smoke_out/counterexample.json)
run_capture(4 broken_explore_out ${CLI} explore --broken repair --depth 4
            --out ${CE} --log-level error)
require_fragment(broken_explore_out "violation: invariant=kanon"
                 "explore --broken output")
require_fragment(broken_explore_out "shrunk (" "explore --broken output")
if(NOT EXISTS ${CE})
  message(FATAL_ERROR "explore --out did not write ${CE}")
endif()
run_or_die(4 ${CLI} explore --replay ${CE} --log-level error)

# Unknown invariants or doubles are usage errors; a missing replay script
# is a runtime failure.
run_or_die(2 ${CLI} explore --invariants sideways)
run_or_die(2 ${CLI} explore --broken sideways)
run_or_die(1 ${CLI} explore --replay ${WORK_DIR}/no_such_ce.json)

# ...while the Casper baseline is expected to be flagged (exit code 3:
# k-inside policies are not policy-aware k-anonymous in general).
run_or_die(0 ${CLI} anonymize --in ${LOC} --k 20 --out ${CASPER}
           --algorithm casper)
run_or_die(3 ${CLI} audit --locations ${LOC} --cloaks ${CASPER} --k 20)

# Bad invocations are rejected.
run_or_die(2 ${CLI})
run_or_die(2 ${CLI} anonymize --in ${LOC})
run_or_die(1 ${CLI} anonymize --in /no/such.csv --k 5 --out ${OPT})

file(REMOVE ${LOC} ${OPT} ${CASPER} ${METRICS} ${TRACE} ${PLAN} ${BAD_PLAN}
     ${FRAC_PLAN} ${HUGE_PLAN} ${CE} ${AUDIT} ${SLO} ${BAD_SLO}
     ${STREAM_AUDIT} ${TRACE2} ${MERGED})
