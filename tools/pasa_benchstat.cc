// pasa_benchstat — tracked performance trajectory for the bench harnesses.
//
//   pasa_benchstat run     --bench build/bench/bench_fig4a_bulk_time
//                          [--iterations 5] [--scale 0.01] [--name NAME]
//                          [--out BENCH_<name>.json] [--metrics-json PATH]
//   pasa_benchstat compare --baseline BENCH_a.json --candidate BENCH_b.json
//                          [--threshold 0.10] [--noise-sigma 2.0]
//
// `run` executes the harness N times, collecting for each run the
// subprocess wall-clock plus every span total / histogram mean from the
// metrics snapshot the harness writes (bench/out/<name>.metrics.json, via
// bench_util::WriteMetricsSnapshot), and writes a canonical
// BENCH_<name>.json with mean/stddev/min per measurement.
//
// `compare` diffs two snapshots and exits 1 when any shared measurement
// regressed beyond --threshold (and beyond --noise-sigma times the summed
// stddevs), so it can gate CI; see docs/observability.md for the
// walkthrough.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/benchstat.h"
#include "obs/log.h"
#include "tools/cli_flags.h"

namespace {

using namespace pasa;
using tools::Flags;
namespace bs = obs::benchstat;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  pasa_benchstat run     --bench BIN [--iterations N] [--scale S]\n"
      "                         [--name NAME] [--out FILE.json]\n"
      "                         [--metrics-json PATH]\n"
      "  pasa_benchstat compare --baseline A.json --candidate B.json\n"
      "                         [--threshold 0.10] [--noise-sigma 2.0]\n"
      "compare exits 1 when a shared measurement regressed beyond the "
      "threshold.\n");
  return 2;
}

int Fail(const Status& status) {
  obs::LogError("benchstat", "%s", status.ToString().c_str());
  return 1;
}

// One harness execution; returns the subprocess wall-clock in seconds or
// a negative value on failure.
double RunOnce(const std::string& command) {
  const auto start = std::chrono::steady_clock::now();
  const int rc = std::system(command.c_str());
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return rc == 0 ? seconds : -1.0;
}

int RunCommand(const Flags& flags) {
  if (!flags.Has("bench")) return Usage();
  const std::string bench = flags.GetString("bench");
  if (!std::filesystem::exists(bench)) {
    return Fail(Status::InvalidArgument("no such bench binary: " + bench));
  }
  const int iterations =
      static_cast<int>(flags.GetInt("iterations", 5));
  if (iterations < 1) {
    return Fail(Status::InvalidArgument("--iterations must be >= 1"));
  }
  // The harnesses name their snapshots without the binary's "bench_"
  // prefix (bench_fig4a_bulk_time -> bench/out/fig4a_bulk_time.metrics.json).
  std::string stem = std::filesystem::path(bench).stem().string();
  if (stem.rfind("bench_", 0) == 0) stem = stem.substr(6);
  const std::string name = flags.GetString("name", stem);
  const std::string out = flags.GetString("out", "BENCH_" + name + ".json");
  const std::string metrics_json =
      flags.GetString("metrics-json", "bench/out/" + stem + ".metrics.json");

  std::string command = "\"" + bench + "\" > /dev/null";
  if (flags.Has("scale")) {
    command = "PASA_BENCH_SCALE=" + flags.GetString("scale") + " " + command;
  }

  std::vector<std::map<std::string, double>> runs;
  for (int i = 0; i < iterations; ++i) {
    std::error_code ec;
    std::filesystem::remove(metrics_json, ec);  // never read a stale file
    const double wall_seconds = RunOnce(command);
    if (wall_seconds < 0.0) {
      return Fail(Status::Internal("bench run failed: " + command));
    }
    std::map<std::string, double> samples;
    samples["wall_seconds"] = wall_seconds;
    if (std::filesystem::exists(metrics_json)) {
      std::ifstream file(metrics_json);
      std::ostringstream content;
      content << file.rdbuf();
      Result<obs::json::Value> document = obs::json::Parse(content.str());
      if (document.ok()) {
        for (const auto& [key, value] :
             bs::MeasurementsFromMetricsJson(*document)) {
          samples[key] = value;
        }
      } else {
        obs::LogWarn("benchstat", "ignoring malformed %s: %s",
                     metrics_json.c_str(),
                     document.status().message().c_str());
      }
    } else {
      obs::LogDebug("benchstat",
                    "no metrics snapshot at %s; recording wall clock only",
                    metrics_json.c_str());
    }
    obs::LogInfo("benchstat", "run %d/%d of %s: %.3f s (%zu measurements)",
                 i + 1, iterations, name.c_str(), wall_seconds,
                 samples.size());
    runs.push_back(std::move(samples));
  }

  const bs::Snapshot snapshot = bs::Aggregate(name, runs);
  const Status status = bs::WriteSnapshotFile(snapshot, out);
  if (!status.ok()) return Fail(status);
  std::printf("wrote %s (%d iteration(s), %zu measurement(s))\n",
              out.c_str(), snapshot.iterations,
              snapshot.measurements.size());
  return 0;
}

int CompareCommand(const Flags& flags) {
  if (!flags.Has("baseline") || !flags.Has("candidate")) return Usage();
  Result<bs::Snapshot> baseline =
      bs::LoadSnapshotFile(flags.GetString("baseline"));
  if (!baseline.ok()) return Fail(baseline.status());
  Result<bs::Snapshot> candidate =
      bs::LoadSnapshotFile(flags.GetString("candidate"));
  if (!candidate.ok()) return Fail(candidate.status());

  bs::CompareOptions options;
  options.threshold = flags.GetDouble("threshold", options.threshold);
  options.noise_sigma = flags.GetDouble("noise-sigma", options.noise_sigma);
  if (options.threshold < 0.0 || options.noise_sigma < 0.0) {
    return Fail(Status::InvalidArgument(
        "--threshold and --noise-sigma must be >= 0"));
  }

  const bs::CompareReport report = bs::Compare(*baseline, *candidate,
                                               options);
  std::printf("baseline %s (%d it.) vs candidate %s (%d it.), threshold "
              "%+.0f%%\n%s",
              baseline->name.c_str(), baseline->iterations,
              candidate->name.c_str(), candidate->iterations,
              options.threshold * 100.0,
              bs::ReportTable(report).c_str());
  if (report.HasRegression()) {
    obs::LogError("benchstat", "performance regression detected");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  if (flags.Has("log-level")) {
    Result<obs::LogLevel> level =
        obs::ParseLogLevel(flags.GetString("log-level"));
    if (!level.ok()) return Usage();
    obs::Logger::Global().SetLevel(*level);
  }
  if (command == "run") return RunCommand(flags);
  if (command == "compare") return CompareCommand(flags);
  return Usage();
}
