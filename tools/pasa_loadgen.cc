// pasa_loadgen — socket load generator for `pasa_cli serve --listen`.
//
//   pasa_loadgen --port P --in locations.csv --k 50
//                [--mode closed|open]       request pacing (default closed)
//                [--connections C]          concurrent connections (default 4)
//                [--requests N]             closed loop: total requests
//                [--duration-seconds S]     open loop: run time (default 2)
//                [--rate R]                 open loop: offered req/s total
//                [--wait-ready-seconds S]   retry-connect budget (default 10)
//                [--shutdown 1]             send kShutdownRequest at the end
//                [--benchstat-out FILE]     write a BENCH_net.json snapshot
//                [--name NAME]              snapshot name (default "net")
//                [--admin-port P]           cross-check the run against the
//                                           server's /metrics endpoint
//                [--trace-out FILE.json]    client-side Chrome trace_event
//                                           timeline (merge with the server's
//                                           via `pasa_cli trace-merge`)
//                [--latency-out FILE.csv]   per-request log: seq, originated
//                                           trace id, latency, outcome — for
//                                           offline joins against the
//                                           server's audit JSONL
//
// Closed loop: each connection issues its next request as soon as the
// previous response arrives — measures sustainable throughput. Open loop:
// requests are issued on a fixed schedule regardless of responses and
// latency is measured from the *scheduled* send time, so queueing delay is
// charged to the server (no coordinated omission).
//
// Every response is verified: the cloak must contain the sender's true
// location and group_size must be >= k — the load test doubles as an
// end-to-end k-anonymity check. Exit code 1 on any verification failure.
//
// Every request originates a wire v2 trace context (a fresh trace id with
// the client request span as parent), so the server's spans land in the
// same trace and the merged Perfetto timeline draws a flow arrow from the
// client span to the server's dispatch span.
//
// With --admin-port the end of the run scrapes GET /metrics from the
// server's admin plane and asserts that the server-side dispatched-request
// counter (pasa_net_requests_served) equals the client-side count of
// responses that went through dispatch — ok + verify failures + typed
// errors without a retry-after hint. Admission-control rejects carry
// retry_after_micros > 0 and never reach dispatch, so they are excluded;
// the check is skipped with a warning when transport errors make the
// client-side count unreliable.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "geo/rect.h"
#include "io/csv.h"
#include "model/location_database.h"
#include "net/client.h"
#include "net/http.h"
#include "net/wire.h"
#include "obs/benchstat.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "obs/trace_sink.h"
#include "tools/cli_flags.h"

namespace {

using namespace pasa;
using tools::Flags;

/// One line of the --latency-out log.
struct LatencyRow {
  uint64_t seq = 0;       ///< request index across the whole run
  uint64_t trace_id = 0;  ///< originated wire trace id
  double latency = 0.0;   ///< seconds
  const char* outcome = "ok";
};

struct WorkerResult {
  std::vector<double> latencies;  ///< seconds per request
  std::vector<LatencyRow> rows;   ///< per-request log (every request)
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t rejected = 0;     ///< typed Error frames (e.g. admission)
  /// Subset of `rejected` carrying retry_after_micros > 0: admission-control
  /// rejects, answered before dispatch (excluded from the /metrics
  /// cross-check).
  uint64_t rejected_admission = 0;
  uint64_t verify_failed = 0;
  uint64_t transport_failed = 0;
};

struct Shared {
  const LocationDatabase* db = nullptr;
  uint16_t port = 0;
  int k = 0;
  double connect_timeout = 10.0;
};

// Issues one serve request for row `row` and verifies the response. Each
// request originates its own trace context; the client request span covers
// send -> receive and the server adopts the context off the wire.
void OneRequest(net::NetClient& client, const Shared& shared, size_t row,
                WorkerResult* result, double scheduled_offset,
                const WallTimer& epoch) {
  const auto& entry = shared.db->row(row % shared.db->size());
  const ServiceRequest sr{entry.user, entry.location, {{"poi", "rest"}}};
  ++result->sent;

  obs::TraceContext ctx;
  ctx.trace_id = obs::NewTraceId();
  ctx.sampled = true;
  obs::ScopedTraceContext trace_scope(ctx);
  obs::ScopedSpan request_span("loadgen/request", obs::ScopedSpan::kRoot);
  const net::WireTraceContext wire{ctx.trace_id,
                                   obs::CurrentTraceContext().span_id,
                                   /*sampled=*/true};

  LatencyRow log_row;
  log_row.seq = row;
  log_row.trace_id = ctx.trace_id;
  struct RowAppender {  // every exit path below logs exactly one row
    WorkerResult* result;
    LatencyRow* row;
    ~RowAppender() { result->rows.push_back(*row); }
  } appender{result, &log_row};

  const double start = scheduled_offset >= 0.0 ? scheduled_offset
                                               : epoch.ElapsedSeconds();
  if (Status s = client.SendFrame(net::MsgType::kServeRequest,
                                  net::EncodeServiceRequest(sr), wire);
      !s.ok()) {
    ++result->transport_failed;
    log_row.outcome = "transport_failed";
    return;
  }
  Result<net::Frame> frame = client.ReadFrame(10.0);
  const double latency = epoch.ElapsedSeconds() - start;
  log_row.latency = latency;
  if (!frame.ok()) {
    ++result->transport_failed;
    log_row.outcome = "transport_failed";
    return;
  }
  if (frame->type == net::MsgType::kError) {
    ++result->rejected;
    log_row.outcome = "rejected";
    Result<net::ErrorMsg> err = net::DecodeError(frame->payload);
    if (err.ok() && err->retry_after_micros > 0) {
      ++result->rejected_admission;
      log_row.outcome = "rejected_admission";
    }
    return;
  }
  Result<net::ServeResponseMsg> msg = net::DecodeServeResponse(frame->payload);
  if (!msg.ok() || frame->type != net::MsgType::kServeResponse) {
    ++result->verify_failed;
    log_row.outcome = "verify_failed";
    return;
  }
  // The end-to-end anonymity check: the answer must come from a cloak that
  // masks the sender and is backed by at least k candidate senders.
  const Rect cloak{msg->cloak_x1, msg->cloak_y1, msg->cloak_x2, msg->cloak_y2};
  const bool masked = cloak.Contains(sr.location);
  const bool anonymous =
      msg->group_size >= static_cast<uint64_t>(shared.k);
  if (!masked || !anonymous || msg->rid <= 0) {
    ++result->verify_failed;
    log_row.outcome = "verify_failed";
    return;
  }
  ++result->ok;
  result->latencies.push_back(latency);
}

void ClosedLoopWorker(const Shared& shared, size_t worker, size_t workers,
                      uint64_t requests, WorkerResult* result) {
  Result<net::NetClient> client =
      net::NetClient::Connect(shared.port, shared.connect_timeout);
  if (!client.ok()) {
    result->transport_failed += requests;
    result->sent += requests;
    return;
  }
  WallTimer epoch;
  for (uint64_t i = 0; i < requests; ++i) {
    OneRequest(*client, shared, worker + i * workers, result, -1.0, epoch);
  }
}

void OpenLoopWorker(const Shared& shared, size_t worker, size_t workers,
                    double rate_per_conn, double duration,
                    WorkerResult* result) {
  Result<net::NetClient> client =
      net::NetClient::Connect(shared.port, shared.connect_timeout);
  if (!client.ok()) {
    ++result->transport_failed;
    return;
  }
  const double interval = rate_per_conn > 0.0 ? 1.0 / rate_per_conn : 0.0;
  WallTimer epoch;
  uint64_t i = 0;
  while (true) {
    // The request is *due* at i * interval; latency is charged from the
    // schedule, not from when we got around to sending.
    const double due = static_cast<double>(i) * interval;
    if (due >= duration) break;
    while (epoch.ElapsedSeconds() < due) {
      std::this_thread::yield();
    }
    OneRequest(*client, shared, worker + i * workers, result, due, epoch);
    ++i;
  }
}

double Percentile(std::vector<double>* values, double q) {
  if (values->empty()) return 0.0;
  const size_t index = std::min(
      values->size() - 1,
      static_cast<size_t>(q * static_cast<double>(values->size())));
  std::nth_element(values->begin(), values->begin() + index, values->end());
  return (*values)[index];
}

int Usage() {
  std::fprintf(stderr,
               "usage: pasa_loadgen --port P --in F.csv --k K\n"
               "  [--mode closed|open] [--connections C] [--requests N]\n"
               "  [--duration-seconds S] [--rate R] [--wait-ready-seconds S]\n"
               "  [--shutdown 1] [--benchstat-out F] [--name NAME]\n"
               "  [--admin-port P2] [--trace-out F.json] [--latency-out F.csv]"
               "\n");
  return 2;
}

// Pulls one unlabeled sample value out of a Prometheus text body.
bool FindMetricValue(const std::string& body, const std::string& name,
                     double* value) {
  const std::string prefix = name + " ";
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    if (body.compare(pos, prefix.size(), prefix) == 0) {
      *value = std::atof(body.c_str() + pos + prefix.size());
      return true;
    }
    pos = eol + 1;
  }
  return false;
}

// The --admin-port end-of-run cross-check: server-side dispatched count
// (pasa_net_requests_served) must equal the client-side count of responses
// that went through dispatch. Returns 0 on match or skip, 1 on mismatch or
// scrape failure.
int CrossCheckAgainstMetrics(uint16_t admin_port, const WorkerResult& total,
                             double timeout) {
  Result<net::HttpResponse> metrics =
      net::HttpGet(admin_port, "/metrics", timeout);
  if (!metrics.ok()) {
    std::fprintf(stderr, "error: admin /metrics scrape failed: %s\n",
                 metrics.status().ToString().c_str());
    return 1;
  }
  if (metrics->status != 200) {
    std::fprintf(stderr, "error: admin /metrics returned HTTP %d\n",
                 metrics->status);
    return 1;
  }
  double served = 0.0;
  if (!FindMetricValue(metrics->body, "pasa_net_requests_served", &served)) {
    std::fprintf(stderr,
                 "error: pasa_net_requests_served missing from /metrics "
                 "(%zu bytes)\n",
                 metrics->body.size());
    return 1;
  }
  if (total.transport_failed > 0) {
    // A transport error leaves the fate of the in-flight request unknown
    // (the server may or may not have dispatched it), so equality cannot
    // be asserted.
    std::fprintf(stderr,
                 "warning: skipping /metrics cross-check (%llu transport "
                 "error(s) make the client-side count unreliable)\n",
                 static_cast<unsigned long long>(total.transport_failed));
    return 0;
  }
  const uint64_t dispatched_errors = total.rejected - total.rejected_admission;
  const uint64_t expected = total.ok + total.verify_failed + dispatched_errors;
  const uint64_t server_side = static_cast<uint64_t>(served + 0.5);
  if (server_side != expected) {
    std::fprintf(stderr,
                 "error: /metrics cross-check FAILED: server dispatched "
                 "%llu, client saw %llu (%llu ok + %llu verify-failed + "
                 "%llu dispatched errors; %llu admission rejects excluded)\n",
                 static_cast<unsigned long long>(server_side),
                 static_cast<unsigned long long>(expected),
                 static_cast<unsigned long long>(total.ok),
                 static_cast<unsigned long long>(total.verify_failed),
                 static_cast<unsigned long long>(dispatched_errors),
                 static_cast<unsigned long long>(total.rejected_admission));
    return 1;
  }
  std::printf("/metrics cross-check ok: server dispatched %llu == client "
              "count (%llu admission reject(s) excluded)\n",
              static_cast<unsigned long long>(server_side),
              static_cast<unsigned long long>(total.rejected_admission));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv, 1);
  if (!flags.Has("port") || !flags.Has("in")) return Usage();
  const int64_t port = flags.GetInt("port", 0);
  if (port < 1 || port > 65535) return Usage();
  const std::string mode = flags.GetString("mode", "closed");
  if (mode != "closed" && mode != "open") return Usage();
  const size_t connections =
      static_cast<size_t>(std::max<int64_t>(1, flags.GetInt("connections", 4)));
  const uint64_t requests =
      static_cast<uint64_t>(std::max<int64_t>(1, flags.GetInt("requests",
                                                              10000)));
  const double duration = flags.GetDouble("duration-seconds", 2.0);
  const double rate = flags.GetDouble("rate", 20000.0);
  if (duration <= 0.0 || rate <= 0.0) return Usage();

  Result<LocationDatabase> db = LoadLocationDatabaseCsv(flags.GetString("in"));
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }
  if (db->size() == 0) {
    std::fprintf(stderr, "error: empty location database\n");
    return 1;
  }

  Shared shared;
  shared.db = &*db;
  shared.port = static_cast<uint16_t>(port);
  shared.k = static_cast<int>(flags.GetInt("k", 50));
  shared.connect_timeout = flags.GetDouble("wait-ready-seconds", 10.0);

  const bool tracing = flags.Has("trace-out");
  if (tracing) {
    obs::TraceEventSink::Global().SetCurrentThreadName("loadgen-main");
    obs::TraceEventSink::Global().Start();
  }

  std::vector<WorkerResult> results(connections);
  std::vector<std::thread> workers;
  workers.reserve(connections);
  WallTimer wall;
  for (size_t w = 0; w < connections; ++w) {
    WorkerResult* result = &results[w];
    const uint64_t share =
        requests / connections + (w < requests % connections ? 1 : 0);
    const double rate_per_conn = rate / static_cast<double>(connections);
    workers.emplace_back([&shared, &mode, tracing, w, connections, share,
                          rate_per_conn, duration, result] {
      if (tracing) {
        obs::TraceEventSink::Global().SetCurrentThreadName(
            "loadgen-conn-" + std::to_string(w));
      }
      if (mode == "closed") {
        ClosedLoopWorker(shared, w, connections, share, result);
      } else {
        OpenLoopWorker(shared, w, connections, rate_per_conn, duration,
                       result);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed = wall.ElapsedSeconds();

  WorkerResult total;
  std::vector<double> latencies;
  for (WorkerResult& r : results) {
    total.sent += r.sent;
    total.ok += r.ok;
    total.rejected += r.rejected;
    total.rejected_admission += r.rejected_admission;
    total.verify_failed += r.verify_failed;
    total.transport_failed += r.transport_failed;
    latencies.insert(latencies.end(), r.latencies.begin(), r.latencies.end());
  }
  double sum = 0.0;
  for (const double v : latencies) sum += v;
  const double mean = latencies.empty()
                          ? 0.0
                          : sum / static_cast<double>(latencies.size());
  const double p50 = Percentile(&latencies, 0.50);
  const double p95 = Percentile(&latencies, 0.95);
  const double p99 = Percentile(&latencies, 0.99);
  const double throughput =
      elapsed > 0.0 ? static_cast<double>(total.ok) / elapsed : 0.0;

  std::printf(
      "%s loop, %zu connection(s): %llu sent, %llu ok, %llu rejected, "
      "%llu transport errors, %llu VERIFY FAILURES in %.3f s\n",
      mode.c_str(), connections,
      static_cast<unsigned long long>(total.sent),
      static_cast<unsigned long long>(total.ok),
      static_cast<unsigned long long>(total.rejected),
      static_cast<unsigned long long>(total.transport_failed),
      static_cast<unsigned long long>(total.verify_failed), elapsed);
  std::printf("throughput %.0f req/s; latency mean %.1f us, p50 %.1f us, "
              "p95 %.1f us, p99 %.1f us\n",
              throughput, mean * 1e6, p50 * 1e6, p95 * 1e6, p99 * 1e6);

  if (tracing) {
    obs::TraceEventSink& sink = obs::TraceEventSink::Global();
    sink.Stop();
    const Status s = sink.WriteChromeTraceFile(flags.GetString("trace-out"));
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote client trace to %s\n",
                flags.GetString("trace-out").c_str());
  }

  if (flags.Has("latency-out")) {
    const std::string path = flags.GetString("latency-out");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
    std::fprintf(f, "seq,trace_id,latency_seconds,outcome\n");
    for (const WorkerResult& r : results) {
      for (const LatencyRow& row : r.rows) {
        std::fprintf(f, "%llu,%s,%.9f,%s\n",
                     static_cast<unsigned long long>(row.seq),
                     obs::TraceIdHex(row.trace_id).c_str(), row.latency,
                     row.outcome);
      }
    }
    std::fclose(f);
    std::printf("wrote per-request latency log to %s\n", path.c_str());
  }

  int cross_check_rc = 0;
  if (flags.Has("admin-port")) {
    const int64_t admin_port = flags.GetInt("admin-port", 0);
    if (admin_port < 1 || admin_port > 65535) return Usage();
    // Scrape before --shutdown so the admin plane is still answering.
    cross_check_rc = CrossCheckAgainstMetrics(
        static_cast<uint16_t>(admin_port), total, shared.connect_timeout);
  }

  if (flags.Has("shutdown")) {
    Result<net::NetClient> client =
        net::NetClient::Connect(shared.port, shared.connect_timeout);
    if (client.ok()) {
      client->Call(net::MsgType::kShutdownRequest, "", 5.0);
    }
  }

  if (flags.Has("benchstat-out")) {
    // Benchstat measurements are times (higher = regression), so record
    // seconds-per-request rather than req/s.
    std::map<std::string, double> run;
    run["net/seconds_per_request"] =
        throughput > 0.0 ? 1.0 / throughput : 1.0;
    run["net/latency_mean_seconds"] = mean;
    run["net/latency_p99_seconds"] = p99;
    const obs::benchstat::Snapshot snapshot = obs::benchstat::Aggregate(
        flags.GetString("name", "net"), {run});
    const Status s = obs::benchstat::WriteSnapshotFile(
        snapshot, flags.GetString("benchstat-out"));
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  if (total.verify_failed > 0) return 1;
  if (total.ok == 0) {
    std::fprintf(stderr, "error: no request succeeded\n");
    return 1;
  }
  return cross_check_rc;
}
