# Empty compiler generated dependencies file for bench_fig3_tree_shape.
# This may be replaced when dependencies are built.
