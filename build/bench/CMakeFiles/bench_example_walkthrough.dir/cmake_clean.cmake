file(REMOVE_RECURSE
  "CMakeFiles/bench_example_walkthrough.dir/bench_example_walkthrough.cc.o"
  "CMakeFiles/bench_example_walkthrough.dir/bench_example_walkthrough.cc.o.d"
  "bench_example_walkthrough"
  "bench_example_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
