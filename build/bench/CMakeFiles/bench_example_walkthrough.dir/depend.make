# Empty dependencies file for bench_example_walkthrough.
# This may be replaced when dependencies are built.
