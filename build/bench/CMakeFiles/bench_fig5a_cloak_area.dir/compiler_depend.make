# Empty compiler generated dependencies file for bench_fig5a_cloak_area.
# This may be replaced when dependencies are built.
