file(REMOVE_RECURSE
  "CMakeFiles/bench_lookup_micro.dir/bench_lookup_micro.cc.o"
  "CMakeFiles/bench_lookup_micro.dir/bench_lookup_micro.cc.o.d"
  "bench_lookup_micro"
  "bench_lookup_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lookup_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
