# Empty compiler generated dependencies file for bench_lookup_micro.
# This may be replaced when dependencies are built.
