file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6d_parallel_utility.dir/bench_sec6d_parallel_utility.cc.o"
  "CMakeFiles/bench_sec6d_parallel_utility.dir/bench_sec6d_parallel_utility.cc.o.d"
  "bench_sec6d_parallel_utility"
  "bench_sec6d_parallel_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6d_parallel_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
