# Empty compiler generated dependencies file for bench_sec6d_parallel_utility.
# This may be replaced when dependencies are built.
