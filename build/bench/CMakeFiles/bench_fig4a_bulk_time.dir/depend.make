# Empty dependencies file for bench_fig4a_bulk_time.
# This may be replaced when dependencies are built.
