file(REMOVE_RECURSE
  "CMakeFiles/bench_sec7_breaches.dir/bench_sec7_breaches.cc.o"
  "CMakeFiles/bench_sec7_breaches.dir/bench_sec7_breaches.cc.o.d"
  "bench_sec7_breaches"
  "bench_sec7_breaches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec7_breaches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
