# Empty compiler generated dependencies file for bench_sec7_breaches.
# This may be replaced when dependencies are built.
