file(REMOVE_RECURSE
  "CMakeFiles/bench_circular_smallscale.dir/bench_circular_smallscale.cc.o"
  "CMakeFiles/bench_circular_smallscale.dir/bench_circular_smallscale.cc.o.d"
  "bench_circular_smallscale"
  "bench_circular_smallscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_circular_smallscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
