# Empty compiler generated dependencies file for bench_circular_smallscale.
# This may be replaced when dependencies are built.
