# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bulkdp_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/policies_test[1]_include.cmake")
include("/root/repo/build/tests/attack_test[1]_include.cmake")
include("/root/repo/build/tests/breach_scenarios_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_test[1]_include.cmake")
include("/root/repo/build/tests/circular_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/configuration_test[1]_include.cmake")
include("/root/repo/build/tests/anonymizer_test[1]_include.cmake")
include("/root/repo/build/tests/lbs_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/csp_test[1]_include.cmake")
include("/root/repo/build/tests/dp_crossvalidation_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_orientation_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/configuration_oracle_test[1]_include.cmake")
include("/root/repo/build/tests/metamorphic_test[1]_include.cmake")
include("/root/repo/build/tests/svg_test[1]_include.cmake")
