file(REMOVE_RECURSE
  "CMakeFiles/bulkdp_test.dir/bulkdp_test.cc.o"
  "CMakeFiles/bulkdp_test.dir/bulkdp_test.cc.o.d"
  "bulkdp_test"
  "bulkdp_test.pdb"
  "bulkdp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulkdp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
