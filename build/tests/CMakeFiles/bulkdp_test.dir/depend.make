# Empty dependencies file for bulkdp_test.
# This may be replaced when dependencies are built.
