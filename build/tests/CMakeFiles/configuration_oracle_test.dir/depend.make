# Empty dependencies file for configuration_oracle_test.
# This may be replaced when dependencies are built.
