file(REMOVE_RECURSE
  "CMakeFiles/configuration_oracle_test.dir/configuration_oracle_test.cc.o"
  "CMakeFiles/configuration_oracle_test.dir/configuration_oracle_test.cc.o.d"
  "configuration_oracle_test"
  "configuration_oracle_test.pdb"
  "configuration_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/configuration_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
