# Empty dependencies file for adaptive_orientation_test.
# This may be replaced when dependencies are built.
