file(REMOVE_RECURSE
  "CMakeFiles/adaptive_orientation_test.dir/adaptive_orientation_test.cc.o"
  "CMakeFiles/adaptive_orientation_test.dir/adaptive_orientation_test.cc.o.d"
  "adaptive_orientation_test"
  "adaptive_orientation_test.pdb"
  "adaptive_orientation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_orientation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
