file(REMOVE_RECURSE
  "CMakeFiles/dp_crossvalidation_test.dir/dp_crossvalidation_test.cc.o"
  "CMakeFiles/dp_crossvalidation_test.dir/dp_crossvalidation_test.cc.o.d"
  "dp_crossvalidation_test"
  "dp_crossvalidation_test.pdb"
  "dp_crossvalidation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_crossvalidation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
