# Empty dependencies file for dp_crossvalidation_test.
# This may be replaced when dependencies are built.
