file(REMOVE_RECURSE
  "CMakeFiles/anonymizer_test.dir/anonymizer_test.cc.o"
  "CMakeFiles/anonymizer_test.dir/anonymizer_test.cc.o.d"
  "anonymizer_test"
  "anonymizer_test.pdb"
  "anonymizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
