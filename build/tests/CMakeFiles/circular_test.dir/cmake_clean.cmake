file(REMOVE_RECURSE
  "CMakeFiles/circular_test.dir/circular_test.cc.o"
  "CMakeFiles/circular_test.dir/circular_test.cc.o.d"
  "circular_test"
  "circular_test.pdb"
  "circular_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circular_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
