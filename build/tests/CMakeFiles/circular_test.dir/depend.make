# Empty dependencies file for circular_test.
# This may be replaced when dependencies are built.
