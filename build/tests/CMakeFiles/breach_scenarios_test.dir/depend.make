# Empty dependencies file for breach_scenarios_test.
# This may be replaced when dependencies are built.
