file(REMOVE_RECURSE
  "CMakeFiles/breach_scenarios_test.dir/breach_scenarios_test.cc.o"
  "CMakeFiles/breach_scenarios_test.dir/breach_scenarios_test.cc.o.d"
  "breach_scenarios_test"
  "breach_scenarios_test.pdb"
  "breach_scenarios_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/breach_scenarios_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
