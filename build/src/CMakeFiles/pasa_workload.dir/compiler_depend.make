# Empty compiler generated dependencies file for pasa_workload.
# This may be replaced when dependencies are built.
