file(REMOVE_RECURSE
  "CMakeFiles/pasa_workload.dir/workload/bay_area.cc.o"
  "CMakeFiles/pasa_workload.dir/workload/bay_area.cc.o.d"
  "CMakeFiles/pasa_workload.dir/workload/movement.cc.o"
  "CMakeFiles/pasa_workload.dir/workload/movement.cc.o.d"
  "CMakeFiles/pasa_workload.dir/workload/requests.cc.o"
  "CMakeFiles/pasa_workload.dir/workload/requests.cc.o.d"
  "libpasa_workload.a"
  "libpasa_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasa_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
