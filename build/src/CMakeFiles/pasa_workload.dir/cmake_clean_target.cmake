file(REMOVE_RECURSE
  "libpasa_workload.a"
)
