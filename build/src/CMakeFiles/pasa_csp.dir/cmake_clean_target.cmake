file(REMOVE_RECURSE
  "libpasa_csp.a"
)
