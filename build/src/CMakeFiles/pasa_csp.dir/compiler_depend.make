# Empty compiler generated dependencies file for pasa_csp.
# This may be replaced when dependencies are built.
