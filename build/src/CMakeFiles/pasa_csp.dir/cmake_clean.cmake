file(REMOVE_RECURSE
  "CMakeFiles/pasa_csp.dir/csp/server.cc.o"
  "CMakeFiles/pasa_csp.dir/csp/server.cc.o.d"
  "libpasa_csp.a"
  "libpasa_csp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasa_csp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
