file(REMOVE_RECURSE
  "libpasa_geo.a"
)
