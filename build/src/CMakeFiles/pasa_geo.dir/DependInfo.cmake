
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/circle.cc" "src/CMakeFiles/pasa_geo.dir/geo/circle.cc.o" "gcc" "src/CMakeFiles/pasa_geo.dir/geo/circle.cc.o.d"
  "/root/repo/src/geo/mbc.cc" "src/CMakeFiles/pasa_geo.dir/geo/mbc.cc.o" "gcc" "src/CMakeFiles/pasa_geo.dir/geo/mbc.cc.o.d"
  "/root/repo/src/geo/rect.cc" "src/CMakeFiles/pasa_geo.dir/geo/rect.cc.o" "gcc" "src/CMakeFiles/pasa_geo.dir/geo/rect.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pasa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
