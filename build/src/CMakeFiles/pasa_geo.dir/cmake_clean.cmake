file(REMOVE_RECURSE
  "CMakeFiles/pasa_geo.dir/geo/circle.cc.o"
  "CMakeFiles/pasa_geo.dir/geo/circle.cc.o.d"
  "CMakeFiles/pasa_geo.dir/geo/mbc.cc.o"
  "CMakeFiles/pasa_geo.dir/geo/mbc.cc.o.d"
  "CMakeFiles/pasa_geo.dir/geo/rect.cc.o"
  "CMakeFiles/pasa_geo.dir/geo/rect.cc.o.d"
  "libpasa_geo.a"
  "libpasa_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasa_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
