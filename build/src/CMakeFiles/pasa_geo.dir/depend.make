# Empty dependencies file for pasa_geo.
# This may be replaced when dependencies are built.
