file(REMOVE_RECURSE
  "CMakeFiles/pasa_common.dir/common/rng.cc.o"
  "CMakeFiles/pasa_common.dir/common/rng.cc.o.d"
  "CMakeFiles/pasa_common.dir/common/stats.cc.o"
  "CMakeFiles/pasa_common.dir/common/stats.cc.o.d"
  "CMakeFiles/pasa_common.dir/common/status.cc.o"
  "CMakeFiles/pasa_common.dir/common/status.cc.o.d"
  "CMakeFiles/pasa_common.dir/common/table.cc.o"
  "CMakeFiles/pasa_common.dir/common/table.cc.o.d"
  "CMakeFiles/pasa_common.dir/common/timer.cc.o"
  "CMakeFiles/pasa_common.dir/common/timer.cc.o.d"
  "libpasa_common.a"
  "libpasa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
