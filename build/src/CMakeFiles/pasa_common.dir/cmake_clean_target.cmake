file(REMOVE_RECURSE
  "libpasa_common.a"
)
