# Empty dependencies file for pasa_common.
# This may be replaced when dependencies are built.
