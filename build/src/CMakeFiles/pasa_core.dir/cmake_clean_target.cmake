file(REMOVE_RECURSE
  "libpasa_core.a"
)
