file(REMOVE_RECURSE
  "CMakeFiles/pasa_core.dir/pasa/anonymizer.cc.o"
  "CMakeFiles/pasa_core.dir/pasa/anonymizer.cc.o.d"
  "CMakeFiles/pasa_core.dir/pasa/bulk_dp_binary.cc.o"
  "CMakeFiles/pasa_core.dir/pasa/bulk_dp_binary.cc.o.d"
  "CMakeFiles/pasa_core.dir/pasa/bulk_dp_quad.cc.o"
  "CMakeFiles/pasa_core.dir/pasa/bulk_dp_quad.cc.o.d"
  "CMakeFiles/pasa_core.dir/pasa/configuration.cc.o"
  "CMakeFiles/pasa_core.dir/pasa/configuration.cc.o.d"
  "CMakeFiles/pasa_core.dir/pasa/extraction.cc.o"
  "CMakeFiles/pasa_core.dir/pasa/extraction.cc.o.d"
  "CMakeFiles/pasa_core.dir/pasa/incremental.cc.o"
  "CMakeFiles/pasa_core.dir/pasa/incremental.cc.o.d"
  "libpasa_core.a"
  "libpasa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
