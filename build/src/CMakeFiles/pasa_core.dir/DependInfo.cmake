
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pasa/anonymizer.cc" "src/CMakeFiles/pasa_core.dir/pasa/anonymizer.cc.o" "gcc" "src/CMakeFiles/pasa_core.dir/pasa/anonymizer.cc.o.d"
  "/root/repo/src/pasa/bulk_dp_binary.cc" "src/CMakeFiles/pasa_core.dir/pasa/bulk_dp_binary.cc.o" "gcc" "src/CMakeFiles/pasa_core.dir/pasa/bulk_dp_binary.cc.o.d"
  "/root/repo/src/pasa/bulk_dp_quad.cc" "src/CMakeFiles/pasa_core.dir/pasa/bulk_dp_quad.cc.o" "gcc" "src/CMakeFiles/pasa_core.dir/pasa/bulk_dp_quad.cc.o.d"
  "/root/repo/src/pasa/configuration.cc" "src/CMakeFiles/pasa_core.dir/pasa/configuration.cc.o" "gcc" "src/CMakeFiles/pasa_core.dir/pasa/configuration.cc.o.d"
  "/root/repo/src/pasa/extraction.cc" "src/CMakeFiles/pasa_core.dir/pasa/extraction.cc.o" "gcc" "src/CMakeFiles/pasa_core.dir/pasa/extraction.cc.o.d"
  "/root/repo/src/pasa/incremental.cc" "src/CMakeFiles/pasa_core.dir/pasa/incremental.cc.o" "gcc" "src/CMakeFiles/pasa_core.dir/pasa/incremental.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pasa_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pasa_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pasa_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pasa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
