# Empty dependencies file for pasa_core.
# This may be replaced when dependencies are built.
