file(REMOVE_RECURSE
  "CMakeFiles/pasa_io.dir/io/csv.cc.o"
  "CMakeFiles/pasa_io.dir/io/csv.cc.o.d"
  "CMakeFiles/pasa_io.dir/io/svg.cc.o"
  "CMakeFiles/pasa_io.dir/io/svg.cc.o.d"
  "libpasa_io.a"
  "libpasa_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasa_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
