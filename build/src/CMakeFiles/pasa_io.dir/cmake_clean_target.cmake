file(REMOVE_RECURSE
  "libpasa_io.a"
)
