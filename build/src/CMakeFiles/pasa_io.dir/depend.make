# Empty dependencies file for pasa_io.
# This may be replaced when dependencies are built.
