# Empty dependencies file for pasa_policies.
# This may be replaced when dependencies are built.
