file(REMOVE_RECURSE
  "CMakeFiles/pasa_policies.dir/policies/casper.cc.o"
  "CMakeFiles/pasa_policies.dir/policies/casper.cc.o.d"
  "CMakeFiles/pasa_policies.dir/policies/find_mbc.cc.o"
  "CMakeFiles/pasa_policies.dir/policies/find_mbc.cc.o.d"
  "CMakeFiles/pasa_policies.dir/policies/k_inside_binary.cc.o"
  "CMakeFiles/pasa_policies.dir/policies/k_inside_binary.cc.o.d"
  "CMakeFiles/pasa_policies.dir/policies/k_inside_quad.cc.o"
  "CMakeFiles/pasa_policies.dir/policies/k_inside_quad.cc.o.d"
  "CMakeFiles/pasa_policies.dir/policies/k_reciprocity.cc.o"
  "CMakeFiles/pasa_policies.dir/policies/k_reciprocity.cc.o.d"
  "CMakeFiles/pasa_policies.dir/policies/k_sharing.cc.o"
  "CMakeFiles/pasa_policies.dir/policies/k_sharing.cc.o.d"
  "libpasa_policies.a"
  "libpasa_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasa_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
