file(REMOVE_RECURSE
  "libpasa_policies.a"
)
