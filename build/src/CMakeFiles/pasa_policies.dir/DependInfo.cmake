
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policies/casper.cc" "src/CMakeFiles/pasa_policies.dir/policies/casper.cc.o" "gcc" "src/CMakeFiles/pasa_policies.dir/policies/casper.cc.o.d"
  "/root/repo/src/policies/find_mbc.cc" "src/CMakeFiles/pasa_policies.dir/policies/find_mbc.cc.o" "gcc" "src/CMakeFiles/pasa_policies.dir/policies/find_mbc.cc.o.d"
  "/root/repo/src/policies/k_inside_binary.cc" "src/CMakeFiles/pasa_policies.dir/policies/k_inside_binary.cc.o" "gcc" "src/CMakeFiles/pasa_policies.dir/policies/k_inside_binary.cc.o.d"
  "/root/repo/src/policies/k_inside_quad.cc" "src/CMakeFiles/pasa_policies.dir/policies/k_inside_quad.cc.o" "gcc" "src/CMakeFiles/pasa_policies.dir/policies/k_inside_quad.cc.o.d"
  "/root/repo/src/policies/k_reciprocity.cc" "src/CMakeFiles/pasa_policies.dir/policies/k_reciprocity.cc.o" "gcc" "src/CMakeFiles/pasa_policies.dir/policies/k_reciprocity.cc.o.d"
  "/root/repo/src/policies/k_sharing.cc" "src/CMakeFiles/pasa_policies.dir/policies/k_sharing.cc.o" "gcc" "src/CMakeFiles/pasa_policies.dir/policies/k_sharing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pasa_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pasa_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pasa_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pasa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
