file(REMOVE_RECURSE
  "libpasa_lbs.a"
)
