file(REMOVE_RECURSE
  "CMakeFiles/pasa_lbs.dir/lbs/poi.cc.o"
  "CMakeFiles/pasa_lbs.dir/lbs/poi.cc.o.d"
  "CMakeFiles/pasa_lbs.dir/lbs/provider.cc.o"
  "CMakeFiles/pasa_lbs.dir/lbs/provider.cc.o.d"
  "libpasa_lbs.a"
  "libpasa_lbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasa_lbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
