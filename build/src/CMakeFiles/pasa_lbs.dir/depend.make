# Empty dependencies file for pasa_lbs.
# This may be replaced when dependencies are built.
