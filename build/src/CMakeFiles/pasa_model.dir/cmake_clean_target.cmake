file(REMOVE_RECURSE
  "libpasa_model.a"
)
