
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/anonymized_request.cc" "src/CMakeFiles/pasa_model.dir/model/anonymized_request.cc.o" "gcc" "src/CMakeFiles/pasa_model.dir/model/anonymized_request.cc.o.d"
  "/root/repo/src/model/cloaking.cc" "src/CMakeFiles/pasa_model.dir/model/cloaking.cc.o" "gcc" "src/CMakeFiles/pasa_model.dir/model/cloaking.cc.o.d"
  "/root/repo/src/model/location_database.cc" "src/CMakeFiles/pasa_model.dir/model/location_database.cc.o" "gcc" "src/CMakeFiles/pasa_model.dir/model/location_database.cc.o.d"
  "/root/repo/src/model/service_request.cc" "src/CMakeFiles/pasa_model.dir/model/service_request.cc.o" "gcc" "src/CMakeFiles/pasa_model.dir/model/service_request.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pasa_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pasa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
