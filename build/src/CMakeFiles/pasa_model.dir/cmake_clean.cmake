file(REMOVE_RECURSE
  "CMakeFiles/pasa_model.dir/model/anonymized_request.cc.o"
  "CMakeFiles/pasa_model.dir/model/anonymized_request.cc.o.d"
  "CMakeFiles/pasa_model.dir/model/cloaking.cc.o"
  "CMakeFiles/pasa_model.dir/model/cloaking.cc.o.d"
  "CMakeFiles/pasa_model.dir/model/location_database.cc.o"
  "CMakeFiles/pasa_model.dir/model/location_database.cc.o.d"
  "CMakeFiles/pasa_model.dir/model/service_request.cc.o"
  "CMakeFiles/pasa_model.dir/model/service_request.cc.o.d"
  "libpasa_model.a"
  "libpasa_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasa_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
