# Empty dependencies file for pasa_model.
# This may be replaced when dependencies are built.
