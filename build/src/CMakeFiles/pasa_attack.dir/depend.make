# Empty dependencies file for pasa_attack.
# This may be replaced when dependencies are built.
