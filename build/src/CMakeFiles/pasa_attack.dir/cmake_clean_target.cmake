file(REMOVE_RECURSE
  "libpasa_attack.a"
)
