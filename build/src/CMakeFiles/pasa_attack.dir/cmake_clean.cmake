file(REMOVE_RECURSE
  "CMakeFiles/pasa_attack.dir/attack/auditor.cc.o"
  "CMakeFiles/pasa_attack.dir/attack/auditor.cc.o.d"
  "CMakeFiles/pasa_attack.dir/attack/pre.cc.o"
  "CMakeFiles/pasa_attack.dir/attack/pre.cc.o.d"
  "libpasa_attack.a"
  "libpasa_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasa_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
