# Empty compiler generated dependencies file for pasa_circular.
# This may be replaced when dependencies are built.
