file(REMOVE_RECURSE
  "libpasa_circular.a"
)
