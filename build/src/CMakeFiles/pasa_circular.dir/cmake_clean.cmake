file(REMOVE_RECURSE
  "CMakeFiles/pasa_circular.dir/circular/candidates.cc.o"
  "CMakeFiles/pasa_circular.dir/circular/candidates.cc.o.d"
  "CMakeFiles/pasa_circular.dir/circular/exact_solver.cc.o"
  "CMakeFiles/pasa_circular.dir/circular/exact_solver.cc.o.d"
  "CMakeFiles/pasa_circular.dir/circular/greedy_solver.cc.o"
  "CMakeFiles/pasa_circular.dir/circular/greedy_solver.cc.o.d"
  "libpasa_circular.a"
  "libpasa_circular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasa_circular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
