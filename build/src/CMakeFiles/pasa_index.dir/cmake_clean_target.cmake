file(REMOVE_RECURSE
  "libpasa_index.a"
)
