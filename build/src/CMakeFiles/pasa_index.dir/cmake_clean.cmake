file(REMOVE_RECURSE
  "CMakeFiles/pasa_index.dir/index/binary_tree.cc.o"
  "CMakeFiles/pasa_index.dir/index/binary_tree.cc.o.d"
  "CMakeFiles/pasa_index.dir/index/morton.cc.o"
  "CMakeFiles/pasa_index.dir/index/morton.cc.o.d"
  "CMakeFiles/pasa_index.dir/index/quad_tree.cc.o"
  "CMakeFiles/pasa_index.dir/index/quad_tree.cc.o.d"
  "libpasa_index.a"
  "libpasa_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasa_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
