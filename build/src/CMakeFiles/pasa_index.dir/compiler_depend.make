# Empty compiler generated dependencies file for pasa_index.
# This may be replaced when dependencies are built.
