file(REMOVE_RECURSE
  "libpasa_parallel.a"
)
