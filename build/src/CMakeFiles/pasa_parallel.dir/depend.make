# Empty dependencies file for pasa_parallel.
# This may be replaced when dependencies are built.
