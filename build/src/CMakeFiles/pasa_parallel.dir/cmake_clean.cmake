file(REMOVE_RECURSE
  "CMakeFiles/pasa_parallel.dir/parallel/master_policy.cc.o"
  "CMakeFiles/pasa_parallel.dir/parallel/master_policy.cc.o.d"
  "CMakeFiles/pasa_parallel.dir/parallel/partitioner.cc.o"
  "CMakeFiles/pasa_parallel.dir/parallel/partitioner.cc.o.d"
  "CMakeFiles/pasa_parallel.dir/parallel/runner.cc.o"
  "CMakeFiles/pasa_parallel.dir/parallel/runner.cc.o.d"
  "libpasa_parallel.a"
  "libpasa_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasa_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
