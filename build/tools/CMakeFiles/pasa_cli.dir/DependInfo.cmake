
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/pasa_cli.cc" "tools/CMakeFiles/pasa_cli.dir/pasa_cli.cc.o" "gcc" "tools/CMakeFiles/pasa_cli.dir/pasa_cli.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pasa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pasa_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pasa_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pasa_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pasa_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pasa_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pasa_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pasa_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pasa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
