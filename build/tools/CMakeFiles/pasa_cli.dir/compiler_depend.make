# Empty compiler generated dependencies file for pasa_cli.
# This may be replaced when dependencies are built.
