file(REMOVE_RECURSE
  "CMakeFiles/pasa_cli.dir/pasa_cli.cc.o"
  "CMakeFiles/pasa_cli.dir/pasa_cli.cc.o.d"
  "pasa_cli"
  "pasa_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pasa_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
