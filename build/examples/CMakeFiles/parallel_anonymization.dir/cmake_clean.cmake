file(REMOVE_RECURSE
  "CMakeFiles/parallel_anonymization.dir/parallel_anonymization.cpp.o"
  "CMakeFiles/parallel_anonymization.dir/parallel_anonymization.cpp.o.d"
  "parallel_anonymization"
  "parallel_anonymization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_anonymization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
