# Empty dependencies file for parallel_anonymization.
# This may be replaced when dependencies are built.
