# Empty compiler generated dependencies file for lbs_pipeline.
# This may be replaced when dependencies are built.
