file(REMOVE_RECURSE
  "CMakeFiles/lbs_pipeline.dir/lbs_pipeline.cpp.o"
  "CMakeFiles/lbs_pipeline.dir/lbs_pipeline.cpp.o.d"
  "lbs_pipeline"
  "lbs_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbs_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
