#ifndef PASA_SIM_INVARIANTS_H_
#define PASA_SIM_INVARIANTS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/model.h"

namespace pasa {
namespace sim {

/// The invariant catalog, as a bitmask so `pasa_cli explore --invariants`
/// can toggle individual checks.
enum Invariant : uint32_t {
  /// Every state's policy is masking and policy-aware k-anonymous (the
  /// attack-layer auditor), and every successfully served request was backed
  /// by an anonymity group of >= k senders whose cloak masks the sender.
  kInvariantKAnonymity = 1u << 0,
  /// No stale answer is ever served as fresh: a non-degraded answer must be
  /// exactly what the provider would answer for that cloak right now.
  kInvariantCacheConsistency = 1u << 1,
  /// Quarantined moves are never partially applied: after an advance every
  /// user sits either at their pre-advance position or at the destination
  /// the submitted batch gave them, and the applied/quarantined counts match
  /// the observable position changes.
  kInvariantQuarantineSoundness = 1u << 2,
  /// Incremental repair is isomorphic to a full rebuild: after every
  /// advance, a from-scratch build on the current snapshot yields the same
  /// optimal policy cost the server is serving from.
  kInvariantRepairEqualsRebuild = 1u << 3,

  kAllInvariants = kInvariantKAnonymity | kInvariantCacheConsistency |
                   kInvariantQuarantineSoundness | kInvariantRepairEqualsRebuild,
};

/// One broken invariant: which check failed and a human-readable diagnosis.
struct Violation {
  std::string invariant;  ///< "kanon" | "cache" | "quarantine" | "repair"
  std::string detail;

  friend bool operator==(const Violation& a, const Violation& b) = default;
};

/// Short names for the catalog ("kanon,cache,quarantine,repair"), the
/// spelling --invariants accepts.
const std::vector<std::string>& InvariantNames();
Result<uint32_t> ParseInvariantMask(const std::string& csv);

/// Checks every enabled invariant against the model's current state and the
/// last step's observations. Returns the first violated invariant (in the
/// catalog order above), or nullopt when the state is clean.
std::optional<Violation> CheckInvariants(const SimModel& model,
                                         uint32_t mask = kAllInvariants);

}  // namespace sim
}  // namespace pasa

#endif  // PASA_SIM_INVARIANTS_H_
