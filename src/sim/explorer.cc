#include "sim/explorer.h"

#include <deque>
#include <unordered_set>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"

namespace pasa {
namespace sim {
namespace {

struct ProgressCounters {
  obs::Counter& visited;
  obs::Counter& pruned;
  obs::Counter& transitions;
  obs::Counter& violations;

  static ProgressCounters Get() {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return ProgressCounters{
        registry.GetCounter(std::string(kStatesVisitedCounter)),
        registry.GetCounter(std::string(kStatesPrunedCounter)),
        registry.GetCounter(std::string(kTransitionsCounter)),
        registry.GetCounter(std::string(kViolationsCounter))};
  }
};

// Replays `actions` on a fresh model. Returns the model after the last
// action; `violation` (may be null) receives the first invariant break and
// stops the replay there.
Result<SimModel> Replay(const ExplorerOptions& options,
                        const std::vector<SimAction>& actions,
                        std::optional<Violation>* violation) {
  Result<SimModel> model = SimModel::Create(options.model, options.system);
  if (!model.ok()) return model.status();
  if (violation != nullptr) {
    *violation = CheckInvariants(*model, options.invariant_mask);
    if (violation->has_value()) return model;
  }
  for (const SimAction& action : actions) {
    Status s = model->Step(action);
    if (!s.ok()) return s;
    if (violation != nullptr) {
      *violation = CheckInvariants(*model, options.invariant_mask);
      if (violation->has_value()) return model;
    }
  }
  return model;
}

}  // namespace

Result<std::optional<Violation>> ReplayTrace(
    const ExplorerOptions& options, const std::vector<SimAction>& actions) {
  std::optional<Violation> violation;
  Result<SimModel> model = Replay(options, actions, &violation);
  if (!model.ok()) return model.status();
  return violation;
}

Result<std::vector<SimAction>> ShrinkTrace(const ExplorerOptions& options,
                                           const std::vector<SimAction>& trace,
                                           const Violation& violation) {
  // Classic ddmin over the action sequence. A candidate reproduces when
  // replaying it violates the *same* invariant (details may differ — the
  // minimal trace usually reaches the bug along a shorter path).
  const auto reproduces =
      [&](const std::vector<SimAction>& candidate) -> Result<bool> {
    Result<std::optional<Violation>> replay =
        ReplayTrace(options, candidate);
    if (!replay.ok()) return replay.status();
    return replay->has_value() && (*replay)->invariant == violation.invariant;
  };

  std::vector<SimAction> current = trace;
  size_t chunk = std::max<size_t>(1, current.size() / 2);
  while (chunk >= 1 && !current.empty()) {
    bool removed_any = false;
    for (size_t start = 0; start < current.size();) {
      std::vector<SimAction> candidate;
      candidate.reserve(current.size());
      const size_t end = std::min(start + chunk, current.size());
      candidate.insert(candidate.end(), current.begin(),
                       current.begin() + start);
      candidate.insert(candidate.end(), current.begin() + end, current.end());
      Result<bool> still = reproduces(candidate);
      if (!still.ok()) return still.status();
      if (*still) {
        current = std::move(candidate);
        removed_any = true;
        // Retry the same offset: the tail shifted into it.
      } else {
        start = end;
      }
    }
    if (chunk == 1) {
      if (!removed_any) break;  // pointwise fixpoint: 1-minimal
    } else if (!removed_any) {
      chunk = std::max<size_t>(1, chunk / 2);
    }
  }
  return current;
}

Result<ExploreResult> Explore(const ExplorerOptions& options) {
  ProgressCounters counters = ProgressCounters::Get();
  ExploreResult result;

  Result<SimModel> initial = SimModel::Create(options.model, options.system);
  if (!initial.ok()) return initial.status();

  const auto finish_violation =
      [&](std::vector<SimAction> trace,
          const Violation& violation) -> Result<ExploreResult> {
    counters.violations.Increment();
    result.violation = violation;
    result.trace = std::move(trace);
    Result<std::vector<SimAction>> shrunk =
        ShrinkTrace(options, result.trace, violation);
    if (!shrunk.ok()) return shrunk.status();
    result.shrunk_trace = std::move(*shrunk);
    obs::LogWarn("sim", "invariant %s violated after %zu actions (%zu after "
                 "shrinking)", violation.invariant.c_str(),
                 result.trace.size(), result.shrunk_trace.size());
    return result;
  };

  if (auto violation = CheckInvariants(*initial, options.invariant_mask)) {
    return finish_violation({}, *violation);
  }

  std::unordered_set<uint64_t> visited;
  visited.insert(initial->Digest());
  result.stats.states_visited = 1;
  counters.visited.Increment();

  // BFS over action sequences; each frontier entry is re-materialized by
  // replaying its actions, and its successors are produced by cloning the
  // replayed model once per enabled action.
  std::deque<std::vector<SimAction>> frontier;
  frontier.push_back({});
  bool truncated = false;
  while (!frontier.empty()) {
    const std::vector<SimAction> prefix = std::move(frontier.front());
    frontier.pop_front();
    Result<SimModel> at = Replay(options, prefix, nullptr);
    if (!at.ok()) return at.status();
    const int depth = static_cast<int>(prefix.size());
    result.stats.depth_reached = std::max(result.stats.depth_reached, depth);
    if (depth >= options.max_depth) continue;
    for (const SimAction& action : at->EnabledActions()) {
      SimModel next = *at;  // branch the live server
      Status s = next.Step(action);
      if (!s.ok()) return s;
      ++result.stats.transitions;
      counters.transitions.Increment();
      if (auto violation = CheckInvariants(next, options.invariant_mask)) {
        std::vector<SimAction> trace = prefix;
        trace.push_back(action);
        return finish_violation(std::move(trace), *violation);
      }
      const uint64_t digest = next.Digest();
      if (!visited.insert(digest).second) {
        ++result.stats.states_pruned;
        counters.pruned.Increment();
        continue;
      }
      ++result.stats.states_visited;
      counters.visited.Increment();
      if (result.stats.states_visited >= options.max_states) {
        truncated = true;
        continue;  // keep counting violations/prunes, stop enqueueing
      }
      std::vector<SimAction> extended = prefix;
      extended.push_back(action);
      frontier.push_back(std::move(extended));
    }
  }
  result.stats.exhausted = !truncated;
  return result;
}

}  // namespace sim
}  // namespace pasa
