#include "sim/model.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "fault/injector.h"

namespace pasa {
namespace sim {
namespace {

// FNV-1a 64-bit, also used to derive per-purpose rng streams from the seed.
uint64_t Fnv1a(std::string_view text, uint64_t hash = 0xcbf29ce484222325ULL) {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

// The serving-path points the model consults; net/* points belong to the
// socket front end, which the model deliberately excludes.
const std::vector<std::string>& DefaultFaultPoints() {
  static const std::vector<std::string> points = {
      std::string(fault::kLbsLatency),
      std::string(fault::kLbsError),
      std::string(fault::kLbsTimeout),
      std::string(fault::kSnapshotCorruptMove),
      std::string(fault::kSnapshotRepairFail),
      std::string(fault::kParallelJurisdictionFail)};
  return points;
}

ParamVector RequestParams() { return {{"poi", "fuel"}}; }

}  // namespace

std::string SimAction::ToString() const {
  switch (kind) {
    case Kind::kRequest:
      return "request:" + std::to_string(arg);
    case Kind::kServeStale:
      return "stale:" + std::to_string(arg);
    case Kind::kAdvance:
      return "advance:" + std::to_string(arg);
    case Kind::kFireFault:
      return "fault:" + point;
    case Kind::kExpireCache:
      return "expire";
  }
  return "?";
}

Result<SimAction> SimAction::Parse(std::string_view text) {
  SimAction action;
  if (text == "expire") {
    action.kind = Kind::kExpireCache;
    return action;
  }
  const size_t colon = text.find(':');
  if (colon == std::string_view::npos) {
    return Status::InvalidArgument("sim action: unparseable \"" +
                                   std::string(text) + "\"");
  }
  const std::string_view head = text.substr(0, colon);
  const std::string_view tail = text.substr(colon + 1);
  if (head == "fault") {
    action.kind = Kind::kFireFault;
    action.point = std::string(tail);
    return action;
  }
  if (head == "request") {
    action.kind = Kind::kRequest;
  } else if (head == "stale") {
    action.kind = Kind::kServeStale;
  } else if (head == "advance") {
    action.kind = Kind::kAdvance;
  } else {
    return Status::InvalidArgument("sim action: unknown kind \"" +
                                   std::string(head) + "\"");
  }
  int value = 0;
  for (const char c : tail) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("sim action: bad index in \"" +
                                     std::string(text) + "\"");
    }
    value = value * 10 + (c - '0');
    if (value > 1'000'000) {
      return Status::InvalidArgument("sim action: index overflows in \"" +
                                     std::string(text) + "\"");
    }
  }
  if (tail.empty()) {
    return Status::InvalidArgument("sim action: missing index in \"" +
                                   std::string(text) + "\"");
  }
  action.arg = value;
  return action;
}

SimModel::SimModel(SimOptions options, CspServer csp, SimSystem* system,
                   PoiDatabase reference_pois)
    : options_(std::move(options)),
      csp_(std::move(csp)),
      system_(system),
      reference_pois_(std::move(reference_pois)) {}

Result<SimModel> SimModel::Create(const SimOptions& options,
                                  SimSystem* system) {
  static SimSystem real_system;
  SimOptions opts = options;
  if (opts.users < 1 || opts.users > 64) {
    return Status::InvalidArgument("sim: users must be in [1, 64]");
  }
  if (opts.k < 1 || opts.k > opts.users) {
    return Status::InvalidArgument("sim: k must be in [1, users]");
  }
  if (opts.max_advances < 0 || opts.max_advances > 8) {
    return Status::InvalidArgument("sim: max_advances must be in [0, 8]");
  }
  if (opts.move_batches < 1 || opts.move_batches > 8) {
    return Status::InvalidArgument("sim: move_batches must be in [1, 8]");
  }
  if (opts.log2_side < 2 || opts.log2_side > 20) {
    return Status::InvalidArgument("sim: log2_side must be in [2, 20]");
  }
  if (opts.fault_points.empty()) {
    opts.fault_points = DefaultFaultPoints();
  }
  for (const std::string& point : opts.fault_points) {
    bool known = false;
    for (const std::string_view p : fault::KnownFaultPoints()) {
      if (p == point) known = true;
    }
    if (!known || point.rfind("net/", 0) == 0) {
      return Status::InvalidArgument(
          "sim: fault point \"" + point +
          "\" is unknown or not consulted by the modeled serving stack");
    }
  }

  const MapExtent extent{0, 0, opts.log2_side};
  const int64_t side = extent.side();
  Rng layout(Fnv1a("layout", opts.seed));
  LocationDatabase db;
  for (int i = 0; i < opts.users; ++i) {
    db.Add(static_cast<UserId>(i + 1),
           Point{static_cast<Coord>(layout.NextBounded(side)),
                 static_cast<Coord>(layout.NextBounded(side))});
  }
  Rng poi_rng(Fnv1a("pois", opts.seed));
  std::vector<PointOfInterest> pois;
  pois.reserve(opts.pois);
  for (size_t i = 0; i < opts.pois; ++i) {
    pois.push_back(PointOfInterest{
        static_cast<int64_t>(i + 1),
        Point{static_cast<Coord>(poi_rng.NextBounded(side)),
              static_cast<Coord>(poi_rng.NextBounded(side))},
        "fuel"});
  }

  CspOptions csp_options;
  csp_options.k = opts.k;
  csp_options.answers_per_request = opts.answers_per_request;
  // Small batches must take the incremental-repair path and large ones the
  // rebuild path (see GenerateBatch), so the threshold sits between them.
  csp_options.rebuild_fraction = 0.3;
  // Tight, fully deterministic resilience: one retry, and a breaker that
  // opens/probes within a handful of requests so its whole state machine is
  // reachable inside a shallow exploration.
  csp_options.resilience.max_attempts = 2;
  csp_options.resilience.deadline_micros = 100'000;
  csp_options.resilience.breaker_failure_threshold = 2;
  csp_options.resilience.breaker_cooldown_requests = 2;
  csp_options.resilience.jitter_seed = opts.seed;

  Result<CspServer> csp =
      CspServer::Start(std::move(db), extent, PoiDatabase(pois), csp_options);
  if (!csp.ok()) return csp.status();
  return SimModel(std::move(opts), std::move(*csp),
                  system != nullptr ? system : &real_system,
                  PoiDatabase(std::move(pois)));
}

std::vector<UserMove> SimModel::GenerateBatch(int batch) const {
  // Mover counts span the repair/rebuild boundary: the smallest batch moves
  // ~users/4 (< rebuild_fraction), the largest ~3*users/4 (> it).
  const int users = options_.users;
  const int small = std::max(1, users / 4);
  const int large = std::max(small, 3 * users / 4);
  int movers = small;
  if (options_.move_batches > 1) {
    movers += static_cast<int>((large - small) *
                               (static_cast<double>(batch) /
                                (options_.move_batches - 1)));
  }
  movers = std::min(movers, users);

  Rng rng(Fnv1a("batch", options_.seed) ^
          (static_cast<uint64_t>(advances_done_) * 131 + batch + 1));
  std::vector<uint32_t> rows = rng.SampleIndices(users, movers);
  std::sort(rows.begin(), rows.end());
  const int64_t side = extent().side();
  std::vector<UserMove> moves;
  moves.reserve(rows.size());
  for (const uint32_t row : rows) {
    const Point from = csp_.snapshot().row(row).location;
    Point to = from;
    while (to == from) {
      to = Point{static_cast<Coord>(rng.NextBounded(side)),
                 static_cast<Coord>(rng.NextBounded(side))};
    }
    moves.push_back(UserMove{row, from, to});
  }
  return moves;
}

std::vector<SimAction> SimModel::EnabledActions() const {
  std::vector<SimAction> actions;
  for (int u = 0; u < options_.users; ++u) {
    actions.push_back({SimAction::Kind::kRequest, u, ""});
  }
  for (int u = 0; u < options_.users; ++u) {
    actions.push_back({SimAction::Kind::kServeStale, u, ""});
  }
  if (advances_done_ < options_.max_advances) {
    for (int b = 0; b < options_.move_batches; ++b) {
      actions.push_back({SimAction::Kind::kAdvance, b, ""});
    }
  }
  for (const std::string& point : options_.fault_points) {
    if (pending_faults_.count(point) == 0) {
      actions.push_back({SimAction::Kind::kFireFault, 0, point});
    }
  }
  actions.push_back({SimAction::Kind::kExpireCache, 0, ""});
  return actions;
}

template <typename Body>
Status SimModel::WithPendingFaults(
    const std::vector<fault::FaultPointConfig>& extra, Body&& body) {
  fault::FaultPlan plan;
  plan.default_seed = options_.seed;
  for (const std::string& point : pending_faults_) {
    fault::FaultPointConfig config;
    config.point = point;
    config.probability = 1.0;
    config.max_fires = 1;
    if (point == fault::kLbsLatency) config.latency_micros = 30'000;
    plan.points.push_back(std::move(config));
  }
  for (const fault::FaultPointConfig& config : extra) {
    bool replaced = false;
    for (fault::FaultPointConfig& existing : plan.points) {
      if (existing.point == config.point) {
        existing = config;
        replaced = true;
      }
    }
    if (!replaced) plan.points.push_back(config);
  }
  fault::FaultInjector& injector = fault::FaultInjector::Global();
  if (plan.points.empty()) {
    return body();
  }
  injector.Arm(plan, options_.seed);
  Status status = body();
  for (auto it = pending_faults_.begin(); it != pending_faults_.end();) {
    if (injector.fires(*it) > 0) {
      it = pending_faults_.erase(it);
    } else {
      ++it;
    }
  }
  injector.Disarm();
  return status;
}

Status SimModel::Step(const SimAction& action) {
  last_step_ = StepRecord{};
  last_step_.action = action;
  switch (action.kind) {
    case SimAction::Kind::kFireFault: {
      // Disabled (unknown or already-pending point): no-op, see Step() doc.
      bool allowed = false;
      for (const std::string& p : options_.fault_points) {
        if (p == action.point) allowed = true;
      }
      if (allowed) pending_faults_.insert(action.point);
      return Status::Ok();
    }
    case SimAction::Kind::kExpireCache:
      csp_.FlushAnswerCache();
      return Status::Ok();
    case SimAction::Kind::kRequest:
    case SimAction::Kind::kServeStale: {
      if (action.arg < 0 || action.arg >= options_.users) return Status::Ok();
      const UserLocation& row =
          csp_.snapshot().row(static_cast<size_t>(action.arg));
      const ServiceRequest sr{row.user, row.location, RequestParams()};
      last_step_.sender = row.user;
      last_step_.sender_location = row.location;
      std::vector<fault::FaultPointConfig> extra;
      if (action.kind == SimAction::Kind::kServeStale) {
        // The provider stays down for every attempt of this one request, so
        // the frontend must degrade to the cache (or fail typed) instead of
        // being rescued by a retry.
        fault::FaultPointConfig outage;
        outage.point = std::string(fault::kLbsError);
        outage.probability = 1.0;
        outage.max_fires = 0;  // unlimited within this step
        extra.push_back(std::move(outage));
      }
      return WithPendingFaults(extra, [&] {
        CspServer::ServeReceipt receipt;
        Result<LbsAnswer> answer = system_->Serve(csp_, sr, &receipt);
        if (answer.ok()) {
          last_step_.served = true;
          last_step_.receipt = receipt;
          last_step_.answer_pois = answer->pois;
          last_step_.answer_degraded = answer->degraded;
        } else {
          last_step_.serve_failed = true;
        }
        return Status::Ok();
      });
    }
    case SimAction::Kind::kAdvance: {
      if (action.arg < 0 || action.arg >= options_.move_batches ||
          advances_done_ >= options_.max_advances) {
        return Status::Ok();
      }
      // A pending jurisdiction failure eats the delivery: the feed serving
      // this shard died and the batch is retried on a later tick (the
      // explorer separately explores delivering it afterwards).
      const std::string jurisdiction(fault::kParallelJurisdictionFail);
      if (pending_faults_.count(jurisdiction) > 0) {
        pending_faults_.erase(jurisdiction);
        last_step_.advance_skipped = true;
        return Status::Ok();
      }
      last_step_.submitted = GenerateBatch(action.arg);
      last_step_.positions_before.reserve(csp_.snapshot().size());
      for (size_t i = 0; i < csp_.snapshot().size(); ++i) {
        last_step_.positions_before.push_back(csp_.snapshot().row(i).location);
      }
      return WithPendingFaults({}, [&] {
        Result<SnapshotReport> report =
            system_->Advance(csp_, last_step_.submitted);
        if (!report.ok()) {
          return Status::Internal("sim: snapshot advance failed: " +
                                  report.status().ToString());
        }
        last_step_.advanced = true;
        last_step_.report = *report;
        ++advances_done_;
        return Status::Ok();
      });
    }
  }
  return Status::Ok();
}

std::string SimModel::DigestText() const {
  std::ostringstream out;
  out << "advances=" << advances_done_ << ";pending=";
  for (const std::string& point : pending_faults_) out << point << ",";
  out << ";rows=";
  for (size_t i = 0; i < csp_.snapshot().size(); ++i) {
    const UserLocation& row = csp_.snapshot().row(i);
    out << row.user << "@" << row.location.x << "," << row.location.y << ";";
  }
  out << "cloaks=";
  const CloakingTable& table = csp_.policy();
  for (size_t i = 0; i < table.size(); ++i) {
    const Rect& c = table.cloak(i);
    out << c.x1 << "," << c.y1 << "," << c.x2 << "," << c.y2 << ";";
  }
  out << "cost=" << csp_.policy_cost() << ";cache=";
  for (const std::string& key : csp_.frontend().cache().SortedKeys()) {
    out << key << "|";
  }
  const ResilientLbsClient& client = csp_.lbs_client();
  out << ";breaker=" << static_cast<int>(client.breaker_state()) << ","
      << client.consecutive_failures() << "," << client.cooldown_remaining();
  return out.str();
}

uint64_t SimModel::Digest() const { return Fnv1a(DigestText()); }

}  // namespace sim
}  // namespace pasa
