#ifndef PASA_SIM_BROKEN_H_
#define PASA_SIM_BROKEN_H_

#include "common/status.h"
#include "sim/model.h"

namespace pasa {
namespace sim {

/// Deliberately broken systems-under-check: each plants one realistic bug
/// the invariant catalog must catch, proving the explorer finds real
/// violations and shrinks them to replayable counterexamples (they back the
/// committed golden counterexample and `pasa_cli explore --broken`).
/// Both are stateless, as SimSystem requires — they key off server state.

/// A repair path that "forgets" to refresh the anonymity bookkeeping: once
/// the server has performed an incremental repair, served requests are
/// backed by a stale singleton group (group_size 1), breaking per-request
/// k-anonymity. The policy table itself stays sound — only the exhaustive
/// per-serve check sees it, which is exactly what sampling-based chaos runs
/// tend to miss.
class BrokenRepairSystem : public SimSystem {
 public:
  Result<LbsAnswer> Serve(CspServer& csp, const ServiceRequest& sr,
                          CspServer::ServeReceipt* receipt) override;
};

/// A quarantine that lies in its report: quarantined moves are counted as
/// applied, so the snapshot silently diverges from what the advance claims
/// happened — the "quarantined moves never partially applied" invariant
/// catches the mismatch between reported and observable position changes.
class BrokenQuarantineSystem : public SimSystem {
 public:
  Result<SnapshotReport> Advance(CspServer& csp,
                                 const std::vector<UserMove>& moves) override;
};

/// Resolves "" / "none" / "repair" / "quarantine" to a process-lifetime
/// system instance (nullptr for the real system); InvalidArgument otherwise.
Result<SimSystem*> SystemForName(const std::string& name);

}  // namespace sim
}  // namespace pasa

#endif  // PASA_SIM_BROKEN_H_
