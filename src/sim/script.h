#ifndef PASA_SIM_SCRIPT_H_
#define PASA_SIM_SCRIPT_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "fault/plan.h"
#include "sim/model.h"

namespace pasa {
namespace sim {

/// A replayable counterexample (or regression scenario): the bounded
/// instance, which system double to check, the action script, and the
/// invariant the run is expected to violate ("" = expected clean). The
/// explorer emits one for every shrunk violation; `pasa_cli explore
/// --replay` re-runs it deterministically.
///
/// JSON shape (see docs/robustness.md):
///   {
///     "model": {"users": 8, "k": 3, "advances": 2, "batches": 2,
///               "seed": 2010, "log2_side": 6},
///     "broken": "repair",
///     "expect": "kanon",
///     "fault_plan": {"seed": 2010, "points": [...]},
///     "actions": ["fault:snapshot/repair_fail", "advance:0", "request:0"]
///   }
///
/// `fault_plan` is derived from the fault actions in the script (each fired
/// point, forced, with its total fire count) — it is a valid FaultPlan for
/// driving the same schedule through `pasa_cli --fault-plan`, and is
/// validated on load, but replay itself arms faults per step exactly as the
/// explorer did.
struct CounterexampleScript {
  SimOptions model;
  std::string broken;             ///< "", "repair" or "quarantine"
  std::string expect_invariant;   ///< "" = expect a clean replay
  std::vector<SimAction> actions;

  /// The aggregate forced fault schedule the action script implies.
  fault::FaultPlan DerivedFaultPlan() const;

  std::string ToJson() const;
  static Result<CounterexampleScript> FromJson(std::string_view text);
  static Result<CounterexampleScript> FromJsonFile(const std::string& path);
  Status WriteFile(const std::string& path) const;
};

}  // namespace sim
}  // namespace pasa

#endif  // PASA_SIM_SCRIPT_H_
