#ifndef PASA_SIM_MODEL_H_
#define PASA_SIM_MODEL_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "csp/server.h"
#include "fault/plan.h"
#include "lbs/poi.h"
#include "pasa/incremental.h"

namespace pasa {
namespace sim {

/// Bounds of one explorable instance. Everything downstream — initial user
/// layout, POIs, every candidate move batch — is a pure function of these
/// options and the action history, so two models with equal options and
/// equal action sequences are bit-for-bit identical.
struct SimOptions {
  int users = 8;         ///< |D|; the explorer is meant for <= 8
  int k = 3;             ///< anonymity degree (must be <= users)
  int max_advances = 2;  ///< snapshot advances available to the schedule
  /// Candidate move batches per advance. Batch 0 moves few users (the
  /// incremental-repair path), the last batch moves most of them (the
  /// rebuild path); batches in between interpolate.
  int move_batches = 2;
  uint64_t seed = 2010;  ///< derives layout, POIs and move destinations
  int log2_side = 6;     ///< map is a 2^log2_side square
  size_t pois = 12;
  size_t answers_per_request = 2;
  /// Fault points the explorer may fire (subset of fault::KnownFaultPoints;
  /// empty = the six original serving-path points). net/* points are not
  /// consulted by the modeled stack and are rejected by SimModel::Create.
  std::vector<std::string> fault_points;
};

/// One transition of the model. All scheduling freedom of the real system —
/// which user speaks next, which batch of moves the MPC feed delivers,
/// which fault fires, when the cache expires, when staleness is served — is
/// reified as an explicit action chosen by the explorer.
struct SimAction {
  enum class Kind {
    kRequest,      ///< deliver a service request from user `arg`
    kServeStale,   ///< request from user `arg` with the provider forced down
    kAdvance,      ///< advance the snapshot with move batch `arg`
    kFireFault,    ///< arm catalog point `point` to fire at its next use
    kExpireCache,  ///< expire the answer cache (daily flush)
  };
  Kind kind = Kind::kRequest;
  int arg = 0;
  std::string point;  ///< kFireFault only

  friend bool operator==(const SimAction& a, const SimAction& b) = default;

  /// Compact round-trippable spelling: "request:3", "stale:1", "advance:0",
  /// "fault:lbs/error", "expire".
  std::string ToString() const;
  static Result<SimAction> Parse(std::string_view text);
};

/// What the last Step observed, for the invariant catalog: the request or
/// advance that ran, its inputs as submitted (pre-fault), and the outcome.
struct StepRecord {
  SimAction action;
  // Request-shaped actions.
  bool served = false;       ///< a request action ran and returned ok
  bool serve_failed = false; ///< a request action ran and returned an error
  CspServer::ServeReceipt receipt;
  UserId sender = 0;
  Point sender_location;
  std::vector<PointOfInterest> answer_pois;
  bool answer_degraded = false;
  // Advance-shaped actions.
  bool advanced = false;              ///< AdvanceSnapshot ran and returned ok
  bool advance_skipped = false;       ///< jurisdiction fault ate the batch
  SnapshotReport report;
  std::vector<UserMove> submitted;    ///< the batch as generated (pre-fault)
  std::vector<Point> positions_before;
};

/// The system under check. The default implementation forwards to the real
/// CspServer; deliberately broken doubles (sim/broken.h) override one hop to
/// prove the explorer and its invariants actually catch bugs. Doubles must
/// be stateless — models are cloned freely during exploration and only the
/// CspServer travels with the clone.
class SimSystem {
 public:
  virtual ~SimSystem() = default;

  virtual Result<LbsAnswer> Serve(CspServer& csp, const ServiceRequest& sr,
                                  CspServer::ServeReceipt* receipt) {
    return csp.HandleRequest(sr, receipt);
  }
  virtual Result<SnapshotReport> Advance(CspServer& csp,
                                         const std::vector<UserMove>& moves) {
    return csp.AdvanceSnapshot(moves);
  }
};

/// A real CspServer (policy engine, quarantine, answer cache, resilient LBS
/// client) behind a deterministic step interface. No wall clock and no
/// threads are involved anywhere in the modeled stack: retries, backoff,
/// deadlines and the circuit breaker already run on simulated micros and
/// request counts, and fault firing is forced per step by the explorer
/// rather than drawn from probability streams. Copyable — the explorer
/// branches a model at every decision point.
class SimModel {
 public:
  /// Builds the initial state: seeded user layout and POIs, initial policy.
  /// `system` must outlive the model (and every copy); nullptr = the real
  /// system.
  static Result<SimModel> Create(const SimOptions& options,
                                 SimSystem* system = nullptr);

  const SimOptions& options() const { return options_; }
  const CspServer& csp() const { return csp_; }
  int advances_done() const { return advances_done_; }
  const std::set<std::string>& pending_faults() const {
    return pending_faults_;
  }
  const StepRecord& last_step() const { return last_step_; }
  /// What the provider would answer right now, for cache-consistency checks.
  const PoiDatabase& reference_pois() const { return reference_pois_; }
  MapExtent extent() const { return MapExtent{0, 0, options_.log2_side}; }

  /// Actions enabled in the current state, in a deterministic order.
  std::vector<SimAction> EnabledActions() const;

  /// Applies `action`. Disabled actions are a no-op success (the trace
  /// shrinker deletes actions blindly and replays the rest). Expected
  /// serving-path failures (provider down, rejected request) are recorded in
  /// last_step(), not returned; a non-ok Status means the model itself broke.
  Status Step(const SimAction& action);

  /// Canonical digest of the behaviorally relevant state: snapshot
  /// positions, policy cloaks + cost, cached answer keys, breaker
  /// bookkeeping, pending faults and the advance count. FNV-1a over
  /// DigestText(). Monotone telemetry (stats, request ids) is deliberately
  /// excluded so equivalent states merge in the visited set.
  uint64_t Digest() const;
  std::string DigestText() const;

 private:
  SimModel(SimOptions options, CspServer csp, SimSystem* system,
           PoiDatabase reference_pois);

  /// The move batch for (advance index = advances_done_, `batch`), derived
  /// from the seed and the current snapshot. Destinations never equal the
  /// origin, so "did this move apply" is observable from positions.
  std::vector<UserMove> GenerateBatch(int batch) const;

  /// Arms the global injector with every pending fault forced (probability
  /// 1), runs `body`, then retires the points that actually fired.
  template <typename Body>
  Status WithPendingFaults(const std::vector<fault::FaultPointConfig>& extra,
                           Body&& body);

  SimOptions options_;
  CspServer csp_;
  SimSystem* system_;  ///< not owned; shared by all copies
  /// Reference POI database for the cache-consistency invariant: what the
  /// provider would answer right now, independent of the serving stack.
  PoiDatabase reference_pois_;
  std::set<std::string> pending_faults_;
  int advances_done_ = 0;
  StepRecord last_step_;
};

/// Names every SimModel uses for progress counters under obs:
/// sim/states_visited, sim/states_pruned, sim/transitions, sim/violations.
inline constexpr std::string_view kStatesVisitedCounter = "sim/states_visited";
inline constexpr std::string_view kStatesPrunedCounter = "sim/states_pruned";
inline constexpr std::string_view kTransitionsCounter = "sim/transitions";
inline constexpr std::string_view kViolationsCounter = "sim/violations";

}  // namespace sim
}  // namespace pasa

#endif  // PASA_SIM_MODEL_H_
