#ifndef PASA_SIM_EXPLORER_H_
#define PASA_SIM_EXPLORER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/invariants.h"
#include "sim/model.h"

namespace pasa {
namespace sim {

/// Budgeted breadth-first exploration of a bounded SimModel instance.
struct ExplorerOptions {
  SimOptions model;
  uint32_t invariant_mask = kAllInvariants;
  /// Stop enqueueing once this many distinct states have been visited. The
  /// run still reports whether the frontier was exhausted within the budget.
  uint64_t max_states = 20'000;
  /// Longest action sequence explored (BFS layer bound).
  int max_depth = 5;
  /// System under check; nullptr = the real CspServer stack.
  SimSystem* system = nullptr;
};

struct ExploreStats {
  uint64_t states_visited = 0;  ///< distinct canonical states reached
  uint64_t states_pruned = 0;   ///< transitions into already-visited states
  uint64_t transitions = 0;     ///< actions applied (incl. pruned targets)
  int depth_reached = 0;
  /// True when every state within max_depth was expanded before the state
  /// budget ran out — the bounded instance is exhaustively covered.
  bool exhausted = false;
};

struct ExploreResult {
  ExploreStats stats;
  /// First invariant violation found, with the action sequence that reaches
  /// it from the initial state and its delta-debugged minimal form.
  std::optional<Violation> violation;
  std::vector<SimAction> trace;
  std::vector<SimAction> shrunk_trace;
};

/// Explores breadth-first with canonical-state pruning (SimModel::Digest)
/// until the frontier is exhausted, the depth bound is reached, the state
/// budget runs out, or an invariant breaks. On a violation the offending
/// trace is shrunk before returning. Progress is exported through the
/// sim/* obs counters.
Result<ExploreResult> Explore(const ExplorerOptions& options);

/// Replays `actions` from the initial state, checking invariants after
/// every step. Returns the first violation, or nullopt for a clean run.
Result<std::optional<Violation>> ReplayTrace(
    const ExplorerOptions& options, const std::vector<SimAction>& actions);

/// Delta-debugging (ddmin) over the action sequence: the shortest
/// subsequence of `trace` that still violates the same invariant. Steps on
/// actions made invalid by the deletions are no-ops, so every candidate
/// subsequence is a well-formed run.
Result<std::vector<SimAction>> ShrinkTrace(const ExplorerOptions& options,
                                           const std::vector<SimAction>& trace,
                                           const Violation& violation);

}  // namespace sim
}  // namespace pasa

#endif  // PASA_SIM_EXPLORER_H_
