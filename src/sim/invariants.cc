#include "sim/invariants.h"

#include <sstream>

#include "attack/auditor.h"
#include "pasa/incremental.h"

namespace pasa {
namespace sim {
namespace {

std::optional<Violation> CheckKAnonymity(const SimModel& model) {
  const CspServer& csp = model.csp();
  const int k = model.options().k;
  if (!csp.policy().IsMasking(csp.snapshot())) {
    return Violation{"kanon", "current policy is not masking: some user's "
                              "cloak does not contain their location"};
  }
  const AuditReport audit = AuditPolicyAware(csp.policy());
  if (!audit.Anonymous(k)) {
    std::ostringstream detail;
    detail << "policy-aware audit of the current policy finds a cloaking "
              "group of "
           << audit.min_possible_senders << " < k=" << k;
    return Violation{"kanon", detail.str()};
  }
  const StepRecord& step = model.last_step();
  if (step.served) {
    if (step.receipt.group_size < static_cast<uint64_t>(k)) {
      std::ostringstream detail;
      detail << "request from user " << step.sender
             << " was served with an anonymity group of "
             << step.receipt.group_size << " < k=" << k << " after action "
             << step.action.ToString();
      return Violation{"kanon", detail.str()};
    }
    if (!step.receipt.cloak.Contains(step.sender_location)) {
      std::ostringstream detail;
      detail << "served cloak " << step.receipt.cloak.ToString()
             << " does not mask the sender's location";
      return Violation{"kanon", detail.str()};
    }
  }
  return std::nullopt;
}

std::optional<Violation> CheckCacheConsistency(const SimModel& model) {
  const StepRecord& step = model.last_step();
  if (!step.served || step.answer_degraded) return std::nullopt;
  // A fresh (non-degraded) answer must be indistinguishable from asking the
  // provider right now. POIs are static within a run, so any mismatch means
  // a stale or foreign cache entry was passed off as fresh.
  const std::vector<PointOfInterest> expected =
      model.reference_pois().NearestToCloak(
          step.receipt.cloak, "fuel",
          model.options().answers_per_request);
  if (step.answer_pois != expected) {
    std::ostringstream detail;
    detail << "non-degraded answer for cloak " << step.receipt.cloak.ToString()
           << " (" << step.answer_pois.size()
           << " POIs) differs from the provider's current answer ("
           << expected.size() << " POIs): a stale answer was served as fresh";
    return Violation{"cache", detail.str()};
  }
  return std::nullopt;
}

std::optional<Violation> CheckQuarantineSoundness(const SimModel& model) {
  const StepRecord& step = model.last_step();
  if (!step.advanced) return std::nullopt;
  const LocationDatabase& snapshot = model.csp().snapshot();
  if (snapshot.size() != step.positions_before.size()) {
    return Violation{"quarantine", "snapshot changed size across an advance"};
  }
  if (step.report.moves_applied + step.report.moves_quarantined !=
      step.submitted.size()) {
    std::ostringstream detail;
    detail << "advance reported " << step.report.moves_applied
           << " applied + " << step.report.moves_quarantined
           << " quarantined for a batch of " << step.submitted.size();
    return Violation{"quarantine", detail.str()};
  }
  // Destination of the submitted (pre-corruption) move per row, if any.
  // Batch destinations never equal the origin, so "applied" vs "held back"
  // is observable from the position alone.
  size_t at_destination = 0;
  std::vector<const UserMove*> move_of_row(snapshot.size(), nullptr);
  for (const UserMove& move : step.submitted) {
    if (move.row < move_of_row.size()) move_of_row[move.row] = &move;
  }
  for (size_t i = 0; i < snapshot.size(); ++i) {
    const Point now = snapshot.row(i).location;
    const Point before = step.positions_before[i];
    const UserMove* move = move_of_row[i];
    if (move == nullptr) {
      if (now != before) {
        std::ostringstream detail;
        detail << "row " << i << " moved without a submitted move";
        return Violation{"quarantine", detail.str()};
      }
      continue;
    }
    if (now == move->to) {
      ++at_destination;
    } else if (now != before) {
      std::ostringstream detail;
      detail << "row " << i << " is neither at its pre-advance position nor "
             << "at its submitted destination: a quarantined (possibly "
             << "corrupted) move was partially applied";
      return Violation{"quarantine", detail.str()};
    }
  }
  if (at_destination != step.report.moves_applied) {
    std::ostringstream detail;
    detail << "advance reported " << step.report.moves_applied
           << " moves applied but " << at_destination
           << " rows actually sit at their submitted destination";
    return Violation{"quarantine", detail.str()};
  }
  return std::nullopt;
}

std::optional<Violation> CheckRepairEqualsRebuild(const SimModel& model) {
  const StepRecord& step = model.last_step();
  if (!step.advanced) return std::nullopt;
  const CspServer& csp = model.csp();
  Result<IncrementalAnonymizer> fresh = IncrementalAnonymizer::Build(
      csp.snapshot(), model.extent(), model.options().k, csp.options().dp);
  if (!fresh.ok()) {
    return Violation{"repair", "from-scratch rebuild on the advanced "
                               "snapshot failed: " +
                                   fresh.status().ToString()};
  }
  Result<Cost> fresh_cost = fresh->OptimalCost();
  if (!fresh_cost.ok()) {
    return Violation{"repair", "from-scratch optimal cost unavailable: " +
                                   fresh_cost.status().ToString()};
  }
  if (*fresh_cost != csp.policy_cost()) {
    std::ostringstream detail;
    detail << "served policy cost " << csp.policy_cost()
           << " differs from a from-scratch rebuild's optimal cost "
           << *fresh_cost << " after "
           << (step.report.rebuilt ? "a rebuild" : "an incremental repair");
    return Violation{"repair", detail.str()};
  }
  return std::nullopt;
}

}  // namespace

const std::vector<std::string>& InvariantNames() {
  static const std::vector<std::string> names = {"kanon", "cache",
                                                 "quarantine", "repair"};
  return names;
}

Result<uint32_t> ParseInvariantMask(const std::string& csv) {
  if (csv.empty() || csv == "all") return kAllInvariants;
  uint32_t mask = 0;
  std::istringstream stream(csv);
  std::string name;
  while (std::getline(stream, name, ',')) {
    if (name == "kanon") {
      mask |= kInvariantKAnonymity;
    } else if (name == "cache") {
      mask |= kInvariantCacheConsistency;
    } else if (name == "quarantine") {
      mask |= kInvariantQuarantineSoundness;
    } else if (name == "repair") {
      mask |= kInvariantRepairEqualsRebuild;
    } else {
      return Status::InvalidArgument(
          "unknown invariant \"" + name +
          "\" (known: kanon, cache, quarantine, repair)");
    }
  }
  if (mask == 0) return Status::InvalidArgument("no invariants selected");
  return mask;
}

std::optional<Violation> CheckInvariants(const SimModel& model,
                                         uint32_t mask) {
  if (mask & kInvariantKAnonymity) {
    if (auto v = CheckKAnonymity(model)) return v;
  }
  if (mask & kInvariantCacheConsistency) {
    if (auto v = CheckCacheConsistency(model)) return v;
  }
  if (mask & kInvariantQuarantineSoundness) {
    if (auto v = CheckQuarantineSoundness(model)) return v;
  }
  if (mask & kInvariantRepairEqualsRebuild) {
    if (auto v = CheckRepairEqualsRebuild(model)) return v;
  }
  return std::nullopt;
}

}  // namespace sim
}  // namespace pasa
