#include "sim/broken.h"

namespace pasa {
namespace sim {

Result<LbsAnswer> BrokenRepairSystem::Serve(CspServer& csp,
                                            const ServiceRequest& sr,
                                            CspServer::ServeReceipt* receipt) {
  Result<LbsAnswer> answer = csp.HandleRequest(sr, receipt);
  if (answer.ok() && receipt != nullptr &&
      csp.stats().incremental_updates > 0) {
    receipt->group_size = 1;  // the planted bug: stale post-repair bookkeeping
  }
  return answer;
}

Result<SnapshotReport> BrokenQuarantineSystem::Advance(
    CspServer& csp, const std::vector<UserMove>& moves) {
  Result<SnapshotReport> report = csp.AdvanceSnapshot(moves);
  if (report.ok() && report->moves_quarantined > 0) {
    // The planted bug: claim the quarantined moves were applied.
    report->moves_applied += report->moves_quarantined;
    report->moves_quarantined = 0;
  }
  return report;
}

Result<SimSystem*> SystemForName(const std::string& name) {
  static BrokenRepairSystem broken_repair;
  static BrokenQuarantineSystem broken_quarantine;
  if (name.empty() || name == "none") return static_cast<SimSystem*>(nullptr);
  if (name == "repair") return static_cast<SimSystem*>(&broken_repair);
  if (name == "quarantine") {
    return static_cast<SimSystem*>(&broken_quarantine);
  }
  return Status::InvalidArgument(
      "unknown broken double \"" + name + "\" (known: none, repair, "
      "quarantine)");
}

}  // namespace sim
}  // namespace pasa
