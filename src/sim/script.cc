#include "sim/script.h"

#include <fstream>
#include <map>
#include <sstream>

#include "obs/json.h"

namespace pasa {
namespace sim {
namespace {

using obs::json::Value;

// Reads an optional small non-negative integer member of `object`.
Status ReadInt(const Value& object, const std::string& key, int* out) {
  const Value* v = object.Find(key);
  if (v == nullptr) return Status::Ok();
  if (!v->is_number() || v->number() < 0.0 || v->number() > 1e9) {
    return Status::InvalidArgument("sim script: \"" + key +
                                   "\" must be a small non-negative number");
  }
  *out = static_cast<int>(v->number());
  return Status::Ok();
}

}  // namespace

fault::FaultPlan CounterexampleScript::DerivedFaultPlan() const {
  fault::FaultPlan plan;
  plan.default_seed = model.seed;
  std::map<std::string, uint64_t> fires;
  for (const SimAction& action : actions) {
    if (action.kind == SimAction::Kind::kFireFault) ++fires[action.point];
  }
  for (const auto& [point, count] : fires) {
    fault::FaultPointConfig config;
    config.point = point;
    config.probability = 1.0;
    config.max_fires = count;
    plan.points.push_back(std::move(config));
  }
  return plan;
}

std::string CounterexampleScript::ToJson() const {
  std::map<std::string, Value> model_members;
  model_members["users"] = Value::MakeNumber(model.users);
  model_members["k"] = Value::MakeNumber(model.k);
  model_members["advances"] = Value::MakeNumber(model.max_advances);
  model_members["batches"] = Value::MakeNumber(model.move_batches);
  model_members["seed"] =
      Value::MakeNumber(static_cast<double>(model.seed));
  model_members["log2_side"] = Value::MakeNumber(model.log2_side);

  const fault::FaultPlan plan = DerivedFaultPlan();
  std::vector<Value> points;
  for (const fault::FaultPointConfig& config : plan.points) {
    std::map<std::string, Value> point;
    point["point"] = Value::MakeString(config.point);
    point["probability"] = Value::MakeNumber(config.probability);
    point["max_fires"] =
        Value::MakeNumber(static_cast<double>(config.max_fires));
    points.push_back(Value::MakeObject(std::move(point)));
  }
  std::map<std::string, Value> plan_members;
  plan_members["seed"] =
      Value::MakeNumber(static_cast<double>(plan.default_seed));
  plan_members["points"] = Value::MakeArray(std::move(points));

  std::vector<Value> action_values;
  action_values.reserve(actions.size());
  for (const SimAction& action : actions) {
    action_values.push_back(Value::MakeString(action.ToString()));
  }

  std::map<std::string, Value> members;
  members["model"] = Value::MakeObject(std::move(model_members));
  members["broken"] = Value::MakeString(broken);
  members["expect"] = Value::MakeString(expect_invariant);
  members["fault_plan"] = Value::MakeObject(std::move(plan_members));
  members["actions"] = Value::MakeArray(std::move(action_values));
  return obs::json::Serialize(Value::MakeObject(std::move(members)));
}

Result<CounterexampleScript> CounterexampleScript::FromJson(
    std::string_view text) {
  Result<Value> document = obs::json::Parse(text);
  if (!document.ok()) {
    return Status::InvalidArgument("sim script: " +
                                   document.status().message());
  }
  if (!document->is_object()) {
    return Status::InvalidArgument("sim script: top level must be an object");
  }
  CounterexampleScript script;
  if (const Value* model = document->Find("model")) {
    if (!model->is_object()) {
      return Status::InvalidArgument("sim script: \"model\" must be an "
                                     "object");
    }
    Status s = ReadInt(*model, "users", &script.model.users);
    if (!s.ok()) return s;
    s = ReadInt(*model, "k", &script.model.k);
    if (!s.ok()) return s;
    s = ReadInt(*model, "advances", &script.model.max_advances);
    if (!s.ok()) return s;
    s = ReadInt(*model, "batches", &script.model.move_batches);
    if (!s.ok()) return s;
    s = ReadInt(*model, "log2_side", &script.model.log2_side);
    if (!s.ok()) return s;
    if (const Value* seed = model->Find("seed")) {
      if (!seed->is_number() || seed->number() < 0.0) {
        return Status::InvalidArgument(
            "sim script: \"seed\" must be a non-negative number");
      }
      script.model.seed = static_cast<uint64_t>(seed->number());
    }
  }
  if (const Value* broken = document->Find("broken")) {
    if (!broken->is_string()) {
      return Status::InvalidArgument("sim script: \"broken\" must be a "
                                     "string");
    }
    script.broken = broken->str();
  }
  if (const Value* expect = document->Find("expect")) {
    if (!expect->is_string()) {
      return Status::InvalidArgument("sim script: \"expect\" must be a "
                                     "string");
    }
    script.expect_invariant = expect->str();
  }
  const Value* actions = document->Find("actions");
  if (actions == nullptr || !actions->is_array()) {
    return Status::InvalidArgument("sim script: missing \"actions\" array");
  }
  for (const Value& entry : actions->array()) {
    if (!entry.is_string()) {
      return Status::InvalidArgument(
          "sim script: every action must be a string");
    }
    Result<SimAction> action = SimAction::Parse(entry.str());
    if (!action.ok()) return action.status();
    script.actions.push_back(std::move(*action));
  }
  // The embedded fault plan is advisory (replay re-derives the schedule per
  // step), but a committed counterexample must stay a valid FaultPlan.
  if (const Value* plan = document->Find("fault_plan")) {
    Result<fault::FaultPlan> parsed =
        fault::FaultPlan::FromJson(obs::json::Serialize(*plan));
    if (!parsed.ok()) return parsed.status();
  }
  return script;
}

Result<CounterexampleScript> CounterexampleScript::FromJsonFile(
    const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open counterexample script " + path);
  }
  std::ostringstream content;
  content << file.rdbuf();
  return FromJson(content.str());
}

Status CounterexampleScript::WriteFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return Status::Internal("cannot write counterexample script " + path);
  }
  file << ToJson() << "\n";
  if (!file.good()) {
    return Status::Internal("short write to counterexample script " + path);
  }
  return Status::Ok();
}

}  // namespace sim
}  // namespace pasa
