#include "parallel/runner.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>

#include "common/timer.h"
#include "fault/injector.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_sink.h"
#include "pasa/extraction.h"

#if defined(__linux__)
#include <pthread.h>
#endif

namespace pasa {
namespace {

// Labels the calling worker thread for the OS (top/gdb) and for the trace
// sink, so per-jurisdiction tracks in the trace viewer read
// "pasa-worker-3" instead of a raw thread id.
void NameWorkerThread(size_t index) {
  const std::string name = "pasa-worker-" + std::to_string(index);
  obs::TraceEventSink::Global().SetCurrentThreadName(name);
#if defined(__linux__)
  pthread_setname_np(pthread_self(), name.c_str());  // 15-char limit on Linux
#endif
}

// Local anonymization of one jurisdiction. `rows` are the snapshot rows the
// server owns. Fills per-row cloaks into `master`.
Status AnonymizeJurisdiction(const LocationDatabase& db,
                             const Jurisdiction& jurisdiction,
                             const std::vector<uint32_t>& rows, int k,
                             const DpOptions& dp, JurisdictionResult* result,
                             CloakingTable* master) {
  WallTimer timer;
  LocationDatabase local;
  for (const uint32_t row : rows) {
    local.Add(static_cast<UserId>(row), db.row(row).location);
  }
  TreeOptions tree_options;
  tree_options.split_threshold = k;
  Result<BinaryTree> tree = BinaryTree::BuildRooted(
      local, jurisdiction.region, jurisdiction.kind, tree_options);
  if (!tree.ok()) return tree.status();
  Result<DpMatrix> matrix = ComputeDpMatrix(*tree, k, dp);
  if (!matrix.ok()) return matrix.status();
  Result<ExtractedPolicy> policy = ExtractOptimalPolicy(*tree, *matrix, k);
  if (!policy.ok()) return policy.status();

  result->seconds = timer.ElapsedSeconds();
  result->cost = policy->cost;
  for (size_t i = 0; i < rows.size(); ++i) {
    master->Assign(rows[i], policy->table.cloak(i));
  }
  return Status::Ok();
}

// Failure containment around one jurisdiction: consults the
// parallel/jurisdiction_fail injection point before each attempt (a server
// that crashes mid-run) and retries in place. Master rows are only written
// by a successful attempt, so a failure never leaves partial cloaks behind.
Status RunJurisdictionContained(const LocationDatabase& db,
                                const Jurisdiction& jurisdiction, size_t j,
                                const std::vector<uint32_t>& rows,
                                const ParallelRunOptions& options,
                                JurisdictionResult* result,
                                CloakingTable* master,
                                std::atomic<size_t>* failures,
                                std::atomic<size_t>* retries) {
  Status last = Status::Ok();
  const int attempts = 1 + std::max(0, options.max_jurisdiction_retries);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      retries->fetch_add(1, std::memory_order_relaxed);
      obs::MetricsRegistry::Global()
          .GetCounter("parallel/jurisdiction_retries")
          .Increment();
    }
    if (fault::FaultInjector::Global().ShouldInject(
            fault::kParallelJurisdictionFail)) {
      last = Status::Unavailable("injected jurisdiction failure");
    } else {
      last = AnonymizeJurisdiction(db, jurisdiction, rows, options.k,
                                   options.dp, result, master);
      if (last.ok()) return last;
    }
    failures->fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::Global()
        .GetCounter("parallel/jurisdiction_failures")
        .Increment();
    obs::LogWarn("parallel", "jurisdiction %zu attempt %d failed: %s", j,
                 attempt + 1, last.ToString().c_str());
  }
  return last;
}

}  // namespace

Result<ParallelRunReport> RunPartitioned(const LocationDatabase& db,
                                         const MapExtent& extent,
                                         const ParallelRunOptions& options) {
  if (options.num_jurisdictions < 1) {
    return Status::InvalidArgument("need at least one jurisdiction");
  }
  obs::ScopedSpan run_span("parallel/run", obs::ScopedSpan::kRoot);
  TreeOptions tree_options;
  tree_options.split_threshold = options.k;
  std::unique_ptr<obs::ScopedSpan> partition_span;
  if (obs::Enabled()) {
    partition_span = std::make_unique<obs::ScopedSpan>("partition");
  }
  Result<BinaryTree> tree = BinaryTree::Build(db, extent, tree_options);
  if (!tree.ok()) return tree.status();

  const std::vector<Jurisdiction> jurisdictions =
      GreedyPartition(*tree, options.k, options.num_jurisdictions);
  partition_span.reset();

  ParallelRunReport report;
  report.master_table = CloakingTable(db.size());
  report.jurisdictions.resize(jurisdictions.size());
  report.total_users = db.size();

  std::vector<std::vector<uint32_t>> rows_of(jurisdictions.size());
  for (size_t j = 0; j < jurisdictions.size(); ++j) {
    rows_of[j] = tree->SubtreeRows(jurisdictions[j].node);
  }

  std::atomic<size_t> failures{0};
  std::atomic<size_t> retries{0};
  if (options.use_threads) {
    std::atomic<size_t> next{0};
    std::vector<Status> statuses(jurisdictions.size());
    const size_t workers =
        std::min<size_t>(std::thread::hardware_concurrency() > 0
                             ? std::thread::hardware_concurrency()
                             : 1,
                         jurisdictions.size());
    std::vector<std::thread> pool;
    pool.reserve(workers);
    obs::LogDebug("parallel", "spawning %zu worker thread(s) for %zu "
                  "jurisdiction(s)", workers, jurisdictions.size());
    for (size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        NameWorkerThread(w);
        for (;;) {
          const size_t j = next.fetch_add(1);
          if (j >= jurisdictions.size()) return;
          report.jurisdictions[j].jurisdiction = jurisdictions[j];
          if (jurisdictions[j].users == 0) continue;
          obs::ScopedSpan span("parallel/jurisdiction",
                               obs::ScopedSpan::kRoot);
          obs::TraceCounter("parallel/jurisdiction_users",
                            static_cast<double>(jurisdictions[j].users));
          // Each jurisdiction writes disjoint master rows: no locking. A
          // failed jurisdiction never aborts its siblings — it is recorded
          // and retried inline after the join.
          statuses[j] = RunJurisdictionContained(
              db, jurisdictions[j], j, rows_of[j], options,
              &report.jurisdictions[j], &report.master_table, &failures,
              &retries);
        }
      });
    }
    for (std::thread& t : pool) t.join();
    // Last line of defense: re-run jurisdictions whose server kept failing
    // inline on the coordinating thread, so a flaky server pool degrades to
    // sequential execution instead of losing the master policy.
    for (size_t j = 0; j < jurisdictions.size(); ++j) {
      if (statuses[j].ok()) continue;
      ++report.inline_fallbacks;
      obs::MetricsRegistry::Global()
          .GetCounter("parallel/inline_fallbacks")
          .Increment();
      obs::TraceInstant("parallel/inline_fallback");
      obs::LogWarn("parallel",
                   "jurisdiction %zu exhausted its server retries (%s); "
                   "re-running inline",
                   j, statuses[j].ToString().c_str());
      obs::ScopedSpan span("parallel/jurisdiction", obs::ScopedSpan::kRoot);
      Status s = RunJurisdictionContained(
          db, jurisdictions[j], j, rows_of[j], options,
          &report.jurisdictions[j], &report.master_table, &failures,
          &retries);
      if (!s.ok()) return s;
    }
  } else {
    for (size_t j = 0; j < jurisdictions.size(); ++j) {
      report.jurisdictions[j].jurisdiction = jurisdictions[j];
      if (jurisdictions[j].users == 0) continue;
      obs::ScopedSpan span("parallel/jurisdiction", obs::ScopedSpan::kRoot);
      obs::TraceCounter("parallel/jurisdiction_users",
                        static_cast<double>(jurisdictions[j].users));
      Status s = RunJurisdictionContained(
          db, jurisdictions[j], j, rows_of[j], options,
          &report.jurisdictions[j], &report.master_table, &failures,
          &retries);
      if (!s.ok()) return s;
    }
  }
  report.jurisdiction_failures = failures.load(std::memory_order_relaxed);
  report.jurisdiction_retries = retries.load(std::memory_order_relaxed);

  for (const JurisdictionResult& r : report.jurisdictions) {
    report.parallel_seconds = std::max(report.parallel_seconds, r.seconds);
    report.total_cpu_seconds += r.seconds;
    report.total_cost += r.cost;
  }
  if (obs::Enabled()) {
    auto& registry = obs::MetricsRegistry::Global();
    obs::Histogram& per_jurisdiction =
        registry.GetHistogram("parallel/jurisdiction_seconds");
    for (const JurisdictionResult& r : report.jurisdictions) {
      if (r.jurisdiction.users > 0) per_jurisdiction.Observe(r.seconds);
    }
    registry.GetCounter("parallel/runs").Increment();
    registry.GetCounter("parallel/jurisdictions_run")
        .Increment(jurisdictions.size());
    registry.GetCounter("parallel/users_anonymized").Increment(db.size());
    registry.GetGauge("parallel/last_wall_clock_seconds")
        .Set(report.parallel_seconds);
    registry.GetGauge("parallel/last_total_cpu_seconds")
        .Set(report.total_cpu_seconds);
    // Per-jurisdiction series (obs::LabeledName): one labeled gauge family
    // per dimension, the per-shard dashboard shape the sharded reactors
    // will reuse.
    for (size_t j = 0; j < report.jurisdictions.size(); ++j) {
      const JurisdictionResult& r = report.jurisdictions[j];
      const std::map<std::string, std::string> labels = {
          {"jurisdiction", std::to_string(j)}};
      registry
          .GetGauge(obs::LabeledName("parallel/jurisdiction/users", labels))
          .Set(static_cast<double>(r.jurisdiction.users));
      registry
          .GetGauge(obs::LabeledName("parallel/jurisdiction/seconds", labels))
          .Set(r.seconds);
      registry
          .GetGauge(obs::LabeledName("parallel/jurisdiction/cost", labels))
          .Set(static_cast<double>(r.cost));
    }
  }
  obs::LogDebug("parallel",
                "anonymized %zu users across %zu jurisdictions: wall %.3f s, "
                "cpu %.3f s, cost %lld",
               report.total_users, report.jurisdictions.size(),
               report.parallel_seconds, report.total_cpu_seconds,
               static_cast<long long>(report.total_cost));
  return report;
}

}  // namespace pasa
