#ifndef PASA_PARALLEL_MASTER_POLICY_H_
#define PASA_PARALLEL_MASTER_POLICY_H_

#include <vector>

#include "common/status.h"
#include "model/cloaking.h"
#include "parallel/partitioner.h"

namespace pasa {

/// The distributed-setting master policy of Section V: anonymizes a location
/// by routing it to the policy constructed by the server whose jurisdiction
/// it falls in. Wraps the recombined per-row table with jurisdiction lookup
/// for request-time routing.
class MasterPolicy {
 public:
  MasterPolicy(std::vector<Jurisdiction> jurisdictions, CloakingTable table)
      : jurisdictions_(std::move(jurisdictions)), table_(std::move(table)) {}

  const std::vector<Jurisdiction>& jurisdictions() const {
    return jurisdictions_;
  }
  const CloakingTable& table() const { return table_; }

  /// Index of the jurisdiction owning `p`; NotFound if `p` is outside every
  /// jurisdiction (i.e. outside the partitioned map).
  Result<size_t> JurisdictionFor(const Point& p) const;

  /// Cloak of snapshot row `row` under the master policy.
  const Rect& CloakForRow(size_t row) const { return table_.cloak(row); }

 private:
  std::vector<Jurisdiction> jurisdictions_;
  CloakingTable table_;
};

}  // namespace pasa

#endif  // PASA_PARALLEL_MASTER_POLICY_H_
