#ifndef PASA_PARALLEL_PARTITIONER_H_
#define PASA_PARALLEL_PARTITIONER_H_

#include <vector>

#include "common/status.h"
#include "index/binary_tree.h"

namespace pasa {

/// One jurisdiction handed to an anonymization server: a binary-tree node
/// whose region the server owns exclusively.
struct Jurisdiction {
  int32_t node = -1;
  Rect region;
  BinaryTree::NodeKind kind = BinaryTree::NodeKind::kSquare;
  size_t users = 0;
};

/// The greedy load-balancing partitioner of Section V: starting from the
/// root, repeatedly replace the most-populated splittable node — one all of
/// whose children hold either 0 or >= k users — with its children, until the
/// desired number of jurisdictions is reached (or no node can be split
/// without stranding a group of fewer than k users).
///
/// Every returned jurisdiction therefore holds 0 or >= k users, so each
/// server's local problem stays feasible.
std::vector<Jurisdiction> GreedyPartition(const BinaryTree& tree, int k,
                                          size_t target_jurisdictions);

}  // namespace pasa

#endif  // PASA_PARALLEL_PARTITIONER_H_
