#include "parallel/partitioner.h"

#include <algorithm>

namespace pasa {

std::vector<Jurisdiction> GreedyPartition(const BinaryTree& tree, int k,
                                          size_t target_jurisdictions) {
  std::vector<int32_t> list = {BinaryTree::kRootId};
  const auto splittable = [&](int32_t id) {
    const BinaryTree::Node& n = tree.node(id);
    if (n.IsLeaf()) return false;
    for (int c = 0; c < 2; ++c) {
      const uint32_t count = tree.node(n.first_child + c).count;
      if (count != 0 && count < static_cast<uint32_t>(k)) return false;
    }
    return true;
  };

  while (list.size() < target_jurisdictions) {
    // Pick the splittable node with the most users.
    int32_t best = -1;
    size_t best_index = 0;
    for (size_t i = 0; i < list.size(); ++i) {
      if (!splittable(list[i])) continue;
      if (best < 0 || tree.node(list[i]).count > tree.node(best).count) {
        best = list[i];
        best_index = i;
      }
    }
    if (best < 0) break;  // nothing can be split further
    const int32_t first_child = tree.node(best).first_child;
    list[best_index] = first_child;
    list.push_back(first_child + 1);
  }

  std::vector<Jurisdiction> jurisdictions;
  jurisdictions.reserve(list.size());
  for (const int32_t id : list) {
    const BinaryTree::Node& n = tree.node(id);
    jurisdictions.push_back(Jurisdiction{id, n.region, n.kind, n.count});
  }
  return jurisdictions;
}

}  // namespace pasa
