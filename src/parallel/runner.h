#ifndef PASA_PARALLEL_RUNNER_H_
#define PASA_PARALLEL_RUNNER_H_

#include <vector>

#include "common/status.h"
#include "index/morton.h"
#include "model/cloaking.h"
#include "parallel/partitioner.h"
#include "pasa/bulk_dp_binary.h"

namespace pasa {

/// Timing and cost of one jurisdiction's local anonymization.
struct JurisdictionResult {
  Jurisdiction jurisdiction;
  double seconds = 0.0;
  Cost cost = 0;
};

/// Outcome of a partitioned (multi-server) bulk anonymization.
struct ParallelRunReport {
  std::vector<JurisdictionResult> jurisdictions;
  /// Failure-containment accounting: attempts that failed, in-place
  /// retries, and jurisdictions recovered by falling back to inline
  /// sequential execution on the coordinating thread after their server
  /// kept failing. The master policy is only lost when a jurisdiction
  /// fails every retry AND the inline fallback.
  size_t jurisdiction_failures = 0;
  size_t jurisdiction_retries = 0;
  size_t inline_fallbacks = 0;
  /// Wall-clock estimate when every jurisdiction runs on its own server:
  /// the slowest server (plus nothing else — partitioning is amortized
  /// across snapshots per Section V's static-partition design).
  double parallel_seconds = 0.0;
  /// Total CPU across servers (equals single-threaded elapsed time).
  double total_cpu_seconds = 0.0;
  /// Master-policy cost: sum over jurisdictions (every user is cloaked
  /// inside its own jurisdiction).
  Cost total_cost = 0;
  size_t total_users = 0;
  /// Global per-row cloaking recombined from the per-server policies,
  /// indexed like the input snapshot (the master policy of Section V).
  CloakingTable master_table;
};

struct ParallelRunOptions {
  int k = 50;
  size_t num_jurisdictions = 16;
  DpOptions dp;
  /// Run the jurisdictions on real std::threads rather than measuring them
  /// sequentially and reporting max(). On a single-core host the sequential
  /// max() model is the honest simulation of a server pool; thread mode is
  /// provided for multi-core hosts.
  bool use_threads = false;
  /// In-place retries per jurisdiction before giving up on its server and
  /// (in thread mode) falling back to inline sequential execution. A failed
  /// jurisdiction never aborts its siblings.
  int max_jurisdiction_retries = 1;
};

/// Partitions the map with GreedyPartition, anonymizes every jurisdiction
/// independently (each server sees only its own users, per Section V), and
/// recombines the master policy.
Result<ParallelRunReport> RunPartitioned(const LocationDatabase& db,
                                         const MapExtent& extent,
                                         const ParallelRunOptions& options);

}  // namespace pasa

#endif  // PASA_PARALLEL_RUNNER_H_
