#include "parallel/master_policy.h"

namespace pasa {

Result<size_t> MasterPolicy::JurisdictionFor(const Point& p) const {
  // Jurisdictions partition the map, so at most one contains p. Linear scan:
  // jurisdiction counts are small (a server pool, not a tree).
  for (size_t j = 0; j < jurisdictions_.size(); ++j) {
    if (jurisdictions_[j].region.Contains(p)) return j;
  }
  return Status::NotFound("location " + p.ToString() +
                          " outside every jurisdiction");
}

}  // namespace pasa
