#ifndef PASA_WORKLOAD_BAY_AREA_H_
#define PASA_WORKLOAD_BAY_AREA_H_

#include <cstdint>

#include "common/rng.h"
#include "index/morton.h"
#include "model/location_database.h"

namespace pasa {

/// Parameters of the synthetic San-Francisco-Bay-style workload
/// (Section VI "Location Data"). The paper seeds 10 users around each of
/// 175k street intersections with a 500 m Gaussian, yielding the 1.75M-user
/// Master set; the intersection file itself is not redistributable, so the
/// intersections here come from a seeded Gaussian-cluster mixture that
/// reproduces the density skew (dense urban cores, sparse periphery) the
/// algorithms are sensitive to. See DESIGN.md, substitution 1.
struct BayAreaOptions {
  /// Map is a square of side 2^17 m = 131 km, roughly the Bay Area span.
  int log2_map_side = 17;
  uint32_t num_intersections = 175'000;
  uint32_t users_per_intersection = 10;
  /// Std-dev of user placement around an intersection, in metres.
  double user_sigma = 500.0;
  /// Number of population clusters ("cities") in the mixture.
  uint32_t num_clusters = 64;
  uint64_t seed = 2010;
};

/// Generates location databases with realistic, strongly skewed population
/// density. Deterministic per options (including the seed).
class BayAreaGenerator {
 public:
  explicit BayAreaGenerator(const BayAreaOptions& options)
      : options_(options) {}

  const BayAreaOptions& options() const { return options_; }
  MapExtent extent() const { return MapExtent{0, 0, options_.log2_map_side}; }

  /// Generates the full Master set: num_intersections x
  /// users_per_intersection users (1.75M by default).
  LocationDatabase GenerateMaster() const;

  /// Generates a smaller set directly (n users, same density model). Used
  /// by tests and quick experiments to avoid materializing the Master set.
  LocationDatabase Generate(size_t n) const;

  /// Uniform random sample of `n` rows from `master`, re-numbered to dense
  /// user ids. The paper's "random samples of increasing sizes".
  static LocationDatabase Sample(const LocationDatabase& master, size_t n,
                                 uint64_t seed);

 private:
  BayAreaOptions options_;
};

}  // namespace pasa

#endif  // PASA_WORKLOAD_BAY_AREA_H_
