#include "workload/requests.h"

namespace pasa {
namespace {

constexpr const char* kPois[] = {"rest", "groc", "cinema", "gas", "hospital"};
constexpr const char* kCats[] = {"ital", "asian", "drama", "thai", "any"};

}  // namespace

std::vector<ServiceRequest> RequestGenerator::Draw(const LocationDatabase& db,
                                                   size_t count) {
  std::vector<ServiceRequest> requests;
  if (db.empty()) return requests;
  requests.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t row = static_cast<size_t>(rng_.NextBounded(db.size()));
    const UserLocation& user = db.row(row);
    requests.push_back(ServiceRequest{
        user.user,
        user.location,
        {{"poi", kPois[rng_.NextBounded(std::size(kPois))]},
         {"cat", kCats[rng_.NextBounded(std::size(kCats))]}}});
  }
  return requests;
}

}  // namespace pasa
