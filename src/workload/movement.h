#ifndef PASA_WORKLOAD_MOVEMENT_H_
#define PASA_WORKLOAD_MOVEMENT_H_

#include <vector>

#include "common/rng.h"
#include "index/morton.h"
#include "model/location_database.h"
#include "pasa/incremental.h"

namespace pasa {

/// Snapshot-to-snapshot movement model of Section VI-C: a random subset of
/// distinct users each moves a random distance (bounded by `max_distance`,
/// the paper uses 200 m per 10 s snapshot) in a random direction, clamped to
/// the map.
struct MovementOptions {
  /// Fraction of users that move between snapshots (the Figure 5(b) x-axis).
  double moving_fraction = 0.01;
  double max_distance = 200.0;
  uint64_t seed = 7;
};

/// Draws the moves for one snapshot transition against `db`. Does not modify
/// `db`; apply the returned moves to both the database and any incremental
/// anonymizer to advance the snapshot.
std::vector<UserMove> DrawMoves(const LocationDatabase& db,
                                const MapExtent& extent,
                                const MovementOptions& options);

/// Applies moves to the location database in place.
Status ApplyMovesToDatabase(const std::vector<UserMove>& moves,
                            LocationDatabase* db);

}  // namespace pasa

#endif  // PASA_WORKLOAD_MOVEMENT_H_
