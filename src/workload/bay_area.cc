#include "workload/bay_area.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace pasa {
namespace {

struct Cluster {
  double cx = 0.0;
  double cy = 0.0;
  double sigma = 0.0;
  double cumulative_weight = 0.0;  // prefix sum for roulette selection
};

// Zipf-weighted Gaussian clusters: a few dominant urban cores and a long
// tail of towns, matching the strong skew of Figure 2's density map.
std::vector<Cluster> MakeClusters(const BayAreaOptions& options, Rng* rng) {
  const double side = static_cast<double>(Coord{1} << options.log2_map_side);
  std::vector<Cluster> clusters(options.num_clusters);
  double total = 0.0;
  for (uint32_t i = 0; i < options.num_clusters; ++i) {
    Cluster& c = clusters[i];
    // Keep centers away from the map border so the Gaussians rarely clamp.
    c.cx = side * (0.1 + 0.8 * rng->NextDouble());
    c.cy = side * (0.1 + 0.8 * rng->NextDouble());
    // Core clusters are tight and heavy; tail clusters wide and light.
    c.sigma = side * (0.01 + 0.05 * rng->NextDouble());
    total += 1.0 / static_cast<double>(i + 1);  // Zipf(1) weight
    c.cumulative_weight = total;
  }
  for (Cluster& c : clusters) c.cumulative_weight /= total;
  return clusters;
}

Coord Clamp(double v, Coord side) {
  if (v < 0.0) return 0;
  if (v >= static_cast<double>(side)) return side - 1;
  return static_cast<Coord>(v);
}

Point SampleAround(double cx, double cy, double sigma, Coord side, Rng* rng) {
  const double x = cx + sigma * rng->NextGaussian();
  const double y = cy + sigma * rng->NextGaussian();
  return Point{Clamp(x, side), Clamp(y, side)};
}

}  // namespace

LocationDatabase BayAreaGenerator::GenerateMaster() const {
  return Generate(static_cast<size_t>(options_.num_intersections) *
                  options_.users_per_intersection);
}

LocationDatabase BayAreaGenerator::Generate(size_t n) const {
  Rng rng(options_.seed);
  const std::vector<Cluster> clusters = MakeClusters(options_, &rng);
  const Coord side = Coord{1} << options_.log2_map_side;

  LocationDatabase db;
  UserId next_user = 0;
  size_t produced = 0;
  while (produced < n) {
    // One street intersection: roulette-pick a cluster, place the
    // intersection, then drop a burst of users around it.
    const double roll = rng.NextDouble();
    const Cluster* cluster = &clusters.back();
    for (const Cluster& c : clusters) {
      if (roll <= c.cumulative_weight) {
        cluster = &c;
        break;
      }
    }
    const Point intersection =
        SampleAround(cluster->cx, cluster->cy, cluster->sigma, side, &rng);
    for (uint32_t u = 0; u < options_.users_per_intersection && produced < n;
         ++u, ++produced) {
      db.Add(next_user++,
             SampleAround(static_cast<double>(intersection.x),
                          static_cast<double>(intersection.y),
                          options_.user_sigma, side, &rng));
    }
  }
  return db;
}

LocationDatabase BayAreaGenerator::Sample(const LocationDatabase& master,
                                          size_t n, uint64_t seed) {
  Rng rng(seed);
  const size_t take = std::min(n, master.size());
  std::vector<uint32_t> rows =
      rng.SampleIndices(static_cast<uint32_t>(master.size()),
                        static_cast<uint32_t>(take));
  std::sort(rows.begin(), rows.end());
  LocationDatabase db;
  UserId next_user = 0;
  for (const uint32_t row : rows) {
    db.Add(next_user++, master.row(row).location);
  }
  return db;
}

}  // namespace pasa
