#ifndef PASA_WORKLOAD_REQUESTS_H_
#define PASA_WORKLOAD_REQUESTS_H_

#include <vector>

#include "common/rng.h"
#include "model/service_request.h"

namespace pasa {

/// Generates a stream of valid service requests against a snapshot: random
/// senders asking for nearby points of interest (the workload the throughput
/// discussion of Section VII anonymizes per snapshot).
class RequestGenerator {
 public:
  explicit RequestGenerator(uint64_t seed) : rng_(seed) {}

  /// Draws `count` requests with senders uniform over the snapshot (a
  /// sender may appear more than once across snapshots; within one batch
  /// senders are drawn independently).
  std::vector<ServiceRequest> Draw(const LocationDatabase& db, size_t count);

 private:
  Rng rng_;
};

}  // namespace pasa

#endif  // PASA_WORKLOAD_REQUESTS_H_
