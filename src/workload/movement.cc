#include "workload/movement.h"

#include <cmath>
#include <numbers>

namespace pasa {

std::vector<UserMove> DrawMoves(const LocationDatabase& db,
                                const MapExtent& extent,
                                const MovementOptions& options) {
  Rng rng(options.seed);
  const uint32_t population = static_cast<uint32_t>(db.size());
  const uint32_t movers = static_cast<uint32_t>(
      static_cast<double>(population) * options.moving_fraction);
  std::vector<uint32_t> rows = rng.SampleIndices(population, movers);

  const Rect map = extent.ToRect();
  std::vector<UserMove> moves;
  moves.reserve(rows.size());
  for (const uint32_t row : rows) {
    const Point from = db.row(row).location;
    const double angle = 2.0 * std::numbers::pi * rng.NextDouble();
    const double dist = options.max_distance * rng.NextDouble();
    Coord x = from.x + static_cast<Coord>(std::lround(dist * std::cos(angle)));
    Coord y = from.y + static_cast<Coord>(std::lround(dist * std::sin(angle)));
    x = std::max(map.x1, std::min(map.x2 - 1, x));
    y = std::max(map.y1, std::min(map.y2 - 1, y));
    moves.push_back(UserMove{row, from, Point{x, y}});
  }
  return moves;
}

Status ApplyMovesToDatabase(const std::vector<UserMove>& moves,
                            LocationDatabase* db) {
  for (const UserMove& move : moves) {
    if (move.row >= db->size()) {
      return Status::InvalidArgument("move row out of range");
    }
    Status s = db->MoveUser(db->row(move.row).user, move.to);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace pasa
