#ifndef PASA_PASA_EXTRACTION_H_
#define PASA_PASA_EXTRACTION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "index/binary_tree.h"
#include "model/cloaking.h"
#include "pasa/bulk_dp_binary.h"
#include "pasa/configuration.h"

namespace pasa {

/// A concrete optimal policy materialized from a configuration matrix: the
/// per-user cloaks, the configuration it realizes, and the cloaking node of
/// every snapshot row ("exhibit in linear time one of the policies C
/// represents", Section IV-B).
struct ExtractedPolicy {
  CloakingTable table;
  Configuration config;
  std::vector<int32_t> assignment;  ///< cloaking tree node per snapshot row
  Cost cost = 0;

  /// Approximate heap bytes across all three members (memory accounting,
  /// obs/mem.h).
  uint64_t ApproxBytes() const {
    return table.ApproxBytes() + config.ApproxBytes() +
           static_cast<uint64_t>(assignment.capacity()) * sizeof(int32_t);
  }
};

/// Walks the matrix top-down picking minimum-cost entries (the paper's
/// retrieval step), then assigns concrete users to cloaking nodes bottom-up.
/// The choice of *which* C(m) locations a node cloaks is arbitrary by Lemma
/// 1; we pick deterministically in resident-row order.
Result<ExtractedPolicy> ExtractOptimalPolicy(const BinaryTree& tree,
                                             const DpMatrix& matrix, int k);

/// Number of snapshot rows assigned to each cloaking node: the size of the
/// anonymity group a sender cloaked at that node hides in (>= k for every
/// node the assignment uses). `num_nodes` sizes the result; out-of-range
/// assignment entries are ignored.
std::vector<uint32_t> GroupSizesByNode(const std::vector<int32_t>& assignment,
                                       size_t num_nodes);

}  // namespace pasa

#endif  // PASA_PASA_EXTRACTION_H_
