#include "pasa/bulk_dp_binary.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pasa {
namespace {

using ProfileClock = std::chrono::steady_clock;

double SecondsSince(ProfileClock::time_point t0) {
  return std::chrono::duration<double>(ProfileClock::now() - t0).count();
}

// Pass-up candidates of a row: the dense values [0..cap] plus d itself.
// Appends (j, cost) pairs for one child's F set into `out` offset by `base`
// (the other child's fixed contribution).
void AppendShifted(const DpRow& row, uint32_t d, uint32_t base, Cost base_cost,
                   std::vector<std::pair<uint32_t, Cost>>* out) {
  if (row.HasDense()) {
    for (int32_t l = 0; l <= row.cap; ++l) {
      out->emplace_back(base + static_cast<uint32_t>(l),
                        base_cost + row.dense[l].cost);
    }
  }
  out->emplace_back(base + d, base_cost);
}

int32_t ComputeCap(uint32_t d, int k, int depth, bool pruning) {
  int64_t cap = static_cast<int64_t>(d) - k;
  if (pruning) {
    cap = std::min<int64_t>(cap, static_cast<int64_t>(k + 1) * depth);
  }
  return cap < 0 ? -1 : static_cast<int32_t>(cap);
}

DpRow ComputeLeafRow(const BinaryTree::Node& n, int k,
                     const DpOptions& options) {
  DpRow row;
  row.cap = ComputeCap(n.count, k, n.depth, options.lemma5_pruning);
  if (!row.HasDense()) return row;  // d < k: clause (i), pass everything up.
  const Cost area = n.region.Area();
  row.dense.resize(row.cap + 1);
  for (int32_t u = 0; u <= row.cap; ++u) {
    // Clause (ii) second disjunct: cloak d - u >= k locations at the leaf.
    row.dense[u].cost = area * static_cast<Cost>(n.count - u);
    row.dense[u].children_pass = 0;
  }
  return row;
}

// Direct (un-staged) evaluation: for every u re-scan all child pass-up
// pairs. This is Algorithm 1 adapted to two children, before the temp-matrix
// optimization; kept for the ablation benchmark.
void FillDirect(const BinaryTree::Node& n, const DpRow& r1, const DpRow& r2,
                uint32_t d1, uint32_t d2, int k, DpRow* row,
                DpPhaseProfile* profile) {
  const auto t0 = profile ? ProfileClock::now() : ProfileClock::time_point{};
  const Cost area = n.region.Area();
  std::vector<std::pair<uint32_t, Cost>> f1, f2;
  AppendShifted(r1, d1, 0, 0, &f1);
  AppendShifted(r2, d2, 0, 0, &f2);
  for (int32_t u = 0; u <= row->cap; ++u) {
    DpEntry best;
    for (const auto& [l1, c1] : f1) {
      for (const auto& [l2, c2] : f2) {
        const uint32_t j = l1 + l2;
        const uint32_t uu = static_cast<uint32_t>(u);
        // k-summation clause (iii)/(iv): cloak nothing or at least k.
        if (j != uu && (j < uu || j - uu < static_cast<uint32_t>(k))) continue;
        const Cost x = c1 + c2 + static_cast<Cost>(j - uu) * area;
        if (x < best.cost) {
          best.cost = x;
          best.children_pass = j;
        }
      }
    }
    row->dense[u] = best;
  }
  if (profile) profile->direct_scan_seconds += SecondsSince(t0);
}

// Two-stage evaluation (Section V "From O(|B|(kh)^3) to O(|B|(kh)^2)"):
// stage 1 materializes g(j) = min cost of the children jointly passing up j
// (the paper's temp matrix, here a sorted sparse list because the reachable
// j values are [0..cap1+cap2], d1+[0..cap2], [0..cap1]+d2 and d1+d2);
// stage 2 derives every M[m][u] from g with a suffix-minimum sweep.
void FillTwoStage(const BinaryTree::Node& n, const DpRow& r1, const DpRow& r2,
                  uint32_t d1, uint32_t d2, int k, DpRow* row,
                  DpPhaseProfile* profile) {
  auto t0 = profile ? ProfileClock::now() : ProfileClock::time_point{};
  const Cost area = n.region.Area();
  std::vector<std::pair<uint32_t, Cost>> g;

  // Stage 1a: dense x dense (min,+) convolution.
  if (r1.HasDense() && r2.HasDense()) {
    std::vector<Cost> conv(r1.cap + r2.cap + 1, kInfiniteCost);
    for (int32_t l1 = 0; l1 <= r1.cap; ++l1) {
      const Cost c1 = r1.dense[l1].cost;
      for (int32_t l2 = 0; l2 <= r2.cap; ++l2) {
        const Cost x = c1 + r2.dense[l2].cost;
        Cost& slot = conv[l1 + l2];
        if (x < slot) slot = x;
      }
    }
    g.reserve(conv.size() + r1.cap + r2.cap + 3);
    for (size_t j = 0; j < conv.size(); ++j) {
      g.emplace_back(static_cast<uint32_t>(j), conv[j]);
    }
  }
  // Stage 1b: one child passes everything (cost 0), the other is dense.
  AppendShifted(r2, d2, d1, 0, &g);
  if (r1.HasDense()) {
    for (int32_t l1 = 0; l1 <= r1.cap; ++l1) {
      g.emplace_back(d2 + static_cast<uint32_t>(l1), r1.dense[l1].cost);
    }
  }

  // Merge duplicate j values keeping the minimum cost.
  std::sort(g.begin(), g.end());
  size_t w = 0;
  for (size_t r = 0; r < g.size(); ++r) {
    if (w > 0 && g[w - 1].first == g[r].first) {
      g[w - 1].second = std::min(g[w - 1].second, g[r].second);
    } else {
      g[w++] = g[r];
    }
  }
  g.resize(w);
  if (profile) {
    profile->temp_convolution_seconds += SecondsSince(t0);
    t0 = ProfileClock::now();
  }

  // Suffix minima of g(j) + j*area, with the achieving j for bookkeeping.
  std::vector<Cost> suffix_cost(g.size() + 1, kInfiniteCost);
  std::vector<uint32_t> suffix_j(g.size() + 1, 0);
  for (size_t i = g.size(); i-- > 0;) {
    const Cost here = g[i].second + static_cast<Cost>(g[i].first) * area;
    if (here <= suffix_cost[i + 1]) {
      suffix_cost[i] = here;
      suffix_j[i] = g[i].first;
    } else {
      suffix_cost[i] = suffix_cost[i + 1];
      suffix_j[i] = suffix_j[i + 1];
    }
  }

  // Stage 2: M[m][u] = min(g(u),  min_{j >= u+k} g(j) + (j-u)*area).
  size_t exact = 0;  // advancing cursor over g for the j == u lookup
  for (int32_t u = 0; u <= row->cap; ++u) {
    const uint32_t uu = static_cast<uint32_t>(u);
    DpEntry best;
    while (exact < g.size() && g[exact].first < uu) ++exact;
    if (exact < g.size() && g[exact].first == uu) {
      best.cost = g[exact].second;
      best.children_pass = uu;
    }
    // First list index with j >= u + k.
    const auto it = std::lower_bound(
        g.begin(), g.end(), std::make_pair(uu + static_cast<uint32_t>(k),
                                           std::numeric_limits<Cost>::min()));
    const size_t idx = static_cast<size_t>(it - g.begin());
    if (suffix_cost[idx] != kInfiniteCost) {
      const Cost x = suffix_cost[idx] - static_cast<Cost>(uu) * area;
      if (x < best.cost) {
        best.cost = x;
        best.children_pass = suffix_j[idx];
      }
    }
    row->dense[u] = best;
  }
  if (profile) profile->suffix_sweep_seconds += SecondsSince(t0);
}

}  // namespace

DpRow ComputeNodeRow(const BinaryTree& tree, int32_t node,
                     const DpMatrix& matrix, int k, const DpOptions& options,
                     DpPhaseProfile* profile) {
  const BinaryTree::Node& n = tree.node(node);
  assert(n.live);
  if (n.IsLeaf()) {
    if (profile == nullptr) return ComputeLeafRow(n, k, options);
    const auto t0 = ProfileClock::now();
    DpRow row = ComputeLeafRow(n, k, options);
    profile->leaf_init_seconds += SecondsSince(t0);
    ++profile->leaf_rows;
    profile->dense_cells += row.dense.size();
    return row;
  }

  const int32_t c1 = n.first_child;
  const int32_t c2 = n.first_child + 1;
  assert(tree.node(c1).live && tree.node(c2).live);
  const DpRow& r1 = matrix.rows[c1];
  const DpRow& r2 = matrix.rows[c2];
  const uint32_t d1 = tree.node(c1).count;
  const uint32_t d2 = tree.node(c2).count;

  DpRow row;
  row.cap = ComputeCap(n.count, k, n.depth, options.lemma5_pruning);
  if (profile) ++profile->internal_rows;
  if (!row.HasDense()) return row;
  row.dense.resize(row.cap + 1);
  if (options.two_stage) {
    FillTwoStage(n, r1, r2, d1, d2, k, &row, profile);
  } else {
    FillDirect(n, r1, r2, d1, d2, k, &row, profile);
  }
  if (profile) profile->dense_cells += row.dense.size();
  return row;
}

Result<DpMatrix> ComputeDpMatrix(const BinaryTree& tree, int k,
                                 const DpOptions& options) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  const uint32_t total = tree.node(BinaryTree::kRootId).count;
  if (total > 0 && total < static_cast<uint32_t>(k)) {
    return Status::Infeasible(
        "snapshot has " + std::to_string(total) + " users, fewer than k = " +
        std::to_string(k) + "; no policy-aware k-anonymous policy exists");
  }
  obs::ScopedSpan span("bulk_dp", obs::ScopedSpan::kRoot);
  DpPhaseProfile profile;
  DpPhaseProfile* p = obs::Enabled() ? &profile : nullptr;
  DpMatrix matrix;
  matrix.rows.resize(tree.num_nodes());
  // Reverse index order: every child precedes its parent.
  for (size_t i = tree.num_nodes(); i-- > 0;) {
    const int32_t id = static_cast<int32_t>(i);
    if (!tree.node(id).live) continue;
    matrix.rows[id] = ComputeNodeRow(tree, id, matrix, k, options, p);
  }
  if (p != nullptr) {
    auto& registry = obs::MetricsRegistry::Global();
    registry.RecordSpan("bulk_dp/leaf_init", p->leaf_init_seconds,
                        p->leaf_rows);
    if (options.two_stage) {
      registry.RecordSpan("bulk_dp/temp_convolution",
                          p->temp_convolution_seconds, p->internal_rows);
      registry.RecordSpan("bulk_dp/suffix_sweep", p->suffix_sweep_seconds,
                          p->internal_rows);
    } else {
      registry.RecordSpan("bulk_dp/direct_scan", p->direct_scan_seconds,
                          p->internal_rows);
    }
    registry.GetCounter("bulk_dp/runs").Increment();
    registry.GetCounter("bulk_dp/rows_computed")
        .Increment(p->leaf_rows + p->internal_rows);
    registry.GetCounter("bulk_dp/dense_cells").Increment(p->dense_cells);
  }
  return matrix;
}

Result<Cost> DpMatrix::OptimalCost(const BinaryTree& tree) const {
  const BinaryTree::Node& root = tree.node(BinaryTree::kRootId);
  if (root.count == 0) return Cost{0};
  const DpRow& row = rows[BinaryTree::kRootId];
  const Cost cost = row.CostAt(0, root.count);
  if (cost >= kInfiniteCost) {
    return Status::Infeasible("no complete k-summation configuration");
  }
  return cost;
}

}  // namespace pasa
