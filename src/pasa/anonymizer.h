#ifndef PASA_PASA_ANONYMIZER_H_
#define PASA_PASA_ANONYMIZER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "index/binary_tree.h"
#include "model/cloaking.h"
#include "pasa/bulk_dp_binary.h"
#include "pasa/extraction.h"

namespace pasa {

/// Knobs for building a policy-aware optimal anonymizer.
struct AnonymizerOptions {
  /// Anonymity degree: an attacker who knows the policy cannot reduce the
  /// set of possible senders of any request below k.
  int k = 50;
  /// DP optimization toggles (both on by default).
  DpOptions dp;
  /// Tree split threshold; 0 means "use k" (the paper's lazy rule).
  int split_threshold = 0;
  /// Maximum binary-tree depth.
  int max_tree_depth = 64;
  /// Square-split orientation: the paper's fixed vertical cut, or the
  /// adaptive balance-driven extension (see SplitOrientation).
  SplitOrientation orientation = SplitOrientation::kVerticalOnly;
};

/// The CSP-side anonymization engine (the paper's end-to-end artifact):
/// builds the optimal policy-aware sender k-anonymous quad/semi-quadrant
/// policy for one location-database snapshot, then serves per-request cloak
/// lookups in O(1).
///
///   Result<Anonymizer> a = Anonymizer::Build(db, extent, {.k = 50});
///   Result<AnonymizedRequest> ar = a->Anonymize(sr);
class Anonymizer {
 public:
  /// Builds the binary tree, runs the optimized Bulk_dp, and extracts one
  /// optimal policy. Fails with Infeasible when 0 < |D| < k.
  static Result<Anonymizer> Build(const LocationDatabase& db,
                                  const MapExtent& extent,
                                  const AnonymizerOptions& options);

  /// As above, deriving the map extent from the snapshot's bounding box.
  static Result<Anonymizer> Build(const LocationDatabase& db,
                                  const AnonymizerOptions& options);

  const AnonymizerOptions& options() const { return options_; }
  const BinaryTree& tree() const { return tree_; }
  const CloakingTable& policy() const { return policy_.table; }
  const Configuration& config() const { return policy_.config; }
  /// Total policy cost (sum of cloak areas over all users).
  Cost cost() const { return policy_.cost; }

  /// Cloak assigned to snapshot row `row`.
  const Rect& CloakForRow(size_t row) const { return policy_.table.cloak(row); }

  /// Cloak assigned to `user`; NotFound if absent from the snapshot.
  Result<Rect> CloakForUser(UserId user) const;

  /// Anonymizes one service request: validates it against the snapshot,
  /// looks up the sender's cloak and stamps a fresh request id. This is the
  /// per-request "cloak lookup" path whose latency Section VII discusses.
  Result<AnonymizedRequest> Anonymize(const ServiceRequest& sr);

 private:
  Anonymizer(AnonymizerOptions options, BinaryTree tree,
             ExtractedPolicy policy,
             std::unordered_map<UserId, size_t> row_of_user)
      : options_(options),
        tree_(std::move(tree)),
        policy_(std::move(policy)),
        row_of_user_(std::move(row_of_user)) {}

  AnonymizerOptions options_;
  BinaryTree tree_;
  ExtractedPolicy policy_;
  std::unordered_map<UserId, size_t> row_of_user_;
  std::unordered_map<UserId, Point> location_of_user_;
  /// Anonymity-group size per cloaking node (GroupSizesByNode), for the
  /// provenance record Anonymize fills when the audit ring is armed.
  std::vector<uint32_t> group_size_of_node_;
  RequestId next_rid_ = 1;
};

/// Adapter exposing the policy-aware optimum through the common
/// BulkPolicyAlgorithm interface used by the experiment harnesses.
class PolicyAwareOptimumAlgorithm : public BulkPolicyAlgorithm {
 public:
  /// Uses `extent` as the map; pass std::nullopt-like default by using the
  /// other constructor to derive it per snapshot.
  explicit PolicyAwareOptimumAlgorithm(MapExtent extent)
      : has_extent_(true), extent_(extent) {}
  PolicyAwareOptimumAlgorithm() = default;

  std::string name() const override { return "PolicyAware-OPT"; }
  Result<CloakingTable> Cloak(const LocationDatabase& db,
                              int k) const override;

 private:
  bool has_extent_ = false;
  MapExtent extent_;
};

}  // namespace pasa

#endif  // PASA_PASA_ANONYMIZER_H_
