#ifndef PASA_PASA_BULK_DP_QUAD_H_
#define PASA_PASA_BULK_DP_QUAD_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "index/quad_tree.h"
#include "model/cloaking.h"
#include "pasa/configuration.h"

namespace pasa {

/// One cell of the first-cut algorithm's matrix: M[m][u] =
/// <x, u1, u2, u3, u4> exactly as in Algorithm 1 (Bulk_dp).
struct QuadDpEntry {
  Cost cost = kInfiniteCost;
  std::array<uint32_t, 4> child_pass = {0, 0, 0, 0};
};

/// Row of one quad-tree node: dense u in [0..d-k] plus the implicit
/// zero-cost u = d(m) entry ("pass everything up").
struct QuadDpRow {
  int32_t cap = -1;
  std::vector<QuadDpEntry> dense;

  bool HasDense() const { return cap >= 0; }
  Cost CostAt(uint32_t u, uint32_t d) const {
    if (u == d) return 0;
    if (cap < 0 || u > static_cast<uint32_t>(cap)) return kInfiniteCost;
    return dense[u].cost;
  }
};

/// The configuration matrix of the first-cut Bulk_dp (Section IV-B),
/// computed on the quad tree with no optimizations: O(|T| |D|^5). Intended
/// for small instances (correctness baseline and the ablation benchmark);
/// the production path is ComputeDpMatrix on the binary tree.
struct QuadDpMatrix {
  std::vector<QuadDpRow> rows;

  Result<Cost> OptimalCost(const QuadTree& tree) const;
};

/// Runs the first-cut Bulk_dp. Fails with Infeasible when 0 < |D| < k.
Result<QuadDpMatrix> ComputeQuadDpMatrix(const QuadTree& tree, int k);

/// A concrete optimal policy read back from the quad matrix (same shape as
/// the binary-tree ExtractedPolicy).
struct ExtractedQuadPolicy {
  CloakingTable table;
  Configuration config;
  std::vector<int32_t> assignment;
  Cost cost = 0;
};

/// Top-down retrieval of a minimum-cost complete configuration followed by
/// the bottom-up materialization of one represented policy.
Result<ExtractedQuadPolicy> ExtractOptimalQuadPolicy(
    const QuadTree& tree, const QuadDpMatrix& matrix, int k);

/// Cost-only optimized quad-tree DP: Lemma-5 pruning plus staged pairwise
/// (min,+) convolutions of the four children, O(|T|(kh)^2)-family — the
/// quad-tree counterpart of the optimized binary algorithm. Lets the
/// experiment harnesses compare the policy-aware optimum per cloak family
/// (quadrants vs semi-quadrants) at realistic sizes, where the first-cut
/// enumeration is hopeless. Policy extraction is not supported here; use
/// ComputeQuadDpMatrix (small inputs) or the binary tree for that.
Result<Cost> OptimalQuadCostFast(const QuadTree& tree, int k);

}  // namespace pasa

#endif  // PASA_PASA_BULK_DP_QUAD_H_
