#include "pasa/anonymizer.h"

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/trace.h"

namespace pasa {

Result<Anonymizer> Anonymizer::Build(const LocationDatabase& db,
                                     const MapExtent& extent,
                                     const AnonymizerOptions& options) {
  if (options.k < 1) return Status::InvalidArgument("k must be >= 1");
  TreeOptions tree_options;
  tree_options.split_threshold =
      options.split_threshold > 0 ? options.split_threshold : options.k;
  tree_options.max_depth = options.max_tree_depth;
  tree_options.orientation = options.orientation;

  obs::ScopedSpan build_span("anonymizer/build", obs::ScopedSpan::kRoot);
  Result<BinaryTree> tree = [&] {
    obs::ScopedSpan tree_span("tree_build");
    return BinaryTree::Build(db, extent, tree_options);
  }();
  if (!tree.ok()) return tree.status();
  Result<DpMatrix> matrix = ComputeDpMatrix(*tree, options.k, options.dp);
  if (!matrix.ok()) return matrix.status();
  Result<ExtractedPolicy> policy = [&] {
    obs::ScopedSpan extract_span("extract_policy");
    return ExtractOptimalPolicy(*tree, *matrix, options.k);
  }();
  if (!policy.ok()) return policy.status();

  std::unordered_map<UserId, size_t> row_of_user;
  row_of_user.reserve(db.size());
  for (size_t i = 0; i < db.size(); ++i) row_of_user[db.row(i).user] = i;

  obs::LogDebug("anonymizer", "built optimal policy: %zu users, k=%d, "
                "cost %lld",
                db.size(), options.k,
                static_cast<long long>(policy->cost));
  Anonymizer a(options, std::move(*tree), std::move(*policy),
               std::move(row_of_user));
  a.location_of_user_.reserve(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    a.location_of_user_[db.row(i).user] = db.row(i).location;
  }
  a.group_size_of_node_ =
      GroupSizesByNode(a.policy_.assignment, a.tree_.num_nodes());
  return a;
}

Result<Anonymizer> Anonymizer::Build(const LocationDatabase& db,
                                     const AnonymizerOptions& options) {
  Result<MapExtent> extent = MapExtent::Covering(db.BoundingBox());
  if (!extent.ok()) return extent.status();
  return Build(db, *extent, options);
}

Result<Rect> Anonymizer::CloakForUser(UserId user) const {
  const auto it = row_of_user_.find(user);
  if (it == row_of_user_.end()) {
    return Status::NotFound("user " + std::to_string(user) +
                            " not in the anonymized snapshot");
  }
  return policy_.table.cloak(it->second);
}

Result<AnonymizedRequest> Anonymizer::Anonymize(const ServiceRequest& sr) {
  static obs::Histogram& latency = obs::MetricsRegistry::Global().GetHistogram(
      "anonymizer/cloak_lookup_seconds");
  obs::ScopedHistogramTimer timer(latency);
  const auto it = row_of_user_.find(sr.sender);
  if (it == row_of_user_.end()) {
    return Status::NotFound("sender not in the anonymized snapshot");
  }
  const auto loc_it = location_of_user_.find(sr.sender);
  if (loc_it == location_of_user_.end() || loc_it->second != sr.location) {
    return Status::InvalidArgument(
        "service request is not valid w.r.t. the snapshot");
  }
  AnonymizedRequest ar{next_rid_++, policy_.table.cloak(it->second),
                       sr.params};
  if (obs::ProvenanceRecord* p = obs::CurrentProvenance()) {
    p->rid = ar.rid;
    p->sender = sr.sender;
    p->k = options_.k;
    p->cloak_x1 = ar.cloak.x1;
    p->cloak_y1 = ar.cloak.y1;
    p->cloak_x2 = ar.cloak.x2;
    p->cloak_y2 = ar.cloak.y2;
    p->cloak_area = ar.cloak.Area();
    const size_t row = it->second;
    const int32_t node =
        row < policy_.assignment.size() ? policy_.assignment[row] : -1;
    p->policy_node = node;
    if (node >= 0) {
      p->tree_path = tree_.PathString(node);
      p->node_depth = tree_.node(node).depth;
      if (static_cast<size_t>(node) < group_size_of_node_.size()) {
        p->group_size = group_size_of_node_[node];
      }
      if (static_cast<size_t>(node) < policy_.config.passed_up.size()) {
        p->passed_up = policy_.config.C(node);
      }
    }
  }
  return ar;
}

Result<CloakingTable> PolicyAwareOptimumAlgorithm::Cloak(
    const LocationDatabase& db, int k) const {
  AnonymizerOptions options;
  options.k = k;
  Result<Anonymizer> a = has_extent_ ? Anonymizer::Build(db, extent_, options)
                                     : Anonymizer::Build(db, options);
  if (!a.ok()) return a.status();
  return a->policy();
}

}  // namespace pasa
