#ifndef PASA_PASA_INCREMENTAL_H_
#define PASA_PASA_INCREMENTAL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "index/binary_tree.h"
#include "pasa/bulk_dp_binary.h"
#include "pasa/extraction.h"

namespace pasa {

/// One user relocation between consecutive location-database snapshots.
struct UserMove {
  uint32_t row = 0;  ///< snapshot row index of the moving user
  Point from;
  Point to;

  friend bool operator==(const UserMove& a, const UserMove& b) = default;
};

/// Incremental maintenance of the optimum configuration matrix (Section IV,
/// "Incremental Maintenance of M"; evaluated in Section VI-C / Fig. 5(b)).
///
/// Holds the binary tree and the DP matrix across snapshots. ApplyMoves
/// relocates users, re-splits/collapses tree nodes where occupancy crosses
/// the lazy threshold, and re-runs the bottom-up DP step only for nodes
/// whose subtree changed — the "added twist" of starting from the leaves
/// whose d(m) changed. The result is always identical to a from-scratch
/// rebuild on the new snapshot (the tests assert equal optimal costs).
class IncrementalAnonymizer {
 public:
  /// Builds the initial tree and matrix for the first snapshot.
  static Result<IncrementalAnonymizer> Build(const LocationDatabase& db,
                                             const MapExtent& extent, int k,
                                             const DpOptions& dp_options);

  const BinaryTree& tree() const { return tree_; }
  const DpMatrix& matrix() const { return matrix_; }
  int k() const { return k_; }

  /// Applies a batch of moves and repairs the matrix. Returns the number of
  /// DP rows recomputed (the measure of incremental work).
  Result<size_t> ApplyMoves(const std::vector<UserMove>& moves);

  /// Minimum cost of a complete configuration on the current snapshot.
  Result<Cost> OptimalCost() const { return matrix_.OptimalCost(tree_); }

  /// Materializes one optimal policy for the current snapshot.
  Result<ExtractedPolicy> ExtractPolicy() const {
    return ExtractOptimalPolicy(tree_, matrix_, k_);
  }

 private:
  IncrementalAnonymizer(int k, DpOptions dp_options, BinaryTree tree,
                        DpMatrix matrix)
      : k_(k),
        dp_options_(dp_options),
        tree_(std::move(tree)),
        matrix_(std::move(matrix)) {}

  int k_;
  DpOptions dp_options_;
  BinaryTree tree_;
  DpMatrix matrix_;
};

}  // namespace pasa

#endif  // PASA_PASA_INCREMENTAL_H_
