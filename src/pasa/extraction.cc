#include "pasa/extraction.h"

#include <cassert>

namespace pasa {
namespace {

// Returns the (l1, l2) split of `j` locations between the children of `node`
// that achieves the minimum combined child cost. `j` comes from the DP
// bookkeeping, so a valid split always exists.
std::pair<uint32_t, uint32_t> FindChildSplit(const DpMatrix& matrix,
                                             uint32_t j, uint32_t d1,
                                             uint32_t d2, int32_t c1,
                                             int32_t c2) {
  const DpRow& r1 = matrix.rows[c1];
  const DpRow& r2 = matrix.rows[c2];
  Cost best = kInfiniteCost;
  std::pair<uint32_t, uint32_t> split{0, 0};
  auto consider = [&](uint32_t l1) {
    if (l1 > j) return;
    const uint32_t l2 = j - l1;
    const Cost c = r1.CostAt(l1, d1);
    if (c >= kInfiniteCost) return;
    const Cost cc = r2.CostAt(l2, d2);
    if (cc >= kInfiniteCost) return;
    if (c + cc < best) {
      best = c + cc;
      split = {l1, l2};
    }
  };
  if (r1.HasDense()) {
    for (int32_t l1 = 0; l1 <= r1.cap; ++l1) {
      consider(static_cast<uint32_t>(l1));
    }
  }
  consider(d1);
  assert(best < kInfiniteCost && "DP bookkeeping j has no valid child split");
  return split;
}

}  // namespace

Result<ExtractedPolicy> ExtractOptimalPolicy(const BinaryTree& tree,
                                             const DpMatrix& matrix, int k) {
  const BinaryTree::Node& root = tree.node(BinaryTree::kRootId);
  ExtractedPolicy out;
  out.config.passed_up.assign(tree.num_nodes(), 0);
  if (root.count == 0) {
    out.table = CloakingTable(0);
    return out;
  }
  if (root.count < static_cast<uint32_t>(k)) {
    return Status::Infeasible("fewer than k users in the snapshot");
  }
  {
    Result<Cost> optimal = matrix.OptimalCost(tree);
    if (!optimal.ok()) return optimal.status();
    out.cost = *optimal;
  }

  // Pass 1 (top-down): fix C(m) for every live node, following the
  // bookkeeping of minimum-cost entries.
  std::vector<uint32_t>& u_of = out.config.passed_up;
  std::vector<int32_t> stack = {BinaryTree::kRootId};
  u_of[BinaryTree::kRootId] = 0;
  while (!stack.empty()) {
    const int32_t id = stack.back();
    stack.pop_back();
    const BinaryTree::Node& n = tree.node(id);
    if (n.IsLeaf()) continue;
    const int32_t c1 = n.first_child;
    const int32_t c2 = n.first_child + 1;
    const uint32_t d1 = tree.node(c1).count;
    const uint32_t d2 = tree.node(c2).count;
    const uint32_t u = u_of[id];
    if (u == n.count) {
      // Pass-everything-up: the whole subtree cloaks nothing.
      u_of[c1] = d1;
      u_of[c2] = d2;
    } else {
      const DpRow& row = matrix.rows[id];
      assert(row.HasDense() && u <= static_cast<uint32_t>(row.cap));
      const uint32_t j = row.dense[u].children_pass;
      const auto [l1, l2] = FindChildSplit(matrix, j, d1, d2, c1, c2);
      u_of[c1] = l1;
      u_of[c2] = l2;
    }
    stack.push_back(c1);
    stack.push_back(c2);
  }

  // Pass 2 (bottom-up): materialize the policy. Each node cloaks the first
  // (available - C(m)) rows of its pool and passes the rest up.
  const size_t num_rows = root.count;
  out.assignment.assign(num_rows, -1);
  auto assign_pool = [&](auto&& self, int32_t id) -> std::vector<uint32_t> {
    const BinaryTree::Node& n = tree.node(id);
    std::vector<uint32_t> pool;
    if (n.IsLeaf()) {
      pool = tree.LeafRows(id);
    } else {
      pool = self(self, n.first_child);
      std::vector<uint32_t> right = self(self, n.first_child + 1);
      pool.insert(pool.end(), right.begin(), right.end());
    }
    const uint32_t u = u_of[id];
    assert(pool.size() >= u);
    const size_t cloaked = pool.size() - u;
    for (size_t i = 0; i < cloaked; ++i) out.assignment[pool[i]] = id;
    pool.erase(pool.begin(), pool.begin() + static_cast<ptrdiff_t>(cloaked));
    return pool;
  };
  std::vector<uint32_t> leftover = assign_pool(assign_pool, BinaryTree::kRootId);
  if (!leftover.empty()) {
    return Status::Internal("complete configuration left rows uncloaked");
  }

  out.table = CloakingTable(num_rows);
  for (size_t row = 0; row < num_rows; ++row) {
    if (out.assignment[row] < 0) {
      return Status::Internal("row " + std::to_string(row) + " unassigned");
    }
    out.table.Assign(row, tree.node(out.assignment[row]).region);
  }
  return out;
}

std::vector<uint32_t> GroupSizesByNode(const std::vector<int32_t>& assignment,
                                       size_t num_nodes) {
  std::vector<uint32_t> sizes(num_nodes, 0);
  for (const int32_t node : assignment) {
    if (node >= 0 && static_cast<size_t>(node) < num_nodes) ++sizes[node];
  }
  return sizes;
}

}  // namespace pasa
