#ifndef PASA_PASA_CONFIGURATION_H_
#define PASA_PASA_CONFIGURATION_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "index/binary_tree.h"
#include "index/quad_tree.h"

namespace pasa {

/// Exact policy cost in squared coordinate units (Section IV "Cost of a
/// policy"). int64 keeps all arithmetic exact for the experiment scales.
using Cost = int64_t;

/// Sentinel for unreachable DP states; large but safe to add areas to.
inline constexpr Cost kInfiniteCost = std::numeric_limits<Cost>::max() / 4;

/// A configuration of a tree (Definition 7): for every node m, the number
/// C(m) of locations inside m that are NOT cloaked by m or its descendants
/// (their cloaking responsibility is "passed up"). Indexed by node id; slots
/// of dead (collapsed) nodes are ignored.
struct Configuration {
  std::vector<uint32_t> passed_up;

  uint32_t C(int32_t node) const { return passed_up[node]; }

  /// Approximate heap bytes (memory accounting, obs/mem.h).
  uint64_t ApproxBytes() const {
    return static_cast<uint64_t>(passed_up.capacity()) * sizeof(uint32_t);
  }
};

/// True if `config` satisfies the k-summation property (Definition 9) on the
/// binary tree: every node passes everything up, or cloaks at least k.
/// By Lemma 3 this holds iff the represented policies are policy-aware
/// sender k-anonymous.
bool SatisfiesKSummation(const BinaryTree& tree, const Configuration& config,
                         int k);

/// Quad-tree variant of the k-summation check.
bool SatisfiesKSummation(const QuadTree& tree, const Configuration& config,
                         int k);

/// Cost of a configuration (Definition 8): sum over nodes of
/// (#locations cloaked at the node) x area(node). Equals the cost of every
/// policy in the equivalence class the configuration represents (Lemma 2).
Cost ConfigurationCost(const BinaryTree& tree, const Configuration& config);

/// Quad-tree variant of the configuration cost.
Cost ConfigurationCost(const QuadTree& tree, const Configuration& config);

/// Derives the configuration of an explicit policy: `assignment[row]` is the
/// node id cloaking snapshot row `row` (which must be an ancestor-or-self of
/// the row's leaf). Inverse direction of the extraction step; used to check
/// Lemma 1/3 statements in tests.
Configuration ConfigurationFromAssignment(
    const BinaryTree& tree, const std::vector<int32_t>& assignment);

/// Quad-tree variant.
Configuration ConfigurationFromAssignment(
    const QuadTree& tree, const std::vector<int32_t>& assignment);

}  // namespace pasa

#endif  // PASA_PASA_CONFIGURATION_H_
