#ifndef PASA_PASA_BULK_DP_BINARY_H_
#define PASA_PASA_BULK_DP_BINARY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "index/binary_tree.h"
#include "pasa/configuration.h"

namespace pasa {

/// Optimization toggles for the binary-tree Bulk_dp (Section V). Both default
/// on; the ablation benchmark turns them off individually.
struct DpOptions {
  /// Lemma 5: cap the number of locations a node at height h may pass up at
  /// (k+1)h (besides the always-available "pass everything" option).
  bool lemma5_pruning = true;
  /// Two-stage evaluation of internal nodes: materialize
  /// temp[j] = min_{l1+l2=j} M[m1][l1] + M[m2][l2] once, then derive all
  /// M[m][u] from it, instead of re-scanning child pairs per u.
  bool two_stage = true;
};

/// One DP cell: minimum configuration cost for the subtree with C(m) = u,
/// plus the bookkeeping needed to walk back down during extraction.
struct DpEntry {
  Cost cost = kInfiniteCost;
  /// For internal nodes: the total number of locations the two children pass
  /// up (j = C(m1) + C(m2)) in the minimizing configuration. Unused (0) for
  /// leaves and for pass-everything entries.
  uint32_t children_pass = 0;
};

/// The DP row of one tree node: entries for the "dense" pass-up values
/// u = 0..cap (cap = min(d-k, Lemma-5 bound); cap == -1 when d < k so the
/// dense part is empty). The u = d(m) entry ("pass everything up") always
/// exists implicitly with cost 0 and is not stored.
struct DpRow {
  int32_t cap = -1;
  std::vector<DpEntry> dense;  ///< size cap + 1

  bool HasDense() const { return cap >= 0; }
  /// Cost of C(m) = u; `u == d` is the implicit zero-cost entry.
  Cost CostAt(uint32_t u, uint32_t d) const {
    if (u == d) return 0;
    if (cap < 0 || u > static_cast<uint32_t>(cap)) return kInfiniteCost;
    return dense[u].cost;
  }
};

/// Per-phase wall clock accumulated while filling DP rows, reported by the
/// observability layer as "bulk_dp/*" spans. Plain (non-atomic) fields: each
/// DP run profiles into its own instance. Only the phases the selected
/// DpOptions actually execute accumulate time (two-stage fills
/// temp_convolution/suffix_sweep, the direct variant fills direct_scan).
struct DpPhaseProfile {
  double leaf_init_seconds = 0.0;         ///< leaf rows (clause (i)/(ii))
  double temp_convolution_seconds = 0.0;  ///< two-stage stage 1: temp matrix
  double suffix_sweep_seconds = 0.0;      ///< two-stage stage 2 + suffix minima
  double direct_scan_seconds = 0.0;       ///< un-staged direct evaluation
  uint64_t leaf_rows = 0;
  uint64_t internal_rows = 0;
  uint64_t dense_cells = 0;  ///< dense DP entries materialized
};

/// The full configuration matrix M of algorithm Bulk_dp, one row per tree
/// node (dead nodes have empty rows).
struct DpMatrix {
  std::vector<DpRow> rows;

  /// Minimum cost of a complete (C(root) = 0) configuration, i.e. the cost
  /// of the optimal policy-aware sender k-anonymous policy.
  Result<Cost> OptimalCost(const BinaryTree& tree) const;

  /// Approximate heap bytes of the matrix — the row array plus every dense
  /// row's entry storage (memory accounting, obs/mem.h).
  uint64_t ApproxBytes() const {
    uint64_t bytes = static_cast<uint64_t>(rows.capacity()) * sizeof(DpRow);
    for (const DpRow& row : rows) {
      bytes += static_cast<uint64_t>(row.dense.capacity()) * sizeof(DpEntry);
    }
    return bytes;
  }
};

/// The optimized Bulk_dp of Section V on the binary semi-quadrant tree:
/// fills the configuration matrix bottom-up in O(|B| (kh)^2) with both
/// optimizations on. Fails with Infeasible when the snapshot holds fewer
/// than k users (no complete k-summation configuration exists). An empty
/// snapshot yields an empty matrix with optimal cost 0.
Result<DpMatrix> ComputeDpMatrix(const BinaryTree& tree, int k,
                                 const DpOptions& options);

/// Recomputes the row of a single node from its (already computed) child
/// rows — the unit of work shared by the bulk computation above and by
/// incremental maintenance (Section IV "Incremental Maintenance of M").
/// A non-null `profile` accumulates per-phase timings (obs layer).
DpRow ComputeNodeRow(const BinaryTree& tree, int32_t node,
                     const DpMatrix& matrix, int k, const DpOptions& options,
                     DpPhaseProfile* profile = nullptr);

}  // namespace pasa

#endif  // PASA_PASA_BULK_DP_BINARY_H_
