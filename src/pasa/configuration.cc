#include "pasa/configuration.h"

#include <cassert>

namespace pasa {
namespace {

// Shared k-summation clause check for one node given d(m) (or Delta) and
// C(m): the node must pass everything up, or cloak at least k.
bool NodeSatisfiesKSummation(uint64_t available, uint64_t passed, int k) {
  if (passed > available) return false;
  const uint64_t cloaked = available - passed;
  return cloaked == 0 || cloaked >= static_cast<uint64_t>(k);
}

}  // namespace

bool SatisfiesKSummation(const BinaryTree& tree, const Configuration& config,
                         int k) {
  assert(config.passed_up.size() == tree.num_nodes());
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    const BinaryTree::Node& n = tree.node(static_cast<int32_t>(i));
    if (!n.live) continue;
    uint64_t available;
    if (n.IsLeaf()) {
      available = n.count;  // clause (i)/(ii): d(m)
    } else {
      available = static_cast<uint64_t>(config.C(n.first_child)) +
                  config.C(n.first_child + 1);  // clause (iii)/(iv): Delta
    }
    if (!NodeSatisfiesKSummation(available, config.C(static_cast<int32_t>(i)),
                                 k)) {
      return false;
    }
  }
  return true;
}

bool SatisfiesKSummation(const QuadTree& tree, const Configuration& config,
                         int k) {
  assert(config.passed_up.size() == tree.num_nodes());
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    const QuadTree::Node& n = tree.node(static_cast<int32_t>(i));
    uint64_t available = 0;
    if (n.IsLeaf()) {
      available = n.count;
    } else {
      for (int q = 0; q < 4; ++q) available += config.C(n.first_child + q);
    }
    if (!NodeSatisfiesKSummation(available, config.C(static_cast<int32_t>(i)),
                                 k)) {
      return false;
    }
  }
  return true;
}

Cost ConfigurationCost(const BinaryTree& tree, const Configuration& config) {
  assert(config.passed_up.size() == tree.num_nodes());
  Cost total = 0;
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    const BinaryTree::Node& n = tree.node(static_cast<int32_t>(i));
    if (!n.live) continue;
    uint64_t available;
    if (n.IsLeaf()) {
      available = n.count;
    } else {
      available = static_cast<uint64_t>(config.C(n.first_child)) +
                  config.C(n.first_child + 1);
    }
    const uint64_t cloaked = available - config.C(static_cast<int32_t>(i));
    total += static_cast<Cost>(cloaked) * n.region.Area();
  }
  return total;
}

Cost ConfigurationCost(const QuadTree& tree, const Configuration& config) {
  assert(config.passed_up.size() == tree.num_nodes());
  Cost total = 0;
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    const QuadTree::Node& n = tree.node(static_cast<int32_t>(i));
    uint64_t available = 0;
    if (n.IsLeaf()) {
      available = n.count;
    } else {
      for (int q = 0; q < 4; ++q) available += config.C(n.first_child + q);
    }
    const uint64_t cloaked = available - config.C(static_cast<int32_t>(i));
    total += static_cast<Cost>(cloaked) * n.region.Area();
  }
  return total;
}

namespace {

// Shared assignment->configuration logic: count cloaked-at-node, sum over
// subtrees bottom-up (children have larger ids), then C(m) = d(m) - cloaked
// in m's subtree.
template <typename Tree>
Configuration FromAssignmentImpl(const Tree& tree,
                                 const std::vector<int32_t>& assignment,
                                 int children_per_node) {
  std::vector<uint64_t> cloaked_in_subtree(tree.num_nodes(), 0);
  for (const int32_t node : assignment) {
    assert(node >= 0 && static_cast<size_t>(node) < tree.num_nodes());
    ++cloaked_in_subtree[node];
  }
  Configuration config;
  config.passed_up.assign(tree.num_nodes(), 0);
  // Reverse index order visits children before parents.
  for (size_t i = tree.num_nodes(); i-- > 0;) {
    const auto& n = tree.node(static_cast<int32_t>(i));
    if (!n.IsLeaf()) {
      for (int c = 0; c < children_per_node; ++c) {
        cloaked_in_subtree[i] += cloaked_in_subtree[n.first_child + c];
      }
    }
    assert(cloaked_in_subtree[i] <= n.count);
    config.passed_up[i] =
        static_cast<uint32_t>(n.count - cloaked_in_subtree[i]);
  }
  return config;
}

}  // namespace

Configuration ConfigurationFromAssignment(
    const BinaryTree& tree, const std::vector<int32_t>& assignment) {
  return FromAssignmentImpl(tree, assignment, 2);
}

Configuration ConfigurationFromAssignment(
    const QuadTree& tree, const std::vector<int32_t>& assignment) {
  return FromAssignmentImpl(tree, assignment, 4);
}

}  // namespace pasa
