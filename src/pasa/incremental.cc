#include "pasa/incremental.h"

#include <algorithm>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_sink.h"

namespace pasa {

Result<IncrementalAnonymizer> IncrementalAnonymizer::Build(
    const LocationDatabase& db, const MapExtent& extent, int k,
    const DpOptions& dp_options) {
  TreeOptions tree_options;
  tree_options.split_threshold = k;
  Result<BinaryTree> tree = BinaryTree::Build(db, extent, tree_options);
  if (!tree.ok()) return tree.status();
  Result<DpMatrix> matrix = ComputeDpMatrix(*tree, k, dp_options);
  if (!matrix.ok()) return matrix.status();
  return IncrementalAnonymizer(k, dp_options, std::move(*tree),
                               std::move(*matrix));
}

Result<size_t> IncrementalAnonymizer::ApplyMoves(
    const std::vector<UserMove>& moves) {
  obs::ScopedSpan span("incremental/repair", obs::ScopedSpan::kRoot);
  std::vector<int32_t> dirty;
  dirty.reserve(moves.size() * 48);
  for (const UserMove& move : moves) {
    Status s = tree_.ApplyMove(move.row, move.from, move.to, &dirty);
    if (!s.ok()) return s;
  }

  // Deduplicate, drop abandoned nodes, grow the matrix for new arena slots.
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  if (matrix_.rows.size() < tree_.num_nodes()) {
    matrix_.rows.resize(tree_.num_nodes());
  }

  // Children before parents: a child's binary depth is strictly greater
  // than its parent's, so recompute in depth-descending order.
  std::sort(dirty.begin(), dirty.end(), [&](int32_t a, int32_t b) {
    return tree_.node(a).depth > tree_.node(b).depth;
  });

  size_t recomputed = 0;
  for (const int32_t id : dirty) {
    if (!tree_.node(id).live) {
      matrix_.rows[id] = DpRow{};  // reclaim abandoned rows
      continue;
    }
    matrix_.rows[id] = ComputeNodeRow(tree_, id, matrix_, k_, dp_options_);
    ++recomputed;
  }
  if (obs::Enabled()) {
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("incremental/moves_applied").Increment(moves.size());
    registry.GetCounter("incremental/rows_recomputed").Increment(recomputed);
    registry.GetCounter("incremental/repairs").Increment();
    obs::TraceCounter("incremental/rows_recomputed",
                      static_cast<double>(recomputed));
  }
  obs::LogDebug("incremental", "repair: %zu moves, %zu dirty rows, "
                "%zu recomputed",
                moves.size(), dirty.size(), recomputed);
  return recomputed;
}

}  // namespace pasa
