#include "pasa/bulk_dp_quad.h"

#include <cassert>
#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pasa {
namespace {

double QuadSecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// F(m) of Algorithm 1 line 13: [0..d-k] and d itself, with the cost of each
// choice.
struct PassOption {
  uint32_t u = 0;
  Cost cost = 0;
};

std::vector<PassOption> OptionsOf(const QuadDpRow& row, uint32_t d) {
  std::vector<PassOption> options;
  if (row.HasDense()) {
    options.reserve(row.cap + 2);
    for (int32_t u = 0; u <= row.cap; ++u) {
      options.push_back(
          PassOption{static_cast<uint32_t>(u), row.dense[u].cost});
    }
  }
  options.push_back(PassOption{d, 0});
  return options;
}

QuadDpRow ComputeLeafRow(const QuadTree::Node& n, int k) {
  QuadDpRow row;
  row.cap = static_cast<int64_t>(n.count) - k < 0
                ? -1
                : static_cast<int32_t>(n.count - k);
  if (!row.HasDense()) return row;  // lines 5-6: d(m) < k
  const Cost area = n.region.Area();
  row.dense.resize(row.cap + 1);
  for (int32_t u = 0; u <= row.cap; ++u) {  // lines 9-10
    row.dense[u].cost = area * static_cast<Cost>(n.count - u);
  }
  return row;
}

QuadDpRow ComputeInternalRow(const QuadTree& tree, const QuadDpMatrix& matrix,
                             const QuadTree::Node& n, int k) {
  QuadDpRow row;
  row.cap = static_cast<int64_t>(n.count) - k < 0
                ? -1
                : static_cast<int32_t>(n.count - k);
  if (!row.HasDense()) return row;
  row.dense.resize(row.cap + 1);
  const Cost area = n.region.Area();

  std::array<std::vector<PassOption>, 4> child_options;
  for (int q = 0; q < 4; ++q) {
    const int32_t child = n.first_child + q;
    child_options[q] =
        OptionsOf(matrix.rows[child], tree.node(child).count);
  }

  // Lines 13-20: enumerate all (u1..u4) combinations, streamed (the
  // cartesian product is too large to materialize). For every total j we
  // keep the cheapest combination; each row entry is then served from the
  // per-j minima: M[m][u] = min(g(u), min_{j >= u+k} g(j) + (j-u)*area).
  struct PerJ {
    Cost cost = kInfiniteCost;
    std::array<uint32_t, 4> picks = {0, 0, 0, 0};
  };
  std::vector<PerJ> g(n.count + 1);
  for (const PassOption& o1 : child_options[0]) {
    for (const PassOption& o2 : child_options[1]) {
      for (const PassOption& o3 : child_options[2]) {
        const uint32_t j123 = o1.u + o2.u + o3.u;
        const Cost c123 = o1.cost + o2.cost + o3.cost;
        for (const PassOption& o4 : child_options[3]) {
          PerJ& slot = g[j123 + o4.u];
          const Cost x = c123 + o4.cost;
          if (x < slot.cost) {
            slot.cost = x;
            slot.picks = {o1.u, o2.u, o3.u, o4.u};
          }
        }
      }
    }
  }
  // Suffix minima of g(j) + j*area with the achieving j.
  std::vector<Cost> suffix_cost(g.size() + 1, kInfiniteCost);
  std::vector<uint32_t> suffix_j(g.size() + 1, 0);
  for (size_t j = g.size(); j-- > 0;) {
    suffix_cost[j] = suffix_cost[j + 1];
    suffix_j[j] = suffix_j[j + 1];
    if (g[j].cost < kInfiniteCost) {
      const Cost here = g[j].cost + static_cast<Cost>(j) * area;
      if (here <= suffix_cost[j]) {
        suffix_cost[j] = here;
        suffix_j[j] = static_cast<uint32_t>(j);
      }
    }
  }

  for (int32_t u = 0; u <= row.cap; ++u) {
    const uint32_t uu = static_cast<uint32_t>(u);
    QuadDpEntry best;
    if (g[uu].cost < kInfiniteCost) {  // pass everything through (j == u)
      best.cost = g[uu].cost;
      best.child_pass = g[uu].picks;
    }
    const size_t from = uu + static_cast<uint32_t>(k);
    if (from < suffix_cost.size() && suffix_cost[from] < kInfiniteCost) {
      const Cost x = suffix_cost[from] - static_cast<Cost>(uu) * area;
      if (x < best.cost) {
        best.cost = x;
        best.child_pass = g[suffix_j[from]].picks;
      }
    }
    row.dense[u] = best;
  }
  return row;
}

}  // namespace

namespace {

// Cost-only row used by the fast variant: dense costs for u in [0..cap]
// plus the implicit zero-cost u = d entry.
struct FastRow {
  int32_t cap = -1;
  std::vector<Cost> dense;

  Cost CostAt(uint32_t u, uint32_t d) const {
    if (u == d) return 0;
    if (cap < 0 || u > static_cast<uint32_t>(cap)) return kInfiniteCost;
    return dense[u];
  }
};

// The pass-up options (u, cost) of one child: dense values plus {d}.
std::vector<std::pair<uint32_t, Cost>> PassList(const FastRow& row,
                                                uint32_t d) {
  std::vector<std::pair<uint32_t, Cost>> list;
  if (row.cap >= 0) {
    list.reserve(row.cap + 2);
    for (int32_t u = 0; u <= row.cap; ++u) {
      list.emplace_back(static_cast<uint32_t>(u), row.dense[u]);
    }
  }
  list.emplace_back(d, Cost{0});
  return list;
}

// Joint pass-up cost of two option lists, split into a dense array over
// totals [0..limit] and a scalar "overflow" carrying
// min(cost + total * area) over totals > limit (all an ancestor row needs
// from large totals, since only cost + j*area survives the suffix-min).
struct JointPassUp {
  std::vector<Cost> dense;  // size limit + 1
  Cost overflow_with_area = kInfiniteCost;
};

JointPassUp Combine(const std::vector<std::pair<uint32_t, Cost>>& a,
                    const std::vector<std::pair<uint32_t, Cost>>& b,
                    uint32_t limit, Cost area) {
  JointPassUp out;
  out.dense.assign(limit + 1, kInfiniteCost);
  for (const auto& [ja, ca] : a) {
    for (const auto& [jb, cb] : b) {
      const uint64_t j = static_cast<uint64_t>(ja) + jb;
      const Cost c = ca + cb;
      if (j <= limit) {
        Cost& slot = out.dense[j];
        if (c < slot) slot = c;
      } else {
        const Cost with_area = c + static_cast<Cost>(j) * area;
        if (with_area < out.overflow_with_area) {
          out.overflow_with_area = with_area;
        }
      }
    }
  }
  return out;
}

}  // namespace

Result<Cost> OptimalQuadCostFast(const QuadTree& tree, int k) {
  obs::ScopedSpan span("bulk_dp_quad/fast_cost", obs::ScopedSpan::kRoot);
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  const uint32_t total = tree.node(QuadTree::kRootId).count;
  if (total == 0) return Cost{0};
  if (total < static_cast<uint32_t>(k)) {
    return Status::Infeasible("snapshot has fewer than k users");
  }

  std::vector<FastRow> rows(tree.num_nodes());
  for (size_t i = tree.num_nodes(); i-- > 0;) {
    const QuadTree::Node& n = tree.node(static_cast<int32_t>(i));
    FastRow& row = rows[i];
    // Lemma 5 cap, exactly as in the binary DP.
    const int64_t cap = std::min<int64_t>(
        static_cast<int64_t>(n.count) - k,
        static_cast<int64_t>(k + 1) * n.depth);
    row.cap = cap < 0 ? -1 : static_cast<int32_t>(cap);
    if (!(row.cap >= 0)) continue;
    row.dense.assign(row.cap + 1, kInfiniteCost);
    const Cost area = n.region.Area();

    if (n.IsLeaf()) {
      for (int32_t u = 0; u <= row.cap; ++u) {
        row.dense[u] = area * static_cast<Cost>(n.count - u);
      }
      continue;
    }

    // Joint pass-up of the four children via two staged pairwise merges.
    // Anything above `limit` only ever feeds the cloak option's suffix-min,
    // so it collapses into the overflow scalar.
    const uint32_t limit =
        static_cast<uint32_t>(row.cap) + static_cast<uint32_t>(k);
    std::array<std::vector<std::pair<uint32_t, Cost>>, 4> lists;
    for (int q = 0; q < 4; ++q) {
      const int32_t child = n.first_child + q;
      lists[q] = PassList(rows[child], tree.node(child).count);
    }
    const JointPassUp g12 = Combine(lists[0], lists[1], limit, area);
    const JointPassUp g34 = Combine(lists[2], lists[3], limit, area);

    // Final dense convolution over [0..limit] plus overflow bookkeeping.
    std::vector<Cost> g(limit + 1, kInfiniteCost);
    Cost far = kInfiniteCost;  // min of cost + j*area over j > limit
    auto fold_far = [&](Cost v) {
      if (v < far) far = v;
    };
    // overflow x anything: the partner's cheapest cost + j*area.
    Cost min12_with_area = g12.overflow_with_area;
    Cost min34_with_area = g34.overflow_with_area;
    for (uint32_t j = 0; j <= limit; ++j) {
      if (g12.dense[j] < kInfiniteCost) {
        min12_with_area = std::min(
            min12_with_area, g12.dense[j] + static_cast<Cost>(j) * area);
      }
      if (g34.dense[j] < kInfiniteCost) {
        min34_with_area = std::min(
            min34_with_area, g34.dense[j] + static_cast<Cost>(j) * area);
      }
    }
    if (g12.overflow_with_area < kInfiniteCost &&
        min34_with_area < kInfiniteCost) {
      fold_far(g12.overflow_with_area + min34_with_area);
    }
    if (g34.overflow_with_area < kInfiniteCost &&
        min12_with_area < kInfiniteCost) {
      fold_far(g34.overflow_with_area + min12_with_area);
    }
    for (uint32_t j12 = 0; j12 <= limit; ++j12) {
      if (g12.dense[j12] >= kInfiniteCost) continue;
      for (uint32_t j34 = 0; j34 <= limit; ++j34) {
        if (g34.dense[j34] >= kInfiniteCost) continue;
        const uint64_t j = static_cast<uint64_t>(j12) + j34;
        const Cost c = g12.dense[j12] + g34.dense[j34];
        if (j <= limit) {
          Cost& slot = g[j];
          if (c < slot) slot = c;
        } else {
          fold_far(c + static_cast<Cost>(j) * area);
        }
      }
    }

    // Suffix minima of g(j) + j*area over the dense range.
    std::vector<Cost> suffix(limit + 2, kInfiniteCost);
    suffix[limit + 1] = far;
    for (uint32_t j = limit + 1; j-- > 0;) {
      suffix[j] = suffix[j + 1];
      if (g[j] < kInfiniteCost) {
        suffix[j] = std::min(suffix[j], g[j] + static_cast<Cost>(j) * area);
      }
    }
    for (int32_t u = 0; u <= row.cap; ++u) {
      const uint32_t uu = static_cast<uint32_t>(u);
      Cost best = g[uu];  // pass everything through (j == u)
      const Cost cloak = suffix[uu + static_cast<uint32_t>(k)];
      if (cloak < kInfiniteCost) {
        best = std::min(best, cloak - static_cast<Cost>(uu) * area);
      }
      row.dense[u] = best;
    }
  }

  const Cost answer = rows[QuadTree::kRootId].CostAt(0, total);
  if (answer >= kInfiniteCost) {
    return Status::Infeasible("no complete k-summation configuration");
  }
  return answer;
}

Result<QuadDpMatrix> ComputeQuadDpMatrix(const QuadTree& tree, int k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  const uint32_t total = tree.node(QuadTree::kRootId).count;
  if (total > 0 && total < static_cast<uint32_t>(k)) {
    return Status::Infeasible("snapshot has fewer than k users");
  }
  obs::ScopedSpan span("bulk_dp_quad", obs::ScopedSpan::kRoot);
  const bool profiling = obs::Enabled();
  double leaf_seconds = 0.0, internal_seconds = 0.0;
  uint64_t leaf_rows = 0, internal_rows = 0;
  QuadDpMatrix matrix;
  matrix.rows.resize(tree.num_nodes());
  for (size_t i = tree.num_nodes(); i-- > 0;) {
    const QuadTree::Node& n = tree.node(static_cast<int32_t>(i));
    if (!profiling) {
      matrix.rows[i] = n.IsLeaf() ? ComputeLeafRow(n, k)
                                  : ComputeInternalRow(tree, matrix, n, k);
      continue;
    }
    const auto t0 = std::chrono::steady_clock::now();
    if (n.IsLeaf()) {
      matrix.rows[i] = ComputeLeafRow(n, k);
      leaf_seconds += QuadSecondsSince(t0);
      ++leaf_rows;
    } else {
      matrix.rows[i] = ComputeInternalRow(tree, matrix, n, k);
      internal_seconds += QuadSecondsSince(t0);
      ++internal_rows;
    }
  }
  if (profiling) {
    auto& registry = obs::MetricsRegistry::Global();
    registry.RecordSpan("bulk_dp_quad/leaf_init", leaf_seconds, leaf_rows);
    registry.RecordSpan("bulk_dp_quad/internal_rows", internal_seconds,
                        internal_rows);
    registry.GetCounter("bulk_dp_quad/runs").Increment();
  }
  return matrix;
}

Result<Cost> QuadDpMatrix::OptimalCost(const QuadTree& tree) const {
  const QuadTree::Node& root = tree.node(QuadTree::kRootId);
  if (root.count == 0) return Cost{0};
  const Cost cost = rows[QuadTree::kRootId].CostAt(0, root.count);
  if (cost >= kInfiniteCost) {
    return Status::Infeasible("no complete k-summation configuration");
  }
  return cost;
}

Result<ExtractedQuadPolicy> ExtractOptimalQuadPolicy(
    const QuadTree& tree, const QuadDpMatrix& matrix, int k) {
  const QuadTree::Node& root = tree.node(QuadTree::kRootId);
  ExtractedQuadPolicy out;
  out.config.passed_up.assign(tree.num_nodes(), 0);
  if (root.count == 0) {
    out.table = CloakingTable(0);
    return out;
  }
  if (root.count < static_cast<uint32_t>(k)) {
    return Status::Infeasible("fewer than k users in the snapshot");
  }
  {
    Result<Cost> optimal = matrix.OptimalCost(tree);
    if (!optimal.ok()) return optimal.status();
    out.cost = *optimal;
  }

  std::vector<uint32_t>& u_of = out.config.passed_up;
  std::vector<int32_t> stack = {QuadTree::kRootId};
  u_of[QuadTree::kRootId] = 0;
  while (!stack.empty()) {
    const int32_t id = stack.back();
    stack.pop_back();
    const QuadTree::Node& n = tree.node(id);
    if (n.IsLeaf()) continue;
    const uint32_t u = u_of[id];
    if (u == n.count) {
      for (int q = 0; q < 4; ++q) {
        u_of[n.first_child + q] = tree.node(n.first_child + q).count;
      }
    } else {
      const QuadDpRow& row = matrix.rows[id];
      assert(row.HasDense() && u <= static_cast<uint32_t>(row.cap));
      for (int q = 0; q < 4; ++q) {
        u_of[n.first_child + q] = row.dense[u].child_pass[q];
      }
    }
    for (int q = 0; q < 4; ++q) stack.push_back(n.first_child + q);
  }

  const size_t num_rows = root.count;
  out.assignment.assign(num_rows, -1);
  auto assign_pool = [&](auto&& self, int32_t id) -> std::vector<uint32_t> {
    const QuadTree::Node& n = tree.node(id);
    std::vector<uint32_t> pool;
    if (n.IsLeaf()) {
      pool = tree.LeafRows(id);
    } else {
      for (int q = 0; q < 4; ++q) {
        std::vector<uint32_t> part = self(self, n.first_child + q);
        pool.insert(pool.end(), part.begin(), part.end());
      }
    }
    const uint32_t u = u_of[id];
    assert(pool.size() >= u);
    const size_t cloaked = pool.size() - u;
    for (size_t i = 0; i < cloaked; ++i) out.assignment[pool[i]] = id;
    pool.erase(pool.begin(), pool.begin() + static_cast<ptrdiff_t>(cloaked));
    return pool;
  };
  std::vector<uint32_t> leftover =
      assign_pool(assign_pool, QuadTree::kRootId);
  if (!leftover.empty()) {
    return Status::Internal("complete configuration left rows uncloaked");
  }

  out.table = CloakingTable(num_rows);
  for (size_t row = 0; row < num_rows; ++row) {
    if (out.assignment[row] < 0) {
      return Status::Internal("row unassigned");
    }
    out.table.Assign(row, tree.node(out.assignment[row]).region);
  }
  return out;
}

}  // namespace pasa
