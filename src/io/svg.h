#ifndef PASA_IO_SVG_H_
#define PASA_IO_SVG_H_

#include <string>

#include "common/status.h"
#include "index/binary_tree.h"
#include "model/cloaking.h"
#include "model/location_database.h"

namespace pasa {

/// Rendering knobs for the SVG exports.
struct SvgOptions {
  /// Output image width in pixels (height matches the region's aspect).
  double width_px = 800.0;
  /// Draw user locations as dots.
  bool draw_users = true;
  /// Dot radius in pixels.
  double user_radius_px = 1.5;
};

/// Renders a snapshot plus its cloaking as SVG: cloak rectangles (one per
/// distinct region, fill opacity by group size) over user dots. The visual
/// counterpart of the paper's Figure 1/3 illustrations; handy for eyeballing
/// why a region's cloaks are large or small.
std::string RenderCloakingSvg(const LocationDatabase& db,
                              const CloakingTable& table, const Rect& viewport,
                              const SvgOptions& options = {});

/// Renders the lazily materialized binary tree: leaf boundaries shaded by
/// depth (the Figure 3(a) plot).
std::string RenderTreeSvg(const BinaryTree& tree, const SvgOptions& options = {});

/// Writes `svg` to `path`.
Status SaveSvg(const std::string& svg, const std::string& path);

}  // namespace pasa

#endif  // PASA_IO_SVG_H_
