#include "io/svg.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <unordered_map>

namespace pasa {
namespace {

// Maps map coordinates to SVG pixel space (y flipped: SVG grows downward).
class Projection {
 public:
  Projection(const Rect& viewport, double width_px)
      : viewport_(viewport),
        scale_(width_px / static_cast<double>(viewport.width())) {}

  double X(double x) const {
    return (x - static_cast<double>(viewport_.x1)) * scale_;
  }
  double Y(double y) const {
    return (static_cast<double>(viewport_.y2) - y) * scale_;
  }
  double Length(double v) const { return v * scale_; }
  double width_px() const { return Length(viewport_.width()); }
  double height_px() const { return Length(viewport_.height()); }

 private:
  Rect viewport_;
  double scale_;
};

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

void AppendRect(const Projection& proj, const Rect& r,
                const std::string& style, std::string* out) {
  *out += "<rect x=\"" + Num(proj.X(r.x1)) + "\" y=\"" + Num(proj.Y(r.y2)) +
          "\" width=\"" + Num(proj.Length(r.width())) + "\" height=\"" +
          Num(proj.Length(r.height())) + "\" " + style + "/>\n";
}

std::string Header(const Projection& proj) {
  return "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
         Num(proj.width_px()) + "\" height=\"" + Num(proj.height_px()) +
         "\" viewBox=\"0 0 " + Num(proj.width_px()) + " " +
         Num(proj.height_px()) + "\">\n<rect width=\"100%\" height=\"100%\" "
         "fill=\"#ffffff\"/>\n";
}

}  // namespace

std::string RenderCloakingSvg(const LocationDatabase& db,
                              const CloakingTable& table, const Rect& viewport,
                              const SvgOptions& options) {
  const Projection proj(viewport, options.width_px);
  std::string out = Header(proj);

  // One rectangle per distinct cloak; larger groups get deeper fill.
  std::unordered_map<std::string, size_t> group_sizes;
  for (size_t i = 0; i < table.size(); ++i) {
    ++group_sizes[table.cloak(i).ToString()];
  }
  size_t max_group = 1;
  for (const auto& [key, size] : group_sizes) {
    max_group = std::max(max_group, size);
  }
  std::unordered_map<std::string, bool> drawn;
  for (size_t i = 0; i < table.size(); ++i) {
    const Rect& cloak = table.cloak(i);
    const std::string key = cloak.ToString();
    if (drawn[key]) continue;
    drawn[key] = true;
    const double opacity =
        0.08 + 0.30 * static_cast<double>(group_sizes[key]) /
                   static_cast<double>(max_group);
    AppendRect(proj, cloak,
               "fill=\"#1f77b4\" fill-opacity=\"" + Num(opacity) +
                   "\" stroke=\"#1f77b4\" stroke-width=\"0.6\"",
               &out);
  }

  if (options.draw_users) {
    for (const auto& row : db.rows()) {
      out += "<circle cx=\"" +
             Num(proj.X(static_cast<double>(row.location.x) + 0.5)) +
             "\" cy=\"" +
             Num(proj.Y(static_cast<double>(row.location.y) + 0.5)) +
             "\" r=\"" + Num(options.user_radius_px) +
             "\" fill=\"#d62728\"/>\n";
    }
  }
  out += "</svg>\n";
  return out;
}

std::string RenderTreeSvg(const BinaryTree& tree, const SvgOptions& options) {
  const Rect viewport = tree.node(BinaryTree::kRootId).region;
  const Projection proj(viewport, options.width_px);
  std::string out = Header(proj);
  const int height = std::max(1, tree.Height());
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    const BinaryTree::Node& n = tree.node(static_cast<int32_t>(i));
    if (!n.live || !n.IsLeaf()) continue;
    // Brighter = deeper, like the paper's Figure 3(a) gray scale.
    const int shade =
        64 + static_cast<int>(170.0 * n.depth / static_cast<double>(height));
    char fill[32];
    std::snprintf(fill, sizeof(fill), "#%02x%02x%02x", shade, shade, shade);
    AppendRect(proj, n.region,
               "fill=\"" + std::string(fill) +
                   "\" stroke=\"#333333\" stroke-width=\"0.3\"",
               &out);
  }
  out += "</svg>\n";
  return out;
}

Status SaveSvg(const std::string& svg, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write " + path);
  out << svg;
  return out.good() ? Status::Ok() : Status::Internal("short write");
}

}  // namespace pasa
