#include "io/csv.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace pasa {
namespace {

// Splits a CSV line into trimmed fields (no quoting: the formats here are
// purely numeric plus a header).
std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (const char c : line) {
    if (c == ',') {
      fields.push_back(current);
      current.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      current.push_back(c);
    }
  }
  fields.push_back(current);
  return fields;
}

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

// Iterates data lines of `text`, skipping blanks, comments and a header.
// Calls `handle(line_number, fields)`; stops early on error.
Status ForEachRow(const std::string& text, size_t expected_fields,
                  const std::function<Status(size_t,
                                             const std::vector<std::string>&)>&
                      handle) {
  std::istringstream in(text);
  std::string line;
  size_t line_number = 0;
  bool first_data_line = true;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> fields = SplitFields(line);
    if (first_data_line) {
      first_data_line = false;
      int64_t probe = 0;
      if (!fields.empty() && !ParseInt(fields[0], &probe)) {
        continue;  // header row
      }
    }
    if (fields.size() != expected_fields) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": expected " +
          std::to_string(expected_fields) + " fields, got " +
          std::to_string(fields.size()));
    }
    Status s = handle(line_number, fields);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace

Result<LocationDatabase> ParseLocationDatabaseCsv(const std::string& text) {
  LocationDatabase db;
  Status s = ForEachRow(
      text, 3, [&](size_t line, const std::vector<std::string>& fields) {
        int64_t user = 0, x = 0, y = 0;
        if (!ParseInt(fields[0], &user) || !ParseInt(fields[1], &x) ||
            !ParseInt(fields[2], &y)) {
          return Status::InvalidArgument("line " + std::to_string(line) +
                                         ": malformed integer");
        }
        db.Add(user, Point{x, y});
        return Status::Ok();
      });
  if (!s.ok()) return s;
  return db;
}

std::string FormatLocationDatabaseCsv(const LocationDatabase& db) {
  std::string out = "userid,locx,locy\n";
  for (const UserLocation& row : db.rows()) {
    out += std::to_string(row.user);
    out += ',';
    out += std::to_string(row.location.x);
    out += ',';
    out += std::to_string(row.location.y);
    out += '\n';
  }
  return out;
}

std::string FormatCloakingCsv(const LocationDatabase& db,
                              const CloakingTable& table) {
  std::string out = "userid,x1,y1,x2,y2\n";
  for (size_t i = 0; i < db.size(); ++i) {
    const Rect& r = table.cloak(i);
    out += std::to_string(db.row(i).user);
    for (const Coord v : {r.x1, r.y1, r.x2, r.y2}) {
      out += ',';
      out += std::to_string(v);
    }
    out += '\n';
  }
  return out;
}

Result<CloakingTable> ParseCloakingCsv(const std::string& text,
                                       const LocationDatabase& db) {
  std::unordered_map<UserId, size_t> row_of;
  row_of.reserve(db.size());
  for (size_t i = 0; i < db.size(); ++i) row_of[db.row(i).user] = i;

  CloakingTable table(db.size());
  std::vector<bool> seen(db.size(), false);
  Status s = ForEachRow(
      text, 5, [&](size_t line, const std::vector<std::string>& fields) {
        int64_t values[5];
        for (int f = 0; f < 5; ++f) {
          if (!ParseInt(fields[f], &values[f])) {
            return Status::InvalidArgument("line " + std::to_string(line) +
                                           ": malformed integer");
          }
        }
        const auto it = row_of.find(values[0]);
        if (it == row_of.end()) {
          return Status::InvalidArgument(
              "line " + std::to_string(line) + ": unknown user " +
              std::to_string(values[0]));
        }
        table.Assign(it->second,
                     Rect{values[1], values[2], values[3], values[4]});
        seen[it->second] = true;
        return Status::Ok();
      });
  if (!s.ok()) return s;
  for (size_t i = 0; i < db.size(); ++i) {
    if (!seen[i]) {
      return Status::InvalidArgument("no cloak for user " +
                                     std::to_string(db.row(i).user));
    }
  }
  return table;
}

Result<LocationDatabase> LoadLocationDatabaseCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseLocationDatabaseCsv(buffer.str());
}

namespace {
Status WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write " + path);
  out << contents;
  return out.good() ? Status::Ok()
                    : Status::Internal("short write to " + path);
}
}  // namespace

Status SaveLocationDatabaseCsv(const LocationDatabase& db,
                               const std::string& path) {
  return WriteFile(path, FormatLocationDatabaseCsv(db));
}

Status SaveCloakingCsv(const LocationDatabase& db, const CloakingTable& table,
                       const std::string& path) {
  return WriteFile(path, FormatCloakingCsv(db, table));
}

Result<CloakingTable> LoadCloakingCsv(const std::string& path,
                                      const LocationDatabase& db) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCloakingCsv(buffer.str(), db);
}

}  // namespace pasa
