#ifndef PASA_IO_CSV_H_
#define PASA_IO_CSV_H_

#include <string>

#include "common/status.h"
#include "model/cloaking.h"
#include "model/location_database.h"

namespace pasa {

/// CSV exchange formats, so downstream users can run the anonymizer on
/// their own traces and feed the cloakings to other tools.
///
/// Location databases:   userid,locx,locy            (header optional)
/// Cloakings:            userid,x1,y1,x2,y2          (half-open rects)

/// Parses a location database from CSV text. Blank lines and lines starting
/// with '#' are skipped; a leading header row is detected and skipped.
/// Returns InvalidArgument with a line number on malformed input.
Result<LocationDatabase> ParseLocationDatabaseCsv(const std::string& text);

/// Serializes a snapshot (with header).
std::string FormatLocationDatabaseCsv(const LocationDatabase& db);

/// Serializes a cloaking for a snapshot (with header).
std::string FormatCloakingCsv(const LocationDatabase& db,
                              const CloakingTable& table);

/// Parses a cloaking, matched to `db` row order by userid. Fails if a user
/// is missing or unknown.
Result<CloakingTable> ParseCloakingCsv(const std::string& text,
                                       const LocationDatabase& db);

/// File helpers.
Result<LocationDatabase> LoadLocationDatabaseCsv(const std::string& path);
Status SaveLocationDatabaseCsv(const LocationDatabase& db,
                               const std::string& path);
Status SaveCloakingCsv(const LocationDatabase& db, const CloakingTable& table,
                       const std::string& path);
Result<CloakingTable> LoadCloakingCsv(const std::string& path,
                                      const LocationDatabase& db);

}  // namespace pasa

#endif  // PASA_IO_CSV_H_
