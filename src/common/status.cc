#include "common/status.h"

namespace pasa {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInfeasible:
      return "INFEASIBLE";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace pasa
