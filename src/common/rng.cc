#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace pasa {

uint64_t Rng::Next() {
  // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, tiny state.
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling over the largest multiple of `bound` that fits.
  const uint64_t threshold = -bound % bound;  // == 2^64 mod bound
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const uint64_t r = (span == 0) ? Next() : NextBounded(span);
  return lo + static_cast<int64_t>(r);
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  // Box-Muller transform; guard against log(0).
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  spare_gaussian_ = radius * std::sin(angle);
  have_spare_gaussian_ = true;
  return radius * std::cos(angle);
}

std::vector<uint32_t> Rng::SampleIndices(uint32_t population, uint32_t count) {
  assert(count <= population);
  // Floyd's algorithm: O(count) expected inserts, no O(population) shuffle.
  std::vector<uint32_t> chosen;
  chosen.reserve(count);
  // Track membership with a sorted-insert-free approach: for the sizes used
  // here (count up to ~10% of millions) a hash-free bitmapless variant would
  // need a set; use the classic partial Fisher-Yates when count is large
  // relative to population, Floyd otherwise.
  if (count * 4 >= population) {
    std::vector<uint32_t> all(population);
    for (uint32_t i = 0; i < population; ++i) all[i] = i;
    for (uint32_t i = 0; i < count; ++i) {
      const uint32_t j =
          i + static_cast<uint32_t>(NextBounded(population - i));
      std::swap(all[i], all[j]);
    }
    all.resize(count);
    return all;
  }
  std::vector<bool> used(population, false);
  for (uint32_t i = population - count; i < population; ++i) {
    const uint32_t t = static_cast<uint32_t>(NextBounded(i + 1));
    if (!used[t]) {
      used[t] = true;
      chosen.push_back(t);
    } else {
      used[i] = true;
      chosen.push_back(i);
    }
  }
  return chosen;
}

}  // namespace pasa
