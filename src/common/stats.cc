#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace pasa {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  if (p >= 100.0) return values.back();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

std::string WithThousandsSeparators(int64_t x) {
  const bool negative = x < 0;
  uint64_t v = negative ? -static_cast<uint64_t>(x) : static_cast<uint64_t>(x);
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int since_comma = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since_comma == 3) {
      out.push_back(',');
      since_comma = 0;
    }
    out.push_back(*it);
    ++since_comma;
  }
  if (negative) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace pasa
