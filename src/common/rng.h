#ifndef PASA_COMMON_RNG_H_
#define PASA_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace pasa {

/// Deterministic pseudo-random number generator (SplitMix64 core).
///
/// Every stochastic component of the library (workload generation, movement
/// models, sampling) takes an explicit `Rng` so that experiments and tests are
/// bit-for-bit reproducible from a seed, independent of the standard library's
/// unspecified distributions.
class Rng {
 public:
  /// Seeds the generator. Two `Rng` instances with the same seed produce the
  /// same stream on every platform.
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  /// Uses rejection sampling, so the result is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns a sample from the standard normal distribution (Box-Muller).
  double NextGaussian();

  /// Returns a uniform random sample of `count` distinct indices drawn from
  /// [0, population). Requires count <= population. Order is unspecified but
  /// deterministic for a given state.
  std::vector<uint32_t> SampleIndices(uint32_t population, uint32_t count);

 private:
  uint64_t state_;
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace pasa

#endif  // PASA_COMMON_RNG_H_
