#ifndef PASA_COMMON_STATS_H_
#define PASA_COMMON_STATS_H_

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace pasa {

/// Streaming summary statistics over a sequence of doubles (Welford online
/// mean/variance plus min/max). Used by benchmarks and experiment harnesses.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  size_t count() const { return count_; }
  /// Smallest observation so far; NaN before the first Add (a well-defined
  /// "no data" sentinel — callers must not read 0.0 into an empty summary).
  double min() const { return min_; }
  /// Largest observation so far; NaN before the first Add.
  double max() const { return max_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double min_ = std::numeric_limits<double>::quiet_NaN();
  double max_ = std::numeric_limits<double>::quiet_NaN();
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the p-th percentile (0 <= p <= 100) of `values` using linear
/// interpolation between closest ranks. `values` need not be sorted; an
/// internal copy is sorted. Returns 0 for an empty input.
double Percentile(std::vector<double> values, double p);

/// Formats `x` with engineering-style thousands separators ("1,234,567"),
/// for readable experiment tables.
std::string WithThousandsSeparators(int64_t x);

}  // namespace pasa

#endif  // PASA_COMMON_STATS_H_
