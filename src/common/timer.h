#ifndef PASA_COMMON_TIMER_H_
#define PASA_COMMON_TIMER_H_

#include <chrono>

namespace pasa {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class WallTimer {
 public:
  /// Starts (or restarts) the stopwatch.
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pasa

#endif  // PASA_COMMON_TIMER_H_
