#include "common/table.h"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace pasa {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Cell(int64_t v) { return std::to_string(v); }

std::string TablePrinter::Cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace pasa
