#ifndef PASA_COMMON_TABLE_H_
#define PASA_COMMON_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pasa {

/// Fixed-width text table used by the experiment harnesses to print the rows
/// and series the paper's figures report.
///
///   TablePrinter t({"|D|", "time (s)", "cost"});
///   t.AddRow({"100,000", "0.12", "1.9e9"});
///   t.Print();
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; the number of cells must equal the number of headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string Cell(int64_t v);
  static std::string Cell(double v, int precision = 3);

  /// Renders the table (headers, separator, rows) to a string.
  std::string ToString() const;

  /// Prints the table to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pasa

#endif  // PASA_COMMON_TABLE_H_
