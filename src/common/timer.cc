#include "common/timer.h"

// WallTimer is header-only; this translation unit exists so the target has a
// stable archive member and the header stays cheap to include.
