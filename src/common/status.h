#ifndef PASA_COMMON_STATUS_H_
#define PASA_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace pasa {

/// Error category carried by a `Status`. Mirrors the subset of conditions the
/// library can actually report; keep this list short and meaningful.
enum class StatusCode {
  kOk = 0,
  /// The request cannot be satisfied for any input of this shape, e.g. fewer
  /// than k locations in the database so no k-anonymous policy exists.
  kInfeasible,
  /// A caller-supplied argument is out of range or malformed.
  kInvalidArgument,
  /// An internal invariant was violated; indicates a library bug.
  kInternal,
  /// The entity looked up (user, node, jurisdiction) does not exist.
  kNotFound,
  /// A dependency (the LBS provider, a jurisdiction server) is temporarily
  /// unable to serve; retrying later may succeed.
  kUnavailable,
  /// The operation did not complete within its per-request deadline.
  kDeadlineExceeded,
};

/// Returns a short stable name for `code` ("OK", "INFEASIBLE", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight error-carrying result, used instead of exceptions on all
/// public API boundaries (the library is exception-free by design).
///
/// Typical use:
///   Status s = anonymizer.Build(db);
///   if (!s.ok()) { /* inspect s.code(), s.message() */ }
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with `code` and a human-readable `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per non-OK code.
  static Status Ok() { return Status(); }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "CODE: message" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type `T` or an error `Status`. Accessing the value
/// of an error result aborts in debug builds (assert) and is undefined
/// otherwise, matching the usual StatusOr contract.
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return some_value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error status: allows `return Status::Infeasible(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ is set.
};

}  // namespace pasa

#endif  // PASA_COMMON_STATUS_H_
