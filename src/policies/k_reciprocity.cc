#include "policies/k_reciprocity.h"

#include <algorithm>
#include <cmath>

namespace pasa {

Result<std::vector<Circle>> NearestStationCircles::Cloak(
    const LocationDatabase& db, int k) const {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (stations_.empty()) {
    return Status::InvalidArgument("no base stations configured");
  }
  if (db.size() < static_cast<size_t>(k)) {
    return Status::Infeasible("fewer than k users in the snapshot");
  }

  std::vector<Circle> cloaks;
  cloaks.reserve(db.size());
  for (size_t row = 0; row < db.size(); ++row) {
    const Point& p = db.row(row).location;
    // Nearest station (ties broken by station index).
    size_t best_station = 0;
    int64_t best_d2 = SquaredDistance(p, stations_[0]);
    for (size_t s = 1; s < stations_.size(); ++s) {
      const int64_t d2 = SquaredDistance(p, stations_[s]);
      if (d2 < best_d2) {
        best_d2 = d2;
        best_station = s;
      }
    }
    const Point center = stations_[best_station];
    // Smallest radius enclosing >= k users: the k-th smallest distance from
    // the station to any user. Always >= the requester's own distance, so
    // the cloak masks her.
    std::vector<int64_t> d2s;
    d2s.reserve(db.size());
    for (size_t r = 0; r < db.size(); ++r) {
      d2s.push_back(SquaredDistance(db.row(r).location, center));
    }
    std::nth_element(d2s.begin(), d2s.begin() + (k - 1), d2s.end());
    const double radius = std::max(
        std::sqrt(static_cast<double>(d2s[k - 1])),
        std::sqrt(static_cast<double>(SquaredDistance(p, center))));
    cloaks.push_back(Circle{static_cast<double>(center.x),
                            static_cast<double>(center.y), radius});
  }
  return cloaks;
}

bool NearestStationCircles::SatisfiesKReciprocity(
    const LocationDatabase& db, const std::vector<Circle>& cloaks, int k) {
  for (size_t x = 0; x < db.size(); ++x) {
    size_t reciprocal = 0;
    for (size_t y = 0; y < db.size(); ++y) {
      if (y == x) continue;
      if (cloaks[x].Contains(db.row(y).location) &&
          cloaks[y].Contains(db.row(x).location)) {
        ++reciprocal;
      }
    }
    if (reciprocal + 1 < static_cast<size_t>(k)) return false;
  }
  return true;
}

}  // namespace pasa
