#include "policies/casper.h"

namespace pasa {

Result<CloakingTable> CasperPolicy::Cloak(const LocationDatabase& db,
                                          int k) const {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  Result<MortonIndex> index = MortonIndex::Build(db, extent_);
  if (!index.ok()) return index.status();
  if (db.size() < static_cast<size_t>(k)) {
    return Status::Infeasible("fewer than k users in the snapshot");
  }
  const size_t want = static_cast<size_t>(k);

  CloakingTable table(db.size());
  for (size_t row = 0; row < db.size(); ++row) {
    const Point& p = db.row(row).location;
    // Deepest qualifying quadrant (binary search over the ancestor chain).
    int lo = 0;
    int hi = index->max_depth();
    while (lo < hi) {
      const int mid = (lo + hi + 1) / 2;
      if (index->CountQuadrant(index->PathForPoint(p, mid)) >= want) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    const QuadPath quadrant = index->PathForPoint(p, lo);
    const Rect region = index->RegionOf(quadrant);

    // Try the two semi-quadrants of the qualifying quadrant that contain
    // the user; both have half its area, so either qualifying one improves
    // utility. Prefer the less crowded qualifying half (Casper picks the
    // better of the vertical/horizontal combinations).
    if (lo < index->max_depth()) {
      const bool west = p.x < region.x1 + region.width() / 2;
      const bool south = p.y < region.y1 + region.height() / 2;
      const size_t vertical = index->CountVerticalHalf(quadrant, west);
      const size_t horizontal = index->CountHorizontalHalf(quadrant, south);
      if (vertical >= want &&
          (vertical <= horizontal || horizontal < want)) {
        table.Assign(row, index->VerticalHalfRegion(quadrant, west));
        continue;
      }
      if (horizontal >= want) {
        table.Assign(row, index->HorizontalHalfRegion(quadrant, south));
        continue;
      }
    }
    table.Assign(row, region);
  }
  return table;
}

}  // namespace pasa
