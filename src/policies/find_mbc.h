#ifndef PASA_POLICIES_FIND_MBC_H_
#define PASA_POLICIES_FIND_MBC_H_

#include <vector>

#include "common/status.h"
#include "geo/circle.h"
#include "model/location_database.h"

namespace pasa {

/// A circular cloaking materialized over one snapshot: `cloaks[row]` is the
/// circle assigned to that user's requests. Counterpart of CloakingTable for
/// the circular-cloak baselines and the Theorem-1 problem variant.
struct CircularCloaking {
  std::vector<Circle> cloaks;

  double TotalArea() const;
  double AverageArea() const;
  /// Every user's circle contains their location.
  bool IsMasking(const LocationDatabase& db) const;
  /// Smallest nonempty group of users sharing an identical circle — the
  /// policy-aware attacker's possible-sender count.
  size_t MinGroupSize() const;
};

/// FindMBC-style baseline [27]: each user is cloaked by the minimum bounding
/// circle of herself and her k-1 nearest neighbours. A circular k-inside
/// policy: >= k users inside every cloak (policy-unaware k-anonymous), but
/// in general each user's circle is unique, so a policy-aware attacker
/// identifies senders outright — the motivation for Theorem 1's optimal
/// policy-aware circular variant.
Result<CircularCloaking> FindMbcCloaking(const LocationDatabase& db, int k);

/// The k nearest snapshot rows to `query` (including the query row itself if
/// it is a row's location), by Euclidean distance, ties broken by row index.
/// Grid-accelerated; exposed for reuse and tests.
std::vector<size_t> KNearestRows(const LocationDatabase& db,
                                 const Point& query, size_t k);

}  // namespace pasa

#endif  // PASA_POLICIES_FIND_MBC_H_
