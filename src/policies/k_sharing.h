#ifndef PASA_POLICIES_K_SHARING_H_
#define PASA_POLICIES_K_SHARING_H_

#include <vector>

#include "common/status.h"
#include "model/cloaking.h"

namespace pasa {

/// Arrival-order-sensitive k-sharing grouping in the style of [11]
/// (Chow-Mokbel), reproduced to demonstrate the Section VII / Figure 6(a)
/// breach: processing requests in arrival order, each not-yet-grouped
/// requester is grouped with its k-1 nearest not-yet-grouped users, and all
/// group members share the group's bounding-box cloak. The k-sharing
/// property holds (k-1 others have the same cloak), yet a policy-aware
/// attacker who knows the algorithm can identify the first sender.
class KSharingPolicy {
 public:
  explicit KSharingPolicy(int k) : k_(k) {}

  /// Cloaks the requesters in `arrival_order` (and the users recruited into
  /// their groups), mirroring [11]'s on-demand grouping: users who never
  /// request are NOT part of any k-sharing group and keep a degenerate
  /// own-cell cloak in the returned table (they sent nothing, so they are
  /// not observations).
  Result<CloakingTable> CloakInOrder(
      const LocationDatabase& db,
      const std::vector<size_t>& arrival_order) const;

  /// The Figure 6(a) attack: the rows that, had they issued the FIRST
  /// request, would have produced `observed_cloak` for it. When this set is
  /// smaller than k the policy-aware attacker has breached k-anonymity even
  /// though every cloak satisfies k-sharing.
  Result<std::vector<size_t>> PossibleFirstSenders(
      const LocationDatabase& db, const Rect& observed_cloak) const;

 private:
  int k_;
};

}  // namespace pasa

#endif  // PASA_POLICIES_K_SHARING_H_
