#include "policies/find_mbc.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "geo/mbc.h"

namespace pasa {
namespace {

// Uniform bucket grid for k-nearest-neighbour queries: points are hashed
// into square cells, queries expand rings of cells until the k-th candidate
// distance is certified.
class KnnGrid {
 public:
  explicit KnnGrid(const LocationDatabase& db) : db_(db) {
    if (db.empty()) {
      cell_ = 1;
      return;
    }
    const Rect box = db.BoundingBox();
    origin_x_ = box.x1;
    origin_y_ = box.y1;
    // Aim for a handful of points per cell on average.
    const double span =
        std::max<double>(1.0, std::max(box.width(), box.height()));
    const double target_cells = std::sqrt(static_cast<double>(db.size()));
    cell_ = std::max<Coord>(1, static_cast<Coord>(span / target_cells));
    for (size_t i = 0; i < db.size(); ++i) {
      buckets_[KeyFor(db.row(i).location)].push_back(i);
    }
  }

  std::vector<size_t> KNearest(const Point& query, size_t k) const {
    std::vector<std::pair<int64_t, size_t>> found;  // (dist^2, row)
    const int64_t qcx = CellX(query.x);
    const int64_t qcy = CellY(query.y);
    for (int64_t ring = 0;; ++ring) {
      // Visit the cells on the ring boundary.
      for (int64_t dx = -ring; dx <= ring; ++dx) {
        for (int64_t dy = -ring; dy <= ring; ++dy) {
          if (std::max(std::llabs(dx), std::llabs(dy)) != ring) continue;
          const auto it = buckets_.find(Key(qcx + dx, qcy + dy));
          if (it == buckets_.end()) continue;
          for (const size_t row : it->second) {
            found.emplace_back(SquaredDistance(db_.row(row).location, query),
                               row);
          }
        }
      }
      if (found.size() >= k) {
        std::sort(found.begin(), found.end());
        // Certified once the k-th distance fits inside the scanned rings:
        // anything outside is at least ring*cell away.
        const double safe = static_cast<double>(ring) * cell_;
        if (static_cast<double>(found[k - 1].first) <= safe * safe ||
            found.size() == db_.size()) {
          break;
        }
      }
      if (found.size() == db_.size()) {
        std::sort(found.begin(), found.end());
        break;
      }
    }
    std::vector<size_t> rows;
    rows.reserve(k);
    for (size_t i = 0; i < std::min(k, found.size()); ++i) {
      rows.push_back(found[i].second);
    }
    return rows;
  }

 private:
  int64_t CellX(Coord x) const { return (x - origin_x_) / cell_; }
  int64_t CellY(Coord y) const { return (y - origin_y_) / cell_; }
  static uint64_t Key(int64_t cx, int64_t cy) {
    return (static_cast<uint64_t>(cx) << 32) ^
           static_cast<uint64_t>(static_cast<uint32_t>(cy));
  }
  uint64_t KeyFor(const Point& p) const { return Key(CellX(p.x), CellY(p.y)); }

  const LocationDatabase& db_;
  Coord origin_x_ = 0;
  Coord origin_y_ = 0;
  Coord cell_ = 1;
  std::unordered_map<uint64_t, std::vector<size_t>> buckets_;
};

}  // namespace

double CircularCloaking::TotalArea() const {
  double total = 0.0;
  for (const Circle& c : cloaks) total += c.Area();
  return total;
}

double CircularCloaking::AverageArea() const {
  if (cloaks.empty()) return 0.0;
  return TotalArea() / static_cast<double>(cloaks.size());
}

bool CircularCloaking::IsMasking(const LocationDatabase& db) const {
  if (db.size() != cloaks.size()) return false;
  for (size_t i = 0; i < cloaks.size(); ++i) {
    if (!cloaks[i].Contains(db.row(i).location)) return false;
  }
  return true;
}

size_t CircularCloaking::MinGroupSize() const {
  std::unordered_map<std::string, size_t> groups;
  for (const Circle& c : cloaks) ++groups[c.ToString()];
  size_t best = 0;
  for (const auto& [key, count] : groups) {
    if (best == 0 || count < best) best = count;
  }
  return best;
}

std::vector<size_t> KNearestRows(const LocationDatabase& db,
                                 const Point& query, size_t k) {
  return KnnGrid(db).KNearest(query, k);
}

Result<CircularCloaking> FindMbcCloaking(const LocationDatabase& db, int k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (db.size() < static_cast<size_t>(k)) {
    return Status::Infeasible("fewer than k users in the snapshot");
  }
  const KnnGrid grid(db);
  CircularCloaking out;
  out.cloaks.reserve(db.size());
  for (size_t row = 0; row < db.size(); ++row) {
    const std::vector<size_t> rows =
        grid.KNearest(db.row(row).location, static_cast<size_t>(k));
    std::vector<Point> points;
    points.reserve(rows.size() + 1);
    points.push_back(db.row(row).location);  // ensure masking even on ties
    for (const size_t r : rows) points.push_back(db.row(r).location);
    out.cloaks.push_back(MinimumBoundingCircle(points));
  }
  return out;
}

}  // namespace pasa
