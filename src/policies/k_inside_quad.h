#ifndef PASA_POLICIES_K_INSIDE_QUAD_H_
#define PASA_POLICIES_K_INSIDE_QUAD_H_

#include <string>

#include "index/morton.h"
#include "model/cloaking.h"

namespace pasa {

/// PUQ — the policy-unaware quad-tree baseline of [16] (Gruteser-Grunwald):
/// each user is cloaked by the smallest quadrant of the static quad-tree
/// partition that contains her and at least k-1 other users. A k-inside
/// policy: sender k-anonymous against policy-unaware attackers (Prop. 2) but
/// not against policy-aware ones (Prop. 3).
class PolicyUnawareQuad : public BulkPolicyAlgorithm {
 public:
  explicit PolicyUnawareQuad(MapExtent extent) : extent_(extent) {}

  std::string name() const override { return "PUQ"; }
  Result<CloakingTable> Cloak(const LocationDatabase& db,
                              int k) const override;

 private:
  MapExtent extent_;
};

}  // namespace pasa

#endif  // PASA_POLICIES_K_INSIDE_QUAD_H_
