#ifndef PASA_POLICIES_CASPER_H_
#define PASA_POLICIES_CASPER_H_

#include <string>

#include "index/morton.h"
#include "model/cloaking.h"

namespace pasa {

/// Prototype of Casper's basic cloaking algorithm [23] (the paper's own
/// reimplementation choice, Section VI-B): find the smallest quadrant of the
/// user's ancestor chain holding >= k users, then try to shrink it to one of
/// its two semi-quadrants (vertical or horizontal half) containing the user.
/// Unlike the fixed vertical-first binary tree, Casper may pick either
/// orientation, which is why it attains the smallest k-inside cloaks in
/// Figure 5(a). The adaptive variant of [23] changes only running time, not
/// cloak areas, and is deliberately not reproduced.
class CasperPolicy : public BulkPolicyAlgorithm {
 public:
  explicit CasperPolicy(MapExtent extent) : extent_(extent) {}

  std::string name() const override { return "Casper"; }
  Result<CloakingTable> Cloak(const LocationDatabase& db,
                              int k) const override;

 private:
  MapExtent extent_;
};

}  // namespace pasa

#endif  // PASA_POLICIES_CASPER_H_
