#include "policies/k_inside_binary.h"

namespace pasa {

Result<CloakingTable> PolicyUnawareBinary::Cloak(const LocationDatabase& db,
                                                 int k) const {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  Result<MortonIndex> index = MortonIndex::Build(db, extent_);
  if (!index.ok()) return index.status();
  if (db.size() < static_cast<size_t>(k)) {
    return Status::Infeasible("fewer than k users in the snapshot");
  }
  const size_t want = static_cast<size_t>(k);

  CloakingTable table(db.size());
  for (size_t row = 0; row < db.size(); ++row) {
    const Point& p = db.row(row).location;
    // Descend the alternating square / vertical-semi-quadrant chain while
    // the child containing p still holds >= k users.
    Rect best = index->extent().ToRect();
    for (int depth = 0; depth <= index->max_depth(); ++depth) {
      const QuadPath square = index->PathForPoint(p, depth);
      if (depth > 0 && index->CountQuadrant(square) < want) break;
      if (depth > 0) best = index->RegionOf(square);
      if (depth == index->max_depth()) break;
      // The vertical semi-quadrant of this square containing p.
      const Rect region = index->RegionOf(square);
      const bool west = p.x < region.x1 + region.width() / 2;
      if (index->CountVerticalHalf(square, west) < want) break;
      best = index->VerticalHalfRegion(square, west);
    }
    table.Assign(row, best);
  }
  return table;
}

}  // namespace pasa
