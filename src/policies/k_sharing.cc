#include "policies/k_sharing.h"

#include <algorithm>

#include "policies/find_mbc.h"

namespace pasa {
namespace {

// Bounding box (as a half-open rect of whole cells) of a set of rows.
Rect GroupBox(const LocationDatabase& db, const std::vector<size_t>& rows) {
  Rect box = CellAt(db.row(rows.front()).location);
  for (const size_t r : rows) box = Union(box, CellAt(db.row(r).location));
  return box;
}

}  // namespace

Result<CloakingTable> KSharingPolicy::CloakInOrder(
    const LocationDatabase& db,
    const std::vector<size_t>& arrival_order) const {
  if (k_ < 1) return Status::InvalidArgument("k must be >= 1");
  if (db.size() < static_cast<size_t>(k_)) {
    return Status::Infeasible("fewer than k users in the snapshot");
  }
  for (const size_t r : arrival_order) {
    if (r >= db.size()) return Status::InvalidArgument("row out of range");
  }

  CloakingTable table(db.size());
  // Non-requesters default to their own cell; overwritten if recruited.
  for (size_t r = 0; r < db.size(); ++r) {
    table.Assign(r, CellAt(db.row(r).location));
  }
  std::vector<bool> grouped(db.size(), false);
  for (const size_t requester : arrival_order) {
    if (grouped[requester]) continue;
    // Group the requester with its k-1 nearest not-yet-grouped users.
    std::vector<std::pair<int64_t, size_t>> ungrouped;
    for (size_t r = 0; r < db.size(); ++r) {
      if (grouped[r] || r == requester) continue;
      ungrouped.emplace_back(
          SquaredDistance(db.row(r).location, db.row(requester).location), r);
    }
    std::sort(ungrouped.begin(), ungrouped.end());
    std::vector<size_t> group = {requester};
    for (size_t i = 0; i + 1 < static_cast<size_t>(k_) && i < ungrouped.size();
         ++i) {
      group.push_back(ungrouped[i].second);
    }
    const Rect box = GroupBox(db, group);
    for (const size_t member : group) {
      table.Assign(member, box);
      grouped[member] = true;
    }
  }
  return table;
}

Result<std::vector<size_t>> KSharingPolicy::PossibleFirstSenders(
    const LocationDatabase& db, const Rect& observed_cloak) const {
  std::vector<size_t> possible;
  for (size_t first = 0; first < db.size(); ++first) {
    Result<CloakingTable> table = CloakInOrder(db, {first});
    if (!table.ok()) return table.status();
    if (table->cloak(first) == observed_cloak) possible.push_back(first);
  }
  return possible;
}

}  // namespace pasa
