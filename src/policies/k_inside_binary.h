#ifndef PASA_POLICIES_K_INSIDE_BINARY_H_
#define PASA_POLICIES_K_INSIDE_BINARY_H_

#include <string>

#include "index/morton.h"
#include "model/cloaking.h"

namespace pasa {

/// PUB — the optimum policy-unaware binary-tree baseline (Section VI-B):
/// the k-inside approach of [16] applied to the semi-quadrant binary tree,
/// i.e. each user gets the deepest node of her square/vertical-semi-quadrant
/// ancestor chain containing at least k users. Uses the same cloak family as
/// the policy-aware optimum, so comparing the two isolates the price of the
/// stronger guarantee.
class PolicyUnawareBinary : public BulkPolicyAlgorithm {
 public:
  explicit PolicyUnawareBinary(MapExtent extent) : extent_(extent) {}

  std::string name() const override { return "PUB"; }
  Result<CloakingTable> Cloak(const LocationDatabase& db,
                              int k) const override;

 private:
  MapExtent extent_;
};

}  // namespace pasa

#endif  // PASA_POLICIES_K_INSIDE_BINARY_H_
