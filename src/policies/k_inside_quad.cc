#include "policies/k_inside_quad.h"

namespace pasa {

Result<CloakingTable> PolicyUnawareQuad::Cloak(const LocationDatabase& db,
                                               int k) const {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  Result<MortonIndex> index = MortonIndex::Build(db, extent_);
  if (!index.ok()) return index.status();
  if (db.size() < static_cast<size_t>(k)) {
    return Status::Infeasible("fewer than k users in the snapshot");
  }

  CloakingTable table(db.size());
  for (size_t row = 0; row < db.size(); ++row) {
    const Point& p = db.row(row).location;
    // Quadrant occupancy is monotone along the ancestor chain, so binary
    // search for the deepest quadrant containing >= k users.
    int lo = 0;                    // known >= k (the whole map)
    int hi = index->max_depth();   // candidates
    while (lo < hi) {
      const int mid = (lo + hi + 1) / 2;
      if (index->CountQuadrant(index->PathForPoint(p, mid)) >=
          static_cast<size_t>(k)) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    table.Assign(row, index->RegionOf(index->PathForPoint(p, lo)));
  }
  return table;
}

}  // namespace pasa
