#ifndef PASA_POLICIES_K_RECIPROCITY_H_
#define PASA_POLICIES_K_RECIPROCITY_H_

#include <vector>

#include "common/status.h"
#include "geo/circle.h"
#include "model/location_database.h"

namespace pasa {

/// Nearest-base-station circular cloaking, reproduced to demonstrate the
/// Section VII / Figure 6(b) breach: each user's cloak is a circle centered
/// at her nearest base station, with the smallest radius enclosing at least
/// k users. Such cloakings can satisfy k-reciprocity and are k-inside, yet a
/// policy-aware attacker who knows the station map can identify senders
/// (each station's circle is issued only by users nearest to that station).
class NearestStationCircles {
 public:
  explicit NearestStationCircles(std::vector<Point> stations)
      : stations_(std::move(stations)) {}

  const std::vector<Point>& stations() const { return stations_; }

  /// Cloaks every user; Infeasible when |D| < k or no stations were given.
  Result<std::vector<Circle>> Cloak(const LocationDatabase& db, int k) const;

  /// k-reciprocity check [17]: for every user x, at least k-1 of the other
  /// users inside x's cloak have x inside *their* cloak.
  static bool SatisfiesKReciprocity(const LocationDatabase& db,
                                    const std::vector<Circle>& cloaks, int k);

 private:
  std::vector<Point> stations_;
};

}  // namespace pasa

#endif  // PASA_POLICIES_K_RECIPROCITY_H_
