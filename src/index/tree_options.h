#ifndef PASA_INDEX_TREE_OPTIONS_H_
#define PASA_INDEX_TREE_OPTIONS_H_

namespace pasa {

/// How a BinaryTree square node chooses its split orientation.
enum class SplitOrientation {
  /// The paper's simplification: squares always split into west/east
  /// vertical semi-quadrants.
  kVerticalOnly,
  /// Extension (the run-time choice the paper credits to Casper): each
  /// square splits along the orientation that best balances its resident
  /// users, deterministically from the point multiset. The DP is oblivious
  /// to the orientation, so optimality per tree is preserved while typical
  /// cloak areas shrink.
  kAdaptive,
};

/// Construction parameters for the lazily materialized trees (QuadTree and
/// BinaryTree).
struct TreeOptions {
  /// A node is split while it holds at least this many locations (the paper
  /// splits "only if it contains sufficient users to maintain anonymity").
  /// With threshold == k this materializes every node holding >= k users —
  /// exactly the nodes that can cloak a group — so the lazy tree loses no
  /// optimality vs the full static partition, and every splittable leaf
  /// holds fewer than k users (matching Figure 3's observation at k = 50).
  int split_threshold = 50;
  /// Hard cap on tree depth (binary levels for BinaryTree, quadrant levels
  /// for QuadTree). Cells also stop splitting at side 1.
  int max_depth = 64;
  /// Square-node split orientation (BinaryTree only).
  SplitOrientation orientation = SplitOrientation::kVerticalOnly;
};

}  // namespace pasa

#endif  // PASA_INDEX_TREE_OPTIONS_H_
