#ifndef PASA_INDEX_QUAD_TREE_H_
#define PASA_INDEX_QUAD_TREE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geo/rect.h"
#include "index/morton.h"
#include "index/tree_options.h"
#include "model/location_database.h"

namespace pasa {

/// The classical quad tree partition of the map (Section IV): every non-leaf
/// square has exactly four square children. Used by the first-cut Bulk_dp
/// algorithm and by the PUQ baseline [16]. Immutable once built; the
/// incremental machinery lives on BinaryTree.
///
/// Like BinaryTree, the tree is lazily materialized per TreeOptions and its
/// leaves partition the map, and a child's arena index is always greater
/// than its parent's (reverse index order == bottom-up order).
class QuadTree {
 public:
  struct Node {
    Rect region;
    int32_t parent = -1;
    int32_t first_child = -1;  ///< 4 consecutive children, SW SE NW NE
    uint32_t count = 0;        ///< d(m)
    int16_t depth = 0;         ///< root is 0

    bool IsLeaf() const { return first_child < 0; }
  };

  /// Builds the tree over a snapshot; all locations must lie in `extent`.
  static Result<QuadTree> Build(const LocationDatabase& db,
                                const MapExtent& extent,
                                const TreeOptions& options);

  const MapExtent& extent() const { return extent_; }
  size_t num_nodes() const { return nodes_.size(); }
  static constexpr int32_t kRootId = 0;
  const Node& node(int32_t id) const { return nodes_[id]; }

  /// Row indices resident in leaf `id`; empty for internal nodes.
  const std::vector<uint32_t>& LeafRows(int32_t id) const {
    return leaf_rows_[id];
  }

  /// The leaf whose region contains `p`.
  int32_t LeafForPoint(const Point& p) const;

  int Height() const;

  /// Approximate heap bytes held by the arena and per-leaf row lists
  /// (memory accounting, obs/mem.h).
  uint64_t ApproxBytes() const {
    uint64_t bytes =
        static_cast<uint64_t>(nodes_.capacity()) * sizeof(Node) +
        static_cast<uint64_t>(leaf_rows_.capacity()) *
            sizeof(std::vector<uint32_t>);
    for (const std::vector<uint32_t>& rows : leaf_rows_) {
      bytes += static_cast<uint64_t>(rows.capacity()) * sizeof(uint32_t);
    }
    return bytes;
  }

 private:
  QuadTree(MapExtent extent, TreeOptions options)
      : extent_(extent), options_(options) {}

  bool CanSplit(int32_t id) const;
  void Split(int32_t id, const std::vector<Point>& locations);

  MapExtent extent_;
  TreeOptions options_;
  std::vector<Node> nodes_;
  std::vector<std::vector<uint32_t>> leaf_rows_;
};

}  // namespace pasa

#endif  // PASA_INDEX_QUAD_TREE_H_
