#include "index/morton.h"

#include <algorithm>
#include <cassert>

namespace pasa {
namespace {

// Spreads the low 32 bits of x so bit i lands at position 2i.
uint64_t Part1By1(uint64_t x) {
  x &= 0xffffffffULL;
  x = (x | (x << 16)) & 0x0000ffff0000ffffULL;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

}  // namespace

Result<MapExtent> MapExtent::Covering(const Rect& bbox) {
  if (bbox.width() <= 0 || bbox.height() <= 0) {
    return Status::InvalidArgument("cannot cover an empty bounding box");
  }
  const Coord need = std::max(bbox.width(), bbox.height());
  int log2_side = 0;
  while ((Coord{1} << log2_side) < need) {
    ++log2_side;
    if (log2_side > 31) {
      return Status::InvalidArgument("bounding box too large for MapExtent");
    }
  }
  return MapExtent{bbox.x1, bbox.y1, log2_side};
}

uint64_t MortonIndex::KeyForPoint(const Point& p) const {
  assert(extent_.Contains(p));
  const uint64_t cx = static_cast<uint64_t>(p.x - extent_.origin_x);
  const uint64_t cy = static_cast<uint64_t>(p.y - extent_.origin_y);
  // y is the high interleaved bit, so child order is SW, SE, NW, NE.
  return (Part1By1(cy) << 1) | Part1By1(cx);
}

Result<MortonIndex> MortonIndex::Build(const LocationDatabase& db,
                                       const MapExtent& extent) {
  std::vector<uint64_t> keys_by_row(db.size());
  MortonIndex tmp(extent, {}, {});
  for (size_t i = 0; i < db.size(); ++i) {
    const Point& p = db.row(i).location;
    if (!extent.Contains(p)) {
      return Status::InvalidArgument("location " + p.ToString() +
                                     " outside map extent");
    }
    keys_by_row[i] = tmp.KeyForPoint(p);
  }
  std::vector<uint64_t> sorted_keys = keys_by_row;
  std::sort(sorted_keys.begin(), sorted_keys.end());
  return MortonIndex(extent, std::move(sorted_keys), std::move(keys_by_row));
}

QuadPath MortonIndex::PathForPoint(const Point& p, int depth) const {
  assert(depth >= 0 && depth <= max_depth());
  const uint64_t key = KeyForPoint(p);
  return QuadPath{key >> (2 * (max_depth() - depth)), depth};
}

Rect MortonIndex::RegionOf(const QuadPath& path) const {
  assert(path.depth >= 0 && path.depth <= max_depth());
  // De-interleave the prefix back into quadrant grid coordinates.
  uint64_t qx = 0, qy = 0;
  for (int i = 0; i < path.depth; ++i) {
    const uint64_t bits = (path.prefix >> (2 * (path.depth - 1 - i))) & 3;
    qx = (qx << 1) | (bits & 1);
    qy = (qy << 1) | (bits >> 1);
  }
  const Coord side = extent_.side() >> path.depth;
  const Coord x1 = extent_.origin_x + static_cast<Coord>(qx) * side;
  const Coord y1 = extent_.origin_y + static_cast<Coord>(qy) * side;
  return Rect{x1, y1, x1 + side, y1 + side};
}

size_t MortonIndex::CountKeyRange(uint64_t lo, uint64_t hi) const {
  const auto begin =
      std::lower_bound(sorted_keys_.begin(), sorted_keys_.end(), lo);
  const auto end = std::lower_bound(begin, sorted_keys_.end(), hi);
  return static_cast<size_t>(end - begin);
}

size_t MortonIndex::CountQuadrant(const QuadPath& path) const {
  const int shift = 2 * (max_depth() - path.depth);
  const uint64_t lo = path.prefix << shift;
  const uint64_t hi = (path.prefix + 1) << shift;
  return CountKeyRange(lo, hi);
}

size_t MortonIndex::CountVerticalHalf(const QuadPath& parent,
                                      bool west) const {
  // West = SW(0) + NW(2); East = SE(1) + NE(3). Non-contiguous: two ranges.
  const int lo_child = west ? 0 : 1;
  const int hi_child = west ? 2 : 3;
  return CountQuadrant(parent.Child(lo_child)) +
         CountQuadrant(parent.Child(hi_child));
}

size_t MortonIndex::CountHorizontalHalf(const QuadPath& parent,
                                        bool south) const {
  // South = SW(0) + SE(1); North = NW(2) + NE(3). Contiguous ranges, but the
  // two-count formulation keeps the code uniform.
  const int lo_child = south ? 0 : 2;
  const int hi_child = south ? 1 : 3;
  return CountQuadrant(parent.Child(lo_child)) +
         CountQuadrant(parent.Child(hi_child));
}

Rect MortonIndex::VerticalHalfRegion(const QuadPath& parent, bool west) const {
  const Rect r = RegionOf(parent);
  return west ? r.WestHalf() : r.EastHalf();
}

Rect MortonIndex::HorizontalHalfRegion(const QuadPath& parent,
                                       bool south) const {
  const Rect r = RegionOf(parent);
  return south ? r.SouthHalf() : r.NorthHalf();
}

}  // namespace pasa
