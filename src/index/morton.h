#ifndef PASA_INDEX_MORTON_H_
#define PASA_INDEX_MORTON_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geo/point.h"
#include "geo/rect.h"
#include "model/location_database.h"

namespace pasa {

/// The square, power-of-two-sided region a quad tree partitions ("the map").
/// All quadrants of the static quad-tree partition are addressable as Morton
/// key ranges over this extent.
struct MapExtent {
  Coord origin_x = 0;
  Coord origin_y = 0;
  int log2_side = 0;  ///< side length is 2^log2_side

  Coord side() const { return Coord{1} << log2_side; }
  Rect ToRect() const {
    return Rect{origin_x, origin_y, origin_x + side(), origin_y + side()};
  }
  bool Contains(const Point& p) const { return ToRect().Contains(p); }

  /// Smallest extent anchored at the bounding box's southwest corner whose
  /// power-of-two side covers `bbox`. Fails on an empty box.
  static Result<MapExtent> Covering(const Rect& bbox);
};

/// Address of one quadrant of the static quad-tree partition of a MapExtent:
/// `depth` levels below the root, identified by the Morton prefix of its
/// cells (2 bits per level, child order SW=0, SE=1, NW=2, NE=3).
struct QuadPath {
  uint64_t prefix = 0;
  int depth = 0;  ///< 0 == the whole map

  /// The path of this quadrant's child `q` (0..3).
  QuadPath Child(int q) const {
    return QuadPath{(prefix << 2) | static_cast<uint64_t>(q), depth + 1};
  }
  QuadPath Parent() const { return QuadPath{prefix >> 2, depth - 1}; }

  friend bool operator==(const QuadPath& a, const QuadPath& b) = default;
};

/// Sorted Morton-key index over one location-database snapshot.
///
/// Every quadrant of the static quad tree is a contiguous Morton key range,
/// so `d(m)` (the number of locations inside quadrant m, Definition 7) is two
/// binary searches. Semi-quadrants (Casper / binary-tree cloaks) are one or
/// two ranges. This powers the k-inside baseline policies, which probe
/// arbitrary quadrants of the *static* partition without materializing a
/// tree.
class MortonIndex {
 public:
  /// Builds the index. Every location must lie inside `extent`; returns
  /// InvalidArgument otherwise.
  static Result<MortonIndex> Build(const LocationDatabase& db,
                                   const MapExtent& extent);

  const MapExtent& extent() const { return extent_; }
  /// Maximum quadrant depth (cells of side 1 at this depth).
  int max_depth() const { return extent_.log2_side; }
  size_t size() const { return keys_by_row_.size(); }

  /// Morton key of snapshot row `row`.
  uint64_t KeyOfRow(size_t row) const { return keys_by_row_[row]; }

  /// The quadrant at `depth` containing `p`.
  QuadPath PathForPoint(const Point& p, int depth) const;

  /// Geometric region of a quadrant.
  Rect RegionOf(const QuadPath& path) const;

  /// Number of locations inside the quadrant (d(m)).
  size_t CountQuadrant(const QuadPath& path) const;

  /// Number of locations in the west/east vertical semi-quadrant of `parent`
  /// (the union of its two western or two eastern child quadrants).
  size_t CountVerticalHalf(const QuadPath& parent, bool west) const;

  /// Number of locations in the south/north horizontal semi-quadrant of
  /// `parent`.
  size_t CountHorizontalHalf(const QuadPath& parent, bool south) const;

  /// Region of a vertical/horizontal semi-quadrant of `parent`.
  Rect VerticalHalfRegion(const QuadPath& parent, bool west) const;
  Rect HorizontalHalfRegion(const QuadPath& parent, bool south) const;

  /// Morton key for a point in this extent (exposed for tests).
  uint64_t KeyForPoint(const Point& p) const;

  /// Approximate heap bytes of the two key arrays (memory accounting,
  /// obs/mem.h).
  uint64_t ApproxBytes() const {
    return (static_cast<uint64_t>(sorted_keys_.capacity()) +
            static_cast<uint64_t>(keys_by_row_.capacity())) *
           sizeof(uint64_t);
  }

 private:
  MortonIndex(MapExtent extent, std::vector<uint64_t> sorted_keys,
              std::vector<uint64_t> keys_by_row)
      : extent_(extent),
        sorted_keys_(std::move(sorted_keys)),
        keys_by_row_(std::move(keys_by_row)) {}

  /// Count of keys in [lo, hi).
  size_t CountKeyRange(uint64_t lo, uint64_t hi) const;

  MapExtent extent_;
  std::vector<uint64_t> sorted_keys_;
  std::vector<uint64_t> keys_by_row_;
};

}  // namespace pasa

#endif  // PASA_INDEX_MORTON_H_
