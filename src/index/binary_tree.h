#ifndef PASA_INDEX_BINARY_TREE_H_
#define PASA_INDEX_BINARY_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "geo/rect.h"
#include "index/morton.h"
#include "index/tree_options.h"
#include "model/location_database.h"

namespace pasa {

/// The binary semi-quadrant tree of Section V: each square quadrant node is
/// the parent of its two vertical semi-quadrants, and each semi-quadrant is
/// the parent of two square quadrants. Cloaks are chosen from the nodes, so
/// the cost granularity between parent and child is 2x instead of the quad
/// tree's 4x.
///
/// The tree partitions the whole map: every node is either a leaf or has two
/// children that exactly cover it, so every point of the extent lies in
/// exactly one leaf. Nodes are lazily materialized (see TreeOptions).
///
/// The structure is mutable to support incremental maintenance across
/// location-database snapshots (Section IV "Incremental Maintenance"):
/// ApplyMove relocates one user, splitting or collapsing nodes as occupancy
/// crosses the threshold. Collapsed descendants are abandoned in the arena
/// (IsLive() == false) and reclaimed only by rebuilding.
class BinaryTree {
 public:
  enum class NodeKind : uint8_t {
    /// Splits into two semi-quadrants; the cut orientation follows
    /// TreeOptions::orientation (the paper always cuts vertically).
    kSquare,
    kVerticalSemi,    ///< west/east half; splits into south/north squares
    kHorizontalSemi,  ///< south/north half; splits into west/east squares
  };

  struct Node {
    Rect region;
    int32_t parent = -1;
    int32_t first_child = -1;  ///< children at first_child and first_child+1
    uint32_t count = 0;        ///< d(m): locations inside this node
    int16_t depth = 0;         ///< binary depth; root is 0 (Lemma 5's h(m))
    NodeKind kind = NodeKind::kSquare;
    bool live = true;  ///< false once abandoned by a collapse

    bool IsLeaf() const { return first_child < 0; }
  };

  /// Builds the tree over a snapshot. All locations must lie inside
  /// `extent`; its root is the extent itself.
  static Result<BinaryTree> Build(const LocationDatabase& db,
                                  const MapExtent& extent,
                                  const TreeOptions& options);

  /// Builds a tree rooted at an arbitrary (semi-)quadrant instead of a
  /// square map — the shape a parallel-anonymization jurisdiction takes when
  /// the greedy partitioner hands a semi-quadrant node to a server
  /// (Section V "Parallel Anonymization"). All locations must lie inside
  /// `root_region`.
  static Result<BinaryTree> BuildRooted(const LocationDatabase& db,
                                        const Rect& root_region,
                                        NodeKind root_kind,
                                        const TreeOptions& options);

  const MapExtent& extent() const { return extent_; }
  const TreeOptions& options() const { return options_; }

  /// Total arena slots, including abandoned nodes. Iterate indices in
  /// reverse for a children-before-parents (bottom-up) order: a child's
  /// index is always greater than its parent's.
  size_t num_nodes() const { return nodes_.size(); }
  /// Number of live nodes.
  size_t num_live_nodes() const { return live_nodes_; }

  static constexpr int32_t kRootId = 0;
  const Node& node(int32_t id) const { return nodes_[id]; }

  /// Row indices (into the snapshot) resident in leaf `id`. Empty for
  /// internal nodes.
  const std::vector<uint32_t>& LeafRows(int32_t id) const {
    return leaf_rows_[id];
  }

  /// The leaf whose region contains `p`.
  int32_t LeafForPoint(const Point& p) const;

  /// All snapshot rows resident in the subtree of `id`.
  std::vector<uint32_t> SubtreeRows(int32_t id) const {
    std::vector<uint32_t> rows;
    rows.reserve(node(id).count);
    GatherRows(id, &rows);
    return rows;
  }

  /// Relocates snapshot row `row` from `old_location` to `new_location`,
  /// updating counts on both root-to-leaf paths and re-splitting/collapsing
  /// where occupancy crosses the threshold. Appends every node whose count
  /// changed (hence whose DP row is stale) to `dirty`, deepest first is NOT
  /// guaranteed. Returns InvalidArgument if a location is outside the map.
  Status ApplyMove(uint32_t row, const Point& old_location,
                   const Point& new_location, std::vector<int32_t>* dirty);

  /// Maximum depth over live nodes.
  int Height() const;

  /// Root-to-node path as turn labels: "r" for the root, then ".0" for a
  /// first child and ".1" for a second (e.g. "r.0.1"). Empty string for an
  /// out-of-range id. What provenance records store as `tree_path`.
  std::string PathString(int32_t id) const;

  /// Aggregate shape statistics for the Figure 3 experiment.
  struct ShapeStats {
    size_t live_nodes = 0;
    size_t leaves = 0;
    int height = 0;
    size_t max_leaf_occupancy = 0;
    double mean_leaf_depth = 0.0;
  };
  ShapeStats ComputeShapeStats() const;

  /// Approximate heap bytes held by the arena, per-leaf row lists and the
  /// row-location shadow (memory accounting, obs/mem.h).
  uint64_t ApproxBytes() const {
    uint64_t bytes =
        static_cast<uint64_t>(nodes_.capacity()) * sizeof(Node) +
        static_cast<uint64_t>(leaf_rows_.capacity()) *
            sizeof(std::vector<uint32_t>) +
        static_cast<uint64_t>(row_locations_.capacity()) * sizeof(Point);
    for (const std::vector<uint32_t>& rows : leaf_rows_) {
      bytes += static_cast<uint64_t>(rows.capacity()) * sizeof(uint32_t);
    }
    return bytes;
  }

 private:
  BinaryTree(MapExtent extent, TreeOptions options)
      : extent_(extent), options_(options) {}

  /// True if `id` may be split further (capacity, depth, and geometry).
  bool CanSplit(int32_t id) const;
  /// Materializes the two children of leaf `id` and distributes its rows.
  void SplitLeaf(int32_t id, const LocationDatabase& db);
  /// Same, using a location callback instead of a LocationDatabase (the
  /// incremental path tracks moved rows).
  void SplitLeafWithLocations(int32_t id);
  /// Turns internal node `id` back into a leaf, gathering descendant rows.
  void Collapse(int32_t id);
  void GatherRows(int32_t id, std::vector<uint32_t>* out) const;
  /// Geometry of one split: the two child regions and their kind.
  struct SplitPlan {
    Rect first;
    Rect second;
    NodeKind child_kind = NodeKind::kSquare;
  };
  /// Decides the split of node `id` (for squares under kAdaptive this
  /// inspects the resident points and picks the better-balanced cut;
  /// deterministic in the point multiset).
  SplitPlan PlanSplit(int32_t id) const;

  MapExtent extent_;
  TreeOptions options_;
  std::vector<Node> nodes_;
  std::vector<std::vector<uint32_t>> leaf_rows_;
  std::vector<Point> row_locations_;  ///< current location per snapshot row
  size_t live_nodes_ = 0;
};

}  // namespace pasa

#endif  // PASA_INDEX_BINARY_TREE_H_
