#include "index/binary_tree.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace pasa {

Result<BinaryTree> BinaryTree::Build(const LocationDatabase& db,
                                     const MapExtent& extent,
                                     const TreeOptions& options) {
  return BuildRooted(db, extent.ToRect(), NodeKind::kSquare, options);
}

Result<BinaryTree> BinaryTree::BuildRooted(const LocationDatabase& db,
                                           const Rect& root_region,
                                           NodeKind root_kind,
                                           const TreeOptions& options) {
  if (options.split_threshold < 1) {
    return Status::InvalidArgument("split_threshold must be >= 1");
  }
  Result<MapExtent> extent = MapExtent::Covering(root_region);
  if (!extent.ok()) return extent.status();
  BinaryTree tree(*extent, options);
  tree.row_locations_.reserve(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    const Point& p = db.row(i).location;
    if (!root_region.Contains(p)) {
      return Status::InvalidArgument("location " + p.ToString() +
                                     " outside the root region");
    }
    tree.row_locations_.push_back(p);
  }

  Node root;
  root.region = root_region;
  root.count = static_cast<uint32_t>(db.size());
  root.kind = root_kind;
  tree.nodes_.push_back(root);
  tree.leaf_rows_.emplace_back();
  tree.leaf_rows_[0].reserve(db.size());
  for (uint32_t i = 0; i < db.size(); ++i) tree.leaf_rows_[0].push_back(i);
  tree.live_nodes_ = 1;

  std::vector<int32_t> stack = {kRootId};
  while (!stack.empty()) {
    const int32_t id = stack.back();
    stack.pop_back();
    if (tree.CanSplit(id)) {
      tree.SplitLeafWithLocations(id);
      stack.push_back(tree.nodes_[id].first_child);
      stack.push_back(tree.nodes_[id].first_child + 1);
    }
  }
  return tree;
}

bool BinaryTree::CanSplit(int32_t id) const {
  const Node& n = nodes_[id];
  if (!n.IsLeaf() || !n.live) return false;
  if (n.count < static_cast<uint32_t>(options_.split_threshold)) return false;
  if (n.depth >= options_.max_depth) return false;
  // The dimension being halved must be at least 2 units wide.
  switch (n.kind) {
    case NodeKind::kSquare:
      return n.region.width() >= 2;  // square: either cut needs side >= 2
    case NodeKind::kVerticalSemi:
      return n.region.height() >= 2;
    case NodeKind::kHorizontalSemi:
      return n.region.width() >= 2;
  }
  return false;
}

BinaryTree::SplitPlan BinaryTree::PlanSplit(int32_t id) const {
  const Node& n = nodes_[id];
  SplitPlan plan;
  switch (n.kind) {
    case NodeKind::kSquare: {
      bool vertical = true;
      if (options_.orientation == SplitOrientation::kAdaptive) {
        // Pick the cut that splits the resident users most evenly; ties go
        // to the paper's vertical cut.
        const Coord midx = n.region.x1 + n.region.width() / 2;
        const Coord midy = n.region.y1 + n.region.height() / 2;
        int64_t west = 0, south = 0;
        for (const uint32_t row : leaf_rows_[id]) {
          if (row_locations_[row].x < midx) ++west;
          if (row_locations_[row].y < midy) ++south;
        }
        const int64_t total = static_cast<int64_t>(n.count);
        const int64_t imbalance_v = std::abs(2 * west - total);
        const int64_t imbalance_h = std::abs(2 * south - total);
        vertical = imbalance_v <= imbalance_h;
      }
      if (vertical) {
        plan = {n.region.WestHalf(), n.region.EastHalf(),
                NodeKind::kVerticalSemi};
      } else {
        plan = {n.region.SouthHalf(), n.region.NorthHalf(),
                NodeKind::kHorizontalSemi};
      }
      break;
    }
    case NodeKind::kVerticalSemi:
      plan = {n.region.SouthHalf(), n.region.NorthHalf(), NodeKind::kSquare};
      break;
    case NodeKind::kHorizontalSemi:
      plan = {n.region.WestHalf(), n.region.EastHalf(), NodeKind::kSquare};
      break;
  }
  return plan;
}

void BinaryTree::SplitLeafWithLocations(int32_t id) {
  assert(nodes_[id].IsLeaf());
  const SplitPlan plan = PlanSplit(id);
  const int32_t first = static_cast<int32_t>(nodes_.size());
  for (int which = 0; which < 2; ++which) {
    Node child;
    child.region = which == 0 ? plan.first : plan.second;
    child.parent = id;
    child.depth = static_cast<int16_t>(nodes_[id].depth + 1);
    child.kind = plan.child_kind;
    nodes_.push_back(child);
    leaf_rows_.emplace_back();
  }
  live_nodes_ += 2;
  Node& parent = nodes_[id];
  parent.first_child = first;

  // Distribute the parent's resident rows by geometry.
  std::vector<uint32_t>& rows = leaf_rows_[id];
  const Rect first_region = nodes_[first].region;
  for (const uint32_t row : rows) {
    const int which = first_region.Contains(row_locations_[row]) ? 0 : 1;
    leaf_rows_[first + which].push_back(row);
    ++nodes_[first + which].count;
  }
  rows.clear();
  rows.shrink_to_fit();
}

void BinaryTree::GatherRows(int32_t id, std::vector<uint32_t>* out) const {
  const Node& n = nodes_[id];
  if (n.IsLeaf()) {
    out->insert(out->end(), leaf_rows_[id].begin(), leaf_rows_[id].end());
    return;
  }
  GatherRows(n.first_child, out);
  GatherRows(n.first_child + 1, out);
}

void BinaryTree::Collapse(int32_t id) {
  Node& n = nodes_[id];
  assert(!n.IsLeaf());
  std::vector<uint32_t> rows;
  rows.reserve(n.count);
  GatherRows(id, &rows);
  // Abandon the whole subtree below id.
  std::vector<int32_t> stack = {n.first_child, n.first_child + 1};
  while (!stack.empty()) {
    const int32_t cur = stack.back();
    stack.pop_back();
    Node& c = nodes_[cur];
    if (!c.IsLeaf()) {
      stack.push_back(c.first_child);
      stack.push_back(c.first_child + 1);
    }
    c.live = false;
    --live_nodes_;
    leaf_rows_[cur].clear();
  }
  n.first_child = -1;
  leaf_rows_[id] = std::move(rows);
}

int32_t BinaryTree::LeafForPoint(const Point& p) const {
  assert(nodes_[kRootId].region.Contains(p));
  int32_t id = kRootId;
  while (!nodes_[id].IsLeaf()) {
    const int32_t child = nodes_[id].first_child;
    id = nodes_[child].region.Contains(p) ? child : child + 1;
  }
  return id;
}

Status BinaryTree::ApplyMove(uint32_t row, const Point& old_location,
                             const Point& new_location,
                             std::vector<int32_t>* dirty) {
  if (!nodes_[kRootId].region.Contains(new_location)) {
    return Status::InvalidArgument("new location " + new_location.ToString() +
                                   " outside the tree's root region");
  }
  if (row >= row_locations_.size()) {
    return Status::InvalidArgument("row out of range");
  }
  if (row_locations_[row] != old_location) {
    return Status::InvalidArgument(
        "old location does not match the tree's view of row " +
        std::to_string(row));
  }

  const int32_t old_leaf = LeafForPoint(old_location);
  // Remove the row from its old leaf.
  std::vector<uint32_t>& old_rows = leaf_rows_[old_leaf];
  const auto it = std::find(old_rows.begin(), old_rows.end(), row);
  if (it == old_rows.end()) {
    return Status::Internal("row not resident in its leaf");
  }
  *it = old_rows.back();
  old_rows.pop_back();
  row_locations_[row] = new_location;

  // Decrement counts up the old path.
  for (int32_t cur = old_leaf; cur >= 0; cur = nodes_[cur].parent) {
    --nodes_[cur].count;
    dirty->push_back(cur);
  }

  const int32_t new_leaf = LeafForPoint(new_location);
  leaf_rows_[new_leaf].push_back(row);
  for (int32_t cur = new_leaf; cur >= 0; cur = nodes_[cur].parent) {
    ++nodes_[cur].count;
    dirty->push_back(cur);
  }

  // Structural fix-up 1: the new leaf may now exceed the split threshold.
  std::vector<int32_t> stack = {new_leaf};
  while (!stack.empty()) {
    const int32_t id = stack.back();
    stack.pop_back();
    if (CanSplit(id)) {
      SplitLeafWithLocations(id);
      const int32_t first = nodes_[id].first_child;
      dirty->push_back(first);
      dirty->push_back(first + 1);
      stack.push_back(first);
      stack.push_back(first + 1);
    }
  }

  // Structural fix-up 2: the highest internal ancestor on the old path whose
  // count fell to the threshold or below is over-refined; collapse it so the
  // tree matches what a fresh build would produce.
  int32_t to_collapse = -1;
  for (int32_t cur = nodes_[old_leaf].parent; cur >= 0;
       cur = nodes_[cur].parent) {
    if (!nodes_[cur].IsLeaf() &&
        nodes_[cur].count < static_cast<uint32_t>(options_.split_threshold)) {
      to_collapse = cur;
    }
  }
  if (to_collapse >= 0) {
    Collapse(to_collapse);
    dirty->push_back(to_collapse);
  }
  return Status::Ok();
}

int BinaryTree::Height() const {
  int height = 0;
  for (const Node& n : nodes_) {
    if (n.live) height = std::max(height, static_cast<int>(n.depth));
  }
  return height;
}

std::string BinaryTree::PathString(int32_t id) const {
  if (id < 0 || static_cast<size_t>(id) >= nodes_.size()) return "";
  std::string turns;  // collected leaf-to-root, reversed at the end
  int32_t cur = id;
  while (cur != kRootId) {
    const int32_t parent = nodes_[cur].parent;
    if (parent < 0) return "";  // abandoned/detached node
    turns += cur == nodes_[parent].first_child ? '0' : '1';
    cur = parent;
  }
  std::string path = "r";
  for (auto it = turns.rbegin(); it != turns.rend(); ++it) {
    path += '.';
    path += *it;
  }
  return path;
}

BinaryTree::ShapeStats BinaryTree::ComputeShapeStats() const {
  ShapeStats s;
  double depth_sum = 0.0;
  for (const Node& n : nodes_) {
    if (!n.live) continue;
    ++s.live_nodes;
    s.height = std::max(s.height, static_cast<int>(n.depth));
    if (n.IsLeaf()) {
      ++s.leaves;
      s.max_leaf_occupancy =
          std::max(s.max_leaf_occupancy, static_cast<size_t>(n.count));
      depth_sum += n.depth;
    }
  }
  if (s.leaves > 0) s.mean_leaf_depth = depth_sum / s.leaves;
  return s;
}

}  // namespace pasa
