#include "index/quad_tree.h"

#include <algorithm>
#include <cassert>

namespace pasa {

Result<QuadTree> QuadTree::Build(const LocationDatabase& db,
                                 const MapExtent& extent,
                                 const TreeOptions& options) {
  if (options.split_threshold < 1) {
    return Status::InvalidArgument("split_threshold must be >= 1");
  }
  QuadTree tree(extent, options);
  std::vector<Point> locations;
  locations.reserve(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    const Point& p = db.row(i).location;
    if (!extent.Contains(p)) {
      return Status::InvalidArgument("location " + p.ToString() +
                                     " outside map extent");
    }
    locations.push_back(p);
  }

  Node root;
  root.region = extent.ToRect();
  root.count = static_cast<uint32_t>(db.size());
  tree.nodes_.push_back(root);
  tree.leaf_rows_.emplace_back();
  tree.leaf_rows_[0].reserve(db.size());
  for (uint32_t i = 0; i < db.size(); ++i) tree.leaf_rows_[0].push_back(i);

  std::vector<int32_t> stack = {kRootId};
  while (!stack.empty()) {
    const int32_t id = stack.back();
    stack.pop_back();
    if (tree.CanSplit(id)) {
      tree.Split(id, locations);
      for (int q = 0; q < 4; ++q) {
        stack.push_back(tree.nodes_[id].first_child + q);
      }
    }
  }
  return tree;
}

bool QuadTree::CanSplit(int32_t id) const {
  const Node& n = nodes_[id];
  if (!n.IsLeaf()) return false;
  if (n.count < static_cast<uint32_t>(options_.split_threshold)) return false;
  if (n.depth >= options_.max_depth) return false;
  return n.region.width() >= 2;
}

void QuadTree::Split(int32_t id, const std::vector<Point>& locations) {
  assert(nodes_[id].IsLeaf());
  const int32_t first = static_cast<int32_t>(nodes_.size());
  for (int q = 0; q < 4; ++q) {
    Node child;
    child.region = nodes_[id].region.Quadrant(q);
    child.parent = id;
    child.depth = static_cast<int16_t>(nodes_[id].depth + 1);
    nodes_.push_back(child);
    leaf_rows_.emplace_back();
  }
  nodes_[id].first_child = first;

  std::vector<uint32_t>& rows = leaf_rows_[id];
  const Rect region = nodes_[id].region;
  const Coord midx = region.x1 + region.width() / 2;
  const Coord midy = region.y1 + region.height() / 2;
  for (const uint32_t row : rows) {
    const Point& p = locations[row];
    const int q = ((p.y >= midy) ? 2 : 0) | ((p.x >= midx) ? 1 : 0);
    leaf_rows_[first + q].push_back(row);
    ++nodes_[first + q].count;
  }
  rows.clear();
  rows.shrink_to_fit();
}

int32_t QuadTree::LeafForPoint(const Point& p) const {
  assert(extent_.Contains(p));
  int32_t id = kRootId;
  while (!nodes_[id].IsLeaf()) {
    const Node& n = nodes_[id];
    const Coord midx = n.region.x1 + n.region.width() / 2;
    const Coord midy = n.region.y1 + n.region.height() / 2;
    const int q = ((p.y >= midy) ? 2 : 0) | ((p.x >= midx) ? 1 : 0);
    id = n.first_child + q;
  }
  return id;
}

int QuadTree::Height() const {
  int height = 0;
  for (const Node& n : nodes_) {
    height = std::max(height, static_cast<int>(n.depth));
  }
  return height;
}

}  // namespace pasa
