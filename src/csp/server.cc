#include "csp/server.h"

#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_sink.h"

namespace pasa {

CspServer::CspServer(CspOptions options, MapExtent extent,
                     LocationDatabase snapshot, IncrementalAnonymizer engine,
                     ExtractedPolicy policy, PoiDatabase pois)
    : options_(options),
      extent_(extent),
      snapshot_(std::move(snapshot)),
      engine_(std::make_unique<IncrementalAnonymizer>(std::move(engine))),
      policy_(std::move(policy)),
      frontend_(std::make_unique<CachingLbsFrontend>(
          LbsProvider(std::move(pois), options.answers_per_request))) {
  RebuildUserIndex();
}

Result<CspServer> CspServer::Start(LocationDatabase initial_snapshot,
                                   const MapExtent& extent, PoiDatabase pois,
                                   const CspOptions& options) {
  if (options.k < 1) return Status::InvalidArgument("k must be >= 1");
  Result<IncrementalAnonymizer> engine = IncrementalAnonymizer::Build(
      initial_snapshot, extent, options.k, options.dp);
  if (!engine.ok()) return engine.status();
  Result<ExtractedPolicy> policy = engine->ExtractPolicy();
  if (!policy.ok()) return policy.status();
  return CspServer(options, extent, std::move(initial_snapshot),
                   std::move(*engine), std::move(*policy), std::move(pois));
}

void CspServer::RebuildUserIndex() {
  row_of_user_.clear();
  row_of_user_.reserve(snapshot_.size());
  for (size_t i = 0; i < snapshot_.size(); ++i) {
    row_of_user_[snapshot_.row(i).user] = i;
  }
}

Result<std::vector<PointOfInterest>> CspServer::HandleRequest(
    const ServiceRequest& sr) {
  static obs::Histogram& latency = obs::MetricsRegistry::Global().GetHistogram(
      "csp/handle_request_seconds");
  static obs::Counter& served =
      obs::MetricsRegistry::Global().GetCounter("csp/requests_served");
  static obs::Counter& rejected =
      obs::MetricsRegistry::Global().GetCounter("csp/requests_rejected");
  obs::ScopedHistogramTimer timer(latency);
  obs::ScopedSpan span("csp/handle_request", obs::ScopedSpan::kRoot);
  const auto it = row_of_user_.find(sr.sender);
  if (it == row_of_user_.end() ||
      snapshot_.row(it->second).location != sr.location) {
    ++stats_.requests_rejected;
    rejected.Increment();
    obs::LogDebug("csp", "rejected request from user %lld (stale or unknown)",
                  static_cast<long long>(sr.sender));
    return Status::InvalidArgument(
        "service request is not valid w.r.t. the current snapshot");
  }
  const AnonymizedRequest ar{next_rid_++, policy_.table.cloak(it->second),
                             sr.params};
  ++stats_.requests_served;
  served.Increment();
  return frontend_->Serve(ar);
}

Status CspServer::RefreshPolicy() {
  Result<ExtractedPolicy> policy = engine_->ExtractPolicy();
  if (!policy.ok()) return policy.status();
  policy_ = std::move(*policy);
  return Status::Ok();
}

Result<SnapshotReport> CspServer::AdvanceSnapshot(
    const std::vector<UserMove>& moves) {
  obs::ScopedSpan span("csp/advance_snapshot", obs::ScopedSpan::kRoot);
  SnapshotReport report;
  report.moves_applied = moves.size();

  const double fraction =
      snapshot_.empty() ? 0.0
                        : static_cast<double>(moves.size()) /
                              static_cast<double>(snapshot_.size());
  // Apply the moves to the CSP's snapshot first; the engine tracks its own
  // copy of the positions.
  for (const UserMove& move : moves) {
    if (move.row >= snapshot_.size() ||
        snapshot_.row(move.row).location != move.from) {
      return Status::InvalidArgument("stale or out-of-range move");
    }
    Status s = snapshot_.MoveUser(snapshot_.row(move.row).user, move.to);
    if (!s.ok()) return s;
  }

  if (fraction > options_.rebuild_fraction) {
    // Bulk re-anonymization (Section VI-C: incremental degenerates anyway).
    obs::TraceInstant("csp/rebuild_triggered");
    obs::LogDebug("csp",
                  "snapshot rebuild: %zu moves touch %.1f%% of users "
                  "(> %.1f%% threshold)",
                  moves.size(), fraction * 100.0,
                  options_.rebuild_fraction * 100.0);
    obs::ScopedSpan rebuild_span("rebuild");
    Result<IncrementalAnonymizer> rebuilt = IncrementalAnonymizer::Build(
        snapshot_, extent_, options_.k, options_.dp);
    if (!rebuilt.ok()) return rebuilt.status();
    *engine_ = std::move(*rebuilt);
    report.rebuilt = true;
    ++stats_.rebuilds;
    obs::MetricsRegistry::Global().GetCounter("csp/snapshot/rebuilds")
        .Increment();
  } else {
    obs::ScopedSpan repair_span("repair");
    Result<size_t> repaired = engine_->ApplyMoves(moves);
    if (!repaired.ok()) return repaired.status();
    report.dp_rows_repaired = *repaired;
    ++stats_.incremental_updates;
    obs::MetricsRegistry::Global()
        .GetCounter("csp/snapshot/incremental_repairs")
        .Increment();
  }
  obs::MetricsRegistry::Global().GetCounter("csp/snapshot/moves_applied")
      .Increment(moves.size());
  obs::TraceCounter("csp/moves_applied", static_cast<double>(moves.size()));
  Status s = RefreshPolicy();
  if (!s.ok()) {
    obs::LogWarn("csp", "policy refresh failed: %s", s.ToString().c_str());
    return s;
  }
  report.policy_cost = policy_.cost;
  ++stats_.snapshots_advanced;
  obs::LogDebug("csp",
                "snapshot advanced: %zu moves, %s, %zu dp rows repaired, "
                "policy cost %lld",
                moves.size(), report.rebuilt ? "rebuilt" : "repaired",
                report.dp_rows_repaired,
                static_cast<long long>(report.policy_cost));
  return report;
}

}  // namespace pasa
