#include "csp/server.h"

#include <utility>
#include <vector>

#include "common/timer.h"
#include "fault/injector.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "obs/trace_sink.h"
#include "obs/window.h"

namespace pasa {
namespace {

// Counter for `path`, labeled {shard="<shard>"} when a shard is configured.
obs::Counter& ShardCounter(const std::string& path, const std::string& shard) {
  return obs::MetricsRegistry::Global().GetCounter(
      shard.empty() ? path : obs::LabeledName(path, {{"shard", shard}}));
}

}  // namespace

CspServer::CspServer(CspOptions options, MapExtent extent,
                     LocationDatabase snapshot, IncrementalAnonymizer engine,
                     ExtractedPolicy policy, PoiDatabase pois)
    : options_(options),
      served_counter_(ShardCounter("csp/requests_served", options.shard)),
      degraded_counter_(ShardCounter("csp/requests_degraded", options.shard)),
      failed_counter_(ShardCounter("csp/requests_failed", options.shard)),
      rejected_counter_(ShardCounter("csp/requests_rejected", options.shard)),
      extent_(extent),
      snapshot_(std::move(snapshot)),
      engine_(std::make_unique<IncrementalAnonymizer>(std::move(engine))),
      policy_(std::move(policy)),
      frontend_(std::make_unique<CachingLbsFrontend>(
          LbsProvider(std::move(pois), options.answers_per_request),
          options.resilience)) {
  RebuildUserIndex();
  group_size_of_node_ =
      GroupSizesByNode(policy_.assignment, engine_->tree().num_nodes());
  for (const obs::SloObjective& objective : obs::DefaultServingObjectives()) {
    obs::SloTracker::Global().EnsureObjective(objective);
  }
}

CspServer::CspServer(const CspServer& other)
    : options_(other.options_),
      served_counter_(other.served_counter_),
      degraded_counter_(other.degraded_counter_),
      failed_counter_(other.failed_counter_),
      rejected_counter_(other.rejected_counter_),
      extent_(other.extent_),
      snapshot_(other.snapshot_),
      engine_(std::make_unique<IncrementalAnonymizer>(*other.engine_)),
      policy_(other.policy_),
      frontend_(std::make_unique<CachingLbsFrontend>(*other.frontend_)),
      row_of_user_(other.row_of_user_),
      group_size_of_node_(other.group_size_of_node_),
      next_rid_(other.next_rid_),
      stats_(other.stats_) {}

Result<CspServer> CspServer::Start(LocationDatabase initial_snapshot,
                                   const MapExtent& extent, PoiDatabase pois,
                                   const CspOptions& options) {
  if (options.k < 1) return Status::InvalidArgument("k must be >= 1");
  Result<IncrementalAnonymizer> engine = IncrementalAnonymizer::Build(
      initial_snapshot, extent, options.k, options.dp);
  if (!engine.ok()) return engine.status();
  Result<ExtractedPolicy> policy = engine->ExtractPolicy();
  if (!policy.ok()) return policy.status();
  return CspServer(options, extent, std::move(initial_snapshot),
                   std::move(*engine), std::move(*policy), std::move(pois));
}

void CspServer::RebuildUserIndex() {
  row_of_user_.clear();
  row_of_user_.reserve(snapshot_.size());
  for (size_t i = 0; i < snapshot_.size(); ++i) {
    row_of_user_[snapshot_.row(i).user] = i;
  }
}

Result<LbsAnswer> CspServer::HandleRequest(const ServiceRequest& sr,
                                           ServeReceipt* receipt) {
  static obs::Histogram& latency = obs::MetricsRegistry::Global().GetHistogram(
      "csp/handle_request_seconds");
  obs::ScopedProvenanceRecord prov;
  WallTimer timer;
  ServeDecision decision;
  // When a caller (the network front end) already opened the per-request
  // provenance scope, `prov` is inert and the outer record is the one to
  // annotate — CurrentProvenance() resolves both cases.
  Result<LbsAnswer> answer =
      ServeRequest(sr, obs::CurrentProvenance(), &decision);
  if (receipt != nullptr && answer.ok()) {
    receipt->rid = decision.rid;
    receipt->group_size = decision.group_size;
    receipt->cloak = decision.cloak;
    receipt->degraded = decision.degraded;
  }
  const double seconds = timer.ElapsedSeconds();
  latency.Observe(seconds);
  const bool windows_on = obs::WindowRegistry::Global().enabled();
  const bool slos_on = obs::SloTracker::Global().enabled();
  if (windows_on || slos_on) {
    const uint64_t now = obs::SimClock::Global().Advance(
        static_cast<uint64_t>(seconds * 1e6) + 1);
    if (windows_on) {
      static obs::SlidingWindowHistogram& window_latency =
          obs::WindowRegistry::Global().GetHistogram(
              "csp/window/serve_latency_seconds");
      window_latency.Observe(seconds, now);
      if (!decision.rejected) {
        static obs::SlidingWindowRate& degraded_rate =
            obs::WindowRegistry::Global().GetRate("csp/window/degraded_rate");
        degraded_rate.Record(decision.degraded, now);
      }
    }
    if (slos_on && !decision.rejected) {
      // Client errors don't burn serving SLOs; everything accepted does.
      obs::SloTracker& slo = obs::SloTracker::Global();
      slo.Record(obs::kSloAvailability, answer.ok(), now);
      slo.RecordLatency(obs::kSloServeLatency, seconds, now);
      slo.Record(obs::kSloAnonymity,
                 decision.group_size >= static_cast<uint64_t>(options_.k),
                 now);
    }
  }
  return answer;
}

Result<LbsAnswer> CspServer::ServeRequest(const ServiceRequest& sr,
                                          obs::ProvenanceRecord* p,
                                          ServeDecision* decision) {
  obs::ScopedSpan span("csp/handle_request", obs::ScopedSpan::kRoot);
  WallTimer cloak_timer;
  const auto it = row_of_user_.find(sr.sender);
  if (it == row_of_user_.end() ||
      snapshot_.row(it->second).location != sr.location) {
    decision->rejected = true;
    ++stats_.requests_rejected;
    rejected_counter_.Increment();
    obs::LogDebug("csp", "rejected request from user %lld (stale or unknown)",
                  static_cast<long long>(sr.sender));
    const Status status = Status::InvalidArgument(
        "service request is not valid w.r.t. the current snapshot");
    if (p != nullptr) {
      p->sender = sr.sender;
      p->k = options_.k;
      p->outcome = obs::RequestOutcome::kRejected;
      p->status = StatusCodeName(status.code());
      p->cloak_seconds = cloak_timer.ElapsedSeconds();
    }
    return status;
  }
  const size_t row = it->second;
  const int32_t node = row < policy_.assignment.size()
                           ? policy_.assignment[row]
                           : -1;
  if (node >= 0 && static_cast<size_t>(node) < group_size_of_node_.size()) {
    decision->group_size = group_size_of_node_[node];
  }
  const AnonymizedRequest ar{next_rid_++, policy_.table.cloak(row),
                             sr.params};
  decision->rid = ar.rid;
  decision->cloak = ar.cloak;
  if (p != nullptr) {
    p->rid = ar.rid;
    p->sender = sr.sender;
    p->k = options_.k;
    p->cloak_x1 = ar.cloak.x1;
    p->cloak_y1 = ar.cloak.y1;
    p->cloak_x2 = ar.cloak.x2;
    p->cloak_y2 = ar.cloak.y2;
    p->cloak_area = ar.cloak.Area();
    p->policy_node = node;
    if (node >= 0) {
      const BinaryTree& tree = engine_->tree();
      p->tree_path = tree.PathString(node);
      p->node_depth = tree.node(node).depth;
      p->group_size = decision->group_size;
      if (static_cast<size_t>(node) < policy_.config.passed_up.size()) {
        p->passed_up = policy_.config.C(node);
      }
    }
    p->cloak_seconds = cloak_timer.ElapsedSeconds();
  }
  Result<LbsAnswer> answer = frontend_->Serve(ar);
  if (!answer.ok()) {
    // Provider down and no cached fallback: the request is lost, but the
    // anonymization guarantee was never at stake — only the LBS hop failed.
    ++stats_.requests_failed;
    failed_counter_.Increment();
    if (p != nullptr) {
      p->outcome = obs::RequestOutcome::kFailed;
      p->status = StatusCodeName(answer.status().code());
    }
    return answer.status();
  }
  ++stats_.requests_served;
  served_counter_.Increment();
  if (answer->degraded) {
    decision->degraded = true;
    ++stats_.requests_degraded;
    degraded_counter_.Increment();
  }
  if (p != nullptr) {
    p->outcome = answer->degraded ? obs::RequestOutcome::kDegraded
                                  : obs::RequestOutcome::kServed;
  }
  return answer;
}

Result<AnonymizedRequest> CspServer::Cloak(const ServiceRequest& sr,
                                           uint64_t* group_size) {
  static obs::Counter& rejected =
      obs::MetricsRegistry::Global().GetCounter("csp/requests_rejected");
  const auto it = row_of_user_.find(sr.sender);
  if (it == row_of_user_.end() ||
      snapshot_.row(it->second).location != sr.location) {
    ++stats_.requests_rejected;
    rejected_counter_.Increment();
    return Status::InvalidArgument(
        "service request is not valid w.r.t. the current snapshot");
  }
  const size_t row = it->second;
  if (group_size != nullptr) {
    *group_size = 0;
    const int32_t node = row < policy_.assignment.size()
                             ? policy_.assignment[row]
                             : -1;
    if (node >= 0 &&
        static_cast<size_t>(node) < group_size_of_node_.size()) {
      *group_size = group_size_of_node_[node];
    }
  }
  return AnonymizedRequest{next_rid_++, policy_.table.cloak(row), sr.params};
}

Status CspServer::RefreshPolicy() {
  Result<ExtractedPolicy> policy = engine_->ExtractPolicy();
  if (!policy.ok()) return policy.status();
  policy_ = std::move(*policy);
  group_size_of_node_ =
      GroupSizesByNode(policy_.assignment, engine_->tree().num_nodes());
  return Status::Ok();
}

Status CspServer::RebuildEngine() {
  obs::ScopedSpan rebuild_span("rebuild");
  Result<IncrementalAnonymizer> rebuilt = IncrementalAnonymizer::Build(
      snapshot_, extent_, options_.k, options_.dp);
  if (!rebuilt.ok()) return rebuilt.status();
  *engine_ = std::move(*rebuilt);
  return Status::Ok();
}

Result<SnapshotReport> CspServer::AdvanceSnapshot(
    const std::vector<UserMove>& moves) {
  obs::ScopedSpan span("csp/advance_snapshot", obs::ScopedSpan::kRoot);
  static obs::Counter& quarantined_counter = obs::MetricsRegistry::Global()
      .GetCounter("csp/snapshot/moves_quarantined");
  SnapshotReport report;
  fault::FaultInjector& injector = fault::FaultInjector::Global();

  // Validate every move against the current snapshot; malformed ones are
  // quarantined (counted, logged) instead of failing the whole advance. The
  // snapshot/corrupt_move injection point simulates a dirty MPC feed by
  // mangling moves right at this boundary, which must end in quarantine.
  std::vector<UserMove> accepted;
  accepted.reserve(moves.size());
  std::vector<bool> already_moved(snapshot_.size(), false);
  size_t corrupted = 0;
  for (const UserMove& original : moves) {
    UserMove move = original;
    if (injector.ShouldInject(fault::kSnapshotCorruptMove)) {
      switch (corrupted++ % 3) {
        case 0:  // unknown user: row beyond the snapshot
          move.row += static_cast<uint32_t>(snapshot_.size());
          break;
        case 1:  // destination outside the map extent
          move.to = Point{extent_.origin_x + 2 * extent_.side(),
                          extent_.origin_y};
          break;
        default:  // stale origin
          move.from.x += 1;
          break;
      }
    }
    const char* reason = nullptr;
    if (move.row >= snapshot_.size()) {
      reason = "unknown_user";
    } else if (snapshot_.row(move.row).location != move.from) {
      reason = "stale_origin";
    } else if (!extent_.Contains(move.to)) {
      reason = "out_of_extent";
    } else if (already_moved[move.row]) {
      reason = "duplicate";
    }
    if (reason != nullptr) {
      ++report.moves_quarantined;
      obs::MetricsRegistry::Global()
          .GetCounter(std::string("csp/quarantine/") + reason)
          .Increment();
      obs::TraceInstant("csp/move_quarantined");
      obs::LogDebug("csp", "quarantined move of row %u (%s)", move.row,
                    reason);
      continue;
    }
    already_moved[move.row] = true;
    accepted.push_back(move);
  }
  if (report.moves_quarantined > 0) {
    quarantined_counter.Increment(report.moves_quarantined);
    stats_.moves_quarantined += report.moves_quarantined;
    obs::LogWarn("csp", "quarantined %zu of %zu moves this snapshot",
                 report.moves_quarantined, moves.size());
  }
  report.moves_applied = accepted.size();

  // Apply the accepted moves to the CSP's snapshot first; the engine tracks
  // its own copy of the positions.
  for (const UserMove& move : accepted) {
    Status s = snapshot_.MoveUser(snapshot_.row(move.row).user, move.to);
    if (!s.ok()) return Status::Internal("validated move failed to apply: " +
                                         s.ToString());
  }

  const double fraction =
      snapshot_.empty() ? 0.0
                        : static_cast<double>(accepted.size()) /
                              static_cast<double>(snapshot_.size());
  bool need_rebuild = fraction > options_.rebuild_fraction;
  if (need_rebuild) {
    // Bulk re-anonymization (Section VI-C: incremental degenerates anyway).
    obs::TraceInstant("csp/rebuild_triggered");
    obs::LogDebug("csp",
                  "snapshot rebuild: %zu moves touch %.1f%% of users "
                  "(> %.1f%% threshold)",
                  accepted.size(), fraction * 100.0,
                  options_.rebuild_fraction * 100.0);
  } else {
    obs::ScopedSpan repair_span("repair");
    Status repair = Status::Ok();
    if (injector.ShouldInject(fault::kSnapshotRepairFail)) {
      repair = Status::Unavailable("injected incremental repair failure");
    } else {
      Result<size_t> repaired = engine_->ApplyMoves(accepted);
      if (repaired.ok()) {
        report.dp_rows_repaired = *repaired;
      } else {
        repair = repaired.status();
      }
    }
    if (repair.ok()) {
      ++stats_.incremental_updates;
      obs::MetricsRegistry::Global()
          .GetCounter("csp/snapshot/incremental_repairs")
          .Increment();
    } else {
      // Self-healing: a failed repair may leave the engine's tree/matrix
      // partially updated, so discard it and rebuild from the (clean)
      // snapshot instead of failing the advance.
      report.repair_fell_back_to_rebuild = true;
      report.dp_rows_repaired = 0;
      ++stats_.repair_fallbacks;
      need_rebuild = true;
      obs::MetricsRegistry::Global()
          .GetCounter("csp/snapshot/repair_fallbacks")
          .Increment();
      obs::TraceInstant("csp/repair_fallback");
      obs::LogWarn("csp",
                   "incremental repair failed (%s); falling back to a full "
                   "rebuild",
                   repair.ToString().c_str());
    }
  }
  if (need_rebuild) {
    Status s = RebuildEngine();
    if (!s.ok()) {
      obs::LogError("csp", "snapshot rebuild failed: %s",
                    s.ToString().c_str());
      return s;
    }
    report.rebuilt = true;
    ++stats_.rebuilds;
    obs::MetricsRegistry::Global().GetCounter("csp/snapshot/rebuilds")
        .Increment();
  }
  obs::MetricsRegistry::Global().GetCounter("csp/snapshot/moves_applied")
      .Increment(accepted.size());
  obs::TraceCounter("csp/moves_applied",
                    static_cast<double>(accepted.size()));
  Status s = RefreshPolicy();
  if (!s.ok()) {
    obs::LogWarn("csp", "policy refresh failed: %s", s.ToString().c_str());
    return s;
  }
  report.policy_cost = policy_.cost;
  ++stats_.snapshots_advanced;
  obs::LogDebug("csp",
                "snapshot advanced: %zu moves (%zu quarantined), %s, %zu dp "
                "rows repaired, policy cost %lld",
                accepted.size(), report.moves_quarantined,
                report.rebuilt
                    ? (report.repair_fell_back_to_rebuild
                           ? "rebuilt (repair fallback)"
                           : "rebuilt")
                    : "repaired",
                report.dp_rows_repaired,
                static_cast<long long>(report.policy_cost));
  return report;
}

void CspServer::ReportMemory(obs::MemoryAccountant& accountant) const {
  accountant.GetCounter("csp/snapshot").Set(snapshot_.ApproxBytes());
  accountant.GetCounter("csp/policy_tree")
      .Set(engine_->tree().ApproxBytes());
  accountant.GetCounter("csp/config_matrix")
      .Set(engine_->matrix().ApproxBytes());
  accountant.GetCounter("csp/policy").Set(policy_.ApproxBytes());
  uint64_t index_bytes =
      static_cast<uint64_t>(row_of_user_.bucket_count()) * sizeof(void*) +
      static_cast<uint64_t>(row_of_user_.size()) *
          (sizeof(std::pair<const UserId, size_t>) + sizeof(void*)) +
      static_cast<uint64_t>(group_size_of_node_.capacity()) *
          sizeof(uint32_t);
  accountant.GetCounter("csp/user_index").Set(index_bytes);
  accountant.GetCounter("lbs/answer_cache")
      .Set(frontend_->cache().ApproxBytes());
  accountant.GetCounter("lbs/poi_index")
      .Set(frontend_->provider().ApproxBytes());
}

}  // namespace pasa
