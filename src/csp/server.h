#ifndef PASA_CSP_SERVER_H_
#define PASA_CSP_SERVER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "lbs/provider.h"
#include "model/anonymized_request.h"
#include "model/service_request.h"
#include "obs/mem.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "pasa/incremental.h"

namespace pasa {

/// Tuning for the trusted-CSP server.
struct CspOptions {
  /// Anonymity degree enforced against policy-aware attackers.
  int k = 50;
  DpOptions dp;
  /// Number of POIs per LBS answer.
  size_t answers_per_request = 10;
  /// When more than this fraction of users moves in one snapshot advance,
  /// rebuild from scratch instead of maintaining incrementally (Section
  /// VI-C: beyond ~5% movers incremental degenerates into bulk anyway).
  double rebuild_fraction = 0.05;
  /// Retry/deadline/circuit-breaker tuning for the LBS hop.
  ResilienceOptions resilience;
  /// When non-empty, this server's request counters are registered as
  /// labeled series csp/requests_*{shard="<shard>"} instead of the
  /// unlabeled family, giving per-shard dashboards when several CspServer
  /// instances (the planned multi-reactor front end, the parallel runner's
  /// per-jurisdiction servers) share one process.
  std::string shard;
};

/// Bookkeeping returned by CspServer::AdvanceSnapshot.
struct SnapshotReport {
  size_t moves_applied = 0;     ///< moves accepted and applied
  size_t moves_quarantined = 0; ///< malformed moves rejected, not fatal
  bool rebuilt = false;         ///< full rebuild vs incremental repair
  /// True when an incremental repair failed and the server self-healed by
  /// falling back to a full rebuild (implies `rebuilt`).
  bool repair_fell_back_to_rebuild = false;
  size_t dp_rows_repaired = 0;  ///< 0 when rebuilt
  Cost policy_cost = 0;

  friend bool operator==(const SnapshotReport& a, const SnapshotReport& b) =
      default;
};

/// The privacy-conscious LBS model of Section II-B assembled into one
/// component: the trusted CSP that (a) tracks the location database across
/// snapshots, (b) maintains the optimal policy-aware sender k-anonymous
/// policy (incrementally when cheap, from scratch when not), (c) anonymizes
/// incoming service requests, and (d) forwards them to the untrusted LBS
/// through the deduplicating answer cache of Section VII.
///
/// The serving path is built to survive a flaky provider and dirty inputs:
/// malformed moves are quarantined rather than fatal, a failed incremental
/// repair self-heals into a full rebuild, and LBS outages degrade answers
/// (stale, flagged) instead of dropping requests. The k-anonymity guarantee
/// itself is never relaxed — every served cloak comes from the maintained
/// optimal policy and identities never cross the CSP boundary.
///
///   CspServer csp = *CspServer::Start(db, extent, pois, {.k = 50});
///   auto answer = csp.HandleRequest(sr);      // POIs near the cloak
///   csp.AdvanceSnapshot(moves);               // next 30s snapshot
class CspServer {
 public:
  /// Builds the initial policy. Fails with Infeasible when 0 < |D| < k.
  static Result<CspServer> Start(LocationDatabase initial_snapshot,
                                 const MapExtent& extent, PoiDatabase pois,
                                 const CspOptions& options);

  CspServer(CspServer&&) = default;

  /// Deep copy: an independent server with identical snapshot, policy,
  /// engine, cache and resilience state. The state-space explorer (pasa::sim)
  /// uses this to branch a live server at each decision point instead of
  /// replaying the whole action prefix. Both copies report into the same
  /// process-wide metric counters. Single-threaded use only.
  CspServer(const CspServer& other);
  CspServer& operator=(const CspServer&) = delete;

  const CspOptions& options() const { return options_; }
  const LocationDatabase& snapshot() const { return snapshot_; }
  Cost policy_cost() const { return policy_.cost; }
  const CloakingTable& policy() const { return policy_.table; }

  /// What one HandleRequest decided, for callers (the network front end)
  /// that must echo the cloak decision back to the client: the assigned
  /// rid, the cloak actually sent to the LBS, and the size of the
  /// anonymity group backing it.
  struct ServeReceipt {
    RequestId rid = 0;
    uint64_t group_size = 0;
    Rect cloak;
    bool degraded = false;

    friend bool operator==(const ServeReceipt& a, const ServeReceipt& b) =
        default;
  };

  /// Full request path: validate the request against the current snapshot,
  /// cloak the sender, fetch (or reuse) the LBS answer. The sender identity
  /// never crosses the CSP boundary. `LbsAnswer::degraded` marks answers
  /// served stale from the cache while the provider was unreachable.
  Result<LbsAnswer> HandleRequest(const ServiceRequest& sr) {
    return HandleRequest(sr, nullptr);
  }

  /// Like HandleRequest, additionally filling `receipt` (may be null) with
  /// the cloak decision on success.
  Result<LbsAnswer> HandleRequest(const ServiceRequest& sr,
                                  ServeReceipt* receipt);

  /// Anonymize-only path: validate and cloak without the LBS hop (the wire
  /// protocol's AnonymizeRequest). Fills `group_size` (may be null) with
  /// the anonymity-group size backing the cloak.
  Result<AnonymizedRequest> Cloak(const ServiceRequest& sr,
                                  uint64_t* group_size);

  /// Advances to the next location-database snapshot. Malformed moves
  /// (unknown row, stale origin, destination outside the map, duplicate
  /// mover) are quarantined and the remaining moves applied; a failed
  /// incremental repair falls back to a full rebuild. Fails only when even
  /// the rebuild is impossible.
  Result<SnapshotReport> AdvanceSnapshot(const std::vector<UserMove>& moves);

  /// Flushes the LBS answer cache (e.g. daily) and returns the billable
  /// request count reported to the provider.
  size_t FlushAnswerCache() { return frontend_->FlushAndBill(); }

  struct Stats {
    size_t requests_served = 0;
    size_t requests_degraded = 0;  ///< subset of served: stale answers
    size_t requests_failed = 0;    ///< provider down, no fallback available
    size_t requests_rejected = 0;
    size_t snapshots_advanced = 0;
    size_t moves_quarantined = 0;
    size_t rebuilds = 0;
    size_t incremental_updates = 0;
    size_t repair_fallbacks = 0;   ///< incremental failures healed by rebuild

    friend bool operator==(const Stats& a, const Stats& b) = default;
  };
  const Stats& stats() const { return stats_; }
  /// How many requests the (untrusted) LBS actually saw — always at most
  /// requests_served thanks to the cache.
  size_t lbs_requests_seen() const {
    return frontend_->provider().requests_seen();
  }
  /// Resilience-layer state of the LBS hop (retries, breaker, deadlines).
  const ResilientLbsClient& lbs_client() const { return frontend_->client(); }
  /// The cache + resilience front half itself (read-only): cache contents
  /// and breaker bookkeeping feed the explorer's canonical state digest.
  const CachingLbsFrontend& frontend() const { return *frontend_; }

  /// Refreshes the accountant's csp/* and lbs/* subsystem counters from the
  /// server's long-lived structures: snapshot rows, policy tree, DP
  /// configuration matrix, extracted policy, user index, answer cache and
  /// POI index. Pull-model — called at scrape time (GET /memory, /metrics)
  /// and by `pasa_cli memstats`, never on the serving hot path.
  void ReportMemory(obs::MemoryAccountant& accountant) const;

 private:
  /// How one request through ServeRequest went, for the windowed telemetry
  /// and SLO records the outer HandleRequest emits.
  struct ServeDecision {
    bool rejected = false;
    bool degraded = false;
    uint64_t group_size = 0;
    RequestId rid = 0;
    Rect cloak;
  };

  CspServer(CspOptions options, MapExtent extent,
            LocationDatabase snapshot, IncrementalAnonymizer engine,
            ExtractedPolicy policy, PoiDatabase pois);

  /// The validate + cloak + LBS-hop core of HandleRequest; annotates the
  /// provenance record (null when disarmed) and fills `decision`.
  Result<LbsAnswer> ServeRequest(const ServiceRequest& sr,
                                 obs::ProvenanceRecord* p,
                                 ServeDecision* decision);

  Status RefreshPolicy();
  void RebuildUserIndex();
  /// From-scratch rebuild of the engine on the current snapshot.
  Status RebuildEngine();

  CspOptions options_;
  /// Request-outcome counters, resolved once at construction so the serving
  /// hot path never takes the registry mutex; labeled with
  /// {shard="<options.shard>"} when a shard name is configured.
  obs::Counter& served_counter_;
  obs::Counter& degraded_counter_;
  obs::Counter& failed_counter_;
  obs::Counter& rejected_counter_;
  MapExtent extent_;
  LocationDatabase snapshot_;
  std::unique_ptr<IncrementalAnonymizer> engine_;
  ExtractedPolicy policy_;
  std::unique_ptr<CachingLbsFrontend> frontend_;
  std::unordered_map<UserId, size_t> row_of_user_;
  /// Anonymity-group size per cloaking tree node for the current policy
  /// (GroupSizesByNode over policy_.assignment); provenance + anonymity SLO.
  std::vector<uint32_t> group_size_of_node_;
  RequestId next_rid_ = 1;
  Stats stats_;
};

}  // namespace pasa

#endif  // PASA_CSP_SERVER_H_
