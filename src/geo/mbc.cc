#include "geo/mbc.h"

#include <cmath>

#include "common/rng.h"

namespace pasa {
namespace {

// Circle through one point (radius 0).
Circle FromOne(const Point& a) {
  return Circle{static_cast<double>(a.x), static_cast<double>(a.y), 0.0};
}

// Smallest circle through two points: diameter endpoints.
Circle FromTwo(const Point& a, const Point& b) {
  const double cx = (static_cast<double>(a.x) + b.x) / 2.0;
  const double cy = (static_cast<double>(a.y) + b.y) / 2.0;
  const double r = std::sqrt(static_cast<double>(SquaredDistance(a, b))) / 2.0;
  return Circle{cx, cy, r};
}

// Circumcircle of three points; falls back to the best two-point circle when
// the points are (nearly) collinear.
Circle FromThree(const Point& a, const Point& b, const Point& c) {
  const double ax = a.x, ay = a.y;
  const double bx = b.x, by = b.y;
  const double cx = c.x, cy = c.y;
  const double d = 2.0 * (ax * (by - cy) + bx * (cy - ay) + cx * (ay - by));
  if (d == 0.0) {
    // Collinear: the MBC is determined by the farthest pair.
    Circle best = FromTwo(a, b);
    for (const Circle& cand : {FromTwo(a, c), FromTwo(b, c)}) {
      if (cand.radius > best.radius) best = cand;
    }
    return best;
  }
  const double a2 = ax * ax + ay * ay;
  const double b2 = bx * bx + by * by;
  const double c2 = cx * cx + cy * cy;
  const double ux = (a2 * (by - cy) + b2 * (cy - ay) + c2 * (ay - by)) / d;
  const double uy = (a2 * (cx - bx) + b2 * (ax - cx) + c2 * (bx - ax)) / d;
  const double r = std::hypot(ux - ax, uy - ay);
  return Circle{ux, uy, r};
}

Circle TrivialCircle(const std::vector<Point>& boundary) {
  switch (boundary.size()) {
    case 0:
      return Circle{};
    case 1:
      return FromOne(boundary[0]);
    case 2:
      return FromTwo(boundary[0], boundary[1]);
    default:
      return FromThree(boundary[0], boundary[1], boundary[2]);
  }
}

// Welzl's algorithm, iterative-with-restart formulation ("move-to-front"
// style): grow the circle over a random permutation, restarting the prefix
// whenever a point falls outside.
Circle WelzlMtf(std::vector<Point> pts) {
  Circle circle = TrivialCircle({});
  std::vector<Point> boundary;
  // Recursive helper over (index into pts, boundary support set).
  // Depth is bounded by |pts| + 3; use an explicit recursion via lambda.
  auto solve = [&](auto&& self, size_t n, std::vector<Point>& support) -> Circle {
    if (n == 0 || support.size() == 3) return TrivialCircle(support);
    Circle c = self(self, n - 1, support);
    if (c.Contains(pts[n - 1])) return c;
    support.push_back(pts[n - 1]);
    c = self(self, n - 1, support);
    support.pop_back();
    return c;
  };
  circle = solve(solve, pts.size(), boundary);
  return circle;
}

}  // namespace

Circle MinimumBoundingCircle(const std::vector<Point>& points) {
  if (points.empty()) return Circle{};
  std::vector<Point> shuffled = points;
  // Fixed-seed Fisher-Yates: expected-linear behaviour, deterministic output.
  Rng rng(0x5eed0abcULL);
  for (size_t i = shuffled.size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(rng.NextBounded(i));
    std::swap(shuffled[i - 1], shuffled[j]);
  }
  return WelzlMtf(std::move(shuffled));
}

}  // namespace pasa
