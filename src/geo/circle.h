#ifndef PASA_GEO_CIRCLE_H_
#define PASA_GEO_CIRCLE_H_

#include <string>

#include "geo/point.h"

namespace pasa {

/// A circular cloak (used by the NP-complete variant of optimal policy-aware
/// anonymization, Theorem 1, and by the FindMBC / k-reciprocity baselines).
/// Center and radius are doubles because minimum bounding circles of integer
/// points generally have irrational radii.
struct Circle {
  double cx = 0.0;
  double cy = 0.0;
  double radius = 0.0;

  friend bool operator==(const Circle& a, const Circle& b) = default;

  /// Area in squared coordinate units.
  double Area() const;

  /// True if `p` lies inside or on the circle, with a small epsilon to
  /// absorb floating-point error in computed minimum bounding circles.
  bool Contains(const Point& p) const;

  std::string ToString() const;
};

}  // namespace pasa

#endif  // PASA_GEO_CIRCLE_H_
