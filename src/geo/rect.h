#ifndef PASA_GEO_RECT_H_
#define PASA_GEO_RECT_H_

#include <cstdint>
#include <string>

#include "geo/point.h"

namespace pasa {

/// An axis-aligned rectangle, the cloak shape used by quad-tree and
/// semi-quadrant policies (Definition 2's rectangular anonymized requests).
///
/// The rectangle is half-open: it contains points with
/// `x1 <= x < x2` and `y1 <= y < y2`. Half-open semantics make quadrant
/// subdivision exact (the four children of a quadrant partition it with no
/// overlap and no gap), which the configuration/cost lemmas rely on.
struct Rect {
  Coord x1 = 0;
  Coord y1 = 0;
  Coord x2 = 0;  ///< exclusive
  Coord y2 = 0;  ///< exclusive

  friend bool operator==(const Rect& a, const Rect& b) = default;

  Coord width() const { return x2 - x1; }
  Coord height() const { return y2 - y1; }

  /// Exact area in squared coordinate units.
  int64_t Area() const { return width() * height(); }

  /// True if `p` lies inside the half-open rectangle.
  bool Contains(const Point& p) const {
    return p.x >= x1 && p.x < x2 && p.y >= y1 && p.y < y2;
  }

  /// True if `other` is fully inside this rectangle.
  bool ContainsRect(const Rect& other) const {
    return other.x1 >= x1 && other.x2 <= x2 && other.y1 >= y1 &&
           other.y2 <= y2;
  }

  /// True if the two rectangles share at least one point.
  bool Intersects(const Rect& other) const {
    return x1 < other.x2 && other.x1 < x2 && y1 < other.y2 && other.y1 < y2;
  }

  /// Western half: [x1, mid) x [y1, y2). Splits at the integer midpoint.
  Rect WestHalf() const;
  /// Eastern half: [mid, x2) x [y1, y2).
  Rect EastHalf() const;
  /// Southern half: [x1, x2) x [y1, mid).
  Rect SouthHalf() const;
  /// Northern half: [x1, x2) x [mid, y2).
  Rect NorthHalf() const;

  /// Quadrant `q` in the order SW=0, SE=1, NW=2, NE=3 (matching Morton
  /// order with y as the high interleaved bit).
  Rect Quadrant(int q) const;

  std::string ToString() const;
};

/// Smallest rectangle (half-open) containing both inputs.
Rect Union(const Rect& a, const Rect& b);

/// Smallest half-open rectangle containing `p` (a 1x1 cell).
Rect CellAt(const Point& p);

}  // namespace pasa

#endif  // PASA_GEO_RECT_H_
