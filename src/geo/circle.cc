#include "geo/circle.h"

#include <cmath>
#include <numbers>

namespace pasa {
namespace {
// Relative tolerance for circle membership; MBCs are computed in doubles so
// boundary points can land a few ulps outside.
constexpr double kContainsSlack = 1e-7;
}  // namespace

double Circle::Area() const { return std::numbers::pi * radius * radius; }

bool Circle::Contains(const Point& p) const {
  const double dx = static_cast<double>(p.x) - cx;
  const double dy = static_cast<double>(p.y) - cy;
  const double limit = radius * (1.0 + kContainsSlack) + kContainsSlack;
  return dx * dx + dy * dy <= limit * limit;
}

std::string Circle::ToString() const {
  return "circle(center=(" + std::to_string(cx) + ", " + std::to_string(cy) +
         "), r=" + std::to_string(radius) + ")";
}

}  // namespace pasa
