#include "geo/rect.h"

#include <algorithm>

namespace pasa {

Rect Rect::WestHalf() const {
  const Coord mid = x1 + (x2 - x1) / 2;
  return Rect{x1, y1, mid, y2};
}

Rect Rect::EastHalf() const {
  const Coord mid = x1 + (x2 - x1) / 2;
  return Rect{mid, y1, x2, y2};
}

Rect Rect::SouthHalf() const {
  const Coord mid = y1 + (y2 - y1) / 2;
  return Rect{x1, y1, x2, mid};
}

Rect Rect::NorthHalf() const {
  const Coord mid = y1 + (y2 - y1) / 2;
  return Rect{x1, mid, x2, y2};
}

Rect Rect::Quadrant(int q) const {
  const Rect horizontal = (q & 2) ? NorthHalf() : SouthHalf();
  return (q & 1) ? horizontal.EastHalf() : horizontal.WestHalf();
}

std::string Rect::ToString() const {
  std::string out("[");
  out += std::to_string(x1);
  out += ",";
  out += std::to_string(y1);
  out += " .. ";
  out += std::to_string(x2);
  out += ",";
  out += std::to_string(y2);
  out += ")";
  return out;
}

Rect Union(const Rect& a, const Rect& b) {
  return Rect{std::min(a.x1, b.x1), std::min(a.y1, b.y1),
              std::max(a.x2, b.x2), std::max(a.y2, b.y2)};
}

Rect CellAt(const Point& p) { return Rect{p.x, p.y, p.x + 1, p.y + 1}; }

}  // namespace pasa
