#ifndef PASA_GEO_MBC_H_
#define PASA_GEO_MBC_H_

#include <vector>

#include "geo/circle.h"
#include "geo/point.h"

namespace pasa {

/// Computes the minimum bounding circle of `points` with Welzl's randomized
/// incremental algorithm (expected linear time). Returns a zero-radius circle
/// at the origin for an empty input. Deterministic for a given input order
/// (the permutation is derived from a fixed seed).
///
/// This is the cloak construction used by the FindMBC baseline [27].
Circle MinimumBoundingCircle(const std::vector<Point>& points);

}  // namespace pasa

#endif  // PASA_GEO_MBC_H_
