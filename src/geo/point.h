#ifndef PASA_GEO_POINT_H_
#define PASA_GEO_POINT_H_

#include <cstdint>
#include <string>

namespace pasa {

/// Coordinate type for user locations. The paper models a geographic area as
/// a 2-dimensional space with integer coordinates; we use 64-bit to keep all
/// area arithmetic exact (map widths up to 2^20 metres square comfortably).
using Coord = int64_t;

/// A point in the map plane. Coordinates are metres in the experiments but
/// the library is unit-agnostic.
struct Point {
  Coord x = 0;
  Coord y = 0;

  friend bool operator==(const Point& a, const Point& b) = default;

  std::string ToString() const {
    std::string out("(");
    out += std::to_string(x);
    out += ", ";
    out += std::to_string(y);
    out += ")";
    return out;
  }
};

/// Squared Euclidean distance between two points, exact in int64 for the
/// coordinate magnitudes used here.
inline int64_t SquaredDistance(const Point& a, const Point& b) {
  const int64_t dx = a.x - b.x;
  const int64_t dy = a.y - b.y;
  return dx * dx + dy * dy;
}

}  // namespace pasa

#endif  // PASA_GEO_POINT_H_
