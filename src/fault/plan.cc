#include "fault/plan.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "obs/json.h"

namespace pasa {
namespace fault {

const std::vector<std::string_view>& KnownFaultPoints() {
  static const std::vector<std::string_view> points = {
      kLbsLatency,          kLbsError,           kLbsTimeout,
      kSnapshotCorruptMove, kSnapshotRepairFail, kParallelJurisdictionFail,
      kNetSlowRead,         kNetTornWrite,       kNetConnDrop};
  return points;
}

namespace {

bool IsKnownPoint(std::string_view name) {
  for (const std::string_view point : KnownFaultPoints()) {
    if (point == name) return true;
  }
  return false;
}

// Largest integer a JSON double represents exactly; counts above it would
// silently lose precision (and casting arbitrary doubles to uint64_t is UB
// once they exceed the target range), so ReadCount rejects them instead.
constexpr double kMaxExactCount = 9007199254740992.0;  // 2^53

// Reads an optional non-negative integer member into `*out`. Negative,
// fractional and overflowing (> 2^53) values are typed parse errors.
Status ReadCount(const obs::json::Value& entry, const std::string& key,
                 uint64_t* out) {
  const obs::json::Value* v = entry.Find(key);
  if (v == nullptr) return Status::Ok();
  if (!v->is_number() || v->number() < 0.0) {
    return Status::InvalidArgument("fault plan: \"" + key +
                                   "\" must be a non-negative number");
  }
  if (v->number() != std::floor(v->number())) {
    return Status::InvalidArgument("fault plan: \"" + key +
                                   "\" must be an integer");
  }
  if (v->number() > kMaxExactCount) {
    return Status::InvalidArgument("fault plan: \"" + key +
                                   "\" overflows (must be <= 2^53)");
  }
  *out = static_cast<uint64_t>(v->number());
  return Status::Ok();
}

}  // namespace

Result<FaultPlan> FaultPlan::FromJson(std::string_view text) {
  Result<obs::json::Value> document = obs::json::Parse(text);
  if (!document.ok()) {
    return Status::InvalidArgument("fault plan: " +
                                   document.status().message());
  }
  if (!document->is_object()) {
    return Status::InvalidArgument("fault plan: top level must be an object");
  }
  FaultPlan plan;
  if (const obs::json::Value* seed = document->Find("seed")) {
    if (!seed->is_number() || seed->number() < 0.0) {
      return Status::InvalidArgument(
          "fault plan: \"seed\" must be a non-negative number");
    }
    if (seed->number() != std::floor(seed->number()) ||
        seed->number() > kMaxExactCount) {
      return Status::InvalidArgument(
          "fault plan: \"seed\" must be an integer <= 2^53");
    }
    plan.default_seed = static_cast<uint64_t>(seed->number());
  }
  const obs::json::Value* points = document->Find("points");
  if (points == nullptr || !points->is_array()) {
    return Status::InvalidArgument(
        "fault plan: missing \"points\" array");
  }
  for (const obs::json::Value& entry : points->array()) {
    if (!entry.is_object()) {
      return Status::InvalidArgument(
          "fault plan: every point must be an object");
    }
    const obs::json::Value* name = entry.Find("point");
    if (name == nullptr || !name->is_string()) {
      return Status::InvalidArgument(
          "fault plan: every point needs a \"point\" name");
    }
    FaultPointConfig config;
    config.point = name->str();
    if (!IsKnownPoint(config.point)) {
      std::ostringstream known;
      for (const std::string_view p : KnownFaultPoints()) {
        if (known.tellp() > 0) known << ", ";
        known << p;
      }
      return Status::InvalidArgument("fault plan: unknown point \"" +
                                     config.point + "\" (known: " +
                                     known.str() + ")");
    }
    for (const FaultPointConfig& existing : plan.points) {
      if (existing.point == config.point) {
        return Status::InvalidArgument("fault plan: point \"" + config.point +
                                       "\" configured twice");
      }
    }
    if (const obs::json::Value* p = entry.Find("probability")) {
      if (!p->is_number() || p->number() < 0.0 || p->number() > 1.0) {
        return Status::InvalidArgument(
            "fault plan: \"probability\" must be a number in [0, 1]");
      }
      config.probability = p->number();
    }
    if (const obs::json::Value* latency = entry.Find("latency_micros")) {
      if (!latency->is_number() || latency->number() < 0.0) {
        return Status::InvalidArgument(
            "fault plan: \"latency_micros\" must be a non-negative number");
      }
      config.latency_micros = latency->number();
    }
    Status s = ReadCount(entry, "after", &config.after);
    if (!s.ok()) return s;
    s = ReadCount(entry, "every", &config.every);
    if (!s.ok()) return s;
    s = ReadCount(entry, "max_fires", &config.max_fires);
    if (!s.ok()) return s;
    plan.points.push_back(std::move(config));
  }
  return plan;
}

Result<FaultPlan> FaultPlan::FromJsonFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open fault plan " + path);
  }
  std::ostringstream content;
  content << file.rdbuf();
  return FromJson(content.str());
}

}  // namespace fault
}  // namespace pasa
