#ifndef PASA_FAULT_INJECTOR_H_
#define PASA_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/rng.h"
#include "fault/plan.h"

namespace pasa {
namespace fault {

/// Outcome of consulting one injection point.
struct FaultDecision {
  bool fire = false;
  /// Simulated latency payload of the fired point (lbs/latency), in
  /// microseconds. Zero for non-latency points.
  double latency_micros = 0.0;
};

/// Process-wide deterministic fault injector.
///
/// Serving-path code consults named injection points via ShouldInject /
/// Decide. When no plan is armed — the production configuration — every
/// consultation is one relaxed atomic load plus a predictable branch, the
/// same kill-switch discipline as `obs::Enabled()` (verified by
/// bench_fault_overhead). When a plan is armed, each configured point draws
/// from its own SplitMix64 stream seeded from (plan seed, point name), so a
/// given seed replays the identical fault schedule on every run and
/// platform, independent of which other points are being evaluated.
///
/// Thread-safety: Arm/Disarm must not race with in-flight evaluations of
/// armed points (arm before spawning workers, disarm after joining them);
/// armed-path evaluations themselves are serialized per point and safe to
/// call from any thread. The disarmed fast path is wait-free.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// The process-wide injector every built-in injection point consults.
  static FaultInjector& Global();

  /// Installs `plan`, seeding every configured point from `seed`. Replaces
  /// any previously armed plan and zeroes all evaluation/fire counts.
  void Arm(const FaultPlan& plan, uint64_t seed);

  /// Convenience overload: arms with the plan's own default seed.
  void Arm(const FaultPlan& plan) { Arm(plan, plan.default_seed); }

  /// Removes the plan; every point goes quiet and the fast path returns to
  /// the disarmed no-op.
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Consults `point`: true when the fault fires this evaluation. The
  /// disarmed fast path is one relaxed load.
  bool ShouldInject(std::string_view point) {
    if (!armed_.load(std::memory_order_relaxed)) return false;
    return Evaluate(point).fire;
  }

  /// Like ShouldInject but also returns the fired point's payload.
  FaultDecision Decide(std::string_view point) {
    if (!armed_.load(std::memory_order_relaxed)) return {};
    return Evaluate(point);
  }

  /// Total fires of `point` since the last Arm (0 when unconfigured).
  uint64_t fires(std::string_view point) const;
  /// Total evaluations of `point` since the last Arm.
  uint64_t evaluations(std::string_view point) const;

 private:
  struct PointState {
    FaultPointConfig config;
    Rng rng{0};
    uint64_t evaluations = 0;
    uint64_t fires = 0;
  };

  FaultDecision Evaluate(std::string_view point);

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::map<std::string, PointState, std::less<>> points_;
};

}  // namespace fault
}  // namespace pasa

#endif  // PASA_FAULT_INJECTOR_H_
