#ifndef PASA_FAULT_PLAN_H_
#define PASA_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace pasa {
namespace fault {

/// Catalog of injection points the serving path consults. A FaultPlan may
/// only name points from this catalog (typos would otherwise silently never
/// fire). See docs/robustness.md for what each point simulates.
inline constexpr std::string_view kLbsLatency = "lbs/latency";
inline constexpr std::string_view kLbsError = "lbs/error";
inline constexpr std::string_view kLbsTimeout = "lbs/timeout";
inline constexpr std::string_view kSnapshotCorruptMove =
    "snapshot/corrupt_move";
inline constexpr std::string_view kSnapshotRepairFail = "snapshot/repair_fail";
inline constexpr std::string_view kParallelJurisdictionFail =
    "parallel/jurisdiction_fail";
/// Network front-end points (NetServer): a read delivering one byte at a
/// time, a write torn mid-frame (resumed next tick), and a connection
/// dropped right before its response is written.
inline constexpr std::string_view kNetSlowRead = "net/slow_read";
inline constexpr std::string_view kNetTornWrite = "net/torn_write";
inline constexpr std::string_view kNetConnDrop = "net/conn_drop";

/// Every known injection point, for validation and documentation.
const std::vector<std::string_view>& KnownFaultPoints();

/// Configuration for one injection point: how often it fires and, for
/// latency faults, the payload. An evaluation is one consultation of the
/// point by the serving path; the schedule filters evaluations down to
/// *eligible* ones, and `probability` is then drawn per eligible evaluation
/// from the point's own seeded stream.
struct FaultPointConfig {
  std::string point;          ///< one of the catalog names above
  double probability = 1.0;   ///< chance of firing per eligible evaluation
  uint64_t after = 0;         ///< skip the first `after` evaluations
  uint64_t every = 0;         ///< if > 0, eligible only every Nth evaluation
  uint64_t max_fires = 0;     ///< if > 0, stop firing after this many fires
  double latency_micros = 0;  ///< simulated latency payload (lbs/latency)
};

/// A deterministic, seeded fault schedule: which injection points misbehave
/// and how often. Parsed from JSON:
///
///   {
///     "seed": 42,                       // optional; CLI --fault-seed wins
///     "points": [
///       {"point": "lbs/error", "probability": 0.25},
///       {"point": "lbs/latency", "probability": 0.5,
///        "latency_micros": 20000, "after": 10, "every": 2, "max_fires": 100}
///     ]
///   }
///
/// Unknown point names, points configured twice, probabilities outside
/// [0, 1], negative/fractional/overflowing (> 2^53) schedule fields and
/// malformed JSON are all InvalidArgument.
struct FaultPlan {
  uint64_t default_seed = 2010;
  std::vector<FaultPointConfig> points;

  /// Parses a plan from JSON text.
  static Result<FaultPlan> FromJson(std::string_view text);

  /// Reads and parses `path`. NotFound when the file cannot be read.
  static Result<FaultPlan> FromJsonFile(const std::string& path);
};

}  // namespace fault
}  // namespace pasa

#endif  // PASA_FAULT_PLAN_H_
