#include "fault/injector.h"

#include "obs/metrics.h"
#include "obs/trace_sink.h"

namespace pasa {
namespace fault {
namespace {

// FNV-1a over the point name, mixed into the plan seed so each point draws
// from an independent deterministic stream.
uint64_t HashPointName(std::string_view name) {
  uint64_t hash = 1469598103934665603ull;
  for (const char c : name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(const FaultPlan& plan, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  for (const FaultPointConfig& config : plan.points) {
    PointState state;
    state.config = config;
    state.rng = Rng(seed ^ HashPointName(config.point));
    points_.emplace(config.point, std::move(state));
  }
  armed_.store(!points_.empty(), std::memory_order_relaxed);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

FaultDecision FaultInjector::Evaluate(std::string_view point) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  if (it == points_.end()) return {};
  PointState& state = it->second;
  ++state.evaluations;
  const FaultPointConfig& config = state.config;
  if (state.evaluations <= config.after) return {};
  if (config.every > 0 &&
      (state.evaluations - config.after) % config.every != 0) {
    return {};
  }
  if (config.max_fires > 0 && state.fires >= config.max_fires) return {};
  if (config.probability < 1.0 &&
      state.rng.NextDouble() >= config.probability) {
    return {};
  }
  ++state.fires;
  obs::MetricsRegistry::Global()
      .GetCounter("fault/injected/" + config.point)
      .Increment();
  obs::TraceInstant("fault/" + config.point);
  FaultDecision decision;
  decision.fire = true;
  decision.latency_micros = config.latency_micros;
  return decision;
}

uint64_t FaultInjector::fires(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

uint64_t FaultInjector::evaluations(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.evaluations;
}

}  // namespace fault
}  // namespace pasa
