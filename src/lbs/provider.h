#ifndef PASA_LBS_PROVIDER_H_
#define PASA_LBS_PROVIDER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "lbs/answer_cache.h"
#include "lbs/backend.h"
#include "lbs/poi.h"
#include "lbs/resilient_client.h"
#include "model/anonymized_request.h"

namespace pasa {

/// The (untrusted) third-party LBS of the model: answers anonymized
/// requests by nearest-neighbor search over its POI index. It sees only
/// cloaks, never identities or precise locations.
class LbsProvider : public LbsBackend {
 public:
  /// `answers_per_request`: how many POIs each answer carries (the client
  /// filters locally for the one nearest its true position).
  LbsProvider(PoiDatabase pois, size_t answers_per_request)
      : pois_(std::move(pois)), answers_per_request_(answers_per_request) {}

  LbsProvider(LbsProvider&& other) noexcept
      : pois_(std::move(other.pois_)),
        answers_per_request_(other.answers_per_request_),
        requests_seen_(other.requests_seen_.load(std::memory_order_relaxed)) {
  }

  /// Deep copy (the atomic counter needs an explicit load). Only meaningful
  /// while no other thread is evaluating `other` — the single-threaded
  /// explorer clones quiescent servers.
  LbsProvider(const LbsProvider& other)
      : pois_(other.pois_),
        answers_per_request_(other.answers_per_request_),
        requests_seen_(other.requests_seen_.load(std::memory_order_relaxed)) {
  }

  /// Evaluates the request: the nearest POIs of the requested category
  /// ("poi" parameter) to the cloak region.
  std::vector<PointOfInterest> Answer(const AnonymizedRequest& ar) const;

  /// LbsBackend: the in-process provider itself never fails; failures are
  /// simulated upstream by the resilience layer's injection points.
  Result<std::vector<PointOfInterest>> Fetch(
      const AnonymizedRequest& ar) override {
    return Answer(ar);
  }

  /// Number of requests this provider actually evaluated — the count an
  /// attacker at the LBS could log for frequency attacks.
  size_t requests_seen() const {
    return requests_seen_.load(std::memory_order_relaxed);
  }

  /// Approximate heap bytes of the POI index (memory accounting, obs/mem.h).
  uint64_t ApproxBytes() const { return pois_.ApproxBytes(); }

 private:
  PoiDatabase pois_;
  size_t answers_per_request_;
  /// Atomic: Answer is const and may run concurrently (thread-mode runs).
  mutable std::atomic<size_t> requests_seen_{0};
};

/// The trusted CSP front half of the Section VII architecture: forwards
/// anonymized requests to the LBS backend through the answer cache and the
/// resilience layer, so duplicates never leave the CSP and a flaky provider
/// degrades answers instead of dropping requests.
class CachingLbsFrontend {
 public:
  explicit CachingLbsFrontend(LbsProvider provider,
                              const ResilienceOptions& resilience = {})
      : provider_(std::make_unique<LbsProvider>(std::move(provider))),
        client_(provider_.get(), resilience) {}

  /// Deep copy for state-space exploration: the cloned client is rebound to
  /// the cloned provider, so the copy is a fully independent serving stack
  /// that replays identically from the copied resilience/cache state.
  CachingLbsFrontend(const CachingLbsFrontend& other)
      : provider_(std::make_unique<LbsProvider>(*other.provider_)),
        client_(other.client_, provider_.get()),
        cache_(other.cache_) {}

  /// Serves `ar`, consulting the cache first. On a miss the fetch goes
  /// through the resilient client; if the provider stays unreachable the
  /// answer degrades to the best overlapping cached answer (flagged
  /// `degraded`), and only when no fallback exists does the request fail
  /// with kUnavailable / kDeadlineExceeded.
  Result<LbsAnswer> Serve(const AnonymizedRequest& ar);

  /// Flushes the cache and reports the billable request count to the LBS
  /// (also exported as the lbs/answer_cache/billed_requests counter).
  size_t FlushAndBill();

  const LbsProvider& provider() const { return *provider_; }
  const ResilientLbsClient& client() const { return client_; }
  /// The answer cache itself (read-only), for canonical state digests.
  const AnswerCache<std::vector<PointOfInterest>>& cache() const {
    return cache_;
  }
  const AnswerCache<std::vector<PointOfInterest>>::Stats& cache_stats()
      const {
    return cache_.stats();
  }

 private:
  /// unique_ptr keeps the backend address stable for the client when the
  /// frontend itself is moved.
  std::unique_ptr<LbsProvider> provider_;
  ResilientLbsClient client_;
  AnswerCache<std::vector<PointOfInterest>> cache_;
};

}  // namespace pasa

#endif  // PASA_LBS_PROVIDER_H_
