#ifndef PASA_LBS_PROVIDER_H_
#define PASA_LBS_PROVIDER_H_

#include <string>
#include <vector>

#include "lbs/answer_cache.h"
#include "lbs/poi.h"
#include "model/anonymized_request.h"

namespace pasa {

/// The (untrusted) third-party LBS of the model: answers anonymized
/// requests by nearest-neighbor search over its POI index. It sees only
/// cloaks, never identities or precise locations.
class LbsProvider {
 public:
  /// `answers_per_request`: how many POIs each answer carries (the client
  /// filters locally for the one nearest its true position).
  LbsProvider(PoiDatabase pois, size_t answers_per_request)
      : pois_(std::move(pois)), answers_per_request_(answers_per_request) {}

  /// Evaluates the request: the nearest POIs of the requested category
  /// ("poi" parameter) to the cloak region.
  std::vector<PointOfInterest> Answer(const AnonymizedRequest& ar) const;

  /// Number of requests this provider actually evaluated — the count an
  /// attacker at the LBS could log for frequency attacks.
  size_t requests_seen() const { return requests_seen_; }

 private:
  PoiDatabase pois_;
  size_t answers_per_request_;
  mutable size_t requests_seen_ = 0;
};

/// The trusted CSP front half of the Section VII architecture: forwards
/// anonymized requests to the LBS through the answer cache, so duplicates
/// never leave the CSP.
class CachingLbsFrontend {
 public:
  explicit CachingLbsFrontend(LbsProvider provider)
      : provider_(std::move(provider)) {}

  /// Serves `ar`, consulting the cache first.
  const std::vector<PointOfInterest>& Serve(const AnonymizedRequest& ar);

  /// Flushes the cache and reports the billable request count to the LBS
  /// (also exported as the lbs/answer_cache/billed_requests counter).
  size_t FlushAndBill();

  const LbsProvider& provider() const { return provider_; }
  const AnswerCache<std::vector<PointOfInterest>>::Stats& cache_stats()
      const {
    return cache_.stats();
  }

 private:
  LbsProvider provider_;
  AnswerCache<std::vector<PointOfInterest>> cache_;
};

}  // namespace pasa

#endif  // PASA_LBS_PROVIDER_H_
