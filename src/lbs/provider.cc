#include "lbs/provider.h"

#include "common/timer.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/trace.h"
#include "obs/trace_sink.h"
#include "obs/window.h"

namespace pasa {
namespace {

/// Feeds the windowed cache-hit rate (armed runs only). The clock is not
/// advanced here; the serving path advances it once per request.
void RecordCacheHitWindow(bool hit) {
  if (!obs::WindowRegistry::Global().enabled()) return;
  static obs::SlidingWindowRate& rate =
      obs::WindowRegistry::Global().GetRate("lbs/window/cache_hit_rate");
  rate.Record(hit, obs::SimClock::Global().now());
}

}  // namespace

std::vector<PointOfInterest> LbsProvider::Answer(
    const AnonymizedRequest& ar) const {
  requests_seen_.fetch_add(1, std::memory_order_relaxed);
  std::string category;
  for (const NameValue& nv : ar.params) {
    if (nv.name == "poi") {
      category = nv.value;
      break;
    }
  }
  return pois_.NearestToCloak(ar.cloak, category, answers_per_request_);
}

Result<LbsAnswer> CachingLbsFrontend::Serve(const AnonymizedRequest& ar) {
  static obs::Histogram& latency =
      obs::MetricsRegistry::Global().GetHistogram("lbs/serve_seconds");
  static obs::Counter& hits =
      obs::MetricsRegistry::Global().GetCounter("lbs/answer_cache/hits");
  static obs::Counter& misses =
      obs::MetricsRegistry::Global().GetCounter("lbs/answer_cache/misses");
  static obs::Counter& stale_serves = obs::MetricsRegistry::Global()
      .GetCounter("lbs/answer_cache/stale_serves");
  static obs::Counter& unserved =
      obs::MetricsRegistry::Global().GetCounter("lbs/unserved_requests");
  // The LBS hop's span: in a traced request it parents under the caller's
  // span (csp/handle_request), so the hop shows up in tail traces and the
  // merged Perfetto timeline.
  obs::ScopedSpan serve_span("lbs/serve", obs::ScopedSpan::kRoot);
  obs::ScopedHistogramTimer timer(latency);
  obs::ProvenanceRecord* p = obs::CurrentProvenance();
  WallTimer lbs_timer;
  if (const std::vector<PointOfInterest>* cached = cache_.Lookup(ar)) {
    hits.Increment();
    RecordCacheHitWindow(true);
    if (p != nullptr) {
      p->cache_hit = true;
      p->lbs_seconds = lbs_timer.ElapsedSeconds();
    }
    return LbsAnswer{*cached, /*degraded=*/false};
  }
  RecordCacheHitWindow(false);
  Result<std::vector<PointOfInterest>> fetched = [&] {
    // Records as lbs/serve/cache_miss.
    obs::ScopedSpan miss_span("cache_miss");
    return client_.Fetch(ar);
  }();
  if (fetched.ok()) {
    misses.Increment();
    if (p != nullptr) p->lbs_seconds = lbs_timer.ElapsedSeconds();
    return LbsAnswer{cache_.Put(ar, std::move(*fetched)), /*degraded=*/false};
  }
  if (const std::vector<PointOfInterest>* stale =
          cache_.FindStaleFallback(ar)) {
    misses.Increment();
    stale_serves.Increment();
    obs::TraceInstant("lbs/stale_serve");
    obs::LogDebug("lbs", "provider unreachable (%s); serving stale answer",
                  fetched.status().ToString().c_str());
    if (p != nullptr) {
      p->stale_fallback = true;
      p->lbs_seconds = lbs_timer.ElapsedSeconds();
    }
    return LbsAnswer{*stale, /*degraded=*/true};
  }
  misses.Increment();
  unserved.Increment();
  if (p != nullptr) p->lbs_seconds = lbs_timer.ElapsedSeconds();
  return fetched.status();
}

size_t CachingLbsFrontend::FlushAndBill() {
  const size_t billable = cache_.Flush();
  obs::MetricsRegistry::Global()
      .GetCounter("lbs/answer_cache/billed_requests")
      .Increment(billable);
  obs::MetricsRegistry::Global().GetCounter("lbs/answer_cache/flushes")
      .Increment();
  return billable;
}

}  // namespace pasa
