#include "lbs/provider.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pasa {

std::vector<PointOfInterest> LbsProvider::Answer(
    const AnonymizedRequest& ar) const {
  ++requests_seen_;
  std::string category;
  for (const NameValue& nv : ar.params) {
    if (nv.name == "poi") {
      category = nv.value;
      break;
    }
  }
  return pois_.NearestToCloak(ar.cloak, category, answers_per_request_);
}

const std::vector<PointOfInterest>& CachingLbsFrontend::Serve(
    const AnonymizedRequest& ar) {
  static obs::Histogram& latency =
      obs::MetricsRegistry::Global().GetHistogram("lbs/serve_seconds");
  static obs::Counter& hits =
      obs::MetricsRegistry::Global().GetCounter("lbs/answer_cache/hits");
  static obs::Counter& misses =
      obs::MetricsRegistry::Global().GetCounter("lbs/answer_cache/misses");
  obs::ScopedHistogramTimer timer(latency);
  const size_t hits_before = cache_.stats().hits;
  const auto& answer = cache_.GetOrFetch(ar, [&] {
    // Nests under csp/handle_request when reached through the CSP.
    obs::ScopedSpan miss_span("cache_miss");
    return provider_.Answer(ar);
  });
  if (cache_.stats().hits > hits_before) {
    hits.Increment();
  } else {
    misses.Increment();
  }
  return answer;
}

size_t CachingLbsFrontend::FlushAndBill() {
  const size_t billable = cache_.Flush();
  obs::MetricsRegistry::Global()
      .GetCounter("lbs/answer_cache/billed_requests")
      .Increment(billable);
  obs::MetricsRegistry::Global().GetCounter("lbs/answer_cache/flushes")
      .Increment();
  return billable;
}

}  // namespace pasa
