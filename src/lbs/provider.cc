#include "lbs/provider.h"

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_sink.h"

namespace pasa {

std::vector<PointOfInterest> LbsProvider::Answer(
    const AnonymizedRequest& ar) const {
  requests_seen_.fetch_add(1, std::memory_order_relaxed);
  std::string category;
  for (const NameValue& nv : ar.params) {
    if (nv.name == "poi") {
      category = nv.value;
      break;
    }
  }
  return pois_.NearestToCloak(ar.cloak, category, answers_per_request_);
}

Result<LbsAnswer> CachingLbsFrontend::Serve(const AnonymizedRequest& ar) {
  static obs::Histogram& latency =
      obs::MetricsRegistry::Global().GetHistogram("lbs/serve_seconds");
  static obs::Counter& hits =
      obs::MetricsRegistry::Global().GetCounter("lbs/answer_cache/hits");
  static obs::Counter& misses =
      obs::MetricsRegistry::Global().GetCounter("lbs/answer_cache/misses");
  static obs::Counter& stale_serves = obs::MetricsRegistry::Global()
      .GetCounter("lbs/answer_cache/stale_serves");
  static obs::Counter& unserved =
      obs::MetricsRegistry::Global().GetCounter("lbs/unserved_requests");
  obs::ScopedHistogramTimer timer(latency);
  if (const std::vector<PointOfInterest>* cached = cache_.Lookup(ar)) {
    hits.Increment();
    return LbsAnswer{*cached, /*degraded=*/false};
  }
  Result<std::vector<PointOfInterest>> fetched = [&] {
    // Nests under csp/handle_request when reached through the CSP.
    obs::ScopedSpan miss_span("cache_miss");
    return client_.Fetch(ar);
  }();
  if (fetched.ok()) {
    misses.Increment();
    return LbsAnswer{cache_.Put(ar, std::move(*fetched)), /*degraded=*/false};
  }
  if (const std::vector<PointOfInterest>* stale =
          cache_.FindStaleFallback(ar)) {
    misses.Increment();
    stale_serves.Increment();
    obs::TraceInstant("lbs/stale_serve");
    obs::LogDebug("lbs", "provider unreachable (%s); serving stale answer",
                  fetched.status().ToString().c_str());
    return LbsAnswer{*stale, /*degraded=*/true};
  }
  misses.Increment();
  unserved.Increment();
  return fetched.status();
}

size_t CachingLbsFrontend::FlushAndBill() {
  const size_t billable = cache_.Flush();
  obs::MetricsRegistry::Global()
      .GetCounter("lbs/answer_cache/billed_requests")
      .Increment(billable);
  obs::MetricsRegistry::Global().GetCounter("lbs/answer_cache/flushes")
      .Increment();
  return billable;
}

}  // namespace pasa
