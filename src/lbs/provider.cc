#include "lbs/provider.h"

namespace pasa {

std::vector<PointOfInterest> LbsProvider::Answer(
    const AnonymizedRequest& ar) const {
  ++requests_seen_;
  std::string category;
  for (const NameValue& nv : ar.params) {
    if (nv.name == "poi") {
      category = nv.value;
      break;
    }
  }
  return pois_.NearestToCloak(ar.cloak, category, answers_per_request_);
}

const std::vector<PointOfInterest>& CachingLbsFrontend::Serve(
    const AnonymizedRequest& ar) {
  return cache_.GetOrFetch(ar, [&] { return provider_.Answer(ar); });
}

}  // namespace pasa
