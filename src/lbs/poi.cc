#include "lbs/poi.h"

#include <algorithm>
#include <cmath>

#include "obs/mem.h"

namespace pasa {

PoiDatabase::PoiDatabase(std::vector<PointOfInterest> pois, Coord cell_size)
    : pois_(std::move(pois)) {
  if (pois_.empty()) {
    cell_size_ = 1;
    return;
  }
  Rect box = CellAt(pois_.front().location);
  for (const PointOfInterest& poi : pois_) {
    box = Union(box, CellAt(poi.location));
  }
  origin_x_ = box.x1;
  origin_y_ = box.y1;
  if (cell_size > 0) {
    cell_size_ = cell_size;
  } else {
    const double span =
        std::max<double>(1.0, std::max(box.width(), box.height()));
    cell_size_ = std::max<Coord>(
        1, static_cast<Coord>(span /
                              std::sqrt(static_cast<double>(pois_.size()))));
  }
  for (size_t i = 0; i < pois_.size(); ++i) {
    const Point& p = pois_[i].location;
    grid_[KeyOf((p.x - origin_x_) / cell_size_,
                (p.y - origin_y_) / cell_size_)]
        .push_back(i);
  }
}

int64_t PoiDatabase::SquaredDistanceToRect(const Point& p, const Rect& r) {
  // Half-open: the farthest interior cells are x2-1 / y2-1.
  int64_t dx = 0;
  if (p.x < r.x1) {
    dx = r.x1 - p.x;
  } else if (p.x > r.x2 - 1) {
    dx = p.x - (r.x2 - 1);
  }
  int64_t dy = 0;
  if (p.y < r.y1) {
    dy = r.y1 - p.y;
  } else if (p.y > r.y2 - 1) {
    dy = p.y - (r.y2 - 1);
  }
  return dx * dx + dy * dy;
}

std::vector<PointOfInterest> PoiDatabase::NearestToCloak(
    const Rect& cloak, const std::string& category, size_t count) const {
  if (pois_.empty() || count == 0) return {};
  // Expand rings of grid cells around the cloak until the count-th best
  // distance is certified by the scanned radius.
  const int64_t lo_x = (cloak.x1 - origin_x_) / cell_size_;
  const int64_t hi_x = (cloak.x2 - 1 - origin_x_) / cell_size_;
  const int64_t lo_y = (cloak.y1 - origin_y_) / cell_size_;
  const int64_t hi_y = (cloak.y2 - 1 - origin_y_) / cell_size_;

  std::vector<std::pair<int64_t, size_t>> found;  // (dist^2, poi index)
  size_t scanned_cells = 0;
  const size_t total_cells = grid_.size();
  for (int64_t ring = 0;; ++ring) {
    for (int64_t cx = lo_x - ring; cx <= hi_x + ring; ++cx) {
      for (int64_t cy = lo_y - ring; cy <= hi_y + ring; ++cy) {
        const bool on_border = cx == lo_x - ring || cx == hi_x + ring ||
                               cy == lo_y - ring || cy == hi_y + ring;
        if (ring > 0 && !on_border) continue;
        const auto it = grid_.find(KeyOf(cx, cy));
        if (it == grid_.end()) continue;
        ++scanned_cells;
        for (const size_t index : it->second) {
          if (pois_[index].category != category) continue;
          found.emplace_back(
              SquaredDistanceToRect(pois_[index].location, cloak), index);
        }
      }
    }
    if (found.size() >= count) {
      std::sort(found.begin(), found.end(),
                [&](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first < b.first;
                  return pois_[a.second].id < pois_[b.second].id;
                });
      const double safe = static_cast<double>(ring) * cell_size_;
      if (static_cast<double>(found[count - 1].first) <= safe * safe) break;
    }
    if (scanned_cells >= total_cells && ring > 0) {
      std::sort(found.begin(), found.end(),
                [&](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first < b.first;
                  return pois_[a.second].id < pois_[b.second].id;
                });
      break;  // everything scanned
    }
  }

  std::vector<PointOfInterest> result;
  result.reserve(std::min(count, found.size()));
  for (size_t i = 0; i < found.size() && result.size() < count; ++i) {
    result.push_back(pois_[found[i].second]);
  }
  return result;
}

uint64_t PoiDatabase::ApproxBytes() const {
  uint64_t bytes =
      static_cast<uint64_t>(pois_.capacity()) * sizeof(PointOfInterest);
  for (const PointOfInterest& poi : pois_) {
    bytes += obs::StringApproxBytes(poi.category);
  }
  bytes += static_cast<uint64_t>(grid_.bucket_count()) * sizeof(void*);
  for (const auto& [key, cell] : grid_) {
    bytes += sizeof(std::pair<const uint64_t, std::vector<size_t>>) +
             sizeof(void*) +
             static_cast<uint64_t>(cell.capacity()) * sizeof(size_t);
  }
  return bytes;
}

}  // namespace pasa
