#include "lbs/resilient_client.h"

#include <algorithm>

#include "fault/injector.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/slo.h"
#include "obs/trace_sink.h"
#include "obs/window.h"

namespace pasa {
namespace {

/// Books the simulated micros one Fetch consumed (injected latency +
/// backoff): onto the provenance record, and onto the SimClock so windowed
/// telemetry sees provider slowness as elapsed time (wall time covers only
/// in-process work; see SimClock).
void FinishSimulated(obs::ProvenanceRecord* p, double micros) {
  if (micros <= 0.0) return;
  if (p != nullptr) p->lbs_simulated_micros += micros;
  if (obs::WindowRegistry::Global().enabled() ||
      obs::SloTracker::Global().enabled()) {
    obs::SimClock::Global().Advance(static_cast<uint64_t>(micros));
  }
}

}  // namespace

ResilientLbsClient::ResilientLbsClient(LbsBackend* backend,
                                       const ResilienceOptions& options)
    : backend_(backend), options_(options), jitter_(options.jitter_seed) {}

Result<std::vector<PointOfInterest>> ResilientLbsClient::FetchOnce(
    const AnonymizedRequest& ar, double* simulated_micros) {
  ++stats_.attempts;
  obs::ProvenanceRecord* p = obs::CurrentProvenance();
  if (p != nullptr) ++p->lbs_attempts;
  fault::FaultInjector& injector = fault::FaultInjector::Global();
  const fault::FaultDecision latency = injector.Decide(fault::kLbsLatency);
  if (latency.fire) {
    if (p != nullptr) obs::AddFaultFire(p, fault::kLbsLatency);
    *simulated_micros += latency.latency_micros;
    if (*simulated_micros > options_.deadline_micros) {
      return Status::DeadlineExceeded(
          "provider latency exceeded the request deadline");
    }
  }
  if (injector.ShouldInject(fault::kLbsTimeout)) {
    if (p != nullptr) obs::AddFaultFire(p, fault::kLbsTimeout);
    // A hung attempt consumes the whole remaining budget.
    *simulated_micros = options_.deadline_micros + 1.0;
    return Status::DeadlineExceeded("provider timed out");
  }
  if (injector.ShouldInject(fault::kLbsError)) {
    if (p != nullptr) obs::AddFaultFire(p, fault::kLbsError);
    return Status::Unavailable("provider error");
  }
  return backend_->Fetch(ar);
}

void ResilientLbsClient::RecordSuccess() {
  consecutive_failures_ = 0;
  if (breaker_state_ != BreakerState::kClosed) {
    obs::LogInfo("lbs", "circuit breaker closed after successful probe");
    obs::TraceInstant("lbs/breaker_closed");
  }
  breaker_state_ = BreakerState::kClosed;
}

void ResilientLbsClient::RecordFailure() {
  ++stats_.failures;
  ++consecutive_failures_;
  const bool reopen_after_probe = breaker_state_ == BreakerState::kHalfOpen;
  if (reopen_after_probe ||
      (breaker_state_ == BreakerState::kClosed &&
       consecutive_failures_ >= options_.breaker_failure_threshold)) {
    breaker_state_ = BreakerState::kOpen;
    cooldown_remaining_ = options_.breaker_cooldown_requests;
    ++stats_.breaker_opens;
    obs::MetricsRegistry::Global()
        .GetCounter("lbs/resilient/breaker_opens")
        .Increment();
    obs::TraceInstant("lbs/breaker_opened");
    obs::LogWarn("lbs",
                 "circuit breaker opened (%s, %d consecutive failures); "
                 "failing fast for %llu requests",
                 reopen_after_probe ? "probe failed" : "threshold reached",
                 consecutive_failures_,
                 static_cast<unsigned long long>(cooldown_remaining_));
  }
}

Result<std::vector<PointOfInterest>> ResilientLbsClient::Fetch(
    const AnonymizedRequest& ar) {
  static obs::Counter& retries_counter =
      obs::MetricsRegistry::Global().GetCounter("lbs/resilient/retries");
  static obs::Counter& fail_fast_counter =
      obs::MetricsRegistry::Global().GetCounter("lbs/resilient/fail_fast");
  static obs::Counter& deadline_counter = obs::MetricsRegistry::Global()
      .GetCounter("lbs/resilient/deadline_exceeded");
  ++stats_.requests;
  obs::ProvenanceRecord* p = obs::CurrentProvenance();
  if (breaker_state_ == BreakerState::kOpen) {
    if (cooldown_remaining_ > 0) {
      --cooldown_remaining_;
      ++stats_.fail_fast;
      fail_fast_counter.Increment();
      if (p != nullptr) p->breaker_rejected = true;
      return Status::Unavailable("circuit breaker open");
    }
    breaker_state_ = BreakerState::kHalfOpen;  // let one probe through
    obs::TraceInstant("lbs/breaker_half_open");
  }

  double simulated_micros = 0.0;
  double backoff = options_.initial_backoff_micros;
  Status last = Status::Unavailable("no attempt made");
  const int attempts = std::max(1, options_.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    Result<std::vector<PointOfInterest>> answer =
        FetchOnce(ar, &simulated_micros);
    if (answer.ok()) {
      RecordSuccess();
      FinishSimulated(p, simulated_micros);
      return answer;
    }
    last = answer.status();
    if (last.code() == StatusCode::kDeadlineExceeded) break;
    if (attempt + 1 >= attempts) break;
    // Exponential backoff with full deterministic jitter; backing off
    // consumes the same simulated budget injected latency does.
    simulated_micros += backoff * jitter_.NextDouble();
    backoff = std::min(backoff * options_.backoff_multiplier,
                       options_.max_backoff_micros);
    if (simulated_micros > options_.deadline_micros) {
      last = Status::DeadlineExceeded("retry backoff exceeded the deadline");
      break;
    }
    ++stats_.retries;
    retries_counter.Increment();
    if (p != nullptr) ++p->lbs_retries;
  }
  if (last.code() == StatusCode::kDeadlineExceeded) {
    ++stats_.deadline_exceeded;
    deadline_counter.Increment();
    if (p != nullptr) p->deadline_exceeded = true;
  }
  RecordFailure();
  FinishSimulated(p, simulated_micros);
  return last;
}

}  // namespace pasa
