#ifndef PASA_LBS_POI_H_
#define PASA_LBS_POI_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/point.h"
#include "geo/rect.h"

namespace pasa {

/// A point of interest the LBS provider indexes (gas station, restaurant,
/// hospital, ...).
struct PointOfInterest {
  int64_t id = 0;
  Point location;
  std::string category;  ///< matches the "poi" request parameter

  friend bool operator==(const PointOfInterest& a, const PointOfInterest& b) =
      default;
};

/// Grid-indexed POI store answering the query shape anonymized requests
/// need: "the k points of category c nearest to cloak R" (Section VII's
/// nearest-neighbor search for a cloak). Distance from a POI to a cloak is
/// 0 inside the cloak and the Euclidean distance to its boundary outside,
/// so results are exactly the POIs any sender inside the cloak might be
/// nearest to, ranked pessimistically.
class PoiDatabase {
 public:
  /// Builds the index over `pois`. `cell_size` tunes the grid granularity;
  /// <= 0 picks a default from the data extent.
  explicit PoiDatabase(std::vector<PointOfInterest> pois,
                       Coord cell_size = 0);

  size_t size() const { return pois_.size(); }
  const std::vector<PointOfInterest>& pois() const { return pois_; }

  /// The `count` POIs of `category` with smallest distance to `cloak`
  /// (ties broken by id). Fewer are returned when the category is scarce.
  std::vector<PointOfInterest> NearestToCloak(const Rect& cloak,
                                              const std::string& category,
                                              size_t count) const;

  /// Squared distance from `p` to the half-open rectangle `r` (0 inside).
  static int64_t SquaredDistanceToRect(const Point& p, const Rect& r);

  /// Approximate heap bytes held by the POI store and its grid index
  /// (memory accounting, obs/mem.h).
  uint64_t ApproxBytes() const;

 private:
  struct CellKey {
    int64_t cx = 0;
    int64_t cy = 0;
  };
  uint64_t KeyOf(int64_t cx, int64_t cy) const {
    return (static_cast<uint64_t>(cx) << 32) ^
           static_cast<uint64_t>(static_cast<uint32_t>(cy));
  }

  std::vector<PointOfInterest> pois_;
  Coord cell_size_ = 1;
  Coord origin_x_ = 0;
  Coord origin_y_ = 0;
  std::unordered_map<uint64_t, std::vector<size_t>> grid_;
};

}  // namespace pasa

#endif  // PASA_LBS_POI_H_
