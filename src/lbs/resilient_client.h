#ifndef PASA_LBS_RESILIENT_CLIENT_H_
#define PASA_LBS_RESILIENT_CLIENT_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "lbs/backend.h"

namespace pasa {

/// Tuning for the CSP-side resilience layer in front of the LBS backend.
/// Time-like quantities are simulated microseconds: the in-process backend
/// has no real network, so latency enters the system only through the fault
/// injector's lbs/latency payload, and the deadline/backoff arithmetic below
/// is exact and deterministic rather than wall-clock dependent.
struct ResilienceOptions {
  /// Total tries per request (1 initial + retries). Only kUnavailable is
  /// retried; kDeadlineExceeded means the budget is gone.
  int max_attempts = 3;
  /// Per-request budget; injected latency and backoff both consume it.
  double deadline_micros = 50'000;
  /// Exponential backoff between attempts, with deterministic jitter.
  double initial_backoff_micros = 1'000;
  double backoff_multiplier = 2.0;
  double max_backoff_micros = 16'000;
  /// Seed of the jitter stream (full jitter in [0, backoff)).
  uint64_t jitter_seed = 2010;
  /// Consecutive failed requests (after retries) that open the breaker.
  int breaker_failure_threshold = 5;
  /// While open, this many requests fail fast before one half-open probe is
  /// allowed through. Counted in requests, not wall time, so replay is
  /// deterministic.
  uint64_t breaker_cooldown_requests = 16;
};

/// The self-healing hop between the answer cache and the LBS backend:
/// bounded retries with exponential backoff + deterministic jitter, a
/// per-request deadline, and a circuit breaker that fails fast while the
/// provider is down and probes it again after a cooldown. All decisions are
/// functions of statuses, the configured schedule and seeded streams, never
/// of wall time — a chaos run replays identically from its seed.
///
/// Not thread-safe; serialize access like the answer cache it sits behind.
class ResilientLbsClient {
 public:
  enum class BreakerState { kClosed, kOpen, kHalfOpen };

  struct Stats {
    uint64_t requests = 0;
    uint64_t attempts = 0;          ///< backend tries incl. injected failures
    uint64_t retries = 0;
    uint64_t failures = 0;          ///< requests that exhausted all attempts
    uint64_t fail_fast = 0;         ///< rejected by the open breaker
    uint64_t deadline_exceeded = 0;
    uint64_t breaker_opens = 0;

    friend bool operator==(const Stats& a, const Stats& b) = default;
  };

  /// `backend` must outlive the client.
  ResilientLbsClient(LbsBackend* backend, const ResilienceOptions& options);

  /// Clone-with-rebind: copies `other`'s full resilience state (breaker,
  /// cooldown, jitter stream position, stats) but talks to `backend`. Used
  /// when the owning frontend is deep-copied (the state-space explorer
  /// branches a live server) and the clone must point at the cloned backend.
  ResilientLbsClient(const ResilientLbsClient& other, LbsBackend* backend)
      : backend_(backend),
        options_(other.options_),
        jitter_(other.jitter_),
        breaker_state_(other.breaker_state_),
        consecutive_failures_(other.consecutive_failures_),
        cooldown_remaining_(other.cooldown_remaining_),
        stats_(other.stats_) {}

  /// Fetches `ar` with retries/deadline/breaker applied. On failure the
  /// status is kUnavailable (provider down or breaker open) or
  /// kDeadlineExceeded (budget consumed).
  Result<std::vector<PointOfInterest>> Fetch(const AnonymizedRequest& ar);

  BreakerState breaker_state() const { return breaker_state_; }
  /// Breaker bookkeeping beyond the coarse state, exposed so deterministic
  /// replay/exploration can include the full resilience state in a digest:
  /// two clients agreeing on (state, consecutive_failures, cooldown) behave
  /// identically on the same future inputs.
  int consecutive_failures() const { return consecutive_failures_; }
  uint64_t cooldown_remaining() const { return cooldown_remaining_; }
  const Stats& stats() const { return stats_; }
  const ResilienceOptions& options() const { return options_; }

 private:
  /// One try: consults the lbs/latency, lbs/timeout and lbs/error injection
  /// points, then the backend. `simulated_micros` accumulates latency.
  Result<std::vector<PointOfInterest>> FetchOnce(const AnonymizedRequest& ar,
                                                 double* simulated_micros);

  void RecordSuccess();
  void RecordFailure();

  LbsBackend* backend_;
  ResilienceOptions options_;
  Rng jitter_;
  BreakerState breaker_state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  uint64_t cooldown_remaining_ = 0;
  Stats stats_;
};

}  // namespace pasa

#endif  // PASA_LBS_RESILIENT_CLIENT_H_
