#ifndef PASA_LBS_BACKEND_H_
#define PASA_LBS_BACKEND_H_

#include <vector>

#include "common/status.h"
#include "lbs/poi.h"
#include "model/anonymized_request.h"

namespace pasa {

/// Abstract transport to the (untrusted, third-party) LBS provider. The
/// production implementation is the in-process LbsProvider; tests substitute
/// flaky backends to exercise the resilience layer. A backend sees only
/// anonymized requests — cloaks and parameters, never identities.
///
/// Failures are part of the contract: a real provider sits across a network
/// hop and may be down (kUnavailable) or slow (kDeadlineExceeded).
class LbsBackend {
 public:
  virtual ~LbsBackend() = default;

  /// Evaluates one anonymized request.
  virtual Result<std::vector<PointOfInterest>> Fetch(
      const AnonymizedRequest& ar) = 0;
};

/// What the CSP hands back to a client: the POIs plus a degradation flag.
/// `degraded` is true when the provider could not be reached and the answer
/// was served stale/approximate from the answer cache (an overlapping cloak
/// with the same parameters). Degradation never touches the k-anonymity
/// guarantee — the cloak was formed before the LBS hop and identities never
/// cross the CSP boundary either way; only answer freshness is relaxed.
struct LbsAnswer {
  std::vector<PointOfInterest> pois;
  bool degraded = false;
};

}  // namespace pasa

#endif  // PASA_LBS_BACKEND_H_
