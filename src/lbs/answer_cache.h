#ifndef PASA_LBS_ANSWER_CACHE_H_
#define PASA_LBS_ANSWER_CACHE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "geo/rect.h"
#include "model/anonymized_request.h"
#include "obs/mem.h"

namespace pasa {

/// The Section VII "Beyond k-anonymity" extension: the anonymization server
/// caches LBS answers keyed by (cloak, parameters), so the LBS provider
/// never sees duplicate anonymized requests within (or across) snapshots and
/// cannot mount the l-diversity / t-closeness style frequency-counting
/// attacks. The cache also keeps the aggregate request count the anonymizer
/// submits to the LBS at flush time for billing.
///
/// Beyond deduplication, the cache doubles as the degradation store of the
/// self-healing serving path: when the provider is unreachable,
/// FindStaleFallback offers the best previously cached answer for the same
/// parameters whose cloak overlaps the request's (a stale/approximate answer
/// beats a dropped request, and the k-anonymity of the cloak is unaffected).
template <typename Answer>
class AnswerCache {
 public:
  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t flushes = 0;
    /// Fallback answers served while the provider was unreachable.
    size_t stale_serves = 0;
    /// Requests served since the last flush — reported to the LBS for
    /// billing when the cache is flushed (the paper's billing adjustment).
    size_t billable_since_flush = 0;
  };

  /// Exact lookup by (cloak, params). Counts a hit (and bills it) or a
  /// miss; a miss is expected to be followed by Put or FindStaleFallback.
  const Answer* Lookup(const AnonymizedRequest& ar) {
    const auto it = cache_.find(KeyOf(ar));
    if (it == cache_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    ++stats_.billable_since_flush;
    return &it->second.answer;
  }

  /// Stores a freshly fetched (and therefore billable) answer.
  const Answer& Put(const AnonymizedRequest& ar, Answer answer) {
    ++stats_.billable_since_flush;
    Entry entry{ar.cloak, ParamsKeyOf(ar), std::move(answer)};
    return cache_.insert_or_assign(KeyOf(ar), std::move(entry))
        .first->second.answer;
  }

  /// Degradation path: the cached answer with identical parameters whose
  /// cloak overlaps `ar`'s the most (ties broken by insertion-independent
  /// key order for determinism); nullptr when nothing overlaps. Served
  /// answers still count as billable — the data was produced by the LBS.
  const Answer* FindStaleFallback(const AnonymizedRequest& ar) {
    const std::string params = ParamsKeyOf(ar);
    const Entry* best = nullptr;
    const std::string* best_key = nullptr;
    int64_t best_overlap = 0;
    for (const auto& [key, entry] : cache_) {
      if (entry.params != params || !entry.cloak.Intersects(ar.cloak)) {
        continue;
      }
      const int64_t overlap = OverlapArea(entry.cloak, ar.cloak);
      if (best == nullptr || overlap > best_overlap ||
          (overlap == best_overlap && key < *best_key)) {
        best = &entry;
        best_key = &key;
        best_overlap = overlap;
      }
    }
    if (best == nullptr) return nullptr;
    ++stats_.stale_serves;
    ++stats_.billable_since_flush;
    return &best->answer;
  }

  /// Returns the cached answer for `ar`'s (cloak, params) key, fetching it
  /// from the LBS via `fetch` on a miss. Only misses reach the provider.
  const Answer& GetOrFetch(const AnonymizedRequest& ar,
                           const std::function<Answer()>& fetch) {
    if (const Answer* cached = Lookup(ar)) return *cached;
    return Put(ar, fetch());
  }

  /// Drops every cached answer (the paper flushes "at infrequent intervals,
  /// for instance once a day" to absorb POI churn) and returns the billable
  /// request count accumulated since the previous flush.
  size_t Flush() {
    cache_.clear();
    ++stats_.flushes;
    const size_t billable = stats_.billable_since_flush;
    stats_.billable_since_flush = 0;
    return billable;
  }

  size_t size() const { return cache_.size(); }
  const Stats& stats() const { return stats_; }

  /// Approximate heap bytes held by the cache: hash buckets, per-entry node
  /// + key/params heap, and — when Answer is a container exposing
  /// capacity() — the answer payload itself (memory accounting, obs/mem.h).
  uint64_t ApproxBytes() const {
    uint64_t bytes =
        static_cast<uint64_t>(cache_.bucket_count()) * sizeof(void*);
    for (const auto& [key, entry] : cache_) {
      // Node overhead: the pair plus the chaining pointer libstdc++ keeps
      // per node (approximation, intentionally allocator-agnostic).
      bytes += sizeof(std::pair<const std::string, Entry>) + sizeof(void*);
      bytes += obs::StringApproxBytes(key);
      bytes += obs::StringApproxBytes(entry.params);
      if constexpr (requires(const Answer& a) {
                      a.capacity();
                      typename Answer::value_type;
                    }) {
        bytes += static_cast<uint64_t>(entry.answer.capacity()) *
                 sizeof(typename Answer::value_type);
      }
    }
    return bytes;
  }

  /// The cached (cloak, params) keys in sorted order. The backing map is
  /// unordered, so callers that fold cache contents into a canonical state
  /// digest (the explorer's visited-set hashing) need this stable view.
  std::vector<std::string> SortedKeys() const {
    std::vector<std::string> keys;
    keys.reserve(cache_.size());
    for (const auto& [key, entry] : cache_) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    return keys;
  }

 private:
  struct Entry {
    Rect cloak;
    std::string params;
    Answer answer;
  };

  static int64_t OverlapArea(const Rect& a, const Rect& b) {
    const int64_t w = std::min(a.x2, b.x2) - std::max(a.x1, b.x1);
    const int64_t h = std::min(a.y2, b.y2) - std::max(a.y1, b.y1);
    return std::max<int64_t>(w, 0) * std::max<int64_t>(h, 0);
  }

  static std::string ParamsKeyOf(const AnonymizedRequest& ar) {
    std::string key;
    for (const NameValue& nv : ar.params) {
      key += '|';
      key += nv.name;
      key += '=';
      key += nv.value;
    }
    return key;
  }

  static std::string KeyOf(const AnonymizedRequest& ar) {
    // rid deliberately excluded: duplicates must collide.
    return ar.cloak.ToString() + ParamsKeyOf(ar);
  }

  std::unordered_map<std::string, Entry> cache_;
  Stats stats_;
};

}  // namespace pasa

#endif  // PASA_LBS_ANSWER_CACHE_H_
