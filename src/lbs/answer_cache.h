#ifndef PASA_LBS_ANSWER_CACHE_H_
#define PASA_LBS_ANSWER_CACHE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "model/anonymized_request.h"

namespace pasa {

/// The Section VII "Beyond k-anonymity" extension: the anonymization server
/// caches LBS answers keyed by (cloak, parameters), so the LBS provider
/// never sees duplicate anonymized requests within (or across) snapshots and
/// cannot mount the l-diversity / t-closeness style frequency-counting
/// attacks. The cache also keeps the aggregate request count the anonymizer
/// submits to the LBS at flush time for billing.
template <typename Answer>
class AnswerCache {
 public:
  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t flushes = 0;
    /// Requests served since the last flush — reported to the LBS for
    /// billing when the cache is flushed (the paper's billing adjustment).
    size_t billable_since_flush = 0;
  };

  /// Returns the cached answer for `ar`'s (cloak, params) key, fetching it
  /// from the LBS via `fetch` on a miss. Only misses reach the provider.
  const Answer& GetOrFetch(const AnonymizedRequest& ar,
                           const std::function<Answer()>& fetch) {
    ++stats_.billable_since_flush;
    const std::string key = KeyOf(ar);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++stats_.hits;
      return it->second;
    }
    ++stats_.misses;
    return cache_.emplace(key, fetch()).first->second;
  }

  /// Drops every cached answer (the paper flushes "at infrequent intervals,
  /// for instance once a day" to absorb POI churn) and returns the billable
  /// request count accumulated since the previous flush.
  size_t Flush() {
    cache_.clear();
    ++stats_.flushes;
    const size_t billable = stats_.billable_since_flush;
    stats_.billable_since_flush = 0;
    return billable;
  }

  size_t size() const { return cache_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  static std::string KeyOf(const AnonymizedRequest& ar) {
    // rid deliberately excluded: duplicates must collide.
    std::string key = ar.cloak.ToString();
    for (const NameValue& nv : ar.params) {
      key += '|';
      key += nv.name;
      key += '=';
      key += nv.value;
    }
    return key;
  }

  std::unordered_map<std::string, Answer> cache_;
  Stats stats_;
};

}  // namespace pasa

#endif  // PASA_LBS_ANSWER_CACHE_H_
