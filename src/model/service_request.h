#ifndef PASA_MODEL_SERVICE_REQUEST_H_
#define PASA_MODEL_SERVICE_REQUEST_H_

#include <string>
#include <vector>

#include "geo/point.h"
#include "model/location_database.h"

namespace pasa {

/// One name-value pair of a request's parameter vector V, e.g.
/// ("poi", "rest") or ("cat", "ital").
struct NameValue {
  std::string name;
  std::string value;

  friend bool operator==(const NameValue& a, const NameValue& b) = default;
};

/// The parameter vector V carried unchanged from service request to
/// anonymized request.
using ParamVector = std::vector<NameValue>;

/// A service request (Definition 1): tuple <u, (x, y), V> created by the CSP
/// from a user's request plus the MPC-provided location.
struct ServiceRequest {
  UserId sender = 0;
  Point location;
  ParamVector params;

  friend bool operator==(const ServiceRequest& a, const ServiceRequest& b) =
      default;
};

/// `id(SR)` of the paper: the sender identifier.
inline UserId id(const ServiceRequest& sr) { return sr.sender; }

/// `loc(SR)` of the paper: the request's coordinates.
inline Point loc(const ServiceRequest& sr) { return sr.location; }

/// True if the request is valid w.r.t. `db` (Definition 1): the row
/// <u, x, y> appears in the snapshot.
bool IsValid(const ServiceRequest& sr, const LocationDatabase& db);

}  // namespace pasa

#endif  // PASA_MODEL_SERVICE_REQUEST_H_
