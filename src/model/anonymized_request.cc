#include "model/anonymized_request.h"

namespace pasa {

bool Masks(const AnonymizedRequest& ar, const ServiceRequest& sr) {
  return ar.cloak.Contains(sr.location) && ar.params == sr.params;
}

}  // namespace pasa
