#ifndef PASA_MODEL_CLOAKING_H_
#define PASA_MODEL_CLOAKING_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "geo/rect.h"
#include "model/anonymized_request.h"
#include "model/location_database.h"

namespace pasa {

/// A bulk cloaking policy materialized over one location-database snapshot:
/// for every row index i of the snapshot, `cloak(i)` is the region the policy
/// assigns to that user's requests. This is the "function from user locations
/// to cloaks" the paper overloads the term policy with (footnote 1); the full
/// Definition-4 policy is recovered by `Apply()` below.
class CloakingTable {
 public:
  CloakingTable() = default;
  /// Creates a table for a snapshot of `size` users with unassigned cloaks.
  explicit CloakingTable(size_t size) : cloaks_(size) {}

  size_t size() const { return cloaks_.size(); }

  /// Assigns user (row index) `index` the cloak `region`.
  void Assign(size_t index, const Rect& region) { cloaks_[index] = region; }

  const Rect& cloak(size_t index) const { return cloaks_[index]; }

  /// Cost of the policy on D (Section IV): sum over all users of the area of
  /// their cloak, i.e. the cost of the request set where every user issues
  /// one request. Exact int64.
  int64_t TotalCost() const;

  /// TotalCost / number of users, the "average cloak area" of Figure 5(a).
  double AverageArea() const;

  /// Sizes of the cloaking groups: for each distinct cloak region, the number
  /// of users assigned exactly that region. The policy-aware attacker's view:
  /// the possible senders of an anonymized request with cloak R are exactly
  /// the members of R's group (see attack/auditor.h).
  std::unordered_map<std::string, size_t> GroupSizesByRegion() const;

  /// Smallest nonempty cloaking-group size; 0 for an empty table. A bulk
  /// policy is sender k-anonymous against policy-aware attackers iff this is
  /// >= k (Lemma 3 via the group-size characterization).
  size_t MinGroupSize() const;

  /// True if every user's cloak contains their location (the policy is
  /// masking, Definition 4).
  bool IsMasking(const LocationDatabase& db) const;

  /// Applies the policy to a service request, producing the anonymized
  /// request the CSP forwards (Definition 4 direction). Fails with NotFound
  /// if the sender is not in the snapshot, or InvalidArgument if the request
  /// is not valid w.r.t. `db`.
  Result<AnonymizedRequest> Apply(const LocationDatabase& db,
                                  const ServiceRequest& sr,
                                  RequestId rid) const;

  /// Approximate heap bytes held by the table (memory accounting,
  /// obs/mem.h).
  uint64_t ApproxBytes() const {
    return static_cast<uint64_t>(cloaks_.capacity()) * sizeof(Rect);
  }

 private:
  std::vector<Rect> cloaks_;
};

/// Abstract bulk anonymization algorithm: consumes a snapshot, produces a
/// cloaking table. Implemented by the policy-aware optimum (pasa/) and each
/// policy-unaware baseline (policies/).
class BulkPolicyAlgorithm {
 public:
  virtual ~BulkPolicyAlgorithm() = default;

  /// Human-readable algorithm name for experiment tables ("Casper", "PUQ",
  /// "policy-aware optimum", ...).
  virtual std::string name() const = 0;

  /// Computes the cloaking for every user of `db` at anonymity level `k`.
  /// Returns Infeasible when no k-anonymous policy of this family exists
  /// (e.g. fewer than k users).
  virtual Result<CloakingTable> Cloak(const LocationDatabase& db,
                                      int k) const = 0;
};

}  // namespace pasa

#endif  // PASA_MODEL_CLOAKING_H_
