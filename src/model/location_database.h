#ifndef PASA_MODEL_LOCATION_DATABASE_H_
#define PASA_MODEL_LOCATION_DATABASE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geo/point.h"
#include "geo/rect.h"

namespace pasa {

/// Identifier for a mobile user (the `userid` attribute of schema D).
using UserId = int64_t;

/// One row of the location database: relation D = {userid, locx, locy}.
struct UserLocation {
  UserId user = 0;
  Point location;

  friend bool operator==(const UserLocation& a, const UserLocation& b) =
      default;
};

/// A snapshot of the location database (Section II-A): the locations of all
/// devices as provided by the Mobile Positioning Center at one instant.
/// The CSP's state over time is a sequence of these snapshots.
///
/// Rows are stored in insertion order; `index` below refers to a row's
/// position, which the anonymization modules use as a dense user handle.
class LocationDatabase {
 public:
  LocationDatabase() = default;
  /// Builds a snapshot from rows. User ids need not be dense but must be
  /// unique; uniqueness is the caller's contract (checked in debug builds).
  explicit LocationDatabase(std::vector<UserLocation> rows);

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  const UserLocation& row(size_t index) const { return rows_[index]; }
  const std::vector<UserLocation>& rows() const { return rows_; }

  /// Appends one row.
  void Add(UserId user, Point location);

  /// Returns the row index of `user`, or NotFound.
  Result<size_t> IndexOf(UserId user) const;

  /// Moves `user` to `new_location` (the snapshot-to-snapshot update of
  /// Section II-A). Returns NotFound if the user is absent.
  Status MoveUser(UserId user, Point new_location);

  /// Smallest half-open rectangle containing all locations; the zero rect
  /// when empty.
  Rect BoundingBox() const;

  /// Number of rows whose location lies inside `region` — the quantity d(m)
  /// of Definition 7 when `region` is a tree quadrant. Linear scan; the tree
  /// modules maintain these counts incrementally instead.
  size_t CountInside(const Rect& region) const;

  /// Approximate heap bytes held by the snapshot (memory accounting,
  /// obs/mem.h).
  uint64_t ApproxBytes() const {
    return static_cast<uint64_t>(rows_.capacity()) * sizeof(UserLocation);
  }

 private:
  std::vector<UserLocation> rows_;
};

}  // namespace pasa

#endif  // PASA_MODEL_LOCATION_DATABASE_H_
