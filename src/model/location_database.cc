#include "model/location_database.h"

#include <algorithm>
#include <cassert>

namespace pasa {

LocationDatabase::LocationDatabase(std::vector<UserLocation> rows)
    : rows_(std::move(rows)) {
#ifndef NDEBUG
  std::vector<UserId> ids;
  ids.reserve(rows_.size());
  for (const auto& r : rows_) ids.push_back(r.user);
  std::sort(ids.begin(), ids.end());
  assert(std::adjacent_find(ids.begin(), ids.end()) == ids.end() &&
         "duplicate user ids in location database");
#endif
}

void LocationDatabase::Add(UserId user, Point location) {
  rows_.push_back(UserLocation{user, location});
}

Result<size_t> LocationDatabase::IndexOf(UserId user) const {
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].user == user) return i;
  }
  return Status::NotFound("user " + std::to_string(user) +
                          " not in location database");
}

Status LocationDatabase::MoveUser(UserId user, Point new_location) {
  Result<size_t> index = IndexOf(user);
  if (!index.ok()) return index.status();
  rows_[*index].location = new_location;
  return Status::Ok();
}

Rect LocationDatabase::BoundingBox() const {
  if (rows_.empty()) return Rect{};
  Rect box = CellAt(rows_.front().location);
  for (const auto& r : rows_) box = Union(box, CellAt(r.location));
  return box;
}

size_t LocationDatabase::CountInside(const Rect& region) const {
  size_t n = 0;
  for (const auto& r : rows_) {
    if (region.Contains(r.location)) ++n;
  }
  return n;
}

}  // namespace pasa
