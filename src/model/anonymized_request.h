#ifndef PASA_MODEL_ANONYMIZED_REQUEST_H_
#define PASA_MODEL_ANONYMIZED_REQUEST_H_

#include <cstdint>

#include "geo/rect.h"
#include "model/service_request.h"

namespace pasa {

/// Unique identifier the CSP assigns to each anonymized request.
using RequestId = int64_t;

/// An anonymized request (Definition 2): tuple <rid, rho, V> where rho is a
/// connected closed region — here the rectangular cloak used by quad-tree and
/// semi-quadrant policies.
struct AnonymizedRequest {
  RequestId rid = 0;
  Rect cloak;
  ParamVector params;

  friend bool operator==(const AnonymizedRequest& a,
                         const AnonymizedRequest& b) = default;
};

/// `reg(AR)` of the paper: the cloak region.
inline const Rect& reg(const AnonymizedRequest& ar) { return ar.cloak; }

/// True if `ar` masks `sr` (Definition 3): the service request's location
/// lies inside the cloak and the parameter vectors agree.
bool Masks(const AnonymizedRequest& ar, const ServiceRequest& sr);

}  // namespace pasa

#endif  // PASA_MODEL_ANONYMIZED_REQUEST_H_
