#include "model/service_request.h"

namespace pasa {

bool IsValid(const ServiceRequest& sr, const LocationDatabase& db) {
  Result<size_t> index = db.IndexOf(sr.sender);
  if (!index.ok()) return false;
  return db.row(*index).location == sr.location;
}

}  // namespace pasa
