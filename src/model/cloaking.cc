#include "model/cloaking.h"

#include <algorithm>
#include <limits>

namespace pasa {

int64_t CloakingTable::TotalCost() const {
  int64_t total = 0;
  for (const Rect& r : cloaks_) total += r.Area();
  return total;
}

double CloakingTable::AverageArea() const {
  if (cloaks_.empty()) return 0.0;
  return static_cast<double>(TotalCost()) / static_cast<double>(cloaks_.size());
}

std::unordered_map<std::string, size_t> CloakingTable::GroupSizesByRegion()
    const {
  std::unordered_map<std::string, size_t> groups;
  groups.reserve(cloaks_.size());
  for (const Rect& r : cloaks_) ++groups[r.ToString()];
  return groups;
}

size_t CloakingTable::MinGroupSize() const {
  const auto groups = GroupSizesByRegion();
  size_t best = 0;
  for (const auto& [region, count] : groups) {
    if (best == 0 || count < best) best = count;
  }
  return best;
}

bool CloakingTable::IsMasking(const LocationDatabase& db) const {
  if (db.size() != cloaks_.size()) return false;
  for (size_t i = 0; i < cloaks_.size(); ++i) {
    if (!cloaks_[i].Contains(db.row(i).location)) return false;
  }
  return true;
}

Result<AnonymizedRequest> CloakingTable::Apply(const LocationDatabase& db,
                                               const ServiceRequest& sr,
                                               RequestId rid) const {
  Result<size_t> index = db.IndexOf(sr.sender);
  if (!index.ok()) return index.status();
  if (db.row(*index).location != sr.location) {
    return Status::InvalidArgument(
        "service request is not valid w.r.t. the snapshot (location "
        "mismatch for user " +
        std::to_string(sr.sender) + ")");
  }
  if (*index >= cloaks_.size()) {
    return Status::Internal("cloaking table smaller than snapshot");
  }
  return AnonymizedRequest{rid, cloaks_[*index], sr.params};
}

}  // namespace pasa
