#ifndef PASA_CIRCULAR_CANDIDATES_H_
#define PASA_CIRCULAR_CANDIDATES_H_

#include <vector>

#include "geo/circle.h"
#include "model/location_database.h"

namespace pasa {

/// One candidate cloak for the circular variant of optimal policy-aware
/// anonymization (Theorem 1): a circle centered at one of the given centers
/// (public landmarks / cell towers in the paper) whose radius reaches some
/// user. Any optimal solution only needs such circles — shrinking a cloak to
/// the farthest user it keeps loses nothing.
struct CandidateCircle {
  Circle circle;
  size_t center_index = 0;
  /// Snapshot rows inside the circle, ascending.
  std::vector<size_t> covered_rows;
};

/// Enumerates all |SC| x |D| candidate circles, per center sorted by radius
/// (so covered_rows of consecutive candidates are nested prefixes).
std::vector<CandidateCircle> EnumerateCandidateCircles(
    const LocationDatabase& db, const std::vector<Point>& centers);

}  // namespace pasa

#endif  // PASA_CIRCULAR_CANDIDATES_H_
