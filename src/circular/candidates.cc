#include "circular/candidates.h"

#include <algorithm>
#include <cmath>

namespace pasa {

std::vector<CandidateCircle> EnumerateCandidateCircles(
    const LocationDatabase& db, const std::vector<Point>& centers) {
  std::vector<CandidateCircle> candidates;
  candidates.reserve(centers.size() * db.size());
  for (size_t c = 0; c < centers.size(); ++c) {
    const Point& center = centers[c];
    std::vector<std::pair<int64_t, size_t>> by_distance;
    by_distance.reserve(db.size());
    for (size_t row = 0; row < db.size(); ++row) {
      by_distance.emplace_back(SquaredDistance(db.row(row).location, center),
                               row);
    }
    std::sort(by_distance.begin(), by_distance.end());
    std::vector<size_t> covered;
    covered.reserve(db.size());
    for (size_t i = 0; i < by_distance.size(); ++i) {
      covered.push_back(by_distance[i].second);
      // Skip duplicate radii: the larger prefix dominates.
      if (i + 1 < by_distance.size() &&
          by_distance[i + 1].first == by_distance[i].first) {
        continue;
      }
      CandidateCircle candidate;
      candidate.circle =
          Circle{static_cast<double>(center.x), static_cast<double>(center.y),
                 std::sqrt(static_cast<double>(by_distance[i].first))};
      candidate.center_index = c;
      candidate.covered_rows = covered;
      std::sort(candidate.covered_rows.begin(), candidate.covered_rows.end());
      candidates.push_back(std::move(candidate));
    }
  }
  return candidates;
}

}  // namespace pasa
