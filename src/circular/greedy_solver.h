#ifndef PASA_CIRCULAR_GREEDY_SOLVER_H_
#define PASA_CIRCULAR_GREEDY_SOLVER_H_

#include <vector>

#include "circular/exact_solver.h"
#include "common/status.h"

namespace pasa {

/// Polynomial heuristic for the NP-complete circular variant (Theorem 1
/// rules out an exact PTIME algorithm): repeatedly commit the candidate
/// circle with the best area-per-newly-covered-user ratio among those
/// covering at least k unassigned users, then repair the tail by growing a
/// committed circle (same center, larger radius) over any stranded users.
/// Always returns a valid policy-aware k-anonymous cloaking when the
/// instance is feasible.
Result<CircularSolution> SolveGreedyCircular(
    const LocationDatabase& db, const std::vector<Point>& centers, int k);

}  // namespace pasa

#endif  // PASA_CIRCULAR_GREEDY_SOLVER_H_
