#include "circular/greedy_solver.h"

#include <algorithm>
#include <cmath>

namespace pasa {

Result<CircularSolution> SolveGreedyCircular(const LocationDatabase& db,
                                             const std::vector<Point>& centers,
                                             int k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (centers.empty()) {
    return Status::InvalidArgument("need at least one candidate center");
  }
  if (db.size() < static_cast<size_t>(k)) {
    return Status::Infeasible("fewer than k users in the snapshot");
  }

  const std::vector<CandidateCircle> candidates =
      EnumerateCandidateCircles(db, centers);
  std::vector<int32_t> assignment(db.size(), -1);
  size_t unassigned = db.size();
  size_t work = 0;

  // Phase 1: commit circles that cover at least k unassigned users,
  // cheapest area-per-new-user first.
  while (unassigned >= static_cast<size_t>(k)) {
    int32_t best = -1;
    double best_ratio = 0.0;
    size_t best_new = 0;
    for (size_t c = 0; c < candidates.size(); ++c) {
      ++work;
      size_t covers_new = 0;
      for (const size_t row : candidates[c].covered_rows) {
        if (assignment[row] < 0) ++covers_new;
      }
      if (covers_new < static_cast<size_t>(k)) continue;
      const double ratio =
          candidates[c].circle.Area() / static_cast<double>(covers_new);
      if (best < 0 || ratio < best_ratio) {
        best = static_cast<int32_t>(c);
        best_ratio = ratio;
        best_new = covers_new;
      }
    }
    if (best < 0) break;  // no circle can open a fresh >= k group
    for (const size_t row : candidates[best].covered_rows) {
      if (assignment[row] < 0) assignment[row] = best;
    }
    unassigned -= best_new;
  }

  // Phase 2: strand repair. Fewer than k users remain unassigned (or no
  // candidate could serve them); fold them into a committed group by growing
  // that group's circle at the same center. The grown circle contains every
  // old member, so validity is preserved and the group only gets larger.
  if (unassigned > 0) {
    // Collect stranded rows.
    std::vector<size_t> stranded;
    for (size_t row = 0; row < db.size(); ++row) {
      if (assignment[row] < 0) stranded.push_back(row);
    }
    // Committed groups.
    std::vector<int32_t> groups;
    for (const int32_t a : assignment) {
      if (a >= 0 && std::find(groups.begin(), groups.end(), a) == groups.end()) {
        groups.push_back(a);
      }
    }
    if (groups.empty()) {
      // Nothing committed at all (e.g. k <= |D| < 2k with awkward geometry):
      // put everybody into the single cheapest circle covering all users.
      int32_t best = -1;
      for (size_t c = 0; c < candidates.size(); ++c) {
        ++work;
        if (candidates[c].covered_rows.size() != db.size()) continue;
        if (best < 0 ||
            candidates[c].circle.Area() < candidates[best].circle.Area()) {
          best = static_cast<int32_t>(c);
        }
      }
      if (best < 0) {
        return Status::Infeasible("no circle covers all remaining users");
      }
      for (size_t row = 0; row < db.size(); ++row) assignment[row] = best;
    } else {
      // Cheapest (group, grown-candidate) replacement covering the strays.
      int32_t best_group = -1;
      int32_t best_grown = -1;
      double best_delta = 0.0;
      for (const int32_t g : groups) {
        const size_t center = candidates[g].center_index;
        // The smallest same-center candidate containing the old radius and
        // every stranded row.
        for (size_t c = 0; c < candidates.size(); ++c) {
          ++work;
          if (candidates[c].center_index != center) continue;
          if (candidates[c].circle.radius < candidates[g].circle.radius) {
            continue;
          }
          const bool covers_all = std::all_of(
              stranded.begin(), stranded.end(), [&](size_t row) {
                return std::binary_search(candidates[c].covered_rows.begin(),
                                          candidates[c].covered_rows.end(),
                                          row);
              });
          if (!covers_all) continue;
          const double delta =
              candidates[c].circle.Area() - candidates[g].circle.Area();
          if (best_group < 0 || delta < best_delta) {
            best_group = g;
            best_grown = static_cast<int32_t>(c);
            best_delta = delta;
          }
          break;  // same-center candidates are sorted by radius
        }
      }
      if (best_group < 0) {
        return Status::Infeasible(
            "no center can absorb the stranded users");
      }
      for (size_t row = 0; row < db.size(); ++row) {
        if (assignment[row] == best_group || assignment[row] < 0) {
          assignment[row] = best_grown;
        }
      }
    }
  }

  CircularSolution out;
  out.assignment = assignment;
  out.work = work;
  out.cloaks.reserve(db.size());
  for (size_t row = 0; row < db.size(); ++row) {
    out.cloaks.push_back(candidates[assignment[row]].circle);
    out.total_area += candidates[assignment[row]].circle.Area();
  }
  return out;
}

}  // namespace pasa
