#include "circular/exact_solver.h"

#include <algorithm>

namespace pasa {
namespace {

// Per-row candidate lists sorted by area (cheapest first) for effective
// branch-and-bound pruning.
std::vector<std::vector<int32_t>> CandidatesPerRow(
    const std::vector<CandidateCircle>& candidates, size_t num_rows) {
  std::vector<std::vector<int32_t>> per_row(num_rows);
  for (size_t c = 0; c < candidates.size(); ++c) {
    for (const size_t row : candidates[c].covered_rows) {
      per_row[row].push_back(static_cast<int32_t>(c));
    }
  }
  for (auto& list : per_row) {
    std::sort(list.begin(), list.end(), [&](int32_t a, int32_t b) {
      return candidates[a].circle.Area() < candidates[b].circle.Area();
    });
  }
  return per_row;
}

}  // namespace

Result<CircularSolution> SolveExactCircular(const LocationDatabase& db,
                                            const std::vector<Point>& centers,
                                            int k, size_t max_users) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (centers.empty()) {
    return Status::InvalidArgument("need at least one candidate center");
  }
  if (db.size() > max_users) {
    return Status::InvalidArgument(
        "exact circular solver limited to " + std::to_string(max_users) +
        " users (the problem is NP-complete, Theorem 1)");
  }
  if (db.size() < static_cast<size_t>(k)) {
    return Status::Infeasible("fewer than k users in the snapshot");
  }

  const std::vector<CandidateCircle> candidates =
      EnumerateCandidateCircles(db, centers);
  const std::vector<std::vector<int32_t>> per_row =
      CandidatesPerRow(candidates, db.size());
  // Cheapest per-user area: an admissible lower bound for the remainder.
  std::vector<double> cheapest(db.size(), 0.0);
  double remainder_bound = 0.0;
  for (size_t row = 0; row < db.size(); ++row) {
    if (per_row[row].empty()) {
      return Status::Infeasible("a user is covered by no candidate circle");
    }
    cheapest[row] = candidates[per_row[row].front()].circle.Area();
    remainder_bound += cheapest[row];
  }
  std::vector<double> suffix_bound(db.size() + 1, 0.0);
  for (size_t row = db.size(); row-- > 0;) {
    suffix_bound[row] = suffix_bound[row + 1] + cheapest[row];
  }

  // remaining_inside[c] at row r: how many not-yet-processed rows (>= r)
  // the candidate contains — an open group below k members must be able to
  // fill up from them.
  auto remaining_inside = [&](int32_t c, size_t row) -> size_t {
    const std::vector<size_t>& covered = candidates[c].covered_rows;
    return covered.end() -
           std::lower_bound(covered.begin(), covered.end(), row);
  };

  CircularSolution best;
  double best_area = -1.0;
  std::vector<int32_t> assignment(db.size(), -1);
  std::vector<int32_t> group_count(candidates.size(), 0);
  std::vector<int32_t> open_groups;  // nonempty groups, possibly below k
  size_t work = 0;

  auto recurse = [&](auto&& self, size_t row, double area_so_far) -> void {
    ++work;
    if (best_area >= 0.0 && area_so_far + suffix_bound[row] >= best_area) {
      return;
    }
    if (row == db.size()) {
      for (const int32_t g : open_groups) {
        if (group_count[g] < k) return;
      }
      best_area = area_so_far;
      best.assignment = assignment;
      return;
    }
    // Feasibility pruning: rows are assigned in index order, so a group can
    // only recruit from rows >= row. Every open group must still be able to
    // reach k, and the summed deficits must fit in the remaining rows.
    size_t total_deficit = 0;
    for (const int32_t g : open_groups) {
      if (group_count[g] >= k) continue;
      const size_t deficit = static_cast<size_t>(k - group_count[g]);
      if (deficit > remaining_inside(g, row)) return;
      total_deficit += deficit;
    }
    if (total_deficit > db.size() - row) return;

    for (const int32_t c : per_row[row]) {
      const bool opens = group_count[c] == 0;
      // Opening a group that can never reach k is hopeless.
      if (opens && remaining_inside(c, row) < static_cast<size_t>(k)) {
        continue;
      }
      assignment[row] = c;
      ++group_count[c];
      if (opens) open_groups.push_back(c);
      self(self, row + 1, area_so_far + candidates[c].circle.Area());
      if (opens) open_groups.pop_back();
      --group_count[c];
      assignment[row] = -1;
    }
  };
  recurse(recurse, 0, 0.0);

  if (best_area < 0.0) {
    return Status::Infeasible("no policy-aware circular cloaking exists");
  }
  best.total_area = best_area;
  best.work = work;
  best.cloaks.reserve(db.size());
  for (size_t row = 0; row < db.size(); ++row) {
    best.cloaks.push_back(candidates[best.assignment[row]].circle);
  }
  return best;
}

}  // namespace pasa
