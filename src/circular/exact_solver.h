#ifndef PASA_CIRCULAR_EXACT_SOLVER_H_
#define PASA_CIRCULAR_EXACT_SOLVER_H_

#include <vector>

#include "circular/candidates.h"
#include "common/status.h"

namespace pasa {

/// A solution to Optimal Policy-aware Bulk-anonymization with Circular
/// cloaks: each user is assigned a candidate circle containing her, every
/// nonempty circle group has >= k members (policy-aware sender
/// k-anonymity), and the summed cloak area is reported.
struct CircularSolution {
  std::vector<int32_t> assignment;  ///< candidate index per snapshot row
  std::vector<Circle> cloaks;       ///< resolved circle per snapshot row
  double total_area = 0.0;
  /// Search-tree nodes expanded (exact solver) or candidate scans (greedy);
  /// the measure of work the Theorem-1 benchmark reports.
  size_t work = 0;
};

/// Exact branch-and-bound over per-user candidate assignments. The problem
/// is NP-complete (Theorem 1), so this is exponential and guarded by
/// `max_users`; it exists as the ground truth for the greedy heuristic and
/// to exhibit the blow-up experimentally.
Result<CircularSolution> SolveExactCircular(const LocationDatabase& db,
                                            const std::vector<Point>& centers,
                                            int k, size_t max_users = 14);

}  // namespace pasa

#endif  // PASA_CIRCULAR_EXACT_SOLVER_H_
